# Optional static-analysis targets. Both are gated on the host
# having the tool (the CI image does; minimal containers may not):
#
#   cmake --build build --target lint-tidy     # clang-tidy, .clang-tidy config
#   cmake --build build --target format-check  # clang-format --dry-run -Werror
#
# Sources covered: src/ bench/ examples/ tests/ tools/ (fixtures
# excluded -- they are ramp-lint's deliberately-broken inputs).

file(GLOB_RECURSE RAMP_ANALYSIS_SOURCES
    ${CMAKE_SOURCE_DIR}/src/*.cc ${CMAKE_SOURCE_DIR}/src/*.hh
    ${CMAKE_SOURCE_DIR}/bench/*.cc ${CMAKE_SOURCE_DIR}/bench/*.hh
    ${CMAKE_SOURCE_DIR}/examples/*.cc
    ${CMAKE_SOURCE_DIR}/tests/*.cc
    ${CMAKE_SOURCE_DIR}/tools/*.cc ${CMAKE_SOURCE_DIR}/tools/*.hh)
list(FILTER RAMP_ANALYSIS_SOURCES EXCLUDE REGEX "/fixtures/")

find_program(CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18
    clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14)
if(CLANG_TIDY_EXE)
    set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
    # Only .cc files: headers are covered through their includers
    # (and standalone via the lint.headers self-sufficiency test).
    set(RAMP_TIDY_SOURCES ${RAMP_ANALYSIS_SOURCES})
    list(FILTER RAMP_TIDY_SOURCES INCLUDE REGEX "\\.cc$")
    add_custom_target(lint-tidy
        COMMAND ${CLANG_TIDY_EXE} -p ${CMAKE_BINARY_DIR}
            --warnings-as-errors=* ${RAMP_TIDY_SOURCES}
        WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
        COMMENT "clang-tidy over src/bench/examples/tests/tools"
        VERBATIM)
else()
    message(STATUS "clang-tidy not found: lint-tidy target disabled")
endif()

find_program(CLANG_FORMAT_EXE NAMES clang-format clang-format-18
    clang-format-17 clang-format-16 clang-format-15 clang-format-14)
if(CLANG_FORMAT_EXE)
    add_custom_target(format-check
        COMMAND ${CLANG_FORMAT_EXE} --dry-run -Werror
            ${RAMP_ANALYSIS_SOURCES}
        WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
        COMMENT "clang-format drift check (read-only)"
        VERBATIM)
    add_custom_target(format
        COMMAND ${CLANG_FORMAT_EXE} -i ${RAMP_ANALYSIS_SOURCES}
        WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
        COMMENT "clang-format in place"
        VERBATIM)
else()
    message(STATUS
        "clang-format not found: format-check/format disabled")
endif()
