/**
 * @file
 * Manifest-vs-emission validator: checks that the `fig2`-scoped
 * counter/gauge/histogram entries of docs/metrics.manifest exactly
 * match the keys of a `--metrics` JSON file produced by
 * bench_fig2_archdvs (the telemetry smoke fixture's run).
 *
 * Both directions fail: an emitted key missing from the manifest is
 * an undocumented metric, a fig2-scoped entry that was not emitted
 * is a stale scope (demote it to aux or delete it).
 *
 * Usage: ramp_lint_manifest_check <metrics.manifest> <metrics.json>
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "lint.hh"
#include "util/json.hh"

namespace {

int failures = 0;

void
fail(const std::string &what)
{
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++failures;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr, "usage: %s <metrics.manifest> "
                             "<metrics.json>\n",
                     argv[0]);
        return 2;
    }

    std::vector<ramp_lint::Diagnostic> diags;
    const auto manifest = ramp_lint::loadManifest(argv[1], diags);
    for (const auto &d : diags)
        fail("manifest " + d.message);

    std::ifstream in(argv[2]);
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto doc = ramp::util::parseJson(ss.str());
    if (!doc) {
        fail(std::string(argv[2]) + " does not parse as JSON");
        return 1;
    }

    // kind as emitted -> JSON section name.
    const std::map<std::string, std::string> sections = {
        {"counter", "counters"},
        {"gauge", "gauges"},
        {"histogram", "histograms"},
    };

    for (const auto &[kind, section] : sections) {
        const auto *obj = doc->find(section);
        if (!obj) {
            fail("metrics JSON lacks section '" + section + "'");
            continue;
        }
        for (const auto &[name, value] : obj->object) {
            (void)value;
            const auto it = manifest.entries.find(name);
            if (it == manifest.entries.end())
                fail("emitted " + kind + " '" + name +
                     "' is not in the manifest");
            else if (it->second.kind != kind)
                fail("emitted " + kind + " '" + name +
                     "' declared as " + it->second.kind +
                     " in the manifest");
            else if (it->second.scope != "fig2")
                fail("emitted " + kind + " '" + name +
                     "' has scope '" + it->second.scope +
                     "' (should be fig2)");
        }
        for (const auto &[name, entry] : manifest.entries) {
            if (entry.kind != kind || entry.scope != "fig2")
                continue;
            if (!obj->find(name))
                fail("fig2-scoped " + kind + " '" + name +
                     "' was not emitted (stale scope? demote to "
                     "aux)");
        }
    }

    if (failures) {
        std::fprintf(stderr,
                     "manifest check: %d mismatch(es)\n", failures);
        return 1;
    }
    std::printf("manifest check: %s matches %s\n", argv[1],
                argv[2]);
    return 0;
}
