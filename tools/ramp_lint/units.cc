/**
 * @file
 * Pass 1: unit consistency. Identifiers carry their unit in the
 * final `_` suffix (`temp_k`, `power_w`, `eta_hours`, ...); this
 * pass tracks those suffixes through token streams and flags
 *
 *  - mixed-unit additive arithmetic:  `temp_k + power_w`
 *  - cross-unit assignment/init:      `temp_c = temp_k;`
 *
 * Multiplication and division legitimately change dimensions, so a
 * right-hand side containing `*` or `/` is never judged, and only
 * unit-pure expressions (every suffixed identifier agreeing on one
 * unit) are compared against the left-hand side -- the pass is
 * deliberately conservative: it only fires on expressions whose
 * units it can fully resolve.
 *
 * An intentional conversion is declared -- with a mandatory reason,
 * like allow() -- on the same or the preceding line:
 *
 *     // ramp-lint: convert(k->c): reporting delta in Celsius
 *
 * which permits exactly that pair of units to meet on the covered
 * lines. Registering a new unit: add the suffix to unit_suffixes
 * below, docs/DESIGN.md section 15, and a fixture case.
 */

#include "lint.hh"

#include <regex>

namespace ramp_lint {

namespace {

/** The recognised unit suffixes (the vocabulary of the naming
 *  rule plus the time/reliability units added with this pass). */
const std::set<std::string> unit_suffixes = {
    "k",  "c",   "w",  "mw",    "af",  "v",    "hz",  "mhz",
    "ghz", "s",  "ms", "hours", "fit", "frac", "years",
};

/** Pairs of units a convert() marker has sanctioned, per line. */
struct Conversions
{
    std::map<std::size_t, std::set<std::string>> pairs;

    static std::string
    key(std::string a, std::string b)
    {
        return a < b ? a + "->" + b : b + "->" + a;
    }

    bool
    covers(std::size_t line, const std::string &a,
           const std::string &b) const
    {
        auto it = pairs.find(line);
        return it != pairs.end() && it->second.count(key(a, b));
    }
};

Conversions
parseConversions(const FileScan &scan,
                 std::vector<Diagnostic> &diags)
{
    Conversions conv;
    // Split so ramp-lint's own sources never self-match.
    static const std::regex conv_re(
        std::string("ramp-lint:\\s*conv") +
        "ert\\(([a-z]+)\\s*->\\s*([a-z]+)\\)"
        "(\\s*:\\s*(\\S.*)?)?");
    for (const auto &c : scan.src.comments) {
        if (!c.is_line)
            continue; // block comments may quote the syntax
        std::smatch m;
        if (!std::regex_search(c.text, m, conv_re))
            continue;
        const std::string from = m[1];
        const std::string to = m[2];
        if (!unit_suffixes.count(from) ||
            !unit_suffixes.count(to)) {
            diags.push_back(
                {scan.src.path, c.line, "unit-consistency",
                 "convert(" + from + "->" + to +
                     ") names an unknown unit suffix"});
            continue;
        }
        if (!m[4].matched || m[4].str().empty()) {
            diags.push_back(
                {scan.src.path, c.line, "unit-consistency",
                 "convert(" + from + "->" + to +
                     ") needs a reason: `convert(" + from + "->" +
                     to + "): <why>`"});
            continue;
        }
        conv.pairs[c.line].insert(Conversions::key(from, to));
        conv.pairs[c.line + 1].insert(Conversions::key(from, to));
    }
    return conv;
}

bool
isIdent(const std::vector<Token> &t, std::size_t i)
{
    return i < t.size() && t[i].kind == Token::Kind::Ident;
}

bool
isPunct(const std::vector<Token> &t, std::size_t i,
        const char *text)
{
    return i < t.size() && t[i].kind == Token::Kind::Punct &&
           t[i].text == text;
}

/**
 * Resolve the identifier a value expression starting at @p i ends
 * in, following member/namespace chains (`obj.temp_k`,
 * `ns::limit_w`). Returns the index of the final identifier, or
 * npos when the expression is a call (unknown unit) or not an
 * identifier at all.
 */
std::size_t
resolveChain(const std::vector<Token> &t, std::size_t i)
{
    if (!isIdent(t, i))
        return std::string::npos;
    while (i + 2 < t.size() &&
           (isPunct(t, i + 1, ".") || isPunct(t, i + 1, "->") ||
            isPunct(t, i + 1, "::")) &&
           isIdent(t, i + 2))
        i += 2;
    if (isPunct(t, i + 1, "(")) // call: value unit unknown
        return std::string::npos;
    return i;
}

void
reportMix(FileScan &scan, const Conversions &conv,
          std::size_t line, const std::string &ln,
          const std::string &lu, const std::string &rn,
          const std::string &ru, const char *what)
{
    if (conv.covers(line, lu, ru))
        return;
    if (scan.sup.covers("unit-consistency", line))
        return;
    scan.diags.push_back(
        {scan.src.path, line, "unit-consistency",
         std::string(what) + ": '" + ln + "' (_" + lu + ") vs '" +
             rn + "' (_" + ru +
             "); convert explicitly and mark "
             "`ramp-lint: convert(" +
             ru + "->" + lu + "): <why>`"});
}

} // namespace

std::string
unitSuffixOf(const std::string &name)
{
    const auto us = name.rfind('_');
    if (us == std::string::npos || us == 0 ||
        us + 1 >= name.size())
        return "";
    const std::string suffix = name.substr(us + 1);
    return unit_suffixes.count(suffix) ? suffix : "";
}

void
checkUnits(FileScan &scan)
{
    const auto &t = scan.toks;
    const Conversions conv = parseConversions(scan, scan.diags);

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Kind::Punct)
            continue;
        const std::string &op = t[i].text;

        // Mixed-unit additive arithmetic: IDENT (+|-) IDENT-chain.
        if ((op == "+" || op == "-") && i > 0 && isIdent(t, i - 1)) {
            const std::string lhs = t[i - 1].text;
            const std::string lu = unitSuffixOf(lhs);
            if (lu.empty())
                continue;
            const std::size_t r = resolveChain(t, i + 1);
            if (r == std::string::npos)
                continue;
            const std::string rhs = t[r].text;
            const std::string ru = unitSuffixOf(rhs);
            if (ru.empty() || ru == lu)
                continue;
            reportMix(scan, conv, t[i].line, lhs, lu, rhs, ru,
                      "mixed-unit arithmetic");
            continue;
        }

        // Cross-unit assignment: IDENT (=|+=|-=) unit-pure expr.
        if (op != "=" && op != "+=" && op != "-=")
            continue;
        if (i == 0 || !isIdent(t, i - 1))
            continue;
        const std::string lhs = t[i - 1].text;
        const std::string lu = unitSuffixOf(lhs);
        if (lu.empty())
            continue;

        // Walk the RHS to the statement end at depth 0, collecting
        // the units of value-position identifiers. Bail on any
        // `*`/`/` (dimension change) or scope punctuation.
        std::set<std::string> rhs_units;
        std::string rhs_name;
        int depth = 0;
        bool judge = true;
        std::size_t j = i + 1;
        for (; j < t.size(); ++j) {
            const Token &tok = t[j];
            if (tok.kind == Token::Kind::Punct) {
                const std::string &p = tok.text;
                if (p == "(" || p == "[" || p == "{") {
                    ++depth;
                    continue;
                }
                if (p == ")" || p == "]" || p == "}") {
                    if (--depth < 0)
                        break; // ran off the enclosing expression
                    continue;
                }
                if (depth == 0 && (p == ";" || p == ","))
                    break;
                if (p == "*" || p == "/" || p == "?" || p == ":") {
                    judge = false;
                    break;
                }
                continue;
            }
            if (tok.kind != Token::Kind::Ident)
                continue;
            // Skip call names and namespace qualifiers; a chain's
            // unit lives in its final identifier.
            if (isPunct(t, j + 1, "(") || isPunct(t, j + 1, "::") ||
                isPunct(t, j + 1, ".") || isPunct(t, j + 1, "->"))
                continue;
            const std::string u = unitSuffixOf(tok.text);
            if (!u.empty()) {
                rhs_units.insert(u);
                rhs_name = tok.text;
            }
        }
        if (!judge || rhs_units.size() != 1)
            continue;
        const std::string ru = *rhs_units.begin();
        if (ru == lu)
            continue;
        reportMix(scan, conv, t[i].line, lhs, lu, rhs_name, ru,
                  "cross-unit assignment");
    }
}

} // namespace ramp_lint
