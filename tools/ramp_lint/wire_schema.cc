/**
 * @file
 * Pass 4: wire-schema drift. src/serve/protocol.cc declares the
 * whole serve protocol in one place -- the `type_names[]` verb
 * list, the per-verb `FieldRule` arrays (field name, required,
 * arrival version) and the `type_rules[]` table binding them. This
 * pass re-parses that table from tokens and cross-checks it against
 *
 *  - the schema table in DESIGN.md between the
 *    `<!-- ramp-lint: wire-schema-begin -->` /
 *    `<!-- ramp-lint: wire-schema-end -->` markers
 *    (rows `| verb | field | required | since |`; a `-` field row
 *    documents the verb itself),
 *  - README.md, which must mention every verb by name, and
 *  - the sources under tests/serve/, which must reference every
 *    verb and field name at least once (the pinned-bytes /
 *    field-gating tests).
 *
 * Net effect: adding a v3 field without documenting it and pinning
 * it in a test makes `ctest -L lint` fail with the exact
 * `protocol.cc:line` of the new field.
 */

#include "lint.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace ramp_lint {

namespace {

namespace fs = std::filesystem;

struct FieldInfo
{
    std::string name;
    bool required = false;
    int since = 0;
    std::size_t line = 0;
};

struct VerbInfo
{
    std::string name;
    int since = 0;
    std::size_t line = 0;
    std::vector<FieldInfo> fields;
};

bool
isPunct(const std::vector<Token> &t, std::size_t i,
        const char *text)
{
    return i < t.size() && t[i].kind == Token::Kind::Punct &&
           t[i].text == text;
}

bool
isIdentText(const std::vector<Token> &t, std::size_t i,
            const char *text)
{
    return i < t.size() && t[i].kind == Token::Kind::Ident &&
           t[i].text == text;
}

/** Find `NAME ... = {`, returning the index of the `{` + 1. */
std::size_t
findArrayInit(const std::vector<Token> &t, const char *name)
{
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
        if (isIdentText(t, i, name))
            for (std::size_t j = i + 1;
                 j < t.size() && j < i + 8; ++j)
                if (isPunct(t, j, "{"))
                    return j + 1;
    return std::string::npos;
}

/**
 * Parse the protocol tables out of protocol.cc's token stream.
 * Returns false (with a diagnostic) when the expected shape is not
 * found -- the pass is pinned to the table idiom on purpose: if the
 * declaration style changes, the checker must be taught the new
 * shape rather than silently passing.
 */
bool
parseProtocol(const FileScan &scan, std::vector<VerbInfo> &verbs,
              std::vector<Diagnostic> &out)
{
    const auto &t = scan.toks;

    // 1. Verb names, in enum order.
    std::size_t i = findArrayInit(t, "type_names");
    if (i == std::string::npos) {
        out.push_back({scan.src.path, 1, "wire-schema",
                       "could not find the type_names[] verb list"});
        return false;
    }
    for (; i < t.size() && !isPunct(t, i, "}"); ++i)
        if (t[i].kind == Token::Kind::String)
            verbs.push_back({t[i].text, 0, t[i].line, {}});
    if (verbs.empty()) {
        out.push_back({scan.src.path, 1, "wire-schema",
                       "type_names[] holds no verb names"});
        return false;
    }

    // 2. FieldRule arrays: `FieldRule <name>[] = { {...}, ... };`.
    std::map<std::string, std::vector<FieldInfo>> arrays;
    for (std::size_t j = 0; j + 1 < t.size(); ++j) {
        if (!isIdentText(t, j, "FieldRule") ||
            t[j + 1].kind != Token::Kind::Ident)
            continue;
        const std::string arr = t[j + 1].text;
        std::size_t k = j + 2;
        while (k < t.size() && !isPunct(t, k, "{"))
            ++k;
        ++k; // into the outer init list
        std::vector<FieldInfo> fields;
        while (k < t.size() && !isPunct(t, k, ";")) {
            if (isPunct(t, k, "{")) {
                // One entry: { Field::X, "name", req, ver[, omit] }
                FieldInfo f;
                bool have_name = false, have_ver = false;
                int commas = 0;
                for (++k; k < t.size() && !isPunct(t, k, "}");
                     ++k) {
                    const Token &tok = t[k];
                    if (isPunct(t, k, ","))
                        ++commas;
                    else if (tok.kind == Token::Kind::String &&
                             commas == 1) {
                        f.name = tok.text;
                        f.line = tok.line;
                        have_name = true;
                    } else if (tok.kind == Token::Kind::Ident &&
                               commas == 2)
                        f.required = tok.text == "true";
                    else if (tok.kind == Token::Kind::Number &&
                             commas == 3) {
                        f.since = std::stoi(tok.text);
                        have_ver = true;
                    }
                }
                if (have_name && have_ver)
                    fields.push_back(f);
            }
            ++k;
        }
        arrays[arr] = std::move(fields);
    }

    // 3. type_rules[]: { RequestType::X, ver, <array>|nullptr, n }.
    i = findArrayInit(t, "type_rules");
    if (i == std::string::npos) {
        out.push_back({scan.src.path, 1, "wire-schema",
                       "could not find the type_rules[] table"});
        return false;
    }
    std::size_t verb_idx = 0;
    while (i < t.size() && !isPunct(t, i, ";")) {
        if (isPunct(t, i, "{")) {
            if (verb_idx >= verbs.size()) {
                out.push_back(
                    {scan.src.path, t[i].line, "wire-schema",
                     "type_rules[] has more entries than "
                     "type_names[] has verbs"});
                return false;
            }
            VerbInfo &verb = verbs[verb_idx++];
            int commas = 0;
            for (++i; i < t.size() && !isPunct(t, i, "}"); ++i) {
                if (isPunct(t, i, ","))
                    ++commas;
                else if (t[i].kind == Token::Kind::Number &&
                         commas == 1)
                    verb.since = std::stoi(t[i].text);
                else if (t[i].kind == Token::Kind::Ident &&
                         commas == 2 && arrays.count(t[i].text))
                    verb.fields = arrays[t[i].text];
            }
        }
        ++i;
    }
    if (verb_idx != verbs.size()) {
        out.push_back(
            {scan.src.path, 1, "wire-schema",
             "type_rules[] declares " + std::to_string(verb_idx) +
                 " entries but type_names[] has " +
                 std::to_string(verbs.size()) + " verbs"});
        return false;
    }
    return true;
}

/** Whole-file read; empty optional-ish on failure. */
bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

struct DocRow
{
    std::string verb;
    std::string field; ///< "-" documents the verb itself.
    bool required = false;
    int since = 0;
    std::size_t line = 0;
};

std::string
trim(std::string s)
{
    const auto a = s.find_first_not_of(" \t");
    const auto b = s.find_last_not_of(" \t");
    return a == std::string::npos ? ""
                                  : s.substr(a, b - a + 1);
}

/** Parse the marked markdown table out of DESIGN.md. */
bool
parseDesignTable(const fs::path &design, std::vector<DocRow> &rows,
                 std::vector<Diagnostic> &out)
{
    std::string text;
    if (!readFile(design, text)) {
        out.push_back({design, 1, "wire-schema",
                       "DESIGN.md is missing; the wire schema must "
                       "be documented"});
        return false;
    }
    const std::string begin_mark =
        "<!-- ramp-lint: wire-schema-begin -->";
    const std::string end_mark =
        "<!-- ramp-lint: wire-schema-end -->";
    const auto begin = text.find(begin_mark);
    const auto end = text.find(end_mark);
    if (begin == std::string::npos || end == std::string::npos ||
        end < begin) {
        out.push_back(
            {design, 1, "wire-schema",
             "DESIGN.md has no `" + begin_mark +
                 "` ... end block documenting the serve protocol"});
        return false;
    }
    std::size_t line =
        1 + static_cast<std::size_t>(std::count(
                text.begin(),
                text.begin() + static_cast<std::ptrdiff_t>(begin),
                '\n'));
    std::istringstream ss(text.substr(begin, end - begin));
    std::string raw;
    while (std::getline(ss, raw)) {
        const std::string l = trim(raw);
        if (l.size() < 2 || l[0] != '|') {
            ++line;
            continue;
        }
        // Split cells.
        std::vector<std::string> cells;
        std::size_t pos = 1;
        while (pos < l.size()) {
            auto bar = l.find('|', pos);
            if (bar == std::string::npos)
                break;
            cells.push_back(trim(l.substr(pos, bar - pos)));
            pos = bar + 1;
        }
        if (cells.size() >= 4 && cells[0] != "verb" &&
            cells[0].find("---") == std::string::npos) {
            DocRow row;
            row.verb = cells[0];
            row.field = cells[1];
            row.required = cells[2] == "yes";
            row.line = line;
            if (!cells[3].empty() && cells[3][0] == 'v')
                row.since = std::atoi(cells[3].c_str() + 1);
            rows.push_back(row);
        }
        ++line;
    }
    return true;
}

} // namespace

void
checkWireSchema(const fs::path &root,
                const std::vector<FileScan> &scans,
                std::vector<Diagnostic> &out)
{
    const FileScan *proto = nullptr;
    std::string tests_text;
    for (const auto &scan : scans) {
        const std::string p = scan.src.path.generic_string();
        if (p.size() >= 21 &&
            p.find("src/serve/protocol.cc") != std::string::npos)
            proto = &scan;
        if (p.find("tests/serve/") != std::string::npos)
            tests_text += scan.src.raw;
    }
    if (!proto)
        return; // tree without a serve protocol: nothing to check

    std::vector<VerbInfo> verbs;
    if (!parseProtocol(*proto, verbs, out))
        return;

    const fs::path design = root / "DESIGN.md";
    std::vector<DocRow> rows;
    if (!parseDesignTable(design, rows, out))
        return;

    std::string readme_text;
    readFile(root / "README.md", readme_text);

    // Code -> docs/tests direction.
    auto verbRow = [&](const std::string &verb) -> const DocRow * {
        for (const auto &r : rows)
            if (r.verb == verb && r.field == "-")
                return &r;
        return nullptr;
    };
    auto fieldRow = [&](const std::string &verb,
                        const std::string &field) -> const DocRow * {
        for (const auto &r : rows)
            if (r.verb == verb && r.field == field)
                return &r;
        return nullptr;
    };

    for (const auto &verb : verbs) {
        const DocRow *vr = verbRow(verb.name);
        if (!vr) {
            out.push_back(
                {proto->src.path, verb.line, "wire-schema",
                 "verb '" + verb.name + "' (since v" +
                     std::to_string(verb.since) +
                     ") is not documented in the DESIGN.md "
                     "wire-schema table"});
        } else if (vr->since != verb.since) {
            out.push_back(
                {design, vr->line, "wire-schema",
                 "verb '" + verb.name + "' documented as v" +
                     std::to_string(vr->since) +
                     " but protocol.cc says v" +
                     std::to_string(verb.since)});
        }
        if (readme_text.find(verb.name) == std::string::npos)
            out.push_back(
                {proto->src.path, verb.line, "wire-schema",
                 "verb '" + verb.name +
                     "' is not mentioned in README.md"});
        if (tests_text.find(verb.name) == std::string::npos)
            out.push_back(
                {proto->src.path, verb.line, "wire-schema",
                 "verb '" + verb.name +
                     "' has no reference under tests/serve/ "
                     "(pinned-bytes / field-gating tests)"});
        for (const auto &field : verb.fields) {
            const DocRow *fr = fieldRow(verb.name, field.name);
            if (!fr) {
                out.push_back(
                    {proto->src.path, field.line, "wire-schema",
                     "field '" + field.name + "' of '" +
                         verb.name + "' (since v" +
                         std::to_string(field.since) +
                         ") is not documented in the DESIGN.md "
                         "wire-schema table"});
            } else {
                if (fr->since != field.since)
                    out.push_back(
                        {design, fr->line, "wire-schema",
                         "field '" + field.name + "' of '" +
                             verb.name + "' documented as v" +
                             std::to_string(fr->since) +
                             " but protocol.cc says v" +
                             std::to_string(field.since)});
                if (fr->required != field.required)
                    out.push_back(
                        {design, fr->line, "wire-schema",
                         "field '" + field.name + "' of '" +
                             verb.name + "' documented as " +
                             (fr->required ? "required"
                                           : "optional") +
                             " but protocol.cc says " +
                             (field.required ? "required"
                                             : "optional")});
            }
            if (tests_text.find(field.name) == std::string::npos)
                out.push_back(
                    {proto->src.path, field.line, "wire-schema",
                     "field '" + field.name + "' of '" +
                         verb.name +
                         "' has no reference under tests/serve/ "
                         "(pinned-bytes / field-gating tests)"});
        }
    }

    // Docs -> code direction: no phantom rows.
    for (const auto &r : rows) {
        const auto vit = std::find_if(
            verbs.begin(), verbs.end(),
            [&](const VerbInfo &v) { return v.name == r.verb; });
        if (vit == verbs.end()) {
            out.push_back(
                {design, r.line, "wire-schema",
                 "documents verb '" + r.verb +
                     "' which protocol.cc does not implement"});
            continue;
        }
        if (r.field == "-")
            continue;
        const bool in_code =
            std::any_of(vit->fields.begin(), vit->fields.end(),
                        [&](const FieldInfo &f) {
                            return f.name == r.field;
                        });
        if (!in_code)
            out.push_back(
                {design, r.line, "wire-schema",
                 "documents field '" + r.field + "' of '" +
                     r.verb +
                     "' which protocol.cc does not declare"});
    }
}

} // namespace ramp_lint
