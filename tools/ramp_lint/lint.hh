/**
 * @file
 * ramp-lint: the repo's domain checker. Enforces invariants a
 * generic linter cannot know about:
 *
 *  - every telemetry metric/trace name used in code is documented in
 *    docs/metrics.manifest, and every manifest entry is live;
 *  - physical quantities carry unit suffixes (`temp_k`, `power_w`,
 *    `activity_af`, ...) instead of naked `double temp` names;
 *  - unit consistency: expressions never add/subtract/assign across
 *    different unit suffixes without an explicit conversion marker
 *    (`// ramp-lint: convert(k->c): why`);
 *  - Result discipline: every `Result`/`BatchReport`-returning
 *    function declared in a src/ header is `[[nodiscard]]`, and no
 *    call to such a function anywhere is a bare discarded statement;
 *  - lock discipline: members annotated
 *    `// ramp-lint: guarded_by(mutex_name)` are only touched in
 *    scopes holding a lock_guard/unique_lock/scoped_lock/shared_lock
 *    on that mutex (checked intra-file against a real scope tree);
 *  - wire-schema drift: the per-version field table in
 *    src/serve/protocol.cc matches the DESIGN.md schema table, the
 *    README verb list, and the serve test coverage exactly;
 *  - banned patterns: `std::rand`/`srand` outside src/util/random,
 *    raw `new`/`delete`, `std::endl`, locking a mutex member
 *    directly instead of through a guard;
 *  - include hygiene: `#pragma once` in every header, no upward
 *    (`..`) quoted includes, quoted includes resolvable from the
 *    canonical roots.
 *
 * A finding can be suppressed -- with a mandatory reason -- by a
 * comment on the same or the preceding line:
 *
 *     // ramp-lint: allow(raw-new): leaked singleton, never freed
 *
 * Names that reach the telemetry registry through a helper (so no
 * string literal sits at a recognised call site) are declared with a
 * marker comment next to the call (kind one of counter, gauge,
 * histogram, span, instant):
 *
 *     // ramp-lint: emits(<kind>, <name>)
 *
 * The token-level passes (unit consistency, Result discipline, lock
 * discipline, wire schema) run over a shared tokenizer that blanks
 * comments and understands string/char/raw-string literals, so a
 * banned shape inside a literal never fires and every diagnostic
 * carries an exact `file:line`.
 */

#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ramp_lint {

/** One finding, printed as `path:line: [rule] message`. */
struct Diagnostic
{
    std::filesystem::path file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** A metric/trace name reference extracted from source. */
struct MetricRef
{
    std::string kind; ///< counter|gauge|histogram|span|instant.
    std::string name;
    std::filesystem::path file;
    std::size_t line = 0;
};

/** One comment's text, for marker/suppression scanning. Markers
 *  (`ramp-lint: ...`) are only honored in line comments; block
 *  comments are documentation and may quote marker syntax freely. */
struct CommentSpan
{
    std::size_t line = 0;
    std::string text;
    bool is_line = false; ///< true for `//`, false for `/* */`.
};

/**
 * A source file preprocessed for scanning. `code_str` keeps string
 * literals but blanks comments; `code` additionally blanks string
 * and char literal contents. Both preserve line structure, so an
 * offset maps to the same line in every view.
 */
struct SourceFile
{
    std::filesystem::path path;
    std::string raw;
    std::string code_str;
    std::string code;
    std::vector<CommentSpan> comments;

    bool isHeader() const;
    /** 1-based line of a byte offset into any of the views. */
    std::size_t lineOf(std::size_t offset) const;
};

/** Load and preprocess one file (strip comments, blank strings). */
SourceFile loadSource(const std::filesystem::path &path);

/**
 * Collect the .cc/.hh files under each of @p dirs, skipping any
 * directory named `fixtures` (lint's own deliberately-failing test
 * inputs) and build trees (`build*`). A path that does not exist or
 * cannot be walked is a hard error: returns false with @p error set.
 */
bool collectSources(const std::vector<std::filesystem::path> &dirs,
                    std::vector<std::filesystem::path> &out,
                    std::string &error);

// ---------------------------------------------------------------
// Tokenizer (shared by the token-level passes)
// ---------------------------------------------------------------

/** One lexical token of a source file. */
struct Token
{
    enum class Kind { Ident, Number, String, CharLit, Punct };
    Kind kind = Kind::Punct;
    /** Identifier/number spelling, literal contents (quotes
     *  stripped), or operator spelling (maximal munch: `->`, `::`,
     *  `+=`, ... are single tokens). */
    std::string text;
    std::size_t line = 1;
};

/**
 * Tokenize the comment-blanked view of @p src. String and char
 * literals become single String/CharLit tokens holding their inner
 * text; raw strings (`R"(...)"`) are handled. Comments never
 * produce tokens (they are read separately via src.comments).
 */
std::vector<Token> tokenize(const SourceFile &src);

// ---------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------

/** Rule ids that exist; allow() of anything else is an error. */
const std::set<std::string> &knownRules();

/**
 * Per-file suppression table: `ramp-lint: allow(<rule>): <reason>`
 * covers its own and the following line. A reason-less or
 * unknown-rule allow() is itself reported.
 */
class Suppressions
{
  public:
    Suppressions() = default;
    Suppressions(const SourceFile &src,
                 std::vector<Diagnostic> &diags);

    bool covers(const std::string &rule, std::size_t line) const;

  private:
    std::map<std::string, std::set<std::size_t>> lines_;
};

// ---------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------

/** One docs/metrics.manifest entry. */
struct ManifestEntry
{
    std::string kind;  ///< counter|gauge|histogram|span|instant.
    std::string scope; ///< fig2|aux|test.
    std::size_t line = 0;
    bool referenced = false;
};

/** name -> entry; parse errors are reported as diagnostics. */
struct Manifest
{
    std::filesystem::path path;
    std::map<std::string, ManifestEntry> entries;
};

Manifest loadManifest(const std::filesystem::path &path,
                      std::vector<Diagnostic> &diags);

// ---------------------------------------------------------------
// Per-file scan state
// ---------------------------------------------------------------

/**
 * Everything one file contributes: its own diagnostics (emitted in
 * path order), metric references, the names of Result-returning
 * functions it declares (feeding the cross-TU discarded-call check),
 * and the token stream kept for the cross-file passes.
 */
struct FileScan
{
    SourceFile src;
    std::vector<Token> toks;
    Suppressions sup;
    std::vector<Diagnostic> diags;
    std::vector<MetricRef> refs;
    /** Functions declared here returning Result/BatchReport. */
    std::vector<std::string> result_fns;
};

/**
 * Load, tokenize and run every per-file pass on one file. Pure
 * function of the file contents (plus @p root for include
 * resolution), so scans run in parallel across a thread pool and
 * merge deterministically in path order.
 */
FileScan scanFile(const std::filesystem::path &path,
                  const std::filesystem::path &root);

/** Extract metric references (call sites + `emits` markers). */
void extractMetricRefs(const SourceFile &src,
                       std::vector<MetricRef> &refs);

/** The regex/line-level rules (naming, banned, includes). */
void runLineRules(FileScan &scan,
                  const std::filesystem::path &root);

// ---------------------------------------------------------------
// Token-level passes
// ---------------------------------------------------------------

/** Recognised unit suffix of @p name ("" when it carries none). */
std::string unitSuffixOf(const std::string &name);

/** Pass 1: unit consistency (mixed arithmetic, cross-unit assign,
 *  `convert(a->b)` marker validation). */
void checkUnits(FileScan &scan);

/** Pass 2a: collect Result/BatchReport-returning function names;
 *  in src/ headers also require `[[nodiscard]]` on each. */
void collectResultFns(FileScan &scan, bool enforce_nodiscard);

/** Pass 2b: flag statement-position calls (cross-TU, name-based)
 *  whose callee returns Result/BatchReport. */
void checkDiscarded(const FileScan &scan,
                    const std::set<std::string> &result_fns,
                    std::vector<Diagnostic> &out);

/** Pass 3: guarded_by(mutex) members used without a lock in any
 *  enclosing scope. */
void checkLockDiscipline(FileScan &scan);

/** Pass 4: protocol.cc field table vs DESIGN.md table, README verb
 *  mentions, and tests/serve coverage. Runs only when the scanned
 *  set contains src/serve/protocol.cc. */
void checkWireSchema(const std::filesystem::path &root,
                     const std::vector<FileScan> &scans,
                     std::vector<Diagnostic> &out);

// ---------------------------------------------------------------
// Cross-file context
// ---------------------------------------------------------------

/** Context shared by every rule run. */
struct LintContext
{
    std::filesystem::path root;
    Manifest manifest;
    std::vector<Diagnostic> diags;
    std::vector<MetricRef> refs;
};

/** Cross-file rules: manifest consistency (after every file ran). */
void checkManifest(LintContext &ctx);

} // namespace ramp_lint
