/**
 * @file
 * ramp-lint: the repo's domain checker. Enforces invariants a
 * generic linter cannot know about:
 *
 *  - every telemetry metric/trace name used in code is documented in
 *    docs/metrics.manifest, and every manifest entry is live;
 *  - physical quantities carry unit suffixes (`temp_k`, `power_w`,
 *    `activity_af`, ...) instead of naked `double temp` names;
 *  - banned patterns: `std::rand`/`srand` outside src/util/random,
 *    raw `new`/`delete`, `std::endl`, locking a mutex member
 *    directly instead of through a guard;
 *  - include hygiene: `#pragma once` in every header, no upward
 *    (`..`) quoted includes, quoted includes resolvable from the
 *    canonical roots.
 *
 * A finding can be suppressed -- with a mandatory reason -- by a
 * comment on the same or the preceding line:
 *
 *     // ramp-lint: allow(raw-new): leaked singleton, never freed
 *
 * Names that reach the telemetry registry through a helper (so no
 * string literal sits at a recognised call site) are declared with a
 * marker comment next to the call (kind one of counter, gauge,
 * histogram, span, instant):
 *
 *     // ramp-lint: emits(<kind>, <name>)
 */

#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace ramp_lint {

/** One finding, printed as `path:line: [rule] message`. */
struct Diagnostic
{
    std::filesystem::path file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** A metric/trace name reference extracted from source. */
struct MetricRef
{
    std::string kind; ///< counter|gauge|histogram|span|instant.
    std::string name;
    std::filesystem::path file;
    std::size_t line = 0;
};

/** One comment's text, for marker/suppression scanning. */
struct CommentSpan
{
    std::size_t line = 0;
    std::string text;
};

/**
 * A source file preprocessed for scanning. `code_str` keeps string
 * literals but blanks comments; `code` additionally blanks string
 * and char literal contents. Both preserve line structure, so an
 * offset maps to the same line in every view.
 */
struct SourceFile
{
    std::filesystem::path path;
    std::string raw;
    std::string code_str;
    std::string code;
    std::vector<CommentSpan> comments;

    bool isHeader() const;
    /** 1-based line of a byte offset into any of the views. */
    std::size_t lineOf(std::size_t offset) const;
};

/** Load and preprocess one file (strip comments, blank strings). */
SourceFile loadSource(const std::filesystem::path &path);

/**
 * Collect the .cc/.hh files under each of @p dirs, skipping any
 * directory named `fixtures` (lint's own deliberately-failing test
 * inputs) and build trees (`build*`).
 */
std::vector<std::filesystem::path>
collectSources(const std::vector<std::filesystem::path> &dirs);

/** One docs/metrics.manifest entry. */
struct ManifestEntry
{
    std::string kind;  ///< counter|gauge|histogram|span|instant.
    std::string scope; ///< fig2|aux|test.
    std::size_t line = 0;
    bool referenced = false;
};

/** name -> entry; parse errors are reported as diagnostics. */
struct Manifest
{
    std::filesystem::path path;
    std::map<std::string, ManifestEntry> entries;
};

Manifest loadManifest(const std::filesystem::path &path,
                      std::vector<Diagnostic> &diags);

/** Context shared by every rule run. */
struct LintContext
{
    std::filesystem::path root;
    Manifest manifest;
    std::vector<Diagnostic> diags;
    std::vector<MetricRef> refs;
};

/** Extract metric references (call sites + `emits` markers). */
void extractMetricRefs(const SourceFile &src,
                       std::vector<MetricRef> &refs);

/** Run every per-file rule on @p src, appending to ctx.diags. */
void checkFile(const SourceFile &src, LintContext &ctx);

/** Cross-file rules: manifest consistency (after every file ran). */
void checkManifest(LintContext &ctx);

} // namespace ramp_lint
