/**
 * @file
 * Pass 3: lock discipline. Members annotated
 *
 *     std::deque<Job> queue_; // ramp-lint: guarded_by(queue_mu_)
 *
 * (same or preceding line of the declaration) -- or, for members
 * whose uses live in the implementation file, the explicit file-
 * scope form naming the member:
 *
 *     // ramp-lint: guarded_by(queue_mu_): queue_
 *
 * -- may only be touched in a scope holding one of
 * std::lock_guard / unique_lock / scoped_lock / shared_lock on the
 * named mutex. The check is intra-file and token-level: a forward
 * pass builds the real brace-scope tree, records every guard
 * construction (with the identifiers it locks) in the scope where
 * it occurs, and then verifies each use of an annotated member has
 * a matching guard earlier in an enclosing scope. Deliberately
 * lock-free uses (constructors before threads exist, destructors
 * after joins, atomics) carry a reasoned
 * `allow(lock-discipline): why`.
 */

#include "lint.hh"

#include <regex>

namespace ramp_lint {

namespace {

bool
isPunct(const std::vector<Token> &t, std::size_t i,
        const char *text)
{
    return i < t.size() && t[i].kind == Token::Kind::Punct &&
           t[i].text == text;
}

bool
isIdent(const std::vector<Token> &t, std::size_t i)
{
    return i < t.size() && t[i].kind == Token::Kind::Ident;
}

struct Annotation
{
    std::string member;
    std::string mutex_name;
    std::size_t line = 0; ///< Annotation line (uses here exempt).
};

const std::set<std::string> guard_types = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};

/** Same angle-skipper as the Result pass (`>>` closes two). */
std::size_t
skipAngles(const std::vector<Token> &t, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size() && j < i + 64; ++j) {
        if (t[j].kind != Token::Kind::Punct)
            continue;
        const std::string &p = t[j].text;
        if (p == "<") {
            ++depth;
        } else if (p == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (p == ">>") {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        } else if (p == ";" || p == "{" || p == "}") {
            return std::string::npos;
        }
    }
    return std::string::npos;
}

std::vector<Annotation>
parseAnnotations(FileScan &scan)
{
    std::vector<Annotation> out;
    static const std::regex re(
        std::string("ramp-lint:\\s*guar") +
        "ded_by\\(([A-Za-z_][A-Za-z0-9_]*)\\)"
        "(\\s*:\\s*([A-Za-z_][A-Za-z0-9_]*))?");
    for (const auto &c : scan.src.comments) {
        if (!c.is_line)
            continue; // block comments may quote the syntax
        std::smatch m;
        if (!std::regex_search(c.text, m, re))
            continue;
        Annotation a;
        a.mutex_name = m[1];
        a.line = c.line;
        if (m[3].matched) {
            a.member = m[3];
            out.push_back(a);
            continue;
        }
        // Infer the member from the annotated declaration: the last
        // identifier on the comment's own line (trailing form) or
        // the next line (preceding form) that a declarator ends in.
        for (std::size_t line : {c.line, c.line + 1}) {
            for (std::size_t i = 0; i < scan.toks.size(); ++i) {
                const Token &tok = scan.toks[i];
                if (tok.line != line ||
                    tok.kind != Token::Kind::Ident)
                    continue;
                if (isPunct(scan.toks, i + 1, ";") ||
                    isPunct(scan.toks, i + 1, "=") ||
                    isPunct(scan.toks, i + 1, "{"))
                    a.member = tok.text;
            }
            if (!a.member.empty()) {
                a.line = line;
                break;
            }
        }
        if (a.member.empty()) {
            scan.diags.push_back(
                {scan.src.path, c.line, "lock-discipline",
                 "guarded_by(" + a.mutex_name +
                     ") could not infer the member it annotates; "
                     "use `guarded_by(" +
                     a.mutex_name + "): <member>`"});
            continue;
        }
        out.push_back(a);
    }
    return out;
}

struct Scope
{
    int parent = -1;
    /** (locked identifier, token index of the guard). */
    std::vector<std::pair<std::string, std::size_t>> locks;
};

} // namespace

void
checkLockDiscipline(FileScan &scan)
{
    const std::vector<Annotation> annotations =
        parseAnnotations(scan);
    if (annotations.empty())
        return;

    const auto &t = scan.toks;

    // Forward pass: scope tree + guard registrations + the scope
    // each token lives in.
    std::vector<Scope> scopes(1);
    std::vector<int> stack{0};
    std::vector<int> scope_of(t.size(), 0);

    for (std::size_t i = 0; i < t.size(); ++i) {
        scope_of[i] = stack.back();
        if (t[i].kind == Token::Kind::Punct) {
            if (t[i].text == "{") {
                scopes.push_back({stack.back(), {}});
                stack.push_back(static_cast<int>(scopes.size()) - 1);
            } else if (t[i].text == "}" && stack.size() > 1) {
                stack.pop_back();
            }
            continue;
        }
        if (t[i].kind != Token::Kind::Ident ||
            !guard_types.count(t[i].text))
            continue;

        // guard_type [<...>] var ( mutex [, mutex...] )   -- or {}.
        std::size_t j = i + 1;
        if (isPunct(t, j, "<")) {
            j = skipAngles(t, j);
            if (j == std::string::npos)
                continue;
        }
        if (!isIdent(t, j))
            continue;
        const bool paren = isPunct(t, j + 1, "(");
        const bool brace = isPunct(t, j + 1, "{");
        if (!paren && !brace)
            continue;
        const char *close = paren ? ")" : "}";
        const char *open = paren ? "(" : "{";
        int depth = 0;
        for (std::size_t k = j + 1; k < t.size(); ++k) {
            if (t[k].kind == Token::Kind::Punct) {
                if (t[k].text == open)
                    ++depth;
                else if (t[k].text == close && --depth == 0)
                    break;
            } else if (t[k].kind == Token::Kind::Ident &&
                       !isPunct(t, k + 1, "(")) {
                // Every identifier in the argument list counts as
                // locked (scoped_lock takes several mutexes;
                // `other.mu_` registers both parts, harmlessly).
                scopes[stack.back()].locks.push_back(
                    {t[k].text, i});
            }
        }
    }

    // Verify every use of every annotated member.
    for (const Annotation &a : annotations) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Ident ||
                t[i].text != a.member)
                continue;
            if (t[i].line == a.line || t[i].line == a.line + 1)
                continue; // the annotated declaration itself
            bool guarded = false;
            for (int s = scope_of[i]; s != -1 && !guarded;
                 s = scopes[s].parent)
                for (const auto &[name, at] : scopes[s].locks)
                    if (name == a.mutex_name && at < i) {
                        guarded = true;
                        break;
                    }
            if (guarded ||
                scan.sup.covers("lock-discipline", t[i].line))
                continue;
            scan.diags.push_back(
                {scan.src.path, t[i].line, "lock-discipline",
                 "'" + a.member + "' is guarded_by(" +
                     a.mutex_name +
                     ") but no lock_guard/unique_lock/scoped_lock/"
                     "shared_lock on it is in scope here"});
        }
    }
}

} // namespace ramp_lint
