/**
 * @file
 * docs/metrics.manifest parsing. The manifest is the single source
 * of truth for telemetry names; each line is
 *
 *     <kind> <name> <scope>
 *
 * kind  := counter | gauge | histogram | span | instant
 * scope := fig2 (counted in the bench_fig2_archdvs --metrics
 *          emission check) | aux (production name registered on a
 *          path fig2 does not exercise) | test (test-only; may be
 *          referenced only under tests/)
 *
 * `#` starts a comment; blank lines are ignored.
 */

#include "lint.hh"

#include <fstream>
#include <sstream>

namespace ramp_lint {

namespace {

bool
validKind(const std::string &kind)
{
    return kind == "counter" || kind == "gauge" ||
           kind == "histogram" || kind == "span" ||
           kind == "instant";
}

bool
validScope(const std::string &scope)
{
    return scope == "fig2" || scope == "aux" || scope == "test";
}

} // namespace

Manifest
loadManifest(const std::filesystem::path &path,
             std::vector<Diagnostic> &diags)
{
    Manifest m;
    m.path = path;
    std::ifstream in(path);
    if (!in) {
        diags.push_back({path, 0, "metrics-manifest",
                         "cannot open manifest"});
        return m;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string kind, name, scope, extra;
        if (!(ss >> kind))
            continue;
        if (!(ss >> name >> scope) || (ss >> extra)) {
            diags.push_back({path, lineno, "metrics-manifest",
                             "malformed line (want: <kind> <name> "
                             "<scope>)"});
            continue;
        }
        if (!validKind(kind)) {
            diags.push_back({path, lineno, "metrics-manifest",
                             "unknown kind '" + kind + "'"});
            continue;
        }
        if (!validScope(scope)) {
            diags.push_back({path, lineno, "metrics-manifest",
                             "unknown scope '" + scope + "'"});
            continue;
        }
        if (m.entries.count(name)) {
            diags.push_back({path, lineno, "metrics-manifest",
                             "duplicate entry '" + name + "'"});
            continue;
        }
        m.entries[name] = {kind, scope, lineno, false};
    }
    return m;
}

} // namespace ramp_lint
