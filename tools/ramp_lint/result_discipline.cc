/**
 * @file
 * Pass 2: Result discipline. Two halves:
 *
 *  (a) every function declared in a src/ header returning
 *      `Result<...>` or `util::BatchReport` must be `[[nodiscard]]`
 *      (the attribute also sits on the Result class itself, but the
 *      per-function sweep keeps intent visible at the API surface
 *      and catches wrappers that peel the type);
 *
 *  (b) a statement-position call of *any* function known (from the
 *      whole scanned tree, cross-TU, by name) to return
 *      Result/BatchReport is a discarded error -- this catches what
 *      the compiler cannot see across translation units in tool
 *      scope, and fires even in builds without -Werror.
 *
 * Explicit discard stays expressible as `(void) call(...)`, which
 * the pass recognises and skips.
 */

#include "lint.hh"

namespace ramp_lint {

namespace {

bool
isPunct(const std::vector<Token> &t, std::size_t i,
        const char *text)
{
    return i < t.size() && t[i].kind == Token::Kind::Punct &&
           t[i].text == text;
}

bool
isIdent(const std::vector<Token> &t, std::size_t i)
{
    return i < t.size() && t[i].kind == Token::Kind::Ident;
}

/**
 * Skip a balanced template-argument list starting at the `<` at
 * @p i; returns the index one past the closing `>`, honouring `>>`
 * closing two levels. npos when the angles never close (comparison
 * operator, not a template).
 */
std::size_t
skipAngles(const std::vector<Token> &t, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size() && j < i + 256; ++j) {
        if (t[j].kind != Token::Kind::Punct)
            continue;
        const std::string &p = t[j].text;
        if (p == "<") {
            ++depth;
        } else if (p == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (p == ">>") {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        } else if (p == ";" || p == "{" || p == "}") {
            return std::string::npos;
        }
    }
    return std::string::npos;
}

/** Does the declaration window before @p i carry [[nodiscard]]? */
bool
hasNodiscardBefore(const std::vector<Token> &t, std::size_t i)
{
    // Walk back across the return type's qualifiers to the previous
    // statement/member boundary, looking for the attribute.
    std::size_t steps = 0;
    for (std::size_t j = i; j-- > 0 && steps < 16; ++steps) {
        const Token &tok = t[j];
        if (tok.kind == Token::Kind::Punct &&
            (tok.text == ";" || tok.text == "{" ||
             tok.text == "}" || tok.text == "(" ||
             tok.text == ","))
            return false;
        if (tok.kind == Token::Kind::Ident &&
            tok.text == "nodiscard")
            return true;
    }
    return false;
}

} // namespace

void
collectResultFns(FileScan &scan, bool enforce_nodiscard)
{
    const auto &t = scan.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Kind::Ident)
            continue;
        const bool is_result = t[i].text == "Result";
        const bool is_batch = t[i].text == "BatchReport";
        if (!is_result && !is_batch)
            continue;

        // A trailing-return or template-argument position is not a
        // declaration we police.
        if (i > 0 && t[i - 1].kind == Token::Kind::Punct &&
            (t[i - 1].text == "->" || t[i - 1].text == "<" ||
             t[i - 1].text == ","))
            continue;

        std::size_t after = i + 1;
        if (is_result) {
            if (!isPunct(t, after, "<"))
                continue;
            after = skipAngles(t, after);
            if (after == std::string::npos)
                continue;
        }

        // Expect the declarator: IDENT (:: IDENT)* followed by `(`.
        if (!isIdent(t, after))
            continue;
        std::size_t name_at = after;
        while (isPunct(t, name_at + 1, "::") &&
               isIdent(t, name_at + 2))
            name_at += 2;
        if (!isPunct(t, name_at + 1, "("))
            continue;

        const std::string name = t[name_at].text;
        scan.result_fns.push_back(name);

        if (enforce_nodiscard && !hasNodiscardBefore(t, i) &&
            !scan.sup.covers("result-discipline", t[i].line)) {
            scan.diags.push_back(
                {scan.src.path, t[i].line, "result-discipline",
                 "'" + name + "' returns " +
                     (is_result ? "Result" : "BatchReport") +
                     " but is not [[nodiscard]]; errors must not "
                     "be silently droppable"});
        }
    }
}

void
checkDiscarded(const FileScan &scan,
               const std::set<std::string> &result_fns,
               std::vector<Diagnostic> &out)
{
    const auto &t = scan.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Kind::Ident ||
            !isPunct(t, i + 1, "(") || !result_fns.count(t[i].text))
            continue;

        // Walk back over the receiver chain (`obj.method`,
        // `ns::fn`); a chain through a call result (`f().g()`) is
        // left alone -- too little structure to judge.
        std::size_t start = i;
        bool judged = true;
        while (start >= 2 && t[start - 1].kind == Token::Kind::Punct &&
               (t[start - 1].text == "." ||
                t[start - 1].text == "->" ||
                t[start - 1].text == "::")) {
            if (t[start - 2].kind != Token::Kind::Ident) {
                judged = false;
                break;
            }
            start -= 2;
        }
        if (!judged)
            continue;

        // Statement position: starts a block/statement, or follows
        // a control header's `)`. `(void)` is the sanctioned
        // explicit discard; anything else before the call means the
        // value is consumed.
        bool stmt = start == 0;
        if (start > 0) {
            const Token &prev = t[start - 1];
            if (prev.kind == Token::Kind::Punct &&
                (prev.text == ";" || prev.text == "{" ||
                 prev.text == "}")) {
                stmt = true;
            } else if (prev.kind == Token::Kind::Ident &&
                       prev.text == "else") {
                stmt = true;
            } else if (prev.kind == Token::Kind::Punct &&
                       prev.text == ")") {
                const bool void_cast =
                    start >= 3 && isIdent(t, start - 2) &&
                    t[start - 2].text == "void" &&
                    isPunct(t, start - 3, "(");
                stmt = !void_cast;
            }
        }
        if (!stmt)
            continue;

        // The whole statement must be exactly this call: the
        // matching `)` is immediately followed by `;`.
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].kind != Token::Kind::Punct)
                continue;
            if (t[j].text == "(")
                ++depth;
            else if (t[j].text == ")" && --depth == 0) {
                close = j;
                break;
            }
        }
        if (close == std::string::npos ||
            !isPunct(t, close + 1, ";"))
            continue;
        if (scan.sup.covers("result-discipline", t[i].line))
            continue;
        out.push_back(
            {scan.src.path, t[i].line, "result-discipline",
             "result of '" + t[i].text +
                 "' (returns Result/BatchReport) is discarded; "
                 "handle the error, assign it, or cast to (void) "
                 "deliberately"});
    }
}

} // namespace ramp_lint
