/**
 * @file
 * Source loading for ramp-lint: comment/string-aware preprocessing
 * (so a banned token inside a string or comment never fires) and the
 * directory walk.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace ramp_lint {

namespace fs = std::filesystem;

bool
SourceFile::isHeader() const
{
    return path.extension() == ".hh" || path.extension() == ".h";
}

std::size_t
SourceFile::lineOf(std::size_t offset) const
{
    std::size_t line = 1;
    for (std::size_t i = 0; i < offset && i < raw.size(); ++i)
        if (raw[i] == '\n')
            ++line;
    return line;
}

namespace {

/** Replace every non-newline char in [begin, end) with a space. */
void
blank(std::string &text, std::size_t begin, std::size_t end)
{
    for (std::size_t i = begin; i < end && i < text.size(); ++i)
        if (text[i] != '\n')
            text[i] = ' ';
}

/**
 * Walk the raw text once, classifying comments, string literals and
 * char literals (including raw strings). Produces the two blanked
 * views and the per-line comment texts.
 */
void
preprocess(SourceFile &src)
{
    const std::string &raw = src.raw;
    src.code_str = raw;
    src.code = raw;

    std::size_t i = 0;
    std::size_t line = 1;
    while (i < raw.size()) {
        const char c = raw[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (c == '/' && i + 1 < raw.size() &&
                   raw[i + 1] == '/') {
            std::size_t end = raw.find('\n', i);
            if (end == std::string::npos)
                end = raw.size();
            src.comments.push_back(
                {line, raw.substr(i + 2, end - i - 2), true});
            blank(src.code_str, i, end);
            blank(src.code, i, end);
            i = end;
        } else if (c == '/' && i + 1 < raw.size() &&
                   raw[i + 1] == '*') {
            std::size_t end = raw.find("*/", i + 2);
            end = end == std::string::npos ? raw.size() : end + 2;
            // Record the body line by line so a marker inside a
            // block comment still reports the right line.
            std::size_t seg = i + 2;
            std::size_t seg_line = line;
            while (seg < end) {
                std::size_t nl = raw.find('\n', seg);
                std::size_t stop =
                    nl == std::string::npos || nl >= end ? end : nl;
                src.comments.push_back(
                    {seg_line, raw.substr(seg, stop - seg), false});
                if (stop == nl) {
                    ++seg_line;
                    seg = nl + 1;
                } else {
                    seg = end;
                }
            }
            for (std::size_t k = i; k < end; ++k)
                if (raw[k] == '\n')
                    ++line;
            blank(src.code_str, i, end);
            blank(src.code, i, end);
            i = end;
        } else if (c == 'R' && i + 1 < raw.size() &&
                   raw[i + 1] == '"') {
            // Raw string literal: R"delim( ... )delim".
            std::size_t paren = raw.find('(', i + 2);
            if (paren == std::string::npos) {
                ++i;
                continue;
            }
            const std::string delim =
                raw.substr(i + 2, paren - i - 2);
            const std::string close = ")" + delim + "\"";
            std::size_t end = raw.find(close, paren + 1);
            end = end == std::string::npos ? raw.size()
                                           : end + close.size();
            blank(src.code, i, end);
            for (std::size_t k = i; k < end; ++k)
                if (raw[k] == '\n')
                    ++line;
            i = end;
        } else if (c == '\'' && i > 0 &&
                   (std::isalnum(
                        static_cast<unsigned char>(raw[i - 1])) ||
                    raw[i - 1] == '_')) {
            // Digit separator (10'000) or suffix position, not a
            // char literal.
            ++i;
        } else if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < raw.size() && raw[j] != quote &&
                   raw[j] != '\n') {
                if (raw[j] == '\\')
                    ++j;
                ++j;
            }
            // Leave an unterminated literal's newline to the main
            // loop so line counting never drifts.
            const std::size_t end =
                j < raw.size() && raw[j] == quote ? j + 1 : j;
            if (end > i + 1)
                blank(src.code, i + 1, end - 1);
            i = end;
        } else {
            ++i;
        }
    }
}

} // namespace

SourceFile
loadSource(const fs::path &path)
{
    SourceFile src;
    src.path = path;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    src.raw = ss.str();
    preprocess(src);
    return src;
}

bool
collectSources(const std::vector<fs::path> &dirs,
               std::vector<fs::path> &out, std::string &error)
{
    for (const auto &dir : dirs) {
        std::error_code ec;
        if (fs::is_regular_file(dir, ec)) {
            out.push_back(dir);
            continue;
        }
        if (!fs::is_directory(dir, ec)) {
            // A missing or unreadable path must never degrade to a
            // silently smaller scan: the tree "passes" because half
            // of it was skipped.
            error = dir.generic_string() +
                    ": not a file or readable directory" +
                    (ec ? " (" + ec.message() + ")" : "");
            return false;
        }
        auto it = fs::recursive_directory_iterator(
            dir, fs::directory_options::none, ec);
        if (ec) {
            error = dir.generic_string() + ": " + ec.message();
            return false;
        }
        for (; it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec) {
                error = dir.generic_string() + ": " + ec.message();
                return false;
            }
            const fs::path &p = it->path();
            const std::string name = p.filename().string();
            if (it->is_directory() &&
                (name == "fixtures" ||
                 name.rfind("build", 0) == 0)) {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const auto ext = p.extension();
            if (ext == ".cc" || ext == ".hh" || ext == ".h" ||
                ext == ".cpp")
                out.push_back(p);
        }
    }
    std::sort(out.begin(), out.end());
    return true;
}

} // namespace ramp_lint
