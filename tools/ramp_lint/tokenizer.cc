/**
 * @file
 * The shared tokenizer feeding ramp-lint's token-level passes. It
 * lexes the comment-blanked view of a file (so comments never
 * produce tokens) while keeping string/char literals as single
 * tokens with their inner text -- the wire-schema pass reads field
 * names out of them -- and tracks the 1-based line of every token.
 *
 * This is a scanner, not a compiler front end: it knows maximal-
 * munch operator spelling (`->`, `::`, `+=`, `<<=`, ...) and literal
 * forms (including raw strings and digit separators), and nothing
 * about the grammar above tokens. The passes layer their own small
 * amount of structure (scope trees, member chains) on top.
 */

#include "lint.hh"

#include <cctype>

namespace ramp_lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators, longest first per leading char. */
const char *const multi_ops[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  ".*",
};

/** Encoding prefixes that may precede a string/char literal. */
bool
isLiteralPrefix(const std::string &word)
{
    return word == "R" || word == "L" || word == "u" ||
           word == "U" || word == "u8" || word == "LR" ||
           word == "uR" || word == "UR" || word == "u8R";
}

} // namespace

std::vector<Token>
tokenize(const SourceFile &src)
{
    const std::string &text = src.code_str;
    std::vector<Token> toks;
    toks.reserve(text.size() / 6);

    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = text.size();

    auto scanQuoted = [&](std::size_t start, char quote,
                          bool raw) -> std::size_t {
        // Returns one past the closing delimiter; pushes the token.
        if (raw) {
            std::size_t paren = text.find('(', start + 1);
            if (paren == std::string::npos)
                return start + 1;
            const std::string close =
                ")" + text.substr(start + 1, paren - start - 1) +
                "\"";
            std::size_t end = text.find(close, paren + 1);
            const std::size_t body = paren + 1;
            const std::size_t stop =
                end == std::string::npos ? n : end;
            toks.push_back({Token::Kind::String,
                            text.substr(body, stop - body), line});
            for (std::size_t k = start; k < stop; ++k)
                if (text[k] == '\n')
                    ++line;
            return end == std::string::npos ? n
                                            : end + close.size();
        }
        std::size_t j = start + 1;
        while (j < n && text[j] != quote && text[j] != '\n') {
            if (text[j] == '\\' && j + 1 < n)
                ++j;
            ++j;
        }
        toks.push_back({quote == '"' ? Token::Kind::String
                                     : Token::Kind::CharLit,
                        text.substr(start + 1, j - start - 1),
                        line});
        return j < n && text[j] == quote ? j + 1 : j;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < n && identChar(text[j]))
                ++j;
            std::string word = text.substr(i, j - i);
            if (j < n && (text[j] == '"' || text[j] == '\'') &&
                isLiteralPrefix(word)) {
                const bool raw = word.back() == 'R';
                i = scanQuoted(j, text[j], raw);
                continue;
            }
            toks.push_back(
                {Token::Kind::Ident, std::move(word), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            std::size_t j = i + 1;
            while (j < n &&
                   (identChar(text[j]) || text[j] == '.' ||
                    text[j] == '\'' ||
                    ((text[j] == '+' || text[j] == '-') &&
                     (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                      text[j - 1] == 'p' || text[j - 1] == 'P'))))
                ++j;
            toks.push_back(
                {Token::Kind::Number, text.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (c == '"' || c == '\'') {
            i = scanQuoted(i, c, false);
            continue;
        }
        // Operators: longest match from the table, else one char.
        std::string op(1, c);
        for (const char *cand : multi_ops) {
            const std::size_t len = std::char_traits<char>::length(cand);
            if (cand[0] == c && i + len <= n &&
                text.compare(i, len, cand) == 0) {
                op = cand;
                break;
            }
        }
        toks.push_back({Token::Kind::Punct, op, line});
        i += op.size();
    }
    return toks;
}

} // namespace ramp_lint
