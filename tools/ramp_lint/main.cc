/**
 * @file
 * ramp-lint CLI. Walks the repo (or explicit paths), scans every
 * file across a thread pool, runs the cross-file passes, and prints
 * `path:line: [rule] message` per finding in path-sorted order.
 *
 *   ramp_lint --root DIR [--manifest FILE] [--threads N]
 *             [--dump-metrics] [--no-manifest] [PATH...]
 *
 * With no PATH arguments the default walk is root/{src,bench,
 * examples,tests,tools}. A missing or unreadable root or PATH is a
 * hard error -- the scan never silently shrinks. `--threads 0`
 * (default) uses hardware concurrency; output is bit-identical at
 * any thread count because per-file results merge in path order.
 * `--dump-metrics` prints the extracted `<kind> <name>` set instead
 * of linting (used to seed the manifest). Exit: 0 clean, 1
 * findings, 2 usage error.
 */

#include "lint.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "util/thread_pool.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --root DIR [--manifest FILE] [--threads N]\n"
        "          [--dump-metrics] [--no-manifest] [PATH...]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    using namespace ramp_lint;

    fs::path root;
    fs::path manifest_path;
    bool dump = false;
    bool no_manifest = false;
    unsigned threads = 0;
    std::vector<fs::path> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--manifest" && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            char *end = nullptr;
            const unsigned long v =
                std::strtoul(argv[++i], &end, 10);
            if (!end || *end != '\0') {
                std::fprintf(stderr,
                             "--threads %s: not an integer\n",
                             argv[i]);
                return usage(argv[0]);
            }
            threads = static_cast<unsigned>(v);
        } else if (arg == "--dump-metrics") {
            dump = true;
        } else if (arg == "--no-manifest") {
            no_manifest = true;
        } else if (arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (root.empty())
        return usage(argv[0]);
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "--root %s: not a directory\n",
                     root.string().c_str());
        return 2;
    }
    if (paths.empty()) {
        for (const char *d :
             {"src", "bench", "examples", "tests", "tools"}) {
            const fs::path p = root / d;
            if (!fs::is_directory(p)) {
                std::fprintf(
                    stderr,
                    "--root %s: expected subdirectory %s is "
                    "missing; pass explicit PATH arguments to "
                    "lint a partial tree\n",
                    root.string().c_str(), d);
                return 2;
            }
            paths.push_back(p);
        }
    }
    if (manifest_path.empty())
        manifest_path = root / "docs" / "metrics.manifest";

    std::vector<fs::path> files;
    std::string walk_error;
    if (!collectSources(paths, files, walk_error)) {
        std::fprintf(stderr, "ramp-lint: %s\n",
                     walk_error.c_str());
        return 2;
    }
    if (files.empty()) {
        std::fprintf(stderr, "no sources found\n");
        return 2;
    }

    // Per-file scans are pure, so they fan out across the pool;
    // results land by index and merge in path order, keeping output
    // bit-identical at any thread count.
    const auto scan_start = std::chrono::steady_clock::now();
    ramp::util::ThreadPool pool(threads);
    std::vector<FileScan> scans(files.size());
    const auto batch =
        pool.parallelFor(files.size(), [&](std::size_t i) {
            scans[i] = scanFile(files[i], root);
        });
    if (!batch.ok()) {
        for (const auto &[index, err] : batch.failures)
            std::fprintf(stderr, "ramp-lint: %s: %s\n",
                         files[index].string().c_str(),
                         err.message.c_str());
        return 2;
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - scan_start)
            .count();

    if (dump) {
        std::set<std::pair<std::string, std::string>> seen;
        for (const auto &scan : scans)
            for (const auto &r : scan.refs)
                seen.insert({r.kind, r.name});
        for (const auto &[kind, name] : seen)
            std::printf("%s %s\n", kind.c_str(), name.c_str());
        return 0;
    }

    LintContext ctx;
    ctx.root = root;
    if (!no_manifest)
        ctx.manifest = loadManifest(manifest_path, ctx.diags);

    std::set<std::string> result_fns;
    for (const auto &scan : scans)
        result_fns.insert(scan.result_fns.begin(),
                          scan.result_fns.end());

    for (auto &scan : scans) {
        ctx.diags.insert(ctx.diags.end(), scan.diags.begin(),
                         scan.diags.end());
        checkDiscarded(scan, result_fns, ctx.diags);
        ctx.refs.insert(ctx.refs.end(), scan.refs.begin(),
                        scan.refs.end());
    }
    if (!no_manifest)
        checkManifest(ctx);
    checkWireSchema(root, scans, ctx.diags);

    for (const auto &d : ctx.diags)
        std::fprintf(stderr, "%s:%zu: [%s] %s\n",
                     d.file.generic_string().c_str(), d.line,
                     d.rule.c_str(), d.message.c_str());
    std::fprintf(stderr,
                 "ramp-lint: scanned %zu files in %.1f ms "
                 "(%u threads)\n",
                 files.size(), wall_ms, pool.threads());
    if (!ctx.diags.empty()) {
        std::fprintf(stderr, "ramp-lint: %zu finding(s) in %zu "
                             "file(s) scanned\n",
                     ctx.diags.size(), files.size());
        return 1;
    }
    std::printf("ramp-lint: clean (%zu files)\n", files.size());
    return 0;
}
