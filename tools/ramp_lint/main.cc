/**
 * @file
 * ramp-lint CLI. Walks the repo (or explicit paths), runs every
 * rule, and prints `path:line: [rule] message` per finding.
 *
 *   ramp_lint --root DIR [--manifest FILE] [--dump-metrics]
 *             [--no-manifest] [PATH...]
 *
 * With no PATH arguments the default walk is root/{src,bench,
 * examples,tests,tools}. `--dump-metrics` prints the extracted
 * `<kind> <name>` set instead of linting (used to seed the
 * manifest). Exit: 0 clean, 1 findings, 2 usage error.
 */

#include "lint.hh"

#include <cstdio>
#include <cstring>
#include <set>
#include <string>

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --root DIR [--manifest FILE] [--dump-metrics]\n"
        "          [--no-manifest] [PATH...]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    using namespace ramp_lint;

    fs::path root;
    fs::path manifest_path;
    bool dump = false;
    bool no_manifest = false;
    std::vector<fs::path> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--manifest" && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (arg == "--dump-metrics") {
            dump = true;
        } else if (arg == "--no-manifest") {
            no_manifest = true;
        } else if (arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (root.empty())
        return usage(argv[0]);
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "--root %s: not a directory\n",
                     root.string().c_str());
        return 2;
    }
    if (paths.empty())
        for (const char *d :
             {"src", "bench", "examples", "tests", "tools"})
            paths.push_back(root / d);
    if (manifest_path.empty())
        manifest_path = root / "docs" / "metrics.manifest";

    LintContext ctx;
    ctx.root = root;

    const auto files = collectSources(paths);
    if (files.empty()) {
        std::fprintf(stderr, "no sources found\n");
        return 2;
    }

    if (dump) {
        std::set<std::pair<std::string, std::string>> seen;
        for (const auto &f : files) {
            const SourceFile src = loadSource(f);
            std::vector<MetricRef> refs;
            extractMetricRefs(src, refs);
            for (const auto &r : refs)
                seen.insert({r.kind, r.name});
        }
        for (const auto &[kind, name] : seen)
            std::printf("%s %s\n", kind.c_str(), name.c_str());
        return 0;
    }

    if (!no_manifest)
        ctx.manifest = loadManifest(manifest_path, ctx.diags);

    for (const auto &f : files)
        checkFile(loadSource(f), ctx);
    if (!no_manifest)
        checkManifest(ctx);

    for (const auto &d : ctx.diags)
        std::fprintf(stderr, "%s:%zu: [%s] %s\n",
                     d.file.generic_string().c_str(), d.line,
                     d.rule.c_str(), d.message.c_str());
    if (!ctx.diags.empty()) {
        std::fprintf(stderr, "ramp-lint: %zu finding(s) in %zu "
                             "file(s) scanned\n",
                     ctx.diags.size(), files.size());
        return 1;
    }
    std::printf("ramp-lint: clean (%zu files)\n", files.size());
    return 0;
}
