/**
 * @file
 * The regex/line-level ramp-lint rules and the per-file scan
 * driver. Every rule reports `path:line: [rule] msg` diagnostics;
 * suppression is per-line via
 * `ramp-lint: allow(<rule>): <reason>` comments (reason mandatory).
 *
 * Scanning runs over the comment/string-blanked views built by
 * source.cc, so tokens inside comments or string literals never
 * trigger, and metric names are read only from recognised telemetry
 * call sites (plus `emits` markers for names that reach the registry
 * through a helper function). The token-level passes (units, Result
 * discipline, locks, wire schema) live in their own files and are
 * driven from scanFile() below.
 */

#include "lint.hh"

#include <cctype>
#include <regex>
#include <sstream>

namespace ramp_lint {

const std::set<std::string> &
knownRules()
{
    static const std::set<std::string> rules = {
        "metrics-manifest", "unit-suffix",
        "banned-rand",      "raw-new",
        "raw-delete",       "endl",
        "mutex-guard",      "pragma-once",
        "include-path",     "unit-consistency",
        "result-discipline", "lock-discipline",
        "wire-schema",
    };
    return rules;
}

Suppressions::Suppressions(const SourceFile &src,
                           std::vector<Diagnostic> &diags)
{
    // Built from split tokens so ramp-lint's own sources (which
    // mention the syntax in string literals) never self-match.
    static const std::regex allow_re(
        std::string("ramp-lint:\\s*al") +
        "low\\(([a-z-]+)\\)(\\s*:\\s*(\\S.*)?)?");
    for (const auto &c : src.comments) {
        if (!c.is_line)
            continue; // block comments may quote the syntax
        std::smatch m;
        if (!std::regex_search(c.text, m, allow_re))
            continue;
        const std::string rule = m[1];
        if (!knownRules().count(rule)) {
            diags.push_back({src.path, c.line, "suppression",
                             "allow() of unknown rule '" + rule +
                                 "'"});
            continue;
        }
        if (!m[3].matched || m[3].str().empty()) {
            diags.push_back({src.path, c.line, "suppression",
                             "allow(" + rule +
                                 ") needs a reason: "
                                 "`allow(" +
                                 rule + "): <why>`"});
            continue;
        }
        lines_[rule].insert(c.line);
        lines_[rule].insert(c.line + 1);
    }
}

bool
Suppressions::covers(const std::string &rule,
                     std::size_t line) const
{
    auto it = lines_.find(rule);
    return it != lines_.end() && it->second.count(line);
}

namespace {

void
report(FileScan &scan, std::size_t line, const std::string &rule,
       const std::string &msg)
{
    if (scan.sup.covers(rule, line))
        return;
    scan.diags.push_back({scan.src.path, line, rule, msg});
}

/** Apply @p re to @p text, calling fn(match, line) per match. */
template <typename Fn>
void
forEachMatch(const SourceFile &src, const std::string &text,
             const std::regex &re, Fn fn)
{
    auto begin =
        std::sregex_iterator(text.begin(), text.end(), re);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        fn(*it, src.lineOf(static_cast<std::size_t>(
               it->position(0))));
}

// ---------------------------------------------------------------
// Rule: unit-suffix
// ---------------------------------------------------------------

/** Quantity word (the final `_` token of a name) -> suffix advice. */
const std::map<std::string, std::string> quantity_words = {
    {"temp", "_k (Kelvin) or _c (Celsius)"},
    {"temperature", "_k (Kelvin) or _c (Celsius)"},
    {"ambient", "_k (Kelvin) or _c (Celsius)"},
    {"power", "_w (Watts) or _mw"},
    {"activity", "_af (activity factor)"},
    {"voltage", "_v (Volts)"},
    {"freq", "_ghz / _mhz / _hz"},
    {"frequency", "_ghz / _mhz / _hz"},
    {"consumed", "_frac (consumed-lifetime fraction)"},
    {"damage", "_frac (consumed-lifetime fraction)"},
    {"slack", "_frac (banked-budget fraction)"},
    {"age", "_hours (integrated operating time)"},
    {"eta", "_hours (or _years) to budget exhaustion"},
    {"lifetime", "_hours / _years"},
};

void
checkUnitSuffix(FileScan &scan)
{
    static const std::regex decl_re(
        "\\b(?:double|float)\\s+&?\\s*([A-Za-z_][A-Za-z0-9_]*)");
    forEachMatch(
        scan.src, scan.src.code, decl_re,
        [&](const std::smatch &m, std::size_t line) {
            const std::string name = m[1];
            const auto us = name.rfind('_');
            const std::string last =
                us == std::string::npos ? name
                                        : name.substr(us + 1);
            const auto it = quantity_words.find(last);
            if (it == quantity_words.end())
                return;
            report(scan, line, "unit-suffix",
                   "'" + name +
                       "' carries a physical quantity but no unit "
                       "suffix; use " +
                       it->second);
        });
}

// ---------------------------------------------------------------
// Rule: banned patterns
// ---------------------------------------------------------------

void
checkBanned(FileScan &scan)
{
    const SourceFile &src = scan.src;
    const std::string path = src.path.generic_string();

    // std::rand/srand: the only sanctioned randomness source is
    // src/util/random (seeded, reproducible across threads).
    if (path.find("src/util/random") == std::string::npos) {
        static const std::regex rand_re(
            "\\bstd::rand\\b|\\bsrand\\s*\\(|[^:\\w]rand\\s*\\(");
        forEachMatch(src, src.code, rand_re,
                     [&](const std::smatch &, std::size_t line) {
                         report(scan, line, "banned-rand",
                                "std::rand/srand is banned; use "
                                "util::Random (seeded, "
                                "reproducible)");
                     });
    }

    // Raw new/delete: ownership must be RAII
    // (unique_ptr/vector/deque). `= delete;` declarations and
    // words like new_argc do not match.
    static const std::regex new_re("\\bnew\\s+[A-Za-z_:<(]");
    forEachMatch(src, src.code, new_re,
                 [&](const std::smatch &, std::size_t line) {
                     report(scan, line, "raw-new",
                            "raw new is banned; use "
                            "std::make_unique or a container");
                 });
    static const std::regex del_re(
        "\\bdelete\\s*\\[?\\]?\\s+[A-Za-z_(*]|\\bdelete\\s+\\[");
    forEachMatch(src, src.code, del_re,
                 [&](const std::smatch &, std::size_t line) {
                     report(scan, line, "raw-delete",
                            "raw delete is banned; use RAII "
                            "ownership");
                 });

    // std::endl flushes; benches print per-row in hot loops.
    static const std::regex endl_re("\\bstd::endl\\b");
    forEachMatch(src, src.code, endl_re,
                 [&](const std::smatch &, std::size_t line) {
                     report(scan, line, "endl",
                            "std::endl is banned (hidden flush); "
                            "use '\\n'");
                 });

    // Locking a mutex member directly leaks the lock on early
    // return/throw; use lock_guard/unique_lock/scoped_lock.
    // Calls on guard objects (e.g. `lock.lock()`) are fine.
    static const std::regex lock_re(
        "\\b([A-Za-z_][A-Za-z0-9_]*)(\\.|->)lock\\s*\\(\\s*\\)");
    forEachMatch(
        src, src.code, lock_re,
        [&](const std::smatch &m, std::size_t line) {
            std::string obj = m[1];
            while (!obj.empty() && obj.back() == '_')
                obj.pop_back();
            const bool mutexish =
                obj == "mu" || obj == "mtx" ||
                obj.find("mutex") != std::string::npos ||
                (obj.size() > 3 &&
                 (obj.rfind("_mu") == obj.size() - 3 ||
                  obj.rfind("_mtx") == obj.size() - 4));
            if (!mutexish)
                return;
            report(scan, line, "mutex-guard",
                   "direct " + obj +
                       ".lock(); hold mutexes via "
                       "std::lock_guard/unique_lock/scoped_lock");
        });
}

// ---------------------------------------------------------------
// Rule: include hygiene
// ---------------------------------------------------------------

void
checkIncludes(FileScan &scan, const std::filesystem::path &root)
{
    namespace fs = std::filesystem;
    const SourceFile &src = scan.src;

    if (src.isHeader()) {
        // First non-blank line of the comment-stripped view must be
        // `#pragma once`.
        std::istringstream ss(src.code);
        std::string line;
        std::size_t lineno = 0;
        bool pragma_first = false;
        while (std::getline(ss, line)) {
            ++lineno;
            const auto pos = line.find_first_not_of(" \t\r");
            if (pos == std::string::npos)
                continue;
            pragma_first =
                line.compare(pos, 12, "#pragma once") == 0;
            break;
        }
        if (!pragma_first)
            report(scan, 1, "pragma-once",
                   "header must start with #pragma once");
    }

    static const std::regex inc_re(
        "#\\s*include\\s+\"([^\"]+)\"");
    forEachMatch(
        src, src.code_str, inc_re,
        [&](const std::smatch &m, std::size_t line) {
            const std::string inc = m[1];
            if (inc.find("..") != std::string::npos) {
                report(scan, line, "include-path",
                       "upward include \"" + inc +
                           "\"; include from the src/ root "
                           "instead");
                return;
            }
            const fs::path sibling = src.path.parent_path() / inc;
            const fs::path rooted = root / "src" / inc;
            if (!fs::exists(sibling) && !fs::exists(rooted))
                report(scan, line, "include-path",
                       "\"" + inc +
                           "\" resolves neither next to the "
                           "includer nor under src/");
        });
}

} // namespace

// ---------------------------------------------------------------
// Metric reference extraction
// ---------------------------------------------------------------

void
extractMetricRefs(const SourceFile &src,
                  std::vector<MetricRef> &refs)
{
    // Registration/lookup call sites with a literal first argument:
    // telemetry::counter("x"), reg.gauge("x"), snap.counter("x"),
    // telemetry::histogram("x", ...), telemetry::instant("x", ...).
    static const std::regex call_re(
        std::string("\\b(counter|gauge|histogram|ins") +
        "tant)\\s*\\(\\s*\"([^\"]+)\"");
    forEachMatch(src, src.code_str, call_re,
                 [&](const std::smatch &m, std::size_t line) {
                     refs.push_back(
                         {m[1], m[2], src.path, line});
                 });

    // Registry::recordSpan / recordInstant with a literal name.
    static const std::regex rec_re(
        std::string("\\brecord(Span|Ins") +
        "tant)\\s*\\(\\s*\"([^\"]+)\"");
    forEachMatch(src, src.code_str, rec_re,
                 [&](const std::smatch &m, std::size_t line) {
                     refs.push_back({m[1] == "Span" ? "span"
                                                    : "instant",
                                     m[2], src.path, line});
                 });

    // ScopedTimer's second argument is a span name.
    static const std::regex timer_re(
        std::string("\\bScopedTi") +
        "mer\\s+\\w+\\s*\\(\\s*[^,()]*,\\s*\"([^\"]+)\"");
    forEachMatch(src, src.code_str, timer_re,
                 [&](const std::smatch &m, std::size_t line) {
                     refs.push_back(
                         {"span", m[1], src.path, line});
                 });

    // SensorChannel's channelInstant helper: the first argument is
    // the channel label (a variable), the second the instant name.
    static const std::regex chan_re(
        std::string("\\bchannelIns") +
        "tant\\s*\\(\\s*[^,()\"]*,\\s*\"([^\"]+)\"");
    forEachMatch(src, src.code_str, chan_re,
                 [&](const std::smatch &m, std::size_t line) {
                     refs.push_back(
                         {"instant", m[1], src.path, line});
                 });

    // cmp::coreCounter builds per-core names: the first argument is
    // the core index (an expression), the second the suffix of
    // `cmp.core<i>.<suffix>`. The manifest documents each suffix
    // once in that templated form.
    static const std::regex core_re(
        std::string("\\bcoreCoun") +
        "ter\\s*\\(\\s*[^,()\"]*,\\s*\"([^\"]+)\"");
    forEachMatch(src, src.code_str, core_re,
                 [&](const std::smatch &m, std::size_t line) {
                     refs.push_back({"counter",
                                     "cmp.core<i>." + m[1].str(),
                                     src.path, line});
                 });

    // Names that reach the registry through a helper carry a marker
    // comment at the call site.
    static const std::regex marker_re(
        std::string("ramp-lint:\\s*em") +
        "its\\((counter|gauge|histogram|span|instant),"
        "\\s*([A-Za-z0-9_.]+)\\)");
    for (const auto &c : src.comments) {
        std::smatch m;
        std::string rest = c.text;
        while (std::regex_search(rest, m, marker_re)) {
            refs.push_back({m[1], m[2], src.path, c.line});
            rest = m.suffix();
        }
    }
}

// ---------------------------------------------------------------
// Cross-file: manifest consistency
// ---------------------------------------------------------------

namespace {

/** Each maximal digit run replaced with `<i>`, so a literal site
 *  like `counter("cmp.core3.evals")` can match the one templated
 *  manifest row `cmp.core<i>.evals`. */
std::string
templateDigits(const std::string &name)
{
    std::string out;
    for (std::size_t i = 0; i < name.size();) {
        if (std::isdigit(static_cast<unsigned char>(name[i]))) {
            out += "<i>";
            while (i < name.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(name[i])))
                ++i;
        } else {
            out += name[i++];
        }
    }
    return out;
}

} // namespace

void
checkManifest(LintContext &ctx)
{
    for (const auto &ref : ctx.refs) {
        auto it = ctx.manifest.entries.find(ref.name);
        if (it == ctx.manifest.entries.end()) {
            // Fall back to the templated form before declaring the
            // name undocumented.
            const std::string templated = templateDigits(ref.name);
            if (templated != ref.name)
                it = ctx.manifest.entries.find(templated);
        }
        if (it == ctx.manifest.entries.end()) {
            ctx.diags.push_back(
                {ref.file, ref.line, "metrics-manifest",
                 ref.kind + " '" + ref.name +
                     "' is not in " +
                     ctx.manifest.path.generic_string() +
                     "; document it (kind, name, scope)"});
            continue;
        }
        auto &entry = it->second;
        entry.referenced = true;
        if (entry.kind != ref.kind) {
            ctx.diags.push_back(
                {ref.file, ref.line, "metrics-manifest",
                 "'" + ref.name + "' used as " + ref.kind +
                     " but declared " + entry.kind +
                     " in the manifest"});
        }
        const bool in_tests =
            ref.file.generic_string().find("tests/") !=
            std::string::npos;
        if (entry.scope == "test" && !in_tests) {
            ctx.diags.push_back(
                {ref.file, ref.line, "metrics-manifest",
                 "'" + ref.name +
                     "' is test-scoped but referenced outside "
                     "tests/"});
        }
    }
    for (const auto &[name, entry] : ctx.manifest.entries) {
        if (!entry.referenced)
            ctx.diags.push_back(
                {ctx.manifest.path, entry.line,
                 "metrics-manifest",
                 "dead manifest entry '" + name +
                     "': no reference anywhere in the tree"});
    }
}

// ---------------------------------------------------------------
// Per-file scan driver
// ---------------------------------------------------------------

void
runLineRules(FileScan &scan, const std::filesystem::path &root)
{
    checkUnitSuffix(scan);
    checkBanned(scan);
    checkIncludes(scan, root);
    extractMetricRefs(scan.src, scan.refs);

    // Suppressions also apply to manifest diagnostics raised later
    // at a ref site; manifest checking happens cross-file with no
    // per-file suppression context, so drop suppressed refs now.
    std::erase_if(scan.refs, [&](const MetricRef &ref) {
        return scan.sup.covers("metrics-manifest", ref.line);
    });
}

FileScan
scanFile(const std::filesystem::path &path,
         const std::filesystem::path &root)
{
    FileScan scan;
    scan.src = loadSource(path);
    scan.toks = tokenize(scan.src);
    scan.sup = Suppressions(scan.src, scan.diags);

    runLineRules(scan, root);
    checkUnits(scan);

    const std::string p = path.generic_string();
    const bool src_header =
        scan.src.isHeader() && p.find("src/") != std::string::npos;
    collectResultFns(scan, src_header);
    checkLockDiscipline(scan);
    return scan;
}

} // namespace ramp_lint
