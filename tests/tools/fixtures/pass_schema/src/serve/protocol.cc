/** Fixture: minimal protocol table consistent with the design doc,
 *  the README, and the serve tests. */

namespace fixture {

struct FieldRule
{
    int field;
    const char *name;
    bool required;
    int min_version;
};

struct TypeRule
{
    int type;
    int min_version;
    const FieldRule *fields;
    unsigned n_fields;
};

const char *const type_names[] = {"ping", "echo"};

constexpr FieldRule echo_fields[] = {
    {0, "msg", true, 0},
    {1, "tag", false, 1},
};

constexpr TypeRule type_rules[] = {
    {0, 0, nullptr, 0},
    {1, 0, echo_fields, 2},
};

} // namespace fixture
