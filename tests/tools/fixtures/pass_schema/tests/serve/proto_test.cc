/** Fixture: serve tests exercising every verb and field. */

namespace fixture {

const char *const exercised[] = {"ping", "echo", "msg", "tag"};

} // namespace fixture
