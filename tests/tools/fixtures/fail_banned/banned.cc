#include <cstdlib>
#include <iostream>
#include <mutex>

static std::mutex mu_;

int
roll()
{
    mu_.lock();
    int *p = new int(std::rand());
    std::cout << *p << std::endl;
    int v = *p;
    delete p;
    mu_.unlock();
    return v;
}

void
reseed()
{
    // ramp-lint: allow(banned-rand)
    srand(42);
}
