/** A header that satisfies every ramp-lint rule. */

#pragma once

namespace fixture {

struct Sensor
{
    double temp_k = 300.0;
    double power_w = 0.0;
    double activity_af = 0.5;
};

double readTemperature(const Sensor &s);

} // namespace fixture
