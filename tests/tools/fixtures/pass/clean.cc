/** Clean fixture: documented metric, suffixed quantities, RAII. */

#include "clean.hh"

#include <memory>
#include <string>

namespace telemetry {
struct Counter { void add() const {} };
Counter counter(const std::string &);
} // namespace telemetry

namespace fixture {

double
readTemperature(const Sensor &s)
{
    telemetry::counter("fixture.reads").add();
    auto owned = std::make_unique<Sensor>(s);
    return owned->temp_k;
}

} // namespace fixture
