/** Clean fixture: documented metric, suffixed quantities, RAII. */

#include "clean.hh"

#include <cstddef>
#include <memory>
#include <string>

namespace telemetry {
struct Counter { void add() const {} };
Counter counter(const std::string &);
} // namespace telemetry

namespace cmp {
telemetry::Counter coreCounter(std::size_t, const std::string &);
} // namespace cmp

namespace fixture {

double
readTemperature(const Sensor &s)
{
    telemetry::counter("fixture.reads").add();
    auto owned = std::make_unique<Sensor>(s);
    return owned->temp_k;
}

void
tickCore(std::size_t core)
{
    // Extracted as the templated name cmp.core<i>.ticks.
    cmp::coreCounter(core, "ticks").add();
    // A literal digit run matches the same templated manifest row.
    telemetry::counter("cmp.core0.ticks").add();
}

} // namespace fixture
