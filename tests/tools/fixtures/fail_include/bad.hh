/** No pragma once, upward include, unresolvable include. */

#include "../secret/internal.hh"
#include "no/such/file.hh"
