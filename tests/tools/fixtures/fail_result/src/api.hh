/** Fixture: Result-discipline violations in a src/ header. */

#pragma once

template <typename T>
class Result
{
};

struct Api
{
    Result<int> tryLoad(); // line 12: missing [[nodiscard]]
    [[nodiscard]] Result<int> tryQuery(); // fine
};
