/** Fixture: discarded Result-returning calls. */

#include "api.hh"

namespace fixture {

void
consume(Api &api)
{
    api.tryLoad(); // line 10: result discarded
    (void)api.tryQuery(); // deliberate discard: no finding
    auto kept = api.tryLoad(); // assigned: no finding
    static_cast<void>(kept);
}

} // namespace fixture
