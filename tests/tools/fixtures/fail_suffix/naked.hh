#pragma once

struct Config
{
    double temp = 345.0;
    float power = 0.0F;
    double activity = 0.5;
};

void setAmbient(double ambient);
