/** Uses a metric nobody documented. */

#include <string>

namespace telemetry {
struct Counter { void add() const {} };
Counter counter(const std::string &);
} // namespace telemetry

void
touch()
{
    telemetry::counter("rogue.metric").add();
}

void channelInstant(const std::string &, const char *, double);

void
touchChannel(const std::string &label)
{
    channelInstant(label, "rogue.instant", 1.0);
}
