/** Uses a metric nobody documented. */

#include <string>

namespace telemetry {
struct Counter { void add() const {} };
Counter counter(const std::string &);
} // namespace telemetry

void
touch()
{
    telemetry::counter("rogue.metric").add();
}
