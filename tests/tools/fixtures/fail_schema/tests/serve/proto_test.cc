/** Fixture: serve tests that never exercise the "color" field. */

namespace fixture {

const char *const exercised[] = {"ping", "echo", "msg", "tag"};

} // namespace fixture
