/** Fixture: protocol table that drifted from the design doc — the
 *  "color" field is implemented but undocumented and untested. */

namespace fixture {

struct FieldRule
{
    int field;
    const char *name;
    bool required;
    int min_version;
};

struct TypeRule
{
    int type;
    int min_version;
    const FieldRule *fields;
    unsigned n_fields;
};

const char *const type_names[] = {"ping", "echo"};

constexpr FieldRule echo_fields[] = {
    {0, "msg", true, 0},
    {1, "tag", false, 1},
    {2, "color", false, 2},
};

constexpr TypeRule type_rules[] = {
    {0, 0, nullptr, 0},
    {1, 0, echo_fields, 3},
};

} // namespace fixture
