/** Per-core names: one documented suffix, two nobody documented. */

#include <cstddef>
#include <string>

namespace telemetry {
struct Counter { void add() const {} };
Counter counter(const std::string &);
} // namespace telemetry

namespace cmp {
telemetry::Counter coreCounter(std::size_t, const std::string &);
} // namespace cmp

void
touch(std::size_t core)
{
    cmp::coreCounter(core, "good").add();
    cmp::coreCounter(core, "rogue").add();
    telemetry::counter("cmp.core7.bad").add();
}
