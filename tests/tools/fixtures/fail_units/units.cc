/** Fixture: unit-consistency violations (and one sanctioned
 *  conversion that must NOT fire). */

namespace fixture {

double
mixedArithmetic(double t_k, double p_w)
{
    return t_k + p_w; // line 9: adds Kelvin to Watts
}

void
crossAssign()
{
    double out_c = 0.0;
    double in_k = 300.0;
    out_c = in_k; // line 17: cross-unit assignment
    // ramp-lint: convert(k->c): Kelvin to Celsius offset
    out_c = in_k - 273.15; // sanctioned: no finding
    // ramp-lint: convert(k->banana): not a unit
    out_c = in_k; // line 21: marker names an unknown unit
    (void)out_c;
}

} // namespace fixture
