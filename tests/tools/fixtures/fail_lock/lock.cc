/** Fixture: lock-discipline hits across all four guard kinds plus
 *  one unguarded miss and one reasoned suppression. */

#include <mutex>
#include <shared_mutex>

namespace fixture {

struct Widget
{
    std::mutex mu_;
    std::shared_mutex rw_;
    int value_ = 0; // ramp-lint: guarded_by(mu_)
    int cached_ = 0; // ramp-lint: guarded_by(rw_)

    void
    viaLockGuard()
    {
        std::lock_guard lock(mu_);
        value_ = 1;
    }

    void
    viaUniqueLock()
    {
        std::unique_lock<std::mutex> lock(mu_);
        value_ = 2;
    }

    void
    viaScopedLock()
    {
        std::scoped_lock lock(mu_, rw_);
        value_ = 3;
        cached_ = 3;
    }

    int
    viaSharedLock()
    {
        std::shared_lock lock(rw_);
        return cached_;
    }

    int
    unguarded()
    {
        return value_; // line 48: no guard on mu_ in scope
    }

    int
    deliberate()
    {
        // ramp-lint: allow(lock-discipline): ctor-only path, no threads yet
        return value_; // suppressed: no finding
    }
};

} // namespace fixture
