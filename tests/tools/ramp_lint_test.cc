/**
 * @file
 * ramp-lint self-tests: drive the real binary against the fixture
 * trees under tests/tools/fixtures/ and assert both the exit code
 * and the file:line diagnostics each rule must produce. Paths come
 * in via compile definitions (RAMP_LINT_BIN, RAMP_LINT_FIXTURES,
 * RAMP_LINT_ROOT).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult
{
    int exit_code = -1;
    std::string output;
};

/** Run a command, capturing stdout+stderr and the exit code. */
RunResult
run(const std::string &cmd)
{
    RunResult r;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return r;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        r.output.append(buf.data(), n);
    const int status = pclose(pipe);
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

const std::string bin = RAMP_LINT_BIN;
const std::string fixtures = RAMP_LINT_FIXTURES;

/** Lint one fixture dir with its own (or no) manifest. */
RunResult
lintFixture(const std::string &name, bool with_manifest)
{
    const std::string dir = fixtures + "/" + name;
    std::string cmd = bin + " --root " + dir;
    cmd += with_manifest ? " --manifest " + dir + "/metrics.manifest"
                         : " --no-manifest";
    return run(cmd + " " + dir);
}

TEST(RampLint, CleanFixturePasses)
{
    const auto r = lintFixture("pass", true);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("clean"), std::string::npos);
}

TEST(RampLint, UndocumentedMetricFailsWithFileAndLine)
{
    const auto r = lintFixture("fail_manifest", true);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The undocumented name, anchored to its call site.
    EXPECT_NE(r.output.find("code.cc:13:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rogue.metric"), std::string::npos);
    // A name routed through the channelInstant helper (the literal
    // is the second argument) is still extracted and anchored.
    EXPECT_NE(r.output.find("code.cc:21:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rogue.instant"), std::string::npos);
    // The dead entry, anchored to its manifest line.
    EXPECT_NE(r.output.find("metrics.manifest:2:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("dead manifest entry"),
              std::string::npos);
}

TEST(RampLint, NakedQuantityNamesFail)
{
    const auto r = lintFixture("fail_suffix", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    for (const char *needle : {"naked.hh:5:", "naked.hh:6:",
                               "naked.hh:7:", "naked.hh:10:"})
        EXPECT_NE(r.output.find(needle), std::string::npos)
            << needle << " missing in:\n"
            << r.output;
    EXPECT_NE(r.output.find("[unit-suffix]"), std::string::npos);
    EXPECT_NE(r.output.find("_af"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("_w (Watts)"), std::string::npos);
}

TEST(RampLint, BannedPatternsFail)
{
    const auto r = lintFixture("fail_banned", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    for (const char *needle :
         {"[banned-rand]", "[raw-new]", "[raw-delete]", "[endl]",
          "[mutex-guard]", "[suppression]"})
        EXPECT_NE(r.output.find(needle), std::string::npos)
            << needle << " missing in:\n"
            << r.output;
    // std::rand anchored to its line.
    EXPECT_NE(r.output.find("banned.cc:11:"), std::string::npos)
        << r.output;
    // A reason-less allow() is itself a finding, and suppresses
    // nothing: the srand on the next line still fires.
    EXPECT_NE(r.output.find("banned.cc:23:"), std::string::npos)
        << r.output;
}

TEST(RampLint, IncludeHygieneFails)
{
    const auto r = lintFixture("fail_include", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[pragma-once]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[include-path]"), std::string::npos);
    EXPECT_NE(r.output.find("upward include"), std::string::npos);
    EXPECT_NE(r.output.find("bad.hh:3:"), std::string::npos);
    EXPECT_NE(r.output.find("bad.hh:4:"), std::string::npos);
}

TEST(RampLint, RealTreeIsClean)
{
    const auto r = run(bin + " --root " + std::string(RAMP_LINT_ROOT));
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(RampLint, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(bin).exit_code, 2);
    EXPECT_EQ(run(bin + " --root /no/such/dir").exit_code, 2);
    EXPECT_EQ(run(bin + " --bogus-flag").exit_code, 2);
}

} // namespace
