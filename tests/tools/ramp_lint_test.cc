/**
 * @file
 * ramp-lint self-tests: drive the real binary against the fixture
 * trees under tests/tools/fixtures/ and assert both the exit code
 * and the file:line diagnostics each rule must produce. Paths come
 * in via compile definitions (RAMP_LINT_BIN, RAMP_LINT_FIXTURES,
 * RAMP_LINT_ROOT).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult
{
    int exit_code = -1;
    std::string output;
};

/** Run a command, capturing stdout+stderr and the exit code. */
RunResult
run(const std::string &cmd)
{
    RunResult r;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return r;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        r.output.append(buf.data(), n);
    const int status = pclose(pipe);
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

const std::string bin = RAMP_LINT_BIN;
const std::string fixtures = RAMP_LINT_FIXTURES;

/** Lint one fixture dir with its own (or no) manifest. */
RunResult
lintFixture(const std::string &name, bool with_manifest)
{
    const std::string dir = fixtures + "/" + name;
    std::string cmd = bin + " --root " + dir;
    cmd += with_manifest ? " --manifest " + dir + "/metrics.manifest"
                         : " --no-manifest";
    return run(cmd + " " + dir);
}

TEST(RampLint, CleanFixturePasses)
{
    const auto r = lintFixture("pass", true);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("clean"), std::string::npos);
}

TEST(RampLint, UndocumentedMetricFailsWithFileAndLine)
{
    const auto r = lintFixture("fail_manifest", true);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The undocumented name, anchored to its call site.
    EXPECT_NE(r.output.find("code.cc:13:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rogue.metric"), std::string::npos);
    // A name routed through the channelInstant helper (the literal
    // is the second argument) is still extracted and anchored.
    EXPECT_NE(r.output.find("code.cc:21:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rogue.instant"), std::string::npos);
    // The dead entry, anchored to its manifest line.
    EXPECT_NE(r.output.find("metrics.manifest:2:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("dead manifest entry"),
              std::string::npos);
}

TEST(RampLint, CoreCounterNamesAreTemplated)
{
    const auto r = lintFixture("fail_core", true);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // coreCounter(core, "rogue") is extracted as the templated
    // name and anchored to its call site.
    EXPECT_NE(r.output.find("code.cc:19:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("cmp.core<i>.rogue"),
              std::string::npos)
        << r.output;
    // A literal digit-run name is undocumented only after the
    // templated fallback also misses.
    EXPECT_NE(r.output.find("code.cc:20:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("cmp.core7.bad"), std::string::npos)
        << r.output;
    // The documented suffix matches; its row is not dead either.
    EXPECT_EQ(r.output.find("cmp.core<i>.good"),
              std::string::npos)
        << r.output;
}

TEST(RampLint, NakedQuantityNamesFail)
{
    const auto r = lintFixture("fail_suffix", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    for (const char *needle : {"naked.hh:5:", "naked.hh:6:",
                               "naked.hh:7:", "naked.hh:10:"})
        EXPECT_NE(r.output.find(needle), std::string::npos)
            << needle << " missing in:\n"
            << r.output;
    EXPECT_NE(r.output.find("[unit-suffix]"), std::string::npos);
    EXPECT_NE(r.output.find("_af"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("_w (Watts)"), std::string::npos);
}

TEST(RampLint, BannedPatternsFail)
{
    const auto r = lintFixture("fail_banned", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    for (const char *needle :
         {"[banned-rand]", "[raw-new]", "[raw-delete]", "[endl]",
          "[mutex-guard]", "[suppression]"})
        EXPECT_NE(r.output.find(needle), std::string::npos)
            << needle << " missing in:\n"
            << r.output;
    // std::rand anchored to its line.
    EXPECT_NE(r.output.find("banned.cc:11:"), std::string::npos)
        << r.output;
    // A reason-less allow() is itself a finding, and suppresses
    // nothing: the srand on the next line still fires.
    EXPECT_NE(r.output.find("banned.cc:23:"), std::string::npos)
        << r.output;
}

TEST(RampLint, IncludeHygieneFails)
{
    const auto r = lintFixture("fail_include", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[pragma-once]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[include-path]"), std::string::npos);
    EXPECT_NE(r.output.find("upward include"), std::string::npos);
    EXPECT_NE(r.output.find("bad.hh:3:"), std::string::npos);
    EXPECT_NE(r.output.find("bad.hh:4:"), std::string::npos);
}

TEST(RampLint, MixedUnitsAndCrossUnitAssignFail)
{
    const auto r = lintFixture("fail_units", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[unit-consistency]"), std::string::npos)
        << r.output;
    // Mixed-unit arithmetic, anchored to the offending expression.
    EXPECT_NE(r.output.find("units.cc:9:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("'t_k' (_k) vs 'p_w' (_w)"),
              std::string::npos);
    // Cross-unit assignment without a conversion marker.
    EXPECT_NE(r.output.find("units.cc:17:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("cross-unit assignment"),
              std::string::npos);
    // A convert() marker naming an unknown unit is itself a finding
    // and sanctions nothing: the assignment under it still fires.
    EXPECT_NE(r.output.find("units.cc:20:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("unknown unit suffix"),
              std::string::npos);
    EXPECT_NE(r.output.find("units.cc:21:"), std::string::npos)
        << r.output;
    // The sanctioned conversion (valid marker on line 18) is silent.
    EXPECT_EQ(r.output.find("units.cc:19:"), std::string::npos)
        << r.output;
}

TEST(RampLint, ResultDisciplineFails)
{
    const auto r = lintFixture("fail_result", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[result-discipline]"),
              std::string::npos)
        << r.output;
    // Result-returning declaration in a src/ header without
    // [[nodiscard]].
    EXPECT_NE(r.output.find("api.hh:12:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("not [[nodiscard]]"), std::string::npos);
    // Statement-position call whose Result is dropped.
    EXPECT_NE(r.output.find("use.cc:10:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("is discarded"), std::string::npos);
    // (void)-cast and assigned calls are deliberate: exactly the two
    // findings above, nothing anchored to those lines.
    EXPECT_EQ(r.output.find("use.cc:11:"), std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("use.cc:12:"), std::string::npos)
        << r.output;
}

TEST(RampLint, LockDisciplineFails)
{
    const auto r = lintFixture("fail_lock", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The one unguarded use, with the annotation echoed back.
    EXPECT_NE(r.output.find("lock.cc:48:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[lock-discipline]"), std::string::npos);
    EXPECT_NE(r.output.find("'value_'"), std::string::npos);
    // Uses under lock_guard / unique_lock / scoped_lock /
    // shared_lock scopes, and the reasoned allow(), are all silent:
    // exactly one finding in the whole fixture.
    EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos)
        << r.output;
}

TEST(RampLint, WireSchemaDriftFails)
{
    const auto r = lintFixture("fail_schema", false);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[wire-schema]"), std::string::npos)
        << r.output;
    // Implemented-but-undocumented field, anchored in protocol.cc.
    EXPECT_NE(r.output.find("protocol.cc:27:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("field 'color'"), std::string::npos);
    // Documented-but-unimplemented verb, anchored in DESIGN.md.
    EXPECT_NE(r.output.find("DESIGN.md:14:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("'vanish'"), std::string::npos);
}

TEST(RampLint, ConsistentWireSchemaPasses)
{
    const auto r = lintFixture("pass_schema", false);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

/** Drop the `scanned N files in X ms` line — the only
 *  nondeterministic output (wall time varies run to run). */
std::string
withoutTimingLine(const std::string &out)
{
    std::string kept;
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t eol = out.find('\n', pos);
        if (eol == std::string::npos)
            eol = out.size();
        const std::string line = out.substr(pos, eol - pos);
        if (line.find("ramp-lint: scanned") == std::string::npos)
            kept += line + "\n";
        pos = eol + 1;
    }
    return kept;
}

TEST(RampLint, ThreadCountDoesNotChangeOutput)
{
    // Findings are path-sorted after the parallel walk, so modulo
    // the wall-time line the report is byte-identical at any width.
    const std::string dirs = fixtures + "/fail_units " + fixtures +
                             "/fail_result " + fixtures +
                             "/fail_lock";
    const std::string base =
        bin + " --root " + fixtures + " --no-manifest " + dirs;
    const auto one = run(base + " --threads 1");
    const auto four = run(base + " --threads 4");
    EXPECT_EQ(one.exit_code, 1) << one.output;
    EXPECT_EQ(four.exit_code, 1) << four.output;
    EXPECT_EQ(withoutTimingLine(one.output),
              withoutTimingLine(four.output));
    EXPECT_NE(four.output.find("(4 threads)"), std::string::npos)
        << four.output;
}

TEST(RampLint, RealTreeIsClean)
{
    const auto r = run(bin + " --root " + std::string(RAMP_LINT_ROOT));
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(RampLint, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(bin).exit_code, 2);
    EXPECT_EQ(run(bin + " --root /no/such/dir").exit_code, 2);
    EXPECT_EQ(run(bin + " --bogus-flag").exit_code, 2);
    // A file is not a valid --root.
    const std::string f = fixtures + "/fail_units/units.cc";
    const auto file_root = run(bin + " --root " + f + " " + f);
    EXPECT_EQ(file_root.exit_code, 2) << file_root.output;
    EXPECT_NE(file_root.output.find("not a directory"),
              std::string::npos)
        << file_root.output;
    // A nonexistent PATH is a hard error, not a silent skip.
    const auto gone =
        run(bin + " --root " + fixtures + " " + fixtures + "/nope.cc");
    EXPECT_EQ(gone.exit_code, 2) << gone.output;
    EXPECT_NE(gone.output.find("not a file or readable directory"),
              std::string::npos)
        << gone.output;
}

} // namespace
