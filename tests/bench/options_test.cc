/**
 * @file
 * Tests for the shared bench command line (bench/common.hh): the
 * three-way cache-path precedence (--cache flag > RAMP_EVAL_CACHE >
 * default, with an explicit empty flag selecting an in-memory
 * cache), the --surrogate mode flag, and the --bench-json artifact
 * override.
 */

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

// ramp-lint: allow(include-path): header-only bench/common.hh, wired in via a target include dir
#include "common.hh"

namespace ramp::bench {
namespace {

/** Run Options::parse over a synthetic argv. */
Options
parseArgs(std::vector<std::string> args)
{
    args.insert(args.begin(), "bench_test");
    std::vector<char *> argv;
    for (auto &arg : args)
        argv.push_back(arg.data());
    argv.push_back(nullptr);
    return Options::parse(static_cast<int>(args.size()), argv.data());
}

/** Scoped environment override that restores the prior value. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *cur = std::getenv(name))
            old_ = cur;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (old_)
            ::setenv(name_.c_str(), old_->c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::optional<std::string> old_;
};

TEST(BenchOptions, CacheDefaultsWhenNothingIsSet)
{
    EnvGuard env("RAMP_EVAL_CACHE", nullptr);
    const Options opts = parseArgs({});
    EXPECT_FALSE(opts.cache_set);
    EXPECT_EQ(cachePath(opts), "ramp_eval_cache.txt");
}

TEST(BenchOptions, CacheEnvBeatsDefault)
{
    EnvGuard env("RAMP_EVAL_CACHE", "from_env.txt");
    const Options opts = parseArgs({});
    EXPECT_EQ(cachePath(opts), "from_env.txt");
}

TEST(BenchOptions, CacheFlagBeatsEnv)
{
    EnvGuard env("RAMP_EVAL_CACHE", "from_env.txt");
    const Options opts = parseArgs({"--cache", "from_flag.txt"});
    EXPECT_TRUE(opts.cache_set);
    EXPECT_EQ(cachePath(opts), "from_flag.txt");
}

TEST(BenchOptions, EmptyCacheFlagMeansInMemoryAndBeatsEnv)
{
    // The regression this pins: an explicit `--cache ""` opts out of
    // any file-backed cache. Falling through to RAMP_EVAL_CACHE here
    // would silently reattach the file the caller rejected.
    EnvGuard env("RAMP_EVAL_CACHE", "from_env.txt");
    const Options opts = parseArgs({"--cache", ""});
    EXPECT_TRUE(opts.cache_set);
    EXPECT_EQ(cachePath(opts), "");
}

TEST(BenchOptions, SurrogateFlagParses)
{
    EXPECT_EQ(parseArgs({}).surrogate,
              drm::surrogate::SurrogateMode::Off);
    EXPECT_EQ(parseArgs({"--surrogate", "off"}).surrogate,
              drm::surrogate::SurrogateMode::Off);
    EXPECT_EQ(parseArgs({"--surrogate", "rank"}).surrogate,
              drm::surrogate::SurrogateMode::Rank);
    EXPECT_EQ(parseArgs({"--surrogate=auto"}).surrogate,
              drm::surrogate::SurrogateMode::Auto);
}

TEST(BenchOptionsDeath, UnknownSurrogateModeIsFatal)
{
    EXPECT_EXIT(parseArgs({"--surrogate", "fast"}),
                testing::ExitedWithCode(1), "off, rank, or auto");
}

TEST(BenchOptions, ChipShapeFlagsParse)
{
    const Options plain = parseArgs({});
    EXPECT_EQ(plain.cores, 0u);
    EXPECT_TRUE(plain.floorplan_path.empty());

    EXPECT_EQ(parseArgs({"--cores", "4"}).cores, 4u);
    EXPECT_EQ(parseArgs({"--cores=8"}).cores, 8u);
    EXPECT_EQ(parseArgs({"--floorplan", "chip.json"}).floorplan_path,
              "chip.json");
}

TEST(BenchOptionsDeath, BadChipShapeFlagsAreFatal)
{
    EXPECT_EXIT(parseArgs({"--cores", "0"}),
                testing::ExitedWithCode(1), "positive integer");
    EXPECT_EXIT(parseArgs({"--cores", "two"}),
                testing::ExitedWithCode(1), "positive integer");
    EXPECT_EXIT(parseArgs({"--floorplan", ""}),
                testing::ExitedWithCode(1), "non-empty path");
}

TEST(BenchOptions, BenchJsonDefaultsOverridesAndDisables)
{
    const Options plain = parseArgs({});
    EXPECT_FALSE(plain.bench_json_set);
    EXPECT_EQ(benchJsonPath(plain, "BENCH_x.json"), "BENCH_x.json");

    const Options custom =
        parseArgs({"--bench-json", "elsewhere.json"});
    EXPECT_TRUE(custom.bench_json_set);
    EXPECT_EQ(benchJsonPath(custom, "BENCH_x.json"),
              "elsewhere.json");

    const Options disabled = parseArgs({"--bench-json", ""});
    EXPECT_TRUE(disabled.bench_json_set);
    EXPECT_EQ(benchJsonPath(disabled, "BENCH_x.json"), "");
}

} // namespace
} // namespace ramp::bench
