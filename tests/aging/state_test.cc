/**
 * @file
 * AgingState document tests: canonical round trips must be
 * bit-exact, defective files must be structured errors (and the
 * recovery helper must quarantine corruption but refuse to touch
 * future-version data), and the damage summaries must follow the
 * FIT-budget weighting.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "aging/state.hh"
#include "util/json.hh"

namespace ramp {
namespace aging {
namespace {

using sim::allStructures;
using sim::structureIndex;

/** Temp file path unique to this test binary run. */
std::string
tmpPath(const char *tag)
{
    return testing::TempDir() + "ramp_aging_state_" + tag + ".json";
}

/** Replace (not append -- set() appends) a top-level key. */
util::JsonValue
withKey(util::JsonValue doc, const std::string &key,
        util::JsonValue v)
{
    for (auto &kv : doc.object)
        if (kv.first == key) {
            kv.second = std::move(v);
            return doc;
        }
    doc.set(key, std::move(v));
    return doc;
}

/** A state with distinct, non-round values in every slot. */
AgingState
fullState()
{
    AgingState st;
    st.age_hours = 12345.678;
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        for (std::size_t mi = 0; mi < core::num_mechanisms; ++mi)
            st.damage[si][mi] =
                0.001 * static_cast<double>(si * 4 + mi + 1) / 3.0;
        st.em_jt_hours[si] = 10.0 + static_cast<double>(si) / 7.0;
        st.tddb_vt_hours[si] = 20.0 + static_cast<double>(si) / 9.0;
        st.tc_cycles[si] = static_cast<double>(si * 11);
    }
    return st;
}

TEST(AgingState, JsonRoundTripIsBitExact)
{
    const AgingState st = fullState();
    const auto back = agingStateFromJson(toJson(st));
    ASSERT_TRUE(back.ok()) << back.error().str();
    // Bit-exact, not approximately equal: the document is the
    // persistence format, and a lossy round trip would make saved
    // fleets drift on every load/save cycle.
    EXPECT_EQ(back.value().age_hours, st.age_hours);
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        for (std::size_t mi = 0; mi < core::num_mechanisms; ++mi)
            EXPECT_EQ(back.value().damage[si][mi],
                      st.damage[si][mi]);
        EXPECT_EQ(back.value().em_jt_hours[si], st.em_jt_hours[si]);
        EXPECT_EQ(back.value().tddb_vt_hours[si],
                  st.tddb_vt_hours[si]);
        EXPECT_EQ(back.value().tc_cycles[si], st.tc_cycles[si]);
    }
    // And the serialized form itself is stable.
    EXPECT_EQ(util::writeJson(toJson(back.value())),
              util::writeJson(toJson(st)));
}

TEST(AgingState, FileRoundTripIsBitExact)
{
    const auto path = tmpPath("roundtrip");
    const AgingState st = fullState();
    ASSERT_TRUE(saveAgingState(path, st).ok());
    const auto back = loadAgingState(path);
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(util::writeJson(toJson(back.value())),
              util::writeJson(toJson(st)));
    std::remove(path.c_str());
}

TEST(AgingState, TruncatedFileIsCorruptRecord)
{
    const auto path = tmpPath("truncated");
    const std::string full = util::writeJson(toJson(fullState()));
    {
        std::ofstream out(path);
        out << full.substr(0, full.size() / 2);
    }
    const auto loaded = loadAgingState(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, util::ErrorCode::CorruptRecord);
    std::remove(path.c_str());
}

TEST(AgingState, FutureVersionIsInvalidInputNotACrash)
{
    const util::JsonValue doc = withKey(
        toJson(fullState()), "v",
        util::JsonValue::makeNumber(
            static_cast<double>(aging_state_version + 1)));
    const auto parsed = agingStateFromJson(doc);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(parsed.error().message.find("newer"),
              std::string::npos);
}

TEST(AgingState, ParseRejectsForeignAndMissingKeys)
{
    util::JsonValue extra = toJson(fullState());
    extra.set("warranty", util::JsonValue::makeBool(true));
    EXPECT_FALSE(agingStateFromJson(extra).ok());

    // Negative damage cannot be a valid history.
    AgingState st = fullState();
    st.damage[0][0] = -0.5;
    EXPECT_FALSE(agingStateFromJson(toJson(st)).ok());
}

TEST(AgingState, RecoverTreatsMissingFileAsFresh)
{
    const auto path = tmpPath("missing");
    std::remove(path.c_str());
    const auto st = recoverAgingState(path);
    ASSERT_TRUE(st.ok()) << st.error().str();
    EXPECT_EQ(st.value().age_hours, 0.0);
    EXPECT_EQ(st.value().totalDamage(), 0.0);
}

TEST(AgingState, RecoverQuarantinesCorruptionAndStartsFresh)
{
    const auto path = tmpPath("quarantine");
    const auto sidecar = path + ".quarantine";
    std::remove(sidecar.c_str());
    {
        std::ofstream out(path);
        out << "{\"v\":1,#garbage";
    }
    const auto st = recoverAgingState(path);
    ASSERT_TRUE(st.ok()) << st.error().str();
    EXPECT_EQ(st.value().age_hours, 0.0);
    // The defective bytes must survive for inspection.
    std::ifstream in(sidecar);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
    std::remove(sidecar.c_str());
}

TEST(AgingState, RecoverRefusesToQuarantineFutureVersions)
{
    const auto path = tmpPath("future");
    const auto sidecar = path + ".quarantine";
    std::remove(sidecar.c_str());
    const util::JsonValue doc = withKey(
        toJson(fullState()), "v",
        util::JsonValue::makeNumber(
            static_cast<double>(aging_state_version + 1)));
    {
        std::ofstream out(path);
        out << util::writeJson(doc);
    }
    const auto st = recoverAgingState(path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, util::ErrorCode::InvalidInput);
    // A newer build's data must stay exactly where it was.
    std::ifstream original(path);
    EXPECT_TRUE(original.good());
    std::ifstream quarantined(sidecar);
    EXPECT_FALSE(quarantined.good());
    std::remove(path.c_str());
}

TEST(AgingState, AddAccumulatesEverySlot)
{
    AgingState total = fullState();
    const AgingState delta = fullState();
    total.add(delta);
    EXPECT_EQ(total.age_hours, 2.0 * delta.age_hours);
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        for (std::size_t mi = 0; mi < core::num_mechanisms; ++mi)
            EXPECT_EQ(total.damage[si][mi],
                      2.0 * delta.damage[si][mi]);
        EXPECT_EQ(total.tc_cycles[si], 2.0 * delta.tc_cycles[si]);
    }
}

TEST(AgingState, UniformPairDamageGivesThatTotal)
{
    // Every pair at fraction d: the budget-weighted total is d, and
    // so is the weakest link.
    AgingState st;
    for (auto s : allStructures())
        for (std::size_t mi = 0; mi < core::num_mechanisms; ++mi)
            st.damage[structureIndex(s)][mi] = 0.25;
    EXPECT_NEAR(st.totalDamage(), 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(st.maxPairDamage(), 0.25);
    for (auto s : allStructures())
        EXPECT_NEAR(st.structureDamage(s), 0.25, 1e-12);
}

} // namespace
} // namespace aging
} // namespace ramp
