/**
 * @file
 * Slack-banking policy tests: the budget schedule starts at the
 * qualification margin and ends at exactly one life; banked slack
 * boosts the effective T_qual and a deficit throttles it, both
 * clamped; the ETA helper anchors to the service life; and the
 * window controller's front-loaded allowance decays to the target.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "aging/slack_bank.hh"
#include "core/lifetime.hh"
#include "drm/controller.hh"

namespace ramp {
namespace aging {
namespace {

/** A state with every pair at fraction @p d, aged @p hours. */
AgingState
agedState(double d, double hours)
{
    AgingState st;
    st.age_hours = hours;
    for (auto &per_mech : st.damage)
        per_mech.fill(d);
    return st;
}

TEST(SlackBankPolicy, BudgetScheduleSpansMarginToWholeLife)
{
    const SlackBankPolicy policy;
    const double life_h = core::serviceLifeHours(
        policy.params().service_life_years);
    EXPECT_DOUBLE_EQ(policy.budget(0.0),
                     policy.params().initial_slack_frac);
    EXPECT_NEAR(policy.budget(life_h), 1.0, 1e-12);
    // Past end-of-life the budget saturates; it never exceeds the
    // one qualified lifetime.
    EXPECT_DOUBLE_EQ(policy.budget(2.0 * life_h), 1.0);
    EXPECT_LT(policy.budget(0.25 * life_h),
              policy.budget(0.75 * life_h));
}

TEST(SlackBankPolicy, YoungChipBoostsAboveBase)
{
    const SlackBankPolicy policy;
    // Fresh chip: full initial slack banked.
    const AgingState fresh = agedState(0.0, 0.0);
    EXPECT_DOUBLE_EQ(policy.slackFrac(fresh),
                     policy.params().initial_slack_frac);
    EXPECT_GT(policy.effectiveTQualK(fresh),
              policy.params().base_t_qual_k);
    EXPECT_LE(policy.effectiveTQualK(fresh),
              policy.params().base_t_qual_k +
                  policy.params().max_boost_k);
}

TEST(SlackBankPolicy, OverspentChipThrottlesBelowBase)
{
    const SlackBankPolicy policy;
    const double life_h = core::serviceLifeHours(
        policy.params().service_life_years);
    // Half the damage budget gone in 10% of the life.
    const AgingState hard_run = agedState(0.5, 0.1 * life_h);
    EXPECT_LT(policy.slackFrac(hard_run), 0.0);
    EXPECT_LT(policy.effectiveTQualK(hard_run),
              policy.params().base_t_qual_k);
    EXPECT_GE(policy.effectiveTQualK(hard_run),
              policy.params().base_t_qual_k -
                  policy.params().max_throttle_k);
}

TEST(SlackBankPolicy, EffectiveTQualClampsAtBothEnds)
{
    SlackBankParams params;
    params.gain_k_per_life = 1e6; // Saturate on any slack at all.
    const SlackBankPolicy policy(params);
    const double life_h =
        core::serviceLifeHours(params.service_life_years);
    EXPECT_DOUBLE_EQ(policy.effectiveTQualK(agedState(0.0, 0.0)),
                     params.base_t_qual_k + params.max_boost_k);
    EXPECT_DOUBLE_EQ(
        policy.effectiveTQualK(agedState(1.0, 0.1 * life_h)),
        params.base_t_qual_k - params.max_throttle_k);
}

TEST(SlackBank, RemainingHoursAnchorsToTheServiceLife)
{
    const double life_years = 30.0;
    const double life_h = core::serviceLifeHours(life_years);
    const double target_fit = 4000.0;

    // A fresh chip holding exactly the target FIT has one whole
    // service life left.
    EXPECT_NEAR(remainingHoursAtFit(agedState(0.0, 0.0), target_fit,
                                    target_fit, life_years),
                life_h, 1e-6 * life_h);
    // Half consumed at the target rate: half a life left.
    EXPECT_NEAR(remainingHoursAtFit(agedState(0.5, 0.0), target_fit,
                                    target_fit, life_years),
                0.5 * life_h, 1e-6 * life_h);
    // Running at half the target rate doubles the ETA.
    EXPECT_NEAR(remainingHoursAtFit(agedState(0.5, 0.0),
                                    0.5 * target_fit, target_fit,
                                    life_years),
                life_h, 1e-6 * life_h);
    // A spent budget leaves nothing.
    EXPECT_DOUBLE_EQ(remainingHoursAtFit(agedState(1.0, 0.0),
                                         target_fit, target_fit,
                                         life_years),
                     0.0);
    // No failure rate, no clock.
    EXPECT_TRUE(std::isinf(remainingHoursAtFit(
        agedState(0.2, 0.0), 0.0, target_fit, life_years)));
}

TEST(SlackBankController, AllowanceDecaysFromBankToTarget)
{
    drm::SlackBankController::Params params;
    params.target_fit = 4000.0;
    params.bank_fraction = 0.10;
    drm::SlackBankController ctl(params, 5, 2);

    EXPECT_DOUBLE_EQ(ctl.allowedFit(0.0),
                     params.target_fit * 1.10);
    EXPECT_DOUBLE_EQ(ctl.allowedFit(1.0), params.target_fit);
    EXPECT_GT(ctl.allowedFit(0.25), ctl.allowedFit(0.75));
    // Progress outside the window clamps instead of extrapolating.
    EXPECT_DOUBLE_EQ(ctl.allowedFit(-1.0), ctl.allowedFit(0.0));
    EXPECT_DOUBLE_EQ(ctl.allowedFit(2.0), ctl.allowedFit(1.0));
}

TEST(SlackBankController, StepsUpOnSlackAndDownOnOverspend)
{
    drm::SlackBankController::Params params;
    params.settle_intervals = 0;
    drm::SlackBankController ctl(params, 5, 2);

    // Far under the early allowance: spend the bank, step up.
    EXPECT_EQ(ctl.observe(0.1 * params.target_fit, 0.0), 3u);
    // Far over: step back down.
    EXPECT_EQ(ctl.observe(2.0 * params.target_fit, 0.0), 2u);
    EXPECT_EQ(ctl.transitions(), 2u);

    // The same average FIT that fits inside the early bank is an
    // overspend at end-of-window.
    drm::SlackBankController late(params, 5, 2);
    const double avg = params.target_fit * 1.05;
    EXPECT_EQ(late.observe(avg, 0.0), 2u); // Inside the bank: hold.
    EXPECT_EQ(late.observe(avg, 1.0), 1u); // Past it: throttle.
}

} // namespace
} // namespace aging
} // namespace ramp
