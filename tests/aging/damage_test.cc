/**
 * @file
 * Damage-integrator tests against the model's anchors: a chip held
 * at exactly its qualification conditions for one service life must
 * consume exactly one lifetime; damage is monotone in time and in
 * stress; and the pair fan must be bit-identical serial vs pooled.
 */

#include <vector>

#include <gtest/gtest.h>

#include "aging/damage.hh"
#include "core/lifetime.hh"
#include "util/constants.hh"
#include "util/thread_pool.hh"

namespace ramp {
namespace aging {
namespace {

using sim::allStructures;
using sim::structureIndex;

core::QualificationSpec
testSpec()
{
    core::QualificationSpec spec;
    spec.t_qual_k = 345.0;
    for (auto s : allStructures())
        spec.alpha_qual[structureIndex(s)] = 0.5;
    return spec;
}

sim::PerStructure<double>
uniform(double v)
{
    sim::PerStructure<double> out{};
    out.fill(v);
    return out;
}

/** An epoch at the qualification point of @p spec. */
StressEpoch
qualEpoch(const core::QualificationSpec &spec, double duration_s)
{
    StressEpoch e;
    e.temps_k = uniform(spec.t_qual_k);
    e.activity = spec.alpha_qual;
    e.voltage_v = spec.v_qual_v;
    e.frequency_ghz = spec.f_qual_ghz;
    e.duration_s = duration_s;
    return e;
}

TEST(DamageIntegrator, OneServiceLifeAtQualConsumesOneLifetime)
{
    const core::QualificationSpec spec = testSpec();
    const core::Qualification qual(spec);
    DamageParams params;
    DamageIntegrator integ(qual, uniform(1.0), params);

    // fit(qual conditions) == allocation for every pair, so each
    // pair's Miner's-rule rate is exactly 1 / serviceLifeHours.
    const double life_s =
        core::serviceLifeHours(params.service_life_years) * 3600.0;
    integ.integrate({qualEpoch(spec, life_s)}, nullptr);

    EXPECT_NEAR(integ.state().totalDamage(), 1.0, 1e-9);
    EXPECT_NEAR(integ.state().maxPairDamage(), 1.0, 1e-9);
    EXPECT_NEAR(integ.state().age_hours,
                core::serviceLifeHours(params.service_life_years),
                1e-6);
}

TEST(DamageIntegrator, DamageIsMonotoneInTime)
{
    const core::QualificationSpec spec = testSpec();
    DamageIntegrator integ(core::Qualification(spec), uniform(1.0));
    double last = 0.0;
    for (int i = 0; i < 8; ++i) {
        StressEpoch e = qualEpoch(spec, 30.0 * 24.0 * 3600.0);
        // Vary the stress; damage must still only move up.
        e.temps_k = uniform(330.0 + 5.0 * i);
        e.activity = uniform(0.1 * (i % 3));
        integ.integrate({e}, nullptr);
        const double now = integ.state().totalDamage();
        EXPECT_GT(now, last);
        last = now;
    }
}

TEST(DamageIntegrator, HotterEpochsConsumeMore)
{
    const core::QualificationSpec spec = testSpec();
    const double month_s = 30.0 * 24.0 * 3600.0;

    DamageIntegrator cool(core::Qualification(spec), uniform(1.0));
    StressEpoch e = qualEpoch(spec, month_s);
    e.temps_k = uniform(340.0);
    cool.integrate({e}, nullptr);

    DamageIntegrator hot(core::Qualification(spec), uniform(1.0));
    e.temps_k = uniform(360.0);
    hot.integrate({e}, nullptr);

    EXPECT_GT(hot.state().totalDamage(),
              cool.state().totalDamage());
}

TEST(DamageIntegrator, SerialAndPooledIntegrationAreBitIdentical)
{
    const core::QualificationSpec spec = testSpec();
    // A batch of varied epochs, so per-pair accumulation order
    // would show up as a bit difference if the fan were over epochs.
    std::vector<StressEpoch> epochs;
    for (int i = 0; i < 12; ++i) {
        StressEpoch e = qualEpoch(spec, 3600.0 * (1 + i));
        e.temps_k = uniform(325.0 + 3.7 * i);
        e.activity = uniform(0.05 + 0.07 * i);
        e.voltage_v = 0.9 + 0.01 * i;
        e.frequency_ghz = 3.0 + 0.1 * i;
        epochs.push_back(e);
    }

    DamageIntegrator serial(core::Qualification(spec),
                            uniform(1.0));
    serial.integrate(epochs, nullptr);

    util::ThreadPool pool(2);
    DamageIntegrator pooled(core::Qualification(spec),
                            uniform(1.0));
    integrateEpochs(pooled, epochs, &pool);

    // Exact double equality, not EXPECT_NEAR: the batch fan is over
    // pairs with per-pair serial epoch order, so thread count must
    // not change a single bit.
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        for (std::size_t mi = 0; mi < core::num_mechanisms; ++mi)
            EXPECT_EQ(serial.state().damage[si][mi],
                      pooled.state().damage[si][mi]);
        EXPECT_EQ(serial.state().em_jt_hours[si],
                  pooled.state().em_jt_hours[si]);
        EXPECT_EQ(serial.state().tddb_vt_hours[si],
                  pooled.state().tddb_vt_hours[si]);
        EXPECT_EQ(serial.state().tc_cycles[si],
                  pooled.state().tc_cycles[si]);
    }
    EXPECT_EQ(serial.state().age_hours, pooled.state().age_hours);
}

TEST(DamageIntegrator, SetStateResumesWhereAHistoryLeftOff)
{
    const core::QualificationSpec spec = testSpec();
    const double week_s = 7.0 * 24.0 * 3600.0;

    DamageIntegrator straight(core::Qualification(spec),
                              uniform(1.0));
    straight.integrate({qualEpoch(spec, week_s)}, nullptr);
    straight.integrate({qualEpoch(spec, week_s)}, nullptr);

    DamageIntegrator first(core::Qualification(spec), uniform(1.0));
    first.integrate({qualEpoch(spec, week_s)}, nullptr);
    DamageIntegrator resumed(core::Qualification(spec),
                             uniform(1.0));
    resumed.setState(first.state());
    resumed.integrate({qualEpoch(spec, week_s)}, nullptr);

    EXPECT_EQ(straight.state().totalDamage(),
              resumed.state().totalDamage());
    EXPECT_EQ(straight.state().age_hours,
              resumed.state().age_hours);
}

} // namespace
} // namespace aging
} // namespace ramp
