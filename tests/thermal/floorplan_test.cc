/**
 * @file
 * Tests for the floorplan: exact tiling, area consistency, adjacency.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "thermal/floorplan.hh"

namespace ramp::thermal {
namespace {

using sim::allStructures;
using sim::StructureId;

TEST(Floorplan, BlockAreasMatchCanonicalAreas)
{
    const Floorplan fp;
    for (auto id : allStructures())
        EXPECT_NEAR(fp.block(id).area(), sim::structureArea(id), 1e-9);
}

TEST(Floorplan, TilesTheDieExactly)
{
    const Floorplan fp;
    double total = 0.0;
    for (auto id : allStructures()) {
        const Block &b = fp.block(id);
        EXPECT_GE(b.x, -1e-9);
        EXPECT_GE(b.y, -1e-9);
        EXPECT_LE(b.x + b.w, fp.dieSize() + 1e-9);
        EXPECT_LE(b.y + b.h, fp.dieSize() + 1e-9);
        total += b.area();
    }
    EXPECT_NEAR(total, fp.dieSize() * fp.dieSize(), 1e-9);
}

TEST(Floorplan, NoBlocksOverlap)
{
    const Floorplan fp;
    for (auto a : allStructures()) {
        for (auto b : allStructures()) {
            if (a == b)
                continue;
            const Block &p = fp.block(a);
            const Block &q = fp.block(b);
            const double ox =
                std::min(p.x + p.w, q.x + q.w) - std::max(p.x, q.x);
            const double oy =
                std::min(p.y + p.h, q.y + q.h) - std::max(p.y, q.y);
            const double overlap =
                std::max(0.0, ox) * std::max(0.0, oy);
            EXPECT_NEAR(overlap, 0.0, 1e-9)
                << sim::structureName(a) << " overlaps "
                << sim::structureName(b);
        }
    }
}

TEST(Floorplan, SharedBorderIsSymmetric)
{
    const Floorplan fp;
    for (auto a : allStructures())
        for (auto b : allStructures())
            EXPECT_NEAR(fp.sharedBorder(a, b), fp.sharedBorder(b, a),
                        1e-12);
}

TEST(Floorplan, KnownAdjacencies)
{
    const Floorplan fp;
    // Row 1 neighbours: IntReg | IntALU | IWin.
    EXPECT_GT(fp.sharedBorder(StructureId::IntReg,
                              StructureId::IntAlu), 0.0);
    EXPECT_GT(fp.sharedBorder(StructureId::IntAlu, StructureId::IWin),
              0.0);
    // Row 1 and row 2 touch: IntALU below FPU region.
    EXPECT_GT(fp.sharedBorder(StructureId::IntAlu, StructureId::Fpu),
              0.0);
    // L1D spans the top row and touches the whole FP row.
    EXPECT_GT(fp.sharedBorder(StructureId::L1D, StructureId::Fpu),
              0.0);
    // Opposite corners never touch.
    EXPECT_EQ(fp.sharedBorder(StructureId::L1I, StructureId::L1D),
              0.0);
    EXPECT_EQ(fp.sharedBorder(StructureId::FrontEnd,
                              StructureId::FpReg), 0.0);
}

TEST(Floorplan, SelfBorderIsZero)
{
    const Floorplan fp;
    for (auto id : allStructures())
        EXPECT_EQ(fp.sharedBorder(id, id), 0.0);
}

TEST(Floorplan, CenterDistancesPositiveAndSymmetric)
{
    const Floorplan fp;
    for (auto a : allStructures()) {
        for (auto b : allStructures()) {
            if (a == b)
                continue;
            const double d = fp.centerDistance(a, b);
            EXPECT_GT(d, 0.0);
            EXPECT_NEAR(d, fp.centerDistance(b, a), 1e-12);
            EXPECT_LT(d, fp.dieSize() * std::sqrt(2.0));
        }
    }
}

} // namespace
} // namespace ramp::thermal
