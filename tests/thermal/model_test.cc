/**
 * @file
 * Tests for the RC thermal model: steady-state physics (energy
 * balance, monotonicity), transient convergence, and the separation
 * of block and heat-sink time constants the paper's two-pass
 * methodology relies on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "thermal/model.hh"

namespace ramp::thermal {
namespace {

using sim::num_structures;
using sim::PerStructure;
using sim::StructureId;
using sim::structureIndex;

PerStructure<double>
flatPower(double watts_per_block)
{
    PerStructure<double> p;
    p.fill(watts_per_block);
    return p;
}

TEST(ThermalSteady, ZeroPowerIsAmbientEverywhere)
{
    const ThermalModel model;
    const auto t = model.steadyState(flatPower(0.0));
    for (double temp_k : t.block_k)
        EXPECT_NEAR(temp_k, model.params().ambient_k, 1e-6);
    EXPECT_NEAR(t.sink_k, model.params().ambient_k, 1e-6);
}

TEST(ThermalSteady, HeatFlowsDownTheStack)
{
    const ThermalModel model;
    const auto t = model.steadyState(flatPower(2.0));
    const double ambient_k = model.params().ambient_k;
    EXPECT_GT(t.sink_k, ambient_k);
    EXPECT_GT(t.spreader_k, t.sink_k);
    for (double temp_k : t.block_k)
        EXPECT_GT(temp_k, t.spreader_k);
}

TEST(ThermalSteady, EnergyBalanceAtTheSink)
{
    // In steady state all injected power leaves through the sink:
    // T_sink - T_amb = P_total * R_convection.
    const ThermalModel model;
    const double per_block = 2.5;
    const auto t = model.steadyState(flatPower(per_block));
    const double total = per_block * num_structures;
    EXPECT_NEAR(t.sink_k - model.params().ambient_k,
                total * model.params().r_convection, 1e-6);
}

TEST(ThermalSteady, MorePowerIsMonotonicallyHotter)
{
    const ThermalModel model;
    const auto t1 = model.steadyState(flatPower(1.0));
    const auto t2 = model.steadyState(flatPower(2.0));
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_GT(t2.block_k[i], t1.block_k[i]);
}

TEST(ThermalSteady, LinearityInPower)
{
    // The RC network is linear: temperature *rise* doubles with power.
    const ThermalModel model;
    const double amb = model.params().ambient_k;
    const auto t1 = model.steadyState(flatPower(1.0));
    const auto t2 = model.steadyState(flatPower(2.0));
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(t2.block_k[i] - amb, 2.0 * (t1.block_k[i] - amb),
                    1e-6);
}

TEST(ThermalSteady, PowerDensityMakesHotspots)
{
    // Equal power into a small block (IntReg, 1.2mm^2) vs a large one
    // (L1D, 4.05mm^2): the small block must get hotter.
    const ThermalModel model;
    PerStructure<double> p{};
    p[structureIndex(StructureId::IntReg)] = 3.0;
    const auto t_small = model.steadyState(p);
    PerStructure<double> q{};
    q[structureIndex(StructureId::L1D)] = 3.0;
    const auto t_large = model.steadyState(q);
    EXPECT_GT(t_small.block_k[structureIndex(StructureId::IntReg)],
              t_large.block_k[structureIndex(StructureId::L1D)]);
}

TEST(ThermalSteady, LateralCouplingWarmsNeighbours)
{
    const ThermalModel model;
    PerStructure<double> p{};
    p[structureIndex(StructureId::IntAlu)] = 5.0;
    const auto t = model.steadyState(p);
    // IntReg is adjacent to IntALU; L1I sits two rows away.
    EXPECT_GT(t.block_k[structureIndex(StructureId::IntReg)],
              t.block_k[structureIndex(StructureId::L1I)]);
}

TEST(ThermalSteady, AvgAndMaxAreConsistent)
{
    const ThermalModel model;
    PerStructure<double> p = flatPower(1.0);
    p[structureIndex(StructureId::IntAlu)] = 6.0;
    const auto t = model.steadyState(p);
    EXPECT_GE(t.maxBlock(), t.avgBlock());
    EXPECT_EQ(t.maxBlock(),
              t.block_k[structureIndex(StructureId::IntAlu)]);
}

TEST(ThermalTransient, ConvergesToSteadyState)
{
    ThermalModel model;
    model.initialiseFlat(model.params().ambient_k);
    const auto power = flatPower(2.0);
    const auto steady = model.steadyState(power);
    // Sink RC is ~minutes; run long enough to settle.
    for (int i = 0; i < 1200; ++i)
        model.step(power, 1.0);
    const auto blocks = model.blockTemps();
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(blocks[i], steady.block_k[i], 0.5);
    EXPECT_NEAR(model.sinkTemp(), steady.sink_k, 0.5);
}

TEST(ThermalTransient, BlocksRespondFastSinkSlow)
{
    // The paper's two-pass methodology exists because the sink time
    // constant dwarfs the block time constants. After 50 ms, blocks
    // must have moved most of their way while the sink barely moved.
    ThermalModel model;
    model.initialiseFlat(model.params().ambient_k);
    const auto power = flatPower(2.0);
    const auto steady = model.steadyState(power);
    model.step(power, 0.05);

    const double sink_rise =
        model.sinkTemp() - model.params().ambient_k;
    const double sink_final =
        steady.sink_k - model.params().ambient_k;
    EXPECT_LT(sink_rise, 0.05 * sink_final);

    const auto i = structureIndex(StructureId::IntAlu);
    const double block_rise =
        model.blockTemps()[i] - model.params().ambient_k;
    // Blocks equilibrate against the (still cold) spreader quickly;
    // they must have covered a visible fraction of their local rise.
    EXPECT_GT(block_rise, 1.0);
}

TEST(ThermalTransient, InitialiseSteadySkipsTheWarmup)
{
    ThermalModel model;
    const auto power = flatPower(2.0);
    model.initialiseSteady(power);
    const auto steady = model.steadyState(power);
    EXPECT_NEAR(model.sinkTemp(), steady.sink_k, 1e-9);
    // Stepping from the steady state goes nowhere.
    model.step(power, 1.0);
    EXPECT_NEAR(model.sinkTemp(), steady.sink_k, 1e-3);
    const auto blocks = model.blockTemps();
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(blocks[i], steady.block_k[i], 1e-3);
}

TEST(ThermalTransient, StepIsStableWithLargeDt)
{
    // Internal sub-stepping must keep explicit Euler stable even for
    // huge caller-side steps.
    ThermalModel model;
    model.initialiseFlat(model.params().ambient_k);
    const auto power = flatPower(3.0);
    model.step(power, 100.0);
    for (double t : model.blockTemps()) {
        EXPECT_GT(t, model.params().ambient_k - 1.0);
        EXPECT_LT(t, 500.0); // no oscillatory blow-up
    }
}

TEST(ThermalDeath, RejectsBadParameters)
{
    ThermalParams p;
    p.r_convection = 0.0;
    EXPECT_EXIT(ThermalModel{p}, testing::ExitedWithCode(1),
                "resistance");

    ThermalParams q;
    q.c_sink = -1.0;
    EXPECT_EXIT(ThermalModel{q}, testing::ExitedWithCode(1),
                "capacitance");

    ThermalParams r;
    r.ambient_k = -5.0;
    EXPECT_EXIT(ThermalModel{r}, testing::ExitedWithCode(1),
                "ambient");
}

TEST(ThermalDeath, NegativePowerIsFatal)
{
    const ThermalModel model;
    PerStructure<double> p{};
    p[0] = -1.0;
    EXPECT_EXIT(model.steadyState(p), testing::ExitedWithCode(1),
                "negative");
}

TEST(ThermalDeath, NonPositiveDtIsFatal)
{
    ThermalModel model;
    EXPECT_EXIT(model.step(flatPower(1.0), 0.0),
                testing::ExitedWithCode(1), "dt");
}

} // namespace
} // namespace ramp::thermal
