/**
 * @file
 * Tests for reliability qualification (paper Section 3.7): budget
 * allocation, the anchor invariant (FIT at qualification conditions
 * equals the allocation), and power-gating effects.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/qualification.hh"

namespace ramp::core {
namespace {

using sim::allStructures;
using sim::StructureId;
using sim::structureIndex;

QualificationSpec
spec(double t_qual = 400.0)
{
    QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.5);
    return s;
}

TEST(Qualification, BudgetSplitsEvenlyAcrossMechanisms)
{
    const Qualification q(spec());
    for (auto m : allMechanisms()) {
        double sum = 0.0;
        for (auto s : allStructures())
            sum += q.allocation(s, m);
        EXPECT_NEAR(sum, 1000.0, 1e-9); // 4000 / 4 mechanisms
    }
}

TEST(Qualification, BudgetSplitsByAreaAcrossStructures)
{
    const Qualification q(spec());
    const double total_area = sim::totalCoreArea();
    for (auto s : allStructures()) {
        const double share = sim::structureArea(s) / total_area;
        EXPECT_NEAR(q.allocation(s, Mechanism::EM), 1000.0 * share,
                    1e-9);
    }
}

TEST(Qualification, TotalAllocationIsTarget)
{
    const Qualification q(spec());
    double total = 0.0;
    for (auto s : allStructures())
        for (auto m : allMechanisms())
            total += q.allocation(s, m);
    EXPECT_NEAR(total, 4000.0, 1e-9);
}

TEST(Qualification, FitAtQualConditionsEqualsAllocation)
{
    // The anchor invariant: running exactly at the qualification
    // point consumes exactly the allocated budget.
    const Qualification q(spec(385.0));
    for (auto s : allStructures()) {
        const auto qc = q.qualConditions(s);
        for (auto m : allMechanisms())
            EXPECT_NEAR(q.fit(s, m, qc), q.allocation(s, m), 1e-9)
                << sim::structureName(s) << "/" << mechanismName(m);
    }
}

TEST(Qualification, TotalFitAtQualPointIsTarget)
{
    const Qualification q(spec(370.0));
    double total = 0.0;
    for (auto s : allStructures())
        for (auto m : allMechanisms())
            total += q.fit(s, m, q.qualConditions(s));
    EXPECT_NEAR(total, 4000.0, 1e-6);
}

TEST(Qualification, CoolerThanQualMeansUnderBudget)
{
    const Qualification q(spec(400.0));
    for (auto s : allStructures()) {
        OperatingConditions c = q.qualConditions(s);
        c.temp_k = 360.0;
        for (auto m : allMechanisms())
            EXPECT_LT(q.fit(s, m, c), q.allocation(s, m));
    }
}

TEST(Qualification, HotterThanQualMeansOverBudget)
{
    const Qualification q(spec(360.0));
    for (auto s : allStructures()) {
        OperatingConditions c = q.qualConditions(s);
        c.temp_k = 395.0;
        for (auto m : allMechanisms())
            EXPECT_GT(q.fit(s, m, c), q.allocation(s, m));
    }
}

TEST(Qualification, CheaperQualificationShrinksHeadroom)
{
    // The same actual conditions consume more of the budget on a
    // processor qualified at a lower (cheaper) T_qual.
    const Qualification expensive(spec(400.0));
    const Qualification cheap(spec(345.0));
    OperatingConditions c;
    c.temp_k = 370.0;
    c.activity_af = 0.5;
    const auto s = StructureId::IntAlu;
    for (auto m : allMechanisms())
        EXPECT_GT(cheap.fit(s, m, c), expensive.fit(s, m, c));
}

TEST(Qualification, PowerGatingScalesEmAndTddbOnly)
{
    const Qualification q(spec());
    OperatingConditions c;
    c.temp_k = 370.0;
    c.activity_af = 0.4;
    const auto s = StructureId::Fpu;
    EXPECT_NEAR(q.fit(s, Mechanism::EM, c, 0.25),
                0.25 * q.fit(s, Mechanism::EM, c, 1.0), 1e-12);
    EXPECT_NEAR(q.fit(s, Mechanism::TDDB, c, 0.25),
                0.25 * q.fit(s, Mechanism::TDDB, c, 1.0), 1e-12);
    EXPECT_NEAR(q.fit(s, Mechanism::SM, c, 0.25),
                q.fit(s, Mechanism::SM, c, 1.0), 1e-12);
    EXPECT_NEAR(q.fit(s, Mechanism::TC, c, 0.25),
                q.fit(s, Mechanism::TC, c, 1.0), 1e-12);
}

TEST(Qualification, SpecIsPreserved)
{
    QualificationSpec s = spec(377.0);
    s.target_fit = 2000.0;
    const Qualification q(s);
    EXPECT_DOUBLE_EQ(q.spec().t_qual_k, 377.0);
    EXPECT_DOUBLE_EQ(q.spec().target_fit, 2000.0);
    double total = 0.0;
    for (auto st : allStructures())
        for (auto m : allMechanisms())
            total += q.allocation(st, m);
    EXPECT_NEAR(total, 2000.0, 1e-9);
}

TEST(QualificationDeath, RejectsBadSpecs)
{
    QualificationSpec s = spec();
    s.target_fit = 0.0;
    EXPECT_EXIT(Qualification{s}, testing::ExitedWithCode(1),
                "target FIT");

    s = spec();
    s.t_qual_k = 300.0; // below ambient
    EXPECT_EXIT(Qualification{s}, testing::ExitedWithCode(1),
                "ambient");

    s = spec();
    s.v_qual_v = 0.0;
    EXPECT_EXIT(Qualification{s}, testing::ExitedWithCode(1),
                "voltage");
}

} // namespace
} // namespace ramp::core
