/**
 * @file
 * Tests for the Monte-Carlo lifetime simulator against closed-form
 * results: exponential shapes must reproduce SOFR, wear-out shapes
 * must beat it, and quantiles must be ordered.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/lifetime.hh"
#include "util/constants.hh"

namespace ramp::core {
namespace {

using sim::allStructures;
using sim::structureIndex;

/** A report with a uniform FIT value in every cell. */
FitReport
uniformReport(double fit_per_cell)
{
    FitReport r;
    for (auto s : allStructures())
        for (auto m : allMechanisms())
            r.fit[structureIndex(s)][mechanismIndex(m)] = fit_per_cell;
    return r;
}

/** A report with one single live component. */
FitReport
singleComponentReport(double fit)
{
    FitReport r;
    r.fit[0][0] = fit;
    return r;
}

TEST(Lifetime, SingleExponentialComponentMatchesAnalyticMean)
{
    LifetimeParams p;
    p.weibull_shape = {1.0, 1.0, 1.0, 1.0}; // exponential
    p.samples = 100000;
    const LifetimeSimulator sim(p);
    const double fit = 4000.0;
    const auto est = sim.estimate(singleComponentReport(fit));
    const double expected = util::fitToMttfYears(fit);
    EXPECT_NEAR(est.mttf_years, expected, 0.02 * expected);
    // Exponential median = mean * ln 2.
    EXPECT_NEAR(est.median_years, expected * std::log(2.0),
                0.03 * expected);
}

TEST(Lifetime, ExponentialShapesReproduceSofr)
{
    // beta = 1 for every mechanism: the Monte-Carlo series-system
    // MTTF must equal the SOFR closed form 1/sum(lambda).
    LifetimeParams p;
    p.weibull_shape = {1.0, 1.0, 1.0, 1.0};
    p.samples = 100000;
    const LifetimeSimulator sim(p);
    const auto report = uniformReport(100.0); // 40 cells -> 4000 FIT
    const auto est = sim.estimate(report);
    EXPECT_NEAR(est.sofr_mttf_years, util::fitToMttfYears(4000.0),
                1e-9);
    EXPECT_NEAR(est.mttf_years, est.sofr_mttf_years,
                0.02 * est.sofr_mttf_years);
}

TEST(Lifetime, WearOutShapesBeatSofr)
{
    // beta = 2 wear-out: failures cluster near their means, so the
    // series minimum lives longer than the exponential prediction.
    const LifetimeSimulator sim; // default shapes ~2
    const auto report = uniformReport(100.0);
    const auto est = sim.estimate(report);
    EXPECT_GT(est.mttf_years, 1.5 * est.sofr_mttf_years);
    // And the early-failure tail moves out even more strongly.
    EXPECT_GT(est.p01_years, 0.1 * est.mttf_years);
}

TEST(Lifetime, QuantilesAreOrdered)
{
    const LifetimeSimulator sim;
    const auto est = sim.estimate(uniformReport(250.0));
    EXPECT_LT(est.p01_years, est.median_years);
    EXPECT_LT(est.median_years, est.p99_years);
    EXPECT_GT(est.stddev_years, 0.0);
}

TEST(Lifetime, MoreComponentsShortenLife)
{
    LifetimeParams p;
    p.samples = 50000;
    const LifetimeSimulator sim(p);
    // A series system of forty identical components must die sooner
    // than any one of them alone.
    const auto one = sim.estimate(singleComponentReport(100.0));
    const auto many = sim.estimate(uniformReport(100.0));
    EXPECT_LT(many.mttf_years, one.mttf_years);
    // But, unlike the exponential case, NOT forty times sooner:
    // wear-out clustering keeps the minimum near the common mean.
    EXPECT_GT(many.mttf_years, one.mttf_years / 40.0 * 3.0);
}

TEST(Lifetime, DeterministicInSeed)
{
    const LifetimeSimulator a, b;
    const auto ea = a.estimate(uniformReport(100.0));
    const auto eb = b.estimate(uniformReport(100.0));
    EXPECT_DOUBLE_EQ(ea.mttf_years, eb.mttf_years);
    EXPECT_DOUBLE_EQ(ea.p01_years, eb.p01_years);
}

TEST(Lifetime, EmptyReportIsImmortal)
{
    const LifetimeSimulator sim;
    const auto est = sim.estimate(FitReport{});
    EXPECT_GT(est.mttf_years, 1e20);
}

TEST(Lifetime, SparesExtendStructureLife)
{
    // One spare ALU (Shivakumar-style redundancy): the IntALU group
    // survives its first unit failure, so a report dominated by
    // IntALU FIT lives visibly longer.
    FitReport r;
    r.fit[sim::structureIndex(sim::StructureId::IntAlu)]
        [mechanismIndex(Mechanism::EM)] = 4000.0;

    LifetimeParams base_p;
    base_p.samples = 40000;
    const auto no_spare = LifetimeSimulator(base_p).estimate(r);

    LifetimeParams spare_p = base_p;
    spare_p.spares[sim::structureIndex(sim::StructureId::IntAlu)] = 1;
    const auto one_spare = LifetimeSimulator(spare_p).estimate(r);

    EXPECT_GT(one_spare.mttf_years, 1.05 * no_spare.mttf_years);
    // The early-failure tail benefits the most from sparing.
    EXPECT_GT(one_spare.p01_years, 1.3 * no_spare.p01_years);
}

TEST(Lifetime, SparesOnNonRedundantStructureAreClamped)
{
    // The LSQ has one unit; asking for spares must not break (they
    // are clamped to units-1 = 0).
    FitReport r;
    r.fit[sim::structureIndex(sim::StructureId::Lsq)]
        [mechanismIndex(Mechanism::EM)] = 4000.0;
    LifetimeParams p;
    p.samples = 20000;
    const auto plain = LifetimeSimulator(p).estimate(r);
    p.spares[sim::structureIndex(sim::StructureId::Lsq)] = 3;
    const auto clamped = LifetimeSimulator(p).estimate(r);
    EXPECT_NEAR(clamped.mttf_years, plain.mttf_years,
                0.05 * plain.mttf_years);
}

TEST(LifetimeDeath, RejectsBadParams)
{
    LifetimeParams p;
    p.samples = 0;
    EXPECT_EXIT(LifetimeSimulator{p}, testing::ExitedWithCode(1),
                "sample");
    LifetimeParams q;
    q.weibull_shape[1] = 0.0;
    EXPECT_EXIT(LifetimeSimulator{q}, testing::ExitedWithCode(1),
                "shape");
}

} // namespace
} // namespace ramp::core
