/**
 * @file
 * Parameterised qualification properties: the anchor invariant and
 * budget conservation must hold at every qualification temperature,
 * FIT target, and activity level -- not just the defaults.
 */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "core/qualification.hh"

namespace ramp::core {
namespace {

using sim::allStructures;
using sim::PerStructure;

class TqualSweepTest : public testing::TestWithParam<double>
{
  protected:
    Qualification qual(double target = 4000.0, double alpha = 0.5)
    {
        QualificationSpec s;
        s.t_qual_k = GetParam();
        s.target_fit = target;
        s.alpha_qual.fill(alpha);
        return Qualification(s);
    }
};

TEST_P(TqualSweepTest, AnchorInvariantHolds)
{
    const Qualification q = qual();
    for (auto s : allStructures())
        for (auto m : allMechanisms())
            EXPECT_NEAR(q.fit(s, m, q.qualConditions(s)),
                        q.allocation(s, m), 1e-9);
}

TEST_P(TqualSweepTest, EngineReproducesTargetAtQualPoint)
{
    const Qualification q = qual();
    PerStructure<double> ones;
    ones.fill(1.0);
    PerStructure<double> temps;
    temps.fill(GetParam());
    PerStructure<double> act;
    act.fill(0.5);
    const auto report = steadyFit(q, ones, temps, act, 1.0, 4.0);
    EXPECT_NEAR(report.totalFit(), 4000.0, 1e-5);
}

TEST_P(TqualSweepTest, BudgetConservedForAnyTarget)
{
    for (double target : {500.0, 4000.0, 20000.0}) {
        const Qualification q = qual(target);
        double total = 0.0;
        for (auto s : allStructures())
            for (auto m : allMechanisms())
                total += q.allocation(s, m);
        EXPECT_NEAR(total, target, 1e-9);
    }
}

TEST_P(TqualSweepTest, FitMonotoneInActualTemperature)
{
    const Qualification q = qual();
    PerStructure<double> ones;
    ones.fill(1.0);
    PerStructure<double> act;
    act.fill(0.5);
    double prev = 0.0;
    for (double t = 320.0; t <= 440.0; t += 10.0) {
        PerStructure<double> temps;
        temps.fill(t);
        const double fit =
            steadyFit(q, ones, temps, act, 1.0, 4.0).totalFit();
        EXPECT_GT(fit, prev) << "T=" << t;
        prev = fit;
    }
}

TEST_P(TqualSweepTest, FitMonotoneInActivity)
{
    const Qualification q = qual(4000.0, 1.0);
    PerStructure<double> ones;
    ones.fill(1.0);
    PerStructure<double> temps;
    temps.fill(365.0);
    double prev = -1.0;
    for (double a = 0.0; a <= 1.0; a += 0.2) {
        PerStructure<double> act;
        act.fill(a);
        const double fit =
            steadyFit(q, ones, temps, act, 1.0, 4.0).totalFit();
        EXPECT_GT(fit, prev) << "alpha=" << a;
        prev = fit;
    }
}

INSTANTIATE_TEST_SUITE_P(QualTemperatures, TqualSweepTest,
                         testing::Values(325.0, 345.0, 360.0, 370.0,
                                         385.0, 400.0, 420.0),
                         [](const testing::TestParamInfo<double> &i) {
                             return "T" + std::to_string(
                                              static_cast<int>(i.param));
                         });

/** Per-mechanism parameterised properties. */
class MechanismSweepTest : public testing::TestWithParam<Mechanism>
{
};

TEST_P(MechanismSweepTest, RateMonotoneInOperatingRange)
{
    OperatingConditions c;
    c.activity_af = 0.5;
    double prev = -1e300;
    for (double t = 310.0; t <= 450.0; t += 5.0) {
        c.temp_k = t;
        const double r = logRelativeRate(GetParam(), c);
        EXPECT_GT(r, prev) << "T=" << t;
        prev = r;
    }
}

TEST_P(MechanismSweepTest, RatioSymmetry)
{
    OperatingConditions a, b;
    a.temp_k = 350.0;
    b.temp_k = 390.0;
    const double ab = mttfRatio(GetParam(), a, b);
    const double ba = mttfRatio(GetParam(), b, a);
    EXPECT_NEAR(ab * ba, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismSweepTest,
    testing::Values(Mechanism::EM, Mechanism::SM, Mechanism::TDDB,
                    Mechanism::TC),
    [](const testing::TestParamInfo<Mechanism> &i) {
        return std::string(mechanismName(i.param));
    });

} // namespace
} // namespace ramp::core
