/**
 * @file
 * Tests for the device-level failure-mechanism models (paper
 * Sections 3.1-3.4): temperature/voltage/activity sensitivities and
 * exact closed-form ratios.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/mechanisms.hh"
#include "util/constants.hh"

namespace ramp::core {
namespace {

OperatingConditions
at(double t, double v = 1.0, double f = 4.0, double a = 0.5)
{
    OperatingConditions c;
    c.temp_k = t;
    c.voltage_v = v;
    c.frequency_ghz = f;
    c.activity_af = a;
    return c;
}

TEST(Mechanisms, EnumBasics)
{
    EXPECT_EQ(num_mechanisms, 4u);
    EXPECT_EQ(mechanismName(Mechanism::EM), "EM");
    EXPECT_EQ(mechanismName(Mechanism::SM), "SM");
    EXPECT_EQ(mechanismName(Mechanism::TDDB), "TDDB");
    EXPECT_EQ(mechanismName(Mechanism::TC), "TC");
}

TEST(Mechanisms, AllRatesIncreaseWithTemperature)
{
    // In the operating range 320-450 K every mechanism wears faster
    // when hotter (for SM the Arrhenius term beats the |T0-T| term,
    // exactly as Section 3.2 discusses).
    for (auto m : allMechanisms()) {
        double prev = logRelativeRate(m, at(320.0));
        for (double t = 330.0; t <= 450.0; t += 10.0) {
            const double cur = logRelativeRate(m, at(t));
            EXPECT_GT(cur, prev)
                << mechanismName(m) << " at " << t << " K";
            prev = cur;
        }
    }
}

TEST(Mechanisms, EmFollowsBlacksEquation)
{
    // MTTF ratio between two temperatures at fixed J must equal
    // exp(Ea/k (1/T1 - 1/T2)) with Ea = 0.9 eV.
    const double t1 = 350.0, t2 = 380.0;
    const double expected =
        std::exp(0.9 / util::k_boltzmann_ev * (1.0 / t1 - 1.0 / t2));
    EXPECT_NEAR(mttfRatio(Mechanism::EM, at(t2), at(t1)),
                1.0 / expected, 1e-9);
}

TEST(Mechanisms, EmCurrentDensityExponent)
{
    // Doubling the effective current density costs 2^1.1 in MTTF.
    const auto lo = at(360.0, 1.0, 2.0);
    const auto hi = at(360.0, 1.0, 4.0);
    EXPECT_NEAR(mttfRatio(Mechanism::EM, hi, lo),
                std::pow(0.5, 1.1), 1e-9);
}

TEST(Mechanisms, EmActivityUsesGatingFloor)
{
    // alpha = 0 still leaves the 10% clock floor switching, so the
    // rate is finite and the 0->1 swing is a factor 10^1.1 in J.
    const auto idle = at(360.0, 1.0, 4.0, 0.0);
    const auto busy = at(360.0, 1.0, 4.0, 1.0);
    EXPECT_NEAR(mttfRatio(Mechanism::EM, busy, idle),
                std::pow(0.1, 1.1), 1e-9);
}

TEST(Mechanisms, EmIgnoresNothingElse)
{
    // EM is insensitive to voltage only through J (linear), never
    // through the exponential -- check the exact V exponent.
    const auto v1 = at(360.0, 0.8);
    const auto v2 = at(360.0, 1.0);
    EXPECT_NEAR(mttfRatio(Mechanism::EM, v2, v1),
                std::pow(0.8, 1.1), 1e-9);
}

TEST(Mechanisms, SmStressFreeTemperatureTerm)
{
    // At fixed Arrhenius temperature... impossible physically, so
    // verify the exact closed form instead: the log-rate difference
    // between T=400 and T=460 must equal
    // 2.5 ln(|500-460|/|500-400|) - Ea/k (1/460 - 1/400).
    const double expected =
        2.5 * std::log(40.0 / 100.0) -
        0.9 / util::k_boltzmann_ev * (1.0 / 460.0 - 1.0 / 400.0);
    const double got = logRelativeRate(Mechanism::SM, at(460.0)) -
                       logRelativeRate(Mechanism::SM, at(400.0));
    EXPECT_NEAR(got, expected, 1e-9);
}

TEST(Mechanisms, SmInsensitiveToVoltageFrequencyActivity)
{
    const double r1 =
        logRelativeRate(Mechanism::SM, at(370.0, 1.0, 4.0, 0.9));
    const double r2 =
        logRelativeRate(Mechanism::SM, at(370.0, 0.7, 2.5, 0.1));
    EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(Mechanisms, TddbVoltageDependenceIsHuge)
{
    // Section 7.2: small voltage drops reduce the TDDB FIT value
    // drastically. A 5% drop at 360 K gives (0.95)^(78+0.081*360).
    const double exponent = 78.0 + 0.081 * 360.0;
    const double expected = std::pow(0.95, exponent);
    const double ratio = std::exp(
        logRelativeRate(Mechanism::TDDB, at(360.0, 0.95)) -
        logRelativeRate(Mechanism::TDDB, at(360.0, 1.00)));
    EXPECT_NEAR(ratio, expected, expected * 1e-9);
    EXPECT_LT(ratio, 0.02); // more than 50x FIT reduction
}

TEST(Mechanisms, TddbThermalTermMatchesWuModel)
{
    // At V = 1 the voltage term vanishes and the log-rate is
    // -(X + Y/T + ZT)/kT with the published constants.
    const double t = 345.0;
    const double expected =
        -(0.759 - 66.8 / t - 8.37e-4 * t) /
        (util::k_boltzmann_ev * t);
    EXPECT_NEAR(logRelativeRate(Mechanism::TDDB, at(t, 1.0)),
                expected, 1e-9);
}

TEST(Mechanisms, TcFollowsCoffinManson)
{
    // MTTF ratio between cycle amplitudes is (dT1/dT2)^2.35.
    const auto small = at(330.0); // 30 K above the 300 K ambient
    const auto large = at(360.0); // 60 K above ambient
    EXPECT_NEAR(mttfRatio(Mechanism::TC, large, small),
                std::pow(0.5, 2.35), 1e-9);
}

TEST(Mechanisms, TcInsensitiveToVoltageAndFrequency)
{
    const double r1 =
        logRelativeRate(Mechanism::TC, at(360.0, 1.0, 4.0));
    const double r2 =
        logRelativeRate(Mechanism::TC, at(360.0, 0.8, 2.5));
    EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(Mechanisms, MttfRatioIdentity)
{
    for (auto m : allMechanisms())
        EXPECT_DOUBLE_EQ(mttfRatio(m, at(365.0), at(365.0)), 1.0);
}

TEST(Mechanisms, RatesFiniteAtExtremes)
{
    for (auto m : allMechanisms()) {
        EXPECT_TRUE(std::isfinite(
            logRelativeRate(m, at(318.01, 0.5, 0.1, 0.0))));
        EXPECT_TRUE(std::isfinite(
            logRelativeRate(m, at(499.95, 1.2, 6.0, 1.0))));
    }
}

TEST(MechanismsDeath, NonPositiveTemperatureIsFatal)
{
    EXPECT_EXIT(logRelativeRate(Mechanism::EM, at(0.0)),
                testing::ExitedWithCode(1), "temperature");
}

} // namespace
} // namespace ramp::core
