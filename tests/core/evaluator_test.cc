/**
 * @file
 * Tests for the operating-point evaluator: the paper's two-pass
 * power/thermal methodology (Section 6.3), leakage feedback, and
 * determinism. Uses short simulations to stay fast.
 */

#include <gtest/gtest.h>

#include "core/evaluator.hh"
#include "workload/profile.hh"

namespace ramp::core {
namespace {

EvalParams
fastParams()
{
    EvalParams p;
    p.warmup_uops = 60'000;
    p.measure_uops = 120'000;
    return p;
}

TEST(Evaluator, DeterministicAcrossCalls)
{
    const Evaluator e(fastParams());
    const auto &app = workload::findApp("gzip");
    const auto a = e.evaluate(sim::baseMachine(), app);
    const auto b = e.evaluate(sim::baseMachine(), app);
    EXPECT_EQ(a.stats.retired, b.stats.retired);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    for (std::size_t i = 0; i < sim::num_structures; ++i) {
        EXPECT_DOUBLE_EQ(a.activity.activity[i],
                         b.activity.activity[i]);
        EXPECT_DOUBLE_EQ(a.temps_k[i], b.temps_k[i]);
    }
}

TEST(Evaluator, TemperaturesAboveAmbientBelowMelting)
{
    const Evaluator e(fastParams());
    const auto op =
        e.evaluate(sim::baseMachine(), workload::findApp("MP3dec"));
    for (double t : op.temps_k) {
        EXPECT_GT(t, e.params().thermal_params.ambient_k);
        EXPECT_LT(t, 450.0);
    }
    EXPECT_GE(op.maxTemp(), op.avgTemp());
    EXPECT_GT(op.sink_temp_k, e.params().thermal_params.ambient_k);
    EXPECT_LT(op.sink_temp_k, op.avgTemp());
}

TEST(Evaluator, LeakageFeedbackRaisesPowerAndTemperature)
{
    EvalParams on = fastParams();
    EvalParams off = fastParams();
    off.leakage_feedback = false;
    const auto &app = workload::findApp("MPGdec");
    const auto op_on = Evaluator(on).evaluate(sim::baseMachine(), app);
    const auto op_off =
        Evaluator(off).evaluate(sim::baseMachine(), app);
    // Feedback at > 383 K reference... our temps are below 383, so
    // the no-feedback variant (pinned at 383) *overstates* leakage
    // for cool runs; what must hold is simply that they differ and
    // that both converge.
    EXPECT_NE(op_on.power.totalLeakage(), op_off.power.totalLeakage());
    EXPECT_GT(op_on.power.totalLeakage(), 0.0);
}

TEST(Evaluator, HigherFrequencyRunsHotter)
{
    const Evaluator e(fastParams());
    const auto &app = workload::findApp("bzip2");
    sim::MachineConfig slow = sim::baseMachine();
    slow.frequency_ghz = 2.5;
    slow.voltage_v = 0.85;
    const auto op_slow = e.evaluate(slow, app);
    const auto op_base = e.evaluate(sim::baseMachine(), app);
    EXPECT_GT(op_base.totalPower(), op_slow.totalPower());
    EXPECT_GT(op_base.maxTemp(), op_slow.maxTemp());
    EXPECT_GT(op_base.uopsPerSecond(), op_slow.uopsPerSecond());
}

TEST(Evaluator, MissRatiosPopulated)
{
    const Evaluator e(fastParams());
    const auto op =
        e.evaluate(sim::baseMachine(), workload::findApp("art"));
    EXPECT_GT(op.l1d_miss_ratio, 0.0);
    EXPECT_LT(op.l1d_miss_ratio, 1.0);
    EXPECT_GT(op.l2_miss_ratio, 0.0);
}

TEST(Evaluator, ConvergeThermalIsIdempotent)
{
    const Evaluator e(fastParams());
    const auto &app = workload::findApp("equake");
    const auto op = e.evaluate(sim::baseMachine(), app);
    const auto again =
        e.convergeThermal(sim::baseMachine(), op.activity, op.stats);
    for (std::size_t i = 0; i < sim::num_structures; ++i)
        EXPECT_NEAR(again.temps_k[i], op.temps_k[i], 0.05);
}

TEST(Evaluator, PerformanceMetricConsistency)
{
    const Evaluator e(fastParams());
    const auto op =
        e.evaluate(sim::baseMachine(), workload::findApp("gzip"));
    EXPECT_NEAR(op.uopsPerSecond(),
                op.ipc() * op.config.frequency_ghz * 1e9, 1.0);
    EXPECT_GT(op.ipc(), 0.0);
}

TEST(EvaluatorDeath, RejectsBadParams)
{
    EvalParams p = fastParams();
    p.measure_uops = 0;
    EXPECT_EXIT(Evaluator{p}, testing::ExitedWithCode(1),
                "measurement");

    p = fastParams();
    p.max_iterations = 0;
    EXPECT_EXIT(Evaluator{p}, testing::ExitedWithCode(1),
                "iteration");

    p = fastParams();
    p.tolerance_k = 0.0;
    EXPECT_EXIT(Evaluator{p}, testing::ExitedWithCode(1),
                "tolerance");
}

} // namespace
} // namespace ramp::core
