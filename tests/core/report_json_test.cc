/**
 * @file
 * Tests for JSON serialisation of operating points and FIT reports:
 * the output must be well-formed and carry the right numbers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/report_json.hh"

namespace ramp::core {
namespace {

OperatingPoint
syntheticOp()
{
    OperatingPoint op;
    op.config = sim::baseMachine();
    op.activity.cycles = 1000;
    op.activity.retired = 1730;
    op.activity.activity.fill(0.25);
    op.temps_k.fill(360.0);
    op.sink_temp_k = 330.0;
    op.power.dynamic_w.fill(1.5);
    op.power.leakage_w.fill(0.5);
    op.l1d_miss_ratio = 0.03;
    return op;
}

FitReport
syntheticReport()
{
    QualificationSpec s;
    s.t_qual_k = 380.0;
    s.alpha_qual.fill(0.5);
    sim::PerStructure<double> ones;
    ones.fill(1.0);
    sim::PerStructure<double> temps;
    temps.fill(380.0);
    sim::PerStructure<double> act;
    act.fill(0.5);
    return steadyFit(Qualification(s), ones, temps, act, 1.0, 4.0);
}

TEST(ReportJson, OperatingPointFieldsPresent)
{
    std::ostringstream os;
    writeJson(os, syntheticOp());
    const std::string out = os.str();
    EXPECT_NE(out.find("\"ipc\":1.73"), std::string::npos);
    EXPECT_NE(out.find("\"power_total_w\":20"), std::string::npos);
    EXPECT_NE(out.find("\"temp_max_k\":360"), std::string::npos);
    EXPECT_NE(out.find("\"IntALU\""), std::string::npos);
    EXPECT_NE(out.find("\"FPU\""), std::string::npos);
    EXPECT_NE(out.find("\"l1d_miss_ratio\":0.03"),
              std::string::npos);
    // One complete root object per call, newline-terminated.
    EXPECT_EQ(out.back(), '\n');
    EXPECT_EQ(out.front(), '{');
}

TEST(ReportJson, FitReportAtQualPointCarriesTarget)
{
    std::ostringstream os;
    writeJson(os, syntheticReport());
    const std::string out = os.str();
    EXPECT_NE(out.find("\"total_fit\":4000"), std::string::npos);
    for (const char *m : {"\"EM\"", "\"SM\"", "\"TDDB\"", "\"TC\""})
        EXPECT_NE(out.find(m), std::string::npos) << m;
    EXPECT_NE(out.find("\"by_structure\""), std::string::npos);
    EXPECT_NE(out.find("\"mttf_years\""), std::string::npos);
}

TEST(ReportJson, BalancedBraces)
{
    for (int which = 0; which < 2; ++which) {
        std::ostringstream os;
        if (which == 0)
            writeJson(os, syntheticOp());
        else
            writeJson(os, syntheticReport());
        int depth = 0;
        bool in_string = false;
        char prev = 0;
        for (char c : os.str()) {
            if (c == '"' && prev != '\\')
                in_string = !in_string;
            if (!in_string) {
                depth += c == '{' || c == '[';
                depth -= c == '}' || c == ']';
            }
            prev = c;
            ASSERT_GE(depth, 0);
        }
        EXPECT_EQ(depth, 0);
        EXPECT_FALSE(in_string);
    }
}

} // namespace
} // namespace ramp::core
