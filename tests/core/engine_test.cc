/**
 * @file
 * Tests for the RAMP engine: SOFR combination (Section 3.5) and FIT
 * accumulation over time (Section 3.6).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "util/constants.hh"

namespace ramp::core {
namespace {

using sim::allStructures;
using sim::PerStructure;
using sim::StructureId;

Qualification
makeQual(double t_qual = 400.0)
{
    QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.5);
    return Qualification(s);
}

PerStructure<double>
flat(double v)
{
    PerStructure<double> p;
    p.fill(v);
    return p;
}

PerStructure<double>
ones()
{
    return flat(1.0);
}

TEST(FitReport, TotalsAreSums)
{
    const auto report = steadyFit(makeQual(), ones(), flat(370.0),
                                  flat(0.5), 1.0, 4.0);
    double by_structure = 0.0;
    for (auto s : allStructures())
        by_structure += report.structureFit(s);
    double by_mechanism = 0.0;
    for (auto m : allMechanisms())
        by_mechanism += report.mechanismFit(m);
    EXPECT_NEAR(by_structure, report.totalFit(), 1e-9);
    EXPECT_NEAR(by_mechanism, report.totalFit(), 1e-9);
}

TEST(FitReport, AtQualConditionsTotalIsTarget)
{
    // Uniform temps/activity at exactly the qualification point must
    // reproduce the 4000 FIT target through the whole engine path.
    const auto report = steadyFit(makeQual(385.0), ones(),
                                  flat(385.0), flat(0.5), 1.0, 4.0);
    EXPECT_NEAR(report.totalFit(), 4000.0, 1e-6);
}

TEST(FitReport, MttfMatchesFit)
{
    const auto report = steadyFit(makeQual(385.0), ones(),
                                  flat(385.0), flat(0.5), 1.0, 4.0);
    EXPECT_NEAR(report.mttfYears(),
                util::fitToMttfYears(report.totalFit()), 1e-9);
    EXPECT_NEAR(report.mttfYears(), 28.5, 0.5); // ~30y at 4000 FIT
}

TEST(FitReport, EmptyReportIsZero)
{
    const RampEngine engine(makeQual(), ones());
    const auto report = engine.report();
    EXPECT_EQ(report.totalFit(), 0.0);
    EXPECT_GT(report.mttfYears(), 1e20);
}

TEST(RampEngine, SingleIntervalMatchesSteadyFit)
{
    const auto qual = makeQual();
    RampEngine engine(qual, ones());
    engine.addInterval(flat(362.0), flat(0.4), 1.0, 4.0, 1.0);
    const auto a = engine.report();
    const auto b =
        steadyFit(qual, ones(), flat(362.0), flat(0.4), 1.0, 4.0);
    EXPECT_NEAR(a.totalFit(), b.totalFit(), 1e-9);
}

TEST(RampEngine, AveragesFitOverTime)
{
    // Two equal intervals at different temperatures: EM/SM/TDDB FIT
    // must be the arithmetic mean of the instantaneous FITs
    // (Section 3.6), which exceeds the FIT of the mean temperature
    // because the models are convex in T.
    const auto qual = makeQual();
    RampEngine engine(qual, ones());
    engine.addInterval(flat(345.0), flat(0.4), 1.0, 4.0, 1.0);
    engine.addInterval(flat(385.0), flat(0.4), 1.0, 4.0, 1.0);
    const auto mixed = engine.report();

    const auto cold =
        steadyFit(qual, ones(), flat(345.0), flat(0.4), 1.0, 4.0);
    const auto hot =
        steadyFit(qual, ones(), flat(385.0), flat(0.4), 1.0, 4.0);
    const auto s = StructureId::IntAlu;
    const auto em = mechanismIndex(Mechanism::EM);
    EXPECT_NEAR(
        mixed.fit[sim::structureIndex(s)][em],
        0.5 * (cold.fit[sim::structureIndex(s)][em] +
               hot.fit[sim::structureIndex(s)][em]),
        1e-9);

    const auto at_mean =
        steadyFit(qual, ones(), flat(365.0), flat(0.4), 1.0, 4.0);
    EXPECT_GT(mixed.mechanismFit(Mechanism::EM),
              at_mean.mechanismFit(Mechanism::EM));
}

TEST(RampEngine, DurationWeightsRespected)
{
    const auto qual = makeQual();
    RampEngine heavy_cold(qual, ones());
    heavy_cold.addInterval(flat(345.0), flat(0.4), 1.0, 4.0, 9.0);
    heavy_cold.addInterval(flat(385.0), flat(0.4), 1.0, 4.0, 1.0);

    RampEngine heavy_hot(qual, ones());
    heavy_hot.addInterval(flat(345.0), flat(0.4), 1.0, 4.0, 1.0);
    heavy_hot.addInterval(flat(385.0), flat(0.4), 1.0, 4.0, 9.0);

    EXPECT_LT(heavy_cold.report().totalFit(),
              heavy_hot.report().totalFit());
}

TEST(RampEngine, TcUsesRunAverageTemperature)
{
    // Thermal cycling is evaluated once on the average temperature
    // (Section 3.6), not averaged per interval: for TC the two-phase
    // run equals the constant run at the mean temperature.
    const auto qual = makeQual();
    RampEngine engine(qual, ones());
    engine.addInterval(flat(345.0), flat(0.4), 1.0, 4.0, 1.0);
    engine.addInterval(flat(385.0), flat(0.4), 1.0, 4.0, 1.0);

    const auto at_mean =
        steadyFit(qual, ones(), flat(365.0), flat(0.4), 1.0, 4.0);
    EXPECT_NEAR(engine.report().mechanismFit(Mechanism::TC),
                at_mean.mechanismFit(Mechanism::TC), 1e-9);
}

TEST(RampEngine, AvgTempReported)
{
    RampEngine engine(makeQual(), ones());
    engine.addInterval(flat(350.0), flat(0.4), 1.0, 4.0, 1.0);
    engine.addInterval(flat(370.0), flat(0.4), 1.0, 4.0, 3.0);
    const auto report = engine.report();
    for (auto s : allStructures())
        EXPECT_NEAR(report.avg_temp_k[sim::structureIndex(s)], 365.0,
                    1e-9);
    EXPECT_NEAR(report.total_time_s, 4.0, 1e-12);
}

TEST(RampEngine, ResetClears)
{
    RampEngine engine(makeQual(), ones());
    engine.addInterval(flat(370.0), flat(0.4), 1.0, 4.0, 1.0);
    EXPECT_EQ(engine.intervals(), 1u);
    engine.reset();
    EXPECT_EQ(engine.intervals(), 0u);
    EXPECT_EQ(engine.report().totalFit(), 0.0);
}

TEST(RampEngine, GatedStructuresContributeLess)
{
    const auto qual = makeQual();
    PerStructure<double> half = flat(0.5);
    const auto full = steadyFit(qual, ones(), flat(370.0), flat(0.4),
                                1.0, 4.0);
    const auto gated = steadyFit(qual, half, flat(370.0), flat(0.4),
                                 1.0, 4.0);
    EXPECT_LT(gated.totalFit(), full.totalFit());
    // SM and TC are mechanical: unaffected by gating.
    EXPECT_NEAR(gated.mechanismFit(Mechanism::SM),
                full.mechanismFit(Mechanism::SM), 1e-9);
    EXPECT_NEAR(gated.mechanismFit(Mechanism::EM),
                0.5 * full.mechanismFit(Mechanism::EM), 1e-9);
}

TEST(RampEngineDeath, BadDurationIsFatal)
{
    RampEngine engine(makeQual(), ones());
    EXPECT_EXIT(
        engine.addInterval(flat(370.0), flat(0.4), 1.0, 4.0, 0.0),
        testing::ExitedWithCode(1), "duration");
}

TEST(RampEngineDeath, BadOnFractionIsFatal)
{
    EXPECT_EXIT(RampEngine(makeQual(), flat(1.5)),
                testing::ExitedWithCode(1), "fraction");
}

} // namespace
} // namespace ramp::core
