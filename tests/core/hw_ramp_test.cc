/**
 * @file
 * Tests for the hardware-implementable RAMP (quantised sensors and
 * counters) and for workload-level FIT combination.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/hw_ramp.hh"

namespace ramp::core {
namespace {

using sim::PerStructure;

Qualification
makeQual(double t_qual = 380.0)
{
    QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.5);
    return Qualification(s);
}

PerStructure<double>
flat(double v)
{
    PerStructure<double> p;
    p.fill(v);
    return p;
}

TEST(HwRamp, QuantisesTemperatureToSensorStep)
{
    HwRampEngine hw(makeQual(), flat(1.0));
    EXPECT_DOUBLE_EQ(hw.quantiseTemp(361.4), 361.0);
    EXPECT_DOUBLE_EQ(hw.quantiseTemp(361.5), 362.0);
    EXPECT_DOUBLE_EQ(hw.quantiseTemp(361.0), 361.0);
}

TEST(HwRamp, SensorOffsetShiftsReadings)
{
    SensorParams sp;
    sp.temp_offset_k = 2.0;
    HwRampEngine hw(makeQual(), flat(1.0), sp);
    EXPECT_DOUBLE_EQ(hw.quantiseTemp(360.0), 362.0);
}

TEST(HwRamp, QuantisesActivityToCounterLevels)
{
    SensorParams sp;
    sp.activity_levels = 4;
    HwRampEngine hw(makeQual(), flat(1.0), sp);
    EXPECT_DOUBLE_EQ(hw.quantiseActivity(0.30), 0.25);
    EXPECT_DOUBLE_EQ(hw.quantiseActivity(0.40), 0.50);
    EXPECT_DOUBLE_EQ(hw.quantiseActivity(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hw.quantiseActivity(1.0), 1.0);
}

TEST(HwRamp, QuantisesVoltage)
{
    HwRampEngine hw(makeQual(), flat(1.0));
    EXPECT_NEAR(hw.quantiseVoltage(0.981), 0.975, 1e-12);
    EXPECT_NEAR(hw.quantiseVoltage(0.982), 0.9875, 1e-12);
    EXPECT_NEAR(hw.quantiseVoltage(1.0), 1.0, 1e-12);
}

TEST(HwRamp, TracksExactEngineClosely)
{
    // Typical sensors (1 K, 4-bit counters): the hardware estimate
    // stays within a few percent of the exact engine.
    const auto qual = makeQual();
    RampEngine exact(qual, flat(1.0));
    HwRampEngine hw(qual, flat(1.0));

    for (int i = 0; i < 20; ++i) {
        PerStructure<double> temps;
        PerStructure<double> act;
        for (std::size_t s = 0; s < sim::num_structures; ++s) {
            temps[s] = 345.0 + 2.7 * static_cast<double>(s) +
                       0.31 * i;
            act[s] = 0.037 * static_cast<double>(s + 1) * 0.9;
        }
        exact.addInterval(temps, act, 1.0, 4.0, 1.0);
        hw.addInterval(temps, act, 1.0, 4.0, 1.0);
    }
    const double exact_fit = exact.report().totalFit();
    const double hw_fit = hw.report().totalFit();
    EXPECT_NEAR(hw_fit, exact_fit, 0.05 * exact_fit);
}

TEST(HwRamp, ConservativeOffsetOverestimatesFit)
{
    const auto qual = makeQual();
    SensorParams biased;
    biased.temp_offset_k = 3.0; // reads hot on purpose
    RampEngine exact(qual, flat(1.0));
    HwRampEngine hw(qual, flat(1.0), biased);
    exact.addInterval(flat(360.0), flat(0.4), 1.0, 4.0, 1.0);
    hw.addInterval(flat(360.0), flat(0.4), 1.0, 4.0, 1.0);
    EXPECT_GT(hw.report().totalFit(), exact.report().totalFit());
}

TEST(HwRamp, ResetAndCount)
{
    HwRampEngine hw(makeQual(), flat(1.0));
    hw.addInterval(flat(360.0), flat(0.4), 1.0, 4.0, 1.0);
    EXPECT_EQ(hw.intervals(), 1u);
    hw.reset();
    EXPECT_EQ(hw.intervals(), 0u);
}

TEST(HwRampDeath, RejectsBadSensors)
{
    SensorParams sp;
    sp.temp_quantum_k = 0.0;
    EXPECT_EXIT(HwRampEngine(makeQual(), flat(1.0), sp),
                testing::ExitedWithCode(1), "quantum");
    SensorParams sq;
    sq.activity_levels = 0;
    EXPECT_EXIT(HwRampEngine(makeQual(), flat(1.0), sq),
                testing::ExitedWithCode(1), "level");
}

TEST(CombineReports, WeightedAverageOfFit)
{
    const auto qual = makeQual();
    const auto cold =
        steadyFit(qual, flat(1.0), flat(345.0), flat(0.4), 1.0, 4.0);
    const auto hot =
        steadyFit(qual, flat(1.0), flat(385.0), flat(0.4), 1.0, 4.0);

    // 3:1 cold:hot workload.
    const auto mix = combineReports({cold, hot}, {3.0, 1.0});
    EXPECT_NEAR(mix.totalFit(),
                0.75 * cold.totalFit() + 0.25 * hot.totalFit(),
                1e-9);
    EXPECT_NEAR(mix.avg_temp_k[0], 0.75 * 345.0 + 0.25 * 385.0,
                1e-9);
}

TEST(CombineReports, WeightsAreNormalised)
{
    const auto qual = makeQual();
    const auto r =
        steadyFit(qual, flat(1.0), flat(360.0), flat(0.4), 1.0, 4.0);
    const auto a = combineReports({r, r}, {1.0, 1.0});
    const auto b = combineReports({r, r}, {10.0, 10.0});
    EXPECT_NEAR(a.totalFit(), b.totalFit(), 1e-9);
    EXPECT_NEAR(a.totalFit(), r.totalFit(), 1e-9);
}

TEST(CombineReportsDeath, RejectsBadInputs)
{
    const auto qual = makeQual();
    const auto r =
        steadyFit(qual, flat(1.0), flat(360.0), flat(0.4), 1.0, 4.0);
    EXPECT_EXIT(combineReports({}, {}), testing::ExitedWithCode(1),
                "nonempty");
    EXPECT_EXIT(combineReports({r}, {1.0, 2.0}),
                testing::ExitedWithCode(1), "matching");
    EXPECT_EXIT(combineReports({r}, {0.0}), testing::ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace ramp::core
