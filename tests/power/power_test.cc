/**
 * @file
 * Tests for the Wattch-style power model: gating floor, V/f scaling,
 * leakage temperature dependence, and powered-on fractions.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "power/power.hh"

namespace ramp::power {
namespace {

using sim::ActivitySample;
using sim::baseMachine;
using sim::MachineConfig;
using sim::num_structures;
using sim::PerStructure;
using sim::StructureId;
using sim::structureIndex;

ActivitySample
flatActivity(double alpha)
{
    ActivitySample s;
    s.cycles = 1000;
    s.retired = 1000;
    s.activity.fill(alpha);
    return s;
}

TEST(PoweredFractions, BaseMachineIsFullyOn)
{
    const auto frac = poweredFractions(baseMachine());
    for (double f : frac)
        EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(PoweredFractions, DownsizedStructuresScale)
{
    MachineConfig cfg = baseMachine();
    cfg.num_int_alu = 3;  // half of 6
    cfg.num_fpu = 1;      // quarter of 4
    cfg.window_size = 32; // quarter of 128
    cfg.mem_queue = 8;    // quarter of 32
    const auto frac = poweredFractions(cfg);
    EXPECT_DOUBLE_EQ(frac[structureIndex(StructureId::IntAlu)], 0.5);
    EXPECT_DOUBLE_EQ(frac[structureIndex(StructureId::Fpu)], 0.25);
    EXPECT_DOUBLE_EQ(frac[structureIndex(StructureId::IWin)], 0.25);
    EXPECT_DOUBLE_EQ(frac[structureIndex(StructureId::Lsq)], 0.25);
    // Non-adaptive structures stay fully on.
    EXPECT_DOUBLE_EQ(frac[structureIndex(StructureId::L1D)], 1.0);
    EXPECT_DOUBLE_EQ(frac[structureIndex(StructureId::Bpred)], 1.0);
}

TEST(PowerModel, IdlePowerIsGatingFloor)
{
    const PowerModel model(baseMachine());
    const auto p = model.dynamicPower(flatActivity(0.0));
    const auto &params = model.params();
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(p[i], 0.1 * params.max_dynamic_w[i], 1e-12);
}

TEST(PowerModel, FullActivityIsMaxPower)
{
    const PowerModel model(baseMachine());
    const auto p = model.dynamicPower(flatActivity(1.0));
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(p[i], model.params().max_dynamic_w[i], 1e-12);
}

TEST(PowerModel, DynamicScalesQuadraticallyWithVoltage)
{
    MachineConfig half = baseMachine();
    half.voltage_v = 0.5;
    const PowerModel base_model(baseMachine());
    const PowerModel half_model(half);
    const auto p1 = base_model.dynamicPower(flatActivity(0.5));
    const auto p2 = half_model.dynamicPower(flatActivity(0.5));
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(p2[i], 0.25 * p1[i], 1e-12);
}

TEST(PowerModel, DynamicScalesLinearlyWithFrequency)
{
    MachineConfig slow = baseMachine();
    slow.frequency_ghz = 2.0;
    const PowerModel base_model(baseMachine());
    const PowerModel slow_model(slow);
    const auto p1 = base_model.dynamicPower(flatActivity(0.7));
    const auto p2 = slow_model.dynamicPower(flatActivity(0.7));
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(p2[i], 0.5 * p1[i], 1e-12);
}

TEST(PowerModel, DynamicScalesWithPoweredFraction)
{
    MachineConfig small = baseMachine();
    small.num_int_alu = 3;
    const PowerModel base_model(baseMachine());
    const PowerModel small_model(small);
    const auto p1 = base_model.dynamicPower(flatActivity(1.0));
    const auto p2 = small_model.dynamicPower(flatActivity(1.0));
    const auto ia = structureIndex(StructureId::IntAlu);
    EXPECT_NEAR(p2[ia], 0.5 * p1[ia], 1e-12);
}

TEST(PowerModel, LeakageAtReferenceTemperature)
{
    const PowerModel model(baseMachine());
    PerStructure<double> temps;
    temps.fill(383.0);
    const auto leak = model.leakagePower(temps);
    double total = 0.0;
    for (double v : leak)
        total += v;
    // 0.5 W/mm^2 x 20.25 mm^2 at the reference temperature.
    EXPECT_NEAR(total, 0.5 * sim::totalCoreArea(), 1e-9);
}

TEST(PowerModel, LeakageGrowsExponentiallyWithTemperature)
{
    const PowerModel model(baseMachine());
    PerStructure<double> cold, hot;
    cold.fill(350.0);
    hot.fill(390.0);
    const auto leak_cold = model.leakagePower(cold);
    const auto leak_hot = model.leakagePower(hot);
    const double expected = std::exp(0.017 * 40.0);
    for (std::size_t i = 0; i < num_structures; ++i)
        EXPECT_NEAR(leak_hot[i] / leak_cold[i], expected, 1e-9);
}

TEST(PowerModel, LeakageScalesWithVoltageAndGating)
{
    MachineConfig cfg = baseMachine();
    cfg.voltage_v = 0.8;
    cfg.num_fpu = 2; // half the FPU area gated off
    const PowerModel model(cfg);
    PerStructure<double> temps;
    temps.fill(383.0);
    const auto leak = model.leakagePower(temps);
    const auto fpu = structureIndex(StructureId::Fpu);
    EXPECT_NEAR(leak[fpu],
                0.5 * sim::structureArea(StructureId::Fpu) * 0.5 * 0.8,
                1e-9);
}

TEST(PowerBreakdown, TotalsAreSums)
{
    const PowerModel model(baseMachine());
    PerStructure<double> temps;
    temps.fill(360.0);
    const auto b = model.breakdown(flatActivity(0.4), temps);
    double dyn = 0.0, leak = 0.0;
    for (std::size_t i = 0; i < num_structures; ++i) {
        dyn += b.dynamic_w[i];
        leak += b.leakage_w[i];
    }
    EXPECT_NEAR(b.totalDynamic(), dyn, 1e-12);
    EXPECT_NEAR(b.totalLeakage(), leak, 1e-12);
    EXPECT_NEAR(b.total(), dyn + leak, 1e-12);
    EXPECT_NEAR(b.structureTotal(StructureId::Fpu),
                b.dynamic_w[structureIndex(StructureId::Fpu)] +
                    b.leakage_w[structureIndex(StructureId::Fpu)],
                1e-12);
}

TEST(PowerModel, CalibratedTotalsAreReasonable)
{
    // At moderate activity and temperature the core must land in the
    // paper's 15-37 W window.
    const PowerModel model(baseMachine());
    PerStructure<double> temps;
    temps.fill(370.0);
    const auto b = model.breakdown(flatActivity(0.25), temps);
    EXPECT_GT(b.total(), 15.0);
    EXPECT_LT(b.total(), 40.0);
}

TEST(PowerModelDeath, RejectsBadParams)
{
    PowerParams p;
    p.gating_floor = 1.5;
    EXPECT_EXIT(PowerModel(baseMachine(), p),
                testing::ExitedWithCode(1), "gating");

    PowerParams q;
    q.max_dynamic_w[0] = -1.0;
    EXPECT_EXIT(PowerModel(baseMachine(), q),
                testing::ExitedWithCode(1), "dynamic power");

    PowerParams r;
    r.base_frequency_ghz = 0.0;
    EXPECT_EXIT(PowerModel(baseMachine(), r),
                testing::ExitedWithCode(1), "operating point");
}

} // namespace
} // namespace ramp::power
