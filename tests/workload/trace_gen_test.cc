/**
 * @file
 * Tests for the synthetic trace generator: determinism, mix fidelity,
 * dependence distances, address bounds, call/return matching, and
 * phase structure.
 */

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "workload/trace_gen.hh"

namespace ramp::workload {
namespace {

using sim::Uop;
using sim::UopClass;

TEST(TraceGen, DeterministicForSameSeed)
{
    TraceGenerator a(findApp("bzip2"), 7);
    TraceGenerator b(findApp("bzip2"), 7);
    for (int i = 0; i < 10000; ++i) {
        const Uop ua = a.next();
        const Uop ub = b.next();
        ASSERT_EQ(ua.pc, ub.pc);
        ASSERT_EQ(static_cast<int>(ua.cls), static_cast<int>(ub.cls));
        ASSERT_EQ(ua.addr, ub.addr);
        ASSERT_EQ(ua.taken, ub.taken);
        ASSERT_EQ(ua.src_dist[0], ub.src_dist[0]);
    }
}

TEST(TraceGen, DifferentSeedsDiverge)
{
    TraceGenerator a(findApp("bzip2"), 1);
    TraceGenerator b(findApp("bzip2"), 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().pc == b.next().pc;
    EXPECT_LT(same, 900);
}

TEST(TraceGen, AppsAreDecorrelatedUnderSharedSeed)
{
    TraceGenerator a(findApp("bzip2"), 1);
    TraceGenerator b(findApp("gzip"), 1);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().addr == b.next().addr;
    EXPECT_LT(same, 900);
}

TEST(TraceGen, MixFractionsAreHonoured)
{
    const auto &app = findApp("bzip2"); // single phase
    const auto &mix = app.phases[0].mix;
    TraceGenerator gen(app, 3);
    std::map<UopClass, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];

    auto frac = [&](UopClass c) {
        return static_cast<double>(counts[c]) / n;
    };
    EXPECT_NEAR(frac(UopClass::Load), mix.load, 0.01);
    EXPECT_NEAR(frac(UopClass::Store), mix.store, 0.01);
    EXPECT_NEAR(frac(UopClass::Branch), mix.branch, 0.01);
    // Calls and returns together consume the call budget.
    EXPECT_NEAR(frac(UopClass::Call) + frac(UopClass::Return),
                mix.call, 0.005);
    EXPECT_NEAR(frac(UopClass::IntAlu), mix.intAlu(), 0.02);
}

TEST(TraceGen, DependenceDistancesMatchProfile)
{
    const auto &app = findApp("art");
    TraceGenerator gen(app, 5);
    double sum = 0.0;
    int nonzero = 0, total = 0;
    for (int i = 0; i < 100000; ++i) {
        const Uop u = gen.next();
        if (sim::isCtrlClass(u.cls))
            continue; // ctrl deps are deliberately damped
        ++total;
        if (u.src_dist[0]) {
            sum += u.src_dist[0];
            ++nonzero;
        }
    }
    EXPECT_NEAR(static_cast<double>(nonzero) / total, app.dep.p_src1,
                0.02);
    EXPECT_NEAR(sum / nonzero, app.dep.mean_dist,
                0.15 * app.dep.mean_dist);
}

TEST(TraceGen, CtrlDependencesAreDamped)
{
    const auto &app = findApp("twolf");
    TraceGenerator gen(app, 5);
    int ctrl = 0, ctrl_dep = 0, data = 0, data_dep = 0;
    for (int i = 0; i < 300000; ++i) {
        const Uop u = gen.next();
        if (sim::isCtrlClass(u.cls)) {
            ++ctrl;
            ctrl_dep += u.src_dist[0] != 0;
        } else {
            ++data;
            data_dep += u.src_dist[0] != 0;
        }
    }
    const double ctrl_rate = static_cast<double>(ctrl_dep) / ctrl;
    const double data_rate = static_cast<double>(data_dep) / data;
    EXPECT_NEAR(ctrl_rate,
                app.dep.p_src1 * app.dep.ctrl_dep_scale, 0.03);
    EXPECT_GT(data_rate, ctrl_rate);
}

TEST(TraceGen, DataAddressesStayInWorkingSet)
{
    const auto &app = findApp("gzip");
    const auto ws = app.phases[0].mem.working_set_bytes;
    TraceGenerator gen(app, 9);
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 100000; ++i) {
        const Uop u = gen.next();
        if (!sim::isMemClass(u.cls))
            continue;
        lo = std::min(lo, u.addr);
        hi = std::max(hi, u.addr);
    }
    EXPECT_GE(hi - lo, ws / 2);  // footprint actually used
    EXPECT_LE(hi - lo, ws + 64); // and bounded by the working set
}

TEST(TraceGen, PcsStayInCodeRegion)
{
    const auto &app = findApp("bzip2");
    TraceGenerator gen(app, 11);
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 50000; ++i) {
        const Uop u = gen.next();
        lo = std::min(lo, u.pc);
        hi = std::max(hi, u.pc);
    }
    EXPECT_LE(hi - lo, app.code_bytes);
}

TEST(TraceGen, CallsAndReturnsMatchLikeAStack)
{
    // Replaying calls/returns against a shadow stack must always pop
    // the address the generator claims -- this is what makes the RAS
    // effective on these traces.
    TraceGenerator gen(findApp("gzip"), 13);
    std::vector<std::uint64_t> stack;
    int returns = 0;
    for (int i = 0; i < 300000; ++i) {
        const Uop u = gen.next();
        if (u.cls == UopClass::Call) {
            stack.push_back(u.addr);
        } else if (u.cls == UopClass::Return) {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(u.addr, stack.back());
            stack.pop_back();
            ++returns;
        }
    }
    EXPECT_GT(returns, 100);
}

TEST(TraceGen, CallDepthIsBounded)
{
    const auto &app = findApp("twolf");
    TraceGenerator gen(app, 17);
    int depth = 0, max_depth = 0;
    for (int i = 0; i < 300000; ++i) {
        const Uop u = gen.next();
        if (u.cls == UopClass::Call)
            max_depth = std::max(max_depth, ++depth);
        else if (u.cls == UopClass::Return)
            --depth;
    }
    EXPECT_LE(max_depth,
              static_cast<int>(app.branch.max_call_depth));
}

TEST(TraceGen, PhasesCycle)
{
    const auto &app = findApp("MPGdec"); // two phases
    TraceGenerator gen(app, 19);
    const auto phase_len = app.phases[0].length_uops;
    for (std::uint64_t i = 0; i < phase_len; ++i)
        gen.next();
    EXPECT_EQ(gen.currentPhase(), 0u);
    gen.next();
    EXPECT_EQ(gen.currentPhase(), 1u);
    // After the second phase it wraps back.
    for (std::uint64_t i = 0; i < app.phases[1].length_uops; ++i)
        gen.next();
    EXPECT_EQ(gen.currentPhase(), 0u);
}

TEST(TraceGen, MemoryPhaseIsLoadHeavier)
{
    const auto &app = findApp("MPGdec");
    TraceGenerator gen(app, 23);
    const auto p0 = app.phases[0].length_uops;
    int loads_compute = 0;
    for (std::uint64_t i = 0; i < p0; ++i)
        loads_compute += gen.next().cls == UopClass::Load;
    int loads_mem = 0;
    const auto p1 = app.phases[1].length_uops;
    for (std::uint64_t i = 0; i < p1; ++i)
        loads_mem += gen.next().cls == UopClass::Load;
    EXPECT_GT(static_cast<double>(loads_mem) / p1,
              static_cast<double>(loads_compute) / p0);
}

TEST(TraceGen, BranchOutcomesAreBiasedButNotConstant)
{
    TraceGenerator gen(findApp("twolf"), 29);
    int branches = 0, taken = 0;
    for (int i = 0; i < 200000; ++i) {
        const Uop u = gen.next();
        if (u.cls == UopClass::Branch) {
            ++branches;
            taken += u.taken;
        }
    }
    const double rate = static_cast<double>(taken) / branches;
    EXPECT_GT(rate, 0.2);
    EXPECT_LT(rate, 0.95);
}

TEST(TraceGen, ProducedCounts)
{
    TraceGenerator gen(findApp("art"), 31);
    for (int i = 0; i < 1234; ++i)
        gen.next();
    EXPECT_EQ(gen.produced(), 1234u);
}

} // namespace
} // namespace ramp::workload
