/**
 * @file
 * Tests for the application profiles: suite composition, Table 2
 * reference values, and validation.
 */

#include <gtest/gtest.h>

#include "workload/profile.hh"

namespace ramp::workload {
namespace {

TEST(Profiles, SuiteHasNineAppsInTable2Order)
{
    const auto &apps = standardApps();
    ASSERT_EQ(apps.size(), 9u);
    const char *expected[] = {"MPGdec", "MP3dec", "H263enc",
                              "bzip2", "gzip", "twolf",
                              "art", "equake", "ammp"};
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(apps[i].name, expected[i]);
}

TEST(Profiles, ThreeAppsPerClass)
{
    int counts[3] = {0, 0, 0};
    for (const auto &app : standardApps())
        ++counts[static_cast<int>(app.app_class)];
    EXPECT_EQ(counts[static_cast<int>(AppClass::Multimedia)], 3);
    EXPECT_EQ(counts[static_cast<int>(AppClass::SpecInt)], 3);
    EXPECT_EQ(counts[static_cast<int>(AppClass::SpecFp)], 3);
}

TEST(Profiles, Table2ReferenceValuesMatchPaper)
{
    EXPECT_DOUBLE_EQ(findApp("MPGdec").table2_ipc, 3.2);
    EXPECT_DOUBLE_EQ(findApp("MPGdec").table2_power_w, 36.5);
    EXPECT_DOUBLE_EQ(findApp("MP3dec").table2_ipc, 2.8);
    EXPECT_DOUBLE_EQ(findApp("H263enc").table2_ipc, 1.9);
    EXPECT_DOUBLE_EQ(findApp("bzip2").table2_ipc, 1.7);
    EXPECT_DOUBLE_EQ(findApp("gzip").table2_ipc, 1.5);
    EXPECT_DOUBLE_EQ(findApp("twolf").table2_ipc, 0.8);
    EXPECT_DOUBLE_EQ(findApp("twolf").table2_power_w, 15.6);
    EXPECT_DOUBLE_EQ(findApp("art").table2_ipc, 0.7);
    EXPECT_DOUBLE_EQ(findApp("equake").table2_ipc, 1.4);
    EXPECT_DOUBLE_EQ(findApp("ammp").table2_ipc, 1.1);
}

TEST(Profiles, AllProfilesValidate)
{
    for (const auto &app : standardApps())
        app.validate(); // must not exit
}

TEST(Profiles, MultimediaAppsArePhased)
{
    for (const auto &app : standardApps()) {
        if (app.app_class == AppClass::Multimedia)
            EXPECT_GE(app.phases.size(), 2u) << app.name;
        else
            EXPECT_EQ(app.phases.size(), 1u) << app.name;
    }
}

TEST(Profiles, MixFractionsLeaveRoomForIntAlu)
{
    for (const auto &app : standardApps())
        for (const auto &ph : app.phases)
            EXPECT_GT(ph.mix.intAlu(), 0.0) << app.name;
}

TEST(Profiles, FpAppsHaveFpWork)
{
    for (const auto &app : standardApps()) {
        if (app.app_class == AppClass::SpecFp) {
            EXPECT_GT(app.phases[0].mix.fp_op, 0.1) << app.name;
        }
        if (app.app_class == AppClass::SpecInt) {
            EXPECT_EQ(app.phases[0].mix.fp_op, 0.0) << app.name;
        }
    }
}

TEST(ProfilesDeath, FindUnknownAppIsFatal)
{
    EXPECT_EXIT(findApp("doom3"), testing::ExitedWithCode(1),
                "unknown application");
}

TEST(ProfilesDeath, ValidateRejectsBadProfiles)
{
    AppProfile p = findApp("bzip2");
    p.name.clear();
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "name");

    p = findApp("bzip2");
    p.phases.clear();
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "phase");

    p = findApp("bzip2");
    p.phases[0].mix.load = 1.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "fraction");

    p = findApp("bzip2");
    p.phases[0].mix.load = 0.7;
    p.phases[0].mix.store = 0.7;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "exceed");

    p = findApp("bzip2");
    p.phases[0].mem.hot_bytes =
        p.phases[0].mem.working_set_bytes + 1;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "hot region");

    p = findApp("bzip2");
    p.dep.mean_dist = 0.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "distance");

    p = findApp("bzip2");
    p.code_bytes = 100;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "code");
}

TEST(Profiles, ClassNames)
{
    EXPECT_STREQ(appClassName(AppClass::Multimedia), "Multimedia");
    EXPECT_STREQ(appClassName(AppClass::SpecInt), "SpecInt");
    EXPECT_STREQ(appClassName(AppClass::SpecFp), "SpecFP");
}

} // namespace
} // namespace ramp::workload
