/**
 * @file
 * Parameterised per-application property tests: every profile in the
 * suite must satisfy the generator contracts (mix fidelity, address
 * bounds, stack discipline, determinism), not just the apps spot-
 * checked in trace_gen_test.cc.
 */

#include <map>

#include <gtest/gtest.h>

#include "workload/trace_gen.hh"

namespace ramp::workload {
namespace {

using sim::Uop;
using sim::UopClass;

class AppSuiteTest : public testing::TestWithParam<const char *>
{
  protected:
    const AppProfile &app() const { return findApp(GetParam()); }
};

TEST_P(AppSuiteTest, MixFidelityAcrossPhases)
{
    const AppProfile &p = app();
    // Phase-length-weighted expected fractions.
    double total_len = 0.0, exp_load = 0.0, exp_branch = 0.0,
           exp_fp = 0.0;
    for (const auto &ph : p.phases) {
        const auto len = static_cast<double>(ph.length_uops);
        total_len += len;
        exp_load += len * ph.mix.load;
        exp_branch += len * ph.mix.branch;
        exp_fp += len * (ph.mix.fp_op + ph.mix.fp_div);
    }
    exp_load /= total_len;
    exp_branch /= total_len;
    exp_fp /= total_len;

    TraceGenerator gen(p, 41);
    // Sample a whole number of phase cycles where possible.
    const auto n = static_cast<std::uint64_t>(total_len);
    std::map<UopClass, std::uint64_t> counts;
    for (std::uint64_t i = 0; i < n; ++i)
        ++counts[gen.next().cls];
    const auto frac = [&](UopClass c) {
        return static_cast<double>(counts[c]) / static_cast<double>(n);
    };
    EXPECT_NEAR(frac(UopClass::Load), exp_load, 0.015) << p.name;
    EXPECT_NEAR(frac(UopClass::Branch), exp_branch, 0.01) << p.name;
    EXPECT_NEAR(frac(UopClass::FpOp) + frac(UopClass::FpDiv), exp_fp,
                0.01)
        << p.name;
}

TEST_P(AppSuiteTest, AddressesBoundedByLargestWorkingSet)
{
    const AppProfile &p = app();
    std::uint64_t max_ws = 0;
    for (const auto &ph : p.phases)
        max_ws = std::max(max_ws, ph.mem.working_set_bytes);

    TraceGenerator gen(p, 43);
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 200000; ++i) {
        const Uop u = gen.next();
        if (!sim::isMemClass(u.cls))
            continue;
        lo = std::min(lo, u.addr);
        hi = std::max(hi, u.addr);
    }
    ASSERT_LT(lo, hi);
    EXPECT_LE(hi - lo, max_ws + 64) << p.name;
}

TEST_P(AppSuiteTest, PcsBoundedByCodeFootprint)
{
    const AppProfile &p = app();
    TraceGenerator gen(p, 47);
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 100000; ++i) {
        const Uop u = gen.next();
        lo = std::min(lo, u.pc);
        hi = std::max(hi, u.pc);
    }
    EXPECT_LE(hi - lo, p.code_bytes) << p.name;
}

TEST_P(AppSuiteTest, CallReturnStackDiscipline)
{
    TraceGenerator gen(app(), 53);
    std::vector<std::uint64_t> stack;
    for (int i = 0; i < 200000; ++i) {
        const Uop u = gen.next();
        if (u.cls == UopClass::Call) {
            stack.push_back(u.addr);
        } else if (u.cls == UopClass::Return) {
            ASSERT_FALSE(stack.empty()) << app().name;
            EXPECT_EQ(u.addr, stack.back()) << app().name;
            stack.pop_back();
        }
    }
}

TEST_P(AppSuiteTest, DeterministicStream)
{
    TraceGenerator a(app(), 59), b(app(), 59);
    for (int i = 0; i < 5000; ++i) {
        const Uop ua = a.next();
        const Uop ub = b.next();
        ASSERT_EQ(ua.pc, ub.pc);
        ASSERT_EQ(ua.addr, ub.addr);
        ASSERT_EQ(static_cast<int>(ua.cls), static_cast<int>(ub.cls));
    }
}

TEST_P(AppSuiteTest, DependenceDistancesPositiveAndCapped)
{
    TraceGenerator gen(app(), 61);
    for (int i = 0; i < 50000; ++i) {
        const Uop u = gen.next();
        EXPECT_LE(u.src_dist[0], 500);
        EXPECT_LE(u.src_dist[1], 500);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppSuiteTest,
    testing::Values("MPGdec", "MP3dec", "H263enc", "bzip2", "gzip",
                    "twolf", "art", "equake", "ammp"),
    [](const testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // namespace
} // namespace ramp::workload
