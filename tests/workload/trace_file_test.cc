/**
 * @file
 * Tests for trace capture and replay: byte-exact round trips, loop
 * semantics, corruption handling, and simulation equivalence (a core
 * driven by a replayed trace behaves identically to the live source).
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/core.hh"
#include "workload/trace_file.hh"
#include "workload/trace_gen.hh"

namespace ramp::workload {
namespace {

std::string
tmpTrace(const char *tag)
{
    return testing::TempDir() + "ramp_trace_" + tag + ".bin";
}

TEST(TraceFile, RoundTripPreservesEveryField)
{
    const auto path = tmpTrace("roundtrip");
    TraceGenerator gen(findApp("bzip2"), 7);

    std::vector<sim::Uop> original;
    {
        TraceWriter writer(path);
        for (int i = 0; i < 5000; ++i) {
            const sim::Uop u = gen.next();
            original.push_back(u);
            writer.write(u);
        }
        EXPECT_EQ(writer.written(), 5000u);
    }

    FileTraceSource replay(path);
    ASSERT_EQ(replay.size(), 5000u);
    for (const auto &want : original) {
        const sim::Uop got = replay.next();
        ASSERT_EQ(got.pc, want.pc);
        ASSERT_EQ(got.addr, want.addr);
        ASSERT_EQ(static_cast<int>(got.cls),
                  static_cast<int>(want.cls));
        ASSERT_EQ(got.taken, want.taken);
        ASSERT_EQ(got.src_dist[0], want.src_dist[0]);
        ASSERT_EQ(got.src_dist[1], want.src_dist[1]);
        ASSERT_EQ(got.writes_int, want.writes_int);
        ASSERT_EQ(got.writes_fp, want.writes_fp);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoopsAtEnd)
{
    const auto path = tmpTrace("loop");
    TraceGenerator gen(findApp("art"), 3);
    captureTrace(gen, path, 100);

    FileTraceSource replay(path);
    const sim::Uop first = replay.next();
    for (int i = 1; i < 100; ++i)
        replay.next();
    EXPECT_EQ(replay.wraps(), 1u);
    const sim::Uop again = replay.next();
    EXPECT_EQ(again.pc, first.pc);
    EXPECT_EQ(again.addr, first.addr);
    std::remove(path.c_str());
}

TEST(TraceFile, CaptureHelperCounts)
{
    const auto path = tmpTrace("capture");
    TraceGenerator gen(findApp("gzip"), 5);
    EXPECT_EQ(captureTrace(gen, path, 1234), 1234u);
    FileTraceSource replay(path);
    EXPECT_EQ(replay.size(), 1234u);
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayDrivesCoreIdenticallyToLiveSource)
{
    // The headline property: simulation from a replayed capture is
    // cycle-identical to simulation from the live generator.
    const auto path = tmpTrace("equiv");
    {
        TraceGenerator gen(findApp("twolf"), 11);
        captureTrace(gen, path, 200000);
    }

    TraceGenerator live(findApp("twolf"), 11);
    sim::Core core_live(sim::baseMachine(), live);
    core_live.run(50000);

    FileTraceSource replay(path);
    sim::Core core_replay(sim::baseMachine(), replay);
    core_replay.run(50000);

    EXPECT_EQ(core_live.stats().retired,
              core_replay.stats().retired);
    EXPECT_EQ(core_live.stats().mispredicts,
              core_replay.stats().mispredicts);
    EXPECT_EQ(core_live.stats().issued, core_replay.stats().issued);
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(FileTraceSource("/nonexistent/ramp.bin"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, GarbageFileIsFatal)
{
    const auto path = tmpTrace("garbage");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all";
    }
    EXPECT_EXIT(FileTraceSource{path}, testing::ExitedWithCode(1),
                "not a RAMP trace");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, EmptyTraceIsFatal)
{
    const auto path = tmpTrace("empty");
    {
        TraceWriter writer(path); // header only
    }
    EXPECT_EXIT(FileTraceSource{path}, testing::ExitedWithCode(1),
                "no records");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, CorruptClassIsFatal)
{
    const auto path = tmpTrace("corruptcls");
    {
        TraceGenerator gen(findApp("gzip"), 1);
        captureTrace(gen, path, 10);
    }
    // Stomp a class byte beyond NumClasses (offset: 8B header +
    // record 0 at +0; cls at offset 20 within the 24B record).
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(8 + 20);
        const char bad = 99;
        f.write(&bad, 1);
    }
    EXPECT_EXIT(FileTraceSource{path}, testing::ExitedWithCode(1),
                "corrupt");
    std::remove(path.c_str());
}

} // namespace
} // namespace ramp::workload
