/**
 * @file
 * Tests for the surrogate fast path: response-surface fit/predict
 * units, every tiered fallback reason (each must land on the
 * exhaustive path and bump surrogate.fallbacks), and the bit-identity
 * guarantee against exhaustive search on the full fig4 (DVS) and
 * fig2 (ArchDVS) spaces -- the latter also pins the >=10x reduction
 * in exact simulations per selection.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "drm/surrogate/tiered.hh"
#include "util/telemetry.hh"
#include "workload/profile.hh"

namespace ramp::drm::surrogate {
namespace {

core::EvalParams
fastParams()
{
    core::EvalParams params;
    params.warmup_uops = 40'000;
    params.measure_uops = 60'000;
    return params;
}

core::Qualification
makeQual(double t_qual_k)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual_k;
    s.alpha_qual.fill(0.5);
    return core::Qualification(s);
}

std::uint64_t
fallbackCount()
{
    return telemetry::Registry::instance().snapshot().counter(
        "surrogate.fallbacks");
}

/** Synthetic operating point whose temperature is an affine function
 *  of the knobs, so a quadratic surface reproduces it exactly. */
core::OperatingPoint
syntheticOp(const sim::MachineConfig &cfg)
{
    core::OperatingPoint op;
    op.config = cfg;
    op.temps_k.fill(300.0 + 20.0 * cfg.frequency_ghz +
                    15.0 * cfg.voltage_v);
    op.activity.activity.fill(0.5);
    op.activity.cycles = 1000;
    op.activity.retired = 1000;
    return op;
}

std::vector<TrainingSample>
syntheticSamples(std::size_t count)
{
    const auto cfgs = configSpace(AdaptationSpace::ArchDvs);
    std::vector<TrainingSample> samples;
    const std::size_t stride = cfgs.size() / count;
    for (std::size_t i = 0; i < count; ++i) {
        TrainingSample s;
        s.op = syntheticOp(cfgs[i * stride]);
        s.perf_rel = s.op.config.frequency_ghz / 4.0;
        samples.push_back(std::move(s));
    }
    return samples;
}

TEST(ResponseSurface, RecoversALinearResponse)
{
    const auto cfgs = configSpace(AdaptationSpace::ArchDvs);
    auto target = [](const std::vector<double> &row) {
        return 2.0 + 0.7 * row[1] + 0.2 * row[2] - 0.1 * row[3];
    };
    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    for (std::size_t i = 0; i < 24; ++i) {
        rows.push_back(configFeatures(cfgs[i * 6]));
        targets.push_back(target(rows.back()));
    }
    // Tolerances allow for the ridge term's tiny bias.
    auto fit = ResponseSurface::fit(rows, targets);
    ASSERT_TRUE(fit.ok()) << fit.error().str();
    EXPECT_LT(fit.value().maxAbsResidual(), 1e-4);

    // An unseen configuration predicts on the same function.
    const auto probe = configFeatures(cfgs[151]);
    EXPECT_NEAR(fit.value().predict(probe), target(probe), 1e-4);
}

TEST(ResponseSurface, ThinHistoryIsInvalidInput)
{
    const auto cfgs = configSpace(AdaptationSpace::ArchDvs);
    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    for (std::size_t i = 0; i < 5; ++i) {
        rows.push_back(configFeatures(cfgs[i * 20]));
        targets.push_back(1.0);
    }
    auto fit = ResponseSurface::fit(rows, targets);
    ASSERT_FALSE(fit.ok());
    EXPECT_EQ(fit.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(fit.error().message.find("too thin"),
              std::string::npos);
}

TEST(ResponseSurface, DegenerateHistoryIsRejected)
{
    // Ridge would happily "fit" N copies of one point; the fit must
    // refuse instead (the tiered layer maps this to the
    // "degenerate-history" fallback).
    const auto row = configFeatures(sim::baseMachine());
    std::vector<std::vector<double>> rows(14, row);
    std::vector<double> targets(14, 1.0);
    auto fit = ResponseSurface::fit(rows, targets);
    ASSERT_FALSE(fit.ok());
    EXPECT_EQ(fit.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(fit.error().message.find("degenerate"),
              std::string::npos);
}

TEST(SurrogateModel, PredictsItsTrainingResponses)
{
    auto samples = syntheticSamples(20);
    auto model = SurrogateModel::fit(samples);
    ASSERT_TRUE(model.ok()) << model.error().str();

    // Tolerances allow for the ridge term's tiny bias.
    EXPECT_LT(model.value().perfResidual(), 1e-4);
    EXPECT_LT(model.value().tempResidualK(), 1e-2);
    for (const auto &s : samples) {
        EXPECT_NEAR(model.value().predictPerf(s.op.config),
                    s.perf_rel, 1e-4);
        EXPECT_NEAR(model.value().predictTempK(s.op.config),
                    s.op.maxTemp(), 1e-2);
    }

    // FIT predictions come from a lazily-fitted log surface; they
    // must be positive and track the training points' true FIT.
    const auto qual = makeQual(380.0);
    auto residual = model.value().fitLogResidual(qual);
    ASSERT_TRUE(residual.ok()) << residual.error().str();
    for (const auto &s : samples) {
        auto fit = model.value().predictFit(s.op.config, qual);
        ASSERT_TRUE(fit.ok()) << fit.error().str();
        const double truth = operatingPointFit(qual, s.op);
        EXPECT_GT(fit.value(), 0.0);
        EXPECT_NEAR(std::log(fit.value()), std::log(truth),
                    residual.value() + 1e-9);
    }
}

TEST(SurrogateModel, DegenerateSamplesAreRejected)
{
    std::vector<TrainingSample> samples(
        14, syntheticSamples(1).front());
    auto model = SurrogateModel::fit(std::move(samples));
    ASSERT_FALSE(model.ok());
    EXPECT_EQ(model.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(model.error().message.find("degenerate"),
              std::string::npos);
}

TEST(Tiered, ColdCacheThenThinHistoryFallBack)
{
    const OracleExplorer explorer(fastParams());
    const auto &app = workload::findApp("twolf");
    const auto qual = makeQual(345.0);

    // No cache, nothing memoized: the first selection has no history
    // at all and must run the exhaustive path.
    TieredExplorer tiered(explorer, /*cache=*/nullptr);
    const std::uint64_t before = fallbackCount();
    const auto first =
        tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
    EXPECT_FALSE(first.used_surrogate);
    EXPECT_EQ(first.fallback_reason, "cold-cache");
    EXPECT_EQ(first.space_points, 11u);
    EXPECT_EQ(first.exact_evals, 11u);
    EXPECT_EQ(fallbackCount(), before + 1);

    // The fallback IS the exhaustive path: same winner as a plain
    // explore + selectDrm.
    const auto explored =
        explorer.explore(app, AdaptationSpace::Dvs);
    const auto exact = selectDrm(explored, qual);
    EXPECT_EQ(first.selection.index, exact.index);
    EXPECT_EQ(first.selection.perf_rel, exact.perf_rel);
    EXPECT_EQ(first.selection.feasible, exact.feasible);

    // Second selection: 11 memoized points are below the default
    // train_min of 12, so the model still cannot fit -- but nothing
    // needs re-evaluating.
    const auto second =
        tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
    EXPECT_FALSE(second.used_surrogate);
    EXPECT_EQ(second.fallback_reason, "thin-history");
    EXPECT_EQ(second.exact_evals, 0u);
    EXPECT_EQ(second.selection.index, exact.index);
    EXPECT_EQ(fallbackCount(), before + 2);
}

TEST(Tiered, ResidualGateTripsToExhaustive)
{
    const OracleExplorer explorer(fastParams());
    const auto &app = workload::findApp("twolf");
    const auto qual = makeQual(345.0);

    TieredOptions topts;
    topts.train_min = 11;         // the DVS ladder has 11 rungs
    topts.residual_perf_max = -1.0; // any residual >= 0 trips
    TieredExplorer tiered(explorer, nullptr, topts);

    const std::uint64_t before = fallbackCount();
    const auto first =
        tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
    EXPECT_EQ(first.fallback_reason, "cold-cache");

    // Now there is enough history to fit, but the (impossible)
    // residual gate must reject the surface and fall back.
    const auto second =
        tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
    EXPECT_FALSE(second.used_surrogate);
    EXPECT_EQ(second.fallback_reason, "residual");
    EXPECT_EQ(second.exact_evals, 0u);
    EXPECT_EQ(second.selection.index, first.selection.index);
    EXPECT_EQ(fallbackCount(), before + 2);
}

TEST(Tiered, AutoWarmupSeedsTheModelThenServes)
{
    const OracleExplorer explorer(fastParams());
    const auto &app = workload::findApp("twolf");
    const auto qual = makeQual(345.0);

    TieredOptions topts;
    topts.mode = SurrogateMode::Auto;
    topts.train_min = 11;
    TieredExplorer tiered(explorer, nullptr, topts);

    const std::uint64_t before = fallbackCount();
    const auto warmup =
        tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
    EXPECT_FALSE(warmup.used_surrogate);
    EXPECT_EQ(warmup.fallback_reason, "auto-warmup");
    EXPECT_EQ(warmup.exact_evals, 11u);
    EXPECT_EQ(fallbackCount(), before + 1);

    // The warm-up pass seeded the model from its own exploration, so
    // the next selection takes the fast path at zero extra cost and
    // picks the identical winner.
    const auto served =
        tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
    EXPECT_TRUE(served.used_surrogate);
    EXPECT_TRUE(served.fallback_reason.empty());
    EXPECT_EQ(served.exact_evals, 0u);
    EXPECT_EQ(served.selection.index, warmup.selection.index);
    EXPECT_EQ(served.selection.perf_rel, warmup.selection.perf_rel);
    EXPECT_EQ(fallbackCount(), before + 1);
}

TEST(TieredBitIdentity, Fig4DvsFullSweep)
{
    // The fig4 space: the 11-rung DVS ladder. With 11 points and an
    // 11-term basis the surrogate cannot *save* simulations here --
    // this test pins the other half of the contract: tiered DRM and
    // DTM selections are bit-identical to exhaustive search across
    // the full temperature sweep.
    EvaluationCache cache(""); // in-memory
    const OracleExplorer explorer(fastParams(), &cache);
    const auto &app = workload::findApp("twolf");

    const auto explored =
        explorer.explore(app, AdaptationSpace::Dvs);
    ASSERT_EQ(explored.points.size(), 11u);

    TieredOptions topts;
    topts.train_min = 11;
    TieredExplorer tiered(explorer, &cache, topts);

    for (double tq : {325.0, 335.0, 345.0, 360.0, 370.0, 400.0}) {
        const auto qual = makeQual(tq);
        const auto exact = selectDrm(explored, qual);
        const auto got =
            tiered.selectDrm(app, AdaptationSpace::Dvs, qual);
        EXPECT_EQ(got.selection.index, exact.index) << "T_qual=" << tq;
        EXPECT_EQ(got.selection.perf_rel, exact.perf_rel);
        EXPECT_EQ(got.selection.fit, exact.fit);
        EXPECT_EQ(got.selection.max_temp_k, exact.max_temp_k);
        EXPECT_EQ(got.selection.feasible, exact.feasible);
        EXPECT_LE(got.exact_evals, 11u);
    }

    for (double td : {340.0, 355.0, 370.0, 400.0}) {
        const auto qual = makeQual(345.0);
        const auto exact = selectDtm(explored, td, qual);
        const auto got =
            tiered.selectDtm(app, AdaptationSpace::Dvs, td, qual);
        EXPECT_EQ(got.selection.index, exact.index)
            << "T_design=" << td;
        EXPECT_EQ(got.selection.perf_rel, exact.perf_rel);
        EXPECT_EQ(got.selection.fit, exact.fit);
        EXPECT_EQ(got.selection.max_temp_k, exact.max_temp_k);
        EXPECT_EQ(got.selection.feasible, exact.feasible);
        EXPECT_LE(got.exact_evals, 11u);
    }
}

TEST(TieredBitIdentity, Fig2ArchDvsSweepSavesTenX)
{
    // The fig2 space: every ArchDVS configuration, selected at the
    // paper's four qualification temperatures. The tiered winner must
    // be bit-identical to exhaustive search at every temperature
    // while issuing at least 10x fewer exact simulations than the
    // one-per-point-per-selection an exhaustive sweep costs.
    EvaluationCache cache(""); // in-memory
    const OracleExplorer explorer(fastParams(), &cache);
    const auto &app = workload::findApp("twolf");

    const auto explored =
        explorer.explore(app, AdaptationSpace::ArchDvs);
    const std::size_t n = explored.points.size();
    ASSERT_GE(n, 100u); // the full fig2 space, not a truncation

    // A fresh tiered explorer: its only head start is the cache
    // history the exhaustive sweep just wrote (as in a bench or
    // serve process re-run against a warm cache).
    TieredExplorer tiered(explorer, &cache);
    std::size_t tiered_exact = 0;
    for (double tq : {400.0, 370.0, 345.0, 325.0}) {
        const auto qual = makeQual(tq);
        const auto exact = selectDrm(explored, qual);
        const auto got =
            tiered.selectDrm(app, AdaptationSpace::ArchDvs, qual);
        EXPECT_TRUE(got.used_surrogate)
            << "fell back: " << got.fallback_reason;
        EXPECT_EQ(got.selection.index, exact.index) << "T_qual=" << tq;
        EXPECT_EQ(got.selection.perf_rel, exact.perf_rel);
        EXPECT_EQ(got.selection.fit, exact.fit);
        EXPECT_EQ(got.selection.max_temp_k, exact.max_temp_k);
        EXPECT_EQ(got.selection.feasible, exact.feasible);
        tiered_exact += got.exact_evals;
    }
    // >= 10x fewer exact simulations per selection: 4 exhaustive
    // selections cost 4 * n.
    EXPECT_LE(tiered_exact, (4 * n) / 10)
        << "tiered sweep spent " << tiered_exact << " exact sims";

    // DTM on the same space rides the same model and memo.
    const auto qual = makeQual(345.0);
    const auto exact_dtm = selectDtm(explored, 370.0, qual);
    const auto got_dtm =
        tiered.selectDtm(app, AdaptationSpace::ArchDvs, 370.0, qual);
    EXPECT_TRUE(got_dtm.used_surrogate)
        << "fell back: " << got_dtm.fallback_reason;
    EXPECT_EQ(got_dtm.selection.index, exact_dtm.index);
    EXPECT_EQ(got_dtm.selection.perf_rel, exact_dtm.perf_rel);
    EXPECT_EQ(got_dtm.selection.max_temp_k, exact_dtm.max_temp_k);
    EXPECT_EQ(got_dtm.selection.feasible, exact_dtm.feasible);
}

} // namespace
} // namespace ramp::drm::surrogate
