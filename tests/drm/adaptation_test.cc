/**
 * @file
 * Tests for the DRM adaptation spaces (paper Section 6.1): the DVS
 * ladder and V(f) relation, the 18 microarchitectural configurations,
 * and the combined space.
 */

#include <set>

#include <gtest/gtest.h>

#include "drm/adaptation.hh"

namespace ramp::drm {
namespace {

TEST(Dvs, LadderCoversPaperRange)
{
    const auto &levels = dvsLevels();
    ASSERT_EQ(levels.size(), 11u); // 2.5 to 5.0 GHz in 0.25 steps
    EXPECT_DOUBLE_EQ(levels.front().frequency_ghz, 2.5);
    EXPECT_DOUBLE_EQ(levels.back().frequency_ghz, 5.0);
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_GT(levels[i].frequency_ghz,
                  levels[i - 1].frequency_ghz);
}

TEST(Dvs, VoltageAnchoredAtBasePoint)
{
    EXPECT_DOUBLE_EQ(dvsVoltage(4.0), 1.0);
    EXPECT_DOUBLE_EQ(dvsVoltage(2.5), 0.85);
}

TEST(Dvs, VoltageMonotonicNonDecreasing)
{
    double prev = 0.0;
    for (const auto &lvl : dvsLevels()) {
        EXPECT_GE(lvl.voltage_v, prev);
        prev = lvl.voltage_v;
    }
}

TEST(Dvs, OverclockGuardBandIsShallow)
{
    // Below base: full Pentium-M slope. Above base: the small
    // binning guard band (see adaptation.cc for why).
    const double below = dvsVoltage(4.0) - dvsVoltage(3.0);
    const double above = dvsVoltage(5.0) - dvsVoltage(4.0);
    EXPECT_NEAR(below, 0.10, 1e-12);
    EXPECT_GT(above, 0.0);
    EXPECT_LT(above, below / 2.0);
}

TEST(Arch, EighteenConfigurations)
{
    const auto &configs = archConfigs();
    ASSERT_EQ(configs.size(), 18u);
    // First is the base machine; last is the minimal machine.
    EXPECT_EQ(configs.front().window_size, 128u);
    EXPECT_EQ(configs.front().num_int_alu, 6u);
    EXPECT_EQ(configs.front().num_fpu, 4u);
    EXPECT_EQ(configs.back().window_size, 16u);
    EXPECT_EQ(configs.back().num_int_alu, 2u);
    EXPECT_EQ(configs.back().num_fpu, 1u);
}

TEST(Arch, AllAtBaseVoltageAndFrequency)
{
    for (const auto &cfg : archConfigs()) {
        EXPECT_DOUBLE_EQ(cfg.frequency_ghz, 4.0);
        EXPECT_DOUBLE_EQ(cfg.voltage_v, 1.0);
    }
}

TEST(Arch, ConfigurationsAreUnique)
{
    std::set<std::string> seen;
    for (const auto &cfg : archConfigs())
        EXPECT_TRUE(seen.insert(cfg.describe()).second);
}

TEST(Arch, AllValidate)
{
    for (const auto &cfg : archConfigs())
        cfg.validate(); // must not exit
}

TEST(Arch, IssueWidthTracksUnits)
{
    for (const auto &cfg : archConfigs())
        EXPECT_EQ(cfg.issueWidth(),
                  cfg.num_int_alu + cfg.num_fpu + cfg.num_agen);
}

TEST(Space, SizesMatchPaper)
{
    EXPECT_EQ(configSpace(AdaptationSpace::Arch).size(), 18u);
    EXPECT_EQ(configSpace(AdaptationSpace::Dvs).size(), 11u);
    EXPECT_EQ(configSpace(AdaptationSpace::ArchDvs).size(), 198u);
}

TEST(Space, DvsUsesMostAggressiveMicroarchitecture)
{
    for (const auto &cfg : configSpace(AdaptationSpace::Dvs)) {
        EXPECT_EQ(cfg.window_size, 128u);
        EXPECT_EQ(cfg.num_int_alu, 6u);
        EXPECT_EQ(cfg.num_fpu, 4u);
    }
}

TEST(Space, ArchDvsIsCrossProduct)
{
    std::set<std::string> seen;
    for (const auto &cfg : configSpace(AdaptationSpace::ArchDvs))
        EXPECT_TRUE(seen.insert(cfg.describe()).second);
    EXPECT_EQ(seen.size(), 198u);
}

TEST(Space, FetchThrottleLadder)
{
    const auto space = configSpace(AdaptationSpace::FetchThrottle);
    ASSERT_EQ(space.size(), 8u);
    // First rung is the un-throttled base machine.
    EXPECT_EQ(space.front().fetch_duty_x8, 8u);
    EXPECT_EQ(space.back().fetch_duty_x8, 1u);
    for (const auto &cfg : space) {
        EXPECT_DOUBLE_EQ(cfg.frequency_ghz, 4.0);
        EXPECT_DOUBLE_EQ(cfg.voltage_v, 1.0);
        cfg.validate();
    }
}

TEST(Space, Names)
{
    EXPECT_STREQ(adaptationSpaceName(AdaptationSpace::Arch), "Arch");
    EXPECT_STREQ(adaptationSpaceName(AdaptationSpace::Dvs), "DVS");
    EXPECT_STREQ(adaptationSpaceName(AdaptationSpace::ArchDvs),
                 "ArchDVS");
    EXPECT_STREQ(adaptationSpaceName(AdaptationSpace::FetchThrottle),
                 "FetchThrottle");
}

} // namespace
} // namespace ramp::drm
