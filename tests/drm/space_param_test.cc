/**
 * @file
 * Parameterised checks over every configuration in the Arch
 * adaptation space: validation, powered-fraction bounds, and
 * monotonicity of the knobs.
 */

#include <gtest/gtest.h>

#include "drm/adaptation.hh"
#include "power/power.hh"

namespace ramp::drm {
namespace {

class ArchSpaceTest : public testing::TestWithParam<int>
{
  protected:
    const sim::MachineConfig &cfg() const
    {
        return archConfigs()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(ArchSpaceTest, Validates)
{
    cfg().validate();
}

TEST_P(ArchSpaceTest, PoweredFractionsAreProper)
{
    const auto frac = power::poweredFractions(cfg());
    for (double f : frac) {
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
    // Adaptive structures scale exactly with their knob.
    EXPECT_DOUBLE_EQ(
        frac[sim::structureIndex(sim::StructureId::IntAlu)],
        cfg().num_int_alu / 6.0);
    EXPECT_DOUBLE_EQ(frac[sim::structureIndex(sim::StructureId::Fpu)],
                     cfg().num_fpu / 4.0);
    EXPECT_DOUBLE_EQ(frac[sim::structureIndex(sim::StructureId::IWin)],
                     cfg().window_size / 128.0);
}

TEST_P(ArchSpaceTest, NeverExceedsBaseResources)
{
    const auto base = sim::baseMachine();
    EXPECT_LE(cfg().window_size, base.window_size);
    EXPECT_LE(cfg().num_int_alu, base.num_int_alu);
    EXPECT_LE(cfg().num_fpu, base.num_fpu);
    EXPECT_LE(cfg().mem_queue, base.mem_queue);
    EXPECT_LE(cfg().issueWidth(), base.issueWidth());
}

TEST_P(ArchSpaceTest, MemQueueTracksWindow)
{
    EXPECT_GE(cfg().mem_queue, 8u);
    EXPECT_LE(cfg().mem_queue * 4, std::max(cfg().window_size, 32u));
}

INSTANTIATE_TEST_SUITE_P(AllArchConfigs, ArchSpaceTest,
                         testing::Range(0, 18));

} // namespace
} // namespace ramp::drm
