/**
 * @file
 * Concurrency tests (ctest label: concurrency; run these under the
 * `tsan` preset). Two surfaces:
 *
 *  - EvaluationCache hammered by concurrent writers/readers: no lost
 *    or torn records in memory or after reloading the append-log;
 *  - OracleExplorer::explore on a thread pool: output bit-identical
 *    to the serial sweep, with and without a cache attached.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "drm/oracle.hh"
#include "util/thread_pool.hh"

namespace ramp::drm {
namespace {

std::string
tmpPath(const char *tag)
{
    return testing::TempDir() + "ramp_concurrency_test_" + tag +
           ".txt";
}

/** A record whose every field is derived from (tid, k), so a torn or
 *  cross-thread-mixed record is detectable field-by-field. */
CachedEvaluation
valueFor(unsigned tid, unsigned k)
{
    CachedEvaluation v;
    v.activity.cycles = 1000 + tid;
    v.activity.retired = 500 + k;
    for (std::size_t i = 0; i < sim::num_structures; ++i)
        v.activity.activity[i] =
            0.01 * (tid + 1) + 0.001 * static_cast<double>(i);
    v.stats.cycles = v.activity.cycles;
    v.stats.retired = v.activity.retired;
    v.stats.branches = 100 * tid + k;
    v.stats.mispredicts = tid;
    v.l1d_miss_ratio = 0.001 * (tid + 1);
    v.l2_miss_ratio = 0.002 * (k + 1);
    return v;
}

void
expectValue(const CachedEvaluation &got, unsigned tid, unsigned k)
{
    const auto want = valueFor(tid, k);
    EXPECT_EQ(got.activity.cycles, want.activity.cycles);
    EXPECT_EQ(got.activity.retired, want.activity.retired);
    for (std::size_t i = 0; i < sim::num_structures; ++i)
        EXPECT_EQ(got.activity.activity[i], want.activity.activity[i]);
    EXPECT_EQ(got.stats.branches, want.stats.branches);
    EXPECT_EQ(got.stats.mispredicts, want.stats.mispredicts);
    EXPECT_EQ(got.l1d_miss_ratio, want.l1d_miss_ratio);
    EXPECT_EQ(got.l2_miss_ratio, want.l2_miss_ratio);
}

TEST(EvalCacheConcurrency, HammerDistinctKeysNoLostRecords)
{
    const auto path = tmpPath("hammer");
    std::remove(path.c_str());
    constexpr unsigned num_threads = 8;
    constexpr unsigned keys_per_thread = 50;

    {
        EvaluationCache cache(path);
        std::vector<std::thread> threads;
        for (unsigned tid = 0; tid < num_threads; ++tid) {
            threads.emplace_back([&cache, tid] {
                for (unsigned k = 0; k < keys_per_thread; ++k) {
                    const std::string key = "t" + std::to_string(tid) +
                                            "_k" + std::to_string(k);
                    cache.put(key, valueFor(tid, k));
                    // Interleave reads of our own and others' keys.
                    (void)cache.get(key);
                    (void)cache.get("t0_k" + std::to_string(k));
                }
            });
        }
        for (auto &t : threads)
            t.join();
        EXPECT_EQ(cache.size(), num_threads * keys_per_thread);
        EXPECT_EQ(cache.stats().appended,
                  num_threads * keys_per_thread);
    }

    // Reload from the append-log: every record present, none torn.
    EvaluationCache reloaded(path);
    ASSERT_EQ(reloaded.size(), num_threads * keys_per_thread);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        for (unsigned k = 0; k < keys_per_thread; ++k) {
            const std::string key = "t" + std::to_string(tid) + "_k" +
                                    std::to_string(k);
            const auto got = reloaded.get(key);
            ASSERT_TRUE(got.has_value()) << key;
            expectValue(*got, tid, k);
        }
    }
    std::remove(path.c_str());
}

TEST(EvalCacheConcurrency, ContendedOverwritesStayWhole)
{
    const auto path = tmpPath("contended");
    std::remove(path.c_str());
    constexpr unsigned num_threads = 8;
    constexpr unsigned rounds = 30;
    constexpr unsigned shared_keys = 5;

    {
        EvaluationCache cache(path);
        std::vector<std::thread> threads;
        for (unsigned tid = 0; tid < num_threads; ++tid) {
            threads.emplace_back([&cache, tid] {
                for (unsigned r = 0; r < rounds; ++r) {
                    for (unsigned k = 0; k < shared_keys; ++k) {
                        const std::string key =
                            "shared_" + std::to_string(k);
                        // Every field derives from tid alone, so a
                        // record mixing two writers is detectable.
                        cache.put(key, valueFor(tid, 0));
                        const auto got = cache.get(key);
                        ASSERT_TRUE(got.has_value());
                    }
                }
            });
        }
        for (auto &t : threads)
            t.join();
    }

    // Reload keeps, for each key, the complete record of exactly one
    // writer (last line wins; which writer is timing-dependent).
    EvaluationCache reloaded(path);
    ASSERT_EQ(reloaded.size(), shared_keys);
    for (unsigned k = 0; k < shared_keys; ++k) {
        const auto got =
            reloaded.get("shared_" + std::to_string(k));
        ASSERT_TRUE(got.has_value());
        ASSERT_GE(got->activity.cycles, 1000u);
        const unsigned tid =
            static_cast<unsigned>(got->activity.cycles - 1000);
        ASSERT_LT(tid, num_threads);
        expectValue(*got, tid, 0);
    }
    std::remove(path.c_str());
}

/** Exact (bit-level, via ==) equality of two operating points. */
void
expectOpIdentical(const core::OperatingPoint &a,
                  const core::OperatingPoint &b)
{
    EXPECT_EQ(a.activity.cycles, b.activity.cycles);
    EXPECT_EQ(a.activity.retired, b.activity.retired);
    for (std::size_t i = 0; i < sim::num_structures; ++i) {
        EXPECT_EQ(a.activity.activity[i], b.activity.activity[i]);
        EXPECT_EQ(a.temps_k[i], b.temps_k[i]);
    }
    EXPECT_EQ(a.sink_temp_k, b.sink_temp_k);
    EXPECT_EQ(a.totalPower(), b.totalPower());
    EXPECT_EQ(a.uopsPerSecond(), b.uopsPerSecond());
    EXPECT_EQ(a.l1d_miss_ratio, b.l1d_miss_ratio);
    EXPECT_EQ(a.l1i_miss_ratio, b.l1i_miss_ratio);
    EXPECT_EQ(a.l2_miss_ratio, b.l2_miss_ratio);
}

void
expectExploredIdentical(const ExploredApp &a, const ExploredApp &b)
{
    EXPECT_EQ(a.app_name, b.app_name);
    expectOpIdentical(a.base, b.base);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].perf_rel, b.points[i].perf_rel) << i;
        expectOpIdentical(a.points[i].op, b.points[i].op);
    }
}

core::EvalParams
quickParams()
{
    core::EvalParams p;
    p.warmup_uops = 30'000;
    p.measure_uops = 40'000;
    return p;
}

TEST(ParallelExplore, BitIdenticalToSerialWithCache)
{
    const auto &app = workload::findApp("twolf");

    EvaluationCache serial_cache;
    const OracleExplorer serial(quickParams(), &serial_cache);
    const auto expect = serial.explore(app, AdaptationSpace::Dvs);

    util::ThreadPool pool(4);
    EvaluationCache parallel_cache;
    const OracleExplorer parallel(quickParams(), &parallel_cache,
                                  &pool);
    const auto got = parallel.explore(app, AdaptationSpace::Dvs);

    expectExploredIdentical(expect, got);
    // Same selections follow from identical points, but check the
    // end-to-end claim explicitly at a binding qualification.
    core::QualificationSpec spec;
    spec.t_qual_k = 360.0;
    spec.alpha_qual.fill(0.5);
    const core::Qualification qual(spec);
    const auto sel_s = selectDrm(expect, qual);
    const auto sel_p = selectDrm(got, qual);
    EXPECT_EQ(sel_s.index, sel_p.index);
    EXPECT_EQ(sel_s.perf_rel, sel_p.perf_rel);
    EXPECT_EQ(sel_s.fit, sel_p.fit);
}

TEST(ParallelExplore, BitIdenticalToSerialWithoutCache)
{
    const auto &app = workload::findApp("gzip");

    const OracleExplorer serial(quickParams());
    const auto expect = serial.explore(app, AdaptationSpace::Arch);

    util::ThreadPool pool(3);
    OracleExplorer parallel(quickParams());
    parallel.setPool(&pool);
    const auto got = parallel.explore(app, AdaptationSpace::Arch);

    expectExploredIdentical(expect, got);
}

TEST(ParallelExplore, SharedFileCacheAcrossParallelRuns)
{
    // A parallel cold run populates the file; a serial warm run on a
    // fresh instance must reproduce it bit-identically from disk.
    const auto path = tmpPath("explore_shared");
    std::remove(path.c_str());
    const auto &app = workload::findApp("ammp");

    util::ThreadPool pool(4);
    ExploredApp cold;
    {
        EvaluationCache cache(path);
        const OracleExplorer explorer(quickParams(), &cache, &pool);
        cold = explorer.explore(app, AdaptationSpace::Dvs);
        EXPECT_GT(cache.stats().appended, 0u);
    }
    {
        EvaluationCache cache(path);
        EXPECT_GT(cache.stats().loaded, 0u);
        const OracleExplorer explorer(quickParams(), &cache);
        const auto warm = explorer.explore(app, AdaptationSpace::Dvs);
        expectExploredIdentical(cold, warm);
        EXPECT_EQ(cache.stats().misses, 0u);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace ramp::drm
