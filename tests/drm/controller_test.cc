/**
 * @file
 * Tests for the closed-loop DRM/DTM controllers: stepping logic,
 * hysteresis, settling, and bounds.
 */

#include <gtest/gtest.h>

#include "drm/controller.hh"

namespace ramp::drm {
namespace {

DrmController::Params
drmParams()
{
    DrmController::Params p;
    p.target_fit = 4000.0;
    p.down_margin = 0.02;
    p.up_margin = 0.10;
    p.settle_intervals = 0; // most tests want immediate reaction
    return p;
}

TEST(DrmController, StepsDownWhenOverBudget)
{
    DrmController ctl(drmParams(), 11, 6);
    EXPECT_EQ(ctl.observe(5000.0), 5u);
    EXPECT_EQ(ctl.observe(5000.0), 4u);
}

TEST(DrmController, StepsUpWhenUnderBudget)
{
    DrmController ctl(drmParams(), 11, 6);
    EXPECT_EQ(ctl.observe(3000.0), 7u);
    EXPECT_EQ(ctl.observe(3000.0), 8u);
}

TEST(DrmController, HoldsInsideHysteresisBand)
{
    DrmController ctl(drmParams(), 11, 6);
    // Between (1-0.10)*4000 = 3600 and (1+0.02)*4000 = 4080: hold.
    EXPECT_EQ(ctl.observe(3900.0), 6u);
    EXPECT_EQ(ctl.observe(4050.0), 6u);
    EXPECT_EQ(ctl.observe(3650.0), 6u);
}

TEST(DrmController, SaturatesAtLadderEnds)
{
    DrmController ctl(drmParams(), 3, 0);
    EXPECT_EQ(ctl.observe(9000.0), 0u); // already at the bottom
    DrmController top(drmParams(), 3, 2);
    EXPECT_EQ(top.observe(100.0), 2u); // already at the top
}

TEST(DrmController, SettlingSuppressesChatter)
{
    auto p = drmParams();
    p.settle_intervals = 2;
    DrmController ctl(p, 11, 6);
    EXPECT_EQ(ctl.observe(5000.0), 5u); // reacts
    EXPECT_EQ(ctl.observe(5000.0), 5u); // cooling down
    EXPECT_EQ(ctl.observe(5000.0), 5u); // cooling down
    EXPECT_EQ(ctl.observe(5000.0), 4u); // reacts again
    EXPECT_EQ(ctl.transitions(), 2u);
}

TEST(DrmController, ConvergesOntoTarget)
{
    // A toy plant: FIT grows quadratically with the level. The
    // controller must settle at the highest level meeting 4000.
    DrmController ctl(drmParams(), 11, 0);
    double level_fit[11];
    for (int i = 0; i < 11; ++i)
        level_fit[i] = 500.0 * (i + 1) * (i + 1) / 10.0;
    std::size_t level = 0;
    for (int step = 0; step < 100; ++step)
        level = ctl.observe(level_fit[level]);
    // 500*(l+1)^2/10 <= 4080 -> l+1 <= 9.03 -> level 8.
    EXPECT_EQ(level, 8u);
    // And it stays there.
    for (int step = 0; step < 10; ++step)
        EXPECT_EQ(ctl.observe(level_fit[level]), 8u);
}

TEST(DrmControllerDeath, RejectsBadConstruction)
{
    EXPECT_EXIT(DrmController(drmParams(), 0, 0),
                testing::ExitedWithCode(1), "level");
    EXPECT_EXIT(DrmController(drmParams(), 4, 4),
                testing::ExitedWithCode(1), "range");
    auto p = drmParams();
    p.target_fit = 0.0;
    EXPECT_EXIT(DrmController(p, 4, 0), testing::ExitedWithCode(1),
                "target");
}

DtmController::Params
dtmParams()
{
    DtmController::Params p;
    p.t_design_k = 370.0;
    p.guard_k = 3.0;
    p.settle_intervals = 0;
    return p;
}

TEST(DtmController, ThrottlesAboveLimit)
{
    DtmController ctl(dtmParams(), 11, 6);
    EXPECT_EQ(ctl.observe(375.0), 5u);
    EXPECT_EQ(ctl.observe(371.0), 4u);
}

TEST(DtmController, RecoversBelowGuardBand)
{
    DtmController ctl(dtmParams(), 11, 4);
    EXPECT_EQ(ctl.observe(360.0), 5u); // < 367
    EXPECT_EQ(ctl.observe(366.9), 6u);
}

TEST(DtmController, HoldsInsideGuardBand)
{
    DtmController ctl(dtmParams(), 11, 6);
    EXPECT_EQ(ctl.observe(368.0), 6u);
    EXPECT_EQ(ctl.observe(369.5), 6u);
}

TEST(DtmController, SettlingWorks)
{
    auto p = dtmParams();
    p.settle_intervals = 1;
    DtmController ctl(p, 11, 6);
    EXPECT_EQ(ctl.observe(380.0), 5u);
    EXPECT_EQ(ctl.observe(380.0), 5u); // cooldown
    EXPECT_EQ(ctl.observe(380.0), 4u);
}

TEST(DtmControllerDeath, RejectsBadConstruction)
{
    EXPECT_EXIT(DtmController(dtmParams(), 0, 0),
                testing::ExitedWithCode(1), "level");
    auto p = dtmParams();
    p.guard_k = -1.0;
    EXPECT_EXIT(DtmController(p, 4, 0), testing::ExitedWithCode(1),
                "guard");
}

} // namespace
} // namespace ramp::drm
