/**
 * @file
 * Tests for the persistent evaluation cache: round trips, file
 * persistence across instances, key discrimination, and tolerance of
 * corrupt data.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "drm/eval_cache.hh"

namespace ramp::drm {
namespace {

/** Temp file path unique to this test binary run. */
std::string
tmpPath(const char *tag)
{
    return testing::TempDir() + "ramp_cache_test_" + tag + ".txt";
}

CachedEvaluation
sample(double ipc_scale = 1.0)
{
    CachedEvaluation v;
    v.activity.cycles = 1000;
    v.activity.retired = static_cast<std::uint64_t>(800 * ipc_scale);
    for (std::size_t i = 0; i < sim::num_structures; ++i)
        v.activity.activity[i] = 0.05 * static_cast<double>(i + 1);
    v.stats.cycles = 1000;
    v.stats.retired = v.activity.retired;
    v.stats.branches = 77;
    v.stats.mispredicts = 7;
    v.l1d_miss_ratio = 0.031;
    v.l2_miss_ratio = 0.25;
    return v;
}

TEST(EvalCache, MissOnEmpty)
{
    EvaluationCache cache;
    EXPECT_FALSE(cache.get("nope").has_value());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(EvalCache, PutGetRoundTrip)
{
    EvaluationCache cache;
    cache.put("k1", sample());
    const auto hit = cache.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->activity.retired, 800u);
    EXPECT_EQ(hit->stats.branches, 77u);
    EXPECT_DOUBLE_EQ(hit->l1d_miss_ratio, 0.031);
    EXPECT_DOUBLE_EQ(hit->activity.activity[3], 0.2);
}

TEST(EvalCache, PersistsAcrossInstances)
{
    const auto path = tmpPath("persist");
    std::remove(path.c_str());
    {
        EvaluationCache cache(path);
        cache.put("a", sample(1.0));
        cache.put("b", sample(0.5));
    }
    EvaluationCache reloaded(path);
    EXPECT_EQ(reloaded.size(), 2u);
    const auto a = reloaded.get("a");
    const auto b = reloaded.get("b");
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->activity.retired, 800u);
    EXPECT_EQ(b->activity.retired, 400u);
    EXPECT_DOUBLE_EQ(a->l2_miss_ratio, 0.25);
    std::remove(path.c_str());
}

TEST(EvalCache, OverwriteKeepsLatest)
{
    const auto path = tmpPath("overwrite");
    std::remove(path.c_str());
    {
        EvaluationCache cache(path);
        cache.put("k", sample(1.0));
        cache.put("k", sample(0.5));
        EXPECT_EQ(cache.get("k")->activity.retired, 400u);
    }
    // The file holds both records; reload must keep the latest.
    EvaluationCache reloaded(path);
    EXPECT_EQ(reloaded.get("k")->activity.retired, 400u);
    std::remove(path.c_str());
}

TEST(EvalCache, IgnoresCorruptLines)
{
    const auto path = tmpPath("corrupt");
    {
        std::ofstream out(path);
        out << "garbage line\n";
        out << "999 badversion 1 2 3\n";
        out << "2 truncated_record 12\n";
    }
    EvaluationCache cache(path);
    EXPECT_EQ(cache.size(), 0u);
    // And it still accepts new records.
    cache.put("fresh", sample());
    EXPECT_TRUE(cache.get("fresh").has_value());
    std::remove(path.c_str());
}

TEST(EvalCache, MissingFileIsColdCache)
{
    EvaluationCache cache(tmpPath("never_created_xyz"));
    EXPECT_EQ(cache.size(), 0u);
    std::remove(tmpPath("never_created_xyz").c_str());
}

TEST(EvalCacheKey, DiscriminatesTimingInputs)
{
    const auto &app = workload::findApp("bzip2");
    const auto &other = workload::findApp("gzip");
    const core::EvalParams params;
    const auto base = sim::baseMachine();

    const auto k0 = EvaluationCache::key(base, app, params);

    // Paper-mode (clock-scaled memory): frequency is timing-neutral
    // and every DVS rung shares one record.
    sim::MachineConfig cfg = base;
    cfg.frequency_ghz = 3.0;
    EXPECT_EQ(EvaluationCache::key(cfg, app, params), k0);

    // Physical-time mode: frequency changes the cycle counts.
    sim::MachineConfig ns_base = base;
    ns_base.offchip_scales_with_clock = false;
    sim::MachineConfig ns_slow = ns_base;
    ns_slow.frequency_ghz = 3.0;
    EXPECT_NE(EvaluationCache::key(ns_slow, app, params),
              EvaluationCache::key(ns_base, app, params));

    cfg = base;
    cfg.window_size = 64;
    EXPECT_NE(EvaluationCache::key(cfg, app, params), k0);

    cfg = base;
    cfg.num_int_alu = 2;
    EXPECT_NE(EvaluationCache::key(cfg, app, params), k0);

    EXPECT_NE(EvaluationCache::key(base, other, params), k0);

    core::EvalParams p2 = params;
    p2.seed = 99;
    EXPECT_NE(EvaluationCache::key(base, app, p2), k0);

    p2 = params;
    p2.measure_uops += 1;
    EXPECT_NE(EvaluationCache::key(base, app, p2), k0);
}

TEST(EvalCache, CompactsLogOnLoad)
{
    const auto path = tmpPath("compact");
    std::remove(path.c_str());
    {
        EvaluationCache cache(path);
        cache.put("k", sample(1.0));
        cache.put("k", sample(0.5)); // supersedes the first line
        cache.put("other", sample(1.0));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "garbage line\n";
        out << "1 stale_version 1 2 3\n";
    }
    // Load drops the superseded duplicate, the corrupt line, and the
    // stale version -- and rewrites the log as one line per record.
    EvaluationCache cache(path);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().loaded, 2u);
    EXPECT_EQ(cache.stats().compacted, 3u);
    EXPECT_EQ(cache.get("k")->activity.retired, 400u);

    std::size_t lines = 0;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 2u);

    // A clean reload compacts nothing further.
    EvaluationCache again(path);
    EXPECT_EQ(again.stats().compacted, 0u);
    EXPECT_EQ(again.size(), 2u);
    std::remove(path.c_str());
}

TEST(EvalCache, CountsHitsMissesAppends)
{
    const auto path = tmpPath("stats");
    std::remove(path.c_str());
    EvaluationCache cache(path);
    EXPECT_FALSE(cache.get("absent").has_value());
    cache.put("present", sample());
    EXPECT_TRUE(cache.get("present").has_value());
    EXPECT_TRUE(cache.get("present").has_value());

    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.appended, 1u);
    EXPECT_EQ(s.loaded, 0u);
    std::remove(path.c_str());
}

TEST(EvalCacheKey, FineGrainedDvsRungsDoNotCollide)
{
    // In physical-time mode the frequency is part of the key; rungs
    // differing past 4 significant digits must still get distinct
    // records (the old 4-digit serialization collided them).
    const auto &app = workload::findApp("bzip2");
    const core::EvalParams params;
    sim::MachineConfig a = sim::baseMachine();
    a.offchip_scales_with_clock = false;
    a.frequency_ghz = 4.000;
    sim::MachineConfig b = a;
    b.frequency_ghz = 4.0001;
    EXPECT_NE(EvaluationCache::key(a, app, params),
              EvaluationCache::key(b, app, params));

    // Full round-trip precision: any representable difference keys.
    sim::MachineConfig c = a;
    c.frequency_ghz = std::nextafter(4.0, 5.0);
    EXPECT_NE(EvaluationCache::key(a, app, params),
              EvaluationCache::key(c, app, params));
}

TEST(EvalCacheKey, VoltageDoesNotAffectTiming)
{
    // Voltage changes power and reliability but never timing, so two
    // configs differing only in V share one timing record.
    const auto &app = workload::findApp("bzip2");
    const core::EvalParams params;
    sim::MachineConfig a = sim::baseMachine();
    sim::MachineConfig b = sim::baseMachine();
    b.voltage_v = 1.05;
    EXPECT_EQ(EvaluationCache::key(a, app, params),
              EvaluationCache::key(b, app, params));
}

} // namespace
} // namespace ramp::drm
