/**
 * @file
 * Tests for the closed-loop transient runner: budget convergence for
 * DRM, temperature capping for DTM, and the pinned baseline.
 */

#include <gtest/gtest.h>

#include "drm/transient.hh"

namespace ramp::drm {
namespace {

core::Qualification
makeQual(double t_qual)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.5);
    return core::Qualification(s);
}

TransientParams
fastParams()
{
    TransientParams p;
    p.interval_uops = 20'000;
    p.warmup_uops = 60'000;
    p.num_intervals = 60;
    p.represented_time_s = 0.5; // let the thermal state move
    return p;
}

TEST(Transient, PinnedRunStaysAtBaseLevel)
{
    const TransientRunner runner(fastParams());
    const auto res = runner.run(workload::findApp("gzip"),
                                makeQual(380.0), Policy::None);
    ASSERT_EQ(res.trace.size(), 60u);
    for (const auto &s : res.trace) {
        EXPECT_DOUBLE_EQ(s.frequency_ghz, 4.0);
        EXPECT_DOUBLE_EQ(s.voltage_v, 1.0);
    }
    EXPECT_EQ(res.level_transitions, 0u);
    EXPECT_GT(res.avg_uops_per_second, 1e8);
}

TEST(Transient, TraceValuesAreSane)
{
    const TransientRunner runner(fastParams());
    const auto res = runner.run(workload::findApp("gzip"),
                                makeQual(380.0), Policy::None);
    for (const auto &s : res.trace) {
        EXPECT_GT(s.ipc, 0.0);
        EXPECT_GT(s.max_temp_k, 320.0);
        EXPECT_LT(s.max_temp_k, 440.0);
        EXPECT_GT(s.total_power_w, 5.0);
        EXPECT_LT(s.total_power_w, 60.0);
        EXPECT_GT(s.avg_fit, 0.0);
    }
}

TEST(Transient, DrmThrottlesUnderDesignedPart)
{
    // Qualified far below the app's natural operating point: the
    // pinned run blows the budget; the DRM controller must bring the
    // lifetime-average FIT down toward the target.
    const TransientRunner runner(fastParams());
    const auto &app = workload::findApp("MP3dec");
    const auto qual = makeQual(355.0);

    const auto pinned = runner.run(app, qual, Policy::None);
    const auto drm = runner.run(app, qual, Policy::Drm);

    EXPECT_GT(pinned.final_avg_fit, 4000.0);
    EXPECT_LT(drm.final_avg_fit, pinned.final_avg_fit);
    EXPECT_GT(drm.level_transitions, 0u);
    // Throttling costs performance.
    EXPECT_LT(drm.avg_uops_per_second,
              pinned.avg_uops_per_second + 1.0);
}

TEST(Transient, DrmExploitsOverDesignedPart)
{
    const TransientRunner runner(fastParams());
    const auto &app = workload::findApp("twolf"); // cool app
    const auto qual = makeQual(400.0);

    const auto drm = runner.run(app, qual, Policy::Drm);
    // Plenty of budget: the controller climbs above the base rung.
    bool climbed = false;
    for (const auto &s : drm.trace)
        climbed |= s.frequency_ghz > 4.0;
    EXPECT_TRUE(climbed);
    EXPECT_LT(drm.final_avg_fit, 4000.0 * 1.1);
}

TEST(Transient, DtmCapsTemperature)
{
    TransientParams p = fastParams();
    p.dtm.t_design_k = 365.0;
    const TransientRunner runner(p);
    const auto &app = workload::findApp("MPGdec"); // hot app
    const auto qual = makeQual(380.0);

    const auto pinned = runner.run(app, qual, Policy::None);
    const auto dtm = runner.run(app, qual, Policy::Dtm);

    EXPECT_GT(pinned.max_temp_seen_k, 365.0);
    // DTM reacts: far fewer over-limit intervals than pinned (the
    // first intervals may still overshoot while it steps down).
    EXPECT_LT(dtm.thermalViolations(365.0),
              pinned.thermalViolations(365.0));
    EXPECT_GT(dtm.level_transitions, 0u);
}

TEST(Transient, DeterministicAcrossRuns)
{
    const TransientRunner runner(fastParams());
    const auto &app = workload::findApp("ammp");
    const auto qual = makeQual(370.0);
    const auto a = runner.run(app, qual, Policy::Drm);
    const auto b = runner.run(app, qual, Policy::Drm);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    EXPECT_DOUBLE_EQ(a.final_avg_fit, b.final_avg_fit);
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        EXPECT_EQ(a.trace[i].level, b.trace[i].level);
}

TEST(TransientDeath, RejectsBadParams)
{
    TransientParams p = fastParams();
    p.num_intervals = 0;
    EXPECT_EXIT(TransientRunner{p}, testing::ExitedWithCode(1),
                "intervals");
    p = fastParams();
    p.represented_time_s = 0.0;
    EXPECT_EXIT(TransientRunner{p}, testing::ExitedWithCode(1),
                "represented_time");
}

} // namespace
} // namespace ramp::drm
