/**
 * @file
 * Tests for intra-application (per-phase) DRM: the per-phase oracle
 * must dominate the per-application oracle, respect the budget, and
 * degenerate gracefully for single-phase applications.
 */

#include <gtest/gtest.h>

#include "drm/intra_app.hh"

namespace ramp::drm {
namespace {

core::Qualification
makeQual(double t_qual)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.6);
    return core::Qualification(s);
}

core::EvalParams
fastParams()
{
    core::EvalParams p;
    p.warmup_uops = 150'000;
    p.measure_uops = 250'000;
    return p;
}

TEST(IntraApp, DominatesPerAppOracleOnPhasedApp)
{
    const IntraAppExplorer explorer(fastParams());
    const auto &app = workload::findApp("MPGdec"); // two phases
    const auto qual = makeQual(358.0);             // binding

    const auto res = explorer.explore(app, qual);
    ASSERT_EQ(res.rung_per_phase.size(), 2u);
    ASSERT_TRUE(res.feasible);
    EXPECT_LE(res.fit, qual.spec().target_fit * (1.0 + 1e-9));
    // The per-phase assignment can always replicate the best uniform
    // assignment, so it never loses.
    EXPECT_GE(res.gainOverPerApp(), 1.0 - 1e-9);
}

TEST(IntraApp, ExploitsPhaseVariability)
{
    // At a binding qualification the two phases have different
    // temperatures, so the optimum usually splits rungs. At minimum
    // the result must match per-app; flag the gain for visibility.
    const IntraAppExplorer explorer(fastParams());
    const auto &app = workload::findApp("MPGdec");
    const auto qual = makeQual(352.0);
    const auto res = explorer.explore(app, qual);
    if (res.feasible && res.rung_per_phase[0] != res.rung_per_phase[1]) {
        EXPECT_GE(res.gainOverPerApp(), 1.0 - 1e-9);
    }
}

TEST(IntraApp, SinglePhaseDegeneratesToPerApp)
{
    const IntraAppExplorer explorer(fastParams());
    const auto &app = workload::findApp("gzip"); // one phase
    const auto qual = makeQual(360.0);
    const auto res = explorer.explore(app, qual);
    ASSERT_EQ(res.rung_per_phase.size(), 1u);
    EXPECT_TRUE(res.feasible);
    // One phase: every assignment is uniform, so the two oracles are
    // the same optimisation and must agree exactly.
    EXPECT_DOUBLE_EQ(res.perf_rel, res.per_app.perf_rel);
}

TEST(IntraApp, InfeasibleFallsBackToCoolest)
{
    const IntraAppExplorer explorer(fastParams());
    const auto &app = workload::findApp("MP3dec");
    const auto qual = makeQual(322.0); // hopeless
    const auto res = explorer.explore(app, qual);
    EXPECT_FALSE(res.feasible);
    EXPECT_GT(res.fit, qual.spec().target_fit);
    // Fallback throttles hard.
    EXPECT_LT(res.perf_rel, 0.8);
}

TEST(IntraApp, DeterministicAcrossCalls)
{
    const IntraAppExplorer explorer(fastParams());
    const auto &app = workload::findApp("H263enc");
    const auto qual = makeQual(355.0);
    const auto a = explorer.explore(app, qual);
    const auto b = explorer.explore(app, qual);
    EXPECT_EQ(a.rung_per_phase, b.rung_per_phase);
    EXPECT_DOUBLE_EQ(a.perf_rel, b.perf_rel);
}

} // namespace
} // namespace ramp::drm
