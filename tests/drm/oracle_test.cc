/**
 * @file
 * Tests for the oracle DRM/DTM selection logic using synthetic
 * operating points with controlled temperatures, plus one small real
 * exploration end-to-end.
 */

#include <gtest/gtest.h>

#include "drm/oracle.hh"
#include "power/power.hh"

namespace ramp::drm {
namespace {

core::Qualification
makeQual(double t_qual = 380.0)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.5);
    return core::Qualification(s);
}

/** Synthetic operating point at uniform temperature/activity. */
core::OperatingPoint
syntheticOp(double temp_k, double freq_ghz, double voltage_v = 1.0)
{
    core::OperatingPoint op;
    op.config = sim::baseMachine();
    op.config.frequency_ghz = freq_ghz;
    op.config.voltage_v = voltage_v;
    op.temps_k.fill(temp_k);
    op.activity.activity.fill(0.5);
    op.activity.cycles = 1000;
    op.activity.retired = 1000;
    return op;
}

ExploredApp
syntheticApp()
{
    // Three points: cool/slow, warm/medium, hot/fast.
    ExploredApp app;
    app.app_name = "synthetic";
    app.base = syntheticOp(370.0, 4.0);
    for (auto [t, f, perf] :
         {std::tuple{345.0, 3.0, 0.8}, std::tuple{370.0, 4.0, 1.0},
          std::tuple{395.0, 4.75, 1.15}}) {
        ExploredPoint pt;
        pt.op = syntheticOp(t, f);
        pt.perf_rel = perf;
        app.points.push_back(pt);
    }
    return app;
}

TEST(OperatingPointFit, AtQualPointEqualsTarget)
{
    const auto qual = makeQual(380.0);
    const auto op = syntheticOp(380.0, 4.0);
    EXPECT_NEAR(operatingPointFit(qual, op), 4000.0, 1e-6);
}

TEST(OperatingPointFit, HotterIsWorse)
{
    const auto qual = makeQual();
    EXPECT_GT(operatingPointFit(qual, syntheticOp(395.0, 4.0)),
              operatingPointFit(qual, syntheticOp(350.0, 4.0)));
}

TEST(OperatingPointFit, LowerVoltageCollapsesTddb)
{
    // Section 7.2: small voltage drops reduce the TDDB FIT value
    // drastically. The *total* drops by roughly the TDDB share (the
    // mechanical mechanisms are voltage-blind).
    const auto qual = makeQual();
    const auto op_full = syntheticOp(370.0, 4.0, 1.0);
    const auto op_drop = syntheticOp(370.0, 4.0, 0.9);

    auto report = [&](const core::OperatingPoint &op) {
        return core::steadyFit(qual, power::poweredFractions(op.config),
                               op.temps_k, op.activity.activity,
                               op.config.voltage_v,
                               op.config.frequency_ghz);
    };
    const auto full = report(op_full);
    const auto dropped = report(op_drop);
    // TDDB itself collapses by orders of magnitude...
    EXPECT_LT(dropped.mechanismFit(core::Mechanism::TDDB),
              0.01 * full.mechanismFit(core::Mechanism::TDDB));
    // ...SM and TC are untouched...
    EXPECT_NEAR(dropped.mechanismFit(core::Mechanism::SM),
                full.mechanismFit(core::Mechanism::SM), 1e-9);
    EXPECT_NEAR(dropped.mechanismFit(core::Mechanism::TC),
                full.mechanismFit(core::Mechanism::TC), 1e-9);
    // ...and the total falls by most of the TDDB share.
    EXPECT_LT(dropped.totalFit(), operatingPointFit(qual, op_full));
}

TEST(AlphaQual, TakesSuiteWideMaximum)
{
    // Section 3.7: a single worst-case activity factor for the whole
    // suite, applied uniformly.
    core::OperatingPoint a = syntheticOp(370.0, 4.0);
    core::OperatingPoint b = syntheticOp(370.0, 4.0);
    a.activity.activity[0] = 0.9;
    b.activity.activity[1] = 0.7;
    const auto alpha = alphaQualFromBaseline({a, b});
    for (double v : alpha)
        EXPECT_DOUBLE_EQ(v, 0.9);
}

TEST(AlphaQualDeath, EmptyBaselineIsFatal)
{
    EXPECT_EXIT(alphaQualFromBaseline({}), testing::ExitedWithCode(1),
                "at least one");
}

TEST(SelectDrm, PicksFastestFeasiblePoint)
{
    const auto app = syntheticApp();
    // Qualified at 400 K: even the hot point is under budget.
    const auto sel = selectDrm(app, makeQual(400.0));
    EXPECT_TRUE(sel.feasible);
    EXPECT_EQ(sel.index, 2u);
    EXPECT_DOUBLE_EQ(sel.perf_rel, 1.15);
    EXPECT_LE(sel.fit, 4000.0);
}

TEST(SelectDrm, ThrottlesWhenUnderDesigned)
{
    const auto app = syntheticApp();
    // Qualified at 371 K: the 395 K point blows the budget, the
    // 370 K point just fits.
    const auto sel = selectDrm(app, makeQual(371.0));
    EXPECT_TRUE(sel.feasible);
    EXPECT_EQ(sel.index, 1u);
}

TEST(SelectDrm, FallsBackToCoolestWhenNothingFits)
{
    const auto app = syntheticApp();
    // Qualified at 330 K: every point is over budget.
    const auto sel = selectDrm(app, makeQual(330.0));
    EXPECT_FALSE(sel.feasible);
    EXPECT_EQ(sel.index, 0u); // lowest-FIT point
}

TEST(SelectDtm, RespectsThermalDesignPoint)
{
    const auto app = syntheticApp();
    const auto sel = selectDtm(app, 380.0, makeQual());
    EXPECT_TRUE(sel.feasible);
    EXPECT_EQ(sel.index, 1u); // 395 K point excluded
    EXPECT_LE(sel.max_temp_k, 380.0);
}

TEST(SelectDtm, AcceptsEverythingWithHighLimit)
{
    const auto app = syntheticApp();
    const auto sel = selectDtm(app, 400.0, makeQual());
    EXPECT_TRUE(sel.feasible);
    EXPECT_EQ(sel.index, 2u);
}

TEST(SelectDrm, ReportsTheWinnersFit)
{
    // The selection's fit is the chosen point's FIT, both when a
    // feasible point exists and on the coolest-point fallback.
    const auto app = syntheticApp();
    for (double tq : {400.0, 371.0, 330.0}) {
        const auto qual = makeQual(tq);
        const auto sel = selectDrm(app, qual);
        EXPECT_DOUBLE_EQ(
            sel.fit, operatingPointFit(qual, app.points[sel.index].op))
            << "T_qual=" << tq;
    }
}

TEST(SelectDtm, ReportsRealFitNeverSentinel)
{
    // The DTM policy is reliability-oblivious -- the qualification
    // never changes the choice -- but every selection reports the
    // chosen point's true FIT, not a 0.0 sentinel.
    const auto app = syntheticApp();
    const auto qual = makeQual(380.0);

    const auto sel = selectDtm(app, 380.0, qual);
    EXPECT_GT(sel.fit, 0.0);
    EXPECT_DOUBLE_EQ(
        sel.fit, operatingPointFit(qual, app.points[sel.index].op));

    // A different qualification changes the reported FIT, never the
    // selection itself.
    const auto other = selectDtm(app, 380.0, makeQual(360.0));
    EXPECT_EQ(other.index, sel.index);
    EXPECT_EQ(other.feasible, sel.feasible);
    EXPECT_DOUBLE_EQ(other.perf_rel, sel.perf_rel);
    EXPECT_NE(other.fit, sel.fit);
    EXPECT_GT(other.fit, 0.0);
}

TEST(SelectDtm, ReportsFitOnFallbackSelection)
{
    const auto app = syntheticApp();
    const auto qual = makeQual(380.0);
    const auto sel = selectDtm(app, 320.0, qual); // nothing feasible
    EXPECT_FALSE(sel.feasible);
    EXPECT_DOUBLE_EQ(
        sel.fit, operatingPointFit(qual, app.points[sel.index].op));
}

TEST(SelectDtm, FallsBackToCoolest)
{
    const auto app = syntheticApp();
    const auto sel = selectDtm(app, 320.0, makeQual());
    EXPECT_FALSE(sel.feasible);
    EXPECT_EQ(sel.index, 0u);
}

TEST(Selection, CarriesWinnerConfigAndPerPointTable)
{
    const auto app = syntheticApp();
    const auto qual = makeQual(371.0);

    const auto drm_sel = selectDrm(app, qual);
    ASSERT_EQ(drm_sel.table.size(), app.points.size());
    EXPECT_DOUBLE_EQ(drm_sel.config.frequency_ghz,
                     app.points[drm_sel.index].op.config.frequency_ghz);
    for (std::size_t i = 0; i < app.points.size(); ++i) {
        const auto &pt = drm_sel.table[i];
        EXPECT_DOUBLE_EQ(pt.perf_rel, app.points[i].perf_rel);
        EXPECT_DOUBLE_EQ(pt.fit,
                         operatingPointFit(qual, app.points[i].op));
        EXPECT_DOUBLE_EQ(pt.max_temp_k, app.points[i].op.maxTemp());
        EXPECT_EQ(pt.feasible, pt.fit <= qual.spec().target_fit);
    }
    // The winner's scalar fields mirror its table row.
    EXPECT_DOUBLE_EQ(drm_sel.fit, drm_sel.table[drm_sel.index].fit);
    EXPECT_DOUBLE_EQ(drm_sel.perf_rel,
                     drm_sel.table[drm_sel.index].perf_rel);

    const auto dtm_sel = selectDtm(app, 380.0, qual);
    ASSERT_EQ(dtm_sel.table.size(), app.points.size());
    for (std::size_t i = 0; i < app.points.size(); ++i)
        EXPECT_EQ(dtm_sel.table[i].feasible,
                  dtm_sel.table[i].max_temp_k <= 380.0);
}

TEST(SelectDeath, EmptyExplorationIsFatal)
{
    ExploredApp empty;
    EXPECT_EXIT(selectDrm(empty, makeQual()),
                testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(selectDtm(empty, 370.0, makeQual()),
                testing::ExitedWithCode(1), "empty");
}

TEST(Explorer, SmallRealExplorationEndToEnd)
{
    core::EvalParams params;
    params.warmup_uops = 40'000;
    params.measure_uops = 60'000;
    const OracleExplorer explorer(params);
    const auto explored = explorer.explore(
        workload::findApp("twolf"), AdaptationSpace::Dvs);

    ASSERT_EQ(explored.points.size(), 11u);
    // Base machine sits in the ladder: its perf_rel must be ~1.
    bool saw_base = false;
    for (const auto &pt : explored.points) {
        EXPECT_GT(pt.perf_rel, 0.0);
        if (pt.op.config.frequency_ghz == 4.0) {
            EXPECT_NEAR(pt.perf_rel, 1.0, 1e-9);
            saw_base = true;
        }
    }
    EXPECT_TRUE(saw_base);

    // Higher frequency never loses absolute performance.
    for (std::size_t i = 1; i < explored.points.size(); ++i)
        EXPECT_GE(explored.points[i].op.uopsPerSecond(),
                  explored.points[i - 1].op.uopsPerSecond() * 0.98);

    // DRM at a generous T_qual picks at least base performance.
    const auto sel = selectDrm(explored, makeQual(400.0));
    EXPECT_GE(sel.perf_rel, 1.0 - 1e-9);
}

} // namespace
} // namespace ramp::drm
