/**
 * @file
 * Robustness tests for the control path: ladder clamping at both
 * ends, the transient loop's fail-safe behaviour under injected
 * sensor faults, forced non-convergence through the evaluator and
 * oracle (serial vs parallel determinism), cache-record corruption
 * and quarantine, and the thread pool's drop-and-report policy.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "drm/controller.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "drm/transient.hh"
#include "fault/fault.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp::drm {
namespace {

using util::ErrorCode;
using util::RampError;
using util::RampException;

/** Clears the process-global fault plan around each test. */
class RobustnessTest : public testing::Test
{
  protected:
    void SetUp() override { fault::clearFaultPlan(); }
    void TearDown() override { fault::clearFaultPlan(); }
};

core::Qualification
makeQual(double t_qual = 380.0)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual.fill(0.5);
    return core::Qualification(s);
}

TransientParams
fastParams(std::uint32_t intervals = 20)
{
    TransientParams p;
    p.interval_uops = 20'000;
    p.warmup_uops = 60'000;
    p.num_intervals = intervals;
    p.represented_time_s = 0.5;
    return p;
}

core::EvalParams
fastEvalParams()
{
    core::EvalParams p;
    p.warmup_uops = 30'000;
    p.measure_uops = 40'000;
    return p;
}

TEST(ControllerClamp, DrmSaturatesAtBothLadderEnds)
{
    DrmController::Params params;
    params.target_fit = 4000.0;
    // A persistently blown budget walks the ladder to the bottom rung
    // and stays there; banked slack walks it to the top and stays.
    DrmController down(params, 11, 6);
    for (int i = 0; i < 60; ++i) {
        const std::size_t level = down.observe(1e6);
        EXPECT_LT(level, 11u);
    }
    EXPECT_EQ(down.level(), 0u);
    EXPECT_EQ(down.observe(1e6), 0u); // clamped, no wraparound

    DrmController up(params, 11, 6);
    for (int i = 0; i < 60; ++i)
        up.observe(100.0);
    EXPECT_EQ(up.level(), 10u);
    EXPECT_EQ(up.observe(100.0), 10u);
}

TEST(ControllerClamp, DtmSaturatesAtBothLadderEnds)
{
    DtmController::Params params;
    params.t_design_k = 370.0;
    DtmController down(params, 11, 6);
    for (int i = 0; i < 60; ++i)
        down.observe(1000.0);
    EXPECT_EQ(down.level(), 0u);
    EXPECT_EQ(down.observe(1000.0), 0u);

    DtmController up(params, 11, 6);
    for (int i = 0; i < 60; ++i)
        up.observe(200.0);
    EXPECT_EQ(up.level(), 10u);
    EXPECT_EQ(up.observe(200.0), 10u);
}

TEST_F(RobustnessTest, TransientCleanRunChannelsAreTransparent)
{
    const TransientRunner runner(fastParams());
    const auto result = runner.run(workload::findApp("twolf"),
                                   makeQual(), Policy::Dtm);
    for (const auto &s : result.trace) {
        EXPECT_EQ(s.sensed_temp_k, s.max_temp_k);
        EXPECT_EQ(s.sensed_fit, s.avg_fit);
        EXPECT_FALSE(s.failsafe);
    }
    const auto &d = result.degradation;
    EXPECT_EQ(d.injected_faults, 0u);
    EXPECT_EQ(d.invalid_readings, 0u);
    EXPECT_EQ(d.fallbacks, 0u);
    EXPECT_EQ(d.despiked, 0u);
    EXPECT_EQ(d.failsafe_engages, 0u);
    EXPECT_EQ(d.failsafe_intervals, 0u);
    EXPECT_EQ(d.power_holds, 0u);
}

TEST_F(RobustnessTest, TransientFailsafeForcesSafestLevel)
{
    fault::FaultPlan plan;
    plan.spec(fault::FaultKind::SensorDropout).rate = 1.0;
    fault::installFaultPlan(plan);

    const auto params = fastParams();
    const std::uint32_t k = params.temp_channel.failsafe_after;
    const TransientRunner runner(params);
    const auto result = runner.run(workload::findApp("twolf"),
                                   makeQual(), Policy::Dtm);

    // Every reading on both streams dropped: all invalid, the latch
    // engages after K consecutive failures and never releases.
    const auto &d = result.degradation;
    EXPECT_EQ(d.injected_faults, 2u * params.num_intervals);
    EXPECT_EQ(d.invalid_readings, 2u * params.num_intervals);
    EXPECT_EQ(d.failsafe_engages, 2u); // temp and fit channel
    EXPECT_EQ(d.failsafe_intervals, params.num_intervals - k + 1);

    for (std::uint32_t i = 0; i < params.num_intervals; ++i) {
        EXPECT_EQ(result.trace[i].failsafe, i + 1 >= k)
            << "interval " << i;
        // The forced move takes effect the following interval.
        if (i >= k) {
            EXPECT_EQ(result.trace[i].level, 0u) << "interval " << i;
        }
    }
}

TEST_F(RobustnessTest, TransientPowerNanIsHeldNotPropagated)
{
    fault::FaultPlan plan;
    plan.seed = 3;
    plan.spec(fault::FaultKind::PowerNan).rate = 0.5;
    fault::installFaultPlan(plan);

    const TransientRunner runner(fastParams(30));
    const auto result = runner.run(workload::findApp("twolf"),
                                   makeQual(), Policy::None);
    const auto &d = result.degradation;
    EXPECT_GT(d.injected_faults, 0u);
    // Every injected NaN is caught by the hold (one structure per
    // injection), and the thermal state never sees it.
    EXPECT_EQ(d.power_holds, d.injected_faults);
    for (const auto &s : result.trace) {
        EXPECT_TRUE(std::isfinite(s.max_temp_k));
        EXPECT_TRUE(std::isfinite(s.total_power_w));
        EXPECT_TRUE(std::isfinite(s.avg_fit));
    }
}

TEST_F(RobustnessTest, TransientFaultedRunIsDeterministic)
{
    fault::FaultPlan plan;
    plan.seed = 9;
    plan.spec(fault::FaultKind::SensorNoise).rate = 0.1;
    plan.spec(fault::FaultKind::SensorDropout).rate = 0.05;
    plan.spec(fault::FaultKind::PowerNan).rate = 0.05;
    fault::installFaultPlan(plan);

    const TransientRunner runner(fastParams(30));
    const auto &app = workload::findApp("gzip");
    const auto a = runner.run(app, makeQual(), Policy::Dtm);
    const auto b = runner.run(app, makeQual(), Policy::Dtm);

    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].level, b.trace[i].level);
        EXPECT_EQ(a.trace[i].max_temp_k, b.trace[i].max_temp_k);
        EXPECT_EQ(a.trace[i].sensed_temp_k, b.trace[i].sensed_temp_k);
        EXPECT_EQ(a.trace[i].sensed_fit, b.trace[i].sensed_fit);
        EXPECT_EQ(a.trace[i].failsafe, b.trace[i].failsafe);
    }
    EXPECT_EQ(a.degradation.injected_faults,
              b.degradation.injected_faults);
    EXPECT_EQ(a.degradation.invalid_readings,
              b.degradation.invalid_readings);
    EXPECT_EQ(a.degradation.power_holds, b.degradation.power_holds);
}

TEST_F(RobustnessTest, EvaluatorReportsForcedNonConvergence)
{
    const core::Evaluator evaluator(fastEvalParams());
    const auto &app = workload::findApp("twolf");
    const auto cfg = sim::baseMachine();

    fault::FaultPlan plan;
    plan.spec(fault::FaultKind::NonConvergence).rate = 1.0;
    fault::installFaultPlan(plan);
    const auto forced = evaluator.tryEvaluate(cfg, app);
    ASSERT_TRUE(forced.ok());
    EXPECT_FALSE(forced.value().converged);

    fault::clearFaultPlan();
    const auto clean = evaluator.tryEvaluate(cfg, app);
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean.value().converged);
}

TEST_F(RobustnessTest, OracleSerialAndParallelAgreeUnderFaults)
{
    // Non-convergence decisions are pure functions of the point's
    // identity, so the marked set must be identical at any thread
    // count -- and a DRM selection never picks an unconverged point.
    fault::FaultPlan plan;
    plan.seed = 11;
    plan.spec(fault::FaultKind::NonConvergence).rate = 0.4;
    fault::installFaultPlan(plan);

    const auto &app = workload::findApp("twolf");
    const OracleExplorer serial(fastEvalParams());
    const auto serial_app = serial.explore(app, AdaptationSpace::Dvs);

    util::ThreadPool pool(4);
    const OracleExplorer parallel(fastEvalParams(), nullptr, &pool);
    const auto parallel_app =
        parallel.explore(app, AdaptationSpace::Dvs);

    ASSERT_EQ(serial_app.points.size(), parallel_app.points.size());
    std::size_t unconverged = 0;
    for (std::size_t i = 0; i < serial_app.points.size(); ++i) {
        const auto &s = serial_app.points[i];
        const auto &p = parallel_app.points[i];
        EXPECT_EQ(s.valid, p.valid) << "point " << i;
        EXPECT_EQ(s.op.converged, p.op.converged) << "point " << i;
        EXPECT_EQ(s.perf_rel, p.perf_rel) << "point " << i;
        unconverged += !s.op.converged;
    }
    EXPECT_GT(unconverged, 0u);
    EXPECT_LT(unconverged, serial_app.points.size());

    const auto sel = selectDrm(serial_app, makeQual(400.0));
    EXPECT_TRUE(sel.table[sel.index].converged);
}

/** Temp cache path; removes the log and its sidecars. */
std::string
cachePath(const char *tag)
{
    return testing::TempDir() + "ramp_robustness_" + tag + ".txt";
}

void
removeCacheFiles(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    std::remove((path + ".quarantine").c_str());
}

CachedEvaluation
record(std::uint64_t retired)
{
    CachedEvaluation v;
    v.activity.cycles = 1000;
    v.activity.retired = retired;
    v.activity.activity.fill(0.25);
    v.stats.cycles = 1000;
    v.stats.retired = retired;
    return v;
}

TEST_F(RobustnessTest, CacheQuarantinesCorruptLines)
{
    const auto path = cachePath("quarantine");
    removeCacheFiles(path);
    {
        EvaluationCache cache(path);
        cache.put("good_a", record(800));
        cache.put("good_b", record(400));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "!!corrupt!! interleaved garbage\n";
        out << "999 stale_version 1 2 3\n";
    }
    EvaluationCache cache(path);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().quarantined, 2u);
    EXPECT_TRUE(cache.get("good_a").has_value());

    // The dropped lines are preserved verbatim in the sidecar, and
    // the compacted log reloads clean.
    std::ifstream side(path + ".quarantine");
    ASSERT_TRUE(side.good());
    std::string text((std::istreambuf_iterator<char>(side)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("!!corrupt!! interleaved garbage"),
              std::string::npos);
    EXPECT_NE(text.find("999 stale_version"), std::string::npos);

    EvaluationCache again(path);
    EXPECT_EQ(again.stats().quarantined, 0u);
    EXPECT_EQ(again.size(), 2u);
    removeCacheFiles(path);
}

TEST_F(RobustnessTest, CacheCorruptionInjectionIsSurvivable)
{
    const auto path = cachePath("inject");
    removeCacheFiles(path);
    const auto counterBefore = telemetry::Registry::instance()
                                   .snapshot()
                                   .counter("fault.cache_corrupt");
    fault::FaultPlan plan;
    plan.seed = 3;
    plan.spec(fault::FaultKind::CacheCorrupt).rate = 1.0;
    fault::installFaultPlan(plan);
    {
        EvaluationCache cache(path);
        for (int i = 0; i < 6; ++i)
            cache.put(util::cat("rec_", i),
                      record(100u * (i + 1)));
        // The in-memory map is unaffected; only the persisted line
        // is garbled.
        EXPECT_EQ(cache.size(), 6u);
    }
    const auto counterAfter = telemetry::Registry::instance()
                                  .snapshot()
                                  .counter("fault.cache_corrupt");
    EXPECT_EQ(counterAfter - counterBefore, 6u);

    // Reload clean: corrupted records never round-trip intact, and
    // loading them neither crashes nor fabricates data.
    fault::clearFaultPlan();
    EvaluationCache reloaded(path);
    std::size_t intact = 0;
    for (int i = 0; i < 6; ++i) {
        const auto hit = reloaded.get(util::cat("rec_", i));
        intact += hit.has_value() &&
                  hit->activity.retired == 100u * (i + 1);
    }
    EXPECT_LT(intact, 6u);
    removeCacheFiles(path);
}

TEST(ThreadPoolRobustness, DropsAndReportsRampExceptionItems)
{
    util::ThreadPool pool(3);
    std::vector<int> done(10, 0);
    const auto report =
        pool.parallelFor(10, [&](std::size_t i) {
            if (i % 3 == 0)
                throw RampException(
                    RampError{ErrorCode::SingularSystem, "boom"});
            done[i] = 1;
        });
    EXPECT_EQ(report.items, 10u);
    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.failures.size(), 4u);
    // Sorted by index, deterministic at any thread count.
    const std::size_t expect_failed[] = {0, 3, 6, 9};
    for (std::size_t i = 0; i < report.failures.size(); ++i) {
        EXPECT_EQ(report.failures[i].first, expect_failed[i]);
        EXPECT_EQ(report.failures[i].second.code,
                  ErrorCode::SingularSystem);
    }
    // The batch drained: every non-failing item completed.
    for (std::size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(done[i], i % 3 == 0 ? 0 : 1);
}

TEST(ThreadPoolRobustness, RethrowsNonRampExceptions)
{
    util::ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(8,
                                  [&](std::size_t i) {
                                      if (i == 5)
                                          throw std::runtime_error(
                                              "bug");
                                  }),
                 std::runtime_error);
}

} // namespace
} // namespace ramp::drm
