/**
 * @file
 * Tests for the out-of-order core: steady-state throughput limits per
 * resource class, dependence serialisation, branch/RAS redirect
 * behaviour, memory-level parallelism limits, activity factors, and
 * determinism.
 */

#include <functional>

#include <gtest/gtest.h>

#include "sim/core.hh"

namespace ramp::sim {
namespace {

/** UopSource driven by a lambda over the fetch index. */
class FnSource : public UopSource
{
  public:
    explicit FnSource(std::function<Uop(std::uint64_t)> fn)
        : fn_(std::move(fn))
    {
    }

    Uop next() override { return fn_(i_++); }

  private:
    std::function<Uop(std::uint64_t)> fn_;
    std::uint64_t i_ = 0;
};

/** Sequential 8KB code loop: always L1I-resident after warmup. */
std::uint64_t
loopPc(std::uint64_t i)
{
    return 0x1000 + (i % 2048) * 4;
}

Uop
makeUop(UopClass cls, std::uint64_t i, std::uint16_t dep = 0)
{
    Uop u;
    u.cls = cls;
    u.pc = loopPc(i);
    u.src_dist[0] = dep;
    u.writes_int = isIntClass(cls) || cls == UopClass::Load;
    u.writes_fp = isFpClass(cls);
    return u;
}

/** Run warmup + measurement, returning measured IPC. */
double
measureIpc(Core &core, std::uint64_t warm = 20000,
           std::uint64_t measure = 20000)
{
    core.run(warm);
    core.resetStats();
    core.run(measure);
    return core.stats().ipc();
}

TEST(Core, IndependentIntStreamSaturatesAlus)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    // 6 integer ALUs bound throughput below the 8-wide front end.
    EXPECT_NEAR(measureIpc(core), 6.0, 0.1);
}

TEST(Core, DependentChainSerialises)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntAlu, i, 1);
    });
    Core core(baseMachine(), src);
    EXPECT_NEAR(measureIpc(core), 1.0, 0.05);
}

TEST(Core, FpStreamSaturatesFpus)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::FpOp, i);
    });
    Core core(baseMachine(), src);
    EXPECT_NEAR(measureIpc(core), 4.0, 0.1);
}

TEST(Core, UnpipelinedFpDivThroughput)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::FpDiv, i);
    });
    Core core(baseMachine(), src);
    // 4 FPUs, each held 12 cycles per divide.
    EXPECT_NEAR(measureIpc(core), 4.0 / 12.0, 0.03);
}

TEST(Core, UnpipelinedIntDivThroughput)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntDiv, i);
    });
    Core core(baseMachine(), src);
    EXPECT_NEAR(measureIpc(core), 6.0 / 12.0, 0.05);
}

TEST(Core, PipelinedMulKeepsFullThroughput)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntMul, i);
    });
    Core core(baseMachine(), src);
    // Latency 7 but pipelined: independent stream still runs 6/cycle.
    EXPECT_NEAR(measureIpc(core), 6.0, 0.1);
}

TEST(Core, L1LoadStreamBoundByPorts)
{
    FnSource src([](std::uint64_t i) {
        Uop u = makeUop(UopClass::Load, i);
        u.addr = 0x100000 + (i % 256) * 64; // 16KB set, L1-resident
        return u;
    });
    Core core(baseMachine(), src);
    // 2 D-cache ports / 2 AGEN units bound loads at 2 per cycle.
    EXPECT_NEAR(measureIpc(core), 2.0, 0.1);
}

TEST(Core, MemoryMissStreamIsSlow)
{
    FnSource src([](std::uint64_t i) {
        Uop u = makeUop(UopClass::Load, i);
        // 16MB stride-64B walk: misses everywhere, every level.
        u.addr = (i * 64) % (16 * 1024 * 1024);
        return u;
    });
    Core core(baseMachine(), src);
    const double ipc = measureIpc(core, 30000, 30000);
    EXPECT_LT(ipc, 1.0);
    EXPECT_GT(ipc, 0.05); // MLP through 12 MSHRs keeps it above serial
    EXPECT_GT(core.memory().memAccesses(), 0u);
}

TEST(Core, PredictableBranchesBarelyCost)
{
    FnSource src([](std::uint64_t i) {
        if (i % 8 == 7) {
            Uop u = makeUop(UopClass::Branch, i);
            u.taken = true; // same pc pattern learns perfectly
            return u;
        }
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    const double ipc = measureIpc(core);
    EXPECT_GT(ipc, 5.0);
    EXPECT_LT(core.stats().mispredictRate(), 0.02);
}

TEST(Core, RandomBranchesCauseRedirectBubbles)
{
    FnSource src([](std::uint64_t i) {
        if (i % 8 == 7) {
            Uop u = makeUop(UopClass::Branch, i);
            // Aperiodic direction on one pc: ~50% mispredicts.
            u.pc = 0x1000;
            u.taken = (i / 8) % 3 == 0;
            return u;
        }
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    const double ipc = measureIpc(core);
    EXPECT_GT(core.stats().mispredictRate(), 0.2);
    EXPECT_LT(ipc, 4.0);
}

TEST(Core, MatchedCallsAndReturnsPredictViaRas)
{
    // call ... return pairs, nesting depth 4 (well within the RAS).
    FnSource src([](std::uint64_t i) {
        const std::uint64_t phase = i % 16;
        if (phase < 4) {
            Uop u = makeUop(UopClass::Call, i);
            u.addr = 0x9000 + phase; // return address
            return u;
        }
        if (phase >= 12) {
            Uop u = makeUop(UopClass::Return, i);
            u.addr = 0x9000 + (15 - phase); // LIFO match
            return u;
        }
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    measureIpc(core);
    EXPECT_GT(core.stats().ras_returns, 0u);
    EXPECT_LT(core.stats().mispredictRate(), 0.01);
}

TEST(Core, RasOverflowMispredicts)
{
    // Nesting depth 48 > 32 RAS entries: outer returns mispredict.
    FnSource src([](std::uint64_t i) {
        const std::uint64_t phase = i % 96;
        if (phase < 48) {
            Uop u = makeUop(UopClass::Call, i);
            u.addr = 0xA000 + phase;
            return u;
        }
        Uop u = makeUop(UopClass::Return, i);
        u.addr = 0xA000 + (95 - phase);
        return u;
    });
    Core core(baseMachine(), src);
    measureIpc(core);
    EXPECT_GT(core.stats().mispredictRate(), 0.05);
}

TEST(Core, StoresRetireAndFreeLsq)
{
    FnSource src([](std::uint64_t i) {
        Uop u = makeUop(UopClass::Store, i);
        u.addr = 0x200000 + (i % 128) * 64;
        u.writes_int = false;
        return u;
    });
    Core core(baseMachine(), src);
    core.run(20000);
    EXPECT_GT(core.stats().stores, 1000u);
}

TEST(Core, RunUopsRetiresRequestedCount)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    core.runUops(5000);
    EXPECT_GE(core.stats().retired, 5000u);
    EXPECT_LT(core.stats().retired, 5100u); // no huge overshoot
}

TEST(Core, DeterministicAcrossRuns)
{
    auto make = [](std::uint64_t i) {
        if (i % 13 == 0) {
            Uop u = makeUop(UopClass::Load, i);
            u.addr = (i * 8209) % (1 << 22);
            return u;
        }
        if (i % 7 == 0) {
            Uop u = makeUop(UopClass::Branch, i);
            u.taken = (i % 3) == 0;
            return u;
        }
        return makeUop(i % 5 == 0 ? UopClass::FpOp : UopClass::IntAlu, i);
    };
    FnSource src_a(make), src_b(make);
    Core a(baseMachine(), src_a), b(baseMachine(), src_b);
    a.run(30000);
    b.run(30000);
    EXPECT_EQ(a.stats().retired, b.stats().retired);
    EXPECT_EQ(a.stats().mispredicts, b.stats().mispredicts);
    EXPECT_EQ(a.stats().issued, b.stats().issued);
}

TEST(Core, ActivityFactorsAreBounded)
{
    FnSource src([](std::uint64_t i) {
        if (i % 4 == 3) {
            Uop u = makeUop(UopClass::Load, i);
            u.addr = (i * 64) % (1 << 20);
            return u;
        }
        return makeUop(i % 4 == 2 ? UopClass::FpOp : UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    core.run(10000);
    core.takeInterval();
    core.run(10000);
    const ActivitySample s = core.takeInterval();
    EXPECT_EQ(s.cycles, 10000u);
    for (double a : s.activity) {
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
    }
    EXPECT_GT(s.ipc(), 0.0);
}

TEST(Core, SaturatedAluShowsFullActivity)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    core.run(20000);
    core.takeInterval();
    core.run(20000);
    const ActivitySample s = core.takeInterval();
    EXPECT_NEAR(s.activity[structureIndex(StructureId::IntAlu)], 1.0,
                0.02);
    EXPECT_NEAR(s.activity[structureIndex(StructureId::Fpu)], 0.0, 1e-9);
}

TEST(Core, DownsizedMachineStillRuns)
{
    MachineConfig small = baseMachine();
    small.window_size = 16;
    small.num_int_alu = 2;
    small.num_fpu = 1;
    small.mem_queue = 8;
    FnSource src([](std::uint64_t i) {
        if (i % 6 == 5) {
            Uop u = makeUop(UopClass::Load, i);
            u.addr = 0x100000 + (i % 512) * 64;
            return u;
        }
        return makeUop(i % 6 == 4 ? UopClass::FpOp : UopClass::IntAlu, i);
    });
    Core core(small, src);
    const double ipc = measureIpc(core);
    EXPECT_GT(ipc, 0.5);
    // 4-of-6 ops are integer through 2 ALUs => 2 cycles per group of 6.
    EXPECT_LE(ipc, 3.0 + 0.1);
}

TEST(Core, SmallerWindowNeverBeatsBase)
{
    auto make = [](std::uint64_t i) {
        if (i % 3 == 2) {
            Uop u = makeUop(UopClass::Load, i);
            u.addr = (i * 64) % (1 << 21); // 2MB: L2-resident misses
            return u;
        }
        return makeUop(UopClass::IntAlu, i, i % 3 == 1 ? 1 : 0);
    };
    FnSource src_big(make), src_small(make);
    Core big(baseMachine(), src_big);
    MachineConfig small_cfg = baseMachine();
    small_cfg.window_size = 16;
    Core small(small_cfg, src_small);
    EXPECT_GE(measureIpc(big), measureIpc(small) - 0.01);
}

TEST(Core, FetchThrottleBoundsThroughput)
{
    // Duty x/8 with an 8-wide front end caps sustained fetch at x
    // uops per cycle; an ALU-saturating stream tracks that cap until
    // the 6-ALU limit takes over.
    for (std::uint32_t duty : {2u, 4u}) {
        MachineConfig cfg = baseMachine();
        cfg.fetch_duty_x8 = duty;
        FnSource src([](std::uint64_t i) {
            return makeUop(UopClass::IntAlu, i);
        });
        Core core(cfg, src);
        EXPECT_NEAR(measureIpc(core), static_cast<double>(duty), 0.1)
            << "duty " << duty;
    }
}

TEST(Core, FetchThrottleMonotone)
{
    double prev = 0.0;
    for (std::uint32_t duty = 1; duty <= 8; ++duty) {
        MachineConfig cfg = baseMachine();
        cfg.fetch_duty_x8 = duty;
        FnSource src([](std::uint64_t i) {
            return makeUop(UopClass::IntAlu, i);
        });
        Core core(cfg, src);
        const double ipc = measureIpc(core, 10000, 10000);
        EXPECT_GE(ipc, prev - 0.05) << "duty " << duty;
        prev = ipc;
    }
}

TEST(Core, IntervalResetsBetweenTakes)
{
    FnSource src([](std::uint64_t i) {
        return makeUop(UopClass::IntAlu, i);
    });
    Core core(baseMachine(), src);
    core.run(1000);
    const auto s1 = core.takeInterval();
    EXPECT_EQ(s1.cycles, 1000u);
    const auto s2 = core.takeInterval();
    EXPECT_EQ(s2.cycles, 0u);
    EXPECT_EQ(s2.retired, 0u);
}

} // namespace
} // namespace ramp::sim
