/**
 * @file
 * Tests for the bimodal-agree predictor and the return-address stack.
 */

#include <gtest/gtest.h>

#include "sim/bpred.hh"

namespace ramp::sim {
namespace {

TEST(BimodalAgree, LearnsAlwaysTakenBranch)
{
    BimodalAgree bp(1024);
    const std::uint64_t pc = 0x4000;
    bp.update(pc, true); // sets bias = taken
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += bp.predict(pc) == true;
        bp.update(pc, true);
    }
    EXPECT_EQ(correct, 100);
}

TEST(BimodalAgree, LearnsAlwaysNotTakenBranch)
{
    BimodalAgree bp(1024);
    const std::uint64_t pc = 0x8000;
    bp.update(pc, false);
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += bp.predict(pc) == false;
        bp.update(pc, false);
    }
    EXPECT_EQ(correct, 100);
}

TEST(BimodalAgree, BiasedBranchAccuracyTracksBias)
{
    // A branch taken 90% of the time should be predicted ~90% right
    // once the bias bit points the right way.
    BimodalAgree bp(8192);
    const std::uint64_t pc = 0x1234;
    bp.update(pc, true);
    int correct = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const bool taken = (i % 10) != 0; // 90% taken
        correct += bp.predict(pc) == taken;
        bp.update(pc, taken);
    }
    EXPECT_GT(correct, 850);
}

TEST(BimodalAgree, AgreeSchemeSurvivesAliasing)
{
    // Two branches aliased to the same counter but with opposite
    // biases: the agree scheme keeps both predictable, which is its
    // whole point.
    BimodalAgree bp(16); // tiny table to force aliasing
    const std::uint64_t pc_a = 0x100;            // index (0x100>>2)&15 = 0
    const std::uint64_t pc_b = 0x100 + 16 * 4;   // same index, diff pc
    bp.update(pc_a, true);
    bp.update(pc_b, false);
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        correct += bp.predict(pc_a) == true;
        bp.update(pc_a, true);
        correct += bp.predict(pc_b) == false;
        bp.update(pc_b, false);
    }
    EXPECT_EQ(correct, 400);
}

TEST(BimodalAgree, UnseenBranchPredictsNotTaken)
{
    BimodalAgree bp(64);
    EXPECT_FALSE(bp.predict(0xdeadbeef));
}

TEST(BimodalAgreeDeath, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(BimodalAgree(1000), testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(BimodalAgree(0), testing::ExitedWithCode(1),
                "power of two");
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x10);
    ras.push(0x20);
    ras.push(0x30);
    EXPECT_EQ(ras.depth(), 3u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0x20u);
    EXPECT_EQ(ras.pop(), 0x10u);
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowDropsOldestEntries)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.depth(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u); // 1 was lost to the wrap
}

TEST(Ras, DeepRecursionMispredictsAfterOverflow)
{
    // Push depth+2 calls, then pop: the two deepest returns predict
    // correctly, the rest see clobbered entries -- the RAS-overflow
    // mispredict mechanism the core relies on.
    const std::uint32_t depth = 4;
    ReturnAddressStack ras(depth);
    for (std::uint64_t i = 1; i <= depth + 2; ++i)
        ras.push(i * 0x10);
    EXPECT_EQ(ras.pop(), (depth + 2) * 0x10);
    EXPECT_EQ(ras.pop(), (depth + 1) * 0x10);
    // Older frames were overwritten; predictions no longer match the
    // original addresses 0x10, 0x20.
    EXPECT_NE(ras.pop(), 0x20u * (depth - 1));
}

TEST(RasDeath, ZeroEntriesIsFatal)
{
    EXPECT_EXIT(ReturnAddressStack(0), testing::ExitedWithCode(1),
                "at least one");
}

} // namespace
} // namespace ramp::sim
