/**
 * @file
 * Tests for MachineConfig: Table 1 defaults, frequency-dependent
 * latency scaling, and validation.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace ramp::sim {
namespace {

TEST(Machine, Table1Defaults)
{
    const MachineConfig m = baseMachine();
    EXPECT_DOUBLE_EQ(m.frequency_ghz, 4.0);
    EXPECT_DOUBLE_EQ(m.voltage_v, 1.0);
    EXPECT_EQ(m.fetch_width, 8u);
    EXPECT_EQ(m.retire_width, 8u);
    EXPECT_EQ(m.window_size, 128u);
    EXPECT_EQ(m.int_regs, 192u);
    EXPECT_EQ(m.fp_regs, 192u);
    EXPECT_EQ(m.mem_queue, 32u);
    EXPECT_EQ(m.num_int_alu, 6u);
    EXPECT_EQ(m.num_fpu, 4u);
    EXPECT_EQ(m.num_agen, 2u);
    EXPECT_EQ(m.lat_int_add, 1u);
    EXPECT_EQ(m.lat_int_mul, 7u);
    EXPECT_EQ(m.lat_int_div, 12u);
    EXPECT_EQ(m.lat_fp, 4u);
    EXPECT_EQ(m.lat_fp_div, 12u);
    EXPECT_EQ(m.l1d_size_kb, 64u);
    EXPECT_EQ(m.l1d_assoc, 2u);
    EXPECT_EQ(m.l1d_ports, 2u);
    EXPECT_EQ(m.l1d_mshrs, 12u);
    EXPECT_EQ(m.l1i_size_kb, 32u);
    EXPECT_EQ(m.l2_size_kb, 1024u);
    EXPECT_EQ(m.l2_assoc, 4u);
    EXPECT_EQ(m.line_bytes, 64u);
    EXPECT_EQ(m.bpred_entries, 8192u); // 2KB of 2-bit counters
    EXPECT_EQ(m.ras_entries, 32u);
}

TEST(Machine, IssueWidthIsSumOfUnits)
{
    MachineConfig m = baseMachine();
    EXPECT_EQ(m.issueWidth(), 12u); // 6 + 4 + 2
    m.num_int_alu = 2;
    m.num_fpu = 1;
    EXPECT_EQ(m.issueWidth(), 5u);
}

TEST(Machine, OffChipLatenciesMatchTable1AtBaseClock)
{
    const MachineConfig m = baseMachine();
    EXPECT_EQ(m.l2HitCycles(), 20u);       // 5 ns at 4 GHz
    EXPECT_EQ(m.memLatencyCycles(), 102u); // 25.5 ns at 4 GHz
    EXPECT_EQ(m.memOccupancyCycles(), 4u); // 64B at 16B/cycle
}

TEST(Machine, DefaultOffChipLatenciesAreClockScaled)
{
    // Paper-mode default: the Table 1 cycle counts hold at any clock
    // (the memory system scales with the core).
    MachineConfig m = baseMachine();
    m.frequency_ghz = 2.0;
    EXPECT_EQ(m.l2HitCycles(), 20u);
    EXPECT_EQ(m.memLatencyCycles(), 102u);
    m.frequency_ghz = 5.0;
    EXPECT_EQ(m.l2HitCycles(), 20u);
    EXPECT_EQ(m.memLatencyCycles(), 102u);
}

TEST(Machine, PhysicalOffChipLatenciesScaleWithFrequency)
{
    MachineConfig m = baseMachine();
    m.offchip_scales_with_clock = false;
    m.frequency_ghz = 2.0;
    EXPECT_EQ(m.l2HitCycles(), 10u);
    EXPECT_EQ(m.memLatencyCycles(), 51u);
    m.frequency_ghz = 5.0;
    EXPECT_EQ(m.l2HitCycles(), 25u);
    EXPECT_EQ(m.memLatencyCycles(), 128u); // rounded 127.5
}

TEST(Machine, LatencyNeverBelowOneCycle)
{
    MachineConfig m = baseMachine();
    m.offchip_scales_with_clock = false;
    m.frequency_ghz = 0.01;
    EXPECT_GE(m.l2HitCycles(), 1u);
    EXPECT_GE(m.memOccupancyCycles(), 1u);
}

TEST(Machine, DescribeMentionsKnobs)
{
    const MachineConfig m = baseMachine();
    const std::string d = m.describe();
    EXPECT_NE(d.find("w128"), std::string::npos);
    EXPECT_NE(d.find("6ALU"), std::string::npos);
    EXPECT_NE(d.find("4.00GHz"), std::string::npos);
}

TEST(Machine, ValidateAcceptsBase)
{
    baseMachine().validate(); // must not exit
}

TEST(MachineDeath, ValidateRejectsBadConfigs)
{
    MachineConfig m = baseMachine();
    m.frequency_ghz = -1.0;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1), "frequency");

    m = baseMachine();
    m.voltage_v = 0.0;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1), "voltage");

    m = baseMachine();
    m.num_int_alu = 0;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1), "ALU");

    m = baseMachine();
    m.window_size = 0;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1), "window");

    m = baseMachine();
    m.line_bytes = 48;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1),
                "power of two");

    m = baseMachine();
    m.fetch_duty_x8 = 0;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1), "duty");
    m.fetch_duty_x8 = 9;
    EXPECT_EXIT(m.validate(), testing::ExitedWithCode(1), "duty");
}

} // namespace
} // namespace ramp::sim
