/**
 * @file
 * Tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace ramp::sim {
namespace {

TEST(Cache, GeometryFromParameters)
{
    Cache c(64, 2, 64); // 64KB, 2-way, 64B lines
    EXPECT_EQ(c.sets(), 512u);
    EXPECT_EQ(c.assoc(), 2u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(4, 2, 64);
    EXPECT_EQ(c.access(0x1000, false), CacheOutcome::Miss);
    EXPECT_EQ(c.access(0x1000, false), CacheOutcome::Hit);
    EXPECT_EQ(c.access(0x103f, false), CacheOutcome::Hit); // same line
    EXPECT_EQ(c.access(0x1040, false), CacheOutcome::Miss); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(4, 2, 64); // 32 sets... 4KB/2way/64B = 32 sets
    // Three lines mapping to the same set: set stride = 32*64 = 2048.
    const std::uint64_t a = 0x0000, b = a + 2048, d = a + 4096;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);      // a is now MRU
    c.access(d, false);      // evicts b (LRU)
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, WritebackCountsDirtyEvictions)
{
    Cache c(4, 1, 64); // direct-mapped: 64 sets
    const std::uint64_t a = 0x0000, b = a + 64 * 64;
    c.access(a, true);   // dirty fill
    EXPECT_EQ(c.writebacks(), 0u);
    c.access(b, false);  // evicts dirty a
    EXPECT_EQ(c.writebacks(), 1u);
    c.access(a, false);  // evicts clean b
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, ContainsDoesNotPerturbState)
{
    Cache c(4, 2, 64);
    c.access(0x0, false);
    c.access(0x800, false); // same set (2048 stride)
    // Probing repeatedly must not refresh LRU.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(c.contains(0x0));
    c.access(0x1000, false); // third line in the set evicts true LRU 0x0
    EXPECT_FALSE(c.contains(0x0));
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c(4, 2, 64);
    c.access(0x0, true);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.contains(0x0));
}

TEST(Cache, MissRatioOfSequentialStream)
{
    Cache c(64, 2, 64);
    // Walk 256KB sequentially in 8B steps: one miss per 64B line.
    for (std::uint64_t a = 0; a < 256 * 1024; a += 8)
        c.access(a, false);
    EXPECT_NEAR(c.missRatio(), 1.0 / 8.0, 1e-9);
}

TEST(Cache, WorkingSetSmallerThanCapacityHasNoSteadyMisses)
{
    Cache c(64, 2, 64); // 64KB
    // 32KB working set, two passes: second pass must be all hits.
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.access(a, false);
    const auto misses_after_warm = c.misses();
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
        c.access(a, false);
    EXPECT_EQ(c.misses(), misses_after_warm);
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache c(4, 1, 64); // 4KB direct-mapped
    // 8KB round-robin walk: every access misses in steady state.
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t a = 0; a < 8 * 1024; a += 64)
            c.access(a, false);
    EXPECT_GT(c.missRatio(), 0.95);
}

TEST(Cache, MissRatioZeroWhenNoAccesses)
{
    Cache c(4, 2, 64);
    EXPECT_EQ(c.missRatio(), 0.0);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache(3, 2, 64), testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(Cache(4, 2, 48), testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(Cache(4, 0, 64), testing::ExitedWithCode(1),
                "associativity");
}

} // namespace
} // namespace ramp::sim
