/**
 * @file
 * Tests for the memory-system timing model: latencies per level,
 * MSHR accounting, L2 port serialisation, and bank occupancy.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/mem.hh"

namespace ramp::sim {
namespace {

MachineConfig
cfg()
{
    return baseMachine();
}

TEST(MemorySystem, L1HitLatency)
{
    MemorySystem m(cfg());
    m.dataAccess(0x1000, false, 0); // cold fill
    const auto res = m.dataAccess(0x1000, false, 100);
    EXPECT_EQ(res.level, MemLevel::L1);
    EXPECT_EQ(res.done_cycle, 102u); // 2-cycle L1 hit
}

TEST(MemorySystem, ColdMissGoesToMemory)
{
    MemorySystem m(cfg());
    const auto res = m.dataAccess(0x1000, false, 0);
    EXPECT_EQ(res.level, MemLevel::Memory);
    // L1 (2) + L2 lookup (20) + memory (102).
    EXPECT_EQ(res.done_cycle, 2u + 20u + 102u);
}

TEST(MemorySystem, L2HitLatency)
{
    MemorySystem m(cfg());
    m.dataAccess(0x1000, false, 0); // fills L1 and L2
    // A conflicting L1 line (same L1 set, different tag) evicts it from
    // L1 on the next fill; then re-access the original: L2 hit.
    // L1: 64KB 2-way 64B => 512 sets => stride 32KB.
    m.dataAccess(0x1000 + 32 * 1024, false, 200);
    m.dataAccess(0x1000 + 64 * 1024, false, 400);
    const auto res = m.dataAccess(0x1000, false, 600);
    EXPECT_EQ(res.level, MemLevel::L2);
    EXPECT_EQ(res.done_cycle, 600u + 2u + 20u);
}

TEST(MemorySystem, MshrsLimitOutstandingMisses)
{
    MemorySystem m(cfg()); // 12 MSHRs
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(m.mshrAvailable(0));
        m.dataAccess(0x100000 + static_cast<std::uint64_t>(i) * 4096,
                     false, 0);
    }
    EXPECT_FALSE(m.mshrAvailable(0));
    // After the fills return, slots free up.
    EXPECT_TRUE(m.mshrAvailable(10000));
}

TEST(MemorySystem, HitsDoNotConsumeMshrs)
{
    MemorySystem m(cfg());
    m.dataAccess(0x2000, false, 0);
    for (int i = 0; i < 50; ++i)
        m.dataAccess(0x2000, false, 1000 + i);
    EXPECT_TRUE(m.mshrAvailable(1000));
}

TEST(MemorySystem, L2PortSerialisesRequests)
{
    MemorySystem m(cfg());
    // Two same-cycle misses to different banks (adjacent lines): the
    // second is delayed one cycle by the single L2 port.
    const auto r0 = m.dataAccess(0x10000, false, 0);
    const auto r1 = m.dataAccess(0x10040, false, 0);
    EXPECT_EQ(r1.done_cycle, r0.done_cycle + 1);
}

TEST(MemorySystem, BankConflictAddsOccupancy)
{
    MachineConfig c = cfg();
    MemorySystem m(c);
    // Same bank: line addresses differing by banks*line = 256B.
    const auto r0 = m.dataAccess(0x40000, false, 0);
    const auto r1 = m.dataAccess(0x40000 + 256, false, 0);
    // The one-cycle port delay is absorbed by the bank wait; the
    // second request is pushed out by exactly one occupancy slot.
    EXPECT_EQ(r1.done_cycle, r0.done_cycle + c.memOccupancyCycles());
}

TEST(MemorySystem, FetchHitIsFree)
{
    MemorySystem m(cfg());
    m.fetchAccess(0x1000, 0); // cold fill
    const auto res = m.fetchAccess(0x1000, 50);
    EXPECT_EQ(res.level, MemLevel::L1);
    EXPECT_EQ(res.done_cycle, 50u);
}

TEST(MemorySystem, FetchMissPaysL2OrMemory)
{
    MemorySystem m(cfg());
    const auto res = m.fetchAccess(0x5000, 0);
    EXPECT_EQ(res.level, MemLevel::Memory);
    EXPECT_GE(res.done_cycle, 122u);
}

TEST(MemorySystem, MemAccessCounterTracksLineTransfers)
{
    MemorySystem m(cfg());
    EXPECT_EQ(m.memAccesses(), 0u);
    m.dataAccess(0x0, false, 0);
    m.dataAccess(0x0, false, 1000); // hit: no new transfer
    EXPECT_EQ(m.memAccesses(), 1u);
}

TEST(MemorySystem, ResetRestoresColdState)
{
    MemorySystem m(cfg());
    m.dataAccess(0x3000, false, 0);
    m.reset();
    EXPECT_EQ(m.memAccesses(), 0u);
    const auto res = m.dataAccess(0x3000, false, 0);
    EXPECT_EQ(res.level, MemLevel::Memory);
}

TEST(MemorySystem, LatenciesScaleWithFrequency)
{
    MachineConfig slow = cfg();
    slow.offchip_scales_with_clock = false; // physical-time mode
    slow.frequency_ghz = 2.0;
    MemorySystem m(slow);
    const auto res = m.dataAccess(0x1000, false, 0);
    // L1 (2, clock-relative) + L2 (10 at 2 GHz) + memory (51).
    EXPECT_EQ(res.done_cycle, 2u + 10u + 51u);
}

} // namespace
} // namespace ramp::sim
