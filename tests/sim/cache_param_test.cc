/**
 * @file
 * Parameterised cache-geometry properties: the tag-exact model must
 * behave correctly across the full range of geometries used in the
 * machine (L1I, L1D, L2) and beyond.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace ramp::sim {
namespace {

struct Geometry
{
    std::uint32_t size_kb;
    std::uint32_t assoc;
    std::uint32_t line;
};

class CacheGeometryTest : public testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometryTest, GeometryIsConsistent)
{
    const auto g = GetParam();
    Cache c(g.size_kb, g.assoc, g.line);
    EXPECT_EQ(c.sets() * c.assoc() * c.lineBytes(),
              g.size_kb * 1024u);
    EXPECT_EQ(c.sets() & (c.sets() - 1), 0u);
}

TEST_P(CacheGeometryTest, FillThenHitWithinCapacity)
{
    const auto g = GetParam();
    Cache c(g.size_kb, g.assoc, g.line);
    const std::uint64_t bytes = g.size_kb * 1024ull;
    // Fill exactly to capacity, then re-walk: every access must hit
    // (true LRU on a cyclic in-capacity walk keeps everything).
    for (std::uint64_t a = 0; a < bytes; a += g.line)
        c.access(a, false);
    const auto misses_after_fill = c.misses();
    EXPECT_EQ(misses_after_fill, bytes / g.line);
    for (std::uint64_t a = 0; a < bytes; a += g.line)
        EXPECT_EQ(c.access(a, false), CacheOutcome::Hit);
}

TEST_P(CacheGeometryTest, OverCapacityCyclicWalkThrashes)
{
    const auto g = GetParam();
    Cache c(g.size_kb, g.assoc, g.line);
    // A cyclic walk of 2x capacity defeats true LRU completely.
    const std::uint64_t bytes = 2ull * g.size_kb * 1024ull;
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t a = 0; a < bytes; a += g.line)
            c.access(a, false);
    EXPECT_GT(c.missRatio(), 0.99);
}

TEST_P(CacheGeometryTest, SetConflictsRespectAssociativity)
{
    const auto g = GetParam();
    Cache c(g.size_kb, g.assoc, g.line);
    const std::uint64_t set_stride =
        static_cast<std::uint64_t>(c.sets()) * g.line;
    // assoc lines in one set fit; assoc+1 evict.
    for (std::uint32_t w = 0; w < g.assoc; ++w)
        c.access(w * set_stride, false);
    for (std::uint32_t w = 0; w < g.assoc; ++w)
        EXPECT_TRUE(c.contains(w * set_stride));
    c.access(static_cast<std::uint64_t>(g.assoc) * set_stride, false);
    EXPECT_FALSE(c.contains(0)); // LRU way evicted
}

TEST_P(CacheGeometryTest, ResetRestoresCold)
{
    const auto g = GetParam();
    Cache c(g.size_kb, g.assoc, g.line);
    c.access(0x1234 & ~std::uint64_t(g.line - 1), true);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.access(0x1000, false), CacheOutcome::Miss);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    testing::Values(Geometry{8, 1, 16},    // tiny direct-mapped
                    Geometry{16, 1, 32},   //
                    Geometry{32, 2, 64},   // the machine's L1I
                    Geometry{64, 2, 64},   // the machine's L1D
                    Geometry{256, 4, 64},  //
                    Geometry{1024, 4, 64}, // the machine's L2
                    Geometry{64, 8, 128}), // high associativity
    [](const testing::TestParamInfo<Geometry> &i) {
        return std::to_string(i.param.size_kb) + "kb_" +
               std::to_string(i.param.assoc) + "w_" +
               std::to_string(i.param.line) + "b";
    });

} // namespace
} // namespace ramp::sim
