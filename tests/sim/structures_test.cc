/**
 * @file
 * Tests for the structure enumeration and area model.
 */

#include <gtest/gtest.h>

#include "sim/structures.hh"

namespace ramp::sim {
namespace {

TEST(Structures, CountMatchesEnum)
{
    EXPECT_EQ(num_structures, 10u);
    EXPECT_EQ(allStructures().size(), num_structures);
}

TEST(Structures, NamesAreUniqueAndNonEmpty)
{
    for (auto id : allStructures()) {
        EXPECT_FALSE(structureName(id).empty());
        for (auto other : allStructures()) {
            if (other != id) {
                EXPECT_NE(structureName(id), structureName(other));
            }
        }
    }
}

TEST(Structures, AreasPositive)
{
    for (auto id : allStructures())
        EXPECT_GT(structureArea(id), 0.0);
}

TEST(Structures, TotalAreaMatchesPaperCore)
{
    // Paper Table 1: core size 20.2 mm^2 (4.5 mm x 4.5 mm = 20.25).
    EXPECT_NEAR(totalCoreArea(), 20.25, 0.01);
}

TEST(Structures, IndexIsDense)
{
    std::size_t i = 0;
    for (auto id : allStructures())
        EXPECT_EQ(structureIndex(id), i++);
}

TEST(Structures, CachesAreLargestBlocks)
{
    // Sanity on relative sizing: FPU and L1D dominate the floorplan.
    EXPECT_GT(structureArea(StructureId::Fpu),
              structureArea(StructureId::IntReg));
    EXPECT_GT(structureArea(StructureId::L1D),
              structureArea(StructureId::Lsq));
}

} // namespace
} // namespace ramp::sim
