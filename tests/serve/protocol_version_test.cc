/**
 * @file
 * Protocol-versioning tests: the v0 wire shape is pinned byte for
 * byte (old clients must keep working against a new server), the
 * "v" field gates types and fields by the version they arrived in,
 * hello round-trips, and versions newer than this build are refused
 * structurally.
 */

#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace ramp {
namespace serve {
namespace {

TEST(ProtocolVersion, V0RequestBytesArePinned)
{
    // These exact bytes are the pre-versioning wire shape; encoding
    // them differently would break deployed v0 servers.
    Request eval;
    eval.id = 42;
    eval.type = RequestType::Evaluate;
    eval.app = "MPGdec";
    eval.space = drm::AdaptationSpace::Dvs;
    eval.config = 7;
    EXPECT_EQ(encodeRequest(eval),
              "{\"id\":42,\"type\":\"evaluate\",\"app\":\"MPGdec\","
              "\"space\":\"DVS\",\"config\":7,\"t_qual_k\":345}");

    Request stats;
    stats.id = 9;
    stats.type = RequestType::Stats;
    EXPECT_EQ(encodeRequest(stats),
              "{\"id\":9,\"type\":\"stats\"}");
}

TEST(ProtocolVersion, V0ReplyBytesArePinned)
{
    util::JsonValue result = util::JsonValue::makeObject();
    result.set("fit", util::JsonValue::makeNumber(4000));
    EXPECT_EQ(encodeResultReply(7, std::move(result), 0),
              "{\"id\":7,\"ok\":true,\"result\":{\"fit\":4000}}");
    EXPECT_EQ(encodeErrorReply(8, err_overloaded, "queue full", 0),
              "{\"id\":8,\"ok\":false,\"error\":{\"code\":"
              "\"overloaded\",\"message\":\"queue full\"}}");
}

TEST(ProtocolVersion, VersionedRepliesCarryVAfterId)
{
    util::JsonValue result = util::JsonValue::makeObject();
    EXPECT_EQ(encodeResultReply(7, std::move(result), 2),
              "{\"id\":7,\"v\":2,\"ok\":true,\"result\":{}}");
    const auto parsed = parseReply(
        encodeErrorReply(8, err_bad_request, "nope", 1));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().version, 1);
    EXPECT_FALSE(parsed.value().ok);
    EXPECT_EQ(parsed.value().error_code, err_bad_request);
}

TEST(ProtocolVersion, VersionedRequestsRoundTripTheirVersion)
{
    Request req;
    req.id = 5;
    req.version = 1;
    req.type = RequestType::SelectDrm;
    req.app = "gzip";
    req.space = drm::AdaptationSpace::Dvs;
    const auto parsed = parseRequest(encodeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().version, 1);
    EXPECT_EQ(parsed.value().type, RequestType::SelectDrm);
}

TEST(ProtocolVersion, FutureVersionIsRefusedStructurally)
{
    const auto r =
        parseRequest("{\"id\":1,\"v\":4,\"type\":\"stats\"}");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(r.error().message.find("newer"), std::string::npos);
}

TEST(ProtocolVersion, HelloRoundTripsAndNeedsV1)
{
    Request req;
    req.id = 6;
    req.version = 1;
    req.type = RequestType::Hello;
    req.max_v = 2;
    const std::string wire = encodeRequest(req);
    EXPECT_EQ(wire, "{\"id\":6,\"v\":1,\"type\":\"hello\","
                    "\"max_v\":2}");
    const auto parsed = parseRequest(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().type, RequestType::Hello);
    EXPECT_EQ(parsed.value().max_v, 2);

    // A hello without "v" is a v0 frame using a v1 type.
    const auto v0 =
        parseRequest("{\"id\":6,\"type\":\"hello\",\"max_v\":2}");
    ASSERT_FALSE(v0.ok());
    EXPECT_NE(v0.error().message.find("needs protocol v1"),
              std::string::npos);
}

TEST(ProtocolVersion, FleetVerbsNeedV2)
{
    EXPECT_EQ(requestTypeMinVersion(RequestType::ReportUsage), 2);
    EXPECT_EQ(requestTypeMinVersion(RequestType::RemainingLifetime),
              2);
    for (const char *type : {"report_usage", "remaining_lifetime"}) {
        const auto r = parseRequest(util::cat(
            "{\"id\":1,\"v\":1,\"type\":\"", type,
            "\",\"chip\":\"c0\",\"app\":\"x\",\"space\":\"DVS\","
            "\"state\":{}}"));
        ASSERT_FALSE(r.ok()) << type;
        EXPECT_NE(r.error().message.find("needs protocol v2"),
                  std::string::npos);
    }
}

TEST(ProtocolVersion, ReportUsageParsesStrictly)
{
    Request req;
    req.id = 11;
    req.version = 2;
    req.type = RequestType::ReportUsage;
    req.chip = "fleet-0042";
    req.state = util::JsonValue::makeObject();
    const auto parsed = parseRequest(encodeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().chip, "fleet-0042");
    EXPECT_TRUE(parsed.value().state.isObject());

    // chip and state are required; state must be an object; empty
    // chip names and foreign fields are rejected.
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":2,\"type\":"
                              "\"report_usage\",\"chip\":\"c0\"}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":2,\"type\":"
                              "\"report_usage\",\"chip\":\"\","
                              "\"state\":{}}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":2,\"type\":"
                              "\"report_usage\",\"chip\":\"c0\","
                              "\"state\":7}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":2,\"type\":"
                              "\"report_usage\",\"chip\":\"c0\","
                              "\"state\":{},\"config\":1}")
                     .ok());
}

TEST(ProtocolVersion, RemainingLifetimeParsesStrictly)
{
    Request req;
    req.id = 12;
    req.version = 2;
    req.type = RequestType::RemainingLifetime;
    req.chip = "fleet-0042";
    req.app = "gzip";
    req.space = drm::AdaptationSpace::Dvs;
    req.t_qual_k = 350.0;
    const auto parsed = parseRequest(encodeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().chip, "fleet-0042");
    EXPECT_EQ(parsed.value().app, "gzip");
    EXPECT_DOUBLE_EQ(parsed.value().t_qual_k, 350.0);

    // Required fields and type gating on the embedded fields.
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":2,\"type\":"
                              "\"remaining_lifetime\",\"chip\":"
                              "\"c0\",\"app\":\"x\"}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":2,\"type\":"
                              "\"remaining_lifetime\",\"chip\":"
                              "\"c0\",\"app\":\"x\",\"space\":"
                              "\"DVS\",\"t_design_k\":370}")
                     .ok());
}

TEST(ProtocolVersion, ReportUsageSeqIsOptionalAndOmittedAtDefault)
{
    // seq arrived in v2 as the idempotency handle for retried
    // reports. It is optional, and the encoder omits it at its
    // default -- a seq-less v2 report keeps its old bytes.
    Request req;
    req.id = 13;
    req.version = 2;
    req.type = RequestType::ReportUsage;
    req.chip = "c0";
    req.state = util::JsonValue::makeObject();
    EXPECT_EQ(encodeRequest(req).find("\"seq\""),
              std::string::npos);

    req.seq = 77;
    const std::string encoded = encodeRequest(req);
    EXPECT_NE(encoded.find("\"seq\":77"), std::string::npos);
    const auto parsed = parseRequest(encoded);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().seq, 77u);

    // Absent seq parses as 0 (no dedup).
    const auto bare = parseRequest(
        "{\"id\":1,\"v\":2,\"type\":\"report_usage\",\"chip\":"
        "\"c0\",\"state\":{}}");
    ASSERT_TRUE(bare.ok()) << bare.error().str();
    EXPECT_EQ(bare.value().seq, 0u);
}

TEST(ProtocolVersion, CacheAppendParsesStrictly)
{
    EXPECT_EQ(requestTypeMinVersion(RequestType::CacheAppend), 2);

    Request req;
    req.id = 14;
    req.version = 2;
    req.type = RequestType::CacheAppend;
    req.key = "cfg-key";
    req.record = "cfg-key 1 2 3";
    req.epoch = 6;
    const std::string encoded = encodeRequest(req);
    const auto parsed = parseRequest(encoded);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().key, "cfg-key");
    EXPECT_EQ(parsed.value().record, "cfg-key 1 2 3");
    EXPECT_EQ(parsed.value().epoch, 6u);

    // The replication verb needs v2...
    EXPECT_FALSE(parseRequest(
                     "{\"id\":1,\"v\":1,\"type\":\"cache_append\","
                     "\"key\":\"k\",\"record\":\"k 1\","
                     "\"epoch\":0}")
                     .ok());
    // ...and key, record, and epoch are all required.
    EXPECT_FALSE(parseRequest(
                     "{\"id\":1,\"v\":2,\"type\":\"cache_append\","
                     "\"record\":\"k 1\",\"epoch\":0}")
                     .ok());
    EXPECT_FALSE(parseRequest(
                     "{\"id\":1,\"v\":2,\"type\":\"cache_append\","
                     "\"key\":\"k\",\"epoch\":0}")
                     .ok());
    EXPECT_FALSE(parseRequest(
                     "{\"id\":1,\"v\":2,\"type\":\"cache_append\","
                     "\"key\":\"k\",\"record\":\"k 1\"}")
                     .ok());
    // Foreign fields stay rejected.
    EXPECT_FALSE(parseRequest(
                     "{\"id\":1,\"v\":2,\"type\":\"cache_append\","
                     "\"key\":\"k\",\"record\":\"k 1\","
                     "\"epoch\":0,\"config\":1}")
                     .ok());
}

TEST(ProtocolVersion, SelectChipRoundTripsAndNeedsV3)
{
    EXPECT_EQ(requestTypeMinVersion(RequestType::SelectChip), 3);

    Request req;
    req.id = 15;
    req.version = 3;
    req.type = RequestType::SelectChip;
    req.core_apps = {"gzip", "MPGdec"};
    req.space = drm::AdaptationSpace::Dvs;
    req.budget_policy = cmp::BudgetPolicy::Global;
    const std::string wire = encodeRequest(req);
    // The default-Null floorplan is omitted; policy and t_qual_k
    // ride along explicitly.
    EXPECT_EQ(wire,
              "{\"id\":15,\"v\":3,\"type\":\"select_chip\","
              "\"apps\":[\"gzip\",\"MPGdec\"],\"space\":\"DVS\","
              "\"policy\":\"global\",\"t_qual_k\":345}");
    const auto parsed = parseRequest(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().type, RequestType::SelectChip);
    ASSERT_EQ(parsed.value().core_apps.size(), 2u);
    EXPECT_EQ(parsed.value().core_apps[0], "gzip");
    EXPECT_EQ(parsed.value().core_apps[1], "MPGdec");
    EXPECT_EQ(parsed.value().budget_policy,
              cmp::BudgetPolicy::Global);
    EXPECT_TRUE(parsed.value().floorplan.isNull());

    // The verb arrived in v3: a v2 frame using it is refused.
    const auto v2 = parseRequest(
        "{\"id\":1,\"v\":2,\"type\":\"select_chip\",\"apps\":"
        "[\"gzip\"],\"space\":\"DVS\"}");
    ASSERT_FALSE(v2.ok());
    EXPECT_NE(v2.error().message.find("needs protocol v3"),
              std::string::npos);
}

TEST(ProtocolVersion, SelectChipParsesStrictly)
{
    // apps must be a non-empty array of non-empty strings.
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"apps\":[],"
                              "\"space\":\"DVS\"}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"apps\":[\"x\",7],"
                              "\"space\":\"DVS\"}")
                     .ok());
    // apps and space are required; unknown policies and foreign
    // fields are rejected.
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"space\":\"DVS\"}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"apps\":[\"x\"]}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"apps\":[\"x\"],"
                              "\"space\":\"DVS\",\"policy\":"
                              "\"fair\"}")
                     .ok());
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"apps\":[\"x\"],"
                              "\"space\":\"DVS\",\"config\":1}")
                     .ok());
}

TEST(ProtocolVersion, SelectChipFloorplanIsValidatedAtParseTime)
{
    // A valid placement document round-trips...
    Request req;
    req.id = 16;
    req.version = 3;
    req.type = RequestType::SelectChip;
    req.core_apps = {"gzip", "MPGdec"};
    req.space = drm::AdaptationSpace::Dvs;
    std::string err;
    const auto plan = util::parseJson(
        "{\"cores\":[{\"name\":\"c0\",\"x_mm\":0,\"y_mm\":0},"
        "{\"name\":\"c1\",\"x_mm\":4.5,\"y_mm\":0}]}",
        &err);
    ASSERT_TRUE(plan.has_value()) << err;
    req.floorplan = *plan;
    const auto parsed = parseRequest(encodeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_TRUE(parsed.value().floorplan.isObject());

    // ...while a malformed one is a structured parse failure naming
    // the offending core, so the server answers bad-request instead
    // of failing deep in evaluation.
    const auto bad = parseRequest(
        "{\"id\":1,\"v\":3,\"type\":\"select_chip\",\"apps\":"
        "[\"x\",\"y\"],\"space\":\"DVS\",\"floorplan\":{\"cores\":"
        "[{\"name\":\"c0\",\"x_mm\":0,\"y_mm\":0},{\"name\":\"c1\","
        "\"x_mm\":1.0,\"y_mm\":0}]}}");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(bad.error().message.find("request:cores"),
              std::string::npos);

    // A floorplan that is not an object at all is rejected too.
    EXPECT_FALSE(parseRequest("{\"id\":1,\"v\":3,\"type\":"
                              "\"select_chip\",\"apps\":[\"x\"],"
                              "\"space\":\"DVS\",\"floorplan\":7}")
                     .ok());
}

} // namespace
} // namespace serve
} // namespace ramp
