/**
 * @file
 * Loopback tests for the length-prefixed frame codec: partial
 * writes reassembled, oversized frames rejected before the payload
 * is read, garbage ahead of a frame detected, half-closed sockets,
 * and read deadlines.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <string>
#include <thread>

#include "util/net.hh"

namespace ramp {
namespace util {
namespace {

/** One accepted loopback socket pair. */
struct Pair
{
    Listener listener;
    Socket client;
    Socket server;
};

Pair
loopbackPair()
{
    Pair pair;
    auto listener = listenTcp(0);
    EXPECT_TRUE(listener.ok()) << listener.error().str();
    pair.listener = std::move(listener.value());
    auto client = connectTcp(pair.listener.port, 2'000);
    EXPECT_TRUE(client.ok()) << client.error().str();
    pair.client = std::move(client.value());
    auto server = acceptTcp(pair.listener.socket, 2'000);
    EXPECT_TRUE(server.ok()) << server.error().str();
    pair.server = std::move(server.value());
    return pair;
}

/** Raw send that bypasses the frame writer. */
void
rawSend(const Socket &sock, const std::string &bytes)
{
    ASSERT_EQ(::send(sock.fd(), bytes.data(), bytes.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
}

std::string
prefix(std::uint32_t n)
{
    std::string p(4, '\0');
    p[0] = static_cast<char>(n >> 24);
    p[1] = static_cast<char>(n >> 16);
    p[2] = static_cast<char>(n >> 8);
    p[3] = static_cast<char>(n);
    return p;
}

TEST(Framing, RoundTrip)
{
    Pair pair = loopbackPair();
    const std::string payload = "{\"id\":1,\"type\":\"stats\"}";
    auto written =
        writeFrame(pair.client, payload, 1 << 20, 1'000);
    ASSERT_TRUE(written.ok()) << written.error().str();
    auto frame = readFrame(pair.server, 1 << 20, 1'000);
    ASSERT_TRUE(frame.ok()) << frame.error().str();
    ASSERT_TRUE(frame.value().has_value());
    EXPECT_EQ(*frame.value(), payload);
}

TEST(Framing, PartialWritesReassemble)
{
    Pair pair = loopbackPair();
    const std::string payload(300, 'x');
    const std::string wire = prefix(300) + payload;

    // Dribble the frame across five sends with gaps; the reader's
    // deadline covers the whole frame, not each chunk.
    std::thread writer([&] {
        const std::size_t step = wire.size() / 5 + 1;
        for (std::size_t off = 0; off < wire.size(); off += step) {
            rawSend(pair.client,
                    wire.substr(off,
                                std::min(step, wire.size() - off)));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });
    auto frame = readFrame(pair.server, 1 << 20, 5'000);
    writer.join();
    ASSERT_TRUE(frame.ok()) << frame.error().str();
    ASSERT_TRUE(frame.value().has_value());
    EXPECT_EQ(*frame.value(), payload);
}

TEST(Framing, OversizedFrameRejectedBeforePayload)
{
    Pair pair = loopbackPair();
    // Announce 1 MiB against a 4 KiB cap; send no payload at all.
    // The reader must reject from the prefix alone.
    rawSend(pair.client, prefix(1u << 20));
    auto frame = readFrame(pair.server, 4'096, 1'000);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.error().code, ErrorCode::InvalidInput);
}

TEST(Framing, GarbageBytesLookLikeAnAbsurdLength)
{
    Pair pair = loopbackPair();
    rawSend(pair.client, "GET / HTTP/1.1\r\n\r\n");
    auto frame = readFrame(pair.server, 1 << 20, 1'000);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.error().code, ErrorCode::InvalidInput);
}

TEST(Framing, CleanEofAtFrameBoundary)
{
    Pair pair = loopbackPair();
    pair.client.shutdownWrite();
    auto frame = readFrame(pair.server, 1 << 20, 1'000);
    ASSERT_TRUE(frame.ok()) << frame.error().str();
    EXPECT_FALSE(frame.value().has_value());
}

TEST(Framing, HalfClosedMidFrameIsATornStream)
{
    Pair pair = loopbackPair();
    // Prefix promises 100 bytes; deliver 10, then FIN.
    rawSend(pair.client, prefix(100) + std::string(10, 'y'));
    pair.client.shutdownWrite();
    auto frame = readFrame(pair.server, 1 << 20, 1'000);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.error().code, ErrorCode::IoFailure);
}

TEST(Framing, HalfClosedPeerStillReceivesReplies)
{
    Pair pair = loopbackPair();
    const std::string payload = "last-request";
    auto written =
        writeFrame(pair.client, payload, 1 << 20, 1'000);
    ASSERT_TRUE(written.ok());
    pair.client.shutdownWrite(); // FIN after the request.

    auto frame = readFrame(pair.server, 1 << 20, 1'000);
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame.value().has_value());
    EXPECT_EQ(*frame.value(), payload);

    // The server side can still answer on the other half.
    auto reply = writeFrame(pair.server, "reply", 1 << 20, 1'000);
    ASSERT_TRUE(reply.ok()) << reply.error().str();
    auto got = readFrame(pair.client, 1 << 20, 1'000);
    ASSERT_TRUE(got.ok()) << got.error().str();
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), "reply");
}

TEST(Framing, ReadDeadlineIsTimeout)
{
    Pair pair = loopbackPair();
    const auto t0 = std::chrono::steady_clock::now();
    auto frame = readFrame(pair.server, 1 << 20, 100);
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.error().code, ErrorCode::Timeout);
    EXPECT_GE(waited_ms, 90.0);
    EXPECT_LT(waited_ms, 5'000.0);
}

TEST(Framing, SocketReceiveTimeoutSurfacesAsTimeout)
{
    Pair pair = loopbackPair();
    // Promise 100 payload bytes, deliver 10, keep the socket open:
    // the reader is parked mid-frame. With no poll() deadline
    // (timeout_ms < 0) only the kernel's SO_RCVTIMEO can end the
    // wait, and it must surface as a structured Timeout -- the codec
    // used to retry EAGAIN like EINTR, spinning on the stalled peer
    // forever.
    timeval tv{};
    tv.tv_usec = 100'000; // 100 ms
    ASSERT_EQ(::setsockopt(pair.server.fd(), SOL_SOCKET, SO_RCVTIMEO,
                           &tv, sizeof tv),
              0);
    rawSend(pair.client, prefix(100) + std::string(10, 'y'));

    const auto t0 = std::chrono::steady_clock::now();
    auto frame = readFrame(pair.server, 1 << 20, /*timeout_ms=*/-1);
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.error().code, ErrorCode::Timeout);
    EXPECT_NE(frame.error().message.find("timeout"),
              std::string::npos)
        << frame.error().str();
    EXPECT_GE(waited_ms, 90.0);
    EXPECT_LT(waited_ms, 5'000.0);
}

TEST(Framing, WriteIntoClosedPeerFailsStructurallyNotSigpipe)
{
    Pair pair = loopbackPair();
    pair.server = Socket(); // Close the receiving end entirely.

    // The first write usually lands in the kernel buffer before the
    // RST arrives; keep writing until the failure surfaces. Writing
    // into the dead half raises SIGPIPE unless the writer sends with
    // MSG_NOSIGNAL -- the process surviving to return a structured
    // error IS the assertion (a router must observe a killed
    // backend, not die with it).
    Result<void> written;
    for (int i = 0; i < 50 && written.ok(); ++i) {
        written = writeFrame(pair.client,
                             std::string(4'096, 'p'), 1 << 20,
                             1'000);
        if (written.ok())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().code, ErrorCode::IoFailure);
}

TEST(Framing, StalledMidFrameDeadlineCoversTheWholeFrame)
{
    Pair pair = loopbackPair();
    // Promise 1000 bytes and dribble one byte every 40 ms -- each
    // arrival beats a per-read deadline, so a codec that restarts
    // its timeout per chunk hangs for 40 seconds on a reply frame
    // that never completes. The deadline must cover the whole
    // frame: one structured Timeout, ~300 ms after the read began.
    std::atomic<bool> stop{false};
    std::thread dribbler([&] {
        rawSend(pair.client, prefix(1'000));
        while (!stop.load()) {
            const char byte = 'z';
            (void)::send(pair.client.fd(), &byte, 1, MSG_NOSIGNAL);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40));
        }
    });
    const auto t0 = std::chrono::steady_clock::now();
    auto frame = readFrame(pair.server, 1 << 20, 300);
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    stop.store(true);
    dribbler.join();
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.error().code, ErrorCode::Timeout);
    EXPECT_GE(waited_ms, 250.0);
    EXPECT_LT(waited_ms, 2'000.0);
}

TEST(Framing, WriterRefusesOversizedPayload)
{
    Pair pair = loopbackPair();
    auto written = writeFrame(pair.client, std::string(5'000, 'z'),
                              4'096, 1'000);
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().code, ErrorCode::InvalidInput);
}

} // namespace
} // namespace util
} // namespace ramp
