/**
 * @file
 * Wire-protocol unit tests: request/reply encode-parse round trips,
 * strict validation, and error-code mapping. No sockets here --
 * framing behaviour lives in framing_test.cc.
 */

#include <gtest/gtest.h>

#include "serve/protocol.hh"

namespace ramp {
namespace serve {
namespace {

TEST(Protocol, RequestTypeNamesRoundTrip)
{
    for (RequestType t :
         {RequestType::Evaluate, RequestType::SelectDrm,
          RequestType::SelectDtm, RequestType::Stats,
          RequestType::Shutdown}) {
        const auto back = requestTypeFromName(requestTypeName(t));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, t);
    }
    EXPECT_FALSE(requestTypeFromName("EVALUATE").has_value());
    EXPECT_FALSE(requestTypeFromName("").has_value());
}

TEST(Protocol, EvaluateRoundTrip)
{
    Request req;
    req.id = 42;
    req.type = RequestType::Evaluate;
    req.app = "MPGdec";
    req.space = drm::AdaptationSpace::Dvs;
    req.config = 7;
    req.t_qual_k = 360.5;

    const auto parsed = parseRequest(encodeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().id, 42u);
    EXPECT_EQ(parsed.value().type, RequestType::Evaluate);
    EXPECT_EQ(parsed.value().app, "MPGdec");
    EXPECT_EQ(parsed.value().space, drm::AdaptationSpace::Dvs);
    EXPECT_EQ(parsed.value().config, 7u);
    EXPECT_DOUBLE_EQ(parsed.value().t_qual_k, 360.5);
}

TEST(Protocol, SelectDtmRoundTrip)
{
    Request req;
    req.id = 3;
    req.type = RequestType::SelectDtm;
    req.app = "gzip";
    req.space = drm::AdaptationSpace::ArchDvs;
    req.t_design_k = 372.0;

    const auto parsed = parseRequest(encodeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().type, RequestType::SelectDtm);
    EXPECT_DOUBLE_EQ(parsed.value().t_design_k, 372.0);
}

TEST(Protocol, StatsAndShutdownCarryNoBody)
{
    for (RequestType t :
         {RequestType::Stats, RequestType::Shutdown}) {
        Request req;
        req.id = 9;
        req.type = t;
        const auto parsed = parseRequest(encodeRequest(req));
        ASSERT_TRUE(parsed.ok()) << parsed.error().str();
        EXPECT_EQ(parsed.value().type, t);
    }
}

TEST(Protocol, ParseRejectsMalformedRequests)
{
    // Not JSON at all.
    EXPECT_FALSE(parseRequest("hello").ok());
    // Not an object.
    EXPECT_FALSE(parseRequest("[1,2]").ok());
    // Missing id.
    EXPECT_FALSE(parseRequest("{\"type\":\"stats\"}").ok());
    // Fractional / negative ids.
    EXPECT_FALSE(
        parseRequest("{\"id\":1.5,\"type\":\"stats\"}").ok());
    EXPECT_FALSE(
        parseRequest("{\"id\":-1,\"type\":\"stats\"}").ok());
    // Unknown type.
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"explode\"}").ok());
    // Missing app on an evaluate.
    EXPECT_FALSE(
        parseRequest(
            "{\"id\":1,\"type\":\"evaluate\",\"space\":\"DVS\","
            "\"config\":0}")
            .ok());
    // Unknown adaptation space.
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"evaluate\","
                     "\"app\":\"x\",\"space\":\"dvs\","
                     "\"config\":0}")
            .ok());
    // Non-finite temperature.
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"select_drm\","
                     "\"app\":\"x\",\"space\":\"DVS\","
                     "\"t_qual_k\":\"hot\"}")
            .ok());
}

TEST(Protocol, ParseRejectsFieldsForeignToTheType)
{
    // config on a select_drm would be silently ignored otherwise.
    const auto r1 =
        parseRequest("{\"id\":1,\"type\":\"select_drm\","
                     "\"app\":\"x\",\"space\":\"DVS\","
                     "\"config\":3}");
    ASSERT_FALSE(r1.ok());
    EXPECT_NE(r1.error().message.find("config"), std::string::npos);

    // t_design_k only applies to select_dtm.
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"evaluate\","
                     "\"app\":\"x\",\"space\":\"DVS\","
                     "\"config\":0,\"t_design_k\":370}")
            .ok());

    // A body on a stats request is a client bug, not noise.
    EXPECT_FALSE(
        parseRequest(
            "{\"id\":1,\"type\":\"stats\",\"app\":\"x\"}")
            .ok());
}

TEST(Protocol, SurrogateModeRoundTripsOnSelects)
{
    for (RequestType t :
         {RequestType::SelectDrm, RequestType::SelectDtm}) {
        Request req;
        req.id = 5;
        req.type = t;
        req.app = "gzip";
        req.space = drm::AdaptationSpace::Dvs;
        req.surrogate = drm::surrogate::SurrogateMode::Rank;
        const auto parsed = parseRequest(encodeRequest(req));
        ASSERT_TRUE(parsed.ok()) << parsed.error().str();
        EXPECT_EQ(parsed.value().surrogate,
                  drm::surrogate::SurrogateMode::Rank);
    }
}

TEST(Protocol, SurrogateDefaultsToOffAndStaysOffTheWire)
{
    Request req;
    req.id = 6;
    req.type = RequestType::SelectDrm;
    req.app = "gzip";
    req.space = drm::AdaptationSpace::Dvs;
    // Off is the default, so it is never emitted: old servers keep
    // parsing new clients' requests.
    const std::string wire = encodeRequest(req);
    EXPECT_EQ(wire.find("surrogate"), std::string::npos);
    const auto parsed = parseRequest(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_EQ(parsed.value().surrogate,
              drm::surrogate::SurrogateMode::Off);
}

TEST(Protocol, SurrogateFieldIsValidated)
{
    // Unknown mode.
    const auto bad =
        parseRequest("{\"id\":1,\"type\":\"select_drm\","
                     "\"app\":\"x\",\"space\":\"DVS\","
                     "\"surrogate\":\"fast\"}");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("surrogate"),
              std::string::npos);

    // Wrong type.
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"select_drm\","
                     "\"app\":\"x\",\"space\":\"DVS\","
                     "\"surrogate\":1}")
            .ok());

    // Foreign to non-select types.
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"evaluate\","
                     "\"app\":\"x\",\"space\":\"DVS\","
                     "\"config\":0,\"surrogate\":\"rank\"}")
            .ok());
    EXPECT_FALSE(
        parseRequest("{\"id\":1,\"type\":\"stats\","
                     "\"surrogate\":\"rank\"}")
            .ok());
}

TEST(Protocol, ReplyRoundTrips)
{
    util::JsonValue result = util::JsonValue::makeObject();
    result.set("fit", util::JsonValue::makeNumber(1234.5));
    const auto ok =
        parseReply(encodeResultReply(17, std::move(result)));
    ASSERT_TRUE(ok.ok()) << ok.error().str();
    EXPECT_EQ(ok.value().id, 17u);
    EXPECT_TRUE(ok.value().ok);
    const util::JsonValue *fit = ok.value().result.find("fit");
    ASSERT_NE(fit, nullptr);
    EXPECT_DOUBLE_EQ(fit->number, 1234.5);

    const auto err = parseReply(
        encodeErrorReply(18, err_overloaded, "queue full"));
    ASSERT_TRUE(err.ok()) << err.error().str();
    EXPECT_EQ(err.value().id, 18u);
    EXPECT_FALSE(err.value().ok);
    EXPECT_EQ(err.value().error_code, err_overloaded);
    EXPECT_EQ(err.value().error_message, "queue full");

    EXPECT_FALSE(parseReply("{\"id\":1}").ok());
    EXPECT_FALSE(parseReply("{\"id\":1,\"ok\":true}").ok());
    EXPECT_FALSE(parseReply("{\"id\":1,\"ok\":false}").ok());
}

TEST(Protocol, ReplyErrorCodeMapping)
{
    EXPECT_EQ(replyErrorCode(err_overloaded),
              util::ErrorCode::Overloaded);
    EXPECT_EQ(replyErrorCode(err_shutting_down),
              util::ErrorCode::Unavailable);
    EXPECT_EQ(replyErrorCode("non-convergence"),
              util::ErrorCode::NonConvergence);
    EXPECT_EQ(replyErrorCode("timeout"), util::ErrorCode::Timeout);
    EXPECT_EQ(replyErrorCode("no-such-code"),
              util::ErrorCode::InvalidInput);
}

} // namespace
} // namespace serve
} // namespace ramp
