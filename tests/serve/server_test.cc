/**
 * @file
 * In-process server tests: served replies are byte-identical to the
 * direct evaluation path, errors travel structurally, admission
 * control rejects explicitly, drain semantics hold, and the
 * conn-drop/conn-slow fault kinds exercise the failure paths
 * deterministically.
 *
 * One shared EvaluationService (tiny simulation lengths, one app,
 * in-memory cache) backs every test; each test starts its own Server
 * over it, which is cheap.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/net.hh"

namespace ramp {
namespace serve {
namespace {

class ServerTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ServiceOptions opts;
        opts.cache_path = ""; // In-memory; tests must not share
                              // records with the repo cache.
        opts.threads = 2;
        opts.max_apps = 1;
        opts.eval_params.warmup_uops = 40'000;
        opts.eval_params.measure_uops = 60'000;
        service_ = std::make_unique<EvaluationService>(opts);
        service_->ensureReady();
        app_ = service_->apps()[0].name;
    }

    static void TearDownTestSuite() { service_.reset(); }

    void TearDown() override { fault::clearFaultPlan(); }

    /** The direct-path answer for an evaluate, serialized. */
    static std::string
    directEvaluate(std::size_t config)
    {
        Request req;
        req.type = RequestType::Evaluate;
        req.app = app_;
        req.space = drm::AdaptationSpace::Dvs;
        req.config = config;
        auto op = service_->evaluatePoint(
            app_, drm::AdaptationSpace::Dvs, config);
        EXPECT_TRUE(op.ok()) << op.error().str();
        auto encoded =
            service_->encodeEvaluation(req, op.value());
        EXPECT_TRUE(encoded.ok());
        return util::writeJson(encoded.value());
    }

    static Client
    connectTo(const Server &server, int io_timeout_ms = 30'000)
    {
        ClientOptions opts;
        opts.port = server.port();
        opts.io_timeout_ms = io_timeout_ms;
        auto client = Client::connect(opts);
        EXPECT_TRUE(client.ok()) << client.error().str();
        return std::move(client.value());
    }

    static std::unique_ptr<EvaluationService> service_;
    static std::string app_;
};

std::unique_ptr<EvaluationService> ServerTest::service_;
std::string ServerTest::app_;

TEST_F(ServerTest, EvaluateIsByteIdenticalToDirectPath)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server);
    for (std::size_t config : {0u, 3u, 7u}) {
        auto served = client.evaluate(
            app_, drm::AdaptationSpace::Dvs, config);
        ASSERT_TRUE(served.ok()) << served.error().str();
        EXPECT_EQ(util::writeJson(served.value()),
                  directEvaluate(config));
    }
}

TEST_F(ServerTest, SelectionsMatchDirectPath)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server);

    auto served_drm =
        client.selectDrm(app_, drm::AdaptationSpace::Dvs);
    ASSERT_TRUE(served_drm.ok()) << served_drm.error().str();
    auto served_dtm =
        client.selectDtm(app_, drm::AdaptationSpace::Dvs, 370.0);
    ASSERT_TRUE(served_dtm.ok()) << served_dtm.error().str();

    // Stop the server so the batcher (the driver thread) is gone
    // before select() runs on this thread.
    server.stop();

    Request drm_req;
    drm_req.type = RequestType::SelectDrm;
    drm_req.app = app_;
    drm_req.space = drm::AdaptationSpace::Dvs;
    auto direct_drm = service_->select(drm_req);
    ASSERT_TRUE(direct_drm.ok());
    EXPECT_EQ(util::writeJson(served_drm.value()),
              util::writeJson(direct_drm.value()));

    Request dtm_req;
    dtm_req.type = RequestType::SelectDtm;
    dtm_req.app = app_;
    dtm_req.space = drm::AdaptationSpace::Dvs;
    dtm_req.t_design_k = 370.0;
    auto direct_dtm = service_->select(dtm_req);
    ASSERT_TRUE(direct_dtm.ok());
    EXPECT_EQ(util::writeJson(served_dtm.value()),
              util::writeJson(direct_dtm.value()));
}

TEST_F(ServerTest, PipelinedIdenticalRequestsAllAnswered)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server);

    const std::string want = directEvaluate(2);
    constexpr std::size_t n = 16;
    for (std::size_t i = 0; i < n; ++i) {
        Request req;
        req.type = RequestType::Evaluate;
        req.app = app_;
        req.space = drm::AdaptationSpace::Dvs;
        req.config = 2;
        ASSERT_TRUE(client.sendRequest(std::move(req)).ok());
    }
    for (std::size_t i = 0; i < n; ++i) {
        auto reply = client.receiveReply();
        ASSERT_TRUE(reply.ok()) << reply.error().str();
        ASSERT_TRUE(reply.value().ok)
            << reply.value().error_message;
        EXPECT_EQ(util::writeJson(reply.value().result), want);
    }
}

TEST_F(ServerTest, UnknownAppIsAStructuredErrorNotAHangup)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server);

    auto bad =
        client.evaluate("no-such-app", drm::AdaptationSpace::Dvs, 0);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, util::ErrorCode::InvalidInput);

    // The connection survives a request-level error.
    auto good =
        client.evaluate(app_, drm::AdaptationSpace::Dvs, 0);
    EXPECT_TRUE(good.ok()) << good.error().str();
}

TEST_F(ServerTest, MalformedPayloadGetsBadRequestAndConnectionLives)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());

    auto sock = util::connectTcp(server.port(), 2'000);
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(util::writeFrame(sock.value(), "not json at all",
                                 default_max_frame, 1'000)
                    .ok());
    auto frame =
        util::readFrame(sock.value(), default_max_frame, 30'000);
    ASSERT_TRUE(frame.ok()) << frame.error().str();
    ASSERT_TRUE(frame.value().has_value());
    auto reply = parseReply(*frame.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply.value().ok);
    EXPECT_EQ(reply.value().error_code, err_bad_request);

    // Same connection, now a well-formed request.
    Request req;
    req.id = 5;
    req.type = RequestType::Stats;
    ASSERT_TRUE(util::writeFrame(sock.value(), encodeRequest(req),
                                 default_max_frame, 1'000)
                    .ok());
    auto frame2 =
        util::readFrame(sock.value(), default_max_frame, 30'000);
    ASSERT_TRUE(frame2.ok());
    ASSERT_TRUE(frame2.value().has_value());
    auto reply2 = parseReply(*frame2.value());
    ASSERT_TRUE(reply2.ok());
    EXPECT_TRUE(reply2.value().ok);
    EXPECT_EQ(reply2.value().id, 5u);
}

TEST_F(ServerTest, OversizedFrameIsRejectedThenDisconnected)
{
    ServerOptions opts;
    opts.max_frame_bytes = 1'024;
    Server server(*service_, opts);
    ASSERT_TRUE(server.start().ok());

    auto sock = util::connectTcp(server.port(), 2'000);
    ASSERT_TRUE(sock.ok());
    // A frame the server's cap forbids. The client-side cap must be
    // larger or writeFrame would refuse locally.
    ASSERT_TRUE(util::writeFrame(sock.value(),
                                 std::string(4'096, 'x'), 1 << 20,
                                 1'000)
                    .ok());
    auto frame = util::readFrame(sock.value(), 1 << 20, 30'000);
    ASSERT_TRUE(frame.ok()) << frame.error().str();
    ASSERT_TRUE(frame.value().has_value());
    auto reply = parseReply(*frame.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply.value().ok);
    EXPECT_EQ(reply.value().error_code, err_bad_request);

    // The stream is unframeable from here on: the server hangs up.
    // With our oversized payload still unread on its side, that
    // close may surface as a clean FIN or a reset -- disconnected
    // either way, never a second reply.
    auto eof = util::readFrame(sock.value(), 1 << 20, 30'000);
    if (eof.ok())
        EXPECT_FALSE(eof.value().has_value());
    else
        EXPECT_EQ(eof.error().code, util::ErrorCode::IoFailure);
}

TEST_F(ServerTest, QueueOverflowRepliesOverloadedNotSilence)
{
    // One-deep queue, one-request batches, and every reply delayed
    // 300 ms: while the batcher sleeps in its first reply, the queue
    // holds one admitted request and any further arrival must be
    // rejected -- deterministically, not racily.
    fault::FaultPlan plan;
    plan.spec(fault::FaultKind::ConnSlow).rate = 1.0;
    plan.spec(fault::FaultKind::ConnSlow).delay_ms = 300.0;
    fault::installFaultPlan(plan);

    ServerOptions opts;
    opts.queue_depth = 1;
    opts.batch_max = 1;
    Server server(*service_, opts);
    ASSERT_TRUE(server.start().ok());
    Client a = connectTo(server);
    Client b = connectTo(server);
    Client c = connectTo(server);

    Request req;
    req.type = RequestType::Evaluate;
    req.app = app_;
    req.space = drm::AdaptationSpace::Dvs;
    req.config = 1;

    // a's request is popped by the batcher, which then sleeps in
    // the slow reply; b's request fills the queue.
    ASSERT_TRUE(a.sendRequest(req).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(b.sendRequest(req).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // c must be rejected: the queue is full and the batcher is
    // still asleep for another ~100 ms.
    auto rejected = c.call(req);
    ASSERT_TRUE(rejected.ok()) << rejected.error().str();
    ASSERT_FALSE(rejected.value().ok);
    EXPECT_EQ(rejected.value().error_code, err_overloaded);

    // The admitted requests still complete.
    auto ra = a.receiveReply();
    ASSERT_TRUE(ra.ok()) << ra.error().str();
    EXPECT_TRUE(ra.value().ok);
    auto rb = b.receiveReply();
    ASSERT_TRUE(rb.ok()) << rb.error().str();
    EXPECT_TRUE(rb.value().ok);
}

TEST_F(ServerTest, ShutdownDrainsThenRejects)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client worker = connectTo(server);

    // Admit work, then drain. sendRequest only proves the bytes left
    // our socket, so pipeline a stats probe behind the evaluate: one
    // connection's frames are handled in order, which makes the
    // probe's reply proof that the evaluate was admitted first.
    Request req;
    req.type = RequestType::Evaluate;
    req.app = app_;
    req.space = drm::AdaptationSpace::Dvs;
    req.config = 4;
    auto eval_id = worker.sendRequest(req);
    ASSERT_TRUE(eval_id.ok()) << eval_id.error().str();
    Request probe;
    probe.type = RequestType::Stats;
    auto probe_id = worker.sendRequest(probe);
    ASSERT_TRUE(probe_id.ok()) << probe_id.error().str();

    // Replies interleave (stats is answered inline, the evaluate by
    // the batcher), so collect until the probe's reply shows up.
    std::optional<Reply> eval_reply;
    for (;;) {
        auto r = worker.receiveReply();
        ASSERT_TRUE(r.ok()) << r.error().str();
        if (r.value().id == probe_id.value())
            break;
        ASSERT_EQ(r.value().id, eval_id.value());
        eval_reply = std::move(r.value());
    }

    Client admin = connectTo(server);
    ASSERT_TRUE(admin.requestShutdown().ok());
    EXPECT_TRUE(server.draining());

    // The admitted request is answered, never dropped.
    if (!eval_reply.has_value()) {
        auto r = worker.receiveReply();
        ASSERT_TRUE(r.ok()) << r.error().str();
        ASSERT_EQ(r.value().id, eval_id.value());
        eval_reply = std::move(r.value());
    }
    EXPECT_TRUE(eval_reply->ok);

    // New work is rejected with the drain code.
    auto late = worker.call(req);
    if (late.ok()) {
        ASSERT_FALSE(late.value().ok);
        EXPECT_EQ(late.value().error_code, err_shutting_down);
    } else {
        // The server may already have closed the connection.
        EXPECT_EQ(late.error().code, util::ErrorCode::IoFailure);
    }

    server.wait(); // Full drain terminates.
}

TEST_F(ServerTest, ForcedNonConvergenceIsReportedNotDropped)
{
    // Force every thermal fixed point to report non-convergence:
    // the evaluation is still valid and must come back ok with
    // converged == false, not vanish into an error.
    fault::FaultPlan plan;
    plan.spec(fault::FaultKind::NonConvergence).rate = 1.0;
    fault::installFaultPlan(plan);

    // A private service: the shared one's memos hold converged
    // points and its cache must stay clean.
    ServiceOptions opts;
    opts.cache_path = "";
    opts.threads = 2;
    opts.max_apps = 1;
    opts.eval_params.warmup_uops = 40'000;
    opts.eval_params.measure_uops = 60'000;
    EvaluationService service(opts);
    Server server(service, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server);

    auto result = client.evaluate(service.apps()[0].name,
                                  drm::AdaptationSpace::Dvs, 0);
    ASSERT_TRUE(result.ok()) << result.error().str();
    const util::JsonValue *converged =
        result.value().find("converged");
    ASSERT_NE(converged, nullptr);
    EXPECT_FALSE(converged->boolean);
}

TEST_F(ServerTest, ConnDropSeversDeterministically)
{
    fault::FaultPlan plan;
    plan.spec(fault::FaultKind::ConnDrop).rate = 1.0;
    fault::installFaultPlan(plan);

    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server, /*io_timeout_ms=*/2'000);

    // Every reply is dropped at rate 1.0: the call must fail with a
    // transport error, not hang past its deadline.
    auto result =
        client.evaluate(app_, drm::AdaptationSpace::Dvs, 0);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.error().code == util::ErrorCode::IoFailure ||
                result.error().code == util::ErrorCode::Timeout)
        << result.error().str();
}

TEST_F(ServerTest, StatsCountsTraffic)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Client client = connectTo(server);

    ASSERT_TRUE(
        client.evaluate(app_, drm::AdaptationSpace::Dvs, 0).ok());
    auto stats = client.stats();
    ASSERT_TRUE(stats.ok()) << stats.error().str();
    const util::JsonValue *srv = stats.value().find("server");
    ASSERT_NE(srv, nullptr);
    EXPECT_GE(srv->find("requests")->number, 2.0);
    EXPECT_GE(srv->find("batches")->number, 1.0);
    EXPECT_EQ(srv->find("draining")->boolean, false);
    const util::JsonValue *cache = stats.value().find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_NE(cache->find("hits"), nullptr);
}

TEST_F(ServerTest, IdleTimeoutDisconnectsSilentPeers)
{
    ServerOptions opts;
    opts.idle_timeout_ms = 100;
    Server server(*service_, opts);
    ASSERT_TRUE(server.start().ok());

    auto sock = util::connectTcp(server.port(), 2'000);
    ASSERT_TRUE(sock.ok());
    // Say nothing; the server must hang up on us.
    auto frame = util::readFrame(sock.value(), default_max_frame,
                                 5'000);
    ASSERT_TRUE(frame.ok()) << frame.error().str();
    EXPECT_FALSE(frame.value().has_value());
}

} // namespace
} // namespace serve
} // namespace ramp
