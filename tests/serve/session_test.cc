/**
 * @file
 * End-to-end tests of the versioned client surface against an
 * in-process server: hello negotiation, the v2 fleet verbs
 * (report_usage merging into the registry, remaining_lifetime
 * answering a slack-banking selection), local refusal of verbs the
 * negotiated version cannot carry, and the guarantee that legacy v0
 * clients still see byte-for-byte unversioned replies.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aging/state.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/json.hh"

namespace ramp {
namespace serve {
namespace {

class SessionTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ServiceOptions opts;
        opts.cache_path = ""; // In-memory.
        opts.threads = 2;
        opts.max_apps = 1;
        opts.eval_params.warmup_uops = 40'000;
        opts.eval_params.measure_uops = 60'000;
        service_ = std::make_unique<EvaluationService>(opts);
        service_->ensureReady();
        app_ = service_->apps()[0].name;
    }

    static void TearDownTestSuite() { service_.reset(); }

    static Session
    openTo(const Server &server,
           int max_v = protocol_version_max)
    {
        ClientOptions opts;
        opts.port = server.port();
        auto session = Session::open(opts, max_v);
        EXPECT_TRUE(session.ok()) << session.error().str();
        return std::move(session.value());
    }

    /** A small, valid AgingState delta document. */
    static util::JsonValue
    delta(double pair00, double hours)
    {
        aging::AgingState st;
        st.age_hours = hours;
        st.damage[0][0] = pair00;
        return aging::toJson(st);
    }

    static std::unique_ptr<EvaluationService> service_;
    static std::string app_;
};

std::unique_ptr<EvaluationService> SessionTest::service_;
std::string SessionTest::app_;

TEST_F(SessionTest, HelloNegotiatesTheHighestCommonVersion)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    EXPECT_EQ(openTo(server).version(), protocol_version_max);
    EXPECT_EQ(openTo(server, 1).version(), 1);
}

TEST_F(SessionTest, SessionAnswersMatchTheLegacyClient)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);

    ClientOptions copts;
    copts.port = server.port();
    auto legacy = Client::connect(copts);
    ASSERT_TRUE(legacy.ok());

    auto versioned =
        session.evaluate(app_, drm::AdaptationSpace::Dvs, 2);
    ASSERT_TRUE(versioned.ok()) << versioned.error().str();
    auto v0 = legacy.value().evaluate(app_,
                                      drm::AdaptationSpace::Dvs, 2);
    ASSERT_TRUE(v0.ok()) << v0.error().str();
    // Same result object either way: versioning only wraps frames.
    EXPECT_EQ(util::writeJson(versioned.value()),
              util::writeJson(v0.value()));
}

TEST_F(SessionTest, LegacyClientRepliesCarryNoVersionField)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    ClientOptions copts;
    copts.port = server.port();
    auto legacy = Client::connect(copts);
    ASSERT_TRUE(legacy.ok());
    Request req;
    req.type = RequestType::Stats;
    auto reply = legacy.value().call(req);
    ASSERT_TRUE(reply.ok()) << reply.error().str();
    // parseReply reports version 0 only when "v" was absent, so
    // this pins the legacy shape end to end over a real socket.
    EXPECT_EQ(reply.value().version, 0);
    EXPECT_TRUE(reply.value().ok);
}

TEST_F(SessionTest, ReportUsageMergesIntoTheRegistry)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);

    auto first =
        session.reportUsage("session-test-merge", delta(0.1, 100.0));
    ASSERT_TRUE(first.ok()) << first.error().str();
    auto second =
        session.reportUsage("session-test-merge", delta(0.2, 50.0));
    ASSERT_TRUE(second.ok()) << second.error().str();

    const auto *age = second.value().find("age_hours");
    ASSERT_NE(age, nullptr);
    EXPECT_DOUBLE_EQ(age->number, 150.0);

    const auto chip = service_->chipState("session-test-merge");
    ASSERT_TRUE(chip.has_value());
    EXPECT_DOUBLE_EQ(chip->age_hours, 150.0);
    EXPECT_NEAR(chip->damage[0][0], 0.3, 1e-12);
}

TEST_F(SessionTest, ReportUsageRejectsDefectiveStates)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);
    auto bad = session.reportUsage("session-test-bad",
                                   util::JsonValue::makeObject());
    ASSERT_FALSE(bad.ok());
    // The defective delta must not create the chip.
    EXPECT_FALSE(service_->chipState("session-test-bad")
                     .has_value());
}

TEST_F(SessionTest, RemainingLifetimeAnswersASafeOperatingPoint)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);

    ASSERT_TRUE(session
                    .reportUsage("session-test-life",
                                 delta(0.25, 9000.0))
                    .ok());
    auto life = session.remainingLifetime("session-test-life", app_,
                                          drm::AdaptationSpace::Dvs);
    ASSERT_TRUE(life.ok()) << life.error().str();

    const auto &doc = life.value();
    ASSERT_NE(doc.find("consumed"), nullptr);
    ASSERT_NE(doc.find("slack"), nullptr);
    ASSERT_NE(doc.find("t_qual_eff_k"), nullptr);
    ASSERT_NE(doc.find("selection"), nullptr);
    EXPECT_GT(doc.find("consumed")->number, 0.0);
    // The answer must state an ETA one way or the other.
    EXPECT_TRUE(doc.find("eta_hours") != nullptr ||
                doc.find("eta_unbounded") != nullptr);
    // The embedded selection is a full selectDrm result.
    ASSERT_NE(doc.find("selection")->find("fit"), nullptr);
}

TEST_F(SessionTest, RemainingLifetimeForAnUnknownChipIsStructured)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);
    auto life = session.remainingLifetime("never-reported", app_,
                                          drm::AdaptationSpace::Dvs);
    ASSERT_FALSE(life.ok());
    EXPECT_EQ(life.error().code, util::ErrorCode::InvalidInput);
}

TEST_F(SessionTest, FleetVerbsRefuseLocallyBelowV2)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server, 1);
    ASSERT_EQ(session.version(), 1);
    auto usage =
        session.reportUsage("session-test-v1", delta(0.1, 1.0));
    ASSERT_FALSE(usage.ok());
    EXPECT_EQ(usage.error().code, util::ErrorCode::InvalidInput);
    auto life = session.remainingLifetime("session-test-v1", app_,
                                          drm::AdaptationSpace::Dvs);
    ASSERT_FALSE(life.ok());
    // Refused before any bytes hit the wire: the chip never
    // reaches the server.
    EXPECT_FALSE(service_->chipState("session-test-v1")
                     .has_value());
}

TEST_F(SessionTest, SelectChipServesChipSelections)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);
    ASSERT_EQ(session.version(), 3);

    const std::vector<std::string> apps{app_, app_};
    auto per_core =
        session.selectChip(apps, drm::AdaptationSpace::Dvs,
                           cmp::BudgetPolicy::PerCore);
    ASSERT_TRUE(per_core.ok()) << per_core.error().str();
    auto global = session.selectChip(apps, drm::AdaptationSpace::Dvs,
                                     cmp::BudgetPolicy::Global);
    ASSERT_TRUE(global.ok()) << global.error().str();

    const auto &doc = global.value();
    ASSERT_NE(doc.find("policy"), nullptr);
    EXPECT_EQ(doc.find("policy")->str, "global");
    ASSERT_NE(doc.find("budget_fit"), nullptr);
    ASSERT_NE(doc.find("chip_fit"), nullptr);
    ASSERT_NE(doc.find("cores"), nullptr);
    EXPECT_EQ(doc.find("cores")->array.size(), 2u);
    // The chip budget is the per-core default share times the core
    // count, and the global sum stays within it.
    EXPECT_DOUBLE_EQ(doc.find("budget_fit")->number, 8000.0);
    EXPECT_LE(doc.find("chip_fit")->number,
              doc.find("budget_fit")->number + 1e-9);
    // Reallocating cool cores' headroom never loses throughput.
    EXPECT_GE(doc.find("throughput_rel")->number,
              per_core.value().find("throughput_rel")->number -
                  1e-9);

    // An explicit floorplan equal to the built-in grid answers
    // identically (the placement only fixes the chip's shape).
    std::string err;
    const auto plan = util::parseJson(
        "{\"cores\":[{\"name\":\"c0\",\"x_mm\":0,\"y_mm\":0},"
        "{\"name\":\"c1\",\"x_mm\":4.5,\"y_mm\":0}]}",
        &err);
    ASSERT_TRUE(plan.has_value()) << err;
    auto planned =
        session.selectChip(apps, drm::AdaptationSpace::Dvs,
                           cmp::BudgetPolicy::Global, 345.0, *plan);
    ASSERT_TRUE(planned.ok()) << planned.error().str();
    EXPECT_EQ(util::writeJson(planned.value()),
              util::writeJson(global.value()));
}

TEST_F(SessionTest, SelectChipRejectsShapeMismatchesStructurally)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);

    // Three cores have no built-in grid and no floorplan was sent.
    auto three = session.selectChip({app_, app_, app_},
                                    drm::AdaptationSpace::Dvs);
    ASSERT_FALSE(three.ok());
    EXPECT_EQ(three.error().code, util::ErrorCode::InvalidInput);

    // A floorplan whose core count disagrees with the app list.
    std::string err;
    const auto plan = util::parseJson(
        "{\"cores\":[{\"name\":\"c0\",\"x_mm\":0,\"y_mm\":0}]}",
        &err);
    ASSERT_TRUE(plan.has_value()) << err;
    auto mismatch =
        session.selectChip({app_, app_}, drm::AdaptationSpace::Dvs,
                           cmp::BudgetPolicy::Global, 345.0, *plan);
    ASSERT_FALSE(mismatch.ok());
    EXPECT_EQ(mismatch.error().code,
              util::ErrorCode::InvalidInput);
}

TEST_F(SessionTest, SelectChipRefusesLocallyBelowV3)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server, 2);
    ASSERT_EQ(session.version(), 2);
    auto sel =
        session.selectChip({app_}, drm::AdaptationSpace::Dvs);
    ASSERT_FALSE(sel.ok());
    EXPECT_EQ(sel.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(sel.error().message.find("select_chip"),
              std::string::npos);
}

TEST_F(SessionTest, StatsCountsHellosAndUsageReports)
{
    Server server(*service_, ServerOptions{});
    ASSERT_TRUE(server.start().ok());
    Session session = openTo(server);
    ASSERT_TRUE(session
                    .reportUsage("session-test-stats",
                                 delta(0.01, 1.0))
                    .ok());
    auto stats = session.stats();
    ASSERT_TRUE(stats.ok()) << stats.error().str();
    const auto *counters = stats.value().find("server");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("hellos"), nullptr);
    ASSERT_NE(counters->find("usage_reports"), nullptr);
    EXPECT_GE(counters->find("hellos")->number, 1.0);
    EXPECT_GE(counters->find("usage_reports")->number, 1.0);
}

} // namespace
} // namespace serve
} // namespace ramp
