/**
 * @file
 * Eval-cache replication: the serialized-record ingest path
 * (idempotency, mislabelled-record rejection, observer echo rules),
 * the epoch header and its compaction bump, snapshot export, and
 * the Replicator end-to-end -- records put on one node arrive on a
 * peer daemon via cache_append, both the pre-start snapshot resync
 * and the live tail.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "drm/eval_cache.hh"
#include "serve/replicator.hh"
#include "serve/server.hh"
#include "serve/service.hh"

namespace ramp {
namespace serve {
namespace {

drm::CachedEvaluation
sampleRecord(double tag)
{
    drm::CachedEvaluation v;
    v.l1d_miss_ratio = tag;
    v.l2_miss_ratio = tag / 2.0;
    return v;
}

/** put() one record and capture the serialized line the observer
 *  hands the replicator. */
std::string
captureLine(drm::EvaluationCache &cache, const std::string &key,
            double tag)
{
    std::string line;
    cache.setAppendObserver(
        [&](const std::string &, const std::string &l) {
            line = l;
        });
    cache.put(key, sampleRecord(tag));
    cache.setAppendObserver(nullptr);
    EXPECT_FALSE(line.empty());
    return line;
}

TEST(CacheReplicationTest, PutSerializedIsIdempotentByKey)
{
    drm::EvaluationCache source("", /*replicated=*/true);
    const std::string line = captureLine(source, "k1", 0.25);

    drm::EvaluationCache sink("", true);
    EXPECT_TRUE(sink.putSerialized("k1", line));
    EXPECT_EQ(sink.size(), 1u);
    // A replayed snapshot or an echoed record applies nothing.
    EXPECT_FALSE(sink.putSerialized("k1", line));
    EXPECT_EQ(sink.size(), 1u);
}

TEST(CacheReplicationTest, MislabelledAndMalformedRecordsRejected)
{
    drm::EvaluationCache source("", true);
    const std::string line = captureLine(source, "k1", 0.25);

    drm::EvaluationCache sink("", true);
    // The advertised key must match the line's own key.
    EXPECT_FALSE(sink.putSerialized("other-key", line));
    EXPECT_FALSE(sink.putSerialized("k1", "not a record line"));
    EXPECT_EQ(sink.size(), 0u);
}

TEST(CacheReplicationTest, IngestNeverFiresTheObserver)
{
    drm::EvaluationCache source("", true);
    const std::string line = captureLine(source, "k1", 0.5);

    drm::EvaluationCache sink("", true);
    int fired = 0;
    sink.setAppendObserver(
        [&](const std::string &, const std::string &) {
            ++fired;
        });
    ASSERT_TRUE(sink.putSerialized("k1", line));
    EXPECT_EQ(fired, 0); // No echo loop: ingest is silent.
    sink.put("k2", sampleRecord(0.75));
    EXPECT_EQ(fired, 1); // Local puts still replicate out.
}

TEST(CacheReplicationTest, ExportRecordsRoundTripsThroughIngest)
{
    drm::EvaluationCache source("", true);
    source.put("a", sampleRecord(0.1));
    source.put("b", sampleRecord(0.2));
    source.put("c", sampleRecord(0.3));

    const auto snapshot = source.exportRecords();
    ASSERT_EQ(snapshot.size(), 3u);

    drm::EvaluationCache sink("", true);
    for (const auto &[key, line] : snapshot)
        EXPECT_TRUE(sink.putSerialized(key, line));
    EXPECT_EQ(sink.size(), 3u);
    for (const char *key : {"a", "b", "c"})
        EXPECT_TRUE(sink.get(key).has_value());
}

TEST(CacheReplicationTest, CompactionBumpsTheEpoch)
{
    const std::string path = "replication_epoch_cache.txt";
    std::remove(path.c_str());

    std::string line;
    {
        drm::EvaluationCache cache(path, true);
        EXPECT_EQ(cache.epoch(), 0u); // Fresh log.
        line = captureLine(cache, "k1", 0.25);
    }
    // Duplicate the record on disk: the next load sees more lines
    // than live entries and compacts, stamping a bumped epoch.
    {
        std::ofstream out(path, std::ios::app);
        out << line << '\n' << line << '\n';
    }
    {
        drm::EvaluationCache cache(path, true);
        EXPECT_EQ(cache.size(), 1u);
        EXPECT_EQ(cache.epoch(), 1u);
    }
    // An already-compact log keeps its epoch from the header.
    {
        drm::EvaluationCache cache(path, true);
        EXPECT_EQ(cache.epoch(), 1u);
    }
    std::remove(path.c_str());
}

/** Spin until @p cache holds @p n records (or a deadline). */
bool
waitForRecords(drm::EvaluationCache &cache, std::size_t n,
               int timeout_ms = 15'000)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cache.size() >= n)
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
    return cache.size() >= n;
}

TEST(ReplicatorTest, SnapshotResyncThenLiveTailReachThePeer)
{
    // The receiving daemon: a real Server whose service runs a
    // replicated in-memory cache (cache_append is answered inline,
    // so the engine never needs to warm).
    ServiceOptions sink_opts;
    sink_opts.cache_path = "";
    sink_opts.replicated_cache = true;
    sink_opts.max_apps = 1;
    EvaluationService sink(sink_opts);
    Server server(sink, ServerOptions{});
    ASSERT_TRUE(server.start().ok());

    // The sending node's cache, with records that predate the
    // replicator: start() must push them as the initial snapshot.
    drm::EvaluationCache source("", true);
    source.put("pre-1", sampleRecord(0.1));
    source.put("pre-2", sampleRecord(0.2));

    ReplicatorOptions ropts;
    ropts.peers = {server.port()};
    Replicator replicator(source, ropts);
    // ramp-lint: allow(result-discipline): Replicator::start returns void; name collision
    replicator.start();
    EXPECT_TRUE(waitForRecords(sink.cache(), 2))
        << "snapshot resync never arrived";

    // Live tail: a post-start put flows through the observer.
    source.put("live-1", sampleRecord(0.3));
    EXPECT_TRUE(waitForRecords(sink.cache(), 3))
        << "live append never arrived";
    EXPECT_TRUE(sink.cache().get("pre-1").has_value());
    EXPECT_TRUE(sink.cache().get("live-1").has_value());

    replicator.stop();
    server.stop();
}

TEST(ReplicatorTest, PeerOutageTriggersResyncOnReconnect)
{
    ServiceOptions sink_opts;
    sink_opts.cache_path = "";
    sink_opts.replicated_cache = true;
    sink_opts.max_apps = 1;

    drm::EvaluationCache source("", true);
    source.put("a", sampleRecord(0.1));

    // Reserve the peer's port, then shut the daemon down before the
    // replicator starts: every record lands while the peer is gone.
    std::uint16_t port = 0;
    {
        EvaluationService sink(sink_opts);
        Server server(sink, ServerOptions{});
        ASSERT_TRUE(server.start().ok());
        port = server.port();
        server.stop();
    }

    ReplicatorOptions ropts;
    ropts.peers = {port};
    ropts.reconnect_min_ms = 20;
    ropts.reconnect_max_ms = 100;
    Replicator replicator(source, ropts);
    // ramp-lint: allow(result-discipline): Replicator::start returns void; name collision
    replicator.start();
    source.put("b", sampleRecord(0.2));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // The daemon comes back on the same port; the replicator's
    // reconnect must replay the *full* snapshot, not just whatever
    // survived its queue.
    EvaluationService sink(sink_opts);
    ServerOptions bopts;
    bopts.port = port;
    Server server(sink, bopts);
    ASSERT_TRUE(server.start().ok());
    EXPECT_TRUE(waitForRecords(sink.cache(), 2))
        << "reconnect resync never arrived";
    EXPECT_TRUE(sink.cache().get("a").has_value());
    EXPECT_TRUE(sink.cache().get("b").has_value());

    replicator.stop();
    server.stop();
}

} // namespace
} // namespace serve
} // namespace ramp
