/**
 * @file
 * End-to-end smoke of the real binaries: ramp_served is spawned as a
 * child process, driven with ramp_client invocations, and drained
 * two ways -- by a shutdown request and by SIGTERM -- plus once under
 * a fault plan that drops and delays connections. Paths to the
 * binaries arrive as compile definitions (RAMP_SERVED_BIN,
 * RAMP_CLIENT_BIN), the pattern ramp_lint_test established.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace {

using ramp::util::cat;

/** Scratch directory under the test's CWD (the build tree). */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = cat("daemon_smoke_", name);
    std::system(cat("rm -rf ", dir, " && mkdir -p ", dir).c_str());
    return dir;
}

/** Spawn ramp_served; returns its pid. */
pid_t
spawnServer(const std::vector<std::string> &extra_args,
            const std::string &dir)
{
    std::vector<std::string> args = {
        RAMP_SERVED_BIN,
        "--port-file", dir + "/port.txt",
        "--cache",     dir + "/cache.txt",
        "--threads",   "2",
        "--apps",      "1",
    };
    args.insert(args.end(), extra_args.begin(), extra_args.end());

    const pid_t pid = ::fork();
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (auto &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        // Quiet the child; its chatter belongs to the daemon log.
        std::freopen((dir + "/served.log").c_str(), "w", stdout);
        std::freopen((dir + "/served.err").c_str(), "w", stderr);
        ::execv(RAMP_SERVED_BIN, argv.data());
        std::_Exit(127);
    }
    return pid;
}

/** Wait for the daemon's port file; 0 on timeout. */
int
awaitPort(const std::string &dir, int timeout_s = 120)
{
    const std::string path = dir + "/port.txt";
    for (int i = 0; i < timeout_s * 10; ++i) {
        std::ifstream in(path);
        int port = 0;
        if (in >> port && port > 0)
            return port;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
    return 0;
}

/** Run ramp_client; returns its exit code. */
int
runClient(int port, const std::string &args)
{
    const int rc = std::system(cat(RAMP_CLIENT_BIN, " --port ",
                                   port, " ", args,
                                   " >/dev/null 2>&1")
                                   .c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

/** Reap the daemon; returns its exit code (-1 on abnormal exit). */
int
reap(pid_t pid, int timeout_s = 60)
{
    for (int i = 0; i < timeout_s * 10; ++i) {
        int status = 0;
        const pid_t done = ::waitpid(pid, &status, WNOHANG);
        if (done == pid)
            return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return -2; // Timed out draining.
}

TEST(DaemonSmoke, ServeThenShutdownRequest)
{
    const std::string dir = scratchDir("shutdown");
    const pid_t pid = spawnServer({}, dir);
    ASSERT_GT(pid, 0);
    const int port = awaitPort(dir);
    ASSERT_GT(port, 0) << "daemon never published its port";

    EXPECT_EQ(runClient(port, "stats"), 0);
    EXPECT_EQ(runClient(port, "evaluate MPGdec DVS 0"), 0);
    EXPECT_EQ(runClient(port, "select-drm MPGdec DVS"), 0);
    // Unknown app: structured failure, daemon stays up.
    EXPECT_NE(runClient(port, "evaluate nope DVS 0"), 0);
    EXPECT_EQ(runClient(port, "stats"), 0);

    EXPECT_EQ(runClient(port, "shutdown"), 0);
    EXPECT_EQ(reap(pid), 0) << "daemon did not drain cleanly";
}

TEST(DaemonSmoke, SigtermDrains)
{
    const std::string dir = scratchDir("sigterm");
    const pid_t pid = spawnServer({}, dir);
    ASSERT_GT(pid, 0);
    const int port = awaitPort(dir);
    ASSERT_GT(port, 0);
    EXPECT_EQ(runClient(port, "stats"), 0);

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    EXPECT_EQ(reap(pid), 0) << "SIGTERM drain failed";
}

TEST(DaemonSmoke, SurvivesDroppedAndSlowConnections)
{
    const std::string dir = scratchDir("faulted");
    const pid_t pid = spawnServer(
        {"--fault-plan",
         "{\"seed\":11,\"faults\":{"
         "\"conn-drop\":{\"rate\":0.3},"
         "\"conn-slow\":{\"rate\":0.5,\"delay-ms\":20}}}"},
        dir);
    ASSERT_GT(pid, 0);
    const int port = awaitPort(dir);
    ASSERT_GT(port, 0);

    // Individual invocations may lose their connection (that is the
    // point); the daemon must answer *some* and survive all of them.
    int ok = 0;
    for (int i = 0; i < 10; ++i)
        if (runClient(port,
                      "--timeout-ms 10000 evaluate MPGdec DVS 1") ==
            0)
            ++ok;
    EXPECT_GT(ok, 0) << "every faulted request failed";

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    EXPECT_EQ(reap(pid), 0)
        << "daemon did not survive the fault campaign";
}

} // namespace
