/**
 * @file
 * Tests for the streaming JSON writer: structure, escaping, numeric
 * edge cases, and misuse detection.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "util/json.hh"

namespace ramp::util {
namespace {

TEST(Json, EmptyObject)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().endObject();
    EXPECT_EQ(os.str(), "{}");
    EXPECT_TRUE(w.complete());
}

TEST(Json, FlatObject)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .kv("name", "bzip2")
        .kv("ipc", 1.73)
        .kv("count", std::uint64_t{42})
        .kv("ok", true)
        .endObject();
    EXPECT_EQ(os.str(),
              "{\"name\":\"bzip2\",\"ipc\":1.73,\"count\":42,"
              "\"ok\":true}");
}

TEST(Json, NestedStructures)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("arr").beginArray();
    w.value(std::int64_t{1});
    w.value(std::int64_t{2});
    w.beginObject().kv("x", 3.5).endObject();
    w.endArray();
    w.key("obj").beginObject().kv("y", false).endObject();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"arr\":[1,2,{\"x\":3.5}],\"obj\":{\"y\":false}}");
    EXPECT_TRUE(w.complete());
}

TEST(Json, ArrayAsRoot)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray().value("a").value("b").endArray();
    EXPECT_EQ(os.str(), "[\"a\",\"b\"]");
}

TEST(Json, EscapesStrings)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().kv("k", "a\"b\\c\nd\te").endObject();
    EXPECT_EQ(os.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharactersEscapedAsUnicode)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().kv("k", std::string_view("\x01", 1)).endObject();
    EXPECT_EQ(os.str(), "{\"k\":\"\\u0001\"}");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .kv("nan", std::nan(""))
        .kv("inf", INFINITY)
        .endObject();
    EXPECT_EQ(os.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(Json, ExplicitNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray().null().endArray();
    EXPECT_EQ(os.str(), "[null]");
}

TEST(Json, CompleteOnlyWhenBalanced)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    EXPECT_FALSE(w.complete());
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_DEATH(w.key("k"), "key outside");
}

TEST(JsonDeath, ValueWhereKeyExpectedPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    EXPECT_DEATH(w.value(1.0), "key is expected");
}

TEST(JsonDeath, UnbalancedEndPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    EXPECT_DEATH(w.endObject(), "outside an object");
}

TEST(JsonDeath, WritingPastRootPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().endObject();
    EXPECT_DEATH(w.beginObject(), "complete root");
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->boolean);
    EXPECT_FALSE(parseJson("false")->boolean);
    EXPECT_DOUBLE_EQ(parseJson("-12.5e2")->number, -1250.0);
    EXPECT_EQ(parseJson("\"hi\"")->str, "hi");
}

TEST(JsonParse, NestedDocument)
{
    const auto doc = parseJson(
        R"({"counters":{"a":3},"list":[1,2,3],"flag":true})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->at("counters").at("a").number, 3.0);
    ASSERT_EQ(doc->at("list").array.size(), 3u);
    EXPECT_DOUBLE_EQ(doc->at("list").array[2].number, 3.0);
    EXPECT_TRUE(doc->at("flag").boolean);
    EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    const auto doc = parseJson(R"(["a\"b\\c\n", "Aé"])");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->array[0].str, "a\"b\\c\n");
    EXPECT_EQ(doc->array[1].str, "A\xc3\xa9");
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8)
{
    // U+1F600 as a surrogate pair.
    const auto doc = parseJson(R"("😀")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->str, "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parseJson("", &err).has_value());
    EXPECT_FALSE(parseJson("{", &err).has_value());
    EXPECT_FALSE(parseJson("[1,]", &err).has_value());
    EXPECT_FALSE(parseJson("{\"a\" 1}", &err).has_value());
    EXPECT_FALSE(parseJson("12 34", &err).has_value());
    EXPECT_FALSE(parseJson("nul", &err).has_value());
    EXPECT_FALSE(parseJson("\"unterminated", &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .kv("name", "bench")
        .kv("pi", 3.25)
        .kv("n", std::uint64_t{42})
        .key("tags")
        .beginArray()
        .value("a")
        .value(true)
        .null()
        .endArray()
        .endObject();
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->at("name").str, "bench");
    EXPECT_DOUBLE_EQ(doc->at("pi").number, 3.25);
    EXPECT_DOUBLE_EQ(doc->at("n").number, 42.0);
    ASSERT_EQ(doc->at("tags").array.size(), 3u);
    EXPECT_TRUE(doc->at("tags").array[2].isNull());
}

TEST(JsonParseDeath, AtMissingKeyPanics)
{
    const auto doc = parseJson("{}");
    EXPECT_DEATH(doc->at("missing"), "missing");
}

TEST(WriteJson, BuildsAndSerializesTrees)
{
    JsonValue root = JsonValue::makeObject();
    root.set("name", JsonValue::makeString("serve"))
        .set("ok", JsonValue::makeBool(true))
        .set("none", JsonValue::makeNull());
    JsonValue tags = JsonValue::makeArray();
    tags.push(JsonValue::makeNumber(1.0))
        .push(JsonValue::makeNumber(2.5));
    root.set("tags", std::move(tags));
    EXPECT_EQ(writeJson(root),
              "{\"name\":\"serve\",\"ok\":true,\"none\":null,"
              "\"tags\":[1,2.5]}");
}

TEST(WriteJson, EscapingMatchesTheStreamingWriter)
{
    // Same corpus EscapesStrings feeds JsonWriter; both emitters
    // must agree byte for byte.
    const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().kv("k", nasty).endObject();

    JsonValue root = JsonValue::makeObject();
    root.set("k", JsonValue::makeString(nasty));
    EXPECT_EQ(writeJson(root), os.str());
}

TEST(WriteJson, RoundTripsThroughParseJson)
{
    JsonValue root = JsonValue::makeObject();
    root.set("int", JsonValue::makeNumber(9007199254740991.0));
    root.set("neg", JsonValue::makeNumber(-42.0));
    // A double whose shortest decimal form needs 17 digits: %.12g
    // would lose bits, to_chars must not.
    root.set("pi", JsonValue::makeNumber(3.141592653589793));
    root.set("tiny", JsonValue::makeNumber(5e-324));
    root.set("text", JsonValue::makeString("x\"\\\n\x02"));
    root.set("inf", JsonValue::makeNumber(
                        std::numeric_limits<double>::infinity()));

    const auto doc = parseJson(writeJson(root));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->at("int").number, 9007199254740991.0);
    EXPECT_EQ(doc->at("neg").number, -42.0);
    EXPECT_EQ(doc->at("pi").number, 3.141592653589793);
    EXPECT_EQ(doc->at("tiny").number, 5e-324);
    EXPECT_EQ(doc->at("text").str, "x\"\\\n\x02");
    // Non-finite values have no JSON spelling; null, like the
    // streaming writer.
    EXPECT_TRUE(doc->at("inf").isNull());
}

TEST(WriteJson, SecondRoundTripIsAFixedPoint)
{
    // writeJson(parseJson(writeJson(v))) == writeJson(v): the wire
    // form is canonical, which is what byte-identity between the
    // served and direct evaluation paths rests on.
    JsonValue root = JsonValue::makeObject();
    root.set("perf", JsonValue::makeNumber(0.8125));
    root.set("fit", JsonValue::makeNumber(3171.381438049162));
    root.set("app", JsonValue::makeString("MPGdec"));
    const std::string once = writeJson(root);
    const auto doc = parseJson(once);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(writeJson(*doc), once);
}

TEST(WriteJsonDeath, SetOnNonObjectPanics)
{
    JsonValue arr = JsonValue::makeArray();
    EXPECT_DEATH(arr.set("k", JsonValue::makeNull()), "set");
}

TEST(WriteJsonDeath, PushOnNonArrayPanics)
{
    JsonValue obj = JsonValue::makeObject();
    EXPECT_DEATH(obj.push(JsonValue::makeNull()), "push");
}

} // namespace
} // namespace ramp::util
