/**
 * @file
 * Tests for the streaming JSON writer: structure, escaping, numeric
 * edge cases, and misuse detection.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/json.hh"

namespace ramp::util {
namespace {

TEST(Json, EmptyObject)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().endObject();
    EXPECT_EQ(os.str(), "{}");
    EXPECT_TRUE(w.complete());
}

TEST(Json, FlatObject)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .kv("name", "bzip2")
        .kv("ipc", 1.73)
        .kv("count", std::uint64_t{42})
        .kv("ok", true)
        .endObject();
    EXPECT_EQ(os.str(),
              "{\"name\":\"bzip2\",\"ipc\":1.73,\"count\":42,"
              "\"ok\":true}");
}

TEST(Json, NestedStructures)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("arr").beginArray();
    w.value(std::int64_t{1});
    w.value(std::int64_t{2});
    w.beginObject().kv("x", 3.5).endObject();
    w.endArray();
    w.key("obj").beginObject().kv("y", false).endObject();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"arr\":[1,2,{\"x\":3.5}],\"obj\":{\"y\":false}}");
    EXPECT_TRUE(w.complete());
}

TEST(Json, ArrayAsRoot)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray().value("a").value("b").endArray();
    EXPECT_EQ(os.str(), "[\"a\",\"b\"]");
}

TEST(Json, EscapesStrings)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().kv("k", "a\"b\\c\nd\te").endObject();
    EXPECT_EQ(os.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharactersEscapedAsUnicode)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().kv("k", std::string_view("\x01", 1)).endObject();
    EXPECT_EQ(os.str(), "{\"k\":\"\\u0001\"}");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .kv("nan", std::nan(""))
        .kv("inf", INFINITY)
        .endObject();
    EXPECT_EQ(os.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(Json, ExplicitNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray().null().endArray();
    EXPECT_EQ(os.str(), "[null]");
}

TEST(Json, CompleteOnlyWhenBalanced)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    EXPECT_FALSE(w.complete());
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_DEATH(w.key("k"), "key outside");
}

TEST(JsonDeath, ValueWhereKeyExpectedPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    EXPECT_DEATH(w.value(1.0), "key is expected");
}

TEST(JsonDeath, UnbalancedEndPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    EXPECT_DEATH(w.endObject(), "outside an object");
}

TEST(JsonDeath, WritingPastRootPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject().endObject();
    EXPECT_DEATH(w.beginObject(), "complete root");
}

} // namespace
} // namespace ramp::util
