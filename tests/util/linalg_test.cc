/**
 * @file
 * Tests for the dense matrix and the Gaussian-elimination solver.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "util/linalg.hh"
#include "util/random.hh"

namespace ramp::util {
namespace {

TEST(Matrix, ZeroInitialised)
{
    Matrix m(3, 2);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(m.at(r, c), 0.0);
}

TEST(Matrix, IdentityTimesVector)
{
    const Matrix id = Matrix::identity(4);
    const std::vector<double> x{1.0, -2.0, 3.0, 0.5};
    EXPECT_EQ(id.mul(x), x);
}

TEST(Matrix, MulComputesProduct)
{
    Matrix m(2, 3);
    m.at(0, 0) = 1.0; m.at(0, 1) = 2.0; m.at(0, 2) = 3.0;
    m.at(1, 0) = 4.0; m.at(1, 1) = 5.0; m.at(1, 2) = 6.0;
    const auto y = m.mul({1.0, 1.0, 1.0});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(SolveLinear, SolvesKnownSystem)
{
    Matrix a(2, 2);
    a.at(0, 0) = 2.0; a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0; a.at(1, 1) = 3.0;
    const auto x = solveLinear(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a.at(0, 0) = 0.0; a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0; a.at(1, 1) = 0.0;
    const auto x = solveLinear(a, {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, RandomSystemsRoundTrip)
{
    Rng rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + rng.below(12);
        Matrix a(n, n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                a.at(r, c) = rng.uniform(-1.0, 1.0);
            a.at(r, r) += 4.0; // diagonally dominant => nonsingular
        }
        std::vector<double> x_true(n);
        for (auto &v : x_true)
            v = rng.uniform(-10.0, 10.0);
        const auto b = a.mul(x_true);
        const auto x = solveLinear(a, b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

TEST(SolveLinear, ThermalShapedSystem)
{
    // Conductance-matrix shape: diagonal = sum of link conductances,
    // off-diagonal = -g. Solution temperatures must exceed ambient
    // injected via the RHS when power is positive.
    Matrix g(3, 3);
    const double g01 = 0.5, g12 = 0.25, g0a = 1.0, g2a = 0.1;
    g.at(0, 0) = g01 + g0a; g.at(0, 1) = -g01;
    g.at(1, 0) = -g01; g.at(1, 1) = g01 + g12; g.at(1, 2) = -g12;
    g.at(2, 1) = -g12; g.at(2, 2) = g12 + g2a;
    const double ambient_k = 318.0;
    const auto t = solveLinear(
        g, {10.0 + g0a * ambient_k, 5.0, 1.0 + g2a * ambient_k});
    for (double ti : t)
        EXPECT_GT(ti, ambient_k);
}

TEST(SolveLinearDeath, SingularSystemIsFatal)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0; a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0; a.at(1, 1) = 4.0;
    EXPECT_EXIT(solveLinear(a, {1.0, 2.0}), testing::ExitedWithCode(1),
                "singular");
}

TEST(SolveLinearDeath, NonSquarePanics)
{
    Matrix a(2, 3);
    EXPECT_DEATH(solveLinear(a, {1.0, 2.0}), "square");
}

} // namespace
} // namespace ramp::util
