/**
 * @file
 * Tests for text-table and CSV rendering plus the constants header.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/constants.hh"
#include "util/table.hh"

namespace ramp::util {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"app", "ipc"});
    t.addRow({"bzip2", "1.7"});
    t.addRow({"mpeg", "3.2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("app"), std::string::npos);
    EXPECT_NE(out.find("bzip2"), std::string::npos);
    EXPECT_NE(out.find("3.2"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, TitlePrintedWhenSet)
{
    Table t({"col"});
    t.setTitle("Table 2: workloads");
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().rfind("Table 2: workloads", 0), 0u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, NumFormatsFixedPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableDeath, MismatchedRowIsFatal)
{
    Table t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only one"}), testing::ExitedWithCode(1),
                "cells");
}

TEST(TableDeath, EmptyHeaderIsFatal)
{
    EXPECT_EXIT(Table({}), testing::ExitedWithCode(1), "column");
}

TEST(Constants, TemperatureConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(celsiusToKelvin(0.0), 273.15);
    EXPECT_DOUBLE_EQ(kelvinToCelsius(celsiusToKelvin(85.0)), 85.0);
}

TEST(Constants, ThirtyYearMttfIsAbout4000Fit)
{
    // The paper: 30-year MTTF ~ 4000 FIT qualification target.
    const double fit = mttfYearsToFit(30.0);
    EXPECT_NEAR(fit, 3802.0, 5.0);
    EXPECT_NEAR(fitToMttfYears(fit), 30.0, 1e-9);
}

TEST(Constants, BoltzmannValue)
{
    EXPECT_NEAR(k_boltzmann_ev, 8.617e-5, 1e-8);
}

} // namespace
} // namespace ramp::util
