/**
 * @file
 * Telemetry under threads: the per-thread counter/histogram slots
 * must merge to exact totals once the writers have joined, whether
 * the writers are raw std::threads (whose state is retired at thread
 * exit) or pool workers (still live at snapshot time). Runs under
 * the `concurrency` ctest label, so the TSan preset covers the
 * owner-write/snapshot-read protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/telemetry.hh"
#include "util/thread_pool.hh"

namespace ramp::telemetry {
namespace {

TEST(TelemetryConcurrency, PoolHammerMergesExactCounts)
{
    Registry::instance().reset();
    const Counter c = counter("tc.pool_counter");
    const Histogram h = histogram("tc.pool_hist", 0.0, 1.0, 8);

    util::ThreadPool pool(4);
    constexpr std::size_t items = 2000;
    constexpr std::uint64_t adds_per_item = 50;
    (void)pool.parallelFor(items, [&](std::size_t i) {
        for (std::uint64_t k = 0; k < adds_per_item; ++k)
            c.add();
        h.add(static_cast<double>(i % 10) / 10.0);
    });

    // parallelFor has joined: the snapshot must be exact.
    const auto snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counter("tc.pool_counter"), items * adds_per_item);
    const auto &hs = snap.histograms.at("tc.pool_hist");
    EXPECT_EQ(hs.total, items);
    std::uint64_t binned = hs.underflow + hs.overflow;
    for (auto n : hs.counts)
        binned += n;
    EXPECT_EQ(binned, items);
}

TEST(TelemetryConcurrency, ExitingThreadsRetireIntoTotals)
{
    Registry::instance().reset();
    const Counter c = counter("tc.retire_counter");
    const Histogram h = histogram("tc.retire_hist", 0.0, 100.0, 10);

    constexpr int threads = 8;
    constexpr std::uint64_t per_thread = 10'000;
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            for (std::uint64_t k = 0; k < per_thread; ++k)
                c.add();
            h.add(static_cast<double>(t));
        });
    }
    for (auto &t : ts)
        t.join();

    const auto snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counter("tc.retire_counter"),
              threads * per_thread);
    EXPECT_EQ(snap.histograms.at("tc.retire_hist").total,
              static_cast<std::uint64_t>(threads));
}

TEST(TelemetryConcurrency, SnapshotsRaceSafelyWithWriters)
{
    Registry::instance().reset();
    const Counter c = counter("tc.race_counter");
    const Histogram h = histogram("tc.race_hist", 0.0, 1.0, 4);

    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto snap = Registry::instance().snapshot();
            // Monotone non-decreasing while writers run.
            (void)snap.counter("tc.race_counter");
        }
    });

    util::ThreadPool pool(4);
    constexpr std::size_t items = 500;
    (void)pool.parallelFor(items, [&](std::size_t i) {
        c.add();
        h.add(static_cast<double>(i % 4) / 4.0);
    });
    stop.store(true, std::memory_order_relaxed);
    snapshotter.join();

    const auto snap = Registry::instance().snapshot();
    // parallelFor counts items itself; our counter must be exact too.
    EXPECT_EQ(snap.counter("tc.race_counter"), items);
    EXPECT_EQ(snap.histograms.at("tc.race_hist").total, items);
}

TEST(TelemetryConcurrency, LateRegistrationWhileSnapshotting)
{
    // New metrics registered (and slots grown) concurrently with
    // snapshots: the registry must neither crash nor lose counts.
    Registry::instance().reset();
    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        while (!stop.load(std::memory_order_relaxed))
            (void)Registry::instance().snapshot();
    });

    util::ThreadPool pool(4);
    (void)pool.parallelFor(64, [&](std::size_t i) {
        // ramp-lint: allow(metrics-manifest): dynamic per-slot name.
        const Counter c = counter("tc.late." +
                                  std::to_string(i % 16));
        c.add();
    });
    stop.store(true, std::memory_order_relaxed);
    snapshotter.join();

    const auto snap = Registry::instance().snapshot();
    std::uint64_t sum = 0;
    for (int k = 0; k < 16; ++k)
        // ramp-lint: allow(metrics-manifest): dynamic per-slot name.
        sum += snap.counter("tc.late." + std::to_string(k));
    EXPECT_EQ(sum, 64u);
}

} // namespace
} // namespace ramp::telemetry
