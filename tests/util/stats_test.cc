/**
 * @file
 * Tests for RunningStat, TimeWeightedStat, and Histogram.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/stats.hh"

namespace ramp::util {
namespace {

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic population example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, StableForShiftedData)
{
    // Welford must keep precision with a large common offset.
    RunningStat s;
    const double offset = 1e9;
    for (double x : {1.0, 2.0, 3.0})
        s.add(offset + x);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(TimeWeightedStat, WeightsByDuration)
{
    TimeWeightedStat s;
    s.add(10.0, 1.0);
    s.add(20.0, 3.0);
    EXPECT_DOUBLE_EQ(s.totalTime(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), (10.0 + 60.0) / 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(TimeWeightedStat, EmptyMeanIsZero)
{
    TimeWeightedStat s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.totalTime(), 0.0);
}

TEST(TimeWeightedStatDeath, RejectsNonPositiveDuration)
{
    TimeWeightedStat s;
    EXPECT_DEATH(s.add(1.0, 0.0), "duration");
    EXPECT_DEATH(s.add(1.0, -1.0), "duration");
}

TEST(TimeWeightedStat, ResetClears)
{
    TimeWeightedStat s;
    s.add(5.0, 2.0);
    s.reset();
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.totalTime(), 0.0);
}

TEST(Histogram, BinEdgesAndCounts)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);

    h.add(1.0);
    h.add(1.9);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0);  // hi is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileOfUniformSamples)
{
    Histogram h(0.0, 1.0, 100);
    Rng rng(7);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmptyReturnsLo)
{
    Histogram h(2.0, 3.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(HistogramDeath, RejectsBadConstruction)
{
    EXPECT_EXIT(Histogram(1.0, 1.0, 4), testing::ExitedWithCode(1),
                "hi > lo");
    EXPECT_EXIT(Histogram(0.0, 1.0, 0), testing::ExitedWithCode(1),
                "at least one bin");
}

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    const std::vector<double> one{7.5};
    EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.5);
    EXPECT_DOUBLE_EQ(percentile(one, 0.5), 7.5);
    EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.5);
    EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.5);
}

TEST(Percentile, TwoSamplesSplitAtTheMedian)
{
    // Nearest-rank: p50 of {a, b} is a. Indexing p * n directly --
    // the bug this helper replaced -- would return b.
    const std::vector<double> two{1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(two, 0.50), 1.0);
    EXPECT_DOUBLE_EQ(percentile(two, 0.51), 2.0);
    EXPECT_DOUBLE_EQ(percentile(two, 0.99), 2.0);
    EXPECT_DOUBLE_EQ(percentile(two, 1.0), 2.0);
}

TEST(Percentile, HundredSamplesMatchTheirRank)
{
    // samples[i] = i + 1, so the nearest-rank pth percentile is
    // exactly ceil(p * 100).
    std::vector<double> xs(100);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = static_cast<double>(i + 1);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.50), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.90), 90.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 99.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.991), 100.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 100.0);
}

TEST(Percentile, ClampsOutOfRangeP)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.5), 3.0);
}

TEST(PercentileDeath, RejectsEmptySamples)
{
    EXPECT_DEATH(percentile({}, 0.5), "empty");
}

} // namespace
} // namespace ramp::util
