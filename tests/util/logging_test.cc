/**
 * @file
 * Tests for the logging helpers: level filtering and message building.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace ramp::util {
namespace {

TEST(Logging, CatConcatenatesMixedTypes)
{
    EXPECT_EQ(cat("x=", 3, ", y=", 2.5), "x=3, y=2.5");
    EXPECT_EQ(cat(), "");
    EXPECT_EQ(cat("solo"), "solo");
}

TEST(Logging, LevelRoundTrips)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(old);
}

TEST(Logging, InformSuppressedBelowInfoLevel)
{
    // inform/warn/debug must not crash at any level; output routing is
    // observable only via stderr, so this exercises the paths.
    const LogLevel old = logLevel();
    for (auto lvl : {LogLevel::Silent, LogLevel::Warn, LogLevel::Info,
                     LogLevel::Debug}) {
        setLogLevel(lvl);
        inform("inform message");
        warn("warn message");
        debug("debug message");
    }
    setLogLevel(old);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant broken"), "panic: invariant broken");
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "fatal: bad config");
}

} // namespace
} // namespace ramp::util
