/**
 * @file
 * Telemetry registry tests: counter/gauge/histogram registration and
 * snapshots, histogram bin edges, the scoped timer, trace-event JSON
 * well-formedness (validated with util's JSON parser), and reset.
 * The multi-threaded merge path is hammered separately in the
 * concurrency-labelled telemetry_concurrency_test.cc.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/json.hh"
#include "util/telemetry.hh"

namespace ramp::telemetry {
namespace {

/** Each test works on a clean registry. */
class Telemetry : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        Registry::instance().reset();
        Registry::instance().setTracing(false);
    }
};

TEST_F(Telemetry, CountersAccumulateAndSnapshot)
{
    const Counter c = counter("t.counter");
    c.add();
    c.add(41);
    const auto snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counter("t.counter"), 42u);
    EXPECT_EQ(snap.counter("t.absent"), 0u);
}

TEST_F(Telemetry, ReRegisteringReturnsTheSameSlot)
{
    counter("t.same").add(1);
    counter("t.same").add(2);
    EXPECT_EQ(Registry::instance().snapshot().counter("t.same"), 3u);
}

TEST_F(Telemetry, DefaultConstructedHandlesAreInert)
{
    const Counter c;
    const Histogram h;
    const Gauge g;
    c.add(5);
    h.add(1.0);
    g.set(2.0); // all no-ops
    const auto snap = Registry::instance().snapshot();
    for (const auto &[name, v] : snap.counters)
        EXPECT_EQ(v, 0u) << name;
}

TEST_F(Telemetry, GaugeLastValueWins)
{
    const Gauge g = gauge("t.gauge");
    g.set(1.5);
    g.set(-3.25);
    const auto snap = Registry::instance().snapshot();
    ASSERT_TRUE(snap.gauges.count("t.gauge"));
    EXPECT_DOUBLE_EQ(snap.gauges.at("t.gauge"), -3.25);
}

TEST_F(Telemetry, HistogramBinEdges)
{
    // 4 bins over [0,4): bin i covers [i, i+1). Boundary samples land
    // in the upper bin (util/stats convention); x < lo underflows,
    // x >= hi overflows.
    const Histogram h = histogram("t.hist", 0.0, 4.0, 4);
    h.add(-0.1); // underflow
    h.add(0.0);  // bin 0 lower edge
    h.add(0.99); // bin 0
    h.add(1.0);  // bin 1 lower edge
    h.add(3.5);  // bin 3
    h.add(4.0);  // overflow (hi is exclusive)
    h.add(7.0);  // overflow

    const auto snap = Registry::instance().snapshot();
    const auto &hs = snap.histograms.at("t.hist");
    EXPECT_DOUBLE_EQ(hs.lo, 0.0);
    EXPECT_DOUBLE_EQ(hs.hi, 4.0);
    ASSERT_EQ(hs.counts.size(), 4u);
    EXPECT_EQ(hs.counts[0], 2u);
    EXPECT_EQ(hs.counts[1], 1u);
    EXPECT_EQ(hs.counts[2], 0u);
    EXPECT_EQ(hs.counts[3], 1u);
    EXPECT_EQ(hs.underflow, 1u);
    EXPECT_EQ(hs.overflow, 2u);
    EXPECT_EQ(hs.total, 7u);
    EXPECT_DOUBLE_EQ(hs.min, -0.1);
    EXPECT_DOUBLE_EQ(hs.max, 7.0);
    EXPECT_NEAR(hs.mean(), (-0.1 + 0.99 + 1.0 + 3.5 + 4.0 + 7.0) / 7,
                1e-12);
}

TEST_F(Telemetry, ScopedTimerRecordsSeconds)
{
    const Histogram h = histogram("t.timer_s", 0.0, 10.0, 10);
    {
        ScopedTimer timer(h);
    }
    const auto snap = Registry::instance().snapshot();
    const auto &hs = snap.histograms.at("t.timer_s");
    EXPECT_EQ(hs.total, 1u);
    EXPECT_GE(hs.min, 0.0);
    EXPECT_LT(hs.max, 10.0); // an empty scope is far under 10 s
}

TEST_F(Telemetry, SpansOnlyCollectedWhenTracingEnabled)
{
    auto &reg = Registry::instance();
    reg.recordSpan("dropped", "test", 0.0, 1.0);
    reg.setTracing(true);
    reg.recordSpan("kept", "test", 0.0, 1.0, {{"k", 2.0}});
    reg.recordInstant("mark", "test");
    reg.setTracing(false);

    std::ostringstream os;
    reg.writeTraceJson(os);
    const auto doc = util::parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << os.str();
    const auto &events = doc->at("traceEvents").array;
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].at("name").str, "kept");
    EXPECT_EQ(events[0].at("ph").str, "X");
    EXPECT_DOUBLE_EQ(events[0].at("dur").number, 1.0);
    EXPECT_DOUBLE_EQ(events[0].at("args").at("k").number, 2.0);
    EXPECT_EQ(events[1].at("name").str, "mark");
    EXPECT_EQ(events[1].at("ph").str, "i");
    EXPECT_EQ(events[1].at("s").str, "t");
}

TEST_F(Telemetry, ScopedTimerEmitsSpanUnderTracing)
{
    auto &reg = Registry::instance();
    reg.setTracing(true);
    const Histogram h = histogram("t.span_s", 0.0, 10.0, 10);
    {
        ScopedTimer timer(h, "work", "test");
        timer.arg("points", 3.0);
    }
    reg.setTracing(false);

    std::ostringstream os;
    reg.writeTraceJson(os);
    const auto doc = util::parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << os.str();
    const auto &events = doc->at("traceEvents").array;
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].at("name").str, "work");
    EXPECT_EQ(events[0].at("cat").str, "test");
    EXPECT_GE(events[0].at("dur").number, 0.0);
    EXPECT_DOUBLE_EQ(events[0].at("args").at("points").number, 3.0);
}

TEST_F(Telemetry, MetricsJsonParsesAndCarriesEveryKind)
{
    counter("t.json_counter").add(7);
    gauge("t.json_gauge").set(1.25);
    histogram("t.json_hist", 0.0, 2.0, 2).add(0.5);

    std::ostringstream os;
    Registry::instance().writeMetricsJson(os);
    const auto doc = util::parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << os.str();
    EXPECT_DOUBLE_EQ(
        doc->at("counters").at("t.json_counter").number, 7.0);
    EXPECT_DOUBLE_EQ(doc->at("gauges").at("t.json_gauge").number,
                     1.25);
    const auto &h = doc->at("histograms").at("t.json_hist");
    EXPECT_DOUBLE_EQ(h.at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(h.at("hi").number, 2.0);
    ASSERT_EQ(h.at("counts").array.size(), 2u);
    EXPECT_DOUBLE_EQ(h.at("counts").array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(h.at("total").number, 1.0);
}

TEST_F(Telemetry, ExitedThreadCountsAreRetained)
{
    const Counter c = counter("t.retired");
    std::thread([&] { c.add(10); }).join();
    c.add(1);
    EXPECT_EQ(Registry::instance().snapshot().counter("t.retired"),
              11u);
}

TEST_F(Telemetry, ResetZeroesEverything)
{
    counter("t.reset_c").add(5);
    const Histogram h = histogram("t.reset_h", 0.0, 1.0, 2);
    h.add(0.5);
    Registry::instance().reset();

    auto snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counter("t.reset_c"), 0u);
    EXPECT_EQ(snap.histograms.at("t.reset_h").total, 0u);

    // Handles stay valid after reset.
    counter("t.reset_c").add(2);
    h.add(0.25);
    snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counter("t.reset_c"), 2u);
    EXPECT_EQ(snap.histograms.at("t.reset_h").total, 1u);
}

TEST_F(Telemetry, ConsumeOutputFlagsStripsOnlyItsFlags)
{
    char prog[] = "prog";
    char keep1[] = "--threads";
    char keep2[] = "4";
    char m[] = "--metrics";
    char mv[] = "/dev/null";
    char t[] = "--trace=/dev/null";
    char keep3[] = "positional";
    char *argv[] = {prog, keep1, keep2, m, mv, t, keep3, nullptr};
    int argc = 7;
    argc = consumeOutputFlags(argc, argv);
    ASSERT_EQ(argc, 4);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--threads");
    EXPECT_STREQ(argv[2], "4");
    EXPECT_STREQ(argv[3], "positional");
    EXPECT_EQ(argv[4], nullptr);
}

TEST(TelemetryDeath, KindClashPanics)
{
    counter("t.clash");
    // ramp-lint: allow(metrics-manifest): deliberate kind clash.
    EXPECT_DEATH(gauge("t.clash"), "t.clash");
}

TEST(TelemetryDeath, HistogramShapeClashPanics)
{
    histogram("t.shape", 0.0, 1.0, 4);
    EXPECT_DEATH(histogram("t.shape", 0.0, 2.0, 4), "t.shape");
}

} // namespace
} // namespace ramp::telemetry
