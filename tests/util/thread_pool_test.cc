/**
 * @file
 * Tests for the work-queue thread pool: full index coverage, serial
 * degeneration, reuse across batches, and exception propagation.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hh"

namespace ramp::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    std::vector<std::atomic<int>> hits(1000);
    (void)pool.parallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);

    // With no workers the loop runs on the caller, in index order.
    std::vector<std::size_t> order;
    (void)pool.parallelFor(64, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, EmptyAndSingletonBatches)
{
    ThreadPool pool(4);
    int calls = 0;
    (void)pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    (void)pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossManyBatches)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int batch = 0; batch < 50; ++batch)
        (void)pool.parallelFor(100, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i));
        });
    EXPECT_EQ(sum.load(), 50L * (99L * 100L / 2L));
}

TEST(ThreadPool, BackToBackBatchesNeverBleedIntoEachOther)
{
    // Regression test: claims must be batch-scoped. A worker waking
    // late between two batches used to capture the old function, then
    // claim from a counter the next batch had already reset -- so it
    // consumed an index of the NEW batch (lost work) while executing
    // the OLD function, whose captured frame (here: `hits`) was
    // already destroyed. Tiny batches in a tight loop maximise the
    // retire/relaunch window; the old code trips this (and TSan)
    // within a few thousand rounds.
    ThreadPool pool(4);
    for (int round = 0; round < 5000; ++round) {
        std::vector<std::atomic<int>> hits(2);
        (void)pool.parallelFor(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "round " << round << " index " << i;
    }
}

TEST(ThreadPool, MoreTasksThanThreadsAndViceVersa)
{
    ThreadPool pool(8);
    std::atomic<int> n{0};
    (void)pool.parallelFor(3, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 3);
    (void)pool.parallelFor(555, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 3 + 555);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      executed.fetch_add(1);
                                      if (i == 42)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The batch still drains fully; the error surfaces afterwards.
    EXPECT_EQ(executed.load(), 100);
    // And the pool stays usable.
    std::atomic<int> ok{0};
    (void)pool.parallelFor(10, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnv)
{
    ::setenv("RAMP_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("RAMP_THREADS", "not_a_number", 1);
    EXPECT_GE(defaultThreadCount(), 1u); // falls back to hardware
    ::unsetenv("RAMP_THREADS");
    const unsigned fallback = defaultThreadCount();
    EXPECT_GE(fallback, 1u);
    // Trailing garbage is rejected, not silently parsed as 4.
    ::setenv("RAMP_THREADS", "4x", 1);
    EXPECT_EQ(defaultThreadCount(), fallback);
    ::unsetenv("RAMP_THREADS");
}

TEST(ThreadPool, ZeroMeansDefault)
{
    ::setenv("RAMP_THREADS", "2", 1);
    ThreadPool pool;
    EXPECT_EQ(pool.threads(), 2u);
    ::unsetenv("RAMP_THREADS");
}

TEST(ThreadPool, NestedSubmissionRunsInline)
{
    // Reentrant submission: a batch item calling parallelFor on the
    // *same* pool must not deadlock against the outer batch. The
    // nested batch runs inline on the submitting thread -- proven by
    // the inner items executing in index order on a plain (unguarded)
    // vector, which a genuinely parallel inner batch could not do.
    ThreadPool pool(4);
    constexpr std::size_t outer_n = 8;
    constexpr std::size_t inner_n = 16;
    std::vector<std::atomic<int>> hits(outer_n * inner_n);
    std::atomic<int> ordered_inner_batches{0};
    (void)pool.parallelFor(outer_n, [&](std::size_t outer) {
        std::vector<std::size_t> order;
        (void)pool.parallelFor(inner_n, [&](std::size_t inner) {
            order.push_back(inner);
            hits[outer * inner_n + inner].fetch_add(1);
        });
        bool in_order = order.size() == inner_n;
        for (std::size_t i = 0; in_order && i < order.size(); ++i)
            in_order = order[i] == i;
        if (in_order)
            ordered_inner_batches.fetch_add(1);
    });
    EXPECT_EQ(ordered_inner_batches.load(),
              static_cast<int>(outer_n));
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedFailuresStayWithTheInnerBatch)
{
    ThreadPool pool(3);
    std::atomic<int> inner_failures{0};
    const BatchReport outer =
        pool.parallelFor(6, [&](std::size_t) {
            const BatchReport inner =
                pool.parallelFor(4, [&](std::size_t i) {
                    if (i == 2)
                        throw RampException(RampError{
                            ErrorCode::InvalidInput, "inner"});
                });
            inner_failures.fetch_add(
                static_cast<int>(inner.failures.size()));
        });
    // Inner RampExceptions surface in the *inner* report; the outer
    // batch itself stays clean.
    EXPECT_TRUE(outer.ok());
    EXPECT_EQ(inner_failures.load(), 6);
}

TEST(ThreadPool, NestedOnADifferentPoolStillParallelises)
{
    // The inline guard is per-pool: submitting to a *different* pool
    // from inside a batch item is an ordinary (parallel) submission.
    // The outer pool is serial so the inner pool still sees one
    // submitter at a time (its usual contract).
    ThreadPool outer_pool(1);
    ThreadPool inner_pool(4);
    std::atomic<int> n{0};
    std::atomic<int> worker_hits{0};
    const auto caller = std::this_thread::get_id();
    (void)outer_pool.parallelFor(4, [&](std::size_t) {
        (void)inner_pool.parallelFor(64, [&](std::size_t) {
            // Slow enough that the inner workers reliably wake and
            // claim items before the caller can drain the batch.
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            n.fetch_add(1);
            if (std::this_thread::get_id() != caller)
                worker_hits.fetch_add(1);
        });
    });
    EXPECT_EQ(n.load(), 4 * 64);
    // At least one inner item should have landed on an inner-pool
    // worker thread, proving the inner batches really went parallel.
    EXPECT_GT(worker_hits.load(), 0);
}

TEST(ThreadPool, ResultsLandByIndex)
{
    ThreadPool pool(4);
    std::vector<double> out(200, -1.0);
    (void)pool.parallelFor(out.size(), [&](std::size_t i) {
        out[i] = static_cast<double>(i) * 0.5;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
}

} // namespace
} // namespace ramp::util
