/**
 * @file
 * Tests for the deterministic RNG: reproducibility, distribution
 * moments, range invariants, and stream independence.
 */

#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "util/random.hh"

namespace ramp::util {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng a(0);
    // xoshiro would be broken by an all-zero state; splitmix expansion
    // must prevent that.
    bool any_nonzero = false;
    for (int i = 0; i < 10; ++i)
        any_nonzero |= a.next() != 0;
    EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng a(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = a.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng a(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += a.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng a(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = a.uniform(-3.0, 7.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng a(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(a.below(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngDeath, BelowZeroPanics)
{
    Rng a(1);
    EXPECT_DEATH(a.below(0), "n == 0");
}

TEST(Rng, ChanceExtremes)
{
    Rng a(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(a.chance(0.0));
        EXPECT_TRUE(a.chance(1.0));
        EXPECT_FALSE(a.chance(-0.5));
        EXPECT_TRUE(a.chance(1.5));
    }
}

TEST(Rng, ChanceFrequencyMatchesP)
{
    Rng a(17);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += a.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanIsOneOverP)
{
    Rng a(19);
    const double p = 0.25;
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const auto g = a.geometric(p);
        ASSERT_GE(g, 1u);
        sum += static_cast<double>(g);
    }
    EXPECT_NEAR(sum / n, 1.0 / p, 0.1);
}

TEST(Rng, GeometricWithPOneIsAlwaysOne)
{
    Rng a(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.geometric(1.0), 1u);
}

TEST(RngDeath, GeometricRejectsBadP)
{
    Rng a(1);
    EXPECT_DEATH(a.geometric(0.0), "geometric");
    EXPECT_DEATH(a.geometric(1.5), "geometric");
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng a(29);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = a.exponential(4.0);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngDeath, ExponentialRejectsNonPositiveMean)
{
    Rng a(1);
    EXPECT_DEATH(a.exponential(0.0), "exponential");
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic)
{
    Rng parent1(99), parent2(99);
    Rng child1 = parent1.fork();
    Rng child2 = parent2.fork();
    // Identical parents fork identical children...
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(child1.next(), child2.next());
    // ...which differ from the parent stream.
    Rng parent3(99);
    Rng child3 = parent3.fork();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += parent3.next() == child3.next();
    EXPECT_LT(equal, 5);
}

} // namespace
} // namespace ramp::util
