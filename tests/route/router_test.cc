/**
 * @file
 * The routing tier: ring placement stability and exclusion walks,
 * the health-state machine, the deterministic retry schedule, and
 * the router end-to-end over in-process backends -- routed replies
 * byte-identical to direct calls, failover off a dead backend,
 * structured no-backend replies when every replica is down, and the
 * router-answered inline verbs (hello, stats, shutdown,
 * cache_append rejection).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "route/router.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/logging.hh"

namespace ramp {
namespace route {
namespace {

// --- Ring -----------------------------------------------------------

TEST(HashRingTest, PlacementIsDeterministic)
{
    HashRing a(4), b(4);
    for (int k = 0; k < 64; ++k) {
        const std::string key = util::cat("key-", k);
        const auto pa = a.pick(key);
        const auto pb = b.pick(key);
        ASSERT_TRUE(pa.has_value());
        ASSERT_TRUE(pb.has_value());
        EXPECT_EQ(*pa, *pb);
        EXPECT_LT(*pa, 4u);
    }
}

TEST(HashRingTest, KeysSpreadAcrossAllBackends)
{
    HashRing ring(4);
    std::set<std::size_t> hit;
    for (int k = 0; k < 256; ++k)
        hit.insert(*ring.pick(util::cat("spread-", k)));
    EXPECT_EQ(hit.size(), 4u);
}

TEST(HashRingTest, ExclusionWalksToAnotherBackend)
{
    HashRing ring(4);
    for (int k = 0; k < 64; ++k) {
        const std::string key = util::cat("walk-", k);
        const std::size_t home = *ring.pick(key);
        const auto alt = ring.pick(
            key, [&](std::size_t b) { return b != home; });
        ASSERT_TRUE(alt.has_value());
        EXPECT_NE(*alt, home);
        // The walk is itself deterministic.
        EXPECT_EQ(*ring.pick(key, [&](std::size_t b) {
                      return b != home;
                  }),
                  *alt);
    }
}

TEST(HashRingTest, AllExcludedIsNulloptNotALoop)
{
    HashRing ring(3);
    EXPECT_FALSE(
        ring.pick("anything", [](std::size_t) { return false; })
            .has_value());
    EXPECT_FALSE(HashRing().pick("anything").has_value());
}

TEST(HashRingTest, LosingABackendOnlyRemapsItsOwnKeys)
{
    HashRing ring(4);
    for (int k = 0; k < 128; ++k) {
        const std::string key = util::cat("stable-", k);
        const std::size_t home = *ring.pick(key);
        const auto survivor = ring.pick(
            key, [](std::size_t b) { return b != 0; });
        ASSERT_TRUE(survivor.has_value());
        if (home != 0) {
            EXPECT_EQ(*survivor, home);
        }
    }
}

// --- Health ---------------------------------------------------------

TEST(HealthTableTest, SuspectStaysRoutableDownDoesNot)
{
    HealthTable table(2, /*fail_threshold=*/2);
    EXPECT_EQ(table.state(0), HealthState::Healthy);
    EXPECT_EQ(table.usableCount(), 2u);

    table.observeFailure(0);
    EXPECT_EQ(table.state(0), HealthState::Suspect);
    EXPECT_TRUE(table.usable(0)); // One failure is a blip.
    EXPECT_EQ(table.usableCount(), 2u);

    table.observeFailure(0);
    EXPECT_EQ(table.state(0), HealthState::Down);
    EXPECT_FALSE(table.usable(0));
    EXPECT_EQ(table.usableCount(), 1u);
    EXPECT_EQ(table.transitionsDown(), 1u);
}

TEST(HealthTableTest, SuccessSnapsBackToHealthy)
{
    HealthTable table(1, 2);
    table.observeFailure(0);
    table.observeFailure(0);
    ASSERT_EQ(table.state(0), HealthState::Down);

    table.observeSuccess(0);
    EXPECT_EQ(table.state(0), HealthState::Healthy);
    EXPECT_TRUE(table.usable(0));
    EXPECT_EQ(table.transitionsUp(), 1u);

    // The failure streak reset: Down needs a fresh streak.
    table.observeFailure(0);
    EXPECT_EQ(table.state(0), HealthState::Suspect);
}

TEST(HealthTableTest, RepeatedEvidenceDoesNotRecountTransitions)
{
    HealthTable table(1, 2);
    table.observeSuccess(0); // Healthy -> Healthy: no transition.
    EXPECT_EQ(table.transitionsUp(), 0u);
    table.observeFailure(0);
    table.observeFailure(0);
    table.observeFailure(0); // Down -> Down: no second transition.
    EXPECT_EQ(table.transitionsDown(), 1u);
}

TEST(HealthTableTest, JsonExportNamesStates)
{
    HealthTable table(2, 2);
    table.observeFailure(1);
    const util::JsonValue doc = table.toJson();
    ASSERT_EQ(doc.array.size(), 2u);
    EXPECT_EQ(doc.array[0].find("state")->str, "healthy");
    EXPECT_EQ(doc.array[1].find("state")->str, "suspect");
    EXPECT_EQ(doc.array[1].find("consecutive_failures")->number,
              1.0);
}

// --- Retry ----------------------------------------------------------

TEST(RetryPolicyTest, DelayIsDeterministicAndJitterBounded)
{
    RetryPolicy policy;
    policy.backoff_ms = 50;
    policy.seed = 42;
    for (int retry = 1; retry <= 4; ++retry) {
        const int base = 50 << (retry - 1);
        const int d1 = policy.delayMs(123, retry);
        const int d2 = policy.delayMs(123, retry);
        EXPECT_EQ(d1, d2); // Same (seed, key, retry) -> same delay.
        EXPECT_GE(d1, base / 2);
        EXPECT_LE(d1, base);
    }
    // Different keys jitter differently somewhere in the schedule.
    bool differs = false;
    for (int retry = 1; retry <= 6 && !differs; ++retry)
        differs = policy.delayMs(1, retry) != policy.delayMs(2, retry);
    EXPECT_TRUE(differs);
}

TEST(RetryPolicyTest, BackoffIsCappedNotUnbounded)
{
    RetryPolicy policy;
    policy.backoff_ms = 100;
    policy.backoff_max_ms = 400;
    for (int retry = 1; retry <= 30; ++retry) {
        const int d = policy.delayMs(7, retry);
        EXPECT_GE(d, 50);
        EXPECT_LE(d, 400);
    }
}

TEST(RetryPolicyTest, TransientClassification)
{
    EXPECT_TRUE(RetryPolicy::transient(util::ErrorCode::Timeout));
    EXPECT_TRUE(RetryPolicy::transient(util::ErrorCode::IoFailure));
    EXPECT_TRUE(RetryPolicy::transient(util::ErrorCode::Overloaded));
    EXPECT_TRUE(
        RetryPolicy::transient(util::ErrorCode::Unavailable));
    EXPECT_FALSE(
        RetryPolicy::transient(util::ErrorCode::InvalidInput));
    EXPECT_FALSE(
        RetryPolicy::transient(util::ErrorCode::NonConvergence));
    EXPECT_FALSE(
        RetryPolicy::transient(util::ErrorCode::CorruptRecord));
}

TEST(RetryPolicyTest, AttemptsIsRetriesPlusOne)
{
    RetryPolicy policy;
    policy.retries = 0;
    EXPECT_EQ(policy.attempts(), 1);
    policy.retries = 3;
    EXPECT_EQ(policy.attempts(), 4);
}

// --- Route keys -----------------------------------------------------

TEST(RouteKeyTest, ChipVerbsShardByChipOnly)
{
    serve::Request report;
    report.type = serve::RequestType::ReportUsage;
    report.chip = "chip-7";
    report.app = "appA";
    serve::Request remaining;
    remaining.type = serve::RequestType::RemainingLifetime;
    remaining.chip = "chip-7";
    remaining.app = "appB"; // Different app, same chip home.
    EXPECT_EQ(Router::routeKey(report), Router::routeKey(remaining));

    remaining.chip = "chip-8";
    EXPECT_NE(Router::routeKey(report),
              Router::routeKey(remaining));
}

TEST(RouteKeyTest, EvaluateShardsByPointSelectionsBySpace)
{
    serve::Request eval;
    eval.type = serve::RequestType::Evaluate;
    eval.app = "app";
    eval.space = drm::AdaptationSpace::Dvs;
    eval.config = 3;
    serve::Request eval2 = eval;
    eval2.config = 4;
    EXPECT_NE(Router::routeKey(eval), Router::routeKey(eval2));

    serve::Request sel;
    sel.type = serve::RequestType::SelectDrm;
    sel.app = "app";
    sel.space = drm::AdaptationSpace::Dvs;
    serve::Request sel2 = sel;
    sel2.type = serve::RequestType::SelectDtm;
    // Both selections of a space share a home (shared memo).
    EXPECT_EQ(Router::routeKey(sel), Router::routeKey(sel2));
}

// --- Router end-to-end ----------------------------------------------

class RouterTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        serve::ServiceOptions opts;
        opts.cache_path = "";
        opts.threads = 2;
        opts.max_apps = 1;
        opts.eval_params.warmup_uops = 40'000;
        opts.eval_params.measure_uops = 60'000;
        service_ =
            std::make_unique<serve::EvaluationService>(opts);
        service_->ensureReady();
        app_ = service_->apps()[0].name;
    }

    static void TearDownTestSuite() { service_.reset(); }

    /** Two in-process backends over the shared service plus a
     *  router fronting them. */
    struct Cluster
    {
        std::vector<std::unique_ptr<serve::Server>> backends;
        std::unique_ptr<Router> router;
    };

    static Cluster
    makeCluster(std::size_t n, RouterOptions opts = {})
    {
        Cluster cluster;
        for (std::size_t b = 0; b < n; ++b) {
            cluster.backends.push_back(
                std::make_unique<serve::Server>(
                    *service_, serve::ServerOptions{}));
            EXPECT_TRUE(cluster.backends.back()->start().ok());
            opts.backends.push_back(
                cluster.backends.back()->port());
        }
        cluster.router = std::make_unique<Router>(opts);
        EXPECT_TRUE(cluster.router->start().ok());
        return cluster;
    }

    static serve::Session
    openSession(const Router &router)
    {
        serve::ClientOptions opts;
        opts.port = router.port();
        auto session = serve::Session::open(opts);
        EXPECT_TRUE(session.ok()) << session.error().str();
        return std::move(session.value());
    }

    static std::string
    directEvaluate(std::size_t config)
    {
        serve::Request req;
        req.version = 2; // What a Session stamps after negotiation.
        req.type = serve::RequestType::Evaluate;
        req.app = app_;
        req.space = drm::AdaptationSpace::Dvs;
        req.config = config;
        auto op = service_->evaluatePoint(
            app_, drm::AdaptationSpace::Dvs, config);
        EXPECT_TRUE(op.ok()) << op.error().str();
        auto encoded = service_->encodeEvaluation(req, op.value());
        EXPECT_TRUE(encoded.ok());
        return util::writeJson(encoded.value());
    }

    static std::unique_ptr<serve::EvaluationService> service_;
    static std::string app_;
};

std::unique_ptr<serve::EvaluationService> RouterTest::service_;
std::string RouterTest::app_;

TEST_F(RouterTest, RoutedRepliesAreByteIdenticalToDirectPath)
{
    Cluster cluster = makeCluster(2);
    serve::Session session = openSession(*cluster.router);
    EXPECT_EQ(session.version(), serve::protocol_version_max);
    for (std::size_t config : {0u, 3u, 7u}) {
        auto routed = session.evaluate(
            app_, drm::AdaptationSpace::Dvs, config);
        ASSERT_TRUE(routed.ok()) << routed.error().str();
        EXPECT_EQ(util::writeJson(routed.value()),
                  directEvaluate(config));
    }
}

TEST_F(RouterTest, SameKeyAlwaysLandsOnItsShardHome)
{
    Cluster cluster = makeCluster(2);
    serve::Session session = openSession(*cluster.router);

    // Prime one point through the router, then hammer it: every
    // repeat must hit the same backend's cache (cache hits count on
    // exactly one backend).
    serve::Request probe;
    probe.type = serve::RequestType::Evaluate;
    probe.app = app_;
    probe.space = drm::AdaptationSpace::Dvs;
    probe.config = 1;
    const auto home =
        cluster.router->ring().pick(Router::routeKey(probe));
    ASSERT_TRUE(home.has_value());
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(session
                        .evaluate(app_,
                                  drm::AdaptationSpace::Dvs, 1)
                        .ok());
    // The non-home backend never saw an evaluate: evaluates run
    // through its batcher, and its batch count stays zero (our own
    // stats probe here is answered inline).
    const std::size_t other = 1 - *home;
    serve::ClientOptions direct;
    direct.port = cluster.backends[other]->port();
    auto client = serve::Client::connect(direct);
    ASSERT_TRUE(client.ok());
    auto stats = client.value().stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(
        stats.value().find("server")->find("batches")->number,
        0.0);
}

TEST_F(RouterTest, FailoverReroutesOffADeadBackend)
{
    RouterOptions opts;
    opts.retry.retries = 2;
    opts.retry.backoff_ms = 10;
    opts.probe_interval_ms = 60'000; // Passive observation only.
    Cluster cluster = makeCluster(2, opts);

    // Kill the shard home of the point we are about to ask for.
    serve::Request probe;
    probe.type = serve::RequestType::Evaluate;
    probe.app = app_;
    probe.space = drm::AdaptationSpace::Dvs;
    probe.config = 2;
    const std::size_t home =
        *cluster.router->ring().pick(Router::routeKey(probe));
    cluster.backends[home]->stop();

    serve::Session session = openSession(*cluster.router);
    auto routed =
        session.evaluate(app_, drm::AdaptationSpace::Dvs, 2);
    ASSERT_TRUE(routed.ok()) << routed.error().str();
    EXPECT_EQ(util::writeJson(routed.value()), directEvaluate(2));
    EXPECT_GE(cluster.router->health().transitionsDown(), 0u);
    EXPECT_NE(cluster.router->health().state(home),
              HealthState::Healthy);
}

TEST_F(RouterTest, AllBackendsDownIsAStructuredNoBackendReply)
{
    RouterOptions opts;
    opts.retry.retries = 1;
    opts.retry.backoff_ms = 5;
    opts.probe_interval_ms = 60'000;
    opts.connect_timeout_ms = 200;
    Cluster cluster = makeCluster(2, opts);
    for (auto &backend : cluster.backends)
        backend->stop();

    // Hello is answered by the router itself, so the session opens
    // even with every backend dead...
    serve::Session session = openSession(*cluster.router);
    // ...but forwarded work gets the structured no-backend error,
    // not a hang or a silent close.
    auto routed =
        session.evaluate(app_, drm::AdaptationSpace::Dvs, 0);
    ASSERT_FALSE(routed.ok());
    EXPECT_EQ(routed.error().code, util::ErrorCode::Unavailable);
    EXPECT_NE(routed.error().message.find(serve::err_no_backend),
              std::string::npos)
        << routed.error().str();
}

TEST_F(RouterTest, StatsAreAnsweredByTheRouterItself)
{
    Cluster cluster = makeCluster(2);
    serve::Session session = openSession(*cluster.router);
    auto stats = session.stats();
    ASSERT_TRUE(stats.ok()) << stats.error().str();
    const util::JsonValue *router_flag =
        stats.value().find("router");
    ASSERT_NE(router_flag, nullptr);
    EXPECT_TRUE(router_flag->boolean);
    EXPECT_EQ(stats.value().find("backends_total")->number, 2.0);
    ASSERT_NE(stats.value().find("backends"), nullptr);
    EXPECT_EQ(stats.value().find("backends")->array.size(), 2u);
}

TEST_F(RouterTest, CacheAppendFromAClientIsRejected)
{
    Cluster cluster = makeCluster(2);
    serve::ClientOptions opts;
    opts.port = cluster.router->port();
    auto client = serve::Client::connect(opts);
    ASSERT_TRUE(client.ok());

    serve::Request req;
    req.version = 2;
    req.type = serve::RequestType::CacheAppend;
    req.key = "k";
    req.record = "k v";
    req.epoch = 1;
    auto reply = client.value().call(std::move(req));
    ASSERT_TRUE(reply.ok()) << reply.error().str();
    ASSERT_FALSE(reply.value().ok);
    EXPECT_EQ(reply.value().error_code, serve::err_bad_request);
}

TEST_F(RouterTest, ShutdownDrainsTheRouterAndRejectsNewWork)
{
    Cluster cluster = makeCluster(2);
    serve::Session admin = openSession(*cluster.router);
    ASSERT_TRUE(admin.requestShutdown().ok());
    EXPECT_TRUE(cluster.router->draining());

    // New work is refused: either the structured drain code
    // (Unavailable via err_shutting_down) or -- the reader having
    // already hung up -- a closed connection. Never an answer.
    auto late =
        admin.evaluate(app_, drm::AdaptationSpace::Dvs, 0);
    ASSERT_FALSE(late.ok())
        << "drained router accepted new work";
    EXPECT_TRUE(late.error().code == util::ErrorCode::Unavailable ||
                late.error().code == util::ErrorCode::IoFailure)
        << late.error().str();
    cluster.router->wait();
}

TEST_F(RouterTest, ProbesRecoverARestartedBackend)
{
    RouterOptions opts;
    opts.probe_interval_ms = 50;
    opts.fail_threshold = 1; // One failed probe downs it.
    Cluster cluster = makeCluster(2, opts);

    const std::uint16_t port = cluster.backends[1]->port();
    cluster.backends[1]->stop();
    // The probe thread must mark it Down...
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (cluster.router->health().state(1) != HealthState::Down &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    ASSERT_EQ(cluster.router->health().state(1),
              HealthState::Down);

    // ...and bring it back once a daemon answers there again.
    serve::ServerOptions bopts;
    bopts.port = port;
    cluster.backends[1] = std::make_unique<serve::Server>(
        *service_, bopts);
    ASSERT_TRUE(cluster.backends[1]->start().ok());
    while (cluster.router->health().state(1) !=
               HealthState::Healthy &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    EXPECT_EQ(cluster.router->health().state(1),
              HealthState::Healthy);
    EXPECT_GE(cluster.router->health().transitionsUp(), 1u);
    EXPECT_GE(cluster.router->health().transitionsDown(), 1u);
}

} // namespace
} // namespace route
} // namespace ramp
