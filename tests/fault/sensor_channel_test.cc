/**
 * @file
 * Tests for SensorChannel: plausibility gating, median-of-3
 * despiking, stuck-at detection, last-known-good fallback, and the
 * fail-safe latch (engage after K consecutive invalid readings,
 * release after enough valid ones).
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fault/sensor_channel.hh"

namespace ramp::fault {
namespace {

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

SensorChannel::Params
tempParams()
{
    SensorChannel::Params p;
    p.label = "test.temp";
    p.min_valid = 250.0;
    p.max_valid = 1000.0;
    p.spike_threshold = 40.0;
    p.failsafe_after = 3;
    p.release_after = 2;
    p.stuck_after = 0;
    return p;
}

TEST(SensorChannel, CleanReadingsPassThroughBitExact)
{
    SensorChannel chan(tempParams());
    for (double raw : {300.0, 305.5, 299.25, 310.0, 308.125}) {
        const auto r = chan.observe(raw);
        EXPECT_EQ(r.value, raw);
        EXPECT_TRUE(r.valid);
        EXPECT_FALSE(r.despiked);
        EXPECT_FALSE(r.fallback);
        EXPECT_FALSE(r.failsafe);
    }
    const auto s = chan.stats();
    EXPECT_EQ(s.observations, 5u);
    EXPECT_EQ(s.invalid, 0u);
    EXPECT_EQ(s.despiked, 0u);
    EXPECT_EQ(s.fallbacks, 0u);
    EXPECT_EQ(s.engages, 0u);
}

TEST(SensorChannel, ImplausibleReadingsFallBackToLastGood)
{
    SensorChannel chan(tempParams());
    EXPECT_TRUE(chan.observe(300.0).valid);
    for (double raw : {nan_v,
                       std::numeric_limits<double>::infinity(),
                       200.0,   // below min_valid
                       2000.0}) // above max_valid
    {
        const auto r = chan.observe(raw);
        EXPECT_FALSE(r.valid);
        EXPECT_TRUE(r.fallback);
        EXPECT_EQ(r.value, 300.0);
    }
    EXPECT_EQ(chan.stats().invalid, 4u);
    EXPECT_EQ(chan.stats().fallbacks, 4u);
}

TEST(SensorChannel, MidRangePlaceholderBeforeAnyGoodReading)
{
    SensorChannel chan(tempParams());
    const auto r = chan.observe(nan_v);
    EXPECT_FALSE(r.valid);
    EXPECT_FALSE(r.fallback); // nothing to fall back to
    EXPECT_DOUBLE_EQ(r.value, 0.5 * (250.0 + 1000.0));
}

TEST(SensorChannel, DespikesLoneOutlierToMedian)
{
    auto p = tempParams();
    p.spike_threshold = 5.0;
    SensorChannel chan(p);
    EXPECT_EQ(chan.observe(300.0).value, 300.0);
    EXPECT_EQ(chan.observe(301.0).value, 301.0);
    // 400 is plausible (in range) but 99 K off the recent median:
    // physically impossible between intervals, so it is replaced.
    const auto spike = chan.observe(400.0);
    EXPECT_TRUE(spike.valid);
    EXPECT_TRUE(spike.despiked);
    EXPECT_EQ(spike.value, 301.0); // median3(300, 301, 400)
    // The next ordinary reading passes untouched.
    const auto after = chan.observe(302.0);
    EXPECT_FALSE(after.despiked);
    EXPECT_EQ(after.value, 302.0);
    EXPECT_EQ(chan.stats().despiked, 1u);
}

TEST(SensorChannel, ZeroThresholdDisablesDespiking)
{
    auto p = tempParams();
    p.spike_threshold = 0.0;
    SensorChannel chan(p);
    chan.observe(300.0);
    chan.observe(301.0);
    const auto r = chan.observe(400.0);
    EXPECT_FALSE(r.despiked);
    EXPECT_EQ(r.value, 400.0);
}

TEST(SensorChannel, DetectsStuckSensor)
{
    auto p = tempParams();
    p.stuck_after = 3;
    SensorChannel chan(p);
    // A genuine sensor never repeats bit-identically for long; after
    // stuck_after identical readings the channel stops trusting them.
    EXPECT_TRUE(chan.observe(300.0).valid);
    EXPECT_TRUE(chan.observe(300.0).valid); // run = 1
    EXPECT_TRUE(chan.observe(300.0).valid); // run = 2
    const auto r = chan.observe(300.0);     // run = 3 -> stuck
    EXPECT_FALSE(r.valid);
    EXPECT_TRUE(r.fallback);
    EXPECT_EQ(chan.stats().stuck, 1u);
    // A changed reading clears the run.
    EXPECT_TRUE(chan.observe(301.0).valid);
}

TEST(SensorChannel, FailsafeEngagesAfterKInvalidAndReleases)
{
    SensorChannel chan(tempParams()); // engage after 3, release after 2
    EXPECT_TRUE(chan.observe(300.0).valid);
    EXPECT_FALSE(chan.observe(nan_v).failsafe);
    EXPECT_FALSE(chan.observe(nan_v).failsafe);
    const auto third = chan.observe(nan_v);
    EXPECT_TRUE(third.failsafe);
    EXPECT_EQ(third.value, 300.0); // still last-known-good
    EXPECT_EQ(chan.stats().engages, 1u);
    EXPECT_TRUE(chan.failsafe());

    // One valid reading is not enough to release...
    EXPECT_TRUE(chan.observe(301.0).failsafe);
    // ...the second is.
    EXPECT_FALSE(chan.observe(302.0).failsafe);
    EXPECT_FALSE(chan.failsafe());
    EXPECT_EQ(chan.stats().releases, 1u);
}

TEST(SensorChannel, AlternatingValidInvalidNeverEngages)
{
    // Hysteresis: the engage counter tracks *consecutive* invalid
    // readings, so an intermittent sensor degrades (fallback per bad
    // reading) without ever tripping the fail-safe.
    SensorChannel chan(tempParams());
    for (int i = 0; i < 10; ++i) {
        const auto good = chan.observe(300.0 + i);
        EXPECT_TRUE(good.valid);
        EXPECT_FALSE(good.failsafe);
        const auto bad = chan.observe(nan_v);
        EXPECT_FALSE(bad.valid);
        EXPECT_FALSE(bad.failsafe);
        EXPECT_EQ(bad.value, 300.0 + i);
    }
    EXPECT_EQ(chan.stats().invalid, 10u);
    EXPECT_EQ(chan.stats().engages, 0u);
}

TEST(SensorChannel, DeadFromStartStillReachesFailsafe)
{
    SensorChannel chan(tempParams());
    for (int i = 0; i < 2; ++i)
        EXPECT_FALSE(chan.observe(nan_v).failsafe);
    const auto r = chan.observe(nan_v);
    EXPECT_TRUE(r.failsafe);
    EXPECT_TRUE(std::isfinite(r.value)); // placeholder, never NaN
    EXPECT_EQ(chan.stats().engages, 1u);
    EXPECT_EQ(chan.stats().fallbacks, 0u);
}

} // namespace
} // namespace ramp::fault
