/**
 * @file
 * Tests for the fault-injection core: strict plan parsing, plan
 * installation, the scheduling-independent hash decisions, and the
 * per-stream SensorFaulter's determinism.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp::fault {
namespace {

using util::ErrorCode;

/** Clears any installed plan around each test (process-global). */
class FaultPlanGuard : public testing::Test
{
  protected:
    void SetUp() override { clearFaultPlan(); }
    void TearDown() override { clearFaultPlan(); }
};

TEST(FaultKindNames, RoundTrip)
{
    for (std::size_t i = 0; i < num_fault_kinds; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        const auto back = faultKindFromName(faultKindName(kind));
        ASSERT_TRUE(back.has_value()) << faultKindName(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(faultKindFromName("sensor-gremlin").has_value());
    EXPECT_FALSE(faultKindFromName("").has_value());
}

TEST(ParseFaultPlan, EmptyObjectIsCleanPlan)
{
    const auto plan = parseFaultPlan("{}");
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().seed, 1u);
    EXPECT_FALSE(plan.value().any());
}

TEST(ParseFaultPlan, ParsesSeedAndSpecs)
{
    const auto plan = parseFaultPlan(
        R"({"seed": 7, "faults": {
             "sensor-noise": {"rate": 0.25, "sigma": 0.1},
             "sensor-stuck": {"rate": 0.1, "hold": 5},
             "sensor-delay": {"rate": 0.2, "delay": 4},
             "cache-corrupt": {"rate": 0.5, "magnitude": 0.2}}})");
    ASSERT_TRUE(plan.ok());
    const FaultPlan &p = plan.value();
    EXPECT_EQ(p.seed, 7u);
    EXPECT_TRUE(p.any());
    EXPECT_TRUE(p.enabled(FaultKind::SensorNoise));
    EXPECT_DOUBLE_EQ(p.spec(FaultKind::SensorNoise).rate, 0.25);
    EXPECT_DOUBLE_EQ(p.spec(FaultKind::SensorNoise).sigma, 0.1);
    EXPECT_EQ(p.spec(FaultKind::SensorStuck).hold, 5u);
    EXPECT_EQ(p.spec(FaultKind::SensorDelay).delay, 4u);
    EXPECT_DOUBLE_EQ(p.spec(FaultKind::CacheCorrupt).magnitude, 0.2);
    EXPECT_FALSE(p.enabled(FaultKind::PowerNan));
    EXPECT_FALSE(p.enabled(FaultKind::NonConvergence));
}

TEST(ParseFaultPlan, RejectsMalformedInput)
{
    // Strictness: every shape error is InvalidInput, never a silent
    // default -- a typo'd campaign must not quietly run clean.
    const char *bad[] = {
        "not json at all",
        "[1, 2]",
        R"({"sede": 3})",
        R"({"seed": -1})",
        R"({"seed": 1.5})",
        R"({"faults": [1]})",
        R"({"faults": {"sensor-gremlin": {"rate": 0.1}}})",
        R"({"faults": {"sensor-noise": 0.1}})",
        R"({"faults": {"sensor-noise": {"rat": 0.1}}})",
        R"({"faults": {"sensor-noise": {"rate": 1.5}}})",
        R"({"faults": {"sensor-noise": {"rate": -0.1}}})",
        R"({"faults": {"sensor-noise": {"rate": "hot"}}})",
        R"({"faults": {"sensor-noise": {"sigma": -1}}})",
        R"({"faults": {"sensor-stuck": {"hold": 0}}})",
        R"({"faults": {"sensor-delay": {"delay": 2.5}}})",
        R"({"faults": {"conn-slow": {"delay-ms": -1}}})",
        R"({"faults": {"conn-slow": {"delay-ms": "soon"}}})",
    };
    for (const char *text : bad) {
        const auto plan = parseFaultPlan(text);
        ASSERT_FALSE(plan.ok()) << text;
        EXPECT_EQ(plan.error().code, ErrorCode::InvalidInput) << text;
    }
}

TEST(LoadFaultPlan, InlineMatchesFile)
{
    const std::string text =
        R"({"seed": 11, "faults": {"power-nan": {"rate": 0.3}}})";
    const std::string path =
        testing::TempDir() + "ramp_fault_plan_test.json";
    {
        std::ofstream out(path);
        out << text;
    }
    const auto inline_plan = loadFaultPlan(text);
    const auto file_plan = loadFaultPlan(path);
    ASSERT_TRUE(inline_plan.ok());
    ASSERT_TRUE(file_plan.ok());
    EXPECT_EQ(inline_plan.value().seed, file_plan.value().seed);
    EXPECT_DOUBLE_EQ(
        inline_plan.value().spec(FaultKind::PowerNan).rate,
        file_plan.value().spec(FaultKind::PowerNan).rate);
    std::remove(path.c_str());
}

TEST(LoadFaultPlan, MissingFileIsIoFailure)
{
    const auto plan =
        loadFaultPlan(testing::TempDir() + "no_such_plan_xyz.json");
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.error().code, ErrorCode::IoFailure);
}

TEST_F(FaultPlanGuard, InstallAndClear)
{
    EXPECT_EQ(activeFaultPlan(), nullptr);
    FaultPlan plan;
    plan.seed = 42;
    plan.spec(FaultKind::SensorDropout).rate = 0.5;
    installFaultPlan(plan);
    ASSERT_NE(activeFaultPlan(), nullptr);
    EXPECT_EQ(activeFaultPlan()->seed, 42u);
    EXPECT_TRUE(activeFaultPlan()->enabled(FaultKind::SensorDropout));
    clearFaultPlan();
    EXPECT_EQ(activeFaultPlan(), nullptr);
}

TEST(HashChance, EdgeRatesAndDeterminism)
{
    const std::uint64_t h = faultHash(1, "some-site");
    EXPECT_FALSE(hashChance(h, 0.0));
    EXPECT_TRUE(hashChance(h, 1.0));
    // Pure function of (hash, rate).
    EXPECT_EQ(hashChance(h, 0.3), hashChance(h, 0.3));
}

TEST(HashChance, RateIsRespectedAcrossSites)
{
    std::size_t hits = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto h =
            faultHash(7, util::cat("site-", i));
        hits += hashChance(h, 0.3);
    }
    // Binomial(1000, 0.3): far outside [240, 360] means bias.
    EXPECT_GT(hits, 240u);
    EXPECT_LT(hits, 360u);
}

TEST(FaultHash, DiscriminatesPayloads)
{
    EXPECT_NE(faultHash(1, "a"), faultHash(1, "b"));
    EXPECT_NE(faultHash(1, "a"), faultHash(2, "a"));
    EXPECT_NE(faultHash(1, 3.0), faultHash(1, 4.0));
    EXPECT_EQ(faultHash(1, "a"), faultHash(1, "a"));
}

TEST(CorruptLine, DeterministicAndNeverIdentity)
{
    FaultPlan plan;
    plan.seed = 3;
    const std::vector<std::string> lines = {
        "2 some_key 1 2 3 4 5 6 7 8",
        "2 another_key 0.5 0.25 nine ten",
        "2 k 1",
    };
    for (const auto &line : lines) {
        const auto a = corruptLine(plan, line);
        const auto b = corruptLine(plan, line);
        EXPECT_EQ(a, b) << line;
        EXPECT_NE(a, line) << line;
    }
}

TEST_F(FaultPlanGuard, CorruptCacheRecordFollowsRate)
{
    FaultPlan plan;
    plan.seed = 5;
    EXPECT_FALSE(corruptCacheRecord(plan, "key")); // rate 0
    plan.spec(FaultKind::CacheCorrupt).rate = 1.0;
    EXPECT_TRUE(corruptCacheRecord(plan, "key"));
    // Same (plan, key) -> same decision at any call order.
    plan.spec(FaultKind::CacheCorrupt).rate = 0.5;
    const bool first = corruptCacheRecord(plan, "stable-key");
    EXPECT_EQ(corruptCacheRecord(plan, "stable-key"), first);
}

TEST_F(FaultPlanGuard, ForceNonConvergenceFollowsRate)
{
    FaultPlan plan;
    plan.seed = 5;
    EXPECT_FALSE(forceNonConvergence(plan, 123));
    plan.spec(FaultKind::NonConvergence).rate = 1.0;
    EXPECT_TRUE(forceNonConvergence(plan, 123));
    plan.spec(FaultKind::NonConvergence).rate = 0.5;
    const bool first = forceNonConvergence(plan, 99);
    EXPECT_EQ(forceNonConvergence(plan, 99), first);
}

TEST(SensorFaulter, CleanPlanIsIdentity)
{
    SensorFaulter faulter(FaultPlan{}, "test.stream", 100.0);
    for (double v : {350.0, 351.25, 0.0, -3.0, 1e6}) {
        EXPECT_EQ(faulter.apply(v), v);
    }
    EXPECT_EQ(faulter.tally().total(), 0u);
}

TEST(SensorFaulter, DeterministicPerStream)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.spec(FaultKind::SensorNoise).rate = 0.5;
    plan.spec(FaultKind::SensorDropout).rate = 0.2;

    SensorFaulter a(plan, "dtm.temp", 370.0);
    SensorFaulter b(plan, "dtm.temp", 370.0);
    SensorFaulter other(plan, "drm.fit", 370.0);
    bool streams_differ = false;
    for (int i = 0; i < 200; ++i) {
        const double clean = 350.0 + 0.1 * i;
        const double va = a.apply(clean);
        const double vb = b.apply(clean);
        // Identical stream identity -> bit-identical faulted sequence
        // (NaN compares unequal, so compare representations).
        EXPECT_TRUE(va == vb || (std::isnan(va) && std::isnan(vb)))
            << "reading " << i;
        const double vo = other.apply(clean);
        if (!(vo == va || (std::isnan(vo) && std::isnan(va))))
            streams_differ = true;
    }
    EXPECT_EQ(a.tally().total(), b.tally().total());
    // Different stream names decorrelate the sequences.
    EXPECT_TRUE(streams_differ);
}

TEST(SensorFaulter, DropoutAtRateOneIsAllNan)
{
    FaultPlan plan;
    plan.spec(FaultKind::SensorDropout).rate = 1.0;
    SensorFaulter faulter(plan, "s", 1.0);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(std::isnan(faulter.apply(300.0 + i)));
    EXPECT_EQ(faulter.tally().dropout, 20u);
    EXPECT_EQ(faulter.tally().total(), 20u);
}

TEST(SensorFaulter, DelayReplaysCleanHistory)
{
    FaultPlan plan;
    plan.spec(FaultKind::SensorDelay).rate = 1.0;
    plan.spec(FaultKind::SensorDelay).delay = 2;
    SensorFaulter faulter(plan, "s", 1.0);
    std::vector<double> in, out;
    for (int i = 0; i < 10; ++i) {
        in.push_back(300.0 + i);
        out.push_back(faulter.apply(in.back()));
    }
    // Too little history at first: the reading passes through.
    EXPECT_EQ(out[0], in[0]);
    EXPECT_EQ(out[1], in[1]);
    // From then on every output is the reading from 2 observations
    // ago -- genuine history, not previously-faulted output.
    for (std::size_t i = 2; i < in.size(); ++i)
        EXPECT_EQ(out[i], in[i - 2]) << "reading " << i;
    EXPECT_EQ(faulter.tally().delay, 8u);
}

TEST(SensorFaulter, QuantizeSnapsToGrid)
{
    FaultPlan plan;
    plan.spec(FaultKind::SensorQuantize).rate = 1.0;
    plan.spec(FaultKind::SensorQuantize).step = 0.05;
    SensorFaulter faulter(plan, "s", 100.0); // grid = 5.0
    for (double v : {351.2, 348.9, 350.0, 352.5001}) {
        const double q = faulter.apply(v);
        EXPECT_DOUBLE_EQ(q, std::round(v / 5.0) * 5.0);
    }
    EXPECT_EQ(faulter.tally().quantize, 4u);
}

TEST(SensorFaulter, StuckLatchRepeatsLastGenuineReading)
{
    FaultPlan plan;
    plan.spec(FaultKind::SensorStuck).rate = 1.0;
    plan.spec(FaultKind::SensorStuck).hold = 3;
    SensorFaulter faulter(plan, "s", 1.0);
    // Reading 0 latches (and is itself genuine); readings 1..3 repeat
    // it bit-for-bit; reading 4 re-latches and is genuine again.
    EXPECT_EQ(faulter.apply(300.0), 300.0);
    EXPECT_EQ(faulter.apply(301.0), 300.0);
    EXPECT_EQ(faulter.apply(302.0), 300.0);
    EXPECT_EQ(faulter.apply(303.0), 300.0);
    EXPECT_EQ(faulter.apply(304.0), 304.0);
    EXPECT_EQ(faulter.tally().stuck, 3u);
}

TEST(ParseFaultPlan, ParsesConnectionKinds)
{
    const auto plan = parseFaultPlan(
        R"({"faults": {
             "conn-drop": {"rate": 0.2},
             "conn-slow": {"rate": 0.5, "delay-ms": 35.5}}})");
    ASSERT_TRUE(plan.ok()) << plan.error().str();
    EXPECT_DOUBLE_EQ(
        plan.value().spec(FaultKind::ConnDrop).rate, 0.2);
    EXPECT_DOUBLE_EQ(
        plan.value().spec(FaultKind::ConnSlow).rate, 0.5);
    EXPECT_DOUBLE_EQ(
        plan.value().spec(FaultKind::ConnSlow).delay_ms, 35.5);
}

TEST_F(FaultPlanGuard, DropConnectionFollowsRate)
{
    FaultPlan plan;
    plan.seed = 5;
    EXPECT_FALSE(dropConnection(plan, "req#0")); // rate 0
    plan.spec(FaultKind::ConnDrop).rate = 1.0;
    EXPECT_TRUE(dropConnection(plan, "req#0"));
    // Pure hash of (seed, key): same decision at any call order,
    // different keys decorrelated.
    plan.spec(FaultKind::ConnDrop).rate = 0.5;
    const bool first = dropConnection(plan, "stable#7");
    EXPECT_EQ(dropConnection(plan, "stable#7"), first);
    int dropped = 0;
    for (int i = 0; i < 1000; ++i)
        if (dropConnection(plan,
                           "req#" + std::to_string(i)))
            ++dropped;
    EXPECT_GT(dropped, 400);
    EXPECT_LT(dropped, 600);
}

TEST_F(FaultPlanGuard, SlowReplyReturnsConfiguredDelay)
{
    FaultPlan plan;
    plan.seed = 9;
    EXPECT_EQ(slowReplyMs(plan, "req#0"), 0.0); // rate 0
    plan.spec(FaultKind::ConnSlow).rate = 1.0;
    plan.spec(FaultKind::ConnSlow).delay_ms = 12.5;
    EXPECT_EQ(slowReplyMs(plan, "req#0"), 12.5);
    plan.spec(FaultKind::ConnSlow).rate = 0.5;
    const double first = slowReplyMs(plan, "stable#3");
    EXPECT_EQ(slowReplyMs(plan, "stable#3"), first);
}

TEST_F(FaultPlanGuard, ConnectionKindsAreDecorrelated)
{
    // Both kinds armed at 0.5 with the same seed: the drop and slow
    // decisions for one key must not be the same coin flip.
    FaultPlan plan;
    plan.seed = 21;
    plan.spec(FaultKind::ConnDrop).rate = 0.5;
    plan.spec(FaultKind::ConnSlow).rate = 0.5;
    int agree = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "req#" + std::to_string(i);
        const bool dropped = dropConnection(plan, key);
        const bool slowed = slowReplyMs(plan, key) > 0.0;
        if (dropped == slowed)
            ++agree;
    }
    EXPECT_GT(agree, 400);
    EXPECT_LT(agree, 600);
}

TEST_F(FaultPlanGuard, RefuseConnectFollowsRateDeterministically)
{
    FaultPlan plan;
    plan.seed = 13;
    // Unarmed (rate 0) the fault is inert at any attempt.
    for (std::uint64_t attempt = 1; attempt <= 8; ++attempt)
        EXPECT_FALSE(refuseConnect(plan, 9'000, attempt));

    plan.spec(FaultKind::ConnRefuse).rate = 1.0;
    EXPECT_TRUE(refuseConnect(plan, 9'000, 1));

    // Pure hash of (seed, port, attempt): replayable in any call
    // order, decorrelated across ports, attempts, and seeds -- so a
    // retrying caller sees a *schedule* of refusals, not a mood.
    plan.spec(FaultKind::ConnRefuse).rate = 0.5;
    int refused = 0;
    for (std::uint64_t attempt = 1; attempt <= 500; ++attempt) {
        const bool first = refuseConnect(plan, 9'000, attempt);
        EXPECT_EQ(refuseConnect(plan, 9'000, attempt), first);
        if (first)
            ++refused;
    }
    EXPECT_GT(refused, 175);
    EXPECT_LT(refused, 325);

    int port_agree = 0, seed_agree = 0;
    FaultPlan other = plan;
    other.seed = 14;
    for (std::uint64_t attempt = 1; attempt <= 500; ++attempt) {
        const bool here = refuseConnect(plan, 9'000, attempt);
        if (here == refuseConnect(plan, 9'001, attempt))
            ++port_agree;
        if (here == refuseConnect(other, 9'000, attempt))
            ++seed_agree;
    }
    EXPECT_GT(port_agree, 175);
    EXPECT_LT(port_agree, 325);
    EXPECT_GT(seed_agree, 175);
    EXPECT_LT(seed_agree, 325);
}

TEST_F(FaultPlanGuard, RefuseConnectCountsOnlyRefusals)
{
    const auto counter = [] {
        return telemetry::Registry::instance()
            .snapshot()
            .counter("fault.conn_refuse");
    };
    FaultPlan plan;
    plan.seed = 3;
    const auto before = counter();
    // Inert plan: probed but never counted.
    EXPECT_FALSE(refuseConnect(plan, 9'100, 1));
    EXPECT_EQ(counter(), before);

    plan.spec(FaultKind::ConnRefuse).rate = 1.0;
    EXPECT_TRUE(refuseConnect(plan, 9'100, 1));
    EXPECT_TRUE(refuseConnect(plan, 9'100, 2));
    EXPECT_EQ(counter(), before + 2);
}

TEST(ParseFaultPlan, ParsesConnRefuse)
{
    const auto plan = parseFaultPlan(
        R"({"seed": 11, "faults": {"conn-refuse": {"rate": 0.25}}})");
    ASSERT_TRUE(plan.ok()) << plan.error().str();
    EXPECT_DOUBLE_EQ(
        plan.value().spec(FaultKind::ConnRefuse).rate, 0.25);
    EXPECT_EQ(faultKindName(FaultKind::ConnRefuse),
              std::string("conn-refuse"));
}

TEST_F(FaultPlanGuard, CountFaultFeedsTelemetry)
{
    const auto before = telemetry::Registry::instance()
                            .snapshot()
                            .counter("fault.sensor_noise");
    countFault(FaultKind::SensorNoise);
    countFault(FaultKind::SensorNoise);
    const auto after = telemetry::Registry::instance()
                           .snapshot()
                           .counter("fault.sensor_noise");
    EXPECT_EQ(after, before + 2);
}

} // namespace
} // namespace ramp::fault
