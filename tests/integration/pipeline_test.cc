/**
 * @file
 * Integration tests across the full stack: workload -> core ->
 * power -> thermal -> RAMP -> DRM. These lock in the calibration
 * (Table 2) and the qualitative behaviours the paper's evaluation
 * rests on.
 */

#include <gtest/gtest.h>

#include "core/evaluator.hh"
#include "drm/oracle.hh"
#include "workload/profile.hh"

namespace ramp {
namespace {

core::Qualification
makeQual(double t_qual, const sim::PerStructure<double> &alpha)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual;
    s.alpha_qual = alpha;
    return core::Qualification(s);
}

/** Default-length evaluations, shared across tests in this file. */
class PipelineTest : public testing::Test
{
  protected:
    static const core::OperatingPoint &op(const std::string &name)
    {
        static std::map<std::string, core::OperatingPoint> cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            static const core::Evaluator evaluator;
            it = cache
                     .emplace(name,
                              evaluator.evaluate(
                                  sim::baseMachine(),
                                  workload::findApp(name)))
                     .first;
        }
        return it->second;
    }
};

TEST_F(PipelineTest, CalibrationIpcWithinTolerance)
{
    // The profiles are calibrated against Table 2; a 15% band guards
    // against silent drift of the simulator or the profiles.
    for (const auto &app : workload::standardApps()) {
        const double ipc = op(app.name).ipc();
        EXPECT_NEAR(ipc, app.table2_ipc, 0.15 * app.table2_ipc)
            << app.name;
    }
}

TEST_F(PipelineTest, CalibrationPowerWithinTolerance)
{
    for (const auto &app : workload::standardApps()) {
        const double p = op(app.name).totalPower();
        EXPECT_NEAR(p, app.table2_power_w, 0.25 * app.table2_power_w)
            << app.name;
    }
}

TEST_F(PipelineTest, HottestAppApproaches400K)
{
    // The paper reports the hottest temperature reached on chip as
    // "near 400K" -- a peak; our steady-state (sustained) hottest
    // block sits somewhat below it. EXPERIMENTS.md discusses the
    // offset.
    double hottest = 0.0;
    for (const auto &app : workload::standardApps())
        hottest = std::max(hottest, op(app.name).maxTemp());
    EXPECT_GT(hottest, 375.0);
    EXPECT_LT(hottest, 400.0);
}

TEST_F(PipelineTest, MultimediaIsHottestClass)
{
    EXPECT_GT(op("MPGdec").maxTemp(), op("twolf").maxTemp());
    EXPECT_GT(op("MP3dec").maxTemp(), op("art").maxTemp());
}

TEST_F(PipelineTest, HotAppsHaveHigherFit)
{
    // Section 7.1: multimedia apps have the highest FIT on the base
    // processor; that is what makes them the binding apps for DRM.
    std::vector<core::OperatingPoint> base_ops;
    for (const auto &app : workload::standardApps())
        base_ops.push_back(op(app.name));
    const auto alpha = drm::alphaQualFromBaseline(base_ops);
    const auto qual = makeQual(370.0, alpha);

    const double fit_mp3 = drm::operatingPointFit(qual, op("MP3dec"));
    const double fit_mpg = drm::operatingPointFit(qual, op("MPGdec"));
    const double fit_twolf =
        drm::operatingPointFit(qual, op("twolf"));
    const double fit_art = drm::operatingPointFit(qual, op("art"));
    EXPECT_GT(fit_mp3, fit_twolf);
    EXPECT_GT(fit_mpg, fit_art);
}

TEST_F(PipelineTest, WorstCaseQualificationLeavesHeadroom)
{
    // Section 7.1: qualified at the worst observed temperature
    // (400 K), every application runs below the FIT target on the
    // base machine -- the over-design DRM exploits.
    std::vector<core::OperatingPoint> base_ops;
    for (const auto &app : workload::standardApps())
        base_ops.push_back(op(app.name));
    const auto alpha = drm::alphaQualFromBaseline(base_ops);
    const auto qual = makeQual(400.0, alpha);
    for (const auto &app : workload::standardApps())
        EXPECT_LT(drm::operatingPointFit(qual, op(app.name)), 4000.0)
            << app.name;
}

TEST_F(PipelineTest, AggressiveUnderDesignExceedsTarget)
{
    // At a drastically cheap qualification the hot majority of the
    // suite blows the budget (the coolest SpecFP apps may just
    // squeak by, as in the paper's Figure 2 at 325 K where art and
    // ammp hold their performance).
    std::vector<core::OperatingPoint> base_ops;
    for (const auto &app : workload::standardApps())
        base_ops.push_back(op(app.name));
    const auto alpha = drm::alphaQualFromBaseline(base_ops);
    const auto qual = makeQual(330.0, alpha);
    int over = 0;
    for (const auto &app : workload::standardApps())
        over += drm::operatingPointFit(qual, op(app.name)) > 4000.0;
    EXPECT_GE(over, 7);
    EXPECT_GT(drm::operatingPointFit(qual, op("MPGdec")), 8000.0);
}

TEST(DrmEndToEnd, DvsOracleThrottlesAndBoosts)
{
    core::EvalParams params;
    params.warmup_uops = 200'000;
    params.measure_uops = 200'000;
    const drm::OracleExplorer explorer(params);
    // Single-phase app, warm quickly, binds in both directions.
    const auto &app = workload::findApp("gzip");
    const auto explored =
        explorer.explore(app, drm::AdaptationSpace::Dvs);

    sim::PerStructure<double> alpha;
    alpha.fill(0.6);

    // Generous qualification: the oracle overclocks.
    const auto boost =
        drm::selectDrm(explored, makeQual(400.0, alpha));
    EXPECT_TRUE(boost.feasible);
    EXPECT_GT(boost.perf_rel, 1.0);

    // Harsh qualification: the oracle throttles below base.
    const auto throttle =
        drm::selectDrm(explored, makeQual(330.0, alpha));
    EXPECT_LT(throttle.perf_rel, 1.0);
}

} // namespace
} // namespace ramp
