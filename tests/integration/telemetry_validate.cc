/**
 * @file
 * Validator for the telemetry smoke fixture: after ctest runs
 * bench_fig2_archdvs with `--metrics`/`--trace` on a truncated
 * suite, this program checks that both files parse as JSON and carry
 * the keys the instrumentation promises -- evaluator iteration
 * histogram with samples, evaluation-cache counters, thread-pool
 * metrics, and a well-formed Chrome trace timeline.
 *
 * Usage: telemetry_validate <metrics.json> <trace.json>
 * Exits 0 when every check passes; prints each failure otherwise.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hh"

namespace {

int failures = 0;

void
fail(const std::string &what)
{
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++failures;
}

std::string
slurp(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        fail(std::string("cannot open ") + path);
        return "";
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Counter that must exist and be strictly positive. */
void
checkCounter(const ramp::util::JsonValue &doc, const char *name)
{
    const auto *counters = doc.find("counters");
    const auto *v = counters ? counters->find(name) : nullptr;
    if (!v || !v->isNumber())
        fail(std::string("counter missing: ") + name);
    else if (v->number <= 0.0)
        fail(std::string("counter not positive: ") + name);
}

/** Histogram that must exist with a positive sample total. */
void
checkHistogram(const ramp::util::JsonValue &doc, const char *name)
{
    const auto *hists = doc.find("histograms");
    const auto *h = hists ? hists->find(name) : nullptr;
    if (!h || !h->isObject()) {
        fail(std::string("histogram missing: ") + name);
        return;
    }
    const auto *total = h->find("total");
    if (!total || total->number <= 0.0)
        fail(std::string("histogram has no samples: ") + name);
    const auto *counts = h->find("counts");
    if (!counts || !counts->isArray() || counts->array.empty())
        fail(std::string("histogram has no bins: ") + name);
}

void
validateMetrics(const std::string &text)
{
    std::string err;
    const auto doc = ramp::util::parseJson(text, &err);
    if (!doc || !doc->isObject()) {
        fail("metrics file is not a JSON object: " + err);
        return;
    }

    // The evaluator ran and its fixed point converged somewhere.
    checkCounter(*doc, "evaluator.evaluate_calls");
    checkCounter(*doc, "evaluator.converge_calls");
    checkHistogram(*doc, "evaluator.iterations");

    // The evaluation cache was consulted.
    const auto *counters = doc->find("counters");
    const auto *hits = counters ? counters->find("cache.hits") : nullptr;
    const auto *misses =
        counters ? counters->find("cache.misses") : nullptr;
    if (!hits || !misses)
        fail("cache.hits / cache.misses counters missing");
    else if (hits->number + misses->number <= 0.0)
        fail("cache was never consulted");

    // The pool ran batches; its utilization metrics are present.
    checkCounter(*doc, "pool.batches");
    checkCounter(*doc, "pool.items");
    checkHistogram(*doc, "pool.batch_s");
    checkHistogram(*doc, "pool.worker_share");
    const auto *gauges = doc->find("gauges");
    const auto *threads =
        gauges ? gauges->find("pool.threads") : nullptr;
    if (!threads || threads->number < 2.0)
        fail("pool.threads gauge missing or < 2 "
             "(bench runs with --threads 2)");

    // The simulator core reported throughput.
    checkCounter(*doc, "sim.cycles");
    checkCounter(*doc, "sim.uops_retired");
}

void
validateTrace(const std::string &text)
{
    std::string err;
    const auto doc = ramp::util::parseJson(text, &err);
    if (!doc || !doc->isObject()) {
        fail("trace file is not a JSON object: " + err);
        return;
    }
    const auto *events = doc->find("traceEvents");
    if (!events || !events->isArray()) {
        fail("traceEvents array missing");
        return;
    }
    if (events->array.empty())
        fail("trace contains no events");

    bool saw_evaluate = false;
    for (const auto &ev : events->array) {
        const auto *name = ev.find("name");
        const auto *ph = ev.find("ph");
        const auto *ts = ev.find("ts");
        if (!name || !name->isString() || !ph || !ph->isString() ||
            !ts || !ts->isNumber()) {
            fail("event missing name/ph/ts");
            break;
        }
        if (ph->str == "X" && !ev.find("dur")) {
            fail("complete event missing dur: " + name->str);
            break;
        }
        saw_evaluate |= name->str == "evaluate";
    }
    if (!saw_evaluate)
        fail("no 'evaluate' span in the trace");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s <metrics.json> <trace.json>\n",
                     argv[0]);
        return 2;
    }
    const std::string metrics = slurp(argv[1]);
    const std::string trace = slurp(argv[2]);
    if (failures == 0) {
        validateMetrics(metrics);
        validateTrace(trace);
    }
    if (failures == 0)
        std::printf("telemetry smoke output OK\n");
    return failures == 0 ? 0 : 1;
}
