/**
 * @file
 * Tests for the technology-scaling module: node parameters, derived
 * scales, and the end-to-end study shape (reliability degrades with
 * scaling under a fixed qualification).
 */

#include <gtest/gtest.h>

#include "scaling/study.hh"

namespace ramp::scaling {
namespace {

TEST(Technology, FourNodesOldestFirst)
{
    const auto &nodes = technologyNodes();
    ASSERT_EQ(nodes.size(), 4u);
    EXPECT_EQ(nodes.front().name, "180nm");
    EXPECT_EQ(nodes.back().name, "65nm");
    for (std::size_t i = 1; i < nodes.size(); ++i)
        EXPECT_LT(nodes[i].feature_nm, nodes[i - 1].feature_nm);
}

TEST(Technology, HistoricalTrends)
{
    const auto &nodes = technologyNodes();
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        EXPECT_LT(nodes[i].vdd_v, nodes[i - 1].vdd_v);
        EXPECT_GT(nodes[i].frequency_ghz, nodes[i - 1].frequency_ghz);
        EXPECT_GT(nodes[i].leak_density_383,
                  nodes[i - 1].leak_density_383);
    }
}

TEST(Technology, SixtyFiveNmIsTheReference)
{
    const auto &node = findNode("65nm");
    EXPECT_DOUBLE_EQ(node.areaScale(), 1.0);
    EXPECT_DOUBLE_EQ(node.capacitanceScale(), 1.0);
    EXPECT_DOUBLE_EQ(node.emCurrentScale(), 1.0);
    EXPECT_DOUBLE_EQ(node.vdd_v, 1.0);
    EXPECT_DOUBLE_EQ(node.frequency_ghz, 4.0);
    EXPECT_DOUBLE_EQ(node.leak_density_383, 0.5);
}

TEST(Technology, EmCurrentDensityClimbsWithScaling)
{
    // J ~ V*f/feature rises monotonically toward newer nodes: the
    // paper's "increasing current density in interconnects".
    double prev = 0.0;
    for (const auto &node : technologyNodes()) {
        EXPECT_GT(node.emCurrentScale(), prev) << node.name;
        prev = node.emCurrentScale();
    }
    // V f / sqrt(feature): about 3.7x growth over the four nodes.
    EXPECT_GT(findNode("65nm").emCurrentScale() /
                  findNode("180nm").emCurrentScale(),
              3.0);
}

TEST(Technology, DieAreaShrinksQuadratically)
{
    EXPECT_NEAR(findNode("130nm").areaScale(), 4.0, 0.01);
    EXPECT_NEAR(findNode("180nm").areaScale(), 7.67, 0.01);
}

TEST(Technology, NodeMachineCarriesOperatingPoint)
{
    const auto cfg = nodeMachine(findNode("130nm"));
    EXPECT_DOUBLE_EQ(cfg.frequency_ghz, 1.8);
    EXPECT_DOUBLE_EQ(cfg.voltage_v, 1.5);
    EXPECT_EQ(cfg.window_size, 128u); // same design
}

TEST(Technology, NodeParamsScaleModels)
{
    const auto &node = findNode("90nm");
    const auto pp = nodePowerParams(node);
    const power::PowerParams base;
    EXPECT_NEAR(pp.max_dynamic_w[0],
                base.max_dynamic_w[0] * node.capacitanceScale(),
                1e-12);
    EXPECT_DOUBLE_EQ(pp.leakage_density_383, 0.25);
    EXPECT_NEAR(pp.area_scale, node.areaScale(), 1e-12);
    const auto tp = nodeThermalParams(node);
    EXPECT_NEAR(tp.area_scale, node.areaScale(), 1e-12);
}

TEST(TechnologyDeath, UnknownNodeIsFatal)
{
    EXPECT_EXIT(findNode("45nm"), testing::ExitedWithCode(1),
                "unknown technology node");
}

TEST(Study, ReliabilityDegradesWithScaling)
{
    StudyParams params;
    params.eval.warmup_uops = 150'000;
    params.eval.measure_uops = 200'000;
    const auto results =
        runScalingStudy(workload::findApp("gzip"), params);
    ASSERT_EQ(results.size(), 4u);

    // The oldest node is qualified just above its own worst case, so
    // it must be comfortably within target.
    EXPECT_LT(results.front().fit.totalFit(), params.target_fit);

    // Power density and temperature climb toward newer nodes...
    for (std::size_t i = 1; i < results.size(); ++i) {
        const double die_prev = sim::totalCoreArea() *
                                results[i - 1].node.areaScale();
        const double die = sim::totalCoreArea() *
                           results[i].node.areaScale();
        EXPECT_GT(results[i].op.totalPower() / die,
                  results[i - 1].op.totalPower() / die_prev);
        EXPECT_GT(results[i].op.maxTemp(),
                  results[i - 1].op.maxTemp());
    }

    // ...and the FIT under the fixed qualification grows, i.e. MTTF
    // shrinks severalfold by 65 nm (the DSN'04 companion result).
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_GT(results[i].fit.totalFit(),
                  results[i - 1].fit.totalFit());
    EXPECT_GT(results.front().mttfYears() /
                  results.back().mttfYears(),
              2.0);
}

TEST(Study, DeterministicAcrossRuns)
{
    StudyParams params;
    params.eval.warmup_uops = 100'000;
    params.eval.measure_uops = 100'000;
    const auto a = runScalingStudy(workload::findApp("art"), params);
    const auto b = runScalingStudy(workload::findApp("art"), params);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].fit.totalFit(), b[i].fit.totalFit());
}

} // namespace
} // namespace ramp::scaling
