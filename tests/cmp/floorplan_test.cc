/**
 * @file
 * Tests for the chip floorplan: built-in grids, strict JSON
 * validation with file:index diagnostics, and the chip-coordinate
 * geometry queries the coupled thermal model builds on.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "cmp/floorplan.hh"
#include "util/json.hh"

namespace ramp::cmp {
namespace {

using sim::StructureId;

util::JsonValue
parseDoc(const std::string &text)
{
    std::string error;
    const auto doc = util::parseJson(text, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return *doc;
}

/** tryParse on a JSON literal, expecting rejection; returns the
 *  diagnostic message. */
std::string
rejectPlan(const std::string &text)
{
    const auto plan =
        ChipFloorplan::tryParse(parseDoc(text), "plan.json");
    EXPECT_FALSE(plan.ok());
    if (plan.ok())
        return "";
    EXPECT_EQ(plan.error().code, util::ErrorCode::InvalidInput);
    return plan.error().message;
}

TEST(ChipFloorplanGrid, BuiltInShapes)
{
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
        const auto plan = ChipFloorplan::grid(n);
        EXPECT_EQ(plan.numCores(), n);
        EXPECT_EQ(plan.tiles().size(), n);
    }
    const auto quad = ChipFloorplan::grid(4);
    const double s = quad.tileSize();
    EXPECT_GT(s, 0.0);
    // 2x2: core0 bottom-left, core1 bottom-right, core2 top-left,
    // core3 top-right.
    EXPECT_EQ(quad.tiles()[0].name, "core0");
    EXPECT_DOUBLE_EQ(quad.tiles()[1].x_mm, s);
    EXPECT_DOUBLE_EQ(quad.tiles()[1].y_mm, 0.0);
    EXPECT_DOUBLE_EQ(quad.tiles()[2].x_mm, 0.0);
    EXPECT_DOUBLE_EQ(quad.tiles()[2].y_mm, s);
    // Edge neighbors abut; diagonal tiles only touch at a corner,
    // which is not a shared border.
    EXPECT_TRUE(quad.tilesAdjacent(0, 1));
    EXPECT_TRUE(quad.tilesAdjacent(0, 2));
    EXPECT_TRUE(quad.tilesAdjacent(1, 3));
    EXPECT_FALSE(quad.tilesAdjacent(0, 3));
    EXPECT_FALSE(quad.tilesAdjacent(1, 2));
    EXPECT_FALSE(quad.tilesAdjacent(2, 2));
}

TEST(ChipFloorplanGridDeath, UnsupportedCountIsFatal)
{
    EXPECT_EXIT(ChipFloorplan::grid(3), testing::ExitedWithCode(1),
                "no built-in 3-core grid");
    EXPECT_EXIT(ChipFloorplan::grid(0), testing::ExitedWithCode(1),
                "no built-in 0-core grid");
}

TEST(ChipFloorplanParse, AcceptsNamedPlacement)
{
    const auto plan = ChipFloorplan::tryParse(
        parseDoc("{\"cores\": ["
                 "{\"name\": \"left\", \"x_mm\": 0.0, \"y_mm\": 0.0},"
                 "{\"x_mm\": 4.5, \"y_mm\": 0.0}]}"),
        "plan.json");
    ASSERT_TRUE(plan.ok()) << plan.error().message;
    EXPECT_EQ(plan.value().numCores(), 2u);
    EXPECT_EQ(plan.value().tiles()[0].name, "left");
    EXPECT_EQ(plan.value().tiles()[1].name, "core1"); // default
    EXPECT_DOUBLE_EQ(plan.value().tiles()[1].x_mm, 4.5);
    EXPECT_TRUE(plan.value().tilesAdjacent(0, 1));
}

TEST(ChipFloorplanParse, RejectsMalformedRoots)
{
    EXPECT_NE(rejectPlan("[1, 2]").find(
                  "plan.json: floorplan root must be an object"),
              std::string::npos);
    EXPECT_NE(rejectPlan("{}").find("missing \"cores\" array"),
              std::string::npos);
    EXPECT_NE(rejectPlan("{\"cores\": 7}")
                  .find("\"cores\" must be an array"),
              std::string::npos);
    EXPECT_NE(rejectPlan("{\"cores\": []}")
                  .find("at least one core"),
              std::string::npos);
}

TEST(ChipFloorplanParse, RejectsMalformedCoresByIndex)
{
    // Diagnostics carry the origin and the offending core index.
    EXPECT_NE(rejectPlan("{\"cores\": ["
                         "{\"x_mm\": 0, \"y_mm\": 0}, 5]}")
                  .find("plan.json:cores[1]: core must be an object"),
              std::string::npos);
    EXPECT_NE(rejectPlan("{\"cores\": [{\"y_mm\": 0}]}")
                  .find("plan.json:cores[0]: missing \"x_mm\""),
              std::string::npos);
    EXPECT_NE(rejectPlan("{\"cores\": ["
                         "{\"x_mm\": 0, \"y_mm\": \"zero\"}]}")
                  .find("\"y_mm\" must be a finite number"),
              std::string::npos);
    EXPECT_NE(rejectPlan("{\"cores\": ["
                         "{\"x_mm\": 0, \"y_mm\": 0, \"name\": \"\"}"
                         "]}")
                  .find("\"name\" must be a non-empty string"),
              std::string::npos);
}

TEST(ChipFloorplanParse, RejectsDuplicateNames)
{
    const auto msg = rejectPlan(
        "{\"cores\": ["
        "{\"name\": \"c\", \"x_mm\": 0.0, \"y_mm\": 0.0},"
        "{\"name\": \"c\", \"x_mm\": 4.5, \"y_mm\": 0.0}]}");
    EXPECT_NE(msg.find("plan.json:cores[1]: duplicate core name 'c'"),
              std::string::npos);
    EXPECT_NE(msg.find("cores[0]"), std::string::npos);
}

TEST(ChipFloorplanParse, RejectsOverlappingTiles)
{
    const auto msg =
        rejectPlan("{\"cores\": ["
                   "{\"x_mm\": 0.0, \"y_mm\": 0.0},"
                   "{\"x_mm\": 2.0, \"y_mm\": 1.0}]}");
    EXPECT_NE(msg.find("plan.json:cores[1]: tile overlaps cores[0]"),
              std::string::npos);
}

TEST(ChipFloorplanParse, RejectsDisconnectedPlacement)
{
    // Two abutting tiles plus one floating far away.
    const auto msg =
        rejectPlan("{\"cores\": ["
                   "{\"x_mm\": 0.0, \"y_mm\": 0.0},"
                   "{\"x_mm\": 4.5, \"y_mm\": 0.0},"
                   "{\"x_mm\": 20.0, \"y_mm\": 20.0}]}");
    EXPECT_NE(msg.find("plan.json:cores[2]: tile is disconnected"),
              std::string::npos);
}

TEST(ChipFloorplanParse, CornerContactIsNotConnectivity)
{
    // Diagonal tiles share a corner point, not a border of positive
    // length; that is no lateral heat path.
    const auto msg =
        rejectPlan("{\"cores\": ["
                   "{\"x_mm\": 0.0, \"y_mm\": 0.0},"
                   "{\"x_mm\": 4.5, \"y_mm\": 4.5}]}");
    EXPECT_NE(msg.find("disconnected"), std::string::npos);
}

TEST(ChipFloorplanLoad, FileRoundTripAndErrors)
{
    const std::string path =
        testing::TempDir() + "ramp_cmp_floorplan_test.json";
    {
        std::ofstream out(path);
        out << "{\"cores\": [{\"x_mm\": 0.0, \"y_mm\": 0.0},"
               "{\"x_mm\": 0.0, \"y_mm\": 4.5}]}";
    }
    const auto plan = ChipFloorplan::tryLoad(path);
    ASSERT_TRUE(plan.ok()) << plan.error().message;
    EXPECT_EQ(plan.value().numCores(), 2u);

    {
        std::ofstream out(path);
        out << "{\"cores\": [";
    }
    const auto bad = ChipFloorplan::tryLoad(path);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, util::ErrorCode::InvalidInput);
    // Parse failures are prefixed with the file path.
    EXPECT_NE(bad.error().message.find(path), std::string::npos);
    std::remove(path.c_str());

    const auto missing =
        ChipFloorplan::tryLoad(path + ".does_not_exist");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, util::ErrorCode::IoFailure);
}

TEST(ChipFloorplanGeometry, BordersAreSymmetricAndTiled)
{
    const auto plan = ChipFloorplan::grid(2);
    // Same-core queries match the per-core floorplan exactly.
    const auto &core = plan.coreFloorplan();
    for (auto a : sim::allStructures())
        for (auto b : sim::allStructures()) {
            if (a == b)
                continue;
            EXPECT_EQ(plan.sharedBorder(0, a, 0, b),
                      core.sharedBorder(a, b));
            EXPECT_EQ(plan.sharedBorder(1, a, 1, b),
                      core.sharedBorder(a, b));
        }
    // Cross-core borders are symmetric and some must exist along the
    // shared tile edge.
    double total_border = 0.0;
    for (auto a : sim::allStructures())
        for (auto b : sim::allStructures()) {
            const double ab = plan.sharedBorder(0, a, 1, b);
            EXPECT_EQ(ab, plan.sharedBorder(1, b, 0, a));
            EXPECT_EQ(plan.centerDistance(0, a, 1, b),
                      plan.centerDistance(1, b, 0, a));
            total_border += ab;
        }
    // The whole tile edge is covered by block borders.
    EXPECT_NEAR(total_border, plan.tileSize(), 1e-9);
}

TEST(ChipFloorplanGeometry, ChipBlocksAreTranslatedCoreBlocks)
{
    const auto plan = ChipFloorplan::grid(4);
    for (auto id : sim::allStructures()) {
        const auto base = plan.coreFloorplan().block(id);
        const auto moved = plan.chipBlock(3, id);
        EXPECT_DOUBLE_EQ(moved.x,
                         base.x + plan.tiles()[3].x_mm);
        EXPECT_DOUBLE_EQ(moved.y,
                         base.y + plan.tiles()[3].y_mm);
        EXPECT_DOUBLE_EQ(moved.w, base.w);
        EXPECT_DOUBLE_EQ(moved.h, base.h);
    }
}

} // namespace
} // namespace ramp::cmp
