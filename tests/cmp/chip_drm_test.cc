/**
 * @file
 * Tests for chip-level DRM: the shared-qualification FIT pricing,
 * PerCore vs Global budget policies (Global dominates PerCore and
 * respects the chip sum), cross-core wear leveling with hysteresis,
 * and nested multi-app exploration determinism.
 */

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cmp/chip_drm.hh"
#include "cmp/wear.hh"
#include "drm/oracle.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp::cmp {
namespace {

core::QualificationSpec
chipSpec(double chip_target_fit, double t_qual_k = 380.0)
{
    core::QualificationSpec s;
    s.target_fit = chip_target_fit;
    s.t_qual_k = t_qual_k;
    s.alpha_qual.fill(0.5);
    return s;
}

/** Synthetic operating point at uniform temperature/activity. */
core::OperatingPoint
syntheticOp(double temp_k, double freq_ghz)
{
    core::OperatingPoint op;
    op.config = sim::baseMachine();
    op.config.frequency_ghz = freq_ghz;
    op.temps_k.fill(temp_k);
    op.activity.activity.fill(0.5);
    op.activity.cycles = 1000;
    op.activity.retired = 1000;
    return op;
}

/** An app whose points sit at the given (temp, perf) pairs. */
drm::ExploredApp
syntheticApp(
    const std::string &name,
    const std::vector<std::pair<double, double>> &temp_perf)
{
    drm::ExploredApp app;
    app.app_name = name;
    app.base = syntheticOp(temp_perf.front().first, 4.0);
    for (const auto &[t, perf] : temp_perf) {
        drm::ExploredPoint pt;
        pt.op = syntheticOp(t, 4.0);
        pt.perf_rel = perf;
        app.points.push_back(pt);
    }
    return app;
}

TEST(BudgetPolicy, NamesRoundTrip)
{
    EXPECT_STREQ(budgetPolicyName(BudgetPolicy::PerCore),
                 "per-core");
    EXPECT_STREQ(budgetPolicyName(BudgetPolicy::Global), "global");
    EXPECT_EQ(budgetPolicyFromName("per-core"),
              BudgetPolicy::PerCore);
    EXPECT_EQ(budgetPolicyFromName("global"), BudgetPolicy::Global);
    EXPECT_EQ(budgetPolicyFromName("GLOBAL"), std::nullopt);
    EXPECT_EQ(budgetPolicyFromName(""), std::nullopt);
}

TEST(SelectChipDrm, GlobalDominatesPerCoreAndRespectsChipSum)
{
    // Two cores under one chip budget. The cool app leaves most of
    // its share unused; the hot app has a faster point priced above
    // one share but within the headroom the cool core donates.
    const auto spec = chipSpec(8000.0);
    const double share = 4000.0;
    const auto cool = syntheticApp(
        "cool", {{340.0, 0.8}, {348.0, 0.95}, {355.0, 1.0}});
    const auto hot = syntheticApp(
        "hot", {{372.0, 0.8}, {378.0, 1.0}, {386.0, 1.2}});
    const std::vector<const drm::ExploredApp *> cores{&cool, &hot};

    // Validate the scenario against the real FIT model: the hot
    // app's fast point must exceed one share (PerCore rejects it)
    // but fit in the chip budget next to the cool selection.
    core::QualificationSpec share_spec = spec;
    share_spec.target_fit = share;
    const core::Qualification qual(share_spec);
    const double fit_hot_mid =
        drm::operatingPointFit(qual, hot.points[1].op);
    const double fit_hot_fast =
        drm::operatingPointFit(qual, hot.points[2].op);
    const double fit_cool_best =
        drm::operatingPointFit(qual, cool.points[2].op);
    ASSERT_LT(fit_hot_mid, share);
    ASSERT_GT(fit_hot_fast, share);
    ASSERT_LT(fit_cool_best + fit_hot_fast, spec.target_fit);

    const auto per_core =
        selectChipDrm(cores, spec, BudgetPolicy::PerCore);
    const auto global =
        selectChipDrm(cores, spec, BudgetPolicy::Global);

    // PerCore: every core within its own share; the hot core is
    // stuck at the mid point.
    EXPECT_TRUE(per_core.feasible);
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_LE(per_core.cores[c].fit, share);
    EXPECT_DOUBLE_EQ(per_core.cores[1].perf_rel, 1.0);

    // Global: no core regresses, the hot core is upgraded past its
    // share, and the chip sum still holds.
    EXPECT_TRUE(global.feasible);
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_GE(global.cores[c].perf_rel,
                  per_core.cores[c].perf_rel)
            << c;
    EXPECT_GT(global.throughput_rel, per_core.throughput_rel);
    EXPECT_DOUBLE_EQ(global.cores[1].perf_rel, 1.2);
    EXPECT_GT(global.cores[1].fit, share);
    EXPECT_LE(global.chip_fit, spec.target_fit);
    EXPECT_DOUBLE_EQ(global.throughput_rel,
                     global.cores[0].perf_rel +
                         global.cores[1].perf_rel);
    ASSERT_EQ(global.budget_fit.size(), 2u);
    EXPECT_DOUBLE_EQ(global.budget_fit[1], global.cores[1].fit);
}

TEST(SelectChipDrm, IdenticalCoresSplitEvenly)
{
    // Four identical cores: Global has no donor/recipient asymmetry
    // to exploit beyond what discreteness allows, and every core
    // must end at least as fast as its PerCore pick.
    const auto spec = chipSpec(16000.0);
    const auto app = syntheticApp(
        "mid", {{350.0, 0.8}, {370.0, 1.0}, {392.0, 1.25}});
    const std::vector<const drm::ExploredApp *> cores(4, &app);
    const auto per_core =
        selectChipDrm(cores, spec, BudgetPolicy::PerCore);
    const auto global =
        selectChipDrm(cores, spec, BudgetPolicy::Global);
    EXPECT_GE(global.throughput_rel, per_core.throughput_rel);
    EXPECT_LE(global.chip_fit, spec.target_fit);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_GE(global.cores[c].perf_rel,
                  per_core.cores[c].perf_rel);
}

TEST(SelectChipDrm, InfeasibleEverywhereIsReportedNotPatched)
{
    // Both cores' every point blows the whole chip budget: PerCore
    // and Global both fall back (lowest FIT) and report infeasible.
    const auto spec = chipSpec(2000.0);
    const auto scorching =
        syntheticApp("scorching", {{395.0, 1.0}, {399.0, 1.1}});
    const std::vector<const drm::ExploredApp *> cores{&scorching,
                                                      &scorching};
    const auto per_core =
        selectChipDrm(cores, spec, BudgetPolicy::PerCore);
    const auto global =
        selectChipDrm(cores, spec, BudgetPolicy::Global);
    EXPECT_FALSE(per_core.feasible);
    EXPECT_FALSE(global.feasible);
    // The fallback is the least-violating point, not the fastest.
    EXPECT_DOUBLE_EQ(per_core.cores[0].perf_rel, 1.0);
    EXPECT_DOUBLE_EQ(global.cores[0].perf_rel, 1.0);
}

TEST(WearLeveler, MigratesOnSpreadWithHysteresisAndCooldown)
{
    const core::Qualification qual(chipSpec(4000.0));
    WearParams params;
    params.migrate_spread_frac = 1e-3;
    params.rearm_spread_frac = 5e-4;
    params.cooldown_epochs = 2;
    WearLeveler wear(qual, 2, params);

    const auto hot_op = syntheticOp(392.0, 4.0);
    const auto cool_op = syntheticOp(345.0, 4.0);
    std::vector<std::size_t> assignment{0, 1}; // app 0 on core 0
    const double epoch_hours = 500.0;

    // Damage the cores unevenly until the policy fires; app 0 (hot)
    // starts on core 0.
    int fired_at = -1;
    for (int epoch = 0; epoch < 50; ++epoch) {
        wear.addInterval(0, assignment[0] == 0 ? hot_op : cool_op,
                         epoch_hours);
        wear.addInterval(1, assignment[1] == 1 ? cool_op : hot_op,
                         epoch_hours);
        if (wear.maybeMigrate(assignment)) {
            fired_at = epoch;
            break;
        }
    }
    ASSERT_GE(fired_at, 0) << "spread never triggered a migration";
    // Core 0 accumulated more damage, so the hot app moved off it.
    EXPECT_GT(wear.consumedFrac(0), wear.consumedFrac(1));
    EXPECT_EQ(assignment, (std::vector<std::size_t>{1, 0}));
    EXPECT_EQ(wear.migrations(), 1u);

    // Disarmed: even though the spread is still above the trigger,
    // the very next epoch must not migrate back (no thrash).
    EXPECT_GT(wear.spreadFrac(), params.migrate_spread_frac);
    EXPECT_FALSE(wear.maybeMigrate(assignment));
    EXPECT_EQ(assignment, (std::vector<std::size_t>{1, 0}));

    // With the hot app now on the cooler core the spread closes,
    // re-arms below the lower threshold, and eventually fires again.
    int refires = 0;
    for (int epoch = 0; epoch < 200 && refires == 0; ++epoch) {
        wear.addInterval(0, assignment[0] == 0 ? hot_op : cool_op,
                         epoch_hours);
        wear.addInterval(1, assignment[1] == 1 ? cool_op : hot_op,
                         epoch_hours);
        if (wear.maybeMigrate(assignment))
            ++refires;
    }
    EXPECT_EQ(refires, 1);
    EXPECT_EQ(wear.migrations(), 2u);
    EXPECT_EQ(assignment, (std::vector<std::size_t>{0, 1}));
}

TEST(WearLeveler, ReArmsWhenSpreadRegrowsPastItsLastTrigger)
{
    // With three distinct damage rates the max - min spread has a
    // rising floor: after the first swap the middle core keeps
    // drifting away, so the spread never closes below a (here
    // near-zero) re-arm threshold. The policy must still re-arm once
    // the spread regrows past the level the last migration acted at,
    // or one unlucky swap would disable leveling forever.
    const core::Qualification qual(chipSpec(4000.0));
    WearParams params;
    params.migrate_spread_frac = 1e-3;
    params.rearm_spread_frac = 1e-9; // unreachable on purpose
    params.cooldown_epochs = 2;
    WearLeveler wear(qual, 3, params);

    const core::OperatingPoint ops[] = {
        syntheticOp(392.0, 4.0), // app 0: hot
        syntheticOp(362.0, 4.0), // app 1: middling
        syntheticOp(345.0, 4.0), // app 2: cool
    };
    std::vector<std::size_t> assignment{0, 1, 2};
    std::uint32_t last_fire_epoch = 0;
    std::uint32_t previous_fire_epoch = 0;
    for (std::uint32_t epoch = 1;
         epoch <= 400 && wear.migrations() < 2; ++epoch) {
        for (std::size_t c = 0; c < 3; ++c)
            wear.addInterval(c, ops[assignment[c]], 500.0);
        if (wear.maybeMigrate(assignment)) {
            previous_fire_epoch = last_fire_epoch;
            last_fire_epoch = epoch;
        }
    }
    EXPECT_EQ(wear.migrations(), 2u)
        << "regrown spread never re-armed the trigger";
    // The cooldown still spaces the migrations out.
    EXPECT_GE(last_fire_epoch - previous_fire_epoch,
              params.cooldown_epochs);
}

TEST(WearLeveler, NoMigrationWhenBalanced)
{
    const core::Qualification qual(chipSpec(4000.0));
    WearLeveler wear(qual, 4);
    const auto op = syntheticOp(370.0, 4.0);
    std::vector<std::size_t> assignment{0, 1, 2, 3};
    for (int epoch = 0; epoch < 20; ++epoch) {
        for (std::size_t c = 0; c < 4; ++c)
            wear.addInterval(c, op, 1000.0);
        EXPECT_FALSE(wear.maybeMigrate(assignment));
    }
    EXPECT_EQ(wear.migrations(), 0u);
    EXPECT_EQ(wear.spreadFrac(), 0.0);
    EXPECT_EQ(assignment, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(WearLevelerDeath, RejectsBadThresholds)
{
    const core::Qualification qual(chipSpec(4000.0));
    WearParams inverted;
    inverted.migrate_spread_frac = 0.01;
    inverted.rearm_spread_frac = 0.02;
    EXPECT_EXIT(WearLeveler(qual, 2, inverted),
                testing::ExitedWithCode(1), "rearm < migrate");
    EXPECT_EXIT(WearLeveler(qual, 0), testing::ExitedWithCode(1),
                "at least one core");
}

TEST(ExploreApps, PooledBitIdenticalToSerialViaNestedSubmission)
{
    // exploreApps fans one app per pool item while each inner
    // explore() submits to the SAME pool (running inline under the
    // nested-submission guard). The result must be bit-identical to
    // the fully serial sweep.
    core::EvalParams quick;
    quick.warmup_uops = 30'000;
    quick.measure_uops = 40'000;
    const std::vector<const workload::AppProfile *> apps{
        &workload::findApp("twolf"), &workload::findApp("gzip"),
        &workload::findApp("art")};

    const drm::OracleExplorer serial(quick);
    const auto want = exploreApps(serial, nullptr, apps,
                                  drm::AdaptationSpace::Dvs);

    util::ThreadPool pool(4);
    drm::OracleExplorer pooled(quick);
    pooled.setPool(&pool);
    const auto got = exploreApps(pooled, &pool, apps,
                                 drm::AdaptationSpace::Dvs);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t a = 0; a < got.size(); ++a) {
        EXPECT_EQ(got[a].app_name, want[a].app_name);
        ASSERT_EQ(got[a].points.size(), want[a].points.size());
        for (std::size_t p = 0; p < got[a].points.size(); ++p) {
            EXPECT_EQ(got[a].points[p].perf_rel,
                      want[a].points[p].perf_rel);
            for (std::size_t i = 0; i < sim::num_structures; ++i)
                EXPECT_EQ(got[a].points[p].op.temps_k[i],
                          want[a].points[p].op.temps_k[i]);
            EXPECT_EQ(got[a].points[p].op.uopsPerSecond(),
                      want[a].points[p].op.uopsPerSecond());
        }
    }
}

} // namespace
} // namespace ramp::cmp
