/**
 * @file
 * Property tests for the coupled chip thermal model: exact 1-core
 * reduction to the single-core solver, energy balance, reciprocity
 * (the network symmetry), cross-core coupling, and monotonicity in
 * a neighbor's power.
 */

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cmp/thermal.hh"
#include "thermal/model.hh"
#include "util/json.hh"

namespace ramp::cmp {
namespace {

using sim::num_structures;
using sim::PerStructure;

PerStructure<double>
flatPower(double watts_per_block)
{
    PerStructure<double> p;
    p.fill(watts_per_block);
    return p;
}

ChipSteadyTemps
solve(const ChipThermalModel &model,
      const std::vector<PerStructure<double>> &power)
{
    auto t = model.trySteadyState(power);
    EXPECT_TRUE(t.ok())
        << (t.ok() ? "" : t.error().message);
    return std::move(t.value());
}

TEST(ChipThermal, OneCoreIsBitIdenticalToSingleCoreModel)
{
    // The acceptance bar for the whole generalization: a 1-core chip
    // assembles the same system in the same operation order as
    // thermal::ThermalModel, so the solutions are EQ-exact, not just
    // close.
    const ChipThermalModel chip(ChipFloorplan::grid(1));
    const thermal::ThermalModel single;

    for (const double watts : {0.0, 0.7, 2.0, 6.3}) {
        PerStructure<double> power = flatPower(watts);
        // An asymmetric bump so lateral terms matter.
        power[0] += 1.25;
        power[num_structures - 1] += 0.5;
        const auto got = solve(chip, {power});
        const auto want = single.steadyState(power);
        for (std::size_t i = 0; i < num_structures; ++i)
            EXPECT_EQ(got.core_k[0][i], want.block_k[i]) << i;
        EXPECT_EQ(got.spreader_k, want.spreader_k);
        EXPECT_EQ(got.sink_k, want.sink_k);
        EXPECT_EQ(got.maxChip(), want.maxBlock());
    }
}

TEST(ChipThermal, ZeroPowerIsAmbientEverywhere)
{
    const ChipThermalModel model(ChipFloorplan::grid(4));
    const auto t =
        solve(model, std::vector<PerStructure<double>>(
                         4, flatPower(0.0)));
    for (std::size_t c = 0; c < 4; ++c)
        for (double temp_k : t.core_k[c])
            EXPECT_NEAR(temp_k, model.params().ambient_k, 1e-6);
    EXPECT_NEAR(t.sink_k, model.params().ambient_k, 1e-6);
}

TEST(ChipThermal, EnergyBalanceAtTheSharedSink)
{
    // All injected power leaves through the one shared sink:
    // T_sink - T_amb = P_total * R_convection, at any core count.
    for (const std::size_t cores : {2u, 4u, 8u}) {
        const ChipThermalModel model(ChipFloorplan::grid(cores));
        std::vector<PerStructure<double>> power;
        double total = 0.0;
        for (std::size_t c = 0; c < cores; ++c) {
            const double per_block = 0.5 + 0.25 * c;
            power.push_back(flatPower(per_block));
            total += per_block * num_structures;
        }
        const auto t = solve(model, power);
        EXPECT_NEAR(t.sink_k - model.params().ambient_k,
                    total * model.params().r_convection, 1e-6)
            << cores << " cores";
    }
}

TEST(ChipThermal, ReciprocityAcrossCores)
{
    // The conductance network is symmetric, so the temperature rise
    // at node j per watt injected at node i equals the rise at i per
    // watt injected at j -- even across different cores. This pins
    // the cross-tile coupling terms to a physical (symmetric)
    // network, not just any perturbation.
    const ChipThermalModel model(ChipFloorplan::grid(2));
    const std::vector<PerStructure<double>> idle(2, flatPower(0.0));
    const auto base = solve(model, idle);

    const std::size_t block_i = 0;
    const std::size_t block_j = num_structures - 1;
    auto bump = [&](std::size_t core, std::size_t block) {
        auto power = idle;
        power[core][block] = 1.0;
        return solve(model, power);
    };
    const auto inject_0 = bump(0, block_i);
    const auto inject_1 = bump(1, block_j);
    const double rise_at_1 =
        inject_0.core_k[1][block_j] - base.core_k[1][block_j];
    const double rise_at_0 =
        inject_1.core_k[0][block_i] - base.core_k[0][block_i];
    EXPECT_GT(rise_at_1, 0.0);
    EXPECT_NEAR(rise_at_1, rise_at_0, 1e-9);
}

TEST(ChipThermal, NeighborPowerWarmsEveryTile)
{
    // Cross-core coupling: raising ONLY core1's power strictly warms
    // every structure of idle core0 (through the die laterally and
    // through the shared spreader), and monotonically -- more
    // neighbor power, more heat.
    const ChipThermalModel model(ChipFloorplan::grid(2));
    auto with_neighbor = [&](double watts) {
        return solve(model, {flatPower(1.0), flatPower(watts)});
    };
    const auto cool = with_neighbor(0.0);
    const auto warm = with_neighbor(2.0);
    const auto hot = with_neighbor(6.0);
    for (std::size_t i = 0; i < num_structures; ++i) {
        EXPECT_GT(warm.core_k[0][i], cool.core_k[0][i]) << i;
        EXPECT_GT(hot.core_k[0][i], warm.core_k[0][i]) << i;
    }
    // And the loaded core is hotter than the idle one.
    EXPECT_GT(hot.maxCore(1), hot.maxCore(0));
}

TEST(ChipThermal, CouplingDecaysWithDistance)
{
    // On an 8-core 4x2 grid, heating one corner core raises the
    // adjacent core's temperature more than the far corner's.
    const ChipThermalModel model(ChipFloorplan::grid(8));
    std::vector<PerStructure<double>> power(8, flatPower(0.0));
    power[0] = flatPower(5.0);
    const auto t = solve(model, power);
    // core1 abuts core0; core7 is the opposite corner.
    EXPECT_GT(t.maxCore(1), t.maxCore(7));
    // Everyone still sits above ambient -- the spreader couples all.
    for (std::size_t c = 0; c < 8; ++c)
        EXPECT_GT(t.maxCore(c), model.params().ambient_k);
}

TEST(ChipThermal, TranslationInvariance)
{
    // The same relative placement at a different chip origin is the
    // same network: absolute coordinates must not leak into the
    // conductances beyond rounding.
    std::string error;
    const auto near_doc = util::parseJson(
        "{\"cores\": [{\"x_mm\": 0.0, \"y_mm\": 0.0},"
        "{\"x_mm\": 4.5, \"y_mm\": 0.0}]}",
        &error);
    const auto far_doc = util::parseJson(
        "{\"cores\": [{\"x_mm\": 16.0, \"y_mm\": 8.0},"
        "{\"x_mm\": 20.5, \"y_mm\": 8.0}]}",
        &error);
    ASSERT_TRUE(near_doc && far_doc) << error;
    const auto near_plan =
        ChipFloorplan::tryParse(*near_doc, "near");
    const auto far_plan = ChipFloorplan::tryParse(*far_doc, "far");
    ASSERT_TRUE(near_plan.ok() && far_plan.ok());

    const ChipThermalModel near_model(near_plan.value());
    const ChipThermalModel far_model(far_plan.value());
    const std::vector<PerStructure<double>> power{flatPower(3.0),
                                                  flatPower(0.5)};
    const auto a = solve(near_model, power);
    const auto b = solve(far_model, power);
    for (std::size_t c = 0; c < 2; ++c)
        for (std::size_t i = 0; i < num_structures; ++i)
            EXPECT_NEAR(a.core_k[c][i], b.core_k[c][i], 1e-9);
}

TEST(ChipThermal, RejectsBadPower)
{
    const ChipThermalModel model(ChipFloorplan::grid(2));
    std::vector<PerStructure<double>> power(2, flatPower(1.0));
    power[1][3] = -0.5;
    auto negative = model.trySteadyState(power);
    ASSERT_FALSE(negative.ok());
    EXPECT_EQ(negative.error().code, util::ErrorCode::InvalidInput);
    EXPECT_NE(negative.error().message.find("core 1"),
              std::string::npos);

    power[1][3] = std::numeric_limits<double>::quiet_NaN();
    auto nan = model.trySteadyState(power);
    ASSERT_FALSE(nan.ok());
    EXPECT_EQ(nan.error().code, util::ErrorCode::NonFiniteValue);
}

} // namespace
} // namespace ramp::cmp
