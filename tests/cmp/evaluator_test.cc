/**
 * @file
 * Tests for the chip operating-point evaluator: exact 1-core
 * reduction to the single-core evaluation, cold-run determinism at
 * any thread count, and the coupled fixed point actually coupling
 * (a busy neighbor warms an idle core's point).
 */

#include <vector>

#include <gtest/gtest.h>

#include "cmp/evaluator.hh"
#include "drm/oracle.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp::cmp {
namespace {

core::EvalParams
quickParams()
{
    core::EvalParams p;
    p.warmup_uops = 30'000;
    p.measure_uops = 40'000;
    return p;
}

/** Exact (bit-level, via ==) equality of two operating points. */
void
expectOpIdentical(const core::OperatingPoint &a,
                  const core::OperatingPoint &b)
{
    EXPECT_EQ(a.activity.cycles, b.activity.cycles);
    EXPECT_EQ(a.activity.retired, b.activity.retired);
    for (std::size_t i = 0; i < sim::num_structures; ++i) {
        EXPECT_EQ(a.activity.activity[i], b.activity.activity[i]);
        EXPECT_EQ(a.temps_k[i], b.temps_k[i]) << i;
    }
    EXPECT_EQ(a.sink_temp_k, b.sink_temp_k);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.totalPower(), b.totalPower());
    EXPECT_EQ(a.uopsPerSecond(), b.uopsPerSecond());
}

TEST(ChipEvaluator, OneCoreMatchesSingleCoreBitForBit)
{
    // A 1-core chip runs the same timing sample and the same fixed
    // point over a bit-identical thermal system, so the whole
    // operating point reduces exactly to the single-core path.
    const drm::OracleExplorer explorer(quickParams());
    const ChipEvaluator chip(ChipFloorplan::grid(1), &explorer);
    const auto &app = workload::findApp("twolf");
    const auto cfg = sim::baseMachine();

    const auto got = chip.tryEvaluate({&app}, {cfg});
    ASSERT_TRUE(got.ok()) << got.error().message;
    const auto want = explorer.tryEvaluate(cfg, app);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got.value().cores.size(), 1u);
    expectOpIdentical(got.value().cores[0], want.value());
    EXPECT_EQ(got.value().sink_temp_k, want.value().sink_temp_k);
    EXPECT_EQ(got.value().uopsPerSecond(),
              want.value().uopsPerSecond());
}

TEST(ChipEvaluator, ColdRunsBitIdenticalAtAnyThreadCount)
{
    const auto &twolf = workload::findApp("twolf");
    const auto &gzip = workload::findApp("gzip");
    const std::vector<const workload::AppProfile *> apps{
        &twolf, &gzip, &gzip, &twolf};
    std::vector<sim::MachineConfig> cfgs(4, sim::baseMachine());
    cfgs[1].frequency_ghz = 3.5;
    cfgs[1].voltage_v = 0.95;

    const drm::OracleExplorer serial_explorer(quickParams());
    const ChipEvaluator serial(ChipFloorplan::grid(4),
                               &serial_explorer);
    const auto want = serial.tryEvaluate(apps, cfgs);
    ASSERT_TRUE(want.ok()) << want.error().message;

    util::ThreadPool pool(4);
    const drm::OracleExplorer pooled_explorer(quickParams());
    const ChipEvaluator pooled(ChipFloorplan::grid(4),
                               &pooled_explorer, &pool);
    const auto got = pooled.tryEvaluate(apps, cfgs);
    ASSERT_TRUE(got.ok()) << got.error().message;

    ASSERT_EQ(got.value().cores.size(), want.value().cores.size());
    for (std::size_t c = 0; c < 4; ++c)
        expectOpIdentical(got.value().cores[c],
                          want.value().cores[c]);
    EXPECT_EQ(got.value().sink_temp_k, want.value().sink_temp_k);
    EXPECT_EQ(got.value().converged, want.value().converged);
}

TEST(ChipEvaluator, BusyNeighborWarmsAnIdleCorePoint)
{
    // The chip fixed point must couple the cores: the same app on
    // core0 comes out hotter when core1 runs flat out than when the
    // whole comparison chip is identical except for core1's clock.
    const drm::OracleExplorer explorer(quickParams());
    const ChipEvaluator chip(ChipFloorplan::grid(2), &explorer);
    const auto &app = workload::findApp("twolf");

    auto evaluate_with_neighbor = [&](double neighbor_ghz) {
        std::vector<sim::MachineConfig> cfgs(2, sim::baseMachine());
        cfgs[1].frequency_ghz = neighbor_ghz;
        const auto r = chip.tryEvaluate({&app, &app}, cfgs);
        EXPECT_TRUE(r.ok());
        return r.value();
    };
    const auto slow = evaluate_with_neighbor(3.0);
    const auto fast = evaluate_with_neighbor(4.75);
    EXPECT_GT(fast.cores[0].maxTemp(), slow.cores[0].maxTemp());
    // Core0's own timing sample is neighbor-independent.
    EXPECT_EQ(fast.cores[0].activity.cycles,
              slow.cores[0].activity.cycles);
    EXPECT_EQ(fast.cores[0].uopsPerSecond(),
              slow.cores[0].uopsPerSecond());
}

TEST(ChipEvaluator, ThroughputSumsCores)
{
    const drm::OracleExplorer explorer(quickParams());
    const ChipEvaluator chip(ChipFloorplan::grid(2), &explorer);
    const auto &app = workload::findApp("gzip");
    const std::vector<sim::MachineConfig> cfgs(2,
                                               sim::baseMachine());
    const auto r = chip.tryEvaluate({&app, &app}, cfgs);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value().uopsPerSecond(),
                     r.value().cores[0].uopsPerSecond() +
                         r.value().cores[1].uopsPerSecond());
    EXPECT_GE(r.value().maxTemp(), r.value().cores[0].maxTemp());
}

} // namespace
} // namespace ramp::cmp
