/**
 * @file
 * Reproduces paper Table 2: per-application IPC and base power
 * (dynamic + leakage) on the base non-adaptive processor.
 *
 * The paper reports IPC 0.7-3.2 and power 15.6-36.5 W across the
 * nine-application suite; the calibrated synthetic profiles must land
 * on those operating points. The bench prints measured vs published
 * values and checks the qualitative invariants the rest of the
 * evaluation depends on (multimedia fastest/hottest, twolf/art
 * coolest).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Suite suite(bench::Options::parse(argc, argv));

    util::Table t({"app", "type", "IPC", "IPC paper", "power W",
                   "power paper", "Tmax K"});
    t.setTitle("Table 2: workload description (measured vs paper)");

    double ipc_mm_min = 1e9, ipc_rest_max = 0.0;
    double worst_ipc_err = 0.0, worst_power_err = 0.0;
    for (std::size_t i = 0; i < suite.apps.size(); ++i) {
        const auto &app = suite.apps[i];
        const auto &op = suite.base_ops[i];
        t.addRow({
            app.name,
            workload::appClassName(app.app_class),
            util::Table::num(op.ipc(), 2),
            util::Table::num(app.table2_ipc, 1),
            util::Table::num(op.totalPower(), 1),
            util::Table::num(app.table2_power_w, 1),
            util::Table::num(op.maxTemp(), 1),
        });
        const double ipc_err =
            std::abs(op.ipc() - app.table2_ipc) / app.table2_ipc;
        const double pow_err =
            std::abs(op.totalPower() - app.table2_power_w) /
            app.table2_power_w;
        worst_ipc_err = std::max(worst_ipc_err, ipc_err);
        worst_power_err = std::max(worst_power_err, pow_err);
        if (app.app_class == workload::AppClass::Multimedia)
            ipc_mm_min = std::min(ipc_mm_min, op.ipc());
        else
            ipc_rest_max = std::max(ipc_rest_max, op.ipc());
    }
    t.print(std::cout);

    std::printf("\nworst IPC error vs Table 2:   %.1f%%\n",
                100.0 * worst_ipc_err);
    std::printf("worst power error vs Table 2: %.1f%%\n",
                100.0 * worst_power_err);

    // Shape invariants (Section 6.2 / 7.1): multimedia leads the
    // suite in IPC, and the hottest application approaches 400 K.
    double hottest = 0.0;
    for (const auto &op : suite.base_ops)
        hottest = std::max(hottest, op.maxTemp());
    // The paper's "near 400 K" is a peak reading; our steady-state
    // evaluator reports sustained temperatures (see EXPERIMENTS.md).
    const bool ok = worst_ipc_err < 0.15 && worst_power_err < 0.25 &&
                    ipc_mm_min > ipc_rest_max && hottest > 378.0 &&
                    hottest < 400.0;
    if (!ok) {
        std::fprintf(stderr, "FAIL: Table 2 calibration drifted\n");
        return 1;
    }
    std::printf("hottest sustained block temperature: %.1f K "
                "(paper reports a ~400 K peak)\n",
                hottest);
    std::printf("\nTable 2 check: OK\n");
    return 0;
}
