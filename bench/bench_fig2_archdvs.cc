/**
 * @file
 * Reproduces paper Figure 2: DRM performance with combined
 * microarchitectural adaptation + DVS (ArchDVS) relative to the base
 * non-adaptive processor, for qualification temperatures T_qual in
 * {400, 370, 345, 325} K, across all nine applications.
 *
 * Expected shape (paper Section 7.1):
 *  - T_qual = 400 K (worst case observed on chip): every application
 *    gains (paper: 10-19%), low-IPC apps gain most;
 *  - T_qual = 370 K: the hottest applications (MP3dec, MPGdec) sit at
 *    ~1.0 -- qualification tuned so the worst apps just meet target;
 *  - T_qual = 345 K: losses limited (paper: within 10%);
 *  - T_qual = 325 K: drastic under-design; high-IPC multimedia apps
 *    slow the most (paper: up to 26% for MP3dec) while the coolest
 *    apps (art, ammp) still hold ~1.0.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Suite suite(bench::Options::parse(argc, argv));

    const double t_quals[] = {400.0, 370.0, 345.0, 325.0};

    util::Table t({"app", "base FIT@370", "perf@400K", "perf@370K",
                   "perf@345K", "perf@325K"});
    t.setTitle("Figure 2: ArchDVS DRM performance vs base, by T_qual");

    std::map<std::string, std::map<double, double>> perf;
    for (const auto &app : suite.apps) {
        const auto explored =
            suite.explorer.explore(app, drm::AdaptationSpace::ArchDvs);

        std::vector<std::string> row{app.name};
        const auto qual370 = suite.qualification(370.0);
        row.push_back(util::Table::num(
            drm::operatingPointFit(qual370, explored.base), 0));

        for (double tq : t_quals) {
            const auto sel =
                drm::selectDrm(explored, suite.qualification(tq));
            perf[app.name][tq] = sel.perf_rel;
            row.push_back(util::Table::num(sel.perf_rel, 3) +
                          (sel.feasible ? "" : "*"));
        }
        t.addRow(std::move(row));
        std::fprintf(stderr, "  explored %s (%zu configs)\n",
                     app.name.c_str(), explored.points.size());
    }
    t.print(std::cout);
    std::cout << "(* = no configuration met the FIT target; "
                 "least-violating configuration shown)\n\n";

    // Shape checks against Section 7.1.
    int checks = 0, passed = 0;
    auto check = [&](const char *what, bool ok) {
        ++checks;
        passed += ok;
        std::printf("  [%s] %s\n", ok ? "ok" : "DEVIATION", what);
    };

    bool all_gain_400 = true, all_limited_345 = true;
    for (const auto &app : suite.apps) {
        all_gain_400 &= perf[app.name][400.0] >= 1.0;
        all_limited_345 &= perf[app.name][345.0] >= 0.80;
    }
    check("T_qual=400K: every application gains or holds performance",
          all_gain_400);
    check("T_qual=370K: hottest apps (MPGdec, MP3dec) near 1.0",
          perf["MPGdec"][370.0] > 0.93 && perf["MPGdec"][370.0] < 1.1 &&
          perf["MP3dec"][370.0] > 0.93 && perf["MP3dec"][370.0] < 1.1);
    check("T_qual=345K: all losses limited (>= 0.80 of base)",
          all_limited_345);
    check("T_qual=325K: hot multimedia apps slow the most",
          perf["MP3dec"][325.0] < perf["art"][325.0] &&
          perf["MPGdec"][325.0] < perf["art"][325.0]);
    check("T_qual=325K: coolest apps (art) still hold >= 0.95",
          perf["art"][325.0] >= 0.95);
    check("low-IPC apps gain more than hot multimedia at 400K",
          perf["twolf"][400.0] > perf["MP3dec"][400.0]);

    std::printf("\nFigure 2 shape: %d/%d checks hold\n", passed,
                checks);
    return 0;
}
