/**
 * @file
 * Reproduces paper Figure 2: DRM performance with combined
 * microarchitectural adaptation + DVS (ArchDVS) relative to the base
 * non-adaptive processor, for qualification temperatures T_qual in
 * {400, 370, 345, 325} K, across all nine applications.
 *
 * Expected shape (paper Section 7.1):
 *  - T_qual = 400 K (worst case observed on chip): every application
 *    gains (paper: 10-19%), low-IPC apps gain most;
 *  - T_qual = 370 K: the hottest applications (MP3dec, MPGdec) sit at
 *    ~1.0 -- qualification tuned so the worst apps just meet target;
 *  - T_qual = 345 K: losses limited (paper: within 10%);
 *  - T_qual = 325 K: drastic under-design; high-IPC multimedia apps
 *    slow the most (paper: up to 26% for MP3dec) while the coolest
 *    apps (art, ammp) still hold ~1.0.
 *
 * With --surrogate rank|auto the selections run through the tiered
 * explorer (drm/surrogate/tiered.hh) instead of exhaustive
 * exploration; the winners are identical, only the exact-simulation
 * count changes. Either way the run emits a BENCH_fig2.json
 * perf-trajectory artifact (exact sims per selection, wall time,
 * throughput) for cross-PR comparison.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>

#include "common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    const auto opts = bench::Options::parse(argc, argv);
    bench::Suite suite(opts);

    const bool tiered =
        opts.surrogate != drm::surrogate::SurrogateMode::Off;
    drm::surrogate::TieredOptions topts;
    topts.mode = opts.surrogate;
    drm::surrogate::TieredExplorer tiered_explorer(suite.explorer,
                                                   &suite.cache,
                                                   topts);

    const double t_quals[] = {400.0, 370.0, 345.0, 325.0};
    const auto space = drm::AdaptationSpace::ArchDvs;
    const std::size_t space_points = drm::configSpace(space).size();

    util::Table t({"app", "base FIT@370", "perf@400K", "perf@370K",
                   "perf@345K", "perf@325K"});
    t.setTitle("Figure 2: ArchDVS DRM performance vs base, by T_qual");

    std::map<std::string, std::map<double, double>> perf;
    std::size_t selections = 0;
    std::size_t exact_evals = 0;
    std::size_t fallbacks = 0;
    const auto start = std::chrono::steady_clock::now();

    for (std::size_t a = 0; a < suite.apps.size(); ++a) {
        const auto &app = suite.apps[a];
        std::vector<std::string> row{app.name};
        const auto qual370 = suite.qualification(370.0);
        row.push_back(util::Table::num(
            drm::operatingPointFit(qual370, suite.base_ops[a]), 0));

        if (tiered) {
            std::size_t app_evals = 0;
            for (double tq : t_quals) {
                const auto ts = tiered_explorer.selectDrm(
                    app, space, suite.qualification(tq));
                perf[app.name][tq] = ts.selection.perf_rel;
                row.push_back(
                    util::Table::num(ts.selection.perf_rel, 3) +
                    (ts.selection.feasible ? "" : "*"));
                ++selections;
                exact_evals += ts.exact_evals;
                app_evals += ts.exact_evals;
                fallbacks += ts.used_surrogate ? 0 : 1;
            }
            std::fprintf(stderr,
                         "  tiered %s (%zu of %zu configs exact)\n",
                         app.name.c_str(), app_evals, space_points);
        } else {
            const auto explored = suite.explorer.explore(app, space);
            for (double tq : t_quals) {
                const auto sel =
                    drm::selectDrm(explored, suite.qualification(tq));
                perf[app.name][tq] = sel.perf_rel;
                row.push_back(util::Table::num(sel.perf_rel, 3) +
                              (sel.feasible ? "" : "*"));
                ++selections;
            }
            exact_evals += explored.points.size();
            std::fprintf(stderr, "  explored %s (%zu configs)\n",
                         app.name.c_str(), explored.points.size());
        }
        t.addRow(std::move(row));
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    t.print(std::cout);
    std::cout << "(* = no configuration met the FIT target; "
                 "least-violating configuration shown)\n\n";

    // Shape checks against Section 7.1.
    int checks = 0, passed = 0;
    auto check = [&](const char *what, bool ok) {
        ++checks;
        passed += ok;
        std::printf("  [%s] %s\n", ok ? "ok" : "DEVIATION", what);
    };

    bool all_gain_400 = true, all_limited_345 = true;
    for (const auto &app : suite.apps) {
        all_gain_400 &= perf[app.name][400.0] >= 1.0;
        all_limited_345 &= perf[app.name][345.0] >= 0.80;
    }
    check("T_qual=400K: every application gains or holds performance",
          all_gain_400);
    check("T_qual=370K: hottest apps (MPGdec, MP3dec) near 1.0",
          perf["MPGdec"][370.0] > 0.93 && perf["MPGdec"][370.0] < 1.1 &&
          perf["MP3dec"][370.0] > 0.93 && perf["MP3dec"][370.0] < 1.1);
    check("T_qual=345K: all losses limited (>= 0.80 of base)",
          all_limited_345);
    check("T_qual=325K: hot multimedia apps slow the most",
          perf["MP3dec"][325.0] < perf["art"][325.0] &&
          perf["MPGdec"][325.0] < perf["art"][325.0]);
    check("T_qual=325K: coolest apps (art) still hold >= 0.95",
          perf["art"][325.0] >= 0.95);
    check("low-IPC apps gain more than hot multimedia at 400K",
          perf["twolf"][400.0] > perf["MP3dec"][400.0]);

    std::printf("\nFigure 2 shape: %d/%d checks hold\n", passed,
                checks);

    // Perf-trajectory artifact: the numbers later PRs are judged
    // against. Selections here share one exploration per app, so
    // "per selection" amortizes exploration across the T_qual sweep.
    auto doc = util::JsonValue::makeObject();
    doc.set("bench", util::JsonValue::makeString("fig2_archdvs"));
    doc.set("space",
            util::JsonValue::makeString(
                drm::adaptationSpaceName(space)));
    doc.set("surrogate",
            util::JsonValue::makeString(
                drm::surrogate::surrogateModeName(opts.surrogate)));
    doc.set("apps", util::JsonValue::makeNumber(
                        static_cast<double>(suite.apps.size())));
    doc.set("space_points", util::JsonValue::makeNumber(
                                static_cast<double>(space_points)));
    doc.set("selections", util::JsonValue::makeNumber(
                              static_cast<double>(selections)));
    doc.set("exact_sims_total", util::JsonValue::makeNumber(
                                    static_cast<double>(exact_evals)));
    doc.set("exact_sims_per_selection",
            util::JsonValue::makeNumber(
                selections ? static_cast<double>(exact_evals) /
                                 static_cast<double>(selections)
                           : 0.0));
    doc.set("surrogate_fallbacks",
            util::JsonValue::makeNumber(
                static_cast<double>(fallbacks)));
    doc.set("wall_s", util::JsonValue::makeNumber(wall_s));
    doc.set("selections_per_s",
            util::JsonValue::makeNumber(
                wall_s > 0.0 ? static_cast<double>(selections) / wall_s
                             : 0.0));
    doc.set("shape_checks_passed",
            util::JsonValue::makeNumber(static_cast<double>(passed)));
    doc.set("shape_checks", util::JsonValue::makeNumber(
                                static_cast<double>(checks)));
    bench::writeBenchArtifact(
        bench::benchJsonPath(opts, "BENCH_fig2.json"), doc);
    return 0;
}
