/**
 * @file
 * Google-benchmark micro-kernels for the performance-critical pieces:
 * the failure-mechanism models, qualification FIT evaluation, the
 * thermal solvers, the cache model, the branch predictor, trace
 * generation, and whole-core cycle throughput. These bound the cost
 * of the reproduction sweeps.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/engine.hh"
#include "core/mechanisms.hh"
#include "core/qualification.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/core.hh"
#include "thermal/model.hh"
#include "util/random.hh"
#include "workload/trace_gen.hh"

namespace {

using namespace ramp;

void
BM_MechanismLogRate(benchmark::State &state)
{
    const auto mech = static_cast<core::Mechanism>(state.range(0));
    core::OperatingConditions c;
    c.temp_k = 360.0;
    double t = 340.0;
    for (auto _ : state) {
        c.temp_k = t;
        t = t < 400.0 ? t + 0.01 : 340.0;
        benchmark::DoNotOptimize(core::logRelativeRate(mech, c));
    }
}
BENCHMARK(BM_MechanismLogRate)->DenseRange(0, 3);

void
BM_QualificationFit(benchmark::State &state)
{
    core::QualificationSpec spec;
    spec.alpha_qual.fill(0.5);
    const core::Qualification qual(spec);
    core::OperatingConditions c;
    c.temp_k = 365.0;
    for (auto _ : state) {
        double total = 0.0;
        for (auto s : sim::allStructures())
            for (auto m : core::allMechanisms())
                total += qual.fit(s, m, c);
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_QualificationFit);

void
BM_SteadyFitReport(benchmark::State &state)
{
    core::QualificationSpec spec;
    spec.alpha_qual.fill(0.5);
    const core::Qualification qual(spec);
    sim::PerStructure<double> on;
    on.fill(1.0);
    sim::PerStructure<double> temps;
    temps.fill(362.0);
    sim::PerStructure<double> act;
    act.fill(0.3);
    for (auto _ : state) {
        const auto rep =
            core::steadyFit(qual, on, temps, act, 1.0, 4.0);
        benchmark::DoNotOptimize(rep.totalFit());
    }
}
BENCHMARK(BM_SteadyFitReport);

void
BM_ThermalSteadyState(benchmark::State &state)
{
    const thermal::ThermalModel model;
    sim::PerStructure<double> power;
    power.fill(2.5);
    for (auto _ : state) {
        const auto t = model.steadyState(power);
        benchmark::DoNotOptimize(t.sink_k);
    }
}
BENCHMARK(BM_ThermalSteadyState);

void
BM_ThermalTransientStep(benchmark::State &state)
{
    thermal::ThermalModel model;
    sim::PerStructure<double> power;
    power.fill(2.5);
    model.initialiseSteady(power);
    for (auto _ : state)
        model.step(power, 1e-3);
}
BENCHMARK(BM_ThermalTransientStep);

void
BM_CacheAccess(benchmark::State &state)
{
    sim::Cache cache(64, 2, 64);
    util::Rng rng(1);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr = (addr + 8) % (128 * 1024);
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    sim::BimodalAgree bp(8192);
    std::uint64_t pc = 0x1000;
    for (auto _ : state) {
        pc = 0x1000 + (pc * 2654435761u) % 4096;
        const bool taken = (pc & 64) != 0;
        benchmark::DoNotOptimize(bp.predict(pc));
        bp.update(pc, taken);
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_TraceGeneration(benchmark::State &state)
{
    workload::TraceGenerator gen(workload::findApp("bzip2"), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreCycles(benchmark::State &state)
{
    const auto &app = workload::findApp(
        state.range(0) == 0 ? "MPGdec" : "twolf");
    workload::TraceGenerator gen(app, 1);
    sim::Core core(sim::baseMachine(), gen);
    core.run(50000); // warm
    for (auto _ : state)
        core.run(1000);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoreCycles)->DenseRange(0, 1);

} // namespace

int
main(int argc, char **argv)
{
    // The unified bench flags are stripped first; everything left
    // over belongs to google-benchmark, which rejects what it does
    // not recognize either.
    ramp::bench::Options::parseStripping(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
