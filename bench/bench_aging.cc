/**
 * @file
 * Lifetime trajectories under slack-banking versus steady-state DRM
 * (Sections 3.7 and 7): three duty-cycle scenarios -- a consumer
 * part running bursty, a server part pinned at full duty, and a
 * thermally-capped mobile part -- are aged epoch by epoch through
 * the damage-accumulation integrator (aging/damage.hh), with each
 * epoch's operating point chosen through the *unmodified* oracle
 * Selection API.
 *
 * The steady policy selects against the shipped qualification
 * temperature every epoch: it is safe by construction and leaves
 * the qualification margin on the table. The slack-banking policy
 * (aging/slack_bank.hh) selects against the effective qualification
 * temperature its banked slack affords: young chips run above the
 * steady-state-safe point, and the same selection calls throttle
 * them as integrated damage catches up with the age budget.
 *
 * The bench asserts the trade the policy promises: measurably
 * higher early-life performance than steady-state DRM in every
 * scenario, with the final consumed-lifetime fraction still at or
 * below 1.0. Either failing is a DEVIATION and a nonzero exit.
 *
 * Artifacts: BENCH_aging.json carries the full per-epoch trajectory
 * (consumed fraction, effective T_qual, chosen frequency, perf) for
 * every scenario x policy; --aging-state PATH additionally saves
 * the server scenario's final slack-policy AgingState in the
 * canonical format ramp_served --aging-state consumes.
 *
 * With a fault plan installed that arms sensor faults, the
 * integrator's view of each epoch's temperatures passes through a
 * SensorFaulter ("aging.temp" stream), so aging estimation under
 * sensor error is reproducible from (plan, seed).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "aging/damage.hh"
#include "aging/slack_bank.hh"
#include "common.hh"
#include "fault/fault.hh"
#include "power/power.hh"
#include "util/constants.hh"
#include "util/table.hh"

namespace {

using namespace ramp;

/** One duty-cycle scenario. */
struct Scenario
{
    const char *name;
    /** Suite app index the scenario ages (mod the suite size). */
    std::size_t app;
    /** Thermal design cap, K; 0 = no DTM constraint. */
    double t_design_k;
    /** Active-duty fraction for epoch @p i. */
    double (*duty)(std::uint32_t i);
};

double
dutyBurst(std::uint32_t i)
{
    return i % 2 == 0 ? 0.9 : 0.1;
}

double
dutySustained(std::uint32_t)
{
    return 1.0;
}

double
dutyMobile(std::uint32_t)
{
    return 0.6;
}

/** One epoch of one policy's trajectory (artifact rows). */
struct EpochRecord
{
    double consumed_frac = 0.0;
    double t_qual_eff_k = 0.0;
    double frequency_ghz = 0.0;
    double perf_rel = 0.0;
};

/** One (scenario, policy) aging run's outcome. */
struct PolicyRun
{
    std::vector<EpochRecord> trajectory;
    double early_perf_rel = 0.0; ///< Mean over the first 20%.
    double final_consumed_frac = 0.0;
    double final_age_hours = 0.0;
    aging::AgingState state;
};

/** Index of the slowest valid point (the idle rung). */
std::size_t
idleIndex(const drm::ExploredApp &explored)
{
    std::size_t idle = 0;
    double best = 1e300;
    for (std::size_t i = 0; i < explored.points.size(); ++i) {
        const auto &p = explored.points[i];
        if (p.valid && p.op.config.frequency_ghz < best) {
            best = p.op.config.frequency_ghz;
            idle = i;
        }
    }
    return idle;
}

/**
 * Age one chip through @p num_epochs epochs of @p scenario under
 * one policy. A slack-banking policy is passed in; nullptr runs the
 * steady-state baseline (always the base T_qual). Damage is always
 * measured against the *shipped* qualification -- the policy only
 * moves the temperature the selection is made at.
 */
PolicyRun
agePolicy(const bench::Suite &suite,
          const drm::ExploredApp &explored, const Scenario &scenario,
          const aging::SlackBankPolicy *policy, double base_t_qual_k,
          std::uint32_t num_epochs, double epoch_years)
{
    const core::Qualification shipped =
        suite.qualification(base_t_qual_k);
    const sim::PerStructure<double> on_fractions =
        power::poweredFractions(sim::baseMachine());
    aging::DamageParams damage_params;
    aging::DamageIntegrator integrator(shipped, on_fractions,
                                       damage_params);

    // Sensor-faulted aging: when the installed plan arms sensor
    // faults, the integrator's temperature view passes through a
    // per-run faulter. Clean runs never construct it, so the clean
    // path is bit-identical to a build without fault hooks.
    const fault::FaultPlan *plan = fault::activeFaultPlan();
    std::optional<fault::SensorFaulter> temp_faulter;
    if (plan && fault::sensorFaultsArmed(*plan))
        temp_faulter.emplace(*plan, "aging.temp", base_t_qual_k);

    const std::size_t idle = idleIndex(explored);
    const double epoch_hours = epoch_years * util::hours_per_year;
    const std::uint32_t early_epochs =
        std::max<std::uint32_t>(1, num_epochs / 5);

    PolicyRun run;
    run.trajectory.reserve(num_epochs);
    double early_sum = 0.0;

    for (std::uint32_t i = 0; i < num_epochs; ++i) {
        const double t_eff_k =
            policy ? policy->effectiveTQualK(integrator.state())
                   : base_t_qual_k;
        const core::Qualification qual =
            suite.qualification(t_eff_k);
        drm::Selection sel = drm::selectDrm(explored, qual);
        if (scenario.t_design_k > 0.0) {
            // Thermally-capped part: the binding constraint is
            // whichever policy picks the slower point.
            const drm::Selection dtm =
                drm::selectDtm(explored, scenario.t_design_k, qual);
            if (dtm.config.frequency_ghz < sel.config.frequency_ghz)
                sel = dtm;
        }

        const double duty = scenario.duty(i);
        const auto integrate = [&](const core::OperatingPoint &op,
                                   double hours) {
            if (hours <= 0.0)
                return;
            if (!temp_faulter) {
                integrator.addInterval(op.temps_k, op.activity.activity,
                                       op.config.voltage_v,
                                       op.config.frequency_ghz,
                                       hours * 3600.0);
                return;
            }
            sim::PerStructure<double> temps = op.temps_k;
            for (auto &t : temps)
                t = temp_faulter->apply(t);
            integrator.addInterval(temps, op.activity.activity,
                                   op.config.voltage_v,
                                   op.config.frequency_ghz,
                                   hours * 3600.0);
        };
        integrate(explored.points[sel.index].op,
                  duty * epoch_hours);
        integrate(explored.points[idle].op,
                  (1.0 - duty) * epoch_hours);

        const double perf = sel.perf_rel * duty;
        if (i < early_epochs)
            early_sum += perf;

        EpochRecord rec;
        rec.consumed_frac = integrator.state().totalDamage();
        rec.t_qual_eff_k = t_eff_k;
        rec.frequency_ghz = sel.config.frequency_ghz;
        rec.perf_rel = perf;
        run.trajectory.push_back(rec);
    }

    run.early_perf_rel = early_sum / early_epochs;
    run.final_consumed_frac = integrator.state().totalDamage();
    run.final_age_hours = integrator.state().age_hours;
    run.state = integrator.state();
    return run;
}

util::JsonValue
policyJson(const char *name, const PolicyRun &run)
{
    using util::JsonValue;
    JsonValue trajectory = JsonValue::makeArray();
    for (const auto &rec : run.trajectory) {
        JsonValue row = JsonValue::makeObject();
        row.set("consumed", JsonValue::makeNumber(rec.consumed_frac));
        row.set("t_qual_eff_k",
                JsonValue::makeNumber(rec.t_qual_eff_k));
        row.set("frequency_ghz",
                JsonValue::makeNumber(rec.frequency_ghz));
        row.set("perf_rel", JsonValue::makeNumber(rec.perf_rel));
        trajectory.push(row);
    }
    JsonValue out = JsonValue::makeObject();
    out.set("policy", JsonValue::makeString(name));
    out.set("early_perf_rel",
            JsonValue::makeNumber(run.early_perf_rel));
    out.set("final_consumed",
            JsonValue::makeNumber(run.final_consumed_frac));
    out.set("final_age_hours",
            JsonValue::makeNumber(run.final_age_hours));
    out.set("trajectory", std::move(trajectory));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Suite suite(opts);

    constexpr double base_t_qual_k = 345.0;
    constexpr std::uint32_t num_epochs = 120;
    constexpr double epoch_years = 0.25; // 30-year service life.

    const Scenario scenarios[] = {
        {"consumer_burst", 0, 0.0, dutyBurst},
        {"server_sustained", 1, 0.0, dutySustained},
        {"mobile_throttled", 2, 360.0, dutyMobile},
    };

    const aging::SlackBankPolicy policy;

    util::JsonValue scenario_docs = util::JsonValue::makeArray();
    bool boost_holds = true;
    bool budget_holds = true;
    std::optional<aging::AgingState> reference_state;

    for (const Scenario &scenario : scenarios) {
        const workload::AppProfile &app =
            suite.apps[scenario.app % suite.apps.size()];
        const auto explored =
            suite.explorer.explore(app, drm::AdaptationSpace::Dvs);

        const PolicyRun steady =
            agePolicy(suite, explored, scenario, nullptr,
                      base_t_qual_k, num_epochs, epoch_years);
        const PolicyRun slack =
            agePolicy(suite, explored, scenario, &policy,
                      base_t_qual_k, num_epochs, epoch_years);

        util::Table t({"policy", "early perf", "final consumed",
                       "age (yr)"});
        t.setTitle(util::cat("Aging [", scenario.name, ", ",
                             app.name, "]: slack banking vs steady "
                             "DRM"));
        for (const auto &[name, run] :
             {std::pair<const char *, const PolicyRun *>{
                  "steady", &steady},
              {"slack-bank", &slack}}) {
            t.addRow({name, util::Table::num(run->early_perf_rel, 4),
                      util::Table::num(run->final_consumed_frac, 4),
                      util::Table::num(run->final_age_hours /
                                           util::hours_per_year,
                                       1)});
        }
        t.print(std::cout);

        const bool boosted =
            slack.early_perf_rel > steady.early_perf_rel;
        const bool budgeted = slack.final_consumed_frac <= 1.0 &&
                              steady.final_consumed_frac <= 1.0;
        boost_holds &= boosted;
        budget_holds &= budgeted;
        std::printf("  early-life boost: %+.2f%% (%s), budget: "
                    "%s\n\n",
                    100.0 * (slack.early_perf_rel /
                                 steady.early_perf_rel -
                             1.0),
                    boosted ? "ok" : "DEVIATION",
                    budgeted ? "ok" : "DEVIATION");

        if (std::string(scenario.name) == "server_sustained")
            reference_state = slack.state;

        util::JsonValue doc = util::JsonValue::makeObject();
        doc.set("scenario", util::JsonValue::makeString(
                                scenario.name));
        doc.set("app", util::JsonValue::makeString(app.name));
        doc.set("t_design_k",
                util::JsonValue::makeNumber(scenario.t_design_k));
        util::JsonValue policies = util::JsonValue::makeArray();
        policies.push(policyJson("steady", steady));
        policies.push(policyJson("slack-bank", slack));
        doc.set("policies", std::move(policies));
        scenario_docs.push(doc);
    }

    util::JsonValue artifact = util::JsonValue::makeObject();
    artifact.set("bench", util::JsonValue::makeString("aging"));
    artifact.set("num_epochs",
                 util::JsonValue::makeNumber(num_epochs));
    artifact.set("epoch_years",
                 util::JsonValue::makeNumber(epoch_years));
    artifact.set("t_qual_base_k",
                 util::JsonValue::makeNumber(base_t_qual_k));
    artifact.set("scenarios", std::move(scenario_docs));
    artifact.set("early_boost_holds",
                 util::JsonValue::makeBool(boost_holds));
    artifact.set("budget_holds",
                 util::JsonValue::makeBool(budget_holds));
    bench::writeBenchArtifact(
        bench::benchJsonPath(opts, "BENCH_aging.json"), artifact);

    if (!opts.aging_state_path.empty() && reference_state) {
        if (auto saved = aging::saveAgingState(opts.aging_state_path,
                                               *reference_state);
            !saved)
            util::warn(util::cat("--aging-state: ",
                                 saved.error().str()));
        else
            std::fprintf(stderr, "  aging state: %s\n",
                         opts.aging_state_path.c_str());
    }

    std::printf("slack banking beats steady early-life perf in all "
                "scenarios: %s\n",
                boost_holds ? "yes" : "DEVIATION");
    std::printf("final consumed lifetime <= 1.0 in all scenarios: "
                "%s\n",
                budget_holds ? "yes" : "DEVIATION");
    return boost_holds && budget_holds ? 0 : 1;
}
