/**
 * @file
 * Multi-core RAMP: chip throughput under per-core versus global FIT
 * budgeting, and cross-core wear-leveling, on the coupled CMP model
 * (src/cmp) -- the chip-level extension of the paper's single-core
 * scheme.
 *
 * Three duty mixes -- a consumer part running a bursty integer mix, a
 * server part pinned at full duty on a hot/cool mix, and a mobile
 * part running media codecs at partial duty -- are selected and aged
 * at 2, 4, and 8 cores (overridable with --cores or an explicit
 * --floorplan JSON). Each mix assigns one suite application per core;
 * every core's adaptation space is explored through the *unmodified*
 * oracle and the chip selection is made twice under the SAME chip FIT
 * budget (N x the single-core 4000 FIT target):
 *
 *  - per-core: static equal shares, cores isolated -- the paper's
 *    scheme replicated N ways;
 *  - global: cool cores' unused FIT headroom funds hot cores'
 *    frequency (cmp/chip_drm.hh).
 *
 * The bench asserts the reallocation promise: global chip throughput
 * is never below per-core at equal chip FIT. It then ages each mix
 * epoch by epoch through per-core damage integrators fed by the
 * chip-coupled temperatures (cmp/evaluator.hh), with and without the
 * hysteretic wear-leveling migration policy (cmp/wear.hh), and
 * asserts leveling narrows the max - min consumed-lifetime spread.
 * Either failing is a DEVIATION and a nonzero exit.
 *
 * Artifacts: BENCH_cmp.json carries, per (mix, core count), both
 * policies' selections (throughput, summed FIT, per-core budgets) and
 * both aging runs' final spreads and migration counts.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cmp/chip_drm.hh"
#include "cmp/evaluator.hh"
#include "cmp/wear.hh"
#include "common.hh"
#include "util/constants.hh"
#include "util/table.hh"

namespace {

using namespace ramp;

/** One duty-mix scenario: which apps share the chip, at what duty. */
struct Scenario
{
    const char *name;
    /** Suite app index per core slot (cycled, mod the suite size). */
    std::vector<std::size_t> slots;
    /** Active-duty fraction for epoch @p i. */
    double (*duty)(std::uint32_t i);
};

double
dutyBurst(std::uint32_t i)
{
    return i % 2 == 0 ? 0.9 : 0.1;
}

double
dutySustained(std::uint32_t)
{
    return 1.0;
}

double
dutyMobile(std::uint32_t)
{
    return 0.6;
}

/** Both policies' selections for one (scenario, chip) pair. */
struct SelectionPair
{
    cmp::ChipSelection per_core;
    cmp::ChipSelection global;
    double budget_fit = 0.0;
};

/** One wear-leveling aging run's outcome. */
struct WearRun
{
    double spread_frac = 0.0;
    std::uint64_t migrations = 0;
    std::vector<double> consumed; ///< Per-core final fraction.
};

/**
 * Age one chip through @p num_epochs epochs of @p scenario's duty
 * cycle, each core running its assigned app at its globally-selected
 * operating point, damage fed by the chip-coupled temperatures.
 * @p level turns the migration policy on; off keeps the static
 * assignment, isolating the policy's effect on the spread.
 *
 * Chip points are memoized per assignment: migrations only permute
 * the (app, config) pairs across tiles, so a run revisits few
 * distinct chip configurations.
 */
WearRun
ageChip(const cmp::ChipEvaluator &chip,
        const std::vector<const workload::AppProfile *> &apps,
        const std::vector<sim::MachineConfig> &cfgs,
        const core::Qualification &qual, const Scenario &scenario,
        const cmp::WearParams &params, bool level,
        std::uint32_t num_epochs, double epoch_years)
{
    const std::size_t n = apps.size();
    cmp::WearLeveler leveler(qual, n, params);

    std::vector<std::size_t> assignment(n);
    for (std::size_t c = 0; c < n; ++c)
        assignment[c] = c;

    std::map<std::vector<std::size_t>, cmp::ChipOperatingPoint>
        points;
    const auto point_for =
        [&](const std::vector<std::size_t> &assign)
        -> const cmp::ChipOperatingPoint & {
        auto it = points.find(assign);
        if (it != points.end())
            return it->second;
        std::vector<const workload::AppProfile *> placed_apps(n);
        std::vector<sim::MachineConfig> placed_cfgs(n);
        for (std::size_t c = 0; c < n; ++c) {
            placed_apps[c] = apps[assign[c]];
            placed_cfgs[c] = cfgs[assign[c]];
        }
        auto pt = chip.tryEvaluate(placed_apps, placed_cfgs);
        if (!pt.ok())
            throw util::RampException(pt.error());
        return points.emplace(assign, std::move(pt.value()))
            .first->second;
    };

    const double epoch_hours =
        epoch_years * util::hours_per_year;
    for (std::uint32_t i = 0; i < num_epochs; ++i) {
        const cmp::ChipOperatingPoint &pt = point_for(assignment);
        const double hours = scenario.duty(i) * epoch_hours;
        for (std::size_t c = 0; c < n; ++c)
            leveler.addInterval(c, pt.cores[c], hours);
        if (level)
            leveler.maybeMigrate(assignment);
    }

    WearRun run;
    run.spread_frac = leveler.spreadFrac();
    run.migrations = leveler.migrations();
    for (std::size_t c = 0; c < n; ++c)
        run.consumed.push_back(leveler.consumedFrac(c));
    return run;
}

util::JsonValue
selectionJson(const char *policy, const cmp::ChipSelection &sel)
{
    using util::JsonValue;
    JsonValue budgets = JsonValue::makeArray();
    for (double fit : sel.budget_fit)
        budgets.push(JsonValue::makeNumber(fit));
    JsonValue out = JsonValue::makeObject();
    out.set("policy", JsonValue::makeString(policy));
    out.set("throughput_rel",
            JsonValue::makeNumber(sel.throughput_rel));
    out.set("chip_fit", JsonValue::makeNumber(sel.chip_fit));
    out.set("feasible", JsonValue::makeBool(sel.feasible));
    out.set("budget_fit", std::move(budgets));
    return out;
}

util::JsonValue
wearJson(const char *mode, const WearRun &run)
{
    using util::JsonValue;
    JsonValue consumed = JsonValue::makeArray();
    for (double frac : run.consumed)
        consumed.push(JsonValue::makeNumber(frac));
    JsonValue out = JsonValue::makeObject();
    out.set("mode", JsonValue::makeString(mode));
    out.set("spread_frac", JsonValue::makeNumber(run.spread_frac));
    out.set("migrations", JsonValue::makeNumber(
                              static_cast<double>(run.migrations)));
    out.set("consumed", std::move(consumed));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::Options::parse(argc, argv);
    bench::Suite suite(opts);

    constexpr double t_qual_k = 345.0;
    constexpr double per_core_fit = 4000.0;
    constexpr std::uint32_t num_epochs = 40;
    constexpr double epoch_years = 0.25; // 10-year horizon.

    // Chip shapes: an explicit floorplan wins, then --cores, then
    // the default 2/4/8 built-in grid sweep.
    std::vector<cmp::ChipFloorplan> plans;
    if (!opts.floorplan_path.empty()) {
        auto plan = cmp::ChipFloorplan::tryLoad(opts.floorplan_path);
        if (!plan.ok())
            util::fatal(util::cat("--floorplan: ",
                                  plan.error().str()));
        plans.push_back(std::move(plan.value()));
    } else if (opts.cores != 0) {
        plans.push_back(cmp::ChipFloorplan::grid(opts.cores));
    } else {
        for (const std::size_t n : {2u, 4u, 8u})
            plans.push_back(cmp::ChipFloorplan::grid(n));
    }

    const Scenario scenarios[] = {
        // Integer mix, bursty: the consumer desktop duty cycle.
        {"consumer_burst", {0, 2, 1, 3, 0, 2, 1, 3}, dutyBurst},
        // Hot FP next to cool integer, pinned at full duty.
        {"server_sustained", {4, 1, 5, 0, 4, 1, 5, 0},
         dutySustained},
        // Media codecs at partial duty: the mobile envelope.
        {"mobile_media", {6, 7, 8, 1, 6, 7, 8, 1}, dutyMobile},
    };

    const core::Qualification shipped =
        suite.qualification(t_qual_k);

    util::JsonValue scenario_docs = util::JsonValue::makeArray();
    bool global_dominates = true;
    bool budget_respected = true;
    bool wear_narrows = true;

    for (const Scenario &scenario : scenarios) {
        // One exploration per distinct app in the mix, fanned across
        // the pool (each inner explore reuses the pool inline via the
        // nested-submission guard); chips of every size then select
        // from the same explored spaces.
        const std::size_t max_cores = [&] {
            std::size_t m = 0;
            for (const auto &plan : plans)
                m = std::max(m, plan.numCores());
            return m;
        }();
        std::vector<const workload::AppProfile *> mix_apps;
        for (std::size_t c = 0; c < max_cores; ++c) {
            const std::size_t slot =
                scenario.slots[c % scenario.slots.size()];
            mix_apps.push_back(&suite.apps[slot % suite.apps.size()]);
        }
        const std::vector<drm::ExploredApp> explored =
            cmp::exploreApps(suite.explorer, &suite.pool, mix_apps,
                             drm::AdaptationSpace::Dvs);

        util::Table t({"cores", "per-core tput", "global tput",
                       "gain", "chip FIT / budget", "spread static",
                       "spread leveled", "migr"});
        t.setTitle(util::cat("CMP [", scenario.name,
                             "]: global vs per-core FIT budgeting, "
                             "wear leveling"));
        util::JsonValue chips = util::JsonValue::makeArray();
        std::vector<std::string> deviations;

        for (const auto &plan : plans) {
            const std::size_t n = plan.numCores();
            std::vector<const drm::ExploredApp *> cores;
            for (std::size_t c = 0; c < n; ++c)
                cores.push_back(&explored[c]);

            core::QualificationSpec chip_spec;
            chip_spec.t_qual_k = t_qual_k;
            chip_spec.alpha_qual = suite.alpha_qual;
            chip_spec.target_fit =
                per_core_fit * static_cast<double>(n);

            SelectionPair sel;
            sel.per_core = cmp::selectChipDrm(
                cores, chip_spec, cmp::BudgetPolicy::PerCore);
            sel.global = cmp::selectChipDrm(
                cores, chip_spec, cmp::BudgetPolicy::Global);
            sel.budget_fit = chip_spec.target_fit;

            const bool dominates = sel.global.throughput_rel >=
                                   sel.per_core.throughput_rel -
                                       1e-9;
            const bool budgeted =
                !sel.global.feasible ||
                sel.global.chip_fit <= sel.budget_fit + 1e-9;
            global_dominates &= dominates;
            budget_respected &= budgeted;

            // Age the mix at its globally-selected points, leveling
            // off versus on.
            const cmp::ChipEvaluator chip(plan, &suite.explorer,
                                          &suite.pool);
            std::vector<const workload::AppProfile *> apps(
                mix_apps.begin(), mix_apps.begin() + n);
            std::vector<sim::MachineConfig> cfgs;
            for (std::size_t c = 0; c < n; ++c)
                cfgs.push_back(sel.global.cores[c].config);
            // The static run doubles as the pilot calibrating the
            // hysteresis: its final spread is num_epochs' worth of
            // growth, so triggering at a few epochs' worth keeps the
            // policy migrating (and re-arming) across the whole run
            // whatever the mix's absolute damage rates are.
            const WearRun wear_static =
                ageChip(chip, apps, cfgs, shipped, scenario, {},
                        /*level=*/false, num_epochs, epoch_years);
            cmp::WearParams wear_params;
            wear_params.migrate_spread_frac =
                std::max(wear_static.spread_frac * 4.0 / num_epochs,
                         1e-9);
            wear_params.rearm_spread_frac =
                wear_params.migrate_spread_frac / 2.0;
            const WearRun wear_leveled =
                ageChip(chip, apps, cfgs, shipped, scenario,
                        wear_params, /*level=*/true, num_epochs,
                        epoch_years);
            const bool narrowed =
                n < 2 ||
                (wear_leveled.migrations > 0
                     ? wear_leveled.spread_frac <
                           wear_static.spread_frac
                     : wear_leveled.spread_frac <=
                           wear_static.spread_frac);
            wear_narrows &= narrowed;

            t.addRow({std::to_string(n),
                      util::Table::num(sel.per_core.throughput_rel,
                                       4),
                      util::Table::num(sel.global.throughput_rel, 4),
                      util::cat(util::Table::num(
                                    100.0 *
                                        (sel.global.throughput_rel /
                                             sel.per_core
                                                 .throughput_rel -
                                         1.0),
                                    2),
                                "%"),
                      util::cat(util::Table::num(sel.global.chip_fit,
                                                 0),
                                " / ",
                                util::Table::num(sel.budget_fit, 0)),
                      util::Table::num(wear_static.spread_frac, 4),
                      util::Table::num(wear_leveled.spread_frac, 4),
                      std::to_string(wear_leveled.migrations)});
            if (!dominates || !budgeted || !narrowed)
                deviations.push_back(util::cat(
                    "  ", n, " cores: ",
                    dominates ? "" : "global < per-core; ",
                    budgeted ? "" : "budget exceeded; ",
                    narrowed ? "" : "spread not narrowed; ",
                    "DEVIATION"));

            util::JsonValue doc = util::JsonValue::makeObject();
            doc.set("cores", util::JsonValue::makeNumber(
                                 static_cast<double>(n)));
            doc.set("budget_fit",
                    util::JsonValue::makeNumber(sel.budget_fit));
            util::JsonValue policies = util::JsonValue::makeArray();
            policies.push(selectionJson("per-core", sel.per_core));
            policies.push(selectionJson("global", sel.global));
            doc.set("policies", std::move(policies));
            util::JsonValue wear = util::JsonValue::makeArray();
            wear.push(wearJson("static", wear_static));
            wear.push(wearJson("leveled", wear_leveled));
            doc.set("wear", std::move(wear));
            chips.push(doc);
        }
        t.print(std::cout);
        for (const std::string &line : deviations)
            std::printf("%s\n", line.c_str());
        std::printf("\n");

        util::JsonValue doc = util::JsonValue::makeObject();
        doc.set("scenario",
                util::JsonValue::makeString(scenario.name));
        util::JsonValue app_names = util::JsonValue::makeArray();
        for (const auto *app : mix_apps)
            app_names.push(util::JsonValue::makeString(app->name));
        doc.set("apps", std::move(app_names));
        doc.set("chips", std::move(chips));
        scenario_docs.push(doc);
    }

    util::JsonValue artifact = util::JsonValue::makeObject();
    artifact.set("bench", util::JsonValue::makeString("cmp"));
    artifact.set("t_qual_k", util::JsonValue::makeNumber(t_qual_k));
    artifact.set("per_core_fit",
                 util::JsonValue::makeNumber(per_core_fit));
    artifact.set("num_epochs",
                 util::JsonValue::makeNumber(num_epochs));
    artifact.set("epoch_years",
                 util::JsonValue::makeNumber(epoch_years));
    artifact.set("scenarios", std::move(scenario_docs));
    artifact.set("global_dominates",
                 util::JsonValue::makeBool(global_dominates));
    artifact.set("budget_respected",
                 util::JsonValue::makeBool(budget_respected));
    artifact.set("wear_narrows",
                 util::JsonValue::makeBool(wear_narrows));
    bench::writeBenchArtifact(
        bench::benchJsonPath(opts, "BENCH_cmp.json"), artifact);

    std::printf("global budgeting never below per-core at equal "
                "chip FIT: %s\n",
                global_dominates ? "yes" : "DEVIATION");
    std::printf("global selections within the chip FIT budget: %s\n",
                budget_respected ? "yes" : "DEVIATION");
    std::printf("wear leveling narrows the consumed-lifetime "
                "spread: %s\n",
                wear_narrows ? "yes" : "DEVIATION");
    return global_dominates && budget_respected && wear_narrows ? 0
                                                                : 1;
}
