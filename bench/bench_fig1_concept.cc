/**
 * @file
 * Numerically instantiates paper Figure 1: the DRM concept.
 *
 * Three processors qualified at decreasing cost
 * (T_qual1 > T_qual2 > T_qual3) run two applications, A (hot:
 * MP3dec) and B (cool: twolf). On the expensive processor both
 * applications beat the FIT target (over-design); on the middle one
 * only the cool application meets it; on the cheap one neither does.
 * DRM then adapts each application to exactly meet the target,
 * trading performance.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Suite suite(bench::Options::parse(argc, argv));

    const auto &hot = workload::findApp("MP3dec");   // application A
    const auto &cool = workload::findApp("twolf");   // application B
    const double t_quals[] = {400.0, 355.0, 325.0};

    const auto hot_explored =
        suite.explorer.explore(hot, drm::AdaptationSpace::ArchDvs);
    const auto cool_explored =
        suite.explorer.explore(cool, drm::AdaptationSpace::ArchDvs);

    util::Table t({"processor", "T_qual K", "FIT(A=MP3dec)",
                   "FIT(B=twolf)", "A meets?", "B meets?",
                   "DRM perf A", "DRM perf B"});
    t.setTitle("Figure 1: three qualification cost points, "
               "FIT target 4000");

    int idx = 1;
    bool over_design_seen = false, mixed_seen = false,
         under_design_seen = false;
    for (double tq : t_quals) {
        const auto qual = suite.qualification(tq);
        const double fit_a =
            drm::operatingPointFit(qual, hot_explored.base);
        const double fit_b =
            drm::operatingPointFit(qual, cool_explored.base);
        const bool a_ok = fit_a <= qual.spec().target_fit;
        const bool b_ok = fit_b <= qual.spec().target_fit;
        over_design_seen |= a_ok && b_ok;
        mixed_seen |= !a_ok && b_ok;
        under_design_seen |= !a_ok && !b_ok;

        const auto sel_a = drm::selectDrm(hot_explored, qual);
        const auto sel_b = drm::selectDrm(cool_explored, qual);

        t.addRow({"processor " + std::to_string(idx++),
                  util::Table::num(tq, 0), util::Table::num(fit_a, 0),
                  util::Table::num(fit_b, 0), a_ok ? "yes" : "no",
                  b_ok ? "yes" : "no", util::Table::num(sel_a.perf_rel, 3),
                  util::Table::num(sel_b.perf_rel, 3)});
    }
    t.print(std::cout);

    std::printf("\n  over-designed point (both meet target):   %s\n",
                over_design_seen ? "reproduced" : "DEVIATION");
    std::printf("  mixed point (only cool app meets target): %s\n",
                mixed_seen ? "reproduced" : "DEVIATION");
    std::printf("  under-designed point (neither meets):     %s\n",
                under_design_seen ? "reproduced" : "DEVIATION");
    return 0;
}
