/**
 * @file
 * Reproduces paper Figure 4: the DVS frequency chosen by DRM
 * (qualifying temperature T_qual) versus DTM (thermal design point
 * T_design) for every application, at temperatures
 * {325, 335, 345, 360, 370, 400} K.
 *
 * Expected shape (Section 7.3): the DTM frequency curve (DVS-Temp) is
 * steeper than the DRM curve (DVS-Rel); the curves cross, and the
 * crossover temperature is application-dependent. At high
 * temperatures DTM's choice violates the reliability target; at low
 * temperatures DRM's choice violates the thermal limit -- neither
 * policy subsumes the other.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Suite suite(bench::Options::parse(argc, argv));

    const std::vector<double> temps = {325.0, 335.0, 345.0,
                                       360.0, 370.0, 400.0};

    int drm_thermal_violations = 0;  // DRM choice exceeding T_design
    int dtm_fit_violations = 0;      // DTM choice exceeding FIT target
    int crossovers_seen = 0;
    std::vector<double> crossover_temps;

    for (const auto &app : suite.apps) {
        const auto explored =
            suite.explorer.explore(app, drm::AdaptationSpace::Dvs);

        util::Table t({"T (K)", "f DRM (DVS-Rel)", "f DTM (DVS-Temp)",
                       "DRM Tmax", "DTM FIT"});
        t.setTitle("Figure 4 [" + app.name +
                   "]: frequency chosen by DRM vs DTM");

        double prev_sign = 0.0;
        double crossover = -1.0;
        std::vector<double> f_drm_series, f_dtm_series;
        for (double temp_k : temps) {
            const auto qual = suite.qualification(temp_k);
            const auto drm_sel = drm::selectDrm(explored, qual);
            const auto dtm_sel = drm::selectDtm(explored, temp_k, qual);

            const double f_drm = drm_sel.config.frequency_ghz;
            const double f_dtm = dtm_sel.config.frequency_ghz;
            f_drm_series.push_back(f_drm);
            f_dtm_series.push_back(f_dtm);

            const double dtm_fit = dtm_sel.fit;
            const double drm_tmax = drm_sel.max_temp_k;

            if (drm_tmax > temp_k + 1e-9)
                ++drm_thermal_violations;
            if (dtm_fit > qual.spec().target_fit * (1.0 + 1e-9))
                ++dtm_fit_violations;

            const double sign = f_dtm - f_drm;
            if (prev_sign != 0.0 && sign != 0.0 &&
                (sign > 0) != (prev_sign > 0) && crossover < 0.0)
                crossover = temp_k;
            if (sign != 0.0)
                prev_sign = sign;

            t.addRow({util::Table::num(temp_k, 0),
                      util::Table::num(f_drm, 2),
                      util::Table::num(f_dtm, 2),
                      util::Table::num(drm_tmax, 1),
                      util::Table::num(dtm_fit, 0)});
        }
        t.print(std::cout);
        if (crossover > 0.0) {
            ++crossovers_seen;
            crossover_temps.push_back(crossover);
            std::printf("  curves cross near %.0f K\n\n", crossover);
        } else {
            std::printf("  no crossover in the swept range\n\n");
        }

        // Slope check: DTM frequency range should exceed DRM's.
        const double dtm_span = f_dtm_series.back() - f_dtm_series[0];
        const double drm_span = f_drm_series.back() - f_drm_series[0];
        std::printf("  frequency span over sweep: DTM %.2f GHz, "
                    "DRM %.2f GHz (DTM steeper: %s)\n\n",
                    dtm_span, drm_span,
                    dtm_span > drm_span ? "yes" : "no");
    }

    std::printf("summary:\n");
    std::printf("  DRM choices violating the thermal limit:  %d\n",
                drm_thermal_violations);
    std::printf("  DTM choices violating the FIT target:     %d\n",
                dtm_fit_violations);
    std::printf("  applications whose curves cross:          %d/9\n",
                crossovers_seen);
    bool varied = false;
    for (std::size_t i = 1; i < crossover_temps.size(); ++i)
        varied |= crossover_temps[i] != crossover_temps[0];
    std::printf("  crossover temperature application-dependent: %s\n",
                varied ? "yes" : "no");

    const bool shape_ok =
        drm_thermal_violations > 0 && dtm_fit_violations > 0;
    std::printf("\nFigure 4 shape (neither policy subsumes the "
                "other): %s\n",
                shape_ok ? "holds" : "DEVIATION");
    return 0;
}
