/**
 * @file
 * Reproduces paper Table 1: the base non-adaptive processor.
 *
 * Prints the configured machine parameters next to the published
 * values and fails (exit 1) if any derived quantity drifts from
 * Table 1 -- this is the configuration regression check for the
 * whole reproduction.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "sim/machine.hh"
#include "sim/structures.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Options::parse(argc, argv);
    const sim::MachineConfig m = sim::baseMachine();

    util::Table t({"parameter", "value", "paper (Table 1)"});
    t.setTitle("Table 1: base non-adaptive processor");
    auto row = [&](const char *name, const std::string &v,
                   const char *paper) {
        t.addRow({name, v, paper});
    };

    row("process technology", "65 nm", "65 nm");
    row("supply voltage", util::Table::num(m.voltage_v, 1) + " V",
        "1.0 V");
    row("frequency", util::Table::num(m.frequency_ghz, 1) + " GHz",
        "4.0 GHz");
    row("core size",
        util::Table::num(sim::totalCoreArea(), 2) + " mm^2",
        "20.2 mm^2 (4.5mm x 4.5mm)");
    row("fetch/retire rate",
        std::to_string(m.fetch_width) + " per cycle", "8 per cycle");
    row("functional units",
        std::to_string(m.num_int_alu) + " Int, " +
            std::to_string(m.num_fpu) + " FP, " +
            std::to_string(m.num_agen) + " Add. gen.",
        "6 Int, 4 FP, 2 Add. gen.");
    row("integer FU latencies",
        std::to_string(m.lat_int_add) + "/" +
            std::to_string(m.lat_int_mul) + "/" +
            std::to_string(m.lat_int_div) + " add/mul/div",
        "1/7/12 add/multiply/divide");
    row("FP FU latencies",
        std::to_string(m.lat_fp) + " default, " +
            std::to_string(m.lat_fp_div) + " div (not pipelined)",
        "4 default, 12 div (not pipelined)");
    row("instruction window", std::to_string(m.window_size) + " entries",
        "128 entries");
    row("register file",
        std::to_string(m.int_regs) + " int + " +
            std::to_string(m.fp_regs) + " FP",
        "192 integer and 192 FP");
    row("memory queue", std::to_string(m.mem_queue) + " entries",
        "32 entries");
    row("branch prediction",
        "2KB bimodal agree (" + std::to_string(m.bpred_entries) +
            " x 2b), " + std::to_string(m.ras_entries) + " entry RAS",
        "2KB bimodal agree, 32 entry RAS");
    row("L1 D-cache",
        std::to_string(m.l1d_size_kb) + "KB " +
            std::to_string(m.l1d_assoc) + "-way, 64B, " +
            std::to_string(m.l1d_ports) + " ports, " +
            std::to_string(m.l1d_mshrs) + " MSHRs",
        "64KB 2-way, 64B line, 2 ports, 12 MSHRs");
    row("L1 I-cache",
        std::to_string(m.l1i_size_kb) + "KB " +
            std::to_string(m.l1i_assoc) + "-way",
        "32KB, 2-way");
    row("L2 (unified)",
        std::to_string(m.l2_size_kb / 1024) + "MB " +
            std::to_string(m.l2_assoc) + "-way, 64B line, 1 port",
        "1MB, 4-way, 64B line, 1 port");
    row("L1 hit time", std::to_string(m.l1_hit_cycles) + " cycles",
        "2 cycles");
    row("L2 hit time", std::to_string(m.l2HitCycles()) + " cycles",
        "20 cycles");
    row("memory latency",
        std::to_string(m.memLatencyCycles()) + " cycles", "102 cycles");
    row("memory bandwidth",
        "16B/cycle, " + std::to_string(m.mem_banks) +
            "-way interleaved",
        "16B/cycle, 4-way interleaved");

    t.print(std::cout);

    // Regression checks on every derived value.
    bool ok = m.l2HitCycles() == 20 && m.memLatencyCycles() == 102 &&
              m.issueWidth() == 12 &&
              sim::totalCoreArea() > 20.19 &&
              sim::totalCoreArea() < 20.26;
    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: derived configuration drifted from "
                     "Table 1\n");
        return 1;
    }
    std::cout << "\nTable 1 check: OK\n";
    return 0;
}
