/**
 * @file
 * Technology-scaling study (paper Section 1.2, quantified by the
 * authors in the companion DSN 2004 paper "The Impact of Scaling on
 * Processor Lifetime Reliability").
 *
 * One design and workload carried through 180/130/90/65 nm, qualified
 * once at the 180 nm worst case. Expected shape: power density,
 * temperature, and EM current density climb with scaling, so the FIT
 * value grows -- and MTTF shrinks severalfold -- from 180 nm to 65 nm
 * even though the design and its reliability rules never changed.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "scaling/study.hh"
#include "util/table.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Options::parse(argc, argv);

    int monotone_apps = 0;
    double worst_degradation = 1e9;
    const char *apps[] = {"MP3dec", "bzip2", "art"};

    for (const char *name : apps) {
        const auto results =
            scaling::runScalingStudy(workload::findApp(name));

        util::Table t({"node", "V", "f GHz", "die mm^2", "power W",
                       "W/mm^2", "Tmax K", "EM J scale", "FIT",
                       "MTTF (y)", "vs 180nm"});
        t.setTitle(std::string("Scaling study [") + name +
                   "], qualified at the 180nm worst case");

        const double mttf_180 = results.front().mttfYears();
        bool monotone = true;
        double prev_fit = 0.0;
        for (const auto &r : results) {
            const double die =
                sim::totalCoreArea() * r.node.areaScale();
            t.addRow({r.node.name, util::Table::num(r.node.vdd_v, 2),
                      util::Table::num(r.node.frequency_ghz, 1),
                      util::Table::num(die, 1),
                      util::Table::num(r.op.totalPower(), 1),
                      util::Table::num(r.op.totalPower() / die, 2),
                      util::Table::num(r.op.maxTemp(), 1),
                      util::Table::num(r.node.emCurrentScale(), 2),
                      util::Table::num(r.fit.totalFit(), 0),
                      util::Table::num(r.mttfYears(), 1),
                      util::Table::num(mttf_180 / r.mttfYears(), 2) +
                          "x shorter"});
            monotone &= r.fit.totalFit() >= prev_fit;
            prev_fit = r.fit.totalFit();
        }
        t.print(std::cout);

        const double degradation =
            mttf_180 / results.back().mttfYears();
        std::printf("  180nm -> 65nm MTTF degradation: %.1fx "
                    "(monotone per node: %s)\n\n",
                    degradation, monotone ? "yes" : "NO");
        monotone_apps += monotone;
        worst_degradation = std::min(worst_degradation, degradation);
    }

    std::printf("shape: FIT grows monotonically with scaling for "
                "%d/3 apps; smallest MTTF degradation %.1fx\n",
                monotone_apps, worst_degradation);
    std::printf("(the companion DSN'04 paper reports ~4x MTTF loss "
                "over these generations)\n");
    return 0;
}
