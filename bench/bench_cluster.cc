/**
 * @file
 * Cluster chaos bench for the routed serving tier (ISSUE:
 * src/route).
 *
 * Topology: four ramp_served backend *processes* (forked from the
 * build's own binary), each replicating its eval cache to the other
 * three (--peers / cache_append), fronted by an in-process
 * route::Router. 64 worker threads drive a deterministic mixed
 * v0/v2 request stream through the router; mid-run a controller
 * thread SIGKILLs one backend, deletes its cache log, and restarts
 * it on the same port.
 *
 * Everything is checked, nothing assumed:
 *
 *  - Zero loss: every request must end in an ok reply (harness
 *    retries ride out the kill window); a request that exhausts its
 *    retry budget fails the run.
 *  - Byte identity: every ok reply's result object must equal the
 *    answer computed directly through an identically-configured
 *    in-process EvaluationService -- including the v2 fleet verbs,
 *    whose expected replies are precomputed per worker in schedule
 *    order (report_usage carries an idempotency seq, so a retried
 *    merge must come back as the same summary with applied=false,
 *    which the harness accepts as the dup variant).
 *  - Failover visibility: the router's health table must have
 *    recorded at least one down transition (the kill) and one up
 *    transition (the restart).
 *  - Peer re-warm: the restarted backend's cache log was deleted, so
 *    its post-restart record count can only come from its peers'
 *    snapshot replay; the bench polls its stats until the count
 *    reaches the direct service's full record set.
 *
 * v2 chips are pinned (by consistent-hash probing) to backends that
 * survive the run, since the aging registry -- unlike the eval
 * cache -- is deliberately not replicated.
 *
 * Extra flags beyond the shared bench set: --connections N,
 * --requests N (per connection), --backends N, --kill-at FRAC.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "aging/state.hh"
#include "common.hh"
#include "route/router.hh"
#include "serve/client.hh"
#include "serve/service.hh"
#include "util/random.hh"

#ifndef RAMP_SERVED_BIN
#error "bench_cluster needs RAMP_SERVED_BIN (the ramp_served path)"
#endif

namespace {

using namespace ramp;

struct ClusterOptions
{
    std::size_t connections = 64;
    std::size_t requests = 40; ///< Per connection.
    std::size_t backends = 4;
    double kill_at = 0.125; ///< Completed fraction that triggers it.
};

ClusterOptions
parseClusterFlags(int &argc, char **argv)
{
    ClusterOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::size_t *dest = nullptr;
        if (arg == "--connections")
            dest = &opts.connections;
        else if (arg == "--requests")
            dest = &opts.requests;
        else if (arg == "--backends")
            dest = &opts.backends;
        else if (arg != "--kill-at") {
            argv[out++] = argv[i];
            continue;
        }
        if (i + 1 >= argc)
            util::fatal(util::cat(arg, " needs a value"));
        char *end = nullptr;
        const std::string value = argv[++i];
        if (dest) {
            const unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (*end != '\0' || n < 1)
                util::fatal(util::cat(
                    arg, " needs a positive integer"));
            *dest = static_cast<std::size_t>(n);
        } else {
            opts.kill_at = std::strtod(value.c_str(), &end);
            if (*end != '\0' || opts.kill_at < 0.0 ||
                opts.kill_at >= 1.0)
                util::fatal("--kill-at needs a fraction in [0,1)");
        }
    }
    argc = out;
    argv[out] = nullptr;
    if (opts.backends < 2)
        util::fatal("bench_cluster needs at least 2 backends");
    return opts;
}

/** One deterministic step of a worker's stream. */
struct Step
{
    serve::RequestType type = serve::RequestType::Stats;
    std::size_t config = 0;  ///< evaluate
    std::uint64_t seq = 0;   ///< report_usage idempotency seq
};

std::vector<Step>
makeSchedule(std::size_t worker, std::size_t requests,
             std::size_t n_configs)
{
    util::Rng rng(0x636c757374657221ull ^
                  (worker * 0x9e3779b97f4a7c15ull));
    std::vector<Step> steps;
    steps.reserve(requests);
    std::uint64_t next_seq = 1;
    bool reported = false;
    for (std::size_t s = 0; s < requests; ++s) {
        const double roll = rng.uniform();
        Step st;
        if (roll < 0.55) {
            st.type = serve::RequestType::Evaluate;
            st.config = rng.below(n_configs);
        } else if (roll < 0.70) {
            st.type = serve::RequestType::SelectDrm;
        } else if (roll < 0.78) {
            st.type = serve::RequestType::SelectDtm;
        } else if (roll < 0.84) {
            st.type = serve::RequestType::Stats;
        } else if (roll < 0.94 || !reported) {
            // remaining_lifetime needs a reported chip, so the first
            // v2 step is always a report.
            st.type = serve::RequestType::ReportUsage;
            st.seq = next_seq++;
            reported = true;
        } else {
            st.type = serve::RequestType::RemainingLifetime;
        }
        steps.push_back(st);
    }
    return steps;
}

/** Signature for the shared v0 expected-answer table. */
std::string
requestKey(const serve::Request &req)
{
    return util::cat(serve::requestTypeName(req.type), "/", req.app,
                     "/", drm::adaptationSpaceName(req.space), "/",
                     req.config);
}

/** The fixed AgingState delta every report_usage ships. */
aging::AgingState
usageDelta()
{
    aging::AgingState delta;
    delta.age_hours = 500.0;
    delta.damage[0][0] = 0.002;
    return delta;
}

/** A chip name for @p worker whose ring placement avoids the victim
 *  backend (the aging registry is not replicated; eval answers fail
 *  over, chip state must not need to). */
std::string
pinChip(const route::HashRing &ring, std::size_t worker,
        std::size_t victim)
{
    for (std::size_t k = 0;; ++k) {
        const std::string name = util::cat("chip-", worker, "-", k);
        serve::Request probe;
        probe.type = serve::RequestType::ReportUsage;
        probe.chip = name;
        const auto home = ring.pick(route::Router::routeKey(probe));
        if (home && *home != victim)
            return name;
    }
}

pid_t
spawnBackend(const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const auto &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        execv(argv[0], argv.data());
        _exit(127);
    }
    if (pid < 0)
        util::fatal("bench_cluster: fork failed");
    return pid;
}

bool
waitReady(std::uint16_t port, int timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        serve::ClientOptions copts;
        copts.port = port;
        copts.connect_timeout_ms = 500;
        copts.io_timeout_ms = 2'000;
        if (auto client = serve::Client::connect(copts)) {
            if (auto stats = client.value().stats())
                return true;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
    return false;
}

/** A backend's cache record count via its stats verb (-1 when the
 *  round trip fails). */
long long
cacheRecords(std::uint16_t port)
{
    serve::ClientOptions copts;
    copts.port = port;
    copts.connect_timeout_ms = 500;
    copts.io_timeout_ms = 2'000;
    auto client = serve::Client::connect(copts);
    if (!client)
        return -1;
    auto stats = client.value().stats();
    if (!stats)
        return -1;
    const util::JsonValue *cache = stats.value().find("cache");
    if (!cache)
        return -1;
    const util::JsonValue *records = cache->find("records");
    if (!records || !records->isNumber())
        return -1;
    return static_cast<long long>(records->number);
}

struct WorkerTally
{
    std::uint64_t ok = 0;
    std::uint64_t dup_acks = 0; ///< report_usage applied=false.
    std::uint64_t retried = 0;  ///< Transient failures ridden out.
    std::uint64_t lost = 0;     ///< Retry budget exhausted.
    std::uint64_t mismatches = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    ClusterOptions cluster = parseClusterFlags(argc, argv);
    bench::Options opts = bench::Options::parse(argc, argv);

    // The router forwarding to a freshly-killed backend must see a
    // write error, not die (util::writeAll already sends with
    // MSG_NOSIGNAL; this covers any other code path).
    std::signal(SIGPIPE, SIG_IGN);

    const std::size_t n_backends = cluster.backends;
    const std::size_t victim = n_backends - 1;
    std::fprintf(stderr,
                 "bench_cluster: %zu backends (victim %zu), %zu "
                 "connections x %zu requests\n",
                 n_backends, victim, cluster.connections,
                 cluster.requests);

    // --- Reserve backend ports (bind, record, close) --------------
    std::vector<std::uint16_t> ports;
    {
        std::vector<util::Listener> held;
        for (std::size_t b = 0; b < n_backends; ++b) {
            auto listener = util::listenTcp(0);
            if (!listener)
                util::fatal(util::cat("bench_cluster: ",
                                      listener.error().str()));
            ports.push_back(listener.value().port);
            held.push_back(std::move(listener.value()));
        }
        // `held` closes here; SO_REUSEADDR lets the daemons rebind.
    }

    // --- Spawn the backends ---------------------------------------
    const auto cacheFile = [&](std::size_t b) {
        return util::cat("bench_cluster_cache_", b, ".txt");
    };
    const auto backendArgs = [&](std::size_t b) {
        std::string peers;
        for (std::size_t p = 0; p < n_backends; ++p) {
            if (p == b)
                continue;
            if (!peers.empty())
                peers += ',';
            peers += std::to_string(ports[p]);
        }
        return std::vector<std::string>{
            RAMP_SERVED_BIN,
            "--port", std::to_string(ports[b]),
            "--cache", cacheFile(b),
            "--apps", "1",
            "--threads", "2",
            "--queue-depth", "128",
            "--peers", peers,
        };
    };
    std::vector<pid_t> pids(n_backends, -1);
    for (std::size_t b = 0; b < n_backends; ++b) {
        std::remove(cacheFile(b).c_str()); // Stale logs skew warm.
        pids[b] = spawnBackend(backendArgs(b));
    }
    for (std::size_t b = 0; b < n_backends; ++b)
        if (!waitReady(ports[b], 60'000))
            util::fatal(util::cat("bench_cluster: backend ", b,
                                  " (port ", ports[b],
                                  ") never became ready"));

    // --- The direct oracle: same engine configuration as the
    // backends (ramp_served uses default EvalParams), warmed and
    // queried serially before any load exists. ---------------------
    serve::ServiceOptions mirror_opts;
    mirror_opts.cache_path = ""; // In-memory.
    mirror_opts.max_apps = 1;
    serve::EvaluationService mirror(mirror_opts);
    mirror.ensureReady();
    const std::string app = mirror.apps()[0].name;
    const std::size_t n_configs =
        drm::configSpace(drm::AdaptationSpace::Dvs).size();

    route::HashRing ring(n_backends);
    std::map<std::string, std::string> expected_v0;
    struct WorkerPlan
    {
        std::string chip;
        std::vector<Step> steps;
        std::vector<std::string> expected;     ///< "" for stats.
        std::vector<std::string> expected_alt; ///< Dup variants.
    };
    std::vector<WorkerPlan> plans(cluster.connections);
    for (std::size_t w = 0; w < cluster.connections; ++w) {
        WorkerPlan &plan = plans[w];
        plan.chip = pinChip(ring, w, victim);
        plan.steps =
            makeSchedule(w, cluster.requests, n_configs);
        plan.expected.resize(plan.steps.size());
        plan.expected_alt.resize(plan.steps.size());
        for (std::size_t s = 0; s < plan.steps.size(); ++s) {
            const Step &st = plan.steps[s];
            serve::Request req;
            req.version = 2;
            req.type = st.type;
            req.app = app;
            req.space = drm::AdaptationSpace::Dvs;
            util::Result<util::JsonValue> direct =
                util::RampError{util::ErrorCode::InvalidInput,
                                "unset"};
            switch (st.type) {
            case serve::RequestType::Stats:
                continue; // Time-varying; structural check only.
            case serve::RequestType::Evaluate: {
                req.config = st.config;
                const std::string key = requestKey(req);
                if (auto it = expected_v0.find(key);
                    it != expected_v0.end()) {
                    plan.expected[s] = it->second;
                    continue;
                }
                auto op = mirror.evaluatePoint(app, req.space,
                                               st.config);
                direct = op ? mirror.encodeEvaluation(req,
                                                      op.value())
                            : util::Result<util::JsonValue>(
                                  op.error());
                if (!direct)
                    util::fatal(util::cat(
                        "bench_cluster: direct ", key,
                        " failed: ", direct.error().str()));
                plan.expected[s] =
                    util::writeJson(direct.value());
                expected_v0.emplace(key, plan.expected[s]);
                continue;
            }
            case serve::RequestType::SelectDrm:
            case serve::RequestType::SelectDtm: {
                const std::string key = requestKey(req);
                if (auto it = expected_v0.find(key);
                    it != expected_v0.end()) {
                    plan.expected[s] = it->second;
                    continue;
                }
                direct = mirror.select(req);
                if (!direct)
                    util::fatal(util::cat(
                        "bench_cluster: direct ", key,
                        " failed: ", direct.error().str()));
                plan.expected[s] =
                    util::writeJson(direct.value());
                expected_v0.emplace(key, plan.expected[s]);
                continue;
            }
            case serve::RequestType::ReportUsage: {
                req.chip = plan.chip;
                req.state = aging::toJson(usageDelta());
                req.seq = st.seq;
                auto applied = mirror.reportUsage(req);
                if (!applied)
                    util::fatal(util::cat(
                        "bench_cluster: direct report_usage "
                        "failed: ",
                        applied.error().str()));
                plan.expected[s] =
                    util::writeJson(applied.value());
                // A retried merge: same seq, already applied -- the
                // summary is unchanged but applied flips to false.
                auto dup = mirror.reportUsage(req);
                if (!dup)
                    util::fatal(util::cat(
                        "bench_cluster: direct dup report_usage "
                        "failed: ",
                        dup.error().str()));
                plan.expected_alt[s] =
                    util::writeJson(dup.value());
                continue;
            }
            case serve::RequestType::RemainingLifetime: {
                req.chip = plan.chip;
                direct = mirror.remainingLifetime(req);
                if (!direct)
                    util::fatal(util::cat(
                        "bench_cluster: direct "
                        "remaining_lifetime failed: ",
                        direct.error().str()));
                plan.expected[s] =
                    util::writeJson(direct.value());
                continue;
            }
            default:
                util::fatal("bench_cluster: unexpected step type");
            }
        }
    }
    std::fprintf(stderr,
                 "bench_cluster: %zu unique v0 answers + per-worker "
                 "v2 sequences precomputed\n",
                 expected_v0.size());

    // --- The router -----------------------------------------------
    route::RouterOptions router_opts;
    router_opts.backends = ports;
    router_opts.fail_threshold = 2;
    router_opts.probe_interval_ms = 150;
    router_opts.retry.retries = 4;
    router_opts.retry.backoff_ms = 50;
    router_opts.io_timeout_ms = 20'000;
    route::Router router(router_opts);
    if (auto started = router.start(); !started)
        util::fatal(util::cat("bench_cluster: ",
                              started.error().str()));

    // --- Drive the load; kill and resurrect the victim mid-run ----
    const std::uint64_t issued =
        static_cast<std::uint64_t>(cluster.connections) *
        cluster.requests;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> workers_done{false};
    double killed_after_s = -1.0, restarted_after_s = -1.0;

    const auto t0 = std::chrono::steady_clock::now();
    const auto since_t0 = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::thread controller([&] {
        const std::uint64_t trigger = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(issued) * cluster.kill_at));
        while (completed.load(std::memory_order_relaxed) < trigger &&
               !workers_done.load(std::memory_order_relaxed))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        kill(pids[victim], SIGKILL);
        waitpid(pids[victim], nullptr, 0);
        killed_after_s = since_t0();
        std::fprintf(stderr,
                     "bench_cluster: killed backend %zu at %.2f s "
                     "(%llu/%llu done)\n",
                     victim, killed_after_s,
                     static_cast<unsigned long long>(
                         completed.load(std::memory_order_relaxed)),
                     static_cast<unsigned long long>(issued));
        // Delete its log: everything it knows after restart must
        // have come over the wire from its peers.
        std::remove(cacheFile(victim).c_str());
        std::this_thread::sleep_for(std::chrono::seconds(1));
        pids[victim] = spawnBackend(backendArgs(victim));
        if (!waitReady(ports[victim], 60'000))
            util::fatal("bench_cluster: victim never came back");
        restarted_after_s = since_t0();
        std::fprintf(stderr,
                     "bench_cluster: restarted backend %zu at "
                     "%.2f s\n",
                     victim, restarted_after_s);
    });

    std::vector<WorkerTally> tallies(cluster.connections);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < cluster.connections; ++w) {
        workers.emplace_back([&, w] {
            WorkerTally &tally = tallies[w];
            const WorkerPlan &plan = plans[w];
            serve::ClientOptions copts;
            copts.port = router.port();
            auto session = serve::Session::open(copts);
            const aging::AgingState delta = usageDelta();
            constexpr int max_attempts = 12;
            for (std::size_t s = 0; s < plan.steps.size(); ++s) {
                const Step &st = plan.steps[s];
                bool resolved = false;
                for (int attempt = 0;
                     attempt < max_attempts && !resolved;
                     ++attempt) {
                    if (attempt > 0) {
                        ++tally.retried;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(100));
                    }
                    if (!session) {
                        session = serve::Session::open(copts);
                        if (!session)
                            continue;
                    }
                    util::Result<util::JsonValue> got =
                        util::RampError{
                            util::ErrorCode::InvalidInput,
                            "unset"};
                    switch (st.type) {
                    case serve::RequestType::Evaluate:
                        got = session.value().evaluate(
                            app, drm::AdaptationSpace::Dvs,
                            st.config);
                        break;
                    case serve::RequestType::SelectDrm:
                        got = session.value().selectDrm(
                            app, drm::AdaptationSpace::Dvs);
                        break;
                    case serve::RequestType::SelectDtm:
                        got = session.value().selectDtm(
                            app, drm::AdaptationSpace::Dvs);
                        break;
                    case serve::RequestType::Stats:
                        got = session.value().stats();
                        break;
                    case serve::RequestType::ReportUsage:
                        got = session.value().reportUsage(
                            plan.chip, aging::toJson(delta),
                            st.seq);
                        break;
                    case serve::RequestType::RemainingLifetime:
                        got = session.value().remainingLifetime(
                            plan.chip, app,
                            drm::AdaptationSpace::Dvs);
                        break;
                    default:
                        break;
                    }
                    if (!got) {
                        const util::ErrorCode code =
                            got.error().code;
                        const bool v2 =
                            st.type == serve::RequestType::
                                           ReportUsage ||
                            st.type == serve::RequestType::
                                           RemainingLifetime;
                        // Transient rejections and transport
                        // faults ride the retry loop; a v2 verb
                        // also retries InvalidInput (a failover
                        // race can briefly miss the chip's home).
                        if (route::RetryPolicy::transient(code) ||
                            (v2 && code == util::ErrorCode::
                                               InvalidInput)) {
                            session = util::RampError{
                                util::ErrorCode::IoFailure,
                                "reconnect"};
                            continue;
                        }
                        std::fprintf(
                            stderr,
                            "bench_cluster: worker %zu step %zu "
                            "hard error: %s\n",
                            w, s, got.error().str().c_str());
                        ++tally.mismatches;
                        resolved = true;
                        break;
                    }
                    resolved = true;
                    if (st.type == serve::RequestType::Stats) {
                        ++tally.ok;
                        break;
                    }
                    const std::string text =
                        util::writeJson(got.value());
                    if (text == plan.expected[s]) {
                        ++tally.ok;
                    } else if (!plan.expected_alt[s].empty() &&
                               text == plan.expected_alt[s]) {
                        ++tally.ok;
                        ++tally.dup_acks;
                    } else {
                        ++tally.mismatches;
                        std::fprintf(
                            stderr,
                            "bench_cluster: MISMATCH worker %zu "
                            "step %zu (%s)\n  want %s\n  got  "
                            "%s\n",
                            w, s,
                            serve::requestTypeName(st.type),
                            plan.expected[s].c_str(),
                            text.c_str());
                    }
                }
                if (!resolved)
                    ++tally.lost;
                completed.fetch_add(1,
                                    std::memory_order_relaxed);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    workers_done.store(true, std::memory_order_relaxed);
    controller.join();
    const double wall_s = since_t0();

    WorkerTally total;
    for (const auto &tally : tallies) {
        total.ok += tally.ok;
        total.dup_acks += tally.dup_acks;
        total.retried += tally.retried;
        total.lost += tally.lost;
        total.mismatches += tally.mismatches;
    }

    // --- Post-run assertions --------------------------------------
    bool failed = false;
    if (total.lost != 0) {
        std::printf("DEVIATION: %llu requests never got an ok "
                    "reply\n",
                    static_cast<unsigned long long>(total.lost));
        failed = true;
    }
    if (total.mismatches != 0) {
        std::printf("DEVIATION: %llu replies differed from the "
                    "direct evaluation path\n",
                    static_cast<unsigned long long>(
                        total.mismatches));
        failed = true;
    }
    // The workload can drain before the router's next probe round
    // re-promotes the restarted victim; give the prober a few
    // intervals to observe the recovery before judging it.
    const auto health_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (router.health().transitionsUp() < 1 &&
           std::chrono::steady_clock::now() < health_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t downs = router.health().transitionsDown();
    const std::uint64_t ups = router.health().transitionsUp();
    if (downs < 1 || ups < 1) {
        std::printf("DEVIATION: health transitions not observed "
                    "(down %llu, up %llu)\n",
                    static_cast<unsigned long long>(downs),
                    static_cast<unsigned long long>(ups));
        failed = true;
    }

    // Peer re-warm: the victim restarted from a deleted log, so its
    // record count reaching the oracle's full set proves the
    // records arrived via cache_append snapshots.
    const long long want_records =
        static_cast<long long>(mirror.cache().size());
    long long victim_records = -1;
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        while (std::chrono::steady_clock::now() < deadline) {
            victim_records = cacheRecords(ports[victim]);
            if (victim_records >= want_records)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(250));
        }
    }
    if (victim_records < want_records) {
        std::printf("DEVIATION: restarted backend re-warmed only "
                    "%lld/%lld cache records from peers\n",
                    victim_records, want_records);
        failed = true;
    }

    const std::uint64_t answered = total.ok + total.mismatches;
    std::printf("bench_cluster: %llu/%llu answered ok in %.2f s "
                "(%.1f req/s), %llu retried, %llu dup acks\n",
                static_cast<unsigned long long>(total.ok),
                static_cast<unsigned long long>(issued), wall_s,
                wall_s > 0.0
                    ? static_cast<double>(answered) / wall_s
                    : 0.0,
                static_cast<unsigned long long>(total.retried),
                static_cast<unsigned long long>(total.dup_acks));
    std::printf("  kill at %.2f s, restart at %.2f s, health "
                "down/up %llu/%llu, victim cache %lld/%lld\n",
                killed_after_s, restarted_after_s,
                static_cast<unsigned long long>(downs),
                static_cast<unsigned long long>(ups),
                victim_records, want_records);

    // Perf/robustness-trajectory artifact.
    {
        const auto snap =
            telemetry::Registry::instance().snapshot();
        util::JsonValue doc = util::JsonValue::makeObject();
        doc.set("bench",
                util::JsonValue::makeString("bench_cluster"));
        const auto num = [](double v) {
            return util::JsonValue::makeNumber(v);
        };
        doc.set("backends",
                num(static_cast<double>(n_backends)));
        doc.set("connections",
                num(static_cast<double>(cluster.connections)));
        doc.set("requests_per_connection",
                num(static_cast<double>(cluster.requests)));
        doc.set("issued", num(static_cast<double>(issued)));
        doc.set("ok", num(static_cast<double>(total.ok)));
        doc.set("retried",
                num(static_cast<double>(total.retried)));
        doc.set("dup_acks",
                num(static_cast<double>(total.dup_acks)));
        doc.set("lost", num(static_cast<double>(total.lost)));
        doc.set("mismatches",
                num(static_cast<double>(total.mismatches)));
        doc.set("wall_s", num(wall_s));
        doc.set("req_per_s",
                num(wall_s > 0.0
                        ? static_cast<double>(answered) / wall_s
                        : 0.0));
        doc.set("killed_after_s", num(killed_after_s));
        doc.set("restarted_after_s", num(restarted_after_s));
        doc.set("victim_records",
                num(static_cast<double>(victim_records)));
        doc.set("oracle_records",
                num(static_cast<double>(want_records)));
        for (const char *name :
             {"route.forwarded", "route.retries",
              "route.failovers", "route.no_backend",
              "route.health_up", "route.health_down",
              "route.probes", "route.probe_failures"})
            doc.set(name, num(static_cast<double>(
                            snap.counter(name))));
        bench::writeBenchArtifact(
            bench::benchJsonPath(opts, "BENCH_cluster.json"), doc);
    }

    // --- Teardown -------------------------------------------------
    router.stop();
    for (std::size_t b = 0; b < n_backends; ++b) {
        kill(pids[b], SIGTERM);
    }
    for (std::size_t b = 0; b < n_backends; ++b) {
        waitpid(pids[b], nullptr, 0);
        std::remove(cacheFile(b).c_str());
    }
    return failed ? 1 : 0;
}
