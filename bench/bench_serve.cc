/**
 * @file
 * Load generator for the serving layer (ISSUE: src/serve).
 *
 * Spawns an in-process Server over one EvaluationService, drives N
 * concurrent client connections through a deterministic mixed request
 * distribution (evaluate / select_drm / select_dtm / stats), and
 * reports throughput and latency percentiles.
 *
 * Correctness is checked, not assumed:
 *
 *  - Every ok reply's result object must be byte-identical to the
 *    answer computed directly through the same service (which runs
 *    the same drm::selectDrm / OracleExplorer::tryEvaluate calls a
 *    non-served caller would make). One mismatch fails the run.
 *  - Every request must receive an explicit answer: an ok reply, a
 *    structured rejection ("overloaded"/"shutting-down"), or -- only
 *    under a fault plan that severs connections -- a torn stream,
 *    after which the worker reconnects. With no fault plan, any
 *    transport error fails the run.
 *
 * Extra flags beyond the shared bench set: --connections N,
 * --requests N (per connection), --queue-depth N, --batch-max N,
 * --port N (attach to an external ramp_served instead of the
 * in-process server; correctness checking then requires the same
 * cache/seed configuration on both sides).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "aging/state.hh"
#include "common.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/telemetry.hh"

namespace {

using namespace ramp;

struct ServeOptions
{
    std::size_t connections = 8;
    std::size_t requests = 50; ///< Per connection.
    std::size_t queue_depth = 64;
    std::size_t batch_max = 16;
    std::uint16_t port = 0; ///< 0 = in-process server.
};

/** Pull bench_serve's own flags out of argv (before Options). */
ServeOptions
parseServeFlags(int &argc, char **argv)
{
    ServeOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::size_t *dest = nullptr;
        if (arg == "--connections")
            dest = &opts.connections;
        else if (arg == "--requests")
            dest = &opts.requests;
        else if (arg == "--queue-depth")
            dest = &opts.queue_depth;
        else if (arg == "--batch-max")
            dest = &opts.batch_max;
        else if (arg != "--port") {
            argv[out++] = argv[i];
            continue;
        }
        if (i + 1 >= argc)
            util::fatal(util::cat(arg, " needs a value"));
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(argv[++i], &end, 10);
        if (*end != '\0' || n < 1)
            util::fatal(util::cat(arg,
                                  " needs a positive integer"));
        if (dest)
            *dest = static_cast<std::size_t>(n);
        else
            opts.port = static_cast<std::uint16_t>(n);
    }
    argc = out;
    argv[out] = nullptr;
    return opts;
}

/** One request of the mixed distribution, deterministic in (worker,
 *  sequence) so every run exercises the same stream. Select requests
 *  carry @p surrogate, so a tiered run serves the same stream
 *  through the fast path. */
serve::Request
mixedRequest(std::size_t worker, std::size_t seq,
             const std::vector<workload::AppProfile> &apps,
             drm::surrogate::SurrogateMode surrogate)
{
    util::Rng rng(0x62656e63685f7376ull ^ (worker * 0x9e3779b9ull) ^
                  seq);
    serve::Request req;
    req.app = apps[rng.below(apps.size())].name;
    req.space = drm::AdaptationSpace::Dvs;
    const double roll = rng.uniform();
    if (roll < 0.70) {
        req.type = serve::RequestType::Evaluate;
        req.config =
            rng.below(drm::configSpace(req.space).size());
    } else if (roll < 0.85) {
        req.type = serve::RequestType::SelectDrm;
        // Half the selections sweep the full ArchDVS space: large
        // enough to train the surrogate, so a tiered run actually
        // serves ranked selections instead of falling back.
        if (rng.uniform() < 0.5)
            req.space = drm::AdaptationSpace::ArchDvs;
        req.surrogate = surrogate;
    } else if (roll < 0.95) {
        req.type = serve::RequestType::SelectDtm;
        if (rng.uniform() < 0.5)
            req.space = drm::AdaptationSpace::ArchDvs;
        req.surrogate = surrogate;
    } else {
        req.type = serve::RequestType::Stats;
    }
    return req;
}

/** Signature for the expected-answer table. */
std::string
requestKey(const serve::Request &req)
{
    return util::cat(serve::requestTypeName(req.type), "/", req.app,
                     "/", drm::adaptationSpaceName(req.space), "/",
                     req.config);
}

struct WorkerTally
{
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;  ///< overloaded / shutting-down.
    std::uint64_t torn = 0;      ///< Transport errors (fault runs).
    std::uint64_t reconnects = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t transport_failures = 0; ///< Clean-run errors.
    std::vector<double> latencies_s;
};

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions serve_opts = parseServeFlags(argc, argv);
    bench::Options opts = bench::Options::parse(argc, argv);
    const bool faulted = fault::activeFaultPlan() != nullptr;

    std::fprintf(stderr,
                 "bench_serve: %zu connections x %zu requests "
                 "(queue %zu, batch %zu%s)\n",
                 serve_opts.connections, serve_opts.requests,
                 serve_opts.queue_depth, serve_opts.batch_max,
                 faulted ? ", fault plan armed" : "");

    serve::ServiceOptions service_opts;
    service_opts.cache_path = bench::cachePath(opts);
    service_opts.threads = opts.threads;
    service_opts.max_apps = opts.max_apps;
    service_opts.eval_params = bench::benchEvalParams(opts);
    serve::EvaluationService service(service_opts);

    serve::ServerOptions server_opts;
    server_opts.queue_depth = serve_opts.queue_depth;
    server_opts.batch_max = serve_opts.batch_max;
    serve::Server server(service, server_opts);
    std::uint16_t port = serve_opts.port;
    if (port == 0) {
        if (auto started = server.start(); !started)
            util::fatal(util::cat("bench_serve: ",
                                  started.error().str()));
        port = server.port();
    }

    // Expected answers, computed through the same service the server
    // uses -- i.e. the same selectDrm/tryEvaluate calls and the same
    // encoder -- sequentially, before any load exists. This both
    // checks byte-identity and warms the cache and memos. Select
    // answers are always precomputed with the surrogate *off*, so a
    // `--surrogate rank|auto` run byte-compares every served tiered
    // selection against the exhaustive oracle end to end.
    service.ensureReady();
    std::map<std::string, std::string> expected;
    for (std::size_t w = 0; w < serve_opts.connections; ++w) {
        for (std::size_t s = 0; s < serve_opts.requests; ++s) {
            serve::Request req = mixedRequest(w, s, service.apps(),
                                              opts.surrogate);
            if (req.type == serve::RequestType::Stats)
                continue; // Stats answers are time-varying.
            const std::string key = requestKey(req);
            if (expected.count(key))
                continue;
            util::Result<util::JsonValue> direct =
                util::RampError{util::ErrorCode::InvalidInput,
                                "unset"};
            if (req.type == serve::RequestType::Evaluate) {
                auto op = service.evaluatePoint(req.app, req.space,
                                                req.config);
                direct = op ? service.encodeEvaluation(req,
                                                       op.value())
                            : util::Result<util::JsonValue>(
                                  op.error());
            } else {
                serve::Request exhaustive = req;
                exhaustive.surrogate =
                    drm::surrogate::SurrogateMode::Off;
                direct = service.select(exhaustive);
            }
            if (!direct)
                util::fatal(util::cat("bench_serve: direct ", key,
                                      " failed: ",
                                      direct.error().str()));
            expected.emplace(key,
                             util::writeJson(direct.value()));
        }
    }
    std::fprintf(stderr,
                 "bench_serve: %zu unique answers precomputed\n",
                 expected.size());

    std::vector<WorkerTally> tallies(serve_opts.connections);
    std::vector<std::thread> workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t w = 0; w < serve_opts.connections; ++w) {
        workers.emplace_back([&, w] {
            WorkerTally &tally = tallies[w];
            serve::ClientOptions copts;
            copts.port = port;
            auto client = serve::Client::connect(copts);
            for (std::size_t s = 0; s < serve_opts.requests; ++s) {
                if (!client) {
                    ++tally.reconnects;
                    client = serve::Client::connect(copts);
                    if (!client) {
                        ++tally.transport_failures;
                        break;
                    }
                }
                serve::Request req = mixedRequest(
                    w, s, service.apps(), opts.surrogate);
                const std::string key = requestKey(req);
                const auto req_t0 =
                    std::chrono::steady_clock::now();
                auto reply = client.value().call(req);
                if (!reply) {
                    // Torn stream: expected under a conn-drop
                    // fault plan, a failure otherwise.
                    if (faulted)
                        ++tally.torn;
                    else
                        ++tally.transport_failures;
                    client = util::RampError{
                        util::ErrorCode::IoFailure, "reconnect"};
                    continue;
                }
                tally.latencies_s.push_back(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - req_t0)
                        .count());
                if (!reply.value().ok) {
                    const std::string &code =
                        reply.value().error_code;
                    if (code == serve::err_overloaded ||
                        code == serve::err_shutting_down) {
                        ++tally.rejected;
                    } else {
                        std::fprintf(
                            stderr,
                            "bench_serve: %s -> %s: %s\n",
                            key.c_str(), code.c_str(),
                            reply.value().error_message.c_str());
                        ++tally.mismatches;
                    }
                    continue;
                }
                ++tally.ok;
                if (req.type == serve::RequestType::Stats)
                    continue;
                const std::string got =
                    util::writeJson(reply.value().result);
                const auto want = expected.find(key);
                if (want == expected.end() ||
                    got != want->second) {
                    ++tally.mismatches;
                    std::fprintf(stderr,
                                 "bench_serve: MISMATCH %s\n  "
                                 "want %s\n  got  %s\n",
                                 key.c_str(),
                                 want == expected.end()
                                     ? "<none>"
                                     : want->second.c_str(),
                                 got.c_str());
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    WorkerTally total;
    for (const auto &tally : tallies) {
        total.ok += tally.ok;
        total.rejected += tally.rejected;
        total.torn += tally.torn;
        total.reconnects += tally.reconnects;
        total.mismatches += tally.mismatches;
        total.transport_failures += tally.transport_failures;
        total.latencies_s.insert(total.latencies_s.end(),
                                 tally.latencies_s.begin(),
                                 tally.latencies_s.end());
    }
    std::sort(total.latencies_s.begin(), total.latencies_s.end());
    const auto pct = [&](double p) {
        if (total.latencies_s.empty())
            return 0.0;
        return util::percentile(total.latencies_s, p) * 1e3;
    };

    const std::uint64_t issued =
        static_cast<std::uint64_t>(serve_opts.connections) *
        serve_opts.requests;
    const std::uint64_t answered =
        total.ok + total.rejected + total.torn;
    std::printf("bench_serve: %llu/%llu answered in %.2f s "
                "(%.1f req/s)\n",
                static_cast<unsigned long long>(answered),
                static_cast<unsigned long long>(issued), wall_s,
                wall_s > 0.0
                    ? static_cast<double>(answered) / wall_s
                    : 0.0);
    std::printf("  ok %llu, rejected %llu, torn %llu "
                "(reconnects %llu)\n",
                static_cast<unsigned long long>(total.ok),
                static_cast<unsigned long long>(total.rejected),
                static_cast<unsigned long long>(total.torn),
                static_cast<unsigned long long>(total.reconnects));
    std::printf("  latency ms: p50 %.2f  p90 %.2f  p99 %.2f\n",
                pct(0.50), pct(0.90), pct(0.99));

    // Perf-trajectory artifact: enough to see, commit over commit,
    // whether serving throughput or the surrogate's exact-simulation
    // savings regressed.
    {
        const auto snap =
            telemetry::Registry::instance().snapshot();
        util::JsonValue doc = util::JsonValue::makeObject();
        doc.set("bench", util::JsonValue::makeString("bench_serve"));
        doc.set("surrogate",
                util::JsonValue::makeString(
                    drm::surrogate::surrogateModeName(
                        opts.surrogate)));
        doc.set("connections",
                util::JsonValue::makeNumber(static_cast<double>(
                    serve_opts.connections)));
        doc.set("requests_per_connection",
                util::JsonValue::makeNumber(static_cast<double>(
                    serve_opts.requests)));
        doc.set("issued", util::JsonValue::makeNumber(
                              static_cast<double>(issued)));
        doc.set("answered", util::JsonValue::makeNumber(
                                static_cast<double>(answered)));
        doc.set("ok", util::JsonValue::makeNumber(
                          static_cast<double>(total.ok)));
        doc.set("rejected", util::JsonValue::makeNumber(
                                static_cast<double>(total.rejected)));
        doc.set("wall_s", util::JsonValue::makeNumber(wall_s));
        doc.set("req_per_s",
                util::JsonValue::makeNumber(
                    wall_s > 0.0
                        ? static_cast<double>(answered) / wall_s
                        : 0.0));
        doc.set("p50_ms", util::JsonValue::makeNumber(pct(0.50)));
        doc.set("p90_ms", util::JsonValue::makeNumber(pct(0.90)));
        doc.set("p99_ms", util::JsonValue::makeNumber(pct(0.99)));
        for (const char *name :
             {"surrogate.selections", "surrogate.exact_confirms",
              "surrogate.train_evals", "surrogate.exact_sims_saved",
              "surrogate.fallbacks"})
            doc.set(name, util::JsonValue::makeNumber(
                              static_cast<double>(
                                  snap.counter(name))));
        bench::writeBenchArtifact(
            bench::benchJsonPath(opts, "BENCH_serve.json"), doc);
    }

    bool failed = false;
    if (total.mismatches != 0) {
        std::printf("DEVIATION: %llu replies differed from the "
                    "direct evaluation path\n",
                    static_cast<unsigned long long>(
                        total.mismatches));
        failed = true;
    }
    if (total.transport_failures != 0) {
        std::printf("DEVIATION: %llu requests got no answer on a "
                    "clean run\n",
                    static_cast<unsigned long long>(
                        total.transport_failures));
        failed = true;
    }
    if (!faulted && answered != issued) {
        std::printf("DEVIATION: %llu requests were dropped without "
                    "a structured reply\n",
                    static_cast<unsigned long long>(issued -
                                                    answered));
        failed = true;
    }

    // One versioned round-trip through the v2 surface: hello ->
    // report_usage -> remaining_lifetime. Skipped under a fault
    // plan, where a severed connection would fail the smoke rather
    // than the protocol.
    if (!faulted) {
        serve::ClientOptions copts;
        copts.port = port;
        bool smoke_ok = false;
        if (auto session = serve::Session::open(copts);
            session && session.value().version() >= 2) {
            aging::AgingState delta;
            delta.age_hours = 8760.0;
            delta.damage[0][0] = 0.01;
            auto merged = session.value().reportUsage(
                "bench_serve_smoke", aging::toJson(delta));
            if (merged) {
                auto life = session.value().remainingLifetime(
                    "bench_serve_smoke", service.apps()[0].name,
                    drm::AdaptationSpace::Dvs);
                smoke_ok = life &&
                           life.value().find("consumed") !=
                               nullptr &&
                           life.value().find("selection") !=
                               nullptr;
            }
        }
        if (!smoke_ok) {
            std::printf("DEVIATION: v2 remaining_lifetime "
                        "round-trip failed\n");
            failed = true;
        }
    }

    if (serve_opts.port == 0)
        server.stop();
    return failed ? 1 : 0;
}
