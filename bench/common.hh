/**
 * @file
 * Shared plumbing for the reproduction benches: the unified command
 * line (bench::Options), the persistent evaluation cache, the worker
 * pool, the explored application suite, and the paper's qualification
 * setup (Section 3.7).
 *
 * Every bench prints the rows/series of one paper table or figure;
 * EXPERIMENTS.md records the measured output against the paper.
 *
 * All benches accept the same flags (see Options::usage):
 * `--threads N`, `--seed N`, `--apps N`, `--cache PATH`,
 * `--surrogate MODE`, `--bench-json PATH`, `--metrics PATH`,
 * `--trace PATH`, `--fault-plan P` and `--fault-seed N`, plus the
 * chip-shape flags `--cores N` and `--floorplan PATH` (meaningful to
 * bench_cmp, accepted everywhere) and `--help`. Unknown flags are rejected, except in the stripping mode
 * bench_kernels uses to coexist with google-benchmark's own flags.
 * The RAMP_THREADS and RAMP_EVAL_CACHE environment variables provide
 * defaults for the worker count and the cache path; an explicit
 * `--cache ""` beats the env var and selects an in-memory cache.
 *
 * Parallelism: the oracle sweeps fan exploration points out across
 * one shared pool; output is bit-identical at any thread count.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "drm/surrogate/tiered.hh"
#include "fault/fault.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp {
namespace bench {

/** Cache file shared by all bench binaries (overridable by env). */
inline std::string
cachePath()
{
    if (const char *env = std::getenv("RAMP_EVAL_CACHE"))
        return env;
    return "ramp_eval_cache.txt";
}

struct Options;

/** Cache path resolution: --cache flag > RAMP_EVAL_CACHE > default. */
std::string cachePath(const Options &opts);

/** The unified bench command line. */
struct Options
{
    /** Worker threads; 0 = RAMP_THREADS, else hardware concurrency. */
    unsigned threads = 0;
    /** Workload generator seed. Part of the evaluation-cache key, so
     *  non-default seeds populate their own cache records. */
    std::uint64_t seed = 1;
    /** Truncate the suite to its first N applications; 0 = all. */
    std::size_t max_apps = 0;
    /** Telemetry snapshot written at process exit ("" = none). */
    std::string metrics_path;
    /** Chrome trace-event timeline written at exit ("" = none;
     *  setting it enables span collection). */
    std::string trace_path;
    /** Evaluation-cache path. Only meaningful with cache_set; an
     *  explicit empty path selects an in-memory cache (see
     *  cachePath(opts) for the three-way precedence). */
    std::string cache_path;
    /** --cache was given, even with an empty value. The flag always
     *  beats RAMP_EVAL_CACHE. */
    bool cache_set = false;
    /** Tiered-selection mode for benches that select (see
     *  drm/surrogate/tiered.hh). Off preserves the exhaustive
     *  behaviour bit-for-bit. */
    drm::surrogate::SurrogateMode surrogate =
        drm::surrogate::SurrogateMode::Off;
    /** Perf-trajectory artifact path. Only meaningful with
     *  bench_json_set; an explicit empty value disables the
     *  artifact. Unset = the bench's default BENCH_*.json name. */
    std::string bench_json_path;
    bool bench_json_set = false;
    /** Aging-state output path ("" = none). bench_aging saves its
     *  reference scenario's final AgingState here, in the canonical
     *  format ramp_served --aging-state and ramp_client
     *  report-usage consume. */
    std::string aging_state_path;
    /** Fault-injection plan: inline JSON (leading '{') or a file
     *  path; "" = run clean. Parsed and installed by parse(). */
    std::string fault_plan;
    /** Overrides the plan's own seed when nonzero. */
    std::uint64_t fault_seed = 0;
    /** Chip floorplan JSON for the CMP bench ("" = built-in grids).
     *  Wins over --cores. */
    std::string floorplan_path;
    /** Restrict the CMP bench to one built-in grid size; 0 = the
     *  bench's default core-count sweep. */
    std::size_t cores = 0;

    static void
    usage(const char *prog, std::FILE *out)
    {
        std::fprintf(
            out,
            "usage: %s [options]\n"
            "  --threads N     worker threads (default: RAMP_THREADS, "
            "else hardware)\n"
            "  --seed N        workload generator seed (default 1; "
            "keyed into the\n"
            "                  evaluation cache, so non-default seeds "
            "re-simulate)\n"
            "  --apps N        run only the first N suite "
            "applications\n"
            "  --cache PATH    evaluation cache file (wins over "
            "RAMP_EVAL_CACHE;\n"
            "                  an empty PATH selects an in-memory "
            "cache)\n"
            "  --surrogate M   tiered selection mode: off, rank, or "
            "auto\n"
            "                  (default off = exhaustive search)\n"
            "  --bench-json P  perf-trajectory artifact path (default "
            "the bench's\n"
            "                  BENCH_*.json; an empty P disables it)\n"
            "  --aging-state P write the final AgingState (JSON) to P "
            "(bench_aging)\n"
            "  --metrics PATH  write a telemetry metrics snapshot "
            "(JSON) at exit\n"
            "  --trace PATH    write a Chrome trace-event timeline at "
            "exit\n"
            "  --fault-plan P  install a fault-injection plan: inline "
            "JSON ('{...}')\n"
            "                  or a JSON file path (default: run "
            "clean)\n"
            "  --fault-seed N  override the plan's seed (requires "
            "--fault-plan)\n"
            "  --cores N       built-in chip grid size for bench_cmp "
            "(1, 2, 4,\n"
            "                  or 8; default: sweep 2/4/8)\n"
            "  --floorplan P   chip floorplan JSON for bench_cmp "
            "(wins over\n"
            "                  --cores; default: built-in grids)\n"
            "  --help          show this message and exit\n"
            "environment:\n"
            "  RAMP_THREADS    default worker count\n"
            "  RAMP_EVAL_CACHE evaluation cache path (default "
            "ramp_eval_cache.txt)\n",
            prog);
    }

    /**
     * Parse the full command line; any unrecognized argument is
     * fatal. Registers the --metrics/--trace paths with the
     * telemetry layer, so simply parsing arms the exit-time writers.
     */
    static Options
    parse(int argc, char **argv)
    {
        return parseImpl(argc, argv, /*strip=*/false);
    }

    /**
     * Parse and REMOVE the flags above from argv (compacting it and
     * updating argc), leaving unrecognized arguments in place for a
     * second-stage parser -- bench_kernels hands the remainder to
     * google-benchmark.
     */
    static Options
    parseStripping(int &argc, char **argv)
    {
        return parseImpl(argc, argv, /*strip=*/true);
    }

  private:
    static std::uint64_t
    parsePositive(const char *flag, const std::string &value)
    {
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0' || n < 1)
            util::fatal(util::cat(flag,
                                  " needs a positive integer, got '",
                                  value, "'"));
        return n;
    }

    static Options
    parseImpl(int &argc, char **argv, bool strip)
    {
        Options opts;
        const char *prog = argc > 0 ? argv[0] : "bench";
        std::string surrogate_name;
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];

            if (arg == "--help" || arg == "-h") {
                usage(prog, stdout);
                std::exit(0);
            }

            // Flags taking a value, as "--flag V" or "--flag=V".
            const char *flag = nullptr;
            std::string *str_out = nullptr;
            for (const auto &[name, dest] :
                 {std::pair<const char *, std::string *>{"--metrics",
                                                         &opts
                                                              .metrics_path},
                  {"--trace", &opts.trace_path},
                  {"--cache", &opts.cache_path},
                  {"--surrogate", &surrogate_name},
                  {"--bench-json", &opts.bench_json_path},
                  {"--aging-state", &opts.aging_state_path},
                  {"--fault-plan", &opts.fault_plan},
                  {"--floorplan", &opts.floorplan_path},
                  {"--threads", nullptr},
                  {"--seed", nullptr},
                  {"--fault-seed", nullptr},
                  {"--cores", nullptr},
                  {"--apps", nullptr}}) {
                if (arg == name ||
                    arg.rfind(std::string(name) + "=", 0) == 0) {
                    flag = name;
                    str_out = dest;
                    break;
                }
            }
            if (!flag) {
                if (strip) {
                    argv[out++] = argv[i];
                    continue;
                }
                usage(prog, stderr);
                util::fatal(util::cat("unknown argument '", arg,
                                      "' (see --help)"));
            }

            std::string value;
            const std::size_t flag_len = std::string(flag).size();
            if (arg.size() > flag_len) {
                value = arg.substr(flag_len + 1); // past the '='
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                util::fatal(util::cat(flag, " needs a value"));
            }

            if (str_out) {
                // --cache "" (in-memory) and --bench-json ""
                // (disable) are meaningful; the rest need a path.
                const bool allow_empty =
                    std::string(flag) == "--cache" ||
                    std::string(flag) == "--bench-json";
                if (value.empty() && !allow_empty)
                    util::fatal(
                        util::cat(flag, " needs a non-empty path"));
                *str_out = value;
                if (std::string(flag) == "--cache")
                    opts.cache_set = true;
                else if (std::string(flag) == "--bench-json")
                    opts.bench_json_set = true;
            } else if (std::string(flag) == "--threads") {
                opts.threads = static_cast<unsigned>(
                    parsePositive(flag, value));
            } else if (std::string(flag) == "--seed") {
                opts.seed = parsePositive(flag, value);
            } else if (std::string(flag) == "--fault-seed") {
                opts.fault_seed = parsePositive(flag, value);
            } else if (std::string(flag) == "--cores") {
                opts.cores = static_cast<std::size_t>(
                    parsePositive(flag, value));
            } else { // --apps
                opts.max_apps = static_cast<std::size_t>(
                    parsePositive(flag, value));
            }
        }
        if (strip) {
            argc = out;
            argv[out] = nullptr;
        }

        if (!surrogate_name.empty()) {
            auto mode =
                drm::surrogate::surrogateModeFromName(surrogate_name);
            if (!mode)
                util::fatal(util::cat(
                    "--surrogate needs off, rank, or auto; got '",
                    surrogate_name, "'"));
            opts.surrogate = *mode;
        }

        if (!opts.metrics_path.empty() || !opts.trace_path.empty())
            telemetry::writeFilesAtExit(opts.metrics_path,
                                        opts.trace_path);

        if (opts.fault_seed != 0 && opts.fault_plan.empty())
            util::fatal("--fault-seed requires --fault-plan");
        if (!opts.fault_plan.empty()) {
            auto plan = fault::loadFaultPlan(opts.fault_plan);
            if (!plan)
                util::fatal(util::cat("--fault-plan: ",
                                      plan.error().str()));
            if (opts.fault_seed != 0)
                plan.value().seed = opts.fault_seed;
            fault::installFaultPlan(plan.value());
        }
        return opts;
    }
};

inline std::string
cachePath(const Options &opts)
{
    // Three-way precedence: flag > RAMP_EVAL_CACHE > default. An
    // explicit --cache "" means "in-memory", so the flag must win
    // even when its value is empty -- falling through to the env var
    // here would silently reattach the file the caller opted out of.
    if (opts.cache_set)
        return opts.cache_path;
    return cachePath();
}

/** Perf-trajectory artifact path for a bench whose default artifact
 *  is @p default_name; "" = disabled by --bench-json "". */
inline std::string
benchJsonPath(const Options &opts, const std::string &default_name)
{
    return opts.bench_json_set ? opts.bench_json_path : default_name;
}

/** Write one BENCH_*.json perf-trajectory artifact (no-op on an
 *  empty path). The document is the bench's own measurement record
 *  -- exact-simulation counts, wall time, throughput -- diffed
 *  across PRs, so benches must only ever APPEND keys. */
inline void
writeBenchArtifact(const std::string &path,
                   const util::JsonValue &doc)
{
    if (path.empty())
        return;
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        util::warn(util::cat("bench: cannot write artifact ", path));
        return;
    }
    writeJson(os, doc);
    os << '\n';
    std::fprintf(stderr, "  perf artifact: %s\n", path.c_str());
}

/** Simulation controls used by every reproduction bench. */
inline core::EvalParams
benchEvalParams(const Options &opts = {})
{
    core::EvalParams params; // defaults; keyed into the cache
    params.seed = opts.seed;
    return params;
}

/** The explored suite: apps, base operating points, alpha_qual. */
struct Suite
{
    drm::EvaluationCache cache;
    util::ThreadPool pool;
    drm::OracleExplorer explorer;
    std::vector<workload::AppProfile> apps;
    std::vector<core::OperatingPoint> base_ops;
    sim::PerStructure<double> alpha_qual{};

    explicit Suite(const Options &opts = {})
        : cache(cachePath(opts)),
          pool(opts.threads),
          explorer(benchEvalParams(opts), &cache, &pool),
          apps(workload::standardApps())
    {
        if (opts.max_apps && opts.max_apps < apps.size())
            apps.resize(opts.max_apps);
        std::fprintf(stderr, "  suite: %u thread%s\n", pool.threads(),
                     pool.threads() == 1 ? "" : "s");
        base_ops.resize(apps.size());
        const auto batch =
            pool.parallelFor(apps.size(), [&](std::size_t i) {
                base_ops[i] = explorer.evaluateBase(apps[i]);
            });
        if (!batch.ok())
            throw ramp::util::RampException(
                batch.failures.front().second);
        alpha_qual = drm::alphaQualFromBaseline(base_ops);
    }

    ~Suite()
    {
        // Rendered from the telemetry registry (the cache mirrors its
        // per-instance counters there); one cache per bench process,
        // so the process-wide counts are this cache's counts.
        const auto snap = telemetry::Registry::instance().snapshot();
        std::fprintf(
            stderr,
            "  evaluation cache: %zu hits, %zu misses, "
            "%zu appended (loaded %zu, compacted %zu)\n",
            static_cast<std::size_t>(snap.counter("cache.hits")),
            static_cast<std::size_t>(snap.counter("cache.misses")),
            static_cast<std::size_t>(snap.counter("cache.appends")),
            static_cast<std::size_t>(snap.counter("cache.loaded")),
            static_cast<std::size_t>(
                snap.counter("cache.compacted_lines")));
    }

    /**
     * Qualification at a given T_qual: target 4000 FIT, V/f at base,
     * alpha_qual at the suite maximum (Section 3.7).
     */
    core::Qualification qualification(double t_qual_k) const
    {
        core::QualificationSpec spec;
        spec.t_qual_k = t_qual_k;
        spec.alpha_qual = alpha_qual;
        return core::Qualification(spec);
    }
};

} // namespace bench
} // namespace ramp

