/**
 * @file
 * Shared plumbing for the reproduction benches: the persistent
 * evaluation cache, the worker pool, the explored application suite,
 * and the paper's qualification setup (Section 3.7).
 *
 * Every bench prints the rows/series of one paper table or figure;
 * EXPERIMENTS.md records the measured output against the paper.
 *
 * Parallelism: every bench accepts `--threads N` (or the RAMP_THREADS
 * environment variable; the flag wins), defaulting to the hardware
 * concurrency. The oracle sweeps fan exploration points out across
 * one shared pool; output is bit-identical at any thread count.
 */

#ifndef RAMP_BENCH_COMMON_HH
#define RAMP_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp {
namespace bench {

/** Cache file shared by all bench binaries (overridable by env). */
inline std::string
cachePath()
{
    if (const char *env = std::getenv("RAMP_EVAL_CACHE"))
        return env;
    return "ramp_eval_cache.txt";
}

/**
 * Worker count for this run: `--threads N` if present on the command
 * line, else RAMP_THREADS, else the hardware concurrency. Exits with
 * a usage message on a malformed flag.
 */
inline unsigned
threadCount(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--threads" && i + 1 < argc)
            value = argv[i + 1];
        else if (arg == "--threads")
            util::fatal("--threads needs a positive integer value");
        else if (arg.rfind("--threads=", 0) == 0)
            value = arg.substr(10);
        else
            continue;
        char *end = nullptr;
        const long n = std::strtol(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0' || n < 1)
            util::fatal(util::cat("--threads needs a positive "
                                  "integer, got '",
                                  value, "'"));
        return static_cast<unsigned>(n);
    }
    return util::defaultThreadCount();
}

/** Simulation controls used by every reproduction bench. */
inline core::EvalParams
benchEvalParams()
{
    return core::EvalParams{}; // defaults; keyed into the cache
}

/** The explored suite: apps, base operating points, alpha_qual. */
struct Suite
{
    drm::EvaluationCache cache;
    util::ThreadPool pool;
    drm::OracleExplorer explorer;
    std::vector<workload::AppProfile> apps;
    std::vector<core::OperatingPoint> base_ops;
    sim::PerStructure<double> alpha_qual{};

    /** @param threads Pool size; 0 means RAMP_THREADS/hardware. */
    explicit Suite(unsigned threads = 0)
        : cache(cachePath()),
          pool(threads),
          explorer(benchEvalParams(), &cache, &pool),
          apps(workload::standardApps())
    {
        std::fprintf(stderr, "  suite: %u thread%s\n", pool.threads(),
                     pool.threads() == 1 ? "" : "s");
        base_ops.resize(apps.size());
        pool.parallelFor(apps.size(), [&](std::size_t i) {
            base_ops[i] = explorer.evaluateBase(apps[i]);
        });
        alpha_qual = drm::alphaQualFromBaseline(base_ops);
    }

    ~Suite()
    {
        const auto s = cache.stats();
        std::fprintf(stderr,
                     "  evaluation cache: %zu hits, %zu misses, "
                     "%zu appended (loaded %zu, compacted %zu)\n",
                     s.hits, s.misses, s.appended, s.loaded,
                     s.compacted);
    }

    /**
     * Qualification at a given T_qual: target 4000 FIT, V/f at base,
     * alpha_qual at the suite maximum (Section 3.7).
     */
    core::Qualification qualification(double t_qual_k) const
    {
        core::QualificationSpec spec;
        spec.t_qual_k = t_qual_k;
        spec.alpha_qual = alpha_qual;
        return core::Qualification(spec);
    }
};

} // namespace bench
} // namespace ramp

#endif // RAMP_BENCH_COMMON_HH
