/**
 * @file
 * Shared plumbing for the reproduction benches: the persistent
 * evaluation cache, the explored application suite, and the paper's
 * qualification setup (Section 3.7).
 *
 * Every bench prints the rows/series of one paper table or figure;
 * EXPERIMENTS.md records the measured output against the paper.
 */

#ifndef RAMP_BENCH_COMMON_HH
#define RAMP_BENCH_COMMON_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "workload/profile.hh"

namespace ramp {
namespace bench {

/** Cache file shared by all bench binaries (overridable by env). */
inline std::string
cachePath()
{
    if (const char *env = std::getenv("RAMP_EVAL_CACHE"))
        return env;
    return "ramp_eval_cache.txt";
}

/** Simulation controls used by every reproduction bench. */
inline core::EvalParams
benchEvalParams()
{
    return core::EvalParams{}; // defaults; keyed into the cache
}

/** The explored suite: apps, base operating points, alpha_qual. */
struct Suite
{
    drm::EvaluationCache cache;
    drm::OracleExplorer explorer;
    std::vector<workload::AppProfile> apps;
    std::vector<core::OperatingPoint> base_ops;
    sim::PerStructure<double> alpha_qual{};

    Suite()
        : cache(cachePath()),
          explorer(benchEvalParams(), &cache),
          apps(workload::standardApps())
    {
        for (const auto &app : apps)
            base_ops.push_back(explorer.evaluateBase(app));
        alpha_qual = drm::alphaQualFromBaseline(base_ops);
    }

    /**
     * Qualification at a given T_qual: target 4000 FIT, V/f at base,
     * alpha_qual at the suite maximum (Section 3.7).
     */
    core::Qualification qualification(double t_qual_k) const
    {
        core::QualificationSpec spec;
        spec.t_qual_k = t_qual_k;
        spec.alpha_qual = alpha_qual;
        return core::Qualification(spec);
    }
};

} // namespace bench
} // namespace ramp

#endif // RAMP_BENCH_COMMON_HH
