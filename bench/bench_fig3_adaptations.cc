/**
 * @file
 * Reproduces paper Figure 3: comparison of the three DRM adaptation
 * repertoires (Arch, DVS, ArchDVS) for bzip2 across qualification
 * temperatures {325, 335, 345, 360, 370, 400} K.
 *
 * Expected shape (Section 7.2): DVS and ArchDVS are nearly identical
 * and significantly outperform Arch (paper: ~25% better at
 * T_qual = 335 K); Arch can never exceed 1.0 because it cannot raise
 * the clock.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Suite suite(bench::Options::parse(argc, argv));

    const auto &bzip2 = workload::findApp("bzip2");
    const double t_quals[] = {325.0, 335.0, 345.0, 360.0, 370.0,
                              400.0};

    std::map<drm::AdaptationSpace, drm::ExploredApp> explored;
    for (auto space :
         {drm::AdaptationSpace::Arch, drm::AdaptationSpace::Dvs,
          drm::AdaptationSpace::ArchDvs}) {
        explored.emplace(space, suite.explorer.explore(bzip2, space));
        std::fprintf(stderr, "  explored %s\n",
                     drm::adaptationSpaceName(space));
    }

    util::Table t({"T_qual K", "Arch", "DVS", "ArchDVS"});
    t.setTitle("Figure 3: DRM adaptations for bzip2 "
               "(performance vs base)");

    std::map<double, std::map<drm::AdaptationSpace, double>> perf;
    for (double tq : t_quals) {
        const auto qual = suite.qualification(tq);
        std::vector<std::string> row{util::Table::num(tq, 0)};
        for (auto space :
             {drm::AdaptationSpace::Arch, drm::AdaptationSpace::Dvs,
              drm::AdaptationSpace::ArchDvs}) {
            const auto sel = drm::selectDrm(explored.at(space), qual);
            perf[tq][space] = sel.perf_rel;
            row.push_back(util::Table::num(sel.perf_rel, 3) +
                          (sel.feasible ? "" : "*"));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::cout << "(* = FIT target unreachable in this space)\n\n";

    int checks = 0, passed = 0;
    auto check = [&](const char *what, bool ok) {
        ++checks;
        passed += ok;
        std::printf("  [%s] %s\n", ok ? "ok" : "DEVIATION", what);
    };

    using enum drm::AdaptationSpace;
    bool arch_never_above_one = true;
    bool dvs_close_to_archdvs = true;
    bool dvs_beats_arch_low = true;
    for (double tq : t_quals) {
        arch_never_above_one &= perf[tq][Arch] <= 1.0 + 1e-9;
        dvs_close_to_archdvs &=
            std::abs(perf[tq][Dvs] - perf[tq][ArchDvs]) < 0.08;
    }
    for (double tq : {325.0, 335.0})
        dvs_beats_arch_low &= perf[tq][Dvs] > perf[tq][Arch];

    check("Arch never exceeds 1.0 (cannot raise the clock)",
          arch_never_above_one);
    check("DVS ~= ArchDVS everywhere (paper: indistinguishable)",
          dvs_close_to_archdvs);
    check("DVS outperforms Arch at deep throttle (325-335K)",
          dvs_beats_arch_low);
    check("DVS advantage grows as T_qual falls (paper: ~25% at 335K; "
          "smaller here -- our minimal machine keeps more IPC)",
          perf[325.0][Dvs] > perf[325.0][Arch] * 1.05);
    check("ArchDVS exceeds 1.0 when over-designed (360-400K)",
          perf[400.0][ArchDvs] > 1.0);

    std::printf("\nFigure 3 shape: %d/%d checks hold\n", passed,
                checks);
    return 0;
}
