/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Leakage-temperature feedback: the paper models leakage growing
 *     exponentially with temperature; turning the loop off
 *     understates both temperature and FIT.
 *  2. SOFR vs worst-structure: the paper's sum-of-failure-rates model
 *     against a naive "hottest structure only" estimate.
 *  3. V(f) slope: the Pentium-M-extrapolated 0.1 V/GHz slope against
 *     shallower/steeper relations -- the slope drives the near-cubic
 *     power-in-frequency behaviour that makes DVS so effective.
 *  4. FIT interval granularity: per-interval FIT averaging (paper
 *     Section 3.6) against FIT evaluated at time-averaged conditions;
 *     convexity makes coarse averaging optimistic for phased apps.
 *  5. SOFR's exponential-lifetime assumption vs Monte-Carlo Weibull
 *     wear-out (the paper's Section 8 future work): for the same FIT
 *     report, age-dependent failure rates lengthen the series-system
 *     MTTF and shrink the early-failure tail.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hh"
#include "core/hw_ramp.hh"
#include "core/lifetime.hh"
#include "drm/adaptation.hh"
#include "sim/core.hh"
#include "util/table.hh"
#include "workload/trace_gen.hh"

namespace {

using namespace ramp;

void
ablationLeakageFeedback(bench::Suite &suite)
{
    std::printf("--- Ablation 1: leakage-temperature feedback ---\n");
    const auto &app = workload::findApp("MP3dec");

    core::EvalParams on = bench::benchEvalParams();
    core::EvalParams off = on;
    off.leakage_feedback = false;

    const auto op_on = core::Evaluator(on).evaluate(
        sim::baseMachine(), app);
    const auto op_off = core::Evaluator(off).evaluate(
        sim::baseMachine(), app);

    const auto qual = suite.qualification(370.0);
    const double fit_on = drm::operatingPointFit(qual, op_on);
    const double fit_off = drm::operatingPointFit(qual, op_off);

    util::Table t({"leakage loop", "leak W", "total W", "Tmax K",
                   "FIT@370"});
    t.addRow({"on (paper)", util::Table::num(op_on.power.totalLeakage(), 1),
              util::Table::num(op_on.totalPower(), 1),
              util::Table::num(op_on.maxTemp(), 1),
              util::Table::num(fit_on, 0)});
    t.addRow({"off", util::Table::num(op_off.power.totalLeakage(), 1),
              util::Table::num(op_off.totalPower(), 1),
              util::Table::num(op_off.maxTemp(), 1),
              util::Table::num(fit_off, 0)});
    t.print(std::cout);
    const double delta = 100.0 * (fit_on - fit_off) / fit_off;
    std::printf("  the loop moves FIT by %+.1f%%: pinning leakage at "
                "the 383 K reference %s it for\n  this operating "
                "point, and the bias feeds straight into "
                "temperature and FIT\n\n",
                delta, fit_on < fit_off ? "overstates" : "understates");
}

void
ablationSofr(bench::Suite &suite)
{
    std::printf("--- Ablation 2: SOFR vs worst-structure ---\n");
    const auto qual = suite.qualification(370.0);

    util::Table t({"app", "SOFR FIT", "worst-structure FIT",
                   "underestimate"});
    for (std::size_t i = 0; i < suite.apps.size(); ++i) {
        const auto &op = suite.base_ops[i];
        const auto report = core::steadyFit(
            qual, power::poweredFractions(op.config), op.temps_k,
            op.activity.activity, op.config.voltage_v,
            op.config.frequency_ghz);
        double worst = 0.0;
        for (auto s : sim::allStructures())
            worst = std::max(worst, report.structureFit(s));
        t.addRow({suite.apps[i].name,
                  util::Table::num(report.totalFit(), 0),
                  util::Table::num(worst, 0),
                  util::Table::num(report.totalFit() / worst, 2) +
                      "x"});
    }
    t.print(std::cout);
    std::printf("  a worst-structure-only model understates the "
                "processor failure rate severalfold\n\n");
}

void
ablationVfSlope(bench::Suite &suite)
{
    std::printf("--- Ablation 3: V(f) slope ---\n");
    const auto &app = workload::findApp("bzip2");

    util::Table t({"dV/df (V/GHz)", "V @ 3GHz", "FIT@3GHz (Tq=335)",
                   "f chosen @ Tq=335", "perf vs base"});
    t.setTitle("Voltage-frequency slope and the DVS reliability "
               "lever (bzip2)");

    const auto qual = suite.qualification(335.0);
    for (double slope : {0.05, 0.10, 0.20}) {
        // Build a DVS ladder with this slope, anchored at 4GHz/1.0V.
        drm::ExploredApp explored;
        explored.app_name = app.name;
        explored.base = suite.explorer.evaluateBase(app);
        const double base_perf = explored.base.uopsPerSecond();
        double fit_at_3ghz = 0.0;
        for (double f = 2.5; f <= 5.0 + 1e-9; f += 0.25) {
            sim::MachineConfig cfg = sim::baseMachine();
            cfg.frequency_ghz = f;
            cfg.voltage_v = 1.0 + slope * (f - 4.0);
            drm::ExploredPoint pt;
            pt.op = suite.explorer.evaluate(cfg, app);
            pt.perf_rel = pt.op.uopsPerSecond() / base_perf;
            if (std::abs(f - 3.0) < 1e-9)
                fit_at_3ghz = drm::operatingPointFit(qual, pt.op);
            explored.points.push_back(std::move(pt));
        }
        const auto sel = drm::selectDrm(explored, qual);
        const auto &op = explored.points[sel.index].op;
        t.addRow({util::Table::num(slope, 2),
                  util::Table::num(1.0 + slope * (3.0 - 4.0), 3),
                  util::Table::num(fit_at_3ghz, 0),
                  util::Table::num(op.config.frequency_ghz, 2),
                  util::Table::num(sel.perf_rel, 3)});
    }
    t.print(std::cout);
    std::printf("  a steeper V(f) drops more voltage per lost GHz, "
                "collapsing the TDDB term\n  (and the V^2 in power), "
                "so each throttling step buys more reliability\n\n");
}

void
ablationGranularity(bench::Suite &suite)
{
    std::printf("--- Ablation 4: FIT interval granularity ---\n");
    const auto &app = workload::findApp("MPGdec"); // strongly phased
    const auto qual = suite.qualification(370.0);
    const core::Evaluator evaluator;
    const sim::MachineConfig cfg = sim::baseMachine();

    util::Table t({"interval (uops)", "intervals", "FIT@370"});

    for (std::uint64_t interval_uops :
         {std::uint64_t{1'200'000}, std::uint64_t{120'000},
          std::uint64_t{30'000}}) {
        workload::TraceGenerator gen(app, 1);
        sim::Core core(cfg, gen);
        core.runUops(600'000); // warm
        core.takeInterval();
        core.resetStats();

        sim::PerStructure<double> on;
        on.fill(1.0);
        core::RampEngine engine(qual, on);
        const std::uint64_t total = 1'200'000;
        for (std::uint64_t done = 0; done < total;
             done += interval_uops) {
            core.runUops(interval_uops);
            const auto sample = core.takeInterval();
            const auto op =
                evaluator.convergeThermal(cfg, sample, core.stats());
            const double dt = static_cast<double>(sample.cycles) /
                              (cfg.frequency_ghz * 1e9);
            engine.addInterval(op.temps_k, sample.activity,
                               cfg.voltage_v, cfg.frequency_ghz, dt);
        }
        t.addRow({std::to_string(interval_uops),
                  std::to_string(engine.intervals()),
                  util::Table::num(engine.report().totalFit(), 0)});
    }
    t.print(std::cout);
    std::printf("  coarse averaging understates FIT for phased "
                "applications (FIT is convex in temperature)\n\n");
}

void
ablationLifetimeDistribution(bench::Suite &suite)
{
    std::printf("--- Ablation 5: exponential (SOFR) vs Weibull "
                "wear-out lifetimes ---\n");
    const auto qual = suite.qualification(370.0);

    util::Table t({"app", "SOFR MTTF (y)", "Weibull MTTF (y)",
                   "median (y)", "1st pct (y)"});
    for (std::size_t i = 0; i < suite.apps.size(); ++i) {
        const auto &op = suite.base_ops[i];
        const auto report = core::steadyFit(
            qual, power::poweredFractions(op.config), op.temps_k,
            op.activity.activity, op.config.voltage_v,
            op.config.frequency_ghz);
        const core::LifetimeSimulator mc;
        const auto est = mc.estimate(report);
        t.addRow({suite.apps[i].name,
                  util::Table::num(est.sofr_mttf_years, 1),
                  util::Table::num(est.mttf_years, 1),
                  util::Table::num(est.median_years, 1),
                  util::Table::num(est.p01_years, 1)});
    }
    t.print(std::cout);
    std::printf("  with age-dependent (beta~2) wear-out, the same FIT "
                "report implies a longer series-system MTTF\n  and a "
                "far-out early-failure percentile: SOFR is the "
                "conservative choice the industry makes.\n\n");
}

void
ablationSensors(bench::Suite &suite)
{
    std::printf("--- Ablation 6: hardware sensor precision ---\n");
    const auto qual = suite.qualification(370.0);
    const auto &op =
        suite.base_ops[1]; // MP3dec, the hottest binding app

    sim::PerStructure<double> on;
    on.fill(1.0);
    core::RampEngine exact(qual, on);
    exact.addInterval(op.temps_k, op.activity.activity,
                      op.config.voltage_v, op.config.frequency_ghz,
                      1.0);
    const double exact_fit = exact.report().totalFit();

    util::Table t({"sensor step (K)", "counter bits", "HW FIT",
                   "error vs exact"});
    t.setTitle("Hardware RAMP (paper Section 3: sensors and "
               "counters) vs exact, MP3dec @ T_qual=370K");
    for (auto [step, bits] :
         {std::pair{0.5, 6u}, std::pair{1.0, 4u}, std::pair{2.0, 3u},
          std::pair{4.0, 2u}}) {
        core::SensorParams sp;
        sp.temp_quantum_k = step;
        sp.activity_levels = 1u << bits;
        core::HwRampEngine hw(qual, on, sp);
        hw.addInterval(op.temps_k, op.activity.activity,
                       op.config.voltage_v, op.config.frequency_ghz,
                       1.0);
        const double fit = hw.report().totalFit();
        t.addRow({util::Table::num(step, 1), std::to_string(bits),
                  util::Table::num(fit, 0),
                  util::Table::num(100.0 * (fit - exact_fit) /
                                       exact_fit, 2) + "%"});
    }
    t.print(std::cout);
    std::printf("  exact FIT: %.0f. Diode-class sensors (1 K, 4-bit "
                "counters) track the exact engine\n  to within a few "
                "percent -- RAMP is implementable in hardware.\n\n",
                exact_fit);
}

void
ablationFetchThrottle(bench::Suite &suite)
{
    std::printf("--- Ablation 7: DVS vs fetch throttling ---\n");
    const auto &app = workload::findApp("MP3dec");

    const auto dvs =
        suite.explorer.explore(app, drm::AdaptationSpace::Dvs);
    const auto throttle = suite.explorer.explore(
        app, drm::AdaptationSpace::FetchThrottle);

    util::Table t({"constraint", "DVS perf", "throttle perf",
                   "DVS wins by"});
    t.setTitle("Best feasible point per response mechanism "
               "(MP3dec)");

    for (double temp_k : {355.0, 365.0, 375.0}) {
        // As a DRM response.
        const auto qual = suite.qualification(temp_k);
        const auto d = drm::selectDrm(dvs, qual);
        const auto f = drm::selectDrm(throttle, qual);
        t.addRow({"DRM@" + util::Table::num(temp_k, 0) + "K",
                  util::Table::num(d.perf_rel, 3) +
                      (d.feasible ? "" : "*"),
                  util::Table::num(f.perf_rel, 3) +
                      (f.feasible ? "" : "*"),
                  util::Table::num(
                      100.0 * (d.perf_rel / f.perf_rel - 1.0), 0) +
                      "%"});
        // As a DTM response.
        const auto dd = drm::selectDtm(dvs, temp_k, qual);
        const auto fd = drm::selectDtm(throttle, temp_k, qual);
        t.addRow({"DTM@" + util::Table::num(temp_k, 0) + "K",
                  util::Table::num(dd.perf_rel, 3) +
                      (dd.feasible ? "" : "*"),
                  util::Table::num(fd.perf_rel, 3) +
                      (fd.feasible ? "" : "*"),
                  util::Table::num(
                      100.0 * (dd.perf_rel / fd.perf_rel - 1.0), 0) +
                      "%"});
    }
    t.print(std::cout);
    std::printf("  fetch toggling only cuts the activity factor; DVS "
                "cuts V^2 f and the TDDB voltage\n  term with it, so "
                "DVS dominates as both a thermal and a reliability "
                "response\n  (Section 7.2's conclusion, extended to "
                "the classic DTM mechanism).\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ramp;
    bench::Suite suite(bench::Options::parse(argc, argv));
    ablationLeakageFeedback(suite);
    ablationSofr(suite);
    ablationVfSlope(suite);
    ablationGranularity(suite);
    ablationLifetimeDistribution(suite);
    ablationSensors(suite);
    ablationFetchThrottle(suite);
    return 0;
}
