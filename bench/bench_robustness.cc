/**
 * @file
 * Robustness campaign: fault injection against the closed-loop
 * DRM/DTM control path and the oracle exploration path.
 *
 * Sweeps fault kind x rate (plus an everything-at-once plan) and
 * asserts the graceful-degradation safety invariants:
 *
 *  - no campaign aborts (the process reaching its summary is itself
 *    part of the check);
 *  - DTM: the TRUE hottest-block temperature stays within
 *    T_design + guard on every interval, whatever the sensor claims;
 *  - DRM: the final lifetime-average FIT lands within 5% of target;
 *  - every injected fault is accounted for by the fault.* telemetry
 *    counters (no silent injection, no silent drop);
 *  - corrupted eval-cache records are quarantined, never trusted:
 *    a corrupted cache changes re-simulation cost, not results;
 *  - forced thermal non-convergence never steers the DRM selection.
 *
 * With --fault-plan the sweep is replaced by a single campaign under
 * the given plan. Exit status is nonzero on any violation (printed as
 * DEVIATION in the table).
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hh"
#include "drm/transient.hh"
#include "fault/fault.hh"
#include "util/table.hh"

namespace {

using namespace ramp;

/** Snake-case counter name ("fault.sensor_noise") for a kind. */
std::string
faultCounterName(fault::FaultKind kind)
{
    std::string name = fault::faultKindName(kind);
    for (char &c : name)
        if (c == '-')
            c = '_';
    return "fault." + name;
}

/** Sum of all fault.* injection counters right now. */
double
injectedCounterTotal()
{
    const auto snap = telemetry::Registry::instance().snapshot();
    double total = 0.0;
    for (std::size_t k = 0; k < fault::num_fault_kinds; ++k)
        total += snap.counter(
            faultCounterName(static_cast<fault::FaultKind>(k)));
    return total;
}

core::Qualification
makeQual(double t_qual_k)
{
    core::QualificationSpec s;
    s.t_qual_k = t_qual_k;
    s.alpha_qual.fill(0.5);
    return core::Qualification(s);
}

/** Shared controls for every transient campaign: short enough to
 *  sweep, long enough for both controllers to settle. */
drm::TransientParams
campaignParams()
{
    drm::TransientParams p;
    p.interval_uops = 20'000;
    p.warmup_uops = 60'000;
    p.num_intervals = 100;
    p.represented_time_s = 0.5;
    // Above gzip's base-level temperature: DTM regulates from below
    // (climbing the ladder into the band), so the cold start never
    // violates the limit and the every-interval invariant is
    // meaningful for the whole run. gzip is the steadiest hot-ish
    // app (its per-interval phase swings stay under ~3 K; reactive
    // control cannot bound an app that jumps 30 K between samples).
    p.dtm.t_design_k = 356.0;
    // One DVS step moves gzip's hottest block by ~3-4 K, so the
    // guard band must cover a whole rung: a reactive controller on a
    // discrete ladder cannot regulate tighter than its step size.
    p.dtm.guard_k = 4.0;
    return p;
}

struct CampaignRow
{
    std::string name;
    const char *policy = "";
    drm::TransientResult::Degradation deg;
    double counter_delta = 0.0;
    double worst_metric = 0.0; ///< Temp excess (K) or FIT error (%).
    bool ok = true;
};

/** Run one faulted transient campaign under the installed plan. */
CampaignRow
runTransient(const std::string &name, drm::Policy policy)
{
    const drm::TransientParams params = campaignParams();
    const drm::TransientRunner runner(params);

    CampaignRow row;
    row.name = name;
    row.policy = policy == drm::Policy::Dtm ? "DTM" : "DRM";

    const double before = injectedCounterTotal();
    drm::TransientResult res;
    if (policy == drm::Policy::Dtm) {
        res = runner.run(workload::findApp("gzip"), makeQual(380.0),
                         policy);
        // Safety invariant on the TRUE temperature, every interval.
        const double limit =
            params.dtm.t_design_k + params.dtm.guard_k;
        for (const auto &s : res.trace)
            row.worst_metric =
                std::max(row.worst_metric, s.max_temp_k - limit);
        row.ok = row.worst_metric <= 0.0;
    } else {
        // Qualified below the app's natural point: DRM must actively
        // steer the lifetime average onto the target.
        res = runner.run(workload::findApp("MP3dec"), makeQual(355.0),
                         policy);
        // Signed error; overspending the wear budget is the unsafe
        // direction and gets the tight bound. Undershoot is merely
        // conservative and is bounded by the controller's own
        // hysteresis dead band: it only steps up below
        // up_margin x target, so any average in [0.90, 1.02] x
        // target is a legitimate steady state even with perfect
        // sensors, and faults may settle it anywhere in that band.
        row.worst_metric = 100.0 *
                           (res.final_avg_fit -
                            params.drm.target_fit) /
                           params.drm.target_fit;
        row.ok = row.worst_metric <= 5.0 &&
                 row.worst_metric >=
                     -100.0 * params.drm.up_margin;
    }
    row.deg = res.degradation;
    row.counter_delta = injectedCounterTotal() - before;
    // Accounting invariant: the run's own tally of injected faults
    // matches the process-wide telemetry counters exactly.
    row.ok = row.ok &&
             row.counter_delta ==
                 static_cast<double>(row.deg.injected_faults);
    return row;
}

/** One fault kind armed at one rate. */
fault::FaultPlan
singleKindPlan(fault::FaultKind kind, double rate, std::uint64_t seed)
{
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.spec(kind).rate = rate;
    return plan;
}

/**
 * Corrupted-cache campaign: explore the Arch space (18 distinct
 * timing keys; the DVS ladder shares one) cold while cache
 * writes are being garbled, then reload (quarantining bad lines) and
 * re-explore clean. The final selection must be identical to a
 * never-faulted exploration: corruption costs re-simulation, never
 * correctness.
 */
bool
cacheCorruptionCampaign(const bench::Options &opts,
                        const fault::FaultPlan &plan)
{
    const std::string path = "ramp_robustness_cache.txt";
    const auto &app = workload::findApp("gzip");
    const auto qual = makeQual(370.0);
    const auto wipe = [&] {
        std::remove(path.c_str());
        std::remove((path + ".lock").c_str());
        std::remove((path + ".quarantine").c_str());
    };

    wipe();
    fault::clearFaultPlan();
    drm::Selection clean_sel;
    {
        drm::EvaluationCache cache(path);
        drm::OracleExplorer ex(bench::benchEvalParams(opts), &cache);
        clean_sel = drm::selectDrm(ex.explore(
                                       app, drm::AdaptationSpace::Arch),
                                   qual);
    }

    wipe();
    fault::installFaultPlan(plan);
    const double before = injectedCounterTotal();
    {
        drm::EvaluationCache cache(path);
        drm::OracleExplorer ex(bench::benchEvalParams(opts), &cache);
        ex.explore(app, drm::AdaptationSpace::Arch);
    }
    const double corrupted = injectedCounterTotal() - before;
    fault::clearFaultPlan();

    std::size_t quarantined = 0;
    drm::Selection sel;
    {
        drm::EvaluationCache cache(path);
        quarantined = cache.stats().quarantined;
        drm::OracleExplorer ex(bench::benchEvalParams(opts), &cache);
        sel = drm::selectDrm(ex.explore(app,
                                        drm::AdaptationSpace::Arch),
                             qual);
    }
    wipe();

    const bool identical =
        sel.index == clean_sel.index && sel.fit == clean_sel.fit &&
        sel.config.frequency_ghz == clean_sel.config.frequency_ghz;
    const bool ok = corrupted > 0.0 && quarantined > 0 && identical;
    std::printf("  cache-corrupt: %.0f records garbled, %zu lines "
                "quarantined on reload, selection %s -> %s\n",
                corrupted, quarantined,
                identical ? "identical" : "DIVERGED",
                ok ? "ok" : "DEVIATION");
    return ok;
}

/**
 * Forced-non-convergence campaign: explore with the thermal fixed
 * point randomly reported as unconverged. DRM must exclude every such
 * point from its selection; the counter must account for each one.
 */
bool
nonConvergenceCampaign(const bench::Options &opts,
                       const fault::FaultPlan &plan)
{
    const auto &app = workload::findApp("gzip");
    const auto qual = makeQual(370.0);

    fault::installFaultPlan(plan);
    const double before = injectedCounterTotal();
    drm::OracleExplorer ex(bench::benchEvalParams(opts));
    const auto explored = ex.explore(app, drm::AdaptationSpace::Arch);
    const double forced = injectedCounterTotal() - before;
    fault::clearFaultPlan();

    std::size_t unconverged = 0;
    for (const auto &pt : explored.points)
        unconverged += pt.valid && !pt.op.converged;
    const std::size_t base_unconverged = !explored.base.converged;

    const auto sel = drm::selectDrm(explored, qual);
    const bool winner_converged = sel.table[sel.index].converged;
    const bool accounted =
        forced ==
        static_cast<double>(unconverged + base_unconverged);
    const bool ok = unconverged > 0 && winner_converged && accounted;
    std::printf("  non-convergence: %zu/%zu points forced "
                "unconverged (%.0f counted), DRM winner converged: "
                "%s -> %s\n",
                unconverged, explored.points.size(), forced,
                winner_converged ? "yes" : "NO",
                ok ? "ok" : "DEVIATION");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ramp;
    const auto opts = bench::Options::parse(argc, argv);

    std::vector<CampaignRow> rows;

    // Single-campaign mode under a --fault-plan (already installed by
    // Options::parse); otherwise the built-in kind x rate sweep.
    const bool cli_mode = fault::activeFaultPlan() != nullptr;
    const fault::FaultPlan cli_plan =
        cli_mode ? *fault::activeFaultPlan() : fault::FaultPlan{};

    if (cli_mode) {
        rows.push_back(runTransient("cli-plan", drm::Policy::Dtm));
        rows.push_back(runTransient("cli-plan", drm::Policy::Drm));
    } else {
        // Clean reference rows: zero injections, invariants hold.
        fault::clearFaultPlan();
        rows.push_back(runTransient("clean", drm::Policy::Dtm));
        rows.push_back(runTransient("clean", drm::Policy::Drm));

        const fault::FaultKind sensor_kinds[] = {
            fault::FaultKind::SensorNoise,
            fault::FaultKind::SensorQuantize,
            fault::FaultKind::SensorStuck,
            fault::FaultKind::SensorDropout,
            fault::FaultKind::SensorDelay,
            fault::FaultKind::PowerNan,
        };
        const double rates[] = {0.02, 0.05, 0.10};
        for (const auto kind : sensor_kinds) {
            for (const double rate : rates) {
                fault::installFaultPlan(
                    singleKindPlan(kind, rate, opts.seed));
                const std::string name = util::cat(
                    fault::faultKindName(kind), " @",
                    util::Table::num(rate, 2));
                rows.push_back(runTransient(name, drm::Policy::Dtm));
                rows.push_back(runTransient(name, drm::Policy::Drm));
            }
        }

        // Everything at once, each sensor kind at 10%.
        fault::FaultPlan storm;
        storm.seed = opts.seed;
        for (const auto kind : sensor_kinds)
            storm.spec(kind).rate = 0.10;
        fault::installFaultPlan(storm);
        rows.push_back(runTransient("all-sensor @0.10",
                                    drm::Policy::Dtm));
        rows.push_back(runTransient("all-sensor @0.10",
                                    drm::Policy::Drm));
        fault::clearFaultPlan();
    }

    util::Table t({"campaign", "policy", "injected", "invalid",
                   "fallback", "despiked", "failsafe", "pwr-hold",
                   "worst", "verdict"});
    t.setTitle("Robustness: safety invariants under fault injection");
    bool all_ok = true;
    for (const auto &r : rows) {
        all_ok &= r.ok;
        t.addRow({r.name, r.policy,
                  std::to_string(r.deg.injected_faults),
                  std::to_string(r.deg.invalid_readings),
                  std::to_string(r.deg.fallbacks),
                  std::to_string(r.deg.despiked),
                  std::to_string(r.deg.failsafe_intervals),
                  std::to_string(r.deg.power_holds),
                  util::Table::num(r.worst_metric, 2),
                  r.ok ? "ok" : "DEVIATION"});
    }
    t.print(std::cout);
    std::printf("  (worst: DTM = true-temp excess over "
                "T_design + guard in K, DRM = signed final avg FIT "
                "error vs target in %%,\n   bounded +5%% on "
                "overspend and by the controller's hysteresis band "
                "on undershoot)\n\n");

    bool oracle_ok = true;
    if (!cli_mode || cli_plan.enabled(fault::FaultKind::CacheCorrupt))
        oracle_ok &= cacheCorruptionCampaign(
            opts, cli_mode ? cli_plan
                           : singleKindPlan(
                                 fault::FaultKind::CacheCorrupt, 0.25,
                                 opts.seed));
    if (!cli_mode ||
        cli_plan.enabled(fault::FaultKind::NonConvergence))
        oracle_ok &= nonConvergenceCampaign(
            opts, cli_mode ? cli_plan
                           : singleKindPlan(
                                 fault::FaultKind::NonConvergence,
                                 0.3, opts.seed));

    all_ok &= oracle_ok;
    std::printf("\nRobustness invariants: %s\n",
                all_ok ? "hold" : "DEVIATION");
    return all_ok ? 0 : 1;
}
