/**
 * @file
 * Block-level RC thermal model (the HotSpot stand-in).
 *
 * Nodes: one silicon node per floorplan block, a heat-spreader node,
 * and a heat-sink node; the ambient is a fixed-temperature boundary.
 * Each block conducts vertically (die + TIM) into the spreader and
 * laterally into adjacent blocks; the spreader conducts into the
 * sink, and the sink convects to ambient. Capacitances give the
 * blocks millisecond time constants and the sink a time constant of
 * minutes -- which is why, exactly as the paper describes in Section
 * 6.3, transient simulations must be initialised with a steady-state
 * heat-sink temperature obtained from a first averaging pass.
 */

#pragma once

#include <vector>

#include "sim/structures.hh"
#include "thermal/floorplan.hh"
#include "util/linalg.hh"

namespace ramp {
namespace thermal {

/** Physical constants of the package model. */
struct ThermalParams
{
    /** Ambient (chassis) temperature, K. */
    double ambient_k = 300.0;

    /** Vertical (die + TIM) specific resistance, K*mm^2/W. */
    double r_vertical_mm2 = 21.0;

    /** Spreader -> sink conduction resistance, K/W. */
    double r_spreader = 0.12;

    /** Sink -> ambient convection resistance, K/W. */
    double r_convection = 0.90;

    /** Silicon thermal conductivity, W/(mm*K). */
    double k_silicon = 0.15;

    /** Die thickness, mm (drives lateral conduction and block C). */
    double die_thickness = 0.5;

    /** Silicon volumetric heat capacity, J/(mm^3*K). */
    double c_silicon = 1.63e-3;

    /** Spreader lumped capacitance, J/K. */
    double c_spreader = 3.0;

    /** Sink lumped capacitance, J/K (sets the minutes-scale RC). */
    double c_sink = 180.0;

    /** Die area multiplier relative to the 65 nm reference floorplan
     *  (technology-scaling studies shrink or grow the same layout;
     *  1.0 = the paper's 20.25 mm^2 die). Linear dimensions scale by
     *  its square root; lateral conductances are scale-invariant. */
    double area_scale = 1.0;
};

/** Result of a steady-state solve. */
struct SteadyTemps
{
    sim::PerStructure<double> block_k{};
    double spreader_k = 0.0;
    double sink_k = 0.0;

    /** Hottest block temperature. */
    double maxBlock() const;

    /** Area-weighted average block temperature. */
    double avgBlock() const;
};

/** The RC network with steady-state and transient solvers. */
class ThermalModel
{
  public:
    explicit ThermalModel(ThermalParams params = {});

    /**
     * Steady-state temperatures for a fixed per-block power map (W).
     * Does not modify transient state. Negative or non-finite block
     * power is an InvalidInput error (a corrupted power sample must
     * not crash the control loop); a singular conductance system is
     * propagated as SingularSystem.
     */
    [[nodiscard]] util::Result<SteadyTemps>
    trySteadyState(const sim::PerStructure<double> &power_w) const;

    /**
     * trySteadyState that treats any failure as unrecoverable (calls
     * fatal). For callers whose power map comes from validated model
     * output rather than a fault-prone measurement path.
     */
    SteadyTemps steadyState(const sim::PerStructure<double> &power_w) const;

    /**
     * Initialise the transient state to the steady state of the given
     * power map (the paper's two-pass heat-sink initialisation).
     */
    void initialiseSteady(const sim::PerStructure<double> &power_w);

    /** Set every node (including spreader and sink) to a temperature. */
    void initialiseFlat(double temp_k);

    /**
     * Advance the transient state by dt seconds with constant power.
     * Internally sub-steps for stability.
     */
    void step(const sim::PerStructure<double> &power_w, double dt_s);

    /** Current transient block temperatures. */
    sim::PerStructure<double> blockTemps() const;

    /** Current transient sink temperature. */
    double sinkTemp() const { return state_[sink_]; }

    /** Current transient spreader temperature. */
    double spreaderTemp() const { return state_[spreader_]; }

    const ThermalParams &params() const { return params_; }
    const Floorplan &floorplan() const { return floorplan_; }

  private:
    std::size_t nodes() const { return sim::num_structures + 2; }
    void buildNetwork();
    std::vector<double> derivative(const std::vector<double> &temps,
                                   const sim::PerStructure<double> &p)
        const;

    ThermalParams params_;
    Floorplan floorplan_;

    std::size_t spreader_;  ///< Node index of the spreader.
    std::size_t sink_;      ///< Node index of the sink.

    /** Conductance matrix G (W/K), nodes x nodes, ambient folded into
     *  g_amb_. G is symmetric with zero diagonal (link conductances). */
    util::Matrix g_;
    std::vector<double> g_amb_;  ///< Node -> ambient conductance.
    std::vector<double> cap_;    ///< Node capacitance, J/K.
    std::vector<double> state_;  ///< Transient node temperatures, K.
    double max_stable_dt_;       ///< Explicit-Euler stability bound.
};

} // namespace thermal
} // namespace ramp

