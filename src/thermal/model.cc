#include "thermal/model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace thermal {

using sim::allStructures;
using sim::num_structures;
using sim::PerStructure;
using sim::structureIndex;

double
SteadyTemps::maxBlock() const
{
    double m = block_k[0];
    for (double t : block_k)
        m = std::max(m, t);
    return m;
}

double
SteadyTemps::avgBlock() const
{
    double sum = 0.0;
    double area = 0.0;
    for (auto id : allStructures()) {
        const double a = sim::structureArea(id);
        sum += block_k[structureIndex(id)] * a;
        area += a;
    }
    return sum / area;
}

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), spreader_(num_structures),
      sink_(num_structures + 1), g_(nodes(), nodes()),
      g_amb_(nodes(), 0.0), cap_(nodes(), 0.0),
      state_(nodes(), params.ambient_k)
{
    if (params_.ambient_k <= 0.0)
        util::fatal("ambient temperature must be positive kelvin");
    if (params_.r_vertical_mm2 <= 0.0 || params_.r_spreader <= 0.0 ||
        params_.r_convection <= 0.0)
        util::fatal("thermal resistances must be positive");
    if (params_.c_sink <= 0.0 || params_.c_spreader <= 0.0 ||
        params_.c_silicon <= 0.0)
        util::fatal("thermal capacitances must be positive");
    if (params_.area_scale <= 0.0)
        util::fatal("thermal area scale must be positive");
    buildNetwork();
}

void
ThermalModel::buildNetwork()
{
    // Vertical block -> spreader conduction. Block areas carry the
    // technology area scale; lateral conductances do not (border and
    // distance shrink together).
    for (auto id : allStructures()) {
        const std::size_t i = structureIndex(id);
        const double area =
            floorplan_.block(id).area() * params_.area_scale;
        const double g = area / params_.r_vertical_mm2;
        g_.at(i, spreader_) += g;
        g_.at(spreader_, i) += g;
    }

    // Lateral block <-> block conduction through the die.
    const double kt = params_.k_silicon * params_.die_thickness;
    for (auto a : allStructures()) {
        for (auto b : allStructures()) {
            if (structureIndex(b) <= structureIndex(a))
                continue;
            const double border = floorplan_.sharedBorder(a, b);
            if (border <= 0.0)
                continue;
            const double dist = floorplan_.centerDistance(a, b);
            const double g = kt * border / dist;
            const std::size_t i = structureIndex(a);
            const std::size_t j = structureIndex(b);
            g_.at(i, j) += g;
            g_.at(j, i) += g;
        }
    }

    // Spreader -> sink, sink -> ambient.
    g_.at(spreader_, sink_) += 1.0 / params_.r_spreader;
    g_.at(sink_, spreader_) += 1.0 / params_.r_spreader;
    g_amb_[sink_] = 1.0 / params_.r_convection;

    // Capacitances.
    for (auto id : allStructures()) {
        const double vol = floorplan_.block(id).area() *
                           params_.area_scale *
                           params_.die_thickness;
        cap_[structureIndex(id)] = params_.c_silicon * vol;
    }
    cap_[spreader_] = params_.c_spreader;
    cap_[sink_] = params_.c_sink;

    // Explicit-Euler stability: dt < min_i C_i / (sum_j g_ij + g_amb).
    max_stable_dt_ = 1e30;
    for (std::size_t i = 0; i < nodes(); ++i) {
        double gsum = g_amb_[i];
        for (std::size_t j = 0; j < nodes(); ++j)
            gsum += g_.at(i, j);
        if (gsum > 0.0)
            max_stable_dt_ =
                std::min(max_stable_dt_, cap_[i] / gsum);
    }
    max_stable_dt_ *= 0.5; // safety margin
}

util::Result<SteadyTemps>
ThermalModel::trySteadyState(const PerStructure<double> &power_w) const
{
    static const telemetry::Counter solves =
        telemetry::counter("thermal.steady_solves");
    solves.add();

    // Solve A*T = b with A_ii = sum_j g_ij + g_amb_i, A_ij = -g_ij,
    // b_i = P_i + g_amb_i * T_amb.
    const std::size_t n = nodes();
    util::Matrix a(n, n);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double diag = g_amb_[i];
        for (std::size_t j = 0; j < n; ++j) {
            diag += g_.at(i, j);
            if (i != j && g_.at(i, j) > 0.0)
                a.at(i, j) = -g_.at(i, j);
        }
        a.at(i, i) = diag;
        b[i] = g_amb_[i] * params_.ambient_k;
        if (i < num_structures) {
            if (!std::isfinite(power_w[i]))
                return util::RampError{
                    util::ErrorCode::NonFiniteValue,
                    util::cat("non-finite block power ", power_w[i],
                              " at structure ", i,
                              " in thermal solve")};
            if (power_w[i] < 0.0)
                return util::RampError{
                    util::ErrorCode::InvalidInput,
                    util::cat("negative block power ", power_w[i],
                              " at structure ", i,
                              " in thermal solve")};
            b[i] += power_w[i];
        }
    }
    auto t = util::trySolveLinear(std::move(a), std::move(b));
    if (!t)
        return t.error();

    SteadyTemps out;
    for (std::size_t i = 0; i < num_structures; ++i)
        out.block_k[i] = t.value()[i];
    out.spreader_k = t.value()[spreader_];
    out.sink_k = t.value()[sink_];
    return out;
}

SteadyTemps
ThermalModel::steadyState(const PerStructure<double> &power_w) const
{
    auto result = trySteadyState(power_w);
    if (!result)
        util::fatal(util::cat("thermal steady state: ",
                              result.error().str()));
    return std::move(result.value());
}

void
ThermalModel::initialiseSteady(const PerStructure<double> &power_w)
{
    const SteadyTemps s = steadyState(power_w);
    for (std::size_t i = 0; i < num_structures; ++i)
        state_[i] = s.block_k[i];
    state_[spreader_] = s.spreader_k;
    state_[sink_] = s.sink_k;
}

void
ThermalModel::initialiseFlat(double temp_k)
{
    std::fill(state_.begin(), state_.end(), temp_k);
}

std::vector<double>
ThermalModel::derivative(const std::vector<double> &temps,
                         const PerStructure<double> &p) const
{
    std::vector<double> d(nodes(), 0.0);
    for (std::size_t i = 0; i < nodes(); ++i) {
        double q = 0.0;
        if (i < num_structures)
            q += p[i];
        for (std::size_t j = 0; j < nodes(); ++j) {
            const double g = g_.at(i, j);
            if (g > 0.0)
                q += g * (temps[j] - temps[i]);
        }
        q += g_amb_[i] * (params_.ambient_k - temps[i]);
        d[i] = q / cap_[i];
    }
    return d;
}

void
ThermalModel::step(const PerStructure<double> &power_w, double dt_s)
{
    if (dt_s <= 0.0)
        util::fatal("thermal step needs dt > 0");
    static const telemetry::Counter steps =
        telemetry::counter("thermal.transient_steps");
    static const telemetry::Counter substeps =
        telemetry::counter("thermal.transient_substeps");
    steps.add();
    std::uint64_t subs = 0;
    double remaining = dt_s;
    while (remaining > 0.0) {
        const double h = std::min(remaining, max_stable_dt_);
        const auto d = derivative(state_, power_w);
        for (std::size_t i = 0; i < nodes(); ++i)
            state_[i] += h * d[i];
        remaining -= h;
        ++subs;
    }
    substeps.add(subs);
}

PerStructure<double>
ThermalModel::blockTemps() const
{
    PerStructure<double> t{};
    for (std::size_t i = 0; i < num_structures; ++i)
        t[i] = state_[i];
    return t;
}

} // namespace thermal
} // namespace ramp
