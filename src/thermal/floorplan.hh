/**
 * @file
 * Chip floorplan for the thermal model.
 *
 * The paper feeds HotSpot a MIPS R10000-like floorplan (without L2)
 * scaled to 4.5 mm x 4.5 mm; we reproduce that: each reliability
 * structure is a rectangle, the rectangles tile the die exactly, and
 * block adjacency (shared border length) drives lateral thermal
 * coupling.
 */

#pragma once

#include <array>
#include <cstddef>

#include "sim/structures.hh"

namespace ramp {
namespace thermal {

/** Axis-aligned placement of one structure on the die (mm). */
struct Block
{
    sim::StructureId id;
    double x = 0.0;  ///< Left edge.
    double y = 0.0;  ///< Bottom edge.
    double w = 0.0;  ///< Width.
    double h = 0.0;  ///< Height.

    double area() const { return w * h; }
    double cx() const { return x + w / 2.0; }
    double cy() const { return y + h / 2.0; }
};

/** The fixed R10000-like core floorplan. */
class Floorplan
{
  public:
    /** Build the default 4.5 mm x 4.5 mm layout. */
    Floorplan();

    /** Block placement for a structure. */
    const Block &block(sim::StructureId id) const;

    /** All blocks, indexed by structureIndex. */
    const std::array<Block, sim::num_structures> &blocks() const
    {
        return blocks_;
    }

    /** Die edge length (mm); the die is square. */
    double dieSize() const { return die_mm_; }

    /**
     * Length (mm) of the border shared by two blocks; 0 when they are
     * not adjacent. Symmetric.
     */
    double sharedBorder(sim::StructureId a, sim::StructureId b) const;

    /** Distance between block centers (mm). */
    double centerDistance(sim::StructureId a, sim::StructureId b) const;

  private:
    double die_mm_ = 4.5;
    std::array<Block, sim::num_structures> blocks_;
};

} // namespace thermal
} // namespace ramp

