#include "thermal/floorplan.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace thermal {

using sim::StructureId;
using sim::structureIndex;

Floorplan::Floorplan()
{
    // Four-row tiling of the 4.5 mm square die; widths chosen so each
    // block's area matches sim::structureArea exactly.
    auto put = [&](StructureId id, double x, double y, double w,
                   double h) {
        blocks_[structureIndex(id)] = Block{id, x, y, w, h};
    };

    // Row 0 (front end + predictor + I-cache), height 1.0.
    put(StructureId::L1I, 0.0, 0.0, 1.8, 1.0);
    put(StructureId::Bpred, 1.8, 0.0, 1.4, 1.0);
    put(StructureId::FrontEnd, 3.2, 0.0, 1.3, 1.0);

    // Row 1 (integer cluster), height 1.3.
    put(StructureId::IntReg, 0.0, 1.0, 1.2 / 1.3, 1.3);
    put(StructureId::IntAlu, 1.2 / 1.3, 1.0, 2.4 / 1.3, 1.3);
    put(StructureId::IWin, (1.2 + 2.4) / 1.3, 1.0, 2.25 / 1.3, 1.3);

    // Row 2 (FP cluster + LSQ), height 1.3.
    put(StructureId::FpReg, 0.0, 2.3, 1.2 / 1.3, 1.3);
    put(StructureId::Fpu, 1.2 / 1.3, 2.3, 3.6 / 1.3, 1.3);
    put(StructureId::Lsq, (1.2 + 3.6) / 1.3, 2.3, 1.05 / 1.3, 1.3);

    // Row 3 (data cache spans the die), height 0.9.
    put(StructureId::L1D, 0.0, 3.6, 4.5, 0.9);

    // Consistency: placement areas must match the canonical areas.
    for (const auto &b : blocks_) {
        const double want = sim::structureArea(b.id);
        if (std::fabs(b.area() - want) > 1e-9)
            util::panic(util::cat("floorplan area mismatch for ",
                                  sim::structureName(b.id), ": ",
                                  b.area(), " vs ", want));
    }
}

const Block &
Floorplan::block(StructureId id) const
{
    return blocks_[structureIndex(id)];
}

namespace {

/** Overlap length of 1-D segments [a0,a1] and [b0,b1]. */
double
overlap(double a0, double a1, double b0, double b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

} // namespace

double
Floorplan::sharedBorder(StructureId a, StructureId b) const
{
    if (a == b)
        return 0.0;
    const Block &p = block(a);
    const Block &q = block(b);
    const double eps = 1e-9;

    // Vertical borders (p right edge on q left edge or vice versa).
    if (std::fabs((p.x + p.w) - q.x) < eps ||
        std::fabs((q.x + q.w) - p.x) < eps) {
        return overlap(p.y, p.y + p.h, q.y, q.y + q.h);
    }
    // Horizontal borders.
    if (std::fabs((p.y + p.h) - q.y) < eps ||
        std::fabs((q.y + q.h) - p.y) < eps) {
        return overlap(p.x, p.x + p.w, q.x, q.x + q.w);
    }
    return 0.0;
}

double
Floorplan::centerDistance(StructureId a, StructureId b) const
{
    const Block &p = block(a);
    const Block &q = block(b);
    const double dx = p.cx() - q.cx();
    const double dy = p.cy() - q.cy();
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace thermal
} // namespace ramp
