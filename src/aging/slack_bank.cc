#include "aging/slack_bank.hh"

#include <algorithm>
#include <limits>

#include "core/lifetime.hh"
#include "util/logging.hh"

namespace ramp {
namespace aging {

SlackBankPolicy::SlackBankPolicy(SlackBankParams params)
    : params_(params)
{
    if (params_.base_t_qual_k <= 0.0)
        util::fatal("slack bank base T_qual must be positive");
    if (params_.max_boost_k < 0.0 || params_.max_throttle_k < 0.0)
        util::fatal("slack bank boost/throttle bands must be "
                    "non-negative");
    if (params_.initial_slack_frac < 0.0 || params_.initial_slack_frac >= 1.0)
        util::fatal("slack bank initial slack must be in [0,1)");
    if (params_.service_life_years <= 0.0)
        util::fatal("slack bank service life must be positive");
}

double
SlackBankPolicy::budget(double age_hours) const
{
    const double life_fraction =
        age_hours /
        core::serviceLifeHours(params_.service_life_years);
    return std::min(1.0, params_.initial_slack_frac +
                             (1.0 - params_.initial_slack_frac) *
                                 life_fraction);
}

double
SlackBankPolicy::slackFrac(const AgingState &state) const
{
    return budget(state.age_hours) - state.totalDamage();
}

double
SlackBankPolicy::effectiveTQualK(const AgingState &state) const
{
    const double t_raw_k = params_.base_t_qual_k +
                           params_.gain_k_per_life * slackFrac(state);
    return std::clamp(t_raw_k,
                      params_.base_t_qual_k - params_.max_throttle_k,
                      params_.base_t_qual_k + params_.max_boost_k);
}

double
remainingHoursAtFit(const AgingState &state, double fit,
                    double target_fit, double service_life_years)
{
    const double left = 1.0 - state.totalDamage();
    if (left <= 0.0)
        return 0.0;
    if (fit <= 0.0)
        return std::numeric_limits<double>::infinity();
    // The chip burns budget at fit/target relative to the qualified
    // rate, which by itself would last one service life.
    return left * target_fit *
           core::serviceLifeHours(service_life_years) / fit;
}

} // namespace aging
} // namespace ramp
