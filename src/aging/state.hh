/**
 * @file
 * Canonical per-chip aging state: Miner's-rule consumed-lifetime
 * fractions per (structure, mechanism) pair plus the raw stress
 * history that produced them (EM current-density-time, TDDB
 * field-time, thermal-cycle counts).
 *
 * The on-disk format is versioned JSON written with util::writeJson,
 * so serialisation is canonical and round-trips bit-exactly. Loading
 * is strict: a malformed or truncated file is a CorruptRecord (the
 * recovery helper quarantines it to a `.quarantine` sidecar like the
 * evaluation cache), and a file written by a *newer* schema version
 * is refused with a structured InvalidInput error -- never
 * quarantined, never guessed at -- so downgraded tooling cannot
 * silently destroy state it does not understand.
 */

#pragma once

#include <array>
#include <string>

#include "core/mechanisms.hh"
#include "sim/structures.hh"
#include "util/error.hh"
#include "util/json.hh"

namespace ramp {
namespace aging {

/** Current AgingState schema version (the "v" field on disk). */
inline constexpr int aging_state_version = 1;

/**
 * Accumulated wear of one chip. Damage entries are fractions of each
 * (structure, mechanism) pair's qualified FIT budget consumed under
 * Miner's rule: 1.0 means the pair has spent the budget one service
 * life at its allocated FIT would have spent.
 */
struct AgingState
{
    /** Total integrated operating time, hours. */
    double age_hours = 0.0;

    /** Consumed-lifetime fraction per structure x mechanism. */
    sim::PerStructure<std::array<double, core::num_mechanisms>>
        damage{};

    /** EM stress history: integrated relative current density x
     *  time (activity x V x f relative to qualification, hours). */
    sim::PerStructure<double> em_jt_hours{};

    /** TDDB stress history: integrated oxide field proxy x time
     *  (volt-hours). */
    sim::PerStructure<double> tddb_vt_hours{};

    /** TC stress history: thermal excursions integrated (one cycle
     *  per recorded interval). */
    sim::PerStructure<double> tc_cycles{};

    /**
     * Chip-level consumed-lifetime fraction: the per-pair fractions
     * weighted by each pair's share of the FIT budget (even across
     * mechanisms, area-proportional across structures -- Section
     * 3.7), so a chip held at exactly the qualified rate for one
     * service life reads 1.0.
     */
    double totalDamage() const;

    /** One structure's consumed fraction (mean over mechanisms,
     *  which share its budget evenly). */
    double structureDamage(sim::StructureId s) const;

    /** The most-consumed (structure, mechanism) pair's fraction:
     *  the series-system weakest link. */
    double maxPairDamage() const;

    /** Accumulate another state (a usage delta) into this one. */
    void add(const AgingState &delta);
};

/** Serialise to the canonical versioned document. */
util::JsonValue toJson(const AgingState &state);

/**
 * Parse a state document. Strict: every structure and mechanism key
 * must be present, no foreign keys, all numbers finite and
 * non-negative. A document whose "v" exceeds aging_state_version is
 * InvalidInput ("newer than this build"); any other defect is
 * CorruptRecord.
 */
[[nodiscard]] util::Result<AgingState> agingStateFromJson(const util::JsonValue &doc);

/** Write the state to @p path (atomically: temp file + rename). */
[[nodiscard]] util::Result<void> saveAgingState(const std::string &path,
                                  const AgingState &state);

/**
 * Read and parse @p path. An unreadable file is IoFailure; parse
 * defects are reported as agingStateFromJson does.
 */
[[nodiscard]] util::Result<AgingState> loadAgingState(const std::string &path);

/**
 * Load-or-start-fresh for daemons and benches: a missing file is a
 * fresh state; a corrupt file is moved to `path + ".quarantine"`
 * (counted in aging.state_quarantined) and replaced by a fresh
 * state; a future-version file is a hard structured error, because
 * quarantining it would discard newer data.
 */
[[nodiscard]] util::Result<AgingState> recoverAgingState(const std::string &path);

} // namespace aging
} // namespace ramp
