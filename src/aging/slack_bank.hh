/**
 * @file
 * Slack-banking reliability management on top of the aging state.
 *
 * Qualification leaves every shipped part with banked reliability
 * slack: the FIT budget assumes worst-case conditions, so a real
 * workload under-spends it. The policy tracks the gap between the
 * consumed-lifetime budget a chip's age entitles it to and the
 * damage it has actually integrated, and converts that slack into
 * the one knob the Selection API already understands: the effective
 * qualification temperature. A young (or gently-used) chip selects
 * its operating point against a *hotter* T_qual -- exactly the
 * paper's Figure-2 trade -- and therefore runs above the
 * steady-state-safe point; as damage catches up with (or overtakes)
 * the budget, the effective T_qual falls below the base value and
 * the same selectDrm/selectDtm calls throttle it. Oracle and
 * surrogate selection paths both work unchanged, since each already
 * accepts an arbitrary Qualification.
 */

#pragma once

#include "aging/state.hh"

namespace ramp {
namespace aging {

/** Slack-banking policy knobs. */
struct SlackBankParams
{
    /** Qualification temperature of the steady-state policy, K. */
    double base_t_qual_k = 345.0;

    /** Ceiling on the boost above base, K. */
    double max_boost_k = 25.0;

    /** Floor on the throttle below base, K. */
    double max_throttle_k = 25.0;

    /** Kelvin of effective-T_qual swing per unit of banked slack
     *  (slack is a fraction of one whole service life). */
    double gain_k_per_life = 400.0;

    /** Reliability slack banked at time zero by qualification
     *  margin, as a fraction of the service life. The budget
     *  schedule spends it linearly so the whole-life budget still
     *  ends at exactly 1.0. */
    double initial_slack_frac = 0.05;

    /** Qualified service life, years. */
    double service_life_years = 30.0;
};

/** Maps an AgingState to the operating point it can afford. */
class SlackBankPolicy
{
  public:
    explicit SlackBankPolicy(SlackBankParams params = {});

    /** Consumed-lifetime budget a chip of this age is entitled to:
     *  initial_slack_frac + (1 - initial_slack_frac) * age / service life,
     *  saturating at 1.0. */
    double budget(double age_hours) const;

    /** Banked slack: budget(age) minus integrated damage. Negative
     *  when the chip has outspent its schedule. */
    double slackFrac(const AgingState &state) const;

    /** The qualification temperature selection should use now:
     *  base + gain * slack, clamped to the boost/throttle band. */
    double effectiveTQualK(const AgingState &state) const;

    const SlackBankParams &params() const { return params_; }

  private:
    SlackBankParams params_;
};

/**
 * Hours of service left before the consumed fraction reaches 1.0 if
 * the chip holds a steady @p fit from now on (the ETA the serve
 * layer's remaining_lifetime answers). Infinity when fit <= 0.
 */
double remainingHoursAtFit(const AgingState &state, double fit,
                           double target_fit,
                           double service_life_years);

} // namespace aging
} // namespace ramp
