/**
 * @file
 * Damage-accumulation integrator: turns an operating history into an
 * AgingState by integrating each (structure, mechanism) pair's FIT
 * over time under Miner's rule (core::damageRatePerHour), mirroring
 * core::RampEngine's interval interface.
 *
 * Unlike the engine -- which time-averages rates to report a steady
 * FIT -- the integrator is cumulative and monotone: every interval
 * can only add damage, never remove it. Thermal cycling is charged
 * incrementally (each recorded interval is one excursion from
 * ambient to the interval's temperature) rather than once from the
 * run-average temperature, so partial histories are meaningful.
 *
 * Batch integration fans the independent (structure, mechanism)
 * pairs across a ThreadPool with results landing by pair index, so
 * the integrated damage is bit-identical at every thread count.
 */

#pragma once

#include <vector>

#include "aging/state.hh"
#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "util/thread_pool.hh"

namespace ramp {
namespace aging {

/** Damage-model knobs. */
struct DamageParams
{
    /** Qualified service life the FIT budget is spread over (the
     *  paper's ~30-year MTTF target). */
    double service_life_years = 30.0;
};

/** One integrable slice of operating history. */
struct StressEpoch
{
    sim::PerStructure<double> temps_k{};
    sim::PerStructure<double> activity{};
    double voltage_v = 1.0;
    double frequency_ghz = 4.0;
    double duration_s = 0.0;
};

/** Accumulates consumed lifetime from an operating history. */
class DamageIntegrator
{
  public:
    /**
     * @param qual Solved qualification (copied); its allocations
     *        define what "fraction consumed" means.
     * @param on_fractions Powered-on fraction per structure.
     * @param params Damage-model knobs.
     */
    DamageIntegrator(core::Qualification qual,
                     sim::PerStructure<double> on_fractions,
                     DamageParams params = {});

    /** Integrate one interval (same shape as RampEngine). */
    void addInterval(const sim::PerStructure<double> &temps_k,
                     const sim::PerStructure<double> &activity,
                     double voltage_v, double frequency_ghz,
                     double duration_s);

    /** Integrate an evaluated operating point held for
     *  @p duration_s. */
    void addOperatingPoint(const core::OperatingPoint &op,
                           double duration_s);

    /**
     * Integrate a batch of epochs, fanning (structure, mechanism)
     * pairs across @p pool (nullptr = serial). Per-pair accumulation
     * runs the epochs in order in both modes and results land by
     * pair index, so the resulting state is bit-identical at every
     * thread count.
     */
    void integrate(const std::vector<StressEpoch> &epochs,
                   util::ThreadPool *pool = nullptr);

    /** Resume from a persisted state. */
    void setState(AgingState state);

    const AgingState &state() const { return state_; }

    const sim::PerStructure<double> &onFractions() const
    {
        return on_frac_;
    }

    const core::Qualification &qualification() const
    {
        return qual_;
    }

    const DamageParams &params() const { return params_; }

  private:
    core::Qualification qual_;
    sim::PerStructure<double> on_frac_;
    DamageParams params_;
    AgingState state_;
};

/** Free-function spelling of DamageIntegrator::integrate(). */
void integrateEpochs(DamageIntegrator &integrator,
                     const std::vector<StressEpoch> &epochs,
                     util::ThreadPool *pool);

} // namespace aging
} // namespace ramp
