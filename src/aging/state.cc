#include "aging/state.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace aging {

using core::allMechanisms;
using core::Mechanism;
using core::mechanismIndex;
using core::mechanismName;
using core::num_mechanisms;
using sim::allStructures;
using sim::structureIndex;
using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

namespace {

const telemetry::Counter &
quarantinedCounter()
{
    static const telemetry::Counter c =
        telemetry::counter("aging.state_quarantined");
    return c;
}

/** A pair's share of the chip FIT budget: even across mechanisms,
 *  area-proportional across structures (Section 3.7). */
double
budgetShare(sim::StructureId s)
{
    return sim::structureArea(s) /
           (sim::totalCoreArea() *
            static_cast<double>(num_mechanisms));
}

/** Strict finite, non-negative number member. */
Result<double>
damageNumber(const JsonValue &obj, std::string_view key)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber() || !std::isfinite(v->number) ||
        v->number < 0.0)
        return RampError{
            ErrorCode::CorruptRecord,
            util::cat("aging state field '", std::string(key),
                      "' must be a finite non-negative number")};
    return v->number;
}

} // namespace

double
AgingState::totalDamage() const
{
    double total = 0.0;
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        const double share = budgetShare(s);
        for (std::size_t mi = 0; mi < num_mechanisms; ++mi)
            total += share * damage[si][mi];
    }
    return total;
}

double
AgingState::structureDamage(sim::StructureId s) const
{
    const std::size_t si = structureIndex(s);
    double sum = 0.0;
    for (std::size_t mi = 0; mi < num_mechanisms; ++mi)
        sum += damage[si][mi];
    return sum / static_cast<double>(num_mechanisms);
}

double
AgingState::maxPairDamage() const
{
    double worst = 0.0;
    for (const auto &row : damage)
        for (double d : row)
            worst = std::max(worst, d);
    return worst;
}

void
AgingState::add(const AgingState &delta)
{
    age_hours += delta.age_hours;
    for (std::size_t si = 0; si < sim::num_structures; ++si) {
        for (std::size_t mi = 0; mi < num_mechanisms; ++mi)
            damage[si][mi] += delta.damage[si][mi];
        em_jt_hours[si] += delta.em_jt_hours[si];
        tddb_vt_hours[si] += delta.tddb_vt_hours[si];
        tc_cycles[si] += delta.tc_cycles[si];
    }
}

JsonValue
toJson(const AgingState &state)
{
    JsonValue root = JsonValue::makeObject();
    root.set("v", JsonValue::makeNumber(aging_state_version));
    root.set("age_hours", JsonValue::makeNumber(state.age_hours));
    JsonValue structures = JsonValue::makeObject();
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        JsonValue entry = JsonValue::makeObject();
        JsonValue dmg = JsonValue::makeObject();
        for (auto m : allMechanisms())
            dmg.set(std::string(mechanismName(m)),
                    JsonValue::makeNumber(
                        state.damage[si][mechanismIndex(m)]));
        entry.set("damage", std::move(dmg));
        entry.set("em_jt_hours",
                  JsonValue::makeNumber(state.em_jt_hours[si]));
        entry.set("tddb_vt_hours",
                  JsonValue::makeNumber(state.tddb_vt_hours[si]));
        entry.set("tc_cycles",
                  JsonValue::makeNumber(state.tc_cycles[si]));
        structures.set(std::string(sim::structureName(s)),
                       std::move(entry));
    }
    root.set("structures", std::move(structures));
    return root;
}

Result<AgingState>
agingStateFromJson(const JsonValue &doc)
{
    if (!doc.isObject())
        return RampError{ErrorCode::CorruptRecord,
                         "aging state must be a JSON object"};
    const JsonValue *v = doc.find("v");
    if (!v || !v->isNumber() || v->number < 1.0 ||
        v->number != std::floor(v->number))
        return RampError{ErrorCode::CorruptRecord,
                         "aging state needs a positive integer 'v'"};
    if (v->number > static_cast<double>(aging_state_version))
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("aging state version ", v->number,
                      " is newer than this build supports (",
                      aging_state_version,
                      "); refusing to load or quarantine it")};

    for (const auto &[key, value] : doc.object) {
        (void)value;
        if (key != "v" && key != "age_hours" && key != "structures")
            return RampError{ErrorCode::CorruptRecord,
                             util::cat("aging state has foreign "
                                       "field '",
                                       key, "'")};
    }

    AgingState state;
    auto age = damageNumber(doc, "age_hours");
    if (!age)
        return age.error();
    state.age_hours = age.value();

    const JsonValue *structures = doc.find("structures");
    if (!structures || !structures->isObject())
        return RampError{ErrorCode::CorruptRecord,
                         "aging state needs a 'structures' object"};
    if (structures->object.size() != sim::num_structures)
        return RampError{
            ErrorCode::CorruptRecord,
            util::cat("aging state has ", structures->object.size(),
                      " structures, expected ",
                      sim::num_structures)};
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        const JsonValue *entry =
            structures->find(sim::structureName(s));
        if (!entry || !entry->isObject() ||
            entry->object.size() != 4)
            return RampError{
                ErrorCode::CorruptRecord,
                util::cat("aging state is missing structure '",
                          sim::structureName(s),
                          "' (or it has foreign fields)")};
        const JsonValue *dmg = entry->find("damage");
        if (!dmg || !dmg->isObject() ||
            dmg->object.size() != num_mechanisms)
            return RampError{
                ErrorCode::CorruptRecord,
                util::cat("aging state structure '",
                          sim::structureName(s),
                          "' needs one 'damage' entry per "
                          "mechanism")};
        for (auto m : allMechanisms()) {
            auto d = damageNumber(*dmg, mechanismName(m));
            if (!d)
                return d.error();
            state.damage[si][mechanismIndex(m)] = d.value();
        }
        auto em = damageNumber(*entry, "em_jt_hours");
        if (!em)
            return em.error();
        state.em_jt_hours[si] = em.value();
        auto tddb = damageNumber(*entry, "tddb_vt_hours");
        if (!tddb)
            return tddb.error();
        state.tddb_vt_hours[si] = tddb.value();
        auto tc = damageNumber(*entry, "tc_cycles");
        if (!tc)
            return tc.error();
        state.tc_cycles[si] = tc.value();
    }
    return state;
}

Result<void>
saveAgingState(const std::string &path, const AgingState &state)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return RampError{
                ErrorCode::IoFailure,
                util::cat("cannot open '", tmp, "' for writing")};
        util::writeJson(os, toJson(state));
        os << '\n';
        os.flush();
        if (!os)
            return RampError{ErrorCode::IoFailure,
                             util::cat("write to '", tmp,
                                       "' failed")};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return RampError{ErrorCode::IoFailure,
                         util::cat("cannot rename '", tmp, "' to '",
                                   path, "'")};
    return {};
}

Result<AgingState>
loadAgingState(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return RampError{ErrorCode::IoFailure,
                         util::cat("cannot open aging state '", path,
                                   "'")};
    std::ostringstream text;
    text << is.rdbuf();
    std::string err;
    const auto doc = util::parseJson(text.str(), &err);
    if (!doc)
        return RampError{ErrorCode::CorruptRecord,
                         util::cat("aging state '", path,
                                   "' is not JSON: ", err)};
    return agingStateFromJson(*doc);
}

Result<AgingState>
recoverAgingState(const std::string &path)
{
    if (!std::ifstream(path))
        return AgingState{};
    auto loaded = loadAgingState(path);
    if (loaded)
        return loaded;
    // A newer schema must stop the caller: quarantining it would
    // throw away state a newer build could still use.
    if (loaded.error().code == ErrorCode::InvalidInput)
        return loaded.error();
    const std::string qpath = path + ".quarantine";
    if (std::rename(path.c_str(), qpath.c_str()) != 0)
        return RampError{ErrorCode::IoFailure,
                         util::cat("cannot quarantine corrupt aging "
                                   "state '",
                                   path, "' to '", qpath, "'")};
    quarantinedCounter().add();
    util::warn(util::cat("aging state '", path, "' is corrupt (",
                         loaded.error().str(), "); quarantined to '",
                         qpath, "' and starting fresh"));
    return AgingState{};
}

} // namespace aging
} // namespace ramp
