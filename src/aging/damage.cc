#include "aging/damage.hh"

#include <algorithm>
#include <utility>

#include "core/lifetime.hh"
#include "util/constants.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace aging {

using core::Mechanism;
using core::OperatingConditions;
using sim::allStructures;
using sim::StructureId;
using sim::structureIndex;

namespace {

const telemetry::Counter &
intervalCounter()
{
    static const telemetry::Counter c =
        telemetry::counter("aging.intervals");
    return c;
}

inline constexpr std::size_t num_pairs =
    sim::num_structures * core::num_mechanisms;

/** Operating conditions of one structure during one epoch (the same
 *  construction RampEngine::addInterval uses). */
OperatingConditions
epochConditions(const core::Qualification &qual, std::size_t si,
                const StressEpoch &epoch)
{
    OperatingConditions c;
    c.temp_k = epoch.temps_k[si];
    c.voltage_v = epoch.voltage_v;
    c.frequency_ghz = epoch.frequency_ghz;
    c.activity_af = epoch.activity[si];
    c.ambient_k = qual.spec().ambient_k;
    c.em_j_scale = qual.spec().em_j_scale_qual;
    return c;
}

/** Damage one pair accrues over one epoch. TC is charged
 *  incrementally -- each epoch is one excursion from ambient to the
 *  epoch temperature, rated at the epoch's conditions -- so partial
 *  histories stay meaningful. */
double
pairEpochDamage(const core::Qualification &qual,
                const sim::PerStructure<double> &on_frac,
                const DamageParams &params, StructureId s,
                Mechanism m, const StressEpoch &epoch)
{
    const std::size_t si = structureIndex(s);
    const OperatingConditions c = epochConditions(qual, si, epoch);
    const double fit = qual.fit(s, m, c, on_frac[si]);
    const double hours = epoch.duration_s / util::seconds_per_hour;
    return core::damageRatePerHour(fit, qual.allocation(s, m),
                                   params.service_life_years) *
           hours;
}

} // namespace

DamageIntegrator::DamageIntegrator(
    core::Qualification qual, sim::PerStructure<double> on_fractions,
    DamageParams params)
    : qual_(std::move(qual)), on_frac_(on_fractions), params_(params)
{
    if (params_.service_life_years <= 0.0)
        util::fatal("damage model service life must be positive");
    for (double f : on_frac_)
        if (f < 0.0 || f > 1.0)
            util::fatal("powered-on fraction must be in [0,1]");
}

void
DamageIntegrator::addInterval(
    const sim::PerStructure<double> &temps_k,
    const sim::PerStructure<double> &activity, double voltage_v,
    double frequency_ghz, double duration_s)
{
    StressEpoch epoch;
    epoch.temps_k = temps_k;
    epoch.activity = activity;
    epoch.voltage_v = voltage_v;
    epoch.frequency_ghz = frequency_ghz;
    epoch.duration_s = duration_s;
    integrate({epoch}, nullptr);
}

void
DamageIntegrator::addOperatingPoint(const core::OperatingPoint &op,
                                    double duration_s)
{
    addInterval(op.temps_k, op.activity.activity,
                op.config.voltage_v, op.config.frequency_ghz,
                duration_s);
}

void
DamageIntegrator::setState(AgingState state)
{
    state_ = std::move(state);
}

void
DamageIntegrator::integrate(const std::vector<StressEpoch> &epochs,
                            util::ThreadPool *pool)
{
    for (const auto &epoch : epochs)
        if (epoch.duration_s <= 0.0)
            util::fatal("damage epoch duration must be positive");

    // Each (structure, mechanism) pair walks the epochs in order
    // into its own slot; the fan is over pairs, not epochs, so the
    // arithmetic (and hence the bits) cannot depend on the thread
    // count.
    std::array<double, num_pairs> deltas{};
    auto integrate_pair = [&](std::size_t p) {
        const StructureId s =
            static_cast<StructureId>(p / core::num_mechanisms);
        const Mechanism m =
            static_cast<Mechanism>(p % core::num_mechanisms);
        double sum = 0.0;
        for (const auto &epoch : epochs)
            sum += pairEpochDamage(qual_, on_frac_, params_, s, m,
                                   epoch);
        deltas[p] = sum;
    };
    if (pool) {
        (void)pool->parallelFor(num_pairs, integrate_pair);
    } else {
        for (std::size_t p = 0; p < num_pairs; ++p)
            integrate_pair(p);
    }
    for (std::size_t p = 0; p < num_pairs; ++p)
        state_.damage[p / core::num_mechanisms]
                     [p % core::num_mechanisms] += deltas[p];

    // Stress-history diagnostics and the age clock are serial (cheap
    // sums over structures).
    for (const auto &epoch : epochs) {
        const double hours =
            epoch.duration_s / util::seconds_per_hour;
        for (auto s : allStructures()) {
            const std::size_t si = structureIndex(s);
            const double alpha =
                std::clamp(epoch.activity[si], 0.0, 1.0);
            // Same current-density proxy as core/mechanisms.cc
            // (clock switching keeps a 10% floor when gated).
            state_.em_jt_hours[si] += (0.1 + 0.9 * alpha) *
                                      epoch.voltage_v *
                                      epoch.frequency_ghz * hours;
            state_.tddb_vt_hours[si] += epoch.voltage_v * hours;
            state_.tc_cycles[si] += 1.0;
        }
        state_.age_hours += hours;
        intervalCounter().add();
    }
}

void
integrateEpochs(DamageIntegrator &integrator,
                const std::vector<StressEpoch> &epochs,
                util::ThreadPool *pool)
{
    integrator.integrate(epochs, pool);
}

} // namespace aging
} // namespace ramp
