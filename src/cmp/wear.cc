#include "cmp/wear.hh"

#include <algorithm>
#include <utility>

#include "cmp/telemetry.hh"
#include "power/power.hh"
#include "sim/machine.hh"
#include "util/logging.hh"

namespace ramp {
namespace cmp {

WearLeveler::WearLeveler(const core::Qualification &qual,
                         std::size_t cores, WearParams params)
    : params_(params)
{
    if (cores == 0)
        util::fatal("wear leveling needs at least one core");
    if (params_.migrate_spread_frac <= 0.0 ||
        params_.rearm_spread_frac <= 0.0 ||
        params_.migrate_spread_frac <= params_.rearm_spread_frac)
        util::fatal("wear-leveling thresholds must satisfy "
                    "0 < rearm < migrate");
    const sim::PerStructure<double> on_fractions =
        power::poweredFractions(sim::baseMachine());
    integrators_.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c)
        integrators_.emplace_back(qual, on_fractions);
}

void
WearLeveler::addInterval(std::size_t core,
                         const core::OperatingPoint &op, double hours)
{
    if (hours <= 0.0)
        return;
    integrators_[core].addInterval(
        op.temps_k, op.activity.activity, op.config.voltage_v,
        op.config.frequency_ghz, hours * 3600.0);
}

double
WearLeveler::consumedFrac(std::size_t core) const
{
    return integrators_[core].state().totalDamage();
}

double
WearLeveler::spreadFrac() const
{
    double lo = consumedFrac(0);
    double hi = lo;
    for (std::size_t c = 1; c < integrators_.size(); ++c) {
        const double d = consumedFrac(c);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    return hi - lo;
}

bool
WearLeveler::maybeMigrate(std::vector<std::size_t> &assignment)
{
    if (assignment.size() != integrators_.size())
        util::panic(util::cat("wear leveling got ",
                              assignment.size(), " app slots for ",
                              integrators_.size(), " cores"));
    const double spread = spreadFrac();
    // Re-arm when the last migration ran its course: either the
    // spread closed below the re-arm threshold, or it regrew past the
    // level we last acted at (with 3+ distinct damage rates the
    // spread has a rising floor and may never close, but growing
    // beyond the last trigger point proves another swap is due).
    if (!armed_ && (spread < params_.rearm_spread_frac ||
                    spread > last_migration_spread_))
        armed_ = true;
    ++epochs_since_migration_;
    if (!armed_ || spread <= params_.migrate_spread_frac ||
        epochs_since_migration_ < params_.cooldown_epochs)
        return false;

    std::size_t hottest = 0;
    std::size_t coolest = 0;
    for (std::size_t c = 1; c < integrators_.size(); ++c) {
        if (consumedFrac(c) > consumedFrac(hottest))
            hottest = c;
        if (consumedFrac(c) < consumedFrac(coolest))
            coolest = c;
    }
    if (hottest == coolest)
        return false;
    std::swap(assignment[hottest], assignment[coolest]);
    coreCounter(hottest, "migrations").add();
    armed_ = false;
    last_migration_spread_ = spread;
    epochs_since_migration_ = 0;
    ++migrations_;
    return true;
}

const aging::AgingState &
WearLeveler::state(std::size_t core) const
{
    return integrators_[core].state();
}

} // namespace cmp
} // namespace ramp
