#include "cmp/telemetry.hh"

#include "util/logging.hh"

namespace ramp {
namespace cmp {

telemetry::Counter
coreCounter(std::size_t core, std::string_view suffix)
{
    return telemetry::counter(
        util::cat("cmp.core", core, ".", suffix));
}

} // namespace cmp
} // namespace ramp
