#include "cmp/evaluator.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cmp/telemetry.hh"
#include "power/power.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace cmp {

using sim::num_structures;
using sim::PerStructure;

double
ChipOperatingPoint::uopsPerSecond() const
{
    double sum = 0.0;
    for (const auto &op : cores)
        sum += op.uopsPerSecond();
    return sum;
}

double
ChipOperatingPoint::maxTemp() const
{
    double m = cores[0].maxTemp();
    for (const auto &op : cores)
        m = std::max(m, op.maxTemp());
    return m;
}

ChipEvaluator::ChipEvaluator(ChipFloorplan floorplan,
                             const drm::OracleExplorer *explorer,
                             util::ThreadPool *pool)
    : thermal_(std::move(floorplan),
               explorer->evaluator().params().thermal_params),
      explorer_(explorer), pool_(pool)
{
}

util::Result<ChipOperatingPoint>
ChipEvaluator::tryEvaluate(
    const std::vector<const workload::AppProfile *> &apps,
    const std::vector<sim::MachineConfig> &cfgs) const
{
    const std::size_t n = numCores();
    if (apps.size() != n || cfgs.size() != n)
        util::panic(util::cat("chip evaluation got ", apps.size(),
                              " apps and ", cfgs.size(),
                              " configs for ", n, " cores"));
    static const telemetry::Counter converge_calls =
        telemetry::counter("cmp.converge_calls");
    static const telemetry::Counter non_converged =
        telemetry::counter("cmp.non_converged");

    // Per-core timing (plus the cached single-core fixed point),
    // fanned across the pool; results land by core index, failures
    // come back by index, so the outcome is identical at any thread
    // count.
    ChipOperatingPoint chip;
    chip.cores.resize(n);
    std::vector<std::pair<std::size_t, util::RampError>> failures;
    const auto eval_one = [&](std::size_t i) {
        coreCounter(i, "evals").add();
        auto r = explorer_->tryEvaluate(cfgs[i], *apps[i]);
        if (!r)
            throw util::RampException(r.error());
        chip.cores[i] = std::move(r.value());
    };
    if (pool_ != nullptr) {
        const util::BatchReport report =
            pool_->parallelFor(n, eval_one);
        failures = report.failures;
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                eval_one(i);
            } catch (const util::RampException &e) {
                failures.emplace_back(i, e.error());
            }
        }
    }
    if (!failures.empty())
        return util::RampError{
            failures.front().second.code,
            util::cat("core ", failures.front().first, ": ",
                      failures.front().second.message)};

    // The coupled power/thermal fixed point, mirroring the
    // single-core loop with the chip network.
    const core::EvalParams &params = explorer_->evaluator().params();
    std::vector<power::PowerModel> pmodels;
    pmodels.reserve(n);
    for (const auto &cfg : cfgs)
        pmodels.emplace_back(cfg, params.power_params);

    std::vector<PerStructure<double>> temps(n);
    for (auto &t : temps)
        t.fill(params.thermal_params.ambient_k + 30.0);

    // Same clamp as the single-core evaluator: above ~450 K the
    // exponential leakage loop has no stable fixed point.
    constexpr double leak_temp_cap = 450.0;

    converge_calls.add();
    std::vector<PerStructure<double>> dyn(n);
    for (std::size_t c = 0; c < n; ++c)
        dyn[c] = pmodels[c].dynamicPower(chip.cores[c].activity);

    double final_residual_k = 0.0;
    ChipSteadyTemps steady{};
    std::vector<PerStructure<double>> total(n);
    for (std::uint32_t it = 0; it < params.max_iterations; ++it) {
        for (std::size_t c = 0; c < n; ++c) {
            PerStructure<double> leak_temps = temps[c];
            for (auto &t : leak_temps)
                t = std::min(t, leak_temp_cap);
            if (!params.leakage_feedback)
                leak_temps.fill(params.power_params.leakage_t_ref);
            const auto leak = pmodels[c].leakagePower(leak_temps);
            for (std::size_t i = 0; i < num_structures; ++i)
                total[c][i] = dyn[c][i] + leak[i];
        }
        auto solve = thermal_.trySteadyState(total);
        if (!solve)
            return solve.error();
        steady = std::move(solve.value());

        double worst = 0.0;
        for (std::size_t c = 0; c < n; ++c) {
            for (std::size_t i = 0; i < num_structures; ++i) {
                worst = std::max(
                    worst, std::fabs(steady.core_k[c][i] -
                                     temps[c][i]));
                temps[c][i] =
                    0.5 * temps[c][i] + 0.5 * steady.core_k[c][i];
            }
        }
        final_residual_k = worst;
        if (worst < params.tolerance_k)
            break;
        if (it + 1 == params.max_iterations)
            util::warn("chip thermal fixed point hit the iteration "
                       "limit");
    }

    chip.converged = final_residual_k < params.tolerance_k;
    if (!chip.converged)
        non_converged.add();

    chip.sink_temp_k = steady.sink_k;
    for (std::size_t c = 0; c < n; ++c) {
        core::OperatingPoint &op = chip.cores[c];
        op.temps_k = temps[c];
        op.sink_temp_k = steady.sink_k;
        op.converged = chip.converged;
        PerStructure<double> leak_temps = temps[c];
        for (auto &t : leak_temps)
            t = std::min(t, leak_temp_cap);
        if (!params.leakage_feedback)
            leak_temps.fill(params.power_params.leakage_t_ref);
        op.power = pmodels[c].breakdown(op.activity, leak_temps);
        for (double t : op.temps_k)
            if (!std::isfinite(t))
                return util::RampError{
                    util::ErrorCode::NonFiniteValue,
                    util::cat("chip thermal fixed point produced "
                              "non-finite temperatures on core ",
                              c)};
    }
    return chip;
}

} // namespace cmp
} // namespace ramp
