#include "cmp/thermal.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace cmp {

using sim::allStructures;
using sim::num_structures;
using sim::PerStructure;
using sim::structureIndex;

double
ChipSteadyTemps::maxCore(std::size_t core) const
{
    double m = core_k[core][0];
    for (double t : core_k[core])
        m = std::max(m, t);
    return m;
}

double
ChipSteadyTemps::maxChip() const
{
    double m = maxCore(0);
    for (std::size_t c = 1; c < core_k.size(); ++c)
        m = std::max(m, maxCore(c));
    return m;
}

ChipThermalModel::ChipThermalModel(ChipFloorplan floorplan,
                                   thermal::ThermalParams params)
    : floorplan_(std::move(floorplan)), params_(params),
      spreader_(blockNodes()), sink_(blockNodes() + 1),
      g_(nodes(), nodes()), g_amb_(nodes(), 0.0)
{
    if (params_.ambient_k <= 0.0)
        util::fatal("ambient temperature must be positive kelvin");
    if (params_.r_vertical_mm2 <= 0.0 || params_.r_spreader <= 0.0 ||
        params_.r_convection <= 0.0)
        util::fatal("thermal resistances must be positive");
    if (params_.area_scale <= 0.0)
        util::fatal("thermal area scale must be positive");
    buildNetwork();
}

void
ChipThermalModel::buildNetwork()
{
    const std::size_t cores = floorplan_.numCores();
    const thermal::Floorplan &core_fp = floorplan_.coreFloorplan();

    // Vertical block -> spreader conduction, tile by tile: the same
    // per-structure conductances, accumulated in the same order, as
    // the single-core model's buildNetwork.
    for (std::size_t c = 0; c < cores; ++c) {
        for (auto id : allStructures()) {
            const std::size_t i =
                c * num_structures + structureIndex(id);
            const double area =
                core_fp.block(id).area() * params_.area_scale;
            const double g = area / params_.r_vertical_mm2;
            g_.at(i, spreader_) += g;
            g_.at(spreader_, i) += g;
        }
    }

    // Intra-tile lateral conduction (identical to the single-core
    // model per tile), then cross-tile lateral conduction between
    // blocks abutting along a shared tile border.
    const double kt = params_.k_silicon * params_.die_thickness;
    for (std::size_t c = 0; c < cores; ++c) {
        for (auto a : allStructures()) {
            for (auto b : allStructures()) {
                if (structureIndex(b) <= structureIndex(a))
                    continue;
                const double border = core_fp.sharedBorder(a, b);
                if (border <= 0.0)
                    continue;
                const double dist = core_fp.centerDistance(a, b);
                const double g = kt * border / dist;
                const std::size_t i =
                    c * num_structures + structureIndex(a);
                const std::size_t j =
                    c * num_structures + structureIndex(b);
                g_.at(i, j) += g;
                g_.at(j, i) += g;
            }
        }
    }
    for (std::size_t c = 0; c < cores; ++c) {
        for (std::size_t d = c + 1; d < cores; ++d) {
            if (!floorplan_.tilesAdjacent(c, d))
                continue;
            for (auto a : allStructures()) {
                for (auto b : allStructures()) {
                    const double border =
                        floorplan_.sharedBorder(c, a, d, b);
                    if (border <= 0.0)
                        continue;
                    const double dist =
                        floorplan_.centerDistance(c, a, d, b);
                    const double g = kt * border / dist;
                    const std::size_t i =
                        c * num_structures + structureIndex(a);
                    const std::size_t j =
                        d * num_structures + structureIndex(b);
                    g_.at(i, j) += g;
                    g_.at(j, i) += g;
                }
            }
        }
    }

    // Shared spreader -> shared sink, sink -> ambient.
    g_.at(spreader_, sink_) += 1.0 / params_.r_spreader;
    g_.at(sink_, spreader_) += 1.0 / params_.r_spreader;
    g_amb_[sink_] = 1.0 / params_.r_convection;
}

util::Result<ChipSteadyTemps>
ChipThermalModel::trySteadyState(
    const std::vector<PerStructure<double>> &power_w) const
{
    if (power_w.size() != numCores())
        util::panic(util::cat("chip thermal solve got ",
                              power_w.size(), " power maps for ",
                              numCores(), " cores"));
    static const telemetry::Counter solves =
        telemetry::counter("cmp.chip_solves");
    solves.add();

    // Solve A*T = b with A_ii = sum_j g_ij + g_amb_i, A_ij = -g_ij,
    // b_i = P_i + g_amb_i * T_amb -- the single-core assembly
    // generalized to cores * num_structures block rows.
    const std::size_t n = nodes();
    util::Matrix a(n, n);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double diag = g_amb_[i];
        for (std::size_t j = 0; j < n; ++j) {
            diag += g_.at(i, j);
            if (i != j && g_.at(i, j) > 0.0)
                a.at(i, j) = -g_.at(i, j);
        }
        a.at(i, i) = diag;
        b[i] = g_amb_[i] * params_.ambient_k;
        if (i < blockNodes()) {
            const double p =
                power_w[i / num_structures][i % num_structures];
            if (!std::isfinite(p))
                return util::RampError{
                    util::ErrorCode::NonFiniteValue,
                    util::cat("non-finite block power ", p,
                              " at core ", i / num_structures,
                              " structure ", i % num_structures,
                              " in chip thermal solve")};
            if (p < 0.0)
                return util::RampError{
                    util::ErrorCode::InvalidInput,
                    util::cat("negative block power ", p, " at core ",
                              i / num_structures, " structure ",
                              i % num_structures,
                              " in chip thermal solve")};
            b[i] += p;
        }
    }
    auto t = util::trySolveLinear(std::move(a), std::move(b));
    if (!t)
        return t.error();

    ChipSteadyTemps out;
    out.core_k.resize(numCores());
    for (std::size_t c = 0; c < numCores(); ++c)
        for (std::size_t i = 0; i < num_structures; ++i)
            out.core_k[c][i] = t.value()[c * num_structures + i];
    out.spreader_k = t.value()[spreader_];
    out.sink_k = t.value()[sink_];
    return out;
}

} // namespace cmp
} // namespace ramp
