/**
 * @file
 * Coupled chip-level RC thermal model for a tiled CMP floorplan.
 *
 * One silicon node per structure per core (core-major order), one
 * shared heat-spreader node, one shared heat-sink node, and the
 * ambient as a fixed-temperature boundary. Within a tile the network
 * is exactly the single-core model (thermal/model.hh): vertical
 * die+TIM conduction into the spreader and lateral conduction
 * between adjacent blocks. Across tiles, blocks that abut along a
 * tile border conduct laterally through the die with the same
 * kt * border / distance conductance, so a core's temperature
 * depends on its neighbors' power -- the coupling that makes
 * chip-level budget allocation a real trade.
 *
 * For a 1-core floorplan the assembled system is, operation for
 * operation, the single-core ThermalModel's: identical conductances
 * accumulated in identical order, so trySteadyState is bit-identical
 * to the single-core solver (locked in by tests/cmp).
 */

#pragma once

#include <vector>

#include "cmp/floorplan.hh"
#include "thermal/model.hh"
#include "util/error.hh"
#include "util/linalg.hh"

namespace ramp {
namespace cmp {

/** Result of a chip steady-state solve. */
struct ChipSteadyTemps
{
    /** Per-core block temperatures, indexed by core then structure. */
    std::vector<sim::PerStructure<double>> core_k;
    double spreader_k = 0.0;
    double sink_k = 0.0;

    /** Hottest structure temperature on one core. */
    double maxCore(std::size_t core) const;

    /** Hottest structure temperature on the chip. */
    double maxChip() const;
};

/** The coupled RC network with a steady-state solver. */
class ChipThermalModel
{
  public:
    /** @param floorplan Tile placement; copied.
     *  @param params Package constants shared by every tile. */
    explicit ChipThermalModel(ChipFloorplan floorplan,
                              thermal::ThermalParams params = {});

    /**
     * Steady-state temperatures for fixed per-core per-block power
     * maps (W). @p power_w must carry one entry per core (panic
     * otherwise -- a size mismatch is a caller bug, not input).
     * Negative or non-finite block power is an InvalidInput /
     * NonFiniteValue error; a singular conductance system propagates
     * as SingularSystem.
     */
    [[nodiscard]] util::Result<ChipSteadyTemps> trySteadyState(
        const std::vector<sim::PerStructure<double>> &power_w) const;

    std::size_t numCores() const { return floorplan_.numCores(); }
    const ChipFloorplan &floorplan() const { return floorplan_; }
    const thermal::ThermalParams &params() const { return params_; }

  private:
    std::size_t blockNodes() const
    {
        return floorplan_.numCores() * sim::num_structures;
    }
    std::size_t nodes() const { return blockNodes() + 2; }
    void buildNetwork();

    ChipFloorplan floorplan_;
    thermal::ThermalParams params_;

    std::size_t spreader_; ///< Node index of the shared spreader.
    std::size_t sink_;     ///< Node index of the shared sink.

    /** Conductance matrix G (W/K), symmetric, zero diagonal. */
    util::Matrix g_;
    std::vector<double> g_amb_; ///< Node -> ambient conductance.
};

} // namespace cmp
} // namespace ramp
