/**
 * @file
 * Cross-core wear-leveling: per-core damage state plus a hysteretic
 * migration policy -- an adaptation the single-core paper could not
 * express.
 *
 * Each core carries its own damage-accumulation integrator
 * (aging/damage.hh) fed by the chip-coupled temperatures of whatever
 * app it is running. When the consumed-lifetime spread between the
 * most- and least-damaged cores exceeds a trigger threshold, the two
 * cores swap apps: the hot app migrates off the most-consumed core
 * onto the least-consumed one, flipping their damage rates so the
 * spread closes again. Hysteresis keeps the policy from thrashing --
 * after a migration the trigger is disarmed while the spread sits in
 * the band between the lower re-arm threshold and the spread the
 * migration acted at: closing below the band re-arms (the swap
 * worked), and regrowing past its top re-arms too (with three or
 * more distinct damage rates the spread has a rising floor and may
 * never close, but exceeding the last trigger point proves another
 * swap is due). A cooldown additionally enforces a minimum number of
 * epochs between migrations.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "aging/damage.hh"
#include "core/evaluator.hh"
#include "core/qualification.hh"

namespace ramp {
namespace cmp {

/** Migration-policy knobs (consumed-lifetime fractions). */
struct WearParams
{
    /** Spread (max - min consumed fraction) that triggers a
     *  migration when armed. */
    double migrate_spread_frac = 0.02;

    /** Spread below which the trigger re-arms after a migration. */
    double rearm_spread_frac = 0.01;

    /** Minimum epochs (maybeMigrate calls) between migrations. */
    std::uint32_t cooldown_epochs = 2;
};

/** Per-core damage state with the hysteretic migration policy. */
class WearLeveler
{
  public:
    /**
     * @param qual The shipped qualification damage is measured
     *        against (copied into every core's integrator).
     * @param cores Number of cores tracked.
     * @param params Policy knobs; trigger must exceed re-arm and
     *        both must be positive (fatal otherwise).
     */
    WearLeveler(const core::Qualification &qual, std::size_t cores,
                WearParams params = {});

    /** Integrate one interval of one core's operating history (the
     *  chip-coupled operating point held for @p hours). */
    void addInterval(std::size_t core,
                     const core::OperatingPoint &op, double hours);

    /** Consumed-lifetime fraction of one core. */
    double consumedFrac(std::size_t core) const;

    /** Max - min consumed fraction across cores. */
    double spreadFrac() const;

    /**
     * Advance the policy one epoch and, when triggered, swap the
     * apps of the most- and least-consumed cores in @p assignment
     * (one app slot per core; ties break to the lowest core index,
     * so the decision is deterministic).
     * @return true when a migration happened.
     */
    bool maybeMigrate(std::vector<std::size_t> &assignment);

    /** Full damage state of one core. */
    const aging::AgingState &state(std::size_t core) const;

    std::size_t numCores() const { return integrators_.size(); }
    std::uint64_t migrations() const { return migrations_; }

  private:
    WearParams params_;
    std::vector<aging::DamageIntegrator> integrators_;
    bool armed_ = true;
    /** Spread the last migration acted at (top of the disarm band). */
    double last_migration_spread_ = 0.0;
    std::uint32_t epochs_since_migration_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace cmp
} // namespace ramp
