/**
 * @file
 * Per-core metric naming. Chip-level code labels per-core counters
 * as `cmp.core<i>.<suffix>`; the manifest documents each suffix once
 * with the literal `<i>` placeholder (docs/metrics.manifest), and
 * ramp-lint extracts coreCounter() call sites into that templated
 * name, so N cores never need N manifest rows.
 */

#pragma once

#include <cstddef>
#include <string_view>

#include "util/telemetry.hh"

namespace ramp {
namespace cmp {

/** The counter `cmp.core<core>.<suffix>` (registered on demand). */
telemetry::Counter coreCounter(std::size_t core,
                               std::string_view suffix);

} // namespace cmp
} // namespace ramp
