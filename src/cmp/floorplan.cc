#include "cmp/floorplan.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace ramp {
namespace cmp {

using sim::StructureId;

namespace {

constexpr double eps_mm = 1e-9;

/** Overlap length of 1-D segments [a0,a1] and [b0,b1]. */
double
overlap(double a0, double a1, double b0, double b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

/** Border length shared by two axis-aligned rectangles. */
double
rectBorder(double ax, double ay, double aw, double ah, double bx,
           double by, double bw, double bh)
{
    if (std::fabs((ax + aw) - bx) < eps_mm ||
        std::fabs((bx + bw) - ax) < eps_mm)
        return overlap(ay, ay + ah, by, by + bh);
    if (std::fabs((ay + ah) - by) < eps_mm ||
        std::fabs((by + bh) - ay) < eps_mm)
        return overlap(ax, ax + aw, bx, bx + bw);
    return 0.0;
}

util::RampError
planError(const std::string &origin, const std::string &what)
{
    return {util::ErrorCode::InvalidInput,
            util::cat(origin, ": ", what)};
}

util::RampError
coreError(const std::string &origin, std::size_t index,
          const std::string &what)
{
    return {util::ErrorCode::InvalidInput,
            util::cat(origin, ":cores[", index, "]: ", what)};
}

/** Strict placement validation; @p size is the tile edge length. */
util::Result<void>
validateTiles(const std::vector<CoreTile> &tiles, double size,
              const std::string &origin)
{
    for (std::size_t i = 0; i < tiles.size(); ++i)
        for (std::size_t j = 0; j < i; ++j)
            if (tiles[i].name == tiles[j].name)
                return coreError(
                    origin, i,
                    util::cat("duplicate core name '", tiles[i].name,
                              "' (first used by cores[", j, "])"));

    for (std::size_t i = 0; i < tiles.size(); ++i)
        for (std::size_t j = 0; j < i; ++j) {
            const double ox =
                overlap(tiles[i].x_mm, tiles[i].x_mm + size,
                        tiles[j].x_mm, tiles[j].x_mm + size);
            const double oy =
                overlap(tiles[i].y_mm, tiles[i].y_mm + size,
                        tiles[j].y_mm, tiles[j].y_mm + size);
            if (ox > eps_mm && oy > eps_mm)
                return coreError(
                    origin, i,
                    util::cat("tile overlaps cores[", j, "] by ", ox,
                              " x ", oy, " mm"));
        }

    // Every tile must reach every other through shared borders:
    // lateral heat has no path across a gap, so a disconnected
    // placement silently degenerates to independent dies.
    if (tiles.size() > 1) {
        std::vector<char> seen(tiles.size(), 0);
        std::vector<std::size_t> stack{0};
        seen[0] = 1;
        while (!stack.empty()) {
            const std::size_t a = stack.back();
            stack.pop_back();
            for (std::size_t b = 0; b < tiles.size(); ++b) {
                if (seen[b])
                    continue;
                if (rectBorder(tiles[a].x_mm, tiles[a].y_mm, size,
                               size, tiles[b].x_mm, tiles[b].y_mm,
                               size, size) > eps_mm) {
                    seen[b] = 1;
                    stack.push_back(b);
                }
            }
        }
        for (std::size_t i = 0; i < tiles.size(); ++i)
            if (!seen[i])
                return coreError(
                    origin, i,
                    "tile is disconnected from cores[0] (no chain "
                    "of shared tile borders)");
    }
    return {};
}

} // namespace

ChipFloorplan::ChipFloorplan(std::vector<CoreTile> tiles)
    : tiles_(std::move(tiles))
{
}

ChipFloorplan
ChipFloorplan::grid(std::size_t cores)
{
    if (cores != 1 && cores != 2 && cores != 4 && cores != 8)
        util::fatal(util::cat("no built-in ", cores,
                              "-core grid (1, 2, 4, or 8); load a "
                              "custom placement via --floorplan"));
    const double s = thermal::Floorplan().dieSize();
    const std::size_t columns = cores <= 2 ? cores : cores / 2;
    std::vector<CoreTile> tiles;
    tiles.reserve(cores);
    for (std::size_t i = 0; i < cores; ++i)
        tiles.push_back(
            {util::cat("core", i),
             static_cast<double>(i % columns) * s,
             static_cast<double>(i / columns) * s});
    return ChipFloorplan(std::move(tiles));
}

util::Result<ChipFloorplan>
ChipFloorplan::tryParse(const util::JsonValue &doc,
                        const std::string &origin)
{
    if (!doc.isObject())
        return planError(origin, "floorplan root must be an object");
    const util::JsonValue *cores = doc.find("cores");
    if (cores == nullptr)
        return planError(origin, "missing \"cores\" array");
    if (!cores->isArray())
        return planError(origin, "\"cores\" must be an array");
    if (cores->array.empty())
        return planError(origin, "\"cores\" must name at least one "
                                 "core");

    std::vector<CoreTile> tiles;
    tiles.reserve(cores->array.size());
    for (std::size_t i = 0; i < cores->array.size(); ++i) {
        const util::JsonValue &c = cores->array[i];
        if (!c.isObject())
            return coreError(origin, i, "core must be an object");
        CoreTile tile;
        tile.name = util::cat("core", i);
        if (const util::JsonValue *name = c.find("name")) {
            if (!name->isString() || name->str.empty())
                return coreError(origin, i,
                                 "\"name\" must be a non-empty "
                                 "string");
            tile.name = name->str;
        }
        for (const auto &[key, dest] :
             {std::pair<const char *, double *>{"x_mm", &tile.x_mm},
              {"y_mm", &tile.y_mm}}) {
            const util::JsonValue *v = c.find(key);
            if (v == nullptr)
                return coreError(
                    origin, i, util::cat("missing \"", key, "\""));
            if (!v->isNumber() || !std::isfinite(v->number))
                return coreError(origin, i,
                                 util::cat("\"", key,
                                           "\" must be a finite "
                                           "number"));
            *dest = v->number;
        }
        tiles.push_back(std::move(tile));
    }

    const double s = thermal::Floorplan().dieSize();
    if (auto valid = validateTiles(tiles, s, origin); !valid)
        return valid.error();
    return ChipFloorplan(std::move(tiles));
}

util::Result<ChipFloorplan>
ChipFloorplan::tryLoad(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return util::RampError{
            util::ErrorCode::IoFailure,
            util::cat("cannot open floorplan ", path)};
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        return util::RampError{
            util::ErrorCode::IoFailure,
            util::cat("read failed for floorplan ", path)};

    std::string parse_error;
    const auto doc = util::parseJson(text.str(), &parse_error);
    if (!doc)
        return util::RampError{
            util::ErrorCode::InvalidInput,
            util::cat(path, ": ", parse_error)};
    return tryParse(*doc, path);
}

thermal::Block
ChipFloorplan::chipBlock(std::size_t core, StructureId id) const
{
    thermal::Block b = core_.block(id);
    b.x += tiles_[core].x_mm;
    b.y += tiles_[core].y_mm;
    return b;
}

double
ChipFloorplan::sharedBorder(std::size_t core_a, StructureId a,
                            std::size_t core_b,
                            StructureId b) const
{
    if (core_a == core_b)
        return a == b ? 0.0 : core_.sharedBorder(a, b);
    const thermal::Block p = chipBlock(core_a, a);
    const thermal::Block q = chipBlock(core_b, b);
    return rectBorder(p.x, p.y, p.w, p.h, q.x, q.y, q.w, q.h);
}

double
ChipFloorplan::centerDistance(std::size_t core_a, StructureId a,
                              std::size_t core_b,
                              StructureId b) const
{
    const thermal::Block p = chipBlock(core_a, a);
    const thermal::Block q = chipBlock(core_b, b);
    const double dx = p.cx() - q.cx();
    const double dy = p.cy() - q.cy();
    return std::sqrt(dx * dx + dy * dy);
}

bool
ChipFloorplan::tilesAdjacent(std::size_t core_a,
                             std::size_t core_b) const
{
    if (core_a == core_b)
        return false;
    const double s = tileSize();
    return rectBorder(tiles_[core_a].x_mm, tiles_[core_a].y_mm, s, s,
                      tiles_[core_b].x_mm, tiles_[core_b].y_mm, s,
                      s) > eps_mm;
}

} // namespace cmp
} // namespace ramp
