/**
 * @file
 * Chip-level DRM: one qualified FIT budget for the whole chip,
 * allocated across cores, with per-core selection through the
 * *unmodified* single-core oracle (drm::selectDrm).
 *
 * Every core's points are priced under ONE shared qualification (the
 * chip spec at the equal per-core share), so FIT values are
 * comparable and summable across cores. Two allocation policies:
 *
 *  - PerCore: each core independently capped at its static share --
 *    exactly selectDrm, the baseline an N-way replication of the
 *    paper's single-core scheme would give.
 *  - Global: only the chip SUM is capped, at N x share. Starting
 *    from the PerCore selections, the unused headroom
 *    (chip budget - summed consumed FIT) is granted greedily: each
 *    round upgrades, among every core's remaining valid explored
 *    points (straight from the selectDrm table), the affordable
 *    point with the largest throughput gain, until no upgrade fits.
 *    A hot core may thus exceed its share on the margin cool cores
 *    never used. Every core's performance ends >= its PerCore
 *    selection and the summed FIT never exceeds the chip budget --
 *    cool cores' headroom funds hot cores' frequency.
 */

#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "core/qualification.hh"
#include "drm/adaptation.hh"
#include "drm/oracle.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp {
namespace cmp {

/** How the chip FIT budget is split across cores. */
enum class BudgetPolicy {
    PerCore, ///< Static equal shares, cores isolated.
    Global,  ///< Slack reallocated from cool cores to hot ones.
};

/** Stable lowercase name ("per-core" / "global"). */
const char *budgetPolicyName(BudgetPolicy policy);

/** Inverse of budgetPolicyName; nullopt for unknown names. */
std::optional<BudgetPolicy>
budgetPolicyFromName(std::string_view name);

/** Result of a chip-level DRM selection. */
struct ChipSelection
{
    /** Per-core selections (index parallel to the input cores). */
    std::vector<drm::Selection> cores;
    /** Per-core FIT finally consumed by the chosen points. */
    std::vector<double> budget_fit;
    /** Summed selected-point FIT across cores. */
    double chip_fit = 0.0;
    /** Chip throughput: summed per-core perf_rel. */
    double throughput_rel = 0.0;
    /** The policy's constraint held: every core within its share
     *  under PerCore, the chip sum within the budget under Global. */
    bool feasible = true;
};

/**
 * Allocate @p chip_spec.target_fit (the *whole-chip* budget) across
 * the cores and select per core. @p cores holds each core's explored
 * space; the remaining qualification parameters (T_qual, alpha_qual,
 * ...) are shared chip-wide from @p chip_spec.
 */
ChipSelection
selectChipDrm(const std::vector<const drm::ExploredApp *> &cores,
              const core::QualificationSpec &chip_spec,
              BudgetPolicy policy);

/**
 * Explore one adaptation space for several apps, one app per pool
 * item. Each inner explore() submits to the same pool from a worker
 * and runs inline there (the ThreadPool nested-submission guard), so
 * an N-core exploration gets N-way concurrency without deadlock.
 * Results land by input index and each explore() is independently
 * deterministic, so the output is bit-identical at any thread count.
 */
std::vector<drm::ExploredApp>
exploreApps(const drm::OracleExplorer &explorer,
            util::ThreadPool *pool,
            const std::vector<const workload::AppProfile *> &apps,
            drm::AdaptationSpace space);

} // namespace cmp
} // namespace ramp
