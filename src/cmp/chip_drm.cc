#include "cmp/chip_drm.hh"

#include <utility>

#include "util/logging.hh"

namespace ramp {
namespace cmp {

const char *
budgetPolicyName(BudgetPolicy policy)
{
    switch (policy) {
    case BudgetPolicy::PerCore:
        return "per-core";
    case BudgetPolicy::Global:
        return "global";
    }
    util::panic("unknown budget policy");
}

std::optional<BudgetPolicy>
budgetPolicyFromName(std::string_view name)
{
    if (name == "per-core")
        return BudgetPolicy::PerCore;
    if (name == "global")
        return BudgetPolicy::Global;
    return std::nullopt;
}

ChipSelection
selectChipDrm(const std::vector<const drm::ExploredApp *> &cores,
              const core::QualificationSpec &chip_spec,
              BudgetPolicy policy)
{
    const std::size_t n = cores.size();
    if (n == 0)
        util::panic("chip selection needs at least one core");
    const double share =
        chip_spec.target_fit / static_cast<double>(n);

    // ONE shared qualification normalized at the per-core share:
    // every point's FIT is priced against the same allocations, so
    // per-core values are comparable and the chip sum is meaningful.
    // (Scaling target_fit rescales the allocations proportionally,
    // so selection against one's own target is scale-invariant --
    // the chip-level trade has to be on the SUM, not on per-core
    // re-targeting.)
    core::QualificationSpec share_spec = chip_spec;
    share_spec.target_fit = share;
    const core::Qualification qual(share_spec);

    ChipSelection out;
    out.cores.reserve(n);

    // Equal-share baseline: every core selected against its static
    // share in isolation -- the PerCore answer, and the floor the
    // Global policy only ever improves on.
    bool all_within_share = true;
    for (std::size_t c = 0; c < n; ++c) {
        drm::Selection sel = drm::selectDrm(*cores[c], qual);
        all_within_share = all_within_share && sel.feasible;
        out.cores.push_back(std::move(sel));
    }

    if (policy == BudgetPolicy::Global) {
        // Cap the chip SUM only: grant the headroom cool cores left
        // unused to whichever upgrade (a higher-perf valid point
        // from a core's selectDrm table) gains the most throughput
        // per round and still fits. Deterministic tie-breaks: larger
        // gain, then smaller extra FIT, then lower core index, then
        // lower point index. Each round strictly improves one core
        // over a finite point set, so the loop terminates.
        double consumed_fit = 0.0;
        for (const drm::Selection &sel : out.cores)
            consumed_fit += sel.fit;
        for (;;) {
            double headroom = chip_spec.target_fit - consumed_fit;
            if (headroom <= 0.0)
                break;
            std::size_t best_core = n;
            std::size_t best_point = 0;
            double best_gain = 0.0;
            double best_extra = 0.0;
            for (std::size_t c = 0; c < n; ++c) {
                const drm::Selection &cur = out.cores[c];
                const auto &table = cur.table;
                for (std::size_t p = 0; p < table.size(); ++p) {
                    const drm::SelectionPoint &pt = table[p];
                    if (!pt.valid || !pt.converged)
                        continue;
                    const double gain = pt.perf_rel - cur.perf_rel;
                    const double extra = pt.fit - cur.fit;
                    if (gain <= 0.0 || extra > headroom)
                        continue;
                    const bool better =
                        gain > best_gain ||
                        (gain == best_gain && best_core < n &&
                         extra < best_extra);
                    if (best_core == n || better) {
                        best_core = c;
                        best_point = p;
                        best_gain = gain;
                        best_extra = extra;
                    }
                }
            }
            if (best_core == n)
                break;
            drm::Selection &sel = out.cores[best_core];
            const drm::SelectionPoint &pt = sel.table[best_point];
            consumed_fit += pt.fit - sel.fit;
            sel.index = best_point;
            sel.config =
                cores[best_core]->points[best_point].op.config;
            sel.perf_rel = pt.perf_rel;
            sel.fit = pt.fit;
            sel.max_temp_k = pt.max_temp_k;
            sel.feasible = true; // within the chip-sum budget
        }
    }

    out.budget_fit.reserve(n);
    for (const drm::Selection &sel : out.cores) {
        out.budget_fit.push_back(sel.fit);
        out.chip_fit += sel.fit;
        out.throughput_rel += sel.perf_rel;
    }
    out.feasible = policy == BudgetPolicy::Global
                       ? out.chip_fit <= chip_spec.target_fit
                       : all_within_share;
    return out;
}

std::vector<drm::ExploredApp>
exploreApps(const drm::OracleExplorer &explorer,
            util::ThreadPool *pool,
            const std::vector<const workload::AppProfile *> &apps,
            drm::AdaptationSpace space)
{
    std::vector<drm::ExploredApp> out(apps.size());
    const auto explore_one = [&](std::size_t i) {
        out[i] = explorer.explore(*apps[i], space);
    };
    if (pool == nullptr) {
        for (std::size_t i = 0; i < apps.size(); ++i)
            explore_one(i);
        return out;
    }
    const util::BatchReport report =
        pool->parallelFor(apps.size(), explore_one);
    if (!report.ok())
        util::panic("exploreApps items never throw RampException");
    return out;
}

} // namespace cmp
} // namespace ramp
