/**
 * @file
 * Chip-level (CMP) floorplan: N copies of the R10000-like core tile
 * placed on a shared die.
 *
 * Each core occupies one 4.5 mm x 4.5 mm tile (the single-core
 * floorplan, thermal/floorplan.hh) at an arbitrary origin; tiles
 * must not overlap, and for a multi-core chip every tile must be
 * reachable from every other through shared tile borders (a
 * disconnected floorplan has no lateral heat path and is almost
 * certainly a typo in the placement). Built-in 1/2/4/8-core grids
 * cover the bench matrix; arbitrary placements load from a JSON
 * document:
 *
 *   {"cores": [{"name": "c0", "x_mm": 0.0, "y_mm": 0.0}, ...]}
 *
 * Validation is strict and diagnostic: every rejection names the
 * offending document and core index (`plan.json:cores[2]: ...`) so
 * a malformed floorplan arriving over the wire turns into a
 * structured bad-request, never a crash.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/structures.hh"
#include "thermal/floorplan.hh"
#include "util/error.hh"
#include "util/json.hh"

namespace ramp {
namespace cmp {

/** Placement of one core tile on the chip (mm). */
struct CoreTile
{
    std::string name;
    double x_mm = 0.0; ///< Left edge of the tile.
    double y_mm = 0.0; ///< Bottom edge of the tile.
};

/** An N-core tiled chip floorplan. */
class ChipFloorplan
{
  public:
    /**
     * Built-in grids: 1 core at the origin, 2 side by side, 4 as a
     * 2x2 grid, 8 as a 4x2 grid, all tiles abutting. Any other count
     * is a caller bug (fatal); floorplans from untrusted input go
     * through tryParse instead.
     */
    static ChipFloorplan grid(std::size_t cores);

    /**
     * Build from a parsed JSON document. @p origin names the source
     * (file path or "request") and prefixes every diagnostic.
     * Rejects (InvalidInput): a root that is not {"cores": [...]},
     * an empty core list, non-finite or missing coordinates,
     * duplicate core names, overlapping tiles, and (for more than
     * one core) a tile adjacency graph that is not connected.
     */
    [[nodiscard]] static util::Result<ChipFloorplan>
    tryParse(const util::JsonValue &doc, const std::string &origin);

    /** Read and parse a floorplan file (IoFailure on read errors,
     *  InvalidInput with path-prefixed diagnostics otherwise). */
    [[nodiscard]] static util::Result<ChipFloorplan>
    tryLoad(const std::string &path);

    std::size_t numCores() const { return tiles_.size(); }
    const std::vector<CoreTile> &tiles() const { return tiles_; }

    /** Edge length of one core tile (mm); tiles are square. */
    double tileSize() const { return core_.dieSize(); }

    /** The per-core structure layout every tile instantiates. */
    const thermal::Floorplan &coreFloorplan() const { return core_; }

    /** A structure's block in chip coordinates. */
    thermal::Block chipBlock(std::size_t core,
                             sim::StructureId id) const;

    /**
     * Length (mm) of the border shared by two structure blocks,
     * possibly on different cores; 0 when not adjacent. Symmetric.
     */
    double sharedBorder(std::size_t core_a, sim::StructureId a,
                        std::size_t core_b, sim::StructureId b) const;

    /** Distance between two blocks' centers in chip coordinates. */
    double centerDistance(std::size_t core_a, sim::StructureId a,
                          std::size_t core_b,
                          sim::StructureId b) const;

    /** Tiles sharing a border of positive length. */
    bool tilesAdjacent(std::size_t core_a, std::size_t core_b) const;

  private:
    explicit ChipFloorplan(std::vector<CoreTile> tiles);

    thermal::Floorplan core_;
    std::vector<CoreTile> tiles_;
};

} // namespace cmp
} // namespace ramp
