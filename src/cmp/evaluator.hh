/**
 * @file
 * Chip-level operating-point evaluation: per-core timing simulation
 * fanned across the thread pool, then one *coupled* power/thermal
 * fixed point over the whole chip.
 *
 * Timing is temperature-independent, so each core's activity sample
 * is exactly the single-core evaluation's (and comes from the shared
 * evaluation cache when warm). The fixed point then mirrors the
 * single-core loop (core/evaluator.cc) with the chip network in
 * place of the per-core one: dynamic power per core from activity,
 * leakage from each core's (clamped) temperatures, a chip
 * steady-state solve, damped updates, same tolerance and iteration
 * limit. Per-core results land by core index, so cold runs are
 * bit-identical at any thread count.
 */

#pragma once

#include <vector>

#include "cmp/floorplan.hh"
#include "cmp/thermal.hh"
#include "core/evaluator.hh"
#include "drm/oracle.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp {
namespace cmp {

/** Everything known about one chip configuration under one mix. */
struct ChipOperatingPoint
{
    /** Per-core points with chip-coupled temperatures and power;
     *  activity and stats are the single-core evaluation's. */
    std::vector<core::OperatingPoint> cores;
    double sink_temp_k = 0.0;

    /** False when the coupled fixed point stopped at its iteration
     *  limit; the temperatures are an unconverged iterate. */
    bool converged = true;

    /** Chip throughput: summed retired micro-ops per second. */
    double uopsPerSecond() const;

    /** Hottest structure temperature across the chip. */
    double maxTemp() const;
};

/**
 * Evaluates chip operating points over a fixed floorplan. Stateless
 * apart from its construction parameters; safe to reuse.
 */
class ChipEvaluator
{
  public:
    /**
     * @param floorplan Tile placement; copied.
     * @param explorer Single-core evaluation path (cache-backed);
     *        must outlive the evaluator. Its EvalParams also supply
     *        the power/thermal constants of the coupled solve.
     * @param pool Pool the per-core timing runs fan out across; must
     *        outlive the evaluator. Null means serial.
     */
    ChipEvaluator(ChipFloorplan floorplan,
                  const drm::OracleExplorer *explorer,
                  util::ThreadPool *pool = nullptr);

    /**
     * Evaluate one app and one configuration per core (both indexed
     * by core; sizes must match the floorplan -- panic otherwise).
     * A failed per-core evaluation or a singular chip solve comes
     * back as a RampError; like the single-core evaluator, hitting
     * the fixed-point iteration limit is NOT an error -- the point
     * is returned with converged == false.
     */
    [[nodiscard]] util::Result<ChipOperatingPoint>
    tryEvaluate(const std::vector<const workload::AppProfile *> &apps,
                const std::vector<sim::MachineConfig> &cfgs) const;

    const ChipThermalModel &thermalModel() const { return thermal_; }
    std::size_t numCores() const { return thermal_.numCores(); }

  private:
    ChipThermalModel thermal_;
    const drm::OracleExplorer *explorer_;
    util::ThreadPool *pool_;
};

} // namespace cmp
} // namespace ramp
