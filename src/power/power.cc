#include "power/power.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace power {

using sim::num_structures;
using sim::PerStructure;
using sim::StructureId;
using sim::structureIndex;

PerStructure<double>
poweredFractions(const sim::MachineConfig &cfg)
{
    const sim::MachineConfig base = sim::baseMachine();
    PerStructure<double> frac;
    frac.fill(1.0);
    auto set = [&](StructureId id, double v) {
        frac[structureIndex(id)] = v > 1.0 ? 1.0 : v;
    };
    set(StructureId::IntAlu, static_cast<double>(cfg.num_int_alu) /
                                 base.num_int_alu);
    set(StructureId::Fpu,
        static_cast<double>(cfg.num_fpu) / base.num_fpu);
    set(StructureId::IWin, static_cast<double>(cfg.window_size) /
                               base.window_size);
    set(StructureId::Lsq,
        static_cast<double>(cfg.mem_queue) / base.mem_queue);
    return frac;
}

double
PowerBreakdown::totalDynamic() const
{
    double t = 0.0;
    for (double v : dynamic_w)
        t += v;
    return t;
}

double
PowerBreakdown::totalLeakage() const
{
    double t = 0.0;
    for (double v : leakage_w)
        t += v;
    return t;
}

PowerModel::PowerModel(const sim::MachineConfig &cfg, PowerParams params)
    : cfg_(cfg), params_(params), on_frac_(poweredFractions(cfg))
{
    cfg_.validate();
    for (double p : params_.max_dynamic_w)
        if (p < 0.0)
            util::fatal("max dynamic power must be non-negative");
    if (params_.gating_floor < 0.0 || params_.gating_floor > 1.0)
        util::fatal("gating floor must be in [0,1]");
    if (params_.base_frequency_ghz <= 0.0 ||
        params_.base_voltage_v <= 0.0)
        util::fatal("base operating point must be positive");
    if (params_.area_scale <= 0.0)
        util::fatal("power area scale must be positive");
}

PerStructure<double>
PowerModel::dynamicPower(const sim::ActivitySample &activity) const
{
    const double vscale = cfg_.voltage_v / params_.base_voltage_v;
    const double fscale = cfg_.frequency_ghz / params_.base_frequency_ghz;
    const double scale = vscale * vscale * fscale;
    const double floor = params_.gating_floor;

    PerStructure<double> p{};
    for (std::size_t i = 0; i < num_structures; ++i) {
        const double alpha = activity.activity[i];
        p[i] = params_.max_dynamic_w[i] * on_frac_[i] *
               (floor + (1.0 - floor) * alpha) * scale;
    }
    return p;
}

PerStructure<double>
PowerModel::leakagePower(const PerStructure<double> &temps_k) const
{
    const double vscale = cfg_.voltage_v / params_.base_voltage_v;
    PerStructure<double> p{};
    for (std::size_t i = 0; i < num_structures; ++i) {
        const double area =
            sim::structureArea(static_cast<StructureId>(i));
        const double density =
            params_.leakage_density_383 *
            std::exp(params_.leakage_beta *
                     (temps_k[i] - params_.leakage_t_ref));
        p[i] = density * area * params_.area_scale * on_frac_[i] *
               vscale;
    }
    return p;
}

PowerBreakdown
PowerModel::breakdown(const sim::ActivitySample &activity,
                      const PerStructure<double> &temps_k) const
{
    PowerBreakdown b;
    b.dynamic_w = dynamicPower(activity);
    // leakagePower() owns the exponential temperature model.
    // ramp-lint: convert(k->w): leakage is a function of temperature
    b.leakage_w = leakagePower(temps_k);
    return b;
}

} // namespace power
} // namespace ramp
