/**
 * @file
 * Architecture-level power model (the Wattch stand-in).
 *
 * Dynamic power per structure follows the Wattch abstraction used by
 * the paper (Section 6.3): each structure has a maximum dynamic power
 * at the base operating point; aggressive clock gating charges 10% of
 * maximum power when a structure is idle, so
 *
 *   P_dyn = maxP * on_frac * (0.1 + 0.9 * alpha) * (V/Vb)^2 * (f/fb)
 *
 * where alpha is the activity factor reported by the core and on_frac
 * is the powered-on fraction of an adaptively down-sized structure
 * (paper Section 6.1: powered-down units have no current flow).
 *
 * Leakage follows the paper exactly: 0.5 W/mm^2 at 383 K for the
 * modelled 65 nm process, scaled with temperature as
 * P(T) = P(383) * e^{beta (T - 383)} with beta = 0.017 (Heo et al.,
 * as cited by the paper), and linearly with supply voltage.
 */

#pragma once

#include "sim/core.hh"
#include "sim/machine.hh"
#include "sim/structures.hh"

namespace ramp {
namespace power {

/** Tunable constants of the power model. */
struct PowerParams
{
    /** Max dynamic power per structure (W) at 4 GHz / 1.0 V, full
     *  activity. Calibrated so Table 2 base powers are reproduced. */
    sim::PerStructure<double> max_dynamic_w{
        11.5,  // IntALU
        12.1,  // FPU
        5.3,   // IntReg
        4.1,   // FPReg
        3.6,   // Bpred
        9.4,   // IWin
        4.6,   // LSQ
        8.6,   // L1D
        5.1,   // L1I
        7.6,   // FrontEnd
    };

    /** Idle (clock-gated) fraction of max power: the paper's 10%. */
    double gating_floor = 0.1;

    /** Leakage power density at 383 K (W/mm^2), paper Section 6.3. */
    double leakage_density_383 = 0.5;

    /** Leakage-temperature exponent beta (1/K), paper Section 6.3. */
    double leakage_beta = 0.017;

    /** Reference temperature for the leakage density (K). */
    double leakage_t_ref = 383.0;

    /** Base operating point the max powers are specified at. */
    double base_frequency_ghz = 4.0;
    double base_voltage_v = 1.0;

    /** Die area multiplier relative to the 65 nm reference (scales
     *  leakage area in technology studies). */
    double area_scale = 1.0;
};

/**
 * Powered-on fraction of each structure for a machine configuration,
 * relative to the base Table 1 machine. Down-sized windows, queues,
 * and FU pools are power- (and hence failure-) gated proportionally.
 */
sim::PerStructure<double> poweredFractions(const sim::MachineConfig &cfg);

/** Per-structure and total power at one operating point. */
struct PowerBreakdown
{
    sim::PerStructure<double> dynamic_w{};
    sim::PerStructure<double> leakage_w{};

    double totalDynamic() const;
    double totalLeakage() const;
    double total() const { return totalDynamic() + totalLeakage(); }

    /** Dynamic + leakage for one structure. */
    double structureTotal(sim::StructureId id) const
    {
        const auto i = sim::structureIndex(id);
        return dynamic_w[i] + leakage_w[i];
    }
};

/** The power model for one machine configuration. */
class PowerModel
{
  public:
    PowerModel(const sim::MachineConfig &cfg, PowerParams params = {});

    /**
     * Dynamic power per structure for one activity sample at the
     * configured voltage/frequency.
     */
    sim::PerStructure<double>
    dynamicPower(const sim::ActivitySample &activity) const;

    /**
     * Leakage power per structure given per-structure temperatures
     * (kelvin). Power-gated area leaks nothing.
     */
    sim::PerStructure<double>
    leakagePower(const sim::PerStructure<double> &temps_k) const;

    /** Full breakdown for an activity sample and temperature map. */
    PowerBreakdown
    breakdown(const sim::ActivitySample &activity,
              const sim::PerStructure<double> &temps_k) const;

    const PowerParams &params() const { return params_; }
    const sim::MachineConfig &config() const { return cfg_; }

    /** Powered-on fractions used by this model. */
    const sim::PerStructure<double> &onFractions() const
    {
        return on_frac_;
    }

  private:
    sim::MachineConfig cfg_;
    PowerParams params_;
    sim::PerStructure<double> on_frac_;
};

} // namespace power
} // namespace ramp

