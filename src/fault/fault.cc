#include "fault/fault.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace fault {

using util::cat;
using util::ErrorCode;
using util::RampError;
using util::Result;

namespace {

constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnv_prime = 0x100000001b3ull;

/** Per-site salts so the same seed makes independent decisions at
 *  different kinds of injection site. */
constexpr std::uint64_t cache_salt = 0x6361636865636f72ull;
constexpr std::uint64_t converge_salt = 0x636f6e7665726765ull;
constexpr std::uint64_t stream_salt = 0x73747265616d7365ull;
constexpr std::uint64_t conn_drop_salt = 0x636f6e6e64726f70ull;
constexpr std::uint64_t conn_slow_salt = 0x636f6e6e736c6f77ull;
constexpr std::uint64_t conn_refuse_salt = 0x636f6e6e72656675ull;

/** splitmix64 finalizer: decorrelates structured hash inputs. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Standard normal variate (Box-Muller, one value per call). */
double
gaussian(util::Rng &rng)
{
    const double u1 = rng.uniform();
    const double u2 = rng.uniform();
    const double r = std::sqrt(-2.0 * std::log(1.0 - u1));
    return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

const char *const kind_names[num_fault_kinds] = {
    "sensor-noise",  "sensor-quantize", "sensor-stuck",
    "sensor-dropout", "sensor-delay",   "cache-corrupt",
    "non-convergence", "power-nan",     "conn-drop",
    "conn-slow",      "conn-refuse",
};

FaultPlan &
planStorage()
{
    static FaultPlan plan;
    return plan;
}

bool &
planInstalled()
{
    static bool installed = false;
    return installed;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    return kind_names[static_cast<std::size_t>(kind)];
}

std::optional<FaultKind>
faultKindFromName(std::string_view name)
{
    for (std::size_t i = 0; i < num_fault_kinds; ++i)
        if (name == kind_names[i])
            return static_cast<FaultKind>(i);
    return std::nullopt;
}

bool
FaultPlan::any() const
{
    for (const auto &s : specs)
        if (s.rate > 0.0)
            return true;
    return false;
}

bool
sensorFaultsArmed(const FaultPlan &plan)
{
    for (FaultKind k :
         {FaultKind::SensorNoise, FaultKind::SensorQuantize,
          FaultKind::SensorStuck, FaultKind::SensorDropout,
          FaultKind::SensorDelay})
        if (plan.enabled(k))
            return true;
    return false;
}

namespace {

Result<void>
parseSpecField(FaultSpec &spec, std::string_view kind,
               const std::string &key, const util::JsonValue &val)
{
    if (!val.isNumber())
        return RampError{ErrorCode::InvalidInput,
                         cat("fault plan: ", kind, ".", key,
                             " must be a number")};
    const double v = val.number;
    if (key == "rate") {
        if (v < 0.0 || v > 1.0)
            return RampError{ErrorCode::InvalidInput,
                             cat("fault plan: ", kind,
                                 ".rate must be in [0, 1], got ", v)};
        spec.rate = v;
    } else if (key == "sigma" || key == "step" ||
               key == "magnitude") {
        if (v < 0.0)
            return RampError{ErrorCode::InvalidInput,
                             cat("fault plan: ", kind, ".", key,
                                 " must be >= 0, got ", v)};
        if (key == "sigma")
            spec.sigma = v;
        else if (key == "step")
            spec.step = v;
        else
            spec.magnitude = v;
    } else if (key == "delay-ms") {
        if (v < 0.0)
            return RampError{ErrorCode::InvalidInput,
                             cat("fault plan: ", kind,
                                 ".delay-ms must be >= 0, got ", v)};
        spec.delay_ms = v;
    } else if (key == "hold" || key == "delay") {
        if (v < 1.0 || v != std::floor(v) || v > 1e6)
            return RampError{ErrorCode::InvalidInput,
                             cat("fault plan: ", kind, ".", key,
                                 " must be a positive integer, got ",
                                 v)};
        if (key == "hold")
            spec.hold = static_cast<std::uint32_t>(v);
        else
            spec.delay = static_cast<std::uint32_t>(v);
    } else {
        return RampError{ErrorCode::InvalidInput,
                         cat("fault plan: unknown field '", key,
                             "' in ", kind, " (expected rate/sigma/"
                             "step/magnitude/hold/delay/delay-ms)")};
    }
    return {};
}

} // namespace

Result<FaultPlan>
parseFaultPlan(std::string_view json_text)
{
    std::string err;
    const auto doc = util::parseJson(json_text, &err);
    if (!doc)
        return RampError{ErrorCode::InvalidInput,
                         cat("fault plan JSON: ", err)};
    if (!doc->isObject())
        return RampError{ErrorCode::InvalidInput,
                         "fault plan: root must be an object"};

    FaultPlan plan;
    for (const auto &[key, val] : doc->object) {
        if (key == "seed") {
            if (!val.isNumber() || val.number < 0.0 ||
                val.number != std::floor(val.number))
                return RampError{ErrorCode::InvalidInput,
                                 "fault plan: seed must be a "
                                 "non-negative integer"};
            plan.seed = static_cast<std::uint64_t>(val.number);
        } else if (key == "faults") {
            if (!val.isObject())
                return RampError{ErrorCode::InvalidInput,
                                 "fault plan: 'faults' must be an "
                                 "object of kind -> spec"};
            for (const auto &[kname, kspec] : val.object) {
                const auto kind = faultKindFromName(kname);
                if (!kind)
                    return RampError{
                        ErrorCode::InvalidInput,
                        cat("fault plan: unknown fault kind '",
                            kname, "'")};
                if (!kspec.isObject())
                    return RampError{
                        ErrorCode::InvalidInput,
                        cat("fault plan: spec for ", kname,
                            " must be an object")};
                for (const auto &[fkey, fval] : kspec.object) {
                    auto r = parseSpecField(plan.spec(*kind), kname,
                                            fkey, fval);
                    if (!r)
                        return r.error();
                }
            }
        } else {
            return RampError{ErrorCode::InvalidInput,
                             cat("fault plan: unknown key '", key,
                                 "' (expected seed, faults)")};
        }
    }
    return plan;
}

Result<FaultPlan>
loadFaultPlan(const std::string &arg)
{
    const auto first = arg.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && arg[first] == '{')
        return parseFaultPlan(arg);

    std::ifstream in(arg, std::ios::binary);
    if (!in)
        return RampError{ErrorCode::IoFailure,
                         cat("cannot open fault plan file '", arg,
                             "'")};
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        return RampError{ErrorCode::IoFailure,
                         cat("error reading fault plan file '", arg,
                             "'")};
    return parseFaultPlan(text.str());
}

void
installFaultPlan(FaultPlan plan)
{
    planStorage() = plan;
    planInstalled() = true;
}

void
clearFaultPlan()
{
    planStorage() = FaultPlan{};
    planInstalled() = false;
}

const FaultPlan *
activeFaultPlan()
{
    return planInstalled() ? &planStorage() : nullptr;
}

void
countFault(FaultKind kind)
{
    // Registered on first fault, so a clean run's metric snapshot is
    // unchanged; one firing registers every kind (zeros are fine).
    static const std::array<telemetry::Counter, num_fault_kinds>
        counters = {
            telemetry::counter("fault.sensor_noise"),
            telemetry::counter("fault.sensor_quantize"),
            telemetry::counter("fault.sensor_stuck"),
            telemetry::counter("fault.sensor_dropout"),
            telemetry::counter("fault.sensor_delay"),
            telemetry::counter("fault.cache_corrupt"),
            telemetry::counter("fault.non_convergence"),
            telemetry::counter("fault.power_nan"),
            telemetry::counter("fault.conn_drop"),
            telemetry::counter("fault.conn_slow"),
            telemetry::counter("fault.conn_refuse"),
        };
    counters[static_cast<std::size_t>(kind)].add();
}

std::uint64_t
faultHash(std::uint64_t basis, std::string_view payload)
{
    std::uint64_t h = basis ^ fnv_offset;
    for (const char c : payload) {
        h ^= static_cast<unsigned char>(c);
        h *= fnv_prime;
    }
    return h;
}

std::uint64_t
faultHash(std::uint64_t basis, double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    std::uint64_t h = basis ^ fnv_offset;
    for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (8 * i)) & 0xff;
        h *= fnv_prime;
    }
    return h;
}

bool
hashChance(std::uint64_t hash, double rate)
{
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    const double u =
        static_cast<double>(mix(hash) >> 11) * 0x1.0p-53;
    return u < rate;
}

bool
corruptCacheRecord(const FaultPlan &plan, std::string_view key)
{
    const auto &spec = plan.spec(FaultKind::CacheCorrupt);
    if (spec.rate <= 0.0)
        return false;
    if (!hashChance(faultHash(plan.seed ^ cache_salt, key),
                    spec.rate))
        return false;
    countFault(FaultKind::CacheCorrupt);
    return true;
}

std::string
corruptLine(const FaultPlan &plan, std::string_view line)
{
    const std::uint64_t h =
        mix(faultHash(plan.seed ^ cache_salt, line));
    std::string out(line);
    switch (h % 4) {
    case 0: // Truncated write (partial flush before a crash).
        out.resize(out.size() / 2);
        break;
    case 1: // Flipped byte mid-record.
        if (!out.empty())
            out[h / 4 % out.size()] = '#';
        break;
    case 2: // Numeric field turned non-finite.
        out += " nan";
        break;
    default: // Garbage prepended (interleaved write).
        out.insert(0, "!!corrupt!! ");
        break;
    }
    return out;
}

bool
forceNonConvergence(const FaultPlan &plan, std::uint64_t site_hash)
{
    const auto &spec = plan.spec(FaultKind::NonConvergence);
    if (spec.rate <= 0.0)
        return false;
    if (!hashChance(mix(plan.seed ^ converge_salt) ^ site_hash,
                    spec.rate))
        return false;
    countFault(FaultKind::NonConvergence);
    return true;
}

bool
dropConnection(const FaultPlan &plan, std::string_view request_key)
{
    const auto &spec = plan.spec(FaultKind::ConnDrop);
    if (spec.rate <= 0.0)
        return false;
    if (!hashChance(faultHash(plan.seed ^ conn_drop_salt,
                              request_key),
                    spec.rate))
        return false;
    countFault(FaultKind::ConnDrop);
    return true;
}

double
slowReplyMs(const FaultPlan &plan, std::string_view request_key)
{
    const auto &spec = plan.spec(FaultKind::ConnSlow);
    if (spec.rate <= 0.0)
        return 0.0;
    if (!hashChance(faultHash(plan.seed ^ conn_slow_salt,
                              request_key),
                    spec.rate))
        return 0.0;
    countFault(FaultKind::ConnSlow);
    return spec.delay_ms;
}

bool
refuseConnect(const FaultPlan &plan, std::uint16_t port,
              std::uint64_t attempt)
{
    const auto &spec = plan.spec(FaultKind::ConnRefuse);
    if (spec.rate <= 0.0)
        return false;
    const std::uint64_t h =
        mix(plan.seed ^ conn_refuse_salt) ^
        mix((static_cast<std::uint64_t>(port) << 32) ^ attempt);
    if (!hashChance(h, spec.rate))
        return false;
    countFault(FaultKind::ConnRefuse);
    return true;
}

SensorFaulter::SensorFaulter(const FaultPlan &plan,
                             std::string_view stream, double scale)
    : plan_(plan), scale_(scale),
      rng_(mix(plan.seed ^ stream_salt) ^
           faultHash(stream_salt, stream))
{
}

double
SensorFaulter::apply(double value)
{
    // Record the clean reading first so a delayed sample replays
    // genuine history rather than previously-faulted output.
    history_.push_back(value);
    const std::uint32_t depth =
        plan_.spec(FaultKind::SensorDelay).delay;
    while (history_.size() > static_cast<std::size_t>(depth) + 1)
        history_.pop_front();

    if (stuck_left_ > 0) {
        --stuck_left_;
        ++tally_.stuck;
        countFault(FaultKind::SensorStuck);
        return stuck_value_;
    }
    const auto &stuck = plan_.spec(FaultKind::SensorStuck);
    if (stuck.rate > 0.0 && rng_.chance(stuck.rate)) {
        // Latch now; this reading is still genuine, the next `hold`
        // repeat it bit-for-bit.
        stuck_value_ = value;
        stuck_left_ = stuck.hold;
    }

    const auto &drop = plan_.spec(FaultKind::SensorDropout);
    if (drop.rate > 0.0 && rng_.chance(drop.rate)) {
        ++tally_.dropout;
        countFault(FaultKind::SensorDropout);
        return std::numeric_limits<double>::quiet_NaN();
    }

    const auto &delay = plan_.spec(FaultKind::SensorDelay);
    if (delay.rate > 0.0 &&
        history_.size() > static_cast<std::size_t>(delay.delay) &&
        rng_.chance(delay.rate)) {
        ++tally_.delay;
        countFault(FaultKind::SensorDelay);
        value = history_[history_.size() - 1 - delay.delay];
    }

    const auto &noise = plan_.spec(FaultKind::SensorNoise);
    if (noise.rate > 0.0 && rng_.chance(noise.rate)) {
        ++tally_.noise;
        countFault(FaultKind::SensorNoise);
        value += gaussian(rng_) * noise.sigma * scale_;
    }

    const auto &quant = plan_.spec(FaultKind::SensorQuantize);
    if (quant.rate > 0.0 && quant.step > 0.0 &&
        rng_.chance(quant.rate)) {
        ++tally_.quantize;
        countFault(FaultKind::SensorQuantize);
        const double grid = quant.step * scale_;
        value = std::round(value / grid) * grid;
    }
    return value;
}

} // namespace fault
} // namespace ramp
