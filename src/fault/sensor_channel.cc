#include "fault/sensor_channel.hh"

#include <algorithm>
#include <cmath>

#include "util/telemetry.hh"

namespace ramp {
namespace fault {

namespace {

/** Degradation counters, registered on first event so a clean run's
 *  metric snapshot is unchanged. */
struct ChannelMetrics
{
    telemetry::Counter invalid =
        telemetry::counter("sensor.invalid");
    telemetry::Counter despiked =
        telemetry::counter("sensor.despiked");
    telemetry::Counter fallbacks =
        telemetry::counter("sensor.fallbacks");
    telemetry::Counter stuck =
        telemetry::counter("sensor.stuck_detected");
    telemetry::Counter engages =
        telemetry::counter("sensor.failsafe_engages");
    telemetry::Counter releases =
        telemetry::counter("sensor.failsafe_releases");
};

ChannelMetrics &
channelMetrics()
{
    static ChannelMetrics m;
    return m;
}

/**
 * Instant trace event attributed to one channel (the channel label
 * becomes the trace category; trace args must be numeric). Metric
 * names flow through here as variables, so call sites carry the name
 * as a literal for ramp-lint's channelInstant extraction.
 */
void
channelInstant(const std::string &label, const char *event,
               double count)
{
    telemetry::Registry::instance().recordInstant(
        event, label, {{"count", count}});
}

double
median3(double a, double b, double c)
{
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

} // namespace

SensorChannel::SensorChannel(Params params)
    : params_(std::move(params))
{
}

SensorChannel::Reading
SensorChannel::observe(double raw)
{
    ++stats_.observations;
    auto &metrics = channelMetrics();

    bool plausible = std::isfinite(raw) &&
                     raw >= params_.min_valid &&
                     raw <= params_.max_valid;

    // Stuck-at: clean thermal/FIT telemetry never repeats
    // bit-identically across intervals (workload activity varies),
    // so a long enough equal run means the sensor latched.
    if (params_.stuck_after > 0 && std::isfinite(raw)) {
        if (has_prev_raw_ && raw == prev_raw_)
            ++identical_run_;
        else
            identical_run_ = 0;
        prev_raw_ = raw;
        has_prev_raw_ = true;
        if (plausible && identical_run_ >= params_.stuck_after) {
            plausible = false;
            ++stats_.stuck;
            metrics.stuck.add();
        }
    }

    Reading r;
    if (!plausible) {
        ++stats_.invalid;
        metrics.invalid.add();
        r.valid = false;
        if (has_last_good_) {
            r.value = last_good_;
            r.fallback = true;
            ++stats_.fallbacks;
            metrics.fallbacks.add();
        } else {
            // No history yet: a finite placeholder mid-range. The
            // fail-safe counter is already running, so a sensor that
            // is dead from the start still ends in fail-safe.
            r.value =
                0.5 * (params_.min_valid + params_.max_valid);
        }
        consecutive_valid_ = 0;
        ++consecutive_invalid_;
        if (!failsafe_ &&
            consecutive_invalid_ >= params_.failsafe_after) {
            failsafe_ = true;
            ++stats_.engages;
            metrics.engages.add();
            channelInstant(params_.label, "sensor.failsafe_engaged",
                           static_cast<double>(consecutive_invalid_));
        }
    } else {
        double accepted = raw;
        if (params_.spike_threshold > 0.0 && accepted_n_ >= 2) {
            const double med =
                median3(accepted_[0], accepted_[1], raw);
            if (std::fabs(raw - med) > params_.spike_threshold) {
                accepted = med;
                r.despiked = true;
                ++stats_.despiked;
                metrics.despiked.add();
            }
        }
        r.value = accepted;
        last_good_ = accepted;
        has_last_good_ = true;
        accepted_[0] = accepted_[1];
        accepted_[1] = accepted;
        accepted_n_ = std::min<std::size_t>(accepted_n_ + 1, 2);

        consecutive_invalid_ = 0;
        if (failsafe_) {
            ++consecutive_valid_;
            if (consecutive_valid_ >= params_.release_after) {
                failsafe_ = false;
                consecutive_valid_ = 0;
                ++stats_.releases;
                metrics.releases.add();
                channelInstant(params_.label,
                               "sensor.failsafe_released",
                               static_cast<double>(
                                   stats_.releases));
            }
        }
    }
    r.failsafe = failsafe_;
    return r;
}

} // namespace fault
} // namespace ramp
