/**
 * @file
 * Fail-safe sensor conditioning between raw readings and the DRM/DTM
 * controllers.
 *
 * A controller that trusts a raw sensor dies with it: one NaN in the
 * temperature stream and DTM either throttles forever or never. The
 * SensorChannel sits in front of each controller input and applies,
 * in order:
 *
 *  1. plausibility (finite and inside a configured physical range),
 *  2. stuck-at detection (a run of bit-identical readings -- real
 *     thermal/FIT telemetry always moves between intervals),
 *  3. median-of-3 despiking (a lone outlier is replaced by the
 *     median of itself and the two previous accepted readings),
 *  4. last-known-good fallback for implausible readings, and
 *  5. a fail-safe latch: K consecutive invalid readings mean the
 *     sensor cannot be trusted at all, and the caller must clamp to
 *     the safest DVS level until M consecutive valid readings
 *     release the latch.
 *
 * Valid, unspiked readings pass through bit-exactly, so a clean run
 * through a SensorChannel is identical to a run without one.
 */

#pragma once

#include <cstdint>
#include <string>

namespace ramp {
namespace fault {

/** One conditioned controller input stream. */
class SensorChannel
{
  public:
    struct Params
    {
        /** Channel name for telemetry/trace attribution. */
        std::string label = "sensor";

        /** Plausibility window in the stream's units. */
        double min_valid = 0.0;
        double max_valid = 1e30;

        /** Despike when a reading deviates from the median of
         *  (prev2, prev1, reading) by more than this (stream units;
         *  0 disables). Must sit above the largest clean
         *  interval-to-interval change. */
        double spike_threshold = 0.0;

        /** Consecutive invalid readings that engage fail-safe. */
        std::uint32_t failsafe_after = 5;

        /** Consecutive valid readings that release fail-safe. */
        std::uint32_t release_after = 3;

        /** Bit-identical consecutive readings treated as a stuck
         *  sensor (0 disables). */
        std::uint32_t stuck_after = 0;
    };

    /** What the controller should act on for one raw reading. */
    struct Reading
    {
        double value = 0.0;    ///< Conditioned value.
        bool valid = true;     ///< Raw reading was plausible.
        bool despiked = false; ///< Median replaced a spike.
        bool fallback = false; ///< Last-known-good substituted.
        bool failsafe = false; ///< Channel is in fail-safe state.
    };

    /** Degradation event counts for this channel. */
    struct Stats
    {
        std::uint64_t observations = 0;
        std::uint64_t invalid = 0;
        std::uint64_t despiked = 0;
        std::uint64_t fallbacks = 0;
        std::uint64_t stuck = 0;
        std::uint64_t engages = 0;
        std::uint64_t releases = 0;
    };

    explicit SensorChannel(Params params);

    /** Condition one raw reading. */
    Reading observe(double raw);

    /** True while the fail-safe latch is engaged. */
    bool failsafe() const { return failsafe_; }

    const Stats &stats() const { return stats_; }
    const Params &params() const { return params_; }

  private:
    Params params_;

    double last_good_ = 0.0;
    bool has_last_good_ = false;

    double prev_raw_ = 0.0;
    bool has_prev_raw_ = false;
    std::uint32_t identical_run_ = 0; ///< Equal-to-previous streak.

    double accepted_[2] = {0.0, 0.0}; ///< Last two accepted values.
    std::size_t accepted_n_ = 0;

    std::uint32_t consecutive_invalid_ = 0;
    std::uint32_t consecutive_valid_ = 0;
    bool failsafe_ = false;

    Stats stats_;
};

} // namespace fault
} // namespace ramp
