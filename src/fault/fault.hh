/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * A FaultPlan describes which fault kinds are armed and at what
 * per-opportunity rate; it is parsed from JSON (inline or a file) and
 * installed process-wide before a run starts. Injection sites pull
 * their decisions from two deterministic sources so that a faulted
 * run is exactly reproducible from (plan, seed):
 *
 *  - Serial sites (the transient control loop's sensor streams) use a
 *    per-stream Rng seeded from the plan seed and the stream name, so
 *    streams are decorrelated but each is a fixed sequence.
 *  - Parallel sites (oracle exploration, cache writes) must not
 *    depend on scheduling order, so they decide from a pure hash of
 *    the plan seed and the item's identity (cache key, configuration)
 *    -- the same item faults or not at every thread count.
 *
 * With no plan installed every hook is a null-pointer check; the
 * clean path stays bit-identical to a build without fault hooks.
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.hh"
#include "util/random.hh"

namespace ramp {
namespace fault {

/** The injectable fault kinds (ISCA'04 control path hazards). */
enum class FaultKind : std::uint8_t {
    SensorNoise = 0, ///< Additive Gaussian error on a sensor reading.
    SensorQuantize,  ///< Reading snapped to a coarse ADC grid.
    SensorStuck,     ///< Sensor latches its last value for `hold` reads.
    SensorDropout,   ///< Reading lost entirely (NaN).
    SensorDelay,     ///< A reading from `delay` observations ago.
    CacheCorrupt,    ///< Eval-cache record garbled on write.
    NonConvergence,  ///< Thermal fixed point forced to its limit.
    PowerNan,        ///< One block's power sample becomes NaN.
    ConnDrop,        ///< Server drops a connection instead of replying.
    ConnSlow,        ///< Server delays a reply by `delay_ms`.
    ConnRefuse,      ///< Client-side connect attempt refused outright.
};

inline constexpr std::size_t num_fault_kinds = 11;

/** Stable kebab-case name ("sensor-noise") for plans and logs. */
const char *faultKindName(FaultKind kind);

/** Inverse of faultKindName; nullopt for unknown names. */
std::optional<FaultKind> faultKindFromName(std::string_view name);

/**
 * One fault kind's knobs. rate is a per-opportunity probability; the
 * remaining fields are dimensionless multipliers of the stream's
 * scale (so one plan applies to kelvin and FIT streams alike) or
 * counts of readings.
 */
struct FaultSpec
{
    double rate = 0.0;      ///< Probability per opportunity, [0, 1].
    double sigma = 0.02;    ///< Noise stddev as a fraction of scale.
    double step = 0.05;     ///< Quantisation grid as a fraction of scale.
    double magnitude = 0.5; ///< Corruption amplitude as a fraction of scale.
    std::uint32_t hold = 3; ///< Readings a stuck sensor repeats.
    std::uint32_t delay = 2; ///< Readings a delayed sample lags.
    double delay_ms = 20.0; ///< Reply delay injected by conn-slow.
};

/** The full injection campaign: a seed plus one spec per kind. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::array<FaultSpec, num_fault_kinds> specs{};

    const FaultSpec &
    spec(FaultKind kind) const
    {
        return specs[static_cast<std::size_t>(kind)];
    }

    FaultSpec &
    spec(FaultKind kind)
    {
        return specs[static_cast<std::size_t>(kind)];
    }

    bool enabled(FaultKind kind) const { return spec(kind).rate > 0.0; }

    /** True when any kind is armed. */
    bool any() const;
};

/**
 * True when @p plan arms any of the sensor-stream kinds (noise,
 * quantize, stuck, dropout, delay). Integration loops that feed a
 * SensorFaulter use this to keep the clean path bit-identical to a
 * build without the faulter in line.
 */
bool sensorFaultsArmed(const FaultPlan &plan);

/**
 * Parse a plan from JSON text. Shape:
 *   {"seed": 7, "faults": {"sensor-noise": {"rate": 0.05, ...}, ...}}
 * Strict: unknown top-level keys, unknown kind names, unknown spec
 * fields, non-numeric values, and out-of-range rates are all
 * InvalidInput errors.
 */
[[nodiscard]] util::Result<FaultPlan> parseFaultPlan(std::string_view json_text);

/**
 * parseFaultPlan from either inline JSON (first non-space character
 * is '{') or a file path. Unreadable files are IoFailure.
 */
[[nodiscard]] util::Result<FaultPlan> loadFaultPlan(const std::string &arg);

/** Install @p plan process-wide (replacing any previous plan). Call
 *  before spawning threads; injection sites read it without locks. */
void installFaultPlan(FaultPlan plan);

/** Remove the installed plan (tests). */
void clearFaultPlan();

/** The installed plan, or nullptr when running clean. */
const FaultPlan *activeFaultPlan();

/** Bump the lazily-registered telemetry counter for @p kind
 *  ("fault.sensor_noise", ...). Every injection site calls this, so
 *  --metrics accounts for each injected fault. */
void countFault(FaultKind kind);

/** FNV-1a over @p payload, folded onto @p basis. */
std::uint64_t faultHash(std::uint64_t basis, std::string_view payload);

/** Fold one double's bit pattern onto a hash. */
std::uint64_t faultHash(std::uint64_t basis, double value);

/**
 * Scheduling-independent Bernoulli trial: true with probability
 * @p rate as a pure function of @p hash (finalized internally).
 */
bool hashChance(std::uint64_t hash, double rate);

/**
 * True when the record for cache key @p key should be corrupted under
 * @p plan (pure hash decision; counts fault.cache_corrupt).
 */
bool corruptCacheRecord(const FaultPlan &plan, std::string_view key);

/** Deterministically garble one serialized record line (the
 *  corruption mode is chosen by hashing the line). */
std::string corruptLine(const FaultPlan &plan, std::string_view line);

/**
 * True when the evaluation identified by @p site_hash should be
 * forced to report non-convergence (pure hash decision; counts
 * fault.non_convergence).
 */
bool forceNonConvergence(const FaultPlan &plan, std::uint64_t site_hash);

/**
 * True when the serving layer should drop the connection carrying the
 * request identified by @p request_key instead of replying (pure hash
 * decision; counts fault.conn_drop). The key is the request payload
 * plus its per-connection sequence number, so the decision is
 * independent of scheduling.
 */
bool dropConnection(const FaultPlan &plan,
                    std::string_view request_key);

/**
 * Milliseconds of artificial delay to insert before replying to the
 * request identified by @p request_key; 0.0 when the conn-slow fault
 * is not armed or this request was not selected (counts
 * fault.conn_slow when it fires).
 */
double slowReplyMs(const FaultPlan &plan,
                   std::string_view request_key);

/**
 * True when the connect attempt number @p attempt toward TCP port
 * @p port should be refused before the socket is even opened (pure
 * hash decision per (seed, port, attempt); counts
 * fault.conn_refuse). Connection-establishing callers -- the router
 * and the retrying CLI -- consult this so a campaign exercises the
 * "backend refuses connections" failure mode deterministically.
 */
bool refuseConnect(const FaultPlan &plan, std::uint16_t port,
                   std::uint64_t attempt);

/**
 * Applies the sensor-stream fault kinds to one scalar reading
 * sequence. Strictly serial: one instance per stream, driven by a
 * per-stream Rng, so the faulted sequence is a deterministic function
 * of (plan seed, stream name, clean readings).
 */
class SensorFaulter
{
  public:
    /**
     * @param stream Stream name (seeds the per-stream Rng).
     * @param scale Typical reading magnitude; sigma/step/magnitude
     *        multiply it.
     */
    SensorFaulter(const FaultPlan &plan, std::string_view stream,
                  double scale);

    /** Pass one clean reading through the armed sensor faults. */
    double apply(double value);

    /** Injection counts, by kind, for this stream. */
    struct Tally
    {
        std::uint64_t noise = 0;
        std::uint64_t quantize = 0;
        std::uint64_t stuck = 0;
        std::uint64_t dropout = 0;
        std::uint64_t delay = 0;

        std::uint64_t
        total() const
        {
            return noise + quantize + stuck + dropout + delay;
        }
    };

    const Tally &tally() const { return tally_; }

  private:
    FaultPlan plan_;
    double scale_;
    util::Rng rng_;
    double stuck_value_ = 0.0;
    std::uint32_t stuck_left_ = 0;
    std::deque<double> history_; ///< Recent clean readings (delay).
    Tally tally_;
};

} // namespace fault
} // namespace ramp
