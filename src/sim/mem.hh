/**
 * @file
 * Memory system timing model: L1I + L1D + unified L2 + main memory.
 *
 * Content behaviour (hits/misses) comes from the tag-exact Cache
 * models; this class adds the paper's Table 1 timing: 2-cycle L1 hits,
 * a single L2 port, 12 L1D MSHRs, and a 4-way interleaved main memory
 * whose latency and occupancy are physical times (ns), so cycle counts
 * scale with the configured core frequency under DVS.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/cache.hh"
#include "sim/machine.hh"

namespace ramp {
namespace sim {

/** Where a data access was satisfied. */
enum class MemLevel : std::uint8_t { L1, L2, Memory };

/** Timing result of one access. */
struct MemAccessResult
{
    std::uint64_t done_cycle = 0;  ///< Cycle the data is available.
    MemLevel level = MemLevel::L1; ///< Serving level.
};

/** The full cache/memory hierarchy with contention timing. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &cfg);

    /**
     * Instruction fetch of the line containing pc, initiated at
     * `cycle`. L1I hits are folded into the pipeline (no added
     * latency); misses stall fetch until the returned cycle.
     */
    MemAccessResult fetchAccess(std::uint64_t pc, std::uint64_t cycle);

    /**
     * True if an L1D MSHR is free at `cycle`, i.e. a potentially
     * missing data access may be issued.
     */
    bool mshrAvailable(std::uint64_t cycle) const;

    /**
     * Data access (load or store) initiated at `cycle`. The caller
     * must have checked mshrAvailable() and respected the L1D port
     * limit for this cycle. Latency includes the L1 hit time.
     */
    MemAccessResult dataAccess(std::uint64_t addr, bool is_write,
                               std::uint64_t cycle);

    /** Clear cache contents and all busy state. */
    void reset();

    /**
     * Change the core clock (DVS). Off-chip latencies are physical
     * times, so their cycle counts change with the clock; in-flight
     * busy-until values keep their old cycle numbers, a one-shot
     * approximation that washes out within a few hundred cycles.
     */
    void setFrequency(double frequency_ghz);

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }

    /** Main-memory line transfers since reset. */
    std::uint64_t memAccesses() const { return mem_accesses_; }

    /** L1D MSHRs still occupied by in-flight misses at `cycle`. */
    unsigned mshrInUse(std::uint64_t cycle) const;

  private:
    /**
     * Schedule an L2 access at or after `earliest`; accounts for the
     * single L2 port and, on L2 miss, for main-memory bank occupancy.
     * @return cycle the line is delivered.
     */
    std::uint64_t accessL2(std::uint64_t addr, bool is_write,
                           std::uint64_t earliest, bool &l2_hit);

    MachineConfig cfg_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;

    std::uint64_t l2_port_busy_until_ = 0;
    std::vector<std::uint64_t> bank_busy_until_;
    std::vector<std::uint64_t> mshr_busy_until_;

    std::uint64_t mem_accesses_ = 0;
};

} // namespace sim
} // namespace ramp

