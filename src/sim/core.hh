/**
 * @file
 * Cycle-level out-of-order core model (the RSIM stand-in).
 *
 * The core is trace-driven by a UopSource but models machine state
 * faithfully: a live bimodal-agree branch predictor and return-address
 * stack, tag-exact caches with MSHR/port/bank contention, a unified
 * instruction window / reorder buffer, physical register limits, a
 * load-store queue, and per-class functional-unit pools with
 * pipelined/unpipelined latencies (paper Table 1). Branch mispredicts
 * are modelled as fetch-redirect bubbles (no wrong-path execution --
 * the standard trace-driven approximation).
 *
 * Per-structure activity factors -- the alpha inputs of the paper's
 * electromigration model and of the Wattch-style power model -- are
 * accumulated per interval. Each activity factor is a utilisation in
 * [0, 1], normalised to the structure's peak bandwidth:
 *   IntALU, FPU  : busy unit-cycles / (units x cycles)
 *   IntReg, FpReg: operand reads+writes / (3 x dispatch width x cycles)
 *   Bpred        : predictor accesses / (2 x cycles)
 *   IWin         : (dispatched + issued) / (2 x issue width x cycles)
 *   LSQ          : memory ops issued / (AGEN units x cycles)
 *   L1D          : accesses / (ports x cycles)
 *   L1I          : block fetches / cycles
 *   FrontEnd     : uops fetched / (fetch width x cycles)
 */

#pragma once

#include <cstdint>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "sim/bpred.hh"
#include "sim/machine.hh"
#include "sim/mem.hh"
#include "sim/structures.hh"
#include "sim/uop.hh"

namespace ramp {
namespace sim {

/** Cumulative whole-run statistics. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t fetched = 0;
    std::uint64_t retired = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;

    std::uint64_t branches = 0;       ///< Resolved conditional branches.
    std::uint64_t mispredicts = 0;    ///< Includes RAS mispredicts.
    std::uint64_t ras_returns = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /** Retired micro-ops per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(retired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Mispredicts per resolved control op. */
    double mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/**
 * One measurement interval: cycle count plus the per-structure
 * activity factors the power and reliability models consume
 * (paper Section 3.6 -- instantaneous values per interval).
 */
struct ActivitySample
{
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    PerStructure<double> activity{};  ///< alpha per structure, [0,1].

    double ipc() const
    {
        return cycles ? static_cast<double>(retired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The out-of-order core. */
class Core
{
  public:
    /**
     * @param cfg Machine configuration (validated on construction).
     * @param source Micro-op stream; must outlive the core.
     */
    Core(const MachineConfig &cfg, UopSource &source);

    /** Advance the machine by `cycles` clock ticks. */
    void run(std::uint64_t cycles);

    /**
     * Advance until `uops` more micro-ops retire (or a safety cycle
     * bound of 1000 cycles per uop is hit, which trips a warning).
     */
    void runUops(std::uint64_t uops);

    /** Whole-run statistics. */
    const CoreStats &stats() const { return stats_; }

    /**
     * Close the current measurement interval: return activity factors
     * accumulated since the previous call and start a new interval.
     */
    ActivitySample takeInterval();

    /** Discard all statistics (machine state is kept). */
    void resetStats();

    /**
     * Switch the DVS operating point at run time (used by the
     * closed-loop DRM/DTM controllers). Microarchitectural knobs
     * cannot change mid-run; only clock and supply can.
     */
    void setOperatingPoint(double frequency_ghz, double voltage_v);

    const MachineConfig &config() const { return cfg_; }
    const MemorySystem &memory() const { return mem_; }

    /** Current cycle (for tests). */
    std::uint64_t now() const { return cycle_; }

  private:
    enum class State : std::uint8_t {
        Waiting,   ///< In the window, operands not ready.
        Issued,    ///< Executing; done at done_cycle.
        Done,      ///< Completed, awaiting in-order retire.
    };

    struct WinEntry
    {
        Uop uop;
        std::uint64_t seq = 0;
        std::uint64_t done_cycle = 0;
        State state = State::Waiting;
        bool in_lsq = false;
        /** Outstanding (not yet completed) producers. */
        std::uint8_t remaining = 0;
        /** Seqs of in-flight consumers to wake on completion. */
        std::vector<std::uint64_t> consumers;
    };

    void stepCycle();
    void retire();
    void complete();
    void issue();
    void dispatch();
    void fetch();

    const WinEntry *findEntry(std::uint64_t seq) const;

    /** Ring-buffer slot for a window sequence number. */
    WinEntry &slot(std::uint64_t seq)
    {
        return window_[seq % window_.size()];
    }
    const WinEntry &slot(std::uint64_t seq) const
    {
        return window_[seq % window_.size()];
    }

    MachineConfig cfg_;
    UopSource &source_;
    MemorySystem mem_;
    BimodalAgree bpred_;
    ReturnAddressStack ras_;

    std::uint64_t cycle_ = 0;
    std::uint64_t next_seq_ = 1;   ///< Seq of the next fetched uop.

    // Window ring: [head_seq_, tail_seq_) are live entries.
    std::vector<WinEntry> window_;
    std::uint64_t head_seq_ = 1;
    std::uint64_t tail_seq_ = 1;

    // Fetch -> dispatch buffer (decoupled front end).
    struct FetchedUop
    {
        Uop uop;
        std::uint64_t seq;
    };
    std::vector<FetchedUop> fetch_buffer_;

    // Fetch stall state.
    std::uint64_t fetch_resume_cycle_ = 0;  ///< I-miss / redirect wait.
    std::uint64_t redirect_seq_ = 0;  ///< Mispredicted ctrl op we wait on.
    bool have_pending_ = false;
    Uop pending_;                     ///< Uop stalled on an I-miss.
    std::uint64_t last_fetch_block_ = ~std::uint64_t{0};

    // Event-driven scheduling state: completions as a min-heap of
    // (done_cycle, seq); operand-ready entries as an ordered set so
    // issue selection stays oldest-first.
    using Completion = std::pair<std::uint64_t, std::uint64_t>;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions_;
    std::set<std::uint64_t> ready_;

    // Resource state.
    std::vector<std::uint64_t> int_fu_busy_;   ///< busy-until cycles.
    std::vector<std::uint64_t> fp_fu_busy_;
    std::vector<std::uint64_t> agen_busy_;
    std::uint32_t lsq_used_ = 0;
    std::uint32_t free_int_regs_ = 0;
    std::uint32_t free_fp_regs_ = 0;

    CoreStats stats_;

    // Interval accumulators for activity factors.
    struct IntervalAccum
    {
        std::uint64_t cycles = 0;
        std::uint64_t retired = 0;
        std::uint64_t int_fu_busy = 0;   ///< unit-cycles.
        std::uint64_t fp_fu_busy = 0;
        std::uint64_t int_reg_ops = 0;   ///< reads + writes.
        std::uint64_t fp_reg_ops = 0;
        std::uint64_t bpred_acc = 0;
        std::uint64_t iwin_ops = 0;      ///< dispatched + issued.
        std::uint64_t l1d_acc = 0;
        std::uint64_t l1i_acc = 0;
        std::uint64_t fetched = 0;
    };
    IntervalAccum interval_;
};

} // namespace sim
} // namespace ramp

