#include "sim/mem.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ramp {
namespace sim {

MemorySystem::MemorySystem(const MachineConfig &cfg)
    : cfg_(cfg),
      l1d_(cfg.l1d_size_kb, cfg.l1d_assoc, cfg.line_bytes),
      l1i_(cfg.l1i_size_kb, cfg.l1i_assoc, cfg.line_bytes),
      l2_(cfg.l2_size_kb, cfg.l2_assoc, cfg.line_bytes),
      bank_busy_until_(cfg.mem_banks, 0),
      mshr_busy_until_(cfg.l1d_mshrs, 0)
{
}

std::uint64_t
MemorySystem::accessL2(std::uint64_t addr, bool is_write,
                       std::uint64_t earliest, bool &l2_hit)
{
    // Single L2 port: serialize behind earlier requests.
    const std::uint64_t start = std::max(earliest, l2_port_busy_until_);
    // The port is occupied for one (core) cycle per request; the
    // latency itself is pipelined.
    l2_port_busy_until_ = start + 1;

    const bool hit = l2_.access(addr, is_write) == CacheOutcome::Hit;
    l2_hit = hit;
    if (hit)
        return start + cfg_.l2HitCycles();

    // L2 miss: go to the interleaved main memory. The bank is chosen
    // by line address; each line transfer occupies its bank.
    ++mem_accesses_;
    const std::uint64_t line = addr / cfg_.line_bytes;
    auto &bank = bank_busy_until_[line % bank_busy_until_.size()];
    const std::uint64_t mem_start =
        std::max(start + cfg_.l2HitCycles(), bank);
    bank = mem_start + cfg_.memOccupancyCycles();
    return mem_start + cfg_.memLatencyCycles();
}

MemAccessResult
MemorySystem::fetchAccess(std::uint64_t pc, std::uint64_t cycle)
{
    MemAccessResult res;
    if (l1i_.access(pc, false) == CacheOutcome::Hit) {
        res.done_cycle = cycle; // hit latency hidden by the pipeline
        res.level = MemLevel::L1;
        return res;
    }
    bool l2_hit = false;
    res.done_cycle = accessL2(pc, false, cycle, l2_hit);
    res.level = l2_hit ? MemLevel::L2 : MemLevel::Memory;
    return res;
}

bool
MemorySystem::mshrAvailable(std::uint64_t cycle) const
{
    for (auto busy : mshr_busy_until_)
        if (busy <= cycle)
            return true;
    return false;
}

unsigned
MemorySystem::mshrInUse(std::uint64_t cycle) const
{
    unsigned used = 0;
    for (auto busy : mshr_busy_until_)
        used += busy > cycle;
    return used;
}

MemAccessResult
MemorySystem::dataAccess(std::uint64_t addr, bool is_write,
                         std::uint64_t cycle)
{
    MemAccessResult res;
    if (l1d_.access(addr, is_write) == CacheOutcome::Hit) {
        res.done_cycle = cycle + cfg_.l1_hit_cycles;
        res.level = MemLevel::L1;
        return res;
    }

    // Miss: occupy an MSHR until the fill returns.
    bool l2_hit = false;
    const std::uint64_t done =
        accessL2(addr, is_write, cycle + cfg_.l1_hit_cycles, l2_hit);
    res.done_cycle = done;
    res.level = l2_hit ? MemLevel::L2 : MemLevel::Memory;

    auto slot = std::min_element(mshr_busy_until_.begin(),
                                 mshr_busy_until_.end());
    if (*slot > cycle)
        util::panic("dataAccess issued with no free MSHR");
    *slot = done;
    return res;
}

void
MemorySystem::setFrequency(double frequency_ghz)
{
    cfg_.frequency_ghz = frequency_ghz;
}

void
MemorySystem::reset()
{
    l1d_.reset();
    l1i_.reset();
    l2_.reset();
    l2_port_busy_until_ = 0;
    std::fill(bank_busy_until_.begin(), bank_busy_until_.end(), 0);
    std::fill(mshr_busy_until_.begin(), mshr_busy_until_.end(), 0);
    mem_accesses_ = 0;
}

} // namespace sim
} // namespace ramp
