/**
 * @file
 * Branch prediction: 2KB bimodal-agree predictor plus a 32-entry
 * return-address stack (paper Table 1).
 *
 * The "agree" scheme stores, per static branch, a bias bit (set the
 * first time the branch is seen, to its first direction) and predicts
 * whether the dynamic outcome *agrees* with the bias. Counters
 * saturate toward agreement, which converts negative interference
 * between aliased branches into neutral interference.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ramp {
namespace sim {

/** Bimodal-agree conditional branch predictor. */
class BimodalAgree
{
  public:
    /**
     * @param entries Number of 2-bit counters; must be a power of two
     *        (8192 counters = 2KB in the base machine).
     */
    explicit BimodalAgree(std::uint32_t entries);

    /** Predict the direction of the branch at pc. */
    bool predict(std::uint64_t pc);

    /**
     * Update with the resolved outcome.
     * @return true iff the earlier prediction for this pc, recomputed
     *         now, would have been correct (callers usually compare
     *         their own saved prediction instead).
     */
    void update(std::uint64_t pc, bool taken);

    /** Counter table size. */
    std::uint32_t entries() const { return entries_; }

  private:
    std::uint32_t index(std::uint64_t pc) const;

    std::uint32_t entries_;
    std::uint32_t mask_;
    std::vector<std::uint8_t> counters_;  ///< 2-bit agree counters.
    /** Per-static-branch bias bit (first-seen direction). Keyed by pc;
     *  models the compiler-provided static hint of the agree scheme. */
    std::unordered_map<std::uint64_t, bool> bias_;
};

/** Fixed-depth return-address stack with wrap-around overwrite. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::uint32_t entries);

    /** Push a return address (on call). */
    void push(std::uint64_t addr);

    /**
     * Pop the predicted return address (on return).
     * Returns 0 when the stack is empty (forced mispredict upstream).
     */
    std::uint64_t pop();

    /** Current valid depth. */
    std::uint32_t depth() const { return depth_; }

    /** Capacity. */
    std::uint32_t entries() const
    {
        return static_cast<std::uint32_t>(stack_.size());
    }

  private:
    std::vector<std::uint64_t> stack_;
    std::uint32_t top_ = 0;    ///< Next push slot.
    std::uint32_t depth_ = 0;  ///< Valid entries (<= capacity).
};

} // namespace sim
} // namespace ramp

