/**
 * @file
 * Set-associative cache with true LRU replacement and write-allocate,
 * writeback semantics. Used for L1I, L1D, and the unified L2.
 *
 * The cache tracks *contents* exactly (tags per set, LRU order) so
 * that hit/miss behaviour responds to the workload's real address
 * stream; timing (ports, MSHRs, bank occupancy) is modelled by the
 * MemorySystem that owns the caches.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace ramp {
namespace sim {

/** Outcome of a cache lookup. */
enum class CacheOutcome : std::uint8_t {
    Hit,
    Miss,
};

/** Tag-exact set-associative LRU cache model. */
class Cache
{
  public:
    /**
     * @param size_kb Capacity in KB.
     * @param assoc Associativity (ways).
     * @param line_bytes Line size; power of two.
     */
    Cache(std::uint32_t size_kb, std::uint32_t assoc,
          std::uint32_t line_bytes);

    /**
     * Access the line containing addr; allocates on miss (LRU victim).
     * @param is_write Marks the line dirty on hit/fill.
     * @return Hit or Miss.
     */
    CacheOutcome access(std::uint64_t addr, bool is_write);

    /**
     * Probe without updating state (for tests and occupancy checks).
     */
    bool contains(std::uint64_t addr) const;

    /** Invalidate everything (used between experiment runs). */
    void reset();

    std::uint32_t sets() const { return sets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t lineBytes() const { return line_bytes_; }

    /** Accesses since construction/reset. */
    std::uint64_t accesses() const { return accesses_; }

    /** Misses since construction/reset. */
    std::uint64_t misses() const { return misses_; }

    /** Dirty lines written back on eviction since reset. */
    std::uint64_t writebacks() const { return writebacks_; }

    /** Miss ratio; 0 when no accesses. */
    double missRatio() const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;  ///< Higher = more recently used.
    };

    std::uint32_t set_index(std::uint64_t addr) const;
    std::uint64_t tag_of(std::uint64_t addr) const;

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t line_bytes_;
    std::uint32_t line_shift_;
    std::vector<Line> lines_;  ///< sets_ * assoc_, set-major.
    std::uint64_t tick_ = 0;   ///< LRU clock.

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace sim
} // namespace ramp

