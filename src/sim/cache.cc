#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace ramp {
namespace sim {

namespace {

std::uint32_t
computeSets(std::uint32_t size_kb, std::uint32_t assoc,
            std::uint32_t line_bytes)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        util::fatal("cache line size must be a power of two");
    if (assoc == 0)
        util::fatal("cache associativity must be at least 1");
    const std::uint32_t sets = size_kb * 1024 / (assoc * line_bytes);
    if (sets == 0 || (sets & (sets - 1)) != 0)
        util::fatal(util::cat("cache set count must be a power of two, "
                              "got ", sets));
    return sets;
}

} // namespace

Cache::Cache(std::uint32_t size_kb, std::uint32_t assoc,
             std::uint32_t line_bytes)
    : sets_(computeSets(size_kb, assoc, line_bytes)), assoc_(assoc),
      line_bytes_(line_bytes),
      line_shift_(static_cast<std::uint32_t>(std::countr_zero(line_bytes))),
      lines_(static_cast<std::size_t>(sets_) * assoc_)
{
}

std::uint32_t
Cache::set_index(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>((addr >> line_shift_) & (sets_ - 1));
}

std::uint64_t
Cache::tag_of(std::uint64_t addr) const
{
    return addr >> line_shift_;
}

CacheOutcome
Cache::access(std::uint64_t addr, bool is_write)
{
    ++accesses_;
    ++tick_;
    const std::uint64_t tag = tag_of(addr);
    Line *set = &lines_[static_cast<std::size_t>(set_index(addr)) * assoc_];

    Line *victim = &set[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty = line.dirty || is_write;
            return CacheOutcome::Hit;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++misses_;
    if (victim->valid && victim->dirty)
        ++writebacks_;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru = tick_;
    return CacheOutcome::Miss;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t tag = tag_of(addr);
    const Line *set =
        &lines_[static_cast<std::size_t>(set_index(addr)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    tick_ = 0;
    accesses_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

double
Cache::missRatio() const
{
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
}

} // namespace sim
} // namespace ramp
