/**
 * @file
 * Machine configuration: the paper's Table 1 base processor plus the
 * adaptation knobs used by DRM (instruction window size, functional
 * unit counts, voltage, frequency).
 */

#pragma once

#include <cstdint>
#include <string>

namespace ramp {
namespace sim {

/**
 * Full machine description. Defaults reproduce Table 1 of the paper:
 * 65 nm, 1.0 V, 4.0 GHz, 8-wide fetch/retire, 6 INT + 4 FP + 2 AGEN
 * units, 128-entry instruction window, 192+192 physical registers,
 * 32-entry memory queue, 2KB bimodal-agree predictor with a 32-entry
 * RAS, 64KB/2-way L1D (2 ports, 12 MSHRs), 32KB/2-way L1I, 1MB/4-way
 * L2, and contentionless latencies of 2 / 20 / 102 cycles at 4 GHz.
 *
 * Off-chip latencies (L2, memory) are physical times: the cycle counts
 * above hold at the base 4 GHz clock and are rescaled when DVS changes
 * the frequency, which is why DVS performance is sub-linear in f.
 */
struct MachineConfig
{
    // --- Technology / operating point -------------------------------
    double frequency_ghz = 4.0;  ///< Core clock.
    double voltage_v = 1.0;      ///< Supply voltage.

    // --- Front end ---------------------------------------------------
    std::uint32_t fetch_width = 8;    ///< Micro-ops fetched per cycle.
    std::uint32_t retire_width = 8;   ///< Micro-ops retired per cycle.
    std::uint32_t fetch_buffer = 16;  ///< Fetch->dispatch buffer depth.
    /** Pipeline refill penalty after a branch mispredict (cycles). */
    std::uint32_t mispredict_penalty = 8;
    /**
     * Fetch duty cycle in eighths: fetch runs in x of every 8 cycles
     * (8 = no throttling). The classic DTM fetch-toggling response
     * (Skadron et al., cited by the paper): throttling the front end
     * starves the machine, cutting activity and therefore power and
     * temperature, without touching voltage or frequency.
     */
    std::uint32_t fetch_duty_x8 = 8;

    // --- Window / registers / queues ---------------------------------
    std::uint32_t window_size = 128;  ///< Unified issue queue + ROB.
    std::uint32_t int_regs = 192;     ///< Physical integer registers.
    std::uint32_t fp_regs = 192;      ///< Physical FP registers.
    std::uint32_t mem_queue = 32;     ///< Load-store queue entries.

    // --- Functional units (the DRM "Arch" knobs) ---------------------
    std::uint32_t num_int_alu = 6;  ///< Integer units.
    std::uint32_t num_fpu = 4;      ///< FP units.
    std::uint32_t num_agen = 2;     ///< Address-generation units.

    // --- Operation latencies (cycles, frequency-independent) ---------
    std::uint32_t lat_int_add = 1;
    std::uint32_t lat_int_mul = 7;
    std::uint32_t lat_int_div = 12;  ///< Not pipelined.
    std::uint32_t lat_fp = 4;
    std::uint32_t lat_fp_div = 12;   ///< Not pipelined.

    // --- Branch predictor ---------------------------------------------
    std::uint32_t bpred_entries = 8192;  ///< 2KB of 2-bit counters.
    std::uint32_t ras_entries = 32;      ///< Return-address stack.

    // --- Memory hierarchy ---------------------------------------------
    std::uint32_t l1d_size_kb = 64;
    std::uint32_t l1d_assoc = 2;
    std::uint32_t l1d_ports = 2;
    std::uint32_t l1d_mshrs = 12;
    std::uint32_t l1i_size_kb = 32;
    std::uint32_t l1i_assoc = 2;
    std::uint32_t l2_size_kb = 1024;
    std::uint32_t l2_assoc = 4;
    std::uint32_t l2_mshrs = 12;
    std::uint32_t line_bytes = 64;

    /** L1 hit time in cycles (on-chip: scales with the clock). */
    std::uint32_t l1_hit_cycles = 2;
    /** L2 hit time in ns (20 cycles at the 4 GHz base clock). */
    double l2_hit_ns = 5.0;
    /** Main memory latency in ns (102 cycles at 4 GHz). */
    double mem_latency_ns = 25.5;
    /** Memory channel occupancy per line in ns (16B/cycle, 4-way
     *  interleaved at 4 GHz: a 64B line occupies one bank 1 ns). */
    double mem_occupancy_ns = 1.0;
    std::uint32_t mem_banks = 4;

    /**
     * When true (default), off-chip latencies keep their Table 1
     * *cycle* counts at any clock -- i.e. the memory system speeds up
     * and slows down with the core, as in the paper's RSIM setup
     * (Figure 2's low-IPC apps gain ~19% from frequency alone, which
     * is only possible if memory scales too). When false, off-chip
     * latencies are the physical times above and their cycle counts
     * change with frequency (realistic DVS; ablated in the benches).
     */
    bool offchip_scales_with_clock = true;

    /** Issue width: the sum of all active functional units (paper
     *  Section 6.1 -- issue width adapts with the FU count). */
    std::uint32_t issueWidth() const
    {
        return num_int_alu + num_fpu + num_agen;
    }

    /** L2 hit latency in cycles at the configured frequency. */
    std::uint32_t l2HitCycles() const;

    /** Main memory latency in cycles at the configured frequency. */
    std::uint32_t memLatencyCycles() const;

    /** Memory bank occupancy in cycles at the configured frequency. */
    std::uint32_t memOccupancyCycles() const;

    /** Validate invariants; calls util::fatal on a bad configuration. */
    void validate() const;

    /** Short human-readable description, e.g. "w128/6ALU/4FPU@4.0GHz". */
    std::string describe() const;
};

/** Base (Table 1) machine. */
MachineConfig baseMachine();

} // namespace sim
} // namespace ramp

