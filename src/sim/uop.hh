/**
 * @file
 * The micro-op vocabulary consumed by the cycle-level core model.
 *
 * The core is trace-driven: a UopSource (in practice the synthetic
 * workload generator, src/workload) supplies a stream of micro-ops
 * carrying operation class, register dependence distances, memory
 * addresses, and branch identity/outcome. The core applies real
 * structural modelling on top -- a live branch predictor, live caches,
 * finite window/queues/functional units -- so timing emerges from the
 * machine, not from the trace.
 */

#pragma once

#include <cstdint>

namespace ramp {
namespace sim {

/** Operation classes with distinct latency/resource behaviour. */
enum class UopClass : std::uint8_t {
    IntAlu,  ///< 1-cycle integer op (add, logic, compare, shift).
    IntMul,  ///< 7-cycle integer multiply (pipelined).
    IntDiv,  ///< 12-cycle integer divide (not pipelined).
    FpOp,    ///< 4-cycle FP op (add/mul/etc., pipelined).
    FpDiv,   ///< 12-cycle FP divide (not pipelined).
    Load,    ///< Data-cache load (address generation + access).
    Store,   ///< Data-cache store (address generation + access).
    Branch,  ///< Conditional branch.
    Call,    ///< Call: pushes the return-address stack.
    Return,  ///< Return: pops the return-address stack.
    NumClasses,
};

/** Number of micro-op classes. */
constexpr std::size_t num_uop_classes =
    static_cast<std::size_t>(UopClass::NumClasses);

/** True for classes executed on the integer units. */
constexpr bool
isIntClass(UopClass c)
{
    return c == UopClass::IntAlu || c == UopClass::IntMul ||
           c == UopClass::IntDiv;
}

/** True for classes executed on the FP units. */
constexpr bool
isFpClass(UopClass c)
{
    return c == UopClass::FpOp || c == UopClass::FpDiv;
}

/** True for loads and stores. */
constexpr bool
isMemClass(UopClass c)
{
    return c == UopClass::Load || c == UopClass::Store;
}

/** True for control transfers that consult the branch predictor. */
constexpr bool
isCtrlClass(UopClass c)
{
    return c == UopClass::Branch || c == UopClass::Call ||
           c == UopClass::Return;
}

/**
 * One micro-op as produced by a UopSource.
 *
 * Register dependences are expressed as *distances*: src_dist[i] = d
 * means operand i is produced by the micro-op fetched d positions
 * earlier (d == 0 means the operand is already available, e.g. an
 * immediate or a long-dead value).
 */
struct Uop
{
    UopClass cls = UopClass::IntAlu;

    /** Producer distances for up to two source operands; 0 = ready. */
    std::uint16_t src_dist[2] = {0, 0};

    /** Fetch program counter (drives I-cache and predictor indexing). */
    std::uint64_t pc = 0;

    /** Effective address for loads/stores (byte address). */
    std::uint64_t addr = 0;

    /** Actual direction for control ops (taken/not-taken). */
    bool taken = false;

    /** True if the op writes an FP register (for FP regfile activity). */
    bool writes_fp = false;

    /** True if the op writes an integer register. */
    bool writes_int = false;
};

/**
 * Producer of the micro-op stream. Implementations must be
 * deterministic functions of their construction-time seed.
 */
class UopSource
{
  public:
    virtual ~UopSource() = default;

    /**
     * Produce the next micro-op in program (fetch) order.
     * The source is conceptually infinite; the core decides when to
     * stop simulating.
     */
    virtual Uop next() = 0;
};

} // namespace sim
} // namespace ramp

