#include "sim/structures.hh"

#include "util/logging.hh"

namespace ramp {
namespace sim {

namespace {

struct StructureDesc
{
    std::string_view name;
    double area_mm2;
};

// Areas follow the relative proportions of the MIPS R10000 die photo
// (exec units and caches dominate), scaled so the core totals the
// paper's 20.25 mm^2 at 65 nm. The values tile the 4.5 mm x 4.5 mm
// die exactly in four rows (see thermal/floorplan.cc):
//   row 0 (h=1.0): L1I 1.8 | Bpred 1.4 | FrontEnd 1.3
//   row 1 (h=1.3): IntReg 1.2 | IntALU 2.4 | IWin 2.25
//   row 2 (h=1.3): FPReg 1.2 | FPU 3.6 | LSQ 1.05
//   row 3 (h=0.9): L1D 4.05
constexpr std::array<StructureDesc, num_structures> descs = {{
    {"IntALU", 2.40},
    {"FPU", 3.60},
    {"IntReg", 1.20},
    {"FPReg", 1.20},
    {"Bpred", 1.40},
    {"IWin", 2.25},
    {"LSQ", 1.05},
    {"L1D", 4.05},
    {"L1I", 1.80},
    {"FrontEnd", 1.30},
}};

} // namespace

std::string_view
structureName(StructureId id)
{
    const auto i = structureIndex(id);
    if (i >= num_structures)
        util::panic("structureName: bad structure id");
    return descs[i].name;
}

double
structureArea(StructureId id)
{
    const auto i = structureIndex(id);
    if (i >= num_structures)
        util::panic("structureArea: bad structure id");
    return descs[i].area_mm2;
}

double
totalCoreArea()
{
    double total = 0.0;
    for (const auto &d : descs)
        total += d.area_mm2;
    return total;
}

} // namespace sim
} // namespace ramp
