#include "sim/bpred.hh"

#include "util/logging.hh"

namespace ramp {
namespace sim {

BimodalAgree::BimodalAgree(std::uint32_t entries)
    : entries_(entries), mask_(entries - 1),
      counters_(entries, 2) // weakly agree
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        util::fatal("branch predictor entries must be a power of two");
}

std::uint32_t
BimodalAgree::index(std::uint64_t pc) const
{
    // Branch PCs are word-aligned; drop the low bits before indexing.
    return static_cast<std::uint32_t>((pc >> 2) & mask_);
}

bool
BimodalAgree::predict(std::uint64_t pc)
{
    auto it = bias_.find(pc);
    // Unseen branch: predict the conventional static not-taken.
    const bool bias = it != bias_.end() ? it->second : false;
    const bool agree = counters_[index(pc)] >= 2;
    return agree ? bias : !bias;
}

void
BimodalAgree::update(std::uint64_t pc, bool taken)
{
    auto it = bias_.find(pc);
    if (it == bias_.end()) {
        // First resolution sets the bias bit; the counter keeps its
        // weakly-agree state, so the next prediction follows the bias.
        bias_.emplace(pc, taken);
        return;
    }
    const bool agrees = (taken == it->second);
    auto &ctr = counters_[index(pc)];
    if (agrees) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

ReturnAddressStack::ReturnAddressStack(std::uint32_t entries)
    : stack_(entries, 0)
{
    if (entries == 0)
        util::fatal("return-address stack needs at least one entry");
}

void
ReturnAddressStack::push(std::uint64_t addr)
{
    stack_[top_] = addr;
    top_ = (top_ + 1) % entries();
    if (depth_ < entries())
        ++depth_;
}

std::uint64_t
ReturnAddressStack::pop()
{
    if (depth_ == 0)
        return 0;
    top_ = (top_ + entries() - 1) % entries();
    --depth_;
    return stack_[top_];
}

} // namespace sim
} // namespace ramp
