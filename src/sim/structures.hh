/**
 * @file
 * The on-chip structures RAMP tracks.
 *
 * The paper (Section 3) divides the processor into a small number of
 * architecture-level structures -- ALUs, FPUs, register files, branch
 * predictor, caches, load-store queue, instruction window -- and
 * applies each failure-mechanism model to a structure as an aggregate.
 * This enumeration is the shared vocabulary between the timing
 * simulator (which reports per-structure activity), the power model,
 * the thermal floorplan, and the RAMP reliability engine.
 *
 * Areas correspond to a MIPS R10000-like core scaled to 65 nm:
 * 4.5 mm x 4.5 mm = 20.25 mm^2, excluding the L2 cache (the paper
 * models L2 timing but not L2 reliability, since its temperature is
 * too low to matter).
 */

#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace ramp {
namespace sim {

/** Architecture-level structures modelled for reliability. */
enum class StructureId : std::size_t {
    IntAlu,   ///< Integer execution units (6 in the base machine).
    Fpu,      ///< Floating-point units (4 in the base machine).
    IntReg,   ///< Integer physical register file (192 regs).
    FpReg,    ///< FP physical register file (192 regs).
    Bpred,    ///< Branch predictor (2KB bimodal-agree + 32-entry RAS).
    IWin,     ///< Unified instruction window / reorder buffer (128).
    Lsq,      ///< Memory (load-store) queue, 32 entries.
    L1D,      ///< 64KB 2-way data cache.
    L1I,      ///< 32KB 2-way instruction cache.
    FrontEnd, ///< Fetch/decode/rename logic and result buses.
    NumStructures,
};

/** Number of modelled structures. */
constexpr std::size_t num_structures =
    static_cast<std::size_t>(StructureId::NumStructures);

/** Iterate all structure ids. */
constexpr std::array<StructureId, num_structures>
allStructures()
{
    std::array<StructureId, num_structures> ids{};
    for (std::size_t i = 0; i < num_structures; ++i)
        ids[i] = static_cast<StructureId>(i);
    return ids;
}

/** Index of a structure id into dense per-structure arrays. */
constexpr std::size_t
structureIndex(StructureId id)
{
    return static_cast<std::size_t>(id);
}

/** Human-readable structure name. */
std::string_view structureName(StructureId id);

/**
 * Structure area in mm^2 for the modelled 65 nm core. Areas sum to
 * 20.25 mm^2 (the paper's 20.2 mm^2 core, 4.5 mm x 4.5 mm).
 */
double structureArea(StructureId id);

/** Total core area in mm^2 (sum over structures). */
double totalCoreArea();

/** Convenience alias: a dense value-per-structure array. */
template <typename T>
using PerStructure = std::array<T, num_structures>;

} // namespace sim
} // namespace ramp

