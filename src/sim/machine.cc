#include "sim/machine.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace ramp {
namespace sim {

namespace {

std::uint32_t
nsToCycles(double ns, double frequency_ghz)
{
    const double cycles = ns * frequency_ghz;
    return cycles < 1.0 ? 1 : static_cast<std::uint32_t>(std::lround(cycles));
}

} // namespace

namespace {

/** The clock the Table 1 cycle counts are quoted at. */
constexpr double base_clock_ghz = 4.0;

} // namespace

std::uint32_t
MachineConfig::l2HitCycles() const
{
    return nsToCycles(l2_hit_ns, offchip_scales_with_clock
                                     ? base_clock_ghz
                                     : frequency_ghz);
}

std::uint32_t
MachineConfig::memLatencyCycles() const
{
    return nsToCycles(mem_latency_ns, offchip_scales_with_clock
                                          ? base_clock_ghz
                                          : frequency_ghz);
}

std::uint32_t
MachineConfig::memOccupancyCycles() const
{
    return nsToCycles(mem_occupancy_ns, offchip_scales_with_clock
                                            ? base_clock_ghz
                                            : frequency_ghz);
}

void
MachineConfig::validate() const
{
    if (frequency_ghz <= 0.0)
        util::fatal(util::cat("frequency must be positive, got ",
                              frequency_ghz, " GHz"));
    if (voltage_v <= 0.0)
        util::fatal(util::cat("voltage must be positive, got ",
                              voltage_v, " V"));
    if (fetch_width == 0 || retire_width == 0)
        util::fatal("fetch and retire width must be at least 1");
    if (fetch_duty_x8 == 0 || fetch_duty_x8 > 8)
        util::fatal("fetch duty cycle must be 1..8 eighths");
    if (window_size == 0)
        util::fatal("instruction window must have at least 1 entry");
    if (mem_queue == 0)
        util::fatal("memory queue must have at least 1 entry");
    if (num_int_alu == 0)
        util::fatal("machine needs at least one integer ALU");
    if (num_fpu == 0)
        util::fatal("machine needs at least one FPU");
    if (num_agen == 0)
        util::fatal("machine needs at least one address-generation unit");
    if (l1d_mshrs == 0 || l2_mshrs == 0)
        util::fatal("caches need at least one MSHR");
    if ((line_bytes & (line_bytes - 1)) != 0 || line_bytes == 0)
        util::fatal("cache line size must be a power of two");
    auto pow2_sets = [&](std::uint32_t size_kb, std::uint32_t assoc) {
        const std::uint32_t sets = size_kb * 1024 / (assoc * line_bytes);
        return sets != 0 && (sets & (sets - 1)) == 0;
    };
    if (!pow2_sets(l1d_size_kb, l1d_assoc) ||
        !pow2_sets(l1i_size_kb, l1i_assoc) ||
        !pow2_sets(l2_size_kb, l2_assoc)) {
        util::fatal("cache set counts must be powers of two");
    }
}

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << "w" << window_size << "/" << num_int_alu << "ALU/" << num_fpu
       << "FPU@";
    os.precision(2);
    os << std::fixed << frequency_ghz << "GHz," << voltage_v << "V";
    if (fetch_duty_x8 < 8)
        os << ",duty" << fetch_duty_x8 << "/8";
    return os.str();
}

MachineConfig
baseMachine()
{
    return MachineConfig{};
}

} // namespace sim
} // namespace ramp
