#include "sim/core.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace sim {

Core::Core(const MachineConfig &cfg, UopSource &source)
    : cfg_(cfg), source_(source), mem_(cfg), bpred_(cfg.bpred_entries),
      ras_(cfg.ras_entries), window_(cfg.window_size),
      int_fu_busy_(cfg.num_int_alu, 0), fp_fu_busy_(cfg.num_fpu, 0),
      agen_busy_(cfg.num_agen, 0)
{
    cfg_.validate();
    fetch_buffer_.reserve(cfg_.fetch_buffer);
    // The rename pool: physical registers beyond the 64+64 architected
    // state. The window can never hold more writers than this.
    free_int_regs_ = cfg_.int_regs > 64 ? cfg_.int_regs - 64 : 1;
    free_fp_regs_ = cfg_.fp_regs > 64 ? cfg_.fp_regs - 64 : 1;
}

const Core::WinEntry *
Core::findEntry(std::uint64_t seq) const
{
    if (seq < head_seq_ || seq >= tail_seq_)
        return nullptr;
    return &slot(seq);
}

namespace {

/** Per-run-call throughput counters, fed from CoreStats deltas so
 *  the per-cycle loop itself stays untouched. */
struct CoreMetrics
{
    telemetry::Counter run_calls = telemetry::counter("sim.run_calls");
    telemetry::Counter cycles = telemetry::counter("sim.cycles");
    telemetry::Counter fetched =
        telemetry::counter("sim.uops_fetched");
    telemetry::Counter issued = telemetry::counter("sim.uops_issued");
    telemetry::Counter retired =
        telemetry::counter("sim.uops_retired");
    telemetry::Counter branches = telemetry::counter("sim.branches");
    telemetry::Counter mispredicts =
        telemetry::counter("sim.mispredicts");
    telemetry::Counter intervals = telemetry::counter("sim.intervals");
    /** Retired IPC of each closed measurement interval. */
    telemetry::Histogram interval_ipc =
        telemetry::histogram("sim.interval_ipc", 0.0, 8.0, 32);
    /** L1D MSHR occupancy sampled when an interval closes. */
    telemetry::Histogram mshr_occupancy =
        telemetry::histogram("sim.mshr_occupancy", 0.0, 16.0, 16);
};

CoreMetrics &
coreMetrics()
{
    static CoreMetrics m;
    return m;
}

} // namespace

void
Core::run(std::uint64_t cycles)
{
    auto &metrics = coreMetrics();
    metrics.run_calls.add();
    const CoreStats before = stats_;
    for (std::uint64_t i = 0; i < cycles; ++i)
        stepCycle();
    metrics.cycles.add(stats_.cycles - before.cycles);
    metrics.fetched.add(stats_.fetched - before.fetched);
    metrics.issued.add(stats_.issued - before.issued);
    metrics.retired.add(stats_.retired - before.retired);
    metrics.branches.add(stats_.branches - before.branches);
    metrics.mispredicts.add(stats_.mispredicts - before.mispredicts);
}

void
Core::runUops(std::uint64_t uops)
{
    auto &metrics = coreMetrics();
    metrics.run_calls.add();
    const CoreStats before = stats_;

    const std::uint64_t target = stats_.retired + uops;
    const std::uint64_t cycle_bound = cycle_ + uops * 1000 + 10000;
    while (stats_.retired < target) {
        if (cycle_ >= cycle_bound) {
            util::warn(util::cat("runUops safety bound hit at cycle ",
                                 cycle_, "; machine may be deadlocked"));
            break;
        }
        stepCycle();
    }

    metrics.cycles.add(stats_.cycles - before.cycles);
    metrics.fetched.add(stats_.fetched - before.fetched);
    metrics.issued.add(stats_.issued - before.issued);
    metrics.retired.add(stats_.retired - before.retired);
    metrics.branches.add(stats_.branches - before.branches);
    metrics.mispredicts.add(stats_.mispredicts - before.mispredicts);
}

void
Core::stepCycle()
{
    complete();
    retire();
    issue();
    dispatch();
    fetch();

    ++interval_.cycles;
    ++stats_.cycles;
    ++cycle_;
}

void
Core::complete()
{
    while (!completions_.empty() &&
           completions_.top().first <= cycle_) {
        const std::uint64_t s = completions_.top().second;
        completions_.pop();
        WinEntry &e = slot(s);
        e.state = State::Done;

        // Wake consumers whose last outstanding producer this was.
        for (std::uint64_t c : e.consumers) {
            WinEntry &ce = slot(c);
            if (--ce.remaining == 0 && ce.state == State::Waiting)
                ready_.insert(c);
        }
        e.consumers.clear();

        if (isCtrlClass(e.uop.cls)) {
            ++stats_.branches;
            if (e.uop.cls == UopClass::Branch)
                bpred_.update(e.uop.pc, e.uop.taken);
            if (s == redirect_seq_) {
                ++stats_.mispredicts;
                redirect_seq_ = 0;
                fetch_resume_cycle_ = std::max(
                    fetch_resume_cycle_,
                    e.done_cycle + cfg_.mispredict_penalty);
            }
        }
    }
}

void
Core::retire()
{
    std::uint32_t n = 0;
    while (n < cfg_.retire_width && head_seq_ < tail_seq_) {
        WinEntry &e = slot(head_seq_);
        if (e.state != State::Done)
            break;
        if (e.in_lsq) {
            --lsq_used_;
            if (e.uop.cls == UopClass::Load)
                ++stats_.loads;
            else
                ++stats_.stores;
        }
        if (e.uop.writes_int)
            ++free_int_regs_;
        if (e.uop.writes_fp)
            ++free_fp_regs_;
        ++head_seq_;
        ++n;
        ++stats_.retired;
        ++interval_.retired;
    }
}

void
Core::issue()
{
    std::uint32_t issued = 0;
    std::uint32_t dports_used = 0;
    const std::uint32_t width = cfg_.issueWidth();

    auto find_free = [&](std::vector<std::uint64_t> &pool)
        -> std::uint64_t * {
        for (auto &busy : pool)
            if (busy <= cycle_)
                return &busy;
        return nullptr;
    };

    for (auto it = ready_.begin();
         it != ready_.end() && issued < width;) {
        const std::uint64_t s = *it;
        WinEntry &e = slot(s);

        const UopClass cls = e.uop.cls;
        if (isMemClass(cls)) {
            if (dports_used >= cfg_.l1d_ports ||
                !mem_.mshrAvailable(cycle_)) {
                ++it;
                continue;
            }
            auto *agen = find_free(agen_busy_);
            if (!agen) {
                ++it;
                continue;
            }
            *agen = cycle_ + 1;
            ++dports_used;
            ++interval_.l1d_acc;
            const auto res = mem_.dataAccess(
                e.uop.addr, cls == UopClass::Store, cycle_ + 1);
            e.done_cycle = res.done_cycle;
        } else if (isFpClass(cls)) {
            auto *fu = find_free(fp_fu_busy_);
            if (!fu) {
                ++it;
                continue;
            }
            if (cls == UopClass::FpDiv) {
                // Not pipelined: the unit is held for the full op.
                *fu = cycle_ + cfg_.lat_fp_div;
                e.done_cycle = cycle_ + cfg_.lat_fp_div;
                interval_.fp_fu_busy += cfg_.lat_fp_div;
            } else {
                *fu = cycle_ + 1;
                e.done_cycle = cycle_ + cfg_.lat_fp;
                interval_.fp_fu_busy += 1;
            }
        } else {
            // Integer and control ops share the integer units.
            auto *fu = find_free(int_fu_busy_);
            if (!fu) {
                ++it;
                continue;
            }
            std::uint32_t lat = cfg_.lat_int_add;
            bool pipelined = true;
            if (cls == UopClass::IntMul) {
                lat = cfg_.lat_int_mul;
            } else if (cls == UopClass::IntDiv) {
                lat = cfg_.lat_int_div;
                pipelined = false;
            }
            *fu = pipelined ? cycle_ + 1 : cycle_ + lat;
            e.done_cycle = cycle_ + lat;
            interval_.int_fu_busy += pipelined ? 1 : lat;
        }

        e.state = State::Issued;
        completions_.emplace(e.done_cycle, s);
        it = ready_.erase(it);
        ++issued;
        ++stats_.issued;
        ++interval_.iwin_ops;
    }
}

void
Core::dispatch()
{
    std::uint32_t n = 0;
    std::size_t consumed = 0;
    while (n < cfg_.fetch_width && consumed < fetch_buffer_.size()) {
        if (tail_seq_ - head_seq_ >= cfg_.window_size)
            break; // window full
        const FetchedUop &f = fetch_buffer_[consumed];
        const Uop &u = f.uop;

        if (isMemClass(u.cls) && lsq_used_ >= cfg_.mem_queue)
            break;
        if (u.writes_int && free_int_regs_ == 0)
            break;
        if (u.writes_fp && free_fp_regs_ == 0)
            break;

        if (f.seq != tail_seq_)
            util::panic("dispatch out of sequence");

        WinEntry &e = slot(tail_seq_);
        e.uop = u;
        e.seq = tail_seq_;
        e.state = State::Waiting;
        e.done_cycle = 0;
        e.in_lsq = false;
        e.remaining = 0;
        e.consumers.clear();

        std::uint32_t reads = 0;
        for (int i = 0; i < 2; ++i) {
            const std::uint16_t d = u.src_dist[i];
            if (d == 0 || d > f.seq)
                continue; // no register operand
            ++reads;
            const std::uint64_t p = f.seq - d;
            if (p < head_seq_)
                continue; // producer already retired
            WinEntry &pe = slot(p);
            if (pe.state != State::Done) {
                pe.consumers.push_back(f.seq);
                ++e.remaining;
            }
        }
        if (e.remaining == 0)
            ready_.insert(f.seq);

        if (isMemClass(u.cls)) {
            e.in_lsq = true;
            ++lsq_used_;
        }
        if (u.writes_int)
            --free_int_regs_;
        if (u.writes_fp)
            --free_fp_regs_;

        // Register-file activity: AGEN and integer/control ops read
        // the integer file; FP ops read the FP file.
        if (isFpClass(u.cls)) {
            interval_.fp_reg_ops += reads + (u.writes_fp ? 1 : 0);
            interval_.int_reg_ops += u.writes_int ? 1 : 0;
        } else {
            interval_.int_reg_ops += reads + (u.writes_int ? 1 : 0);
            interval_.fp_reg_ops += u.writes_fp ? 1 : 0;
        }

        ++tail_seq_;
        ++consumed;
        ++n;
        ++stats_.dispatched;
        ++interval_.iwin_ops;
    }
    if (consumed)
        fetch_buffer_.erase(fetch_buffer_.begin(),
                            fetch_buffer_.begin() +
                                static_cast<std::ptrdiff_t>(consumed));
}

void
Core::fetch()
{
    if (redirect_seq_ != 0 || cycle_ < fetch_resume_cycle_)
        return;
    // DTM fetch toggling: the front end runs fetch_duty_x8 of every
    // eight cycles.
    if ((cycle_ & 7) >= cfg_.fetch_duty_x8)
        return;

    for (std::uint32_t n = 0; n < cfg_.fetch_width; ++n) {
        if (fetch_buffer_.size() >= cfg_.fetch_buffer)
            return;

        Uop u;
        if (have_pending_) {
            u = pending_;
            have_pending_ = false;
        } else {
            u = source_.next();
        }

        // Instruction-cache access, once per new fetch block.
        const std::uint64_t block = u.pc / cfg_.line_bytes;
        if (block != last_fetch_block_) {
            ++interval_.l1i_acc;
            last_fetch_block_ = block;
            const auto res = mem_.fetchAccess(u.pc, cycle_);
            if (res.done_cycle > cycle_) {
                // I-miss: hold the uop and stall until the fill.
                pending_ = u;
                have_pending_ = true;
                fetch_resume_cycle_ = res.done_cycle;
                return;
            }
        }

        const std::uint64_t seq = next_seq_++;
        bool mispredicted = false;
        if (isCtrlClass(u.cls)) {
            ++interval_.bpred_acc;
            if (u.cls == UopClass::Branch) {
                mispredicted = bpred_.predict(u.pc) != u.taken;
            } else if (u.cls == UopClass::Call) {
                ras_.push(u.addr);
            } else { // Return
                ++stats_.ras_returns;
                mispredicted = ras_.pop() != u.addr;
            }
        }

        fetch_buffer_.push_back({u, seq});
        ++stats_.fetched;
        ++interval_.fetched;

        if (mispredicted) {
            // Trace-driven redirect model: stop fetching until the
            // mispredicted op resolves, then pay the refill penalty.
            redirect_seq_ = seq;
            return;
        }
    }
}

ActivitySample
Core::takeInterval()
{
    ActivitySample s;
    s.cycles = interval_.cycles;
    s.retired = interval_.retired;

    auto &metrics = coreMetrics();
    metrics.intervals.add();
    metrics.interval_ipc.add(s.ipc());
    metrics.mshr_occupancy.add(
        static_cast<double>(mem_.mshrInUse(cycle_)));

    const auto cyc = static_cast<double>(
        interval_.cycles ? interval_.cycles : 1);
    auto ratio = [&](double num, double denom_per_cycle) {
        const double v = num / (denom_per_cycle * cyc);
        return std::clamp(v, 0.0, 1.0);
    };

    using enum StructureId;
    auto &a = s.activity;
    a[structureIndex(IntAlu)] =
        ratio(static_cast<double>(interval_.int_fu_busy), cfg_.num_int_alu);
    a[structureIndex(Fpu)] =
        ratio(static_cast<double>(interval_.fp_fu_busy), cfg_.num_fpu);
    a[structureIndex(IntReg)] =
        ratio(static_cast<double>(interval_.int_reg_ops),
              3.0 * cfg_.fetch_width);
    a[structureIndex(FpReg)] =
        ratio(static_cast<double>(interval_.fp_reg_ops),
              3.0 * cfg_.fetch_width);
    a[structureIndex(Bpred)] =
        ratio(static_cast<double>(interval_.bpred_acc), 2.0);
    a[structureIndex(IWin)] =
        ratio(static_cast<double>(interval_.iwin_ops),
              2.0 * cfg_.issueWidth());
    // LSQ power activity is access-based (insert/issue CAM traffic),
    // not occupancy-based: a stalled full queue burns little dynamic
    // power.
    a[structureIndex(Lsq)] =
        ratio(static_cast<double>(interval_.l1d_acc), cfg_.num_agen);
    a[structureIndex(L1D)] =
        ratio(static_cast<double>(interval_.l1d_acc), cfg_.l1d_ports);
    a[structureIndex(L1I)] =
        ratio(static_cast<double>(interval_.l1i_acc), 1.0);
    a[structureIndex(FrontEnd)] =
        ratio(static_cast<double>(interval_.fetched), cfg_.fetch_width);

    interval_ = IntervalAccum{};
    return s;
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
    interval_ = IntervalAccum{};
}

void
Core::setOperatingPoint(double frequency_ghz, double voltage_v)
{
    if (frequency_ghz <= 0.0 || voltage_v <= 0.0)
        util::fatal("operating point must be positive");
    cfg_.frequency_ghz = frequency_ghz;
    cfg_.voltage_v = voltage_v;
    mem_.setFrequency(frequency_ghz);
}

} // namespace sim
} // namespace ramp
