/**
 * @file
 * Statistical application profiles.
 *
 * The paper evaluates nine applications (Table 2): three multimedia
 * (MPGdec, MP3dec, H263enc), three SpecInt (bzip2, gzip, twolf), and
 * three SpecFP (art, equake, ammp). We cannot ship SPEC binaries, so
 * each application is described by a statistical profile -- instruction
 * mix, dependence distances, branch behaviour, memory footprint and
 * access pattern, and (for the frame-oriented multimedia codecs) phase
 * structure. The profiles are calibrated so that the base Table 1
 * machine reproduces the paper's Table 2 IPC values; the calibration
 * is locked in by tests.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ramp {
namespace workload {

/** Application class, as grouped in the paper's Table 2. */
enum class AppClass : std::uint8_t {
    Multimedia,
    SpecInt,
    SpecFp,
};

/** Human-readable name for an application class. */
const char *appClassName(AppClass c);

/**
 * Micro-op class mix as fractions of the dynamic stream. Fractions
 * must be non-negative; anything left from 1.0 is attributed to plain
 * integer ALU ops.
 */
struct UopMix
{
    double int_mul = 0.0;
    double int_div = 0.0;
    double fp_op = 0.0;
    double fp_div = 0.0;
    double load = 0.0;
    double store = 0.0;
    double branch = 0.0;
    double call = 0.0;   ///< Call/return pair budget.

    /** Fraction left over for 1-cycle integer ops. */
    double intAlu() const;

    /** Validate that fractions are sane; fatal otherwise. */
    void validate() const;
};

/**
 * Data-side memory behaviour of one phase. Accesses are a three-way
 * mixture:
 *  - hot_frac go to a small hot region (stack, loop-carried state) --
 *    effectively always L1-resident;
 *  - random_frac are uniform-random within the working set (pointer
 *    chasing / hash tables);
 *  - the remainder walk the working set sequentially with
 *    `stride_bytes` (array streaming).
 */
struct MemBehavior
{
    /** Total data footprint in bytes (drives cache residency). */
    std::uint64_t working_set_bytes = 64 * 1024;
    /** Hot-region size in bytes. */
    std::uint64_t hot_bytes = 8 * 1024;
    /** Fraction of accesses landing in the hot region. */
    double hot_frac = 0.6;
    /** Fraction of accesses uniform-random in the working set. */
    double random_frac = 0.1;
    /** Sequential-walk stride in bytes. */
    std::uint32_t stride_bytes = 8;
};

/** One execution phase (multimedia codecs alternate phases per frame). */
struct Phase
{
    UopMix mix;
    MemBehavior mem;
    /** Phase length in micro-ops before moving to the next phase. */
    std::uint64_t length_uops = 1'000'000;
};

/** Control-flow behaviour (shared across phases). */
struct BranchBehavior
{
    /** Number of static branch sites. */
    std::uint32_t num_static = 256;
    /** Fraction of sites that are strongly biased (predictable). */
    double easy_frac = 0.9;
    /** Taken probability of a strongly biased site (or 1 - it). */
    double easy_bias = 0.97;
    /** Taken probability of a hard site (near 0.5 = unpredictable). */
    double hard_bias = 0.6;
    /** Maximum call nesting depth the generator produces. */
    std::uint32_t max_call_depth = 24;
};

/** Register dependence behaviour (shared across phases). */
struct DepBehavior
{
    /** Probability the first source operand names a recent producer. */
    double p_src1 = 0.8;
    /** Probability of a second register source. */
    double p_src2 = 0.35;
    /** Mean producer distance in micro-ops (geometric). */
    double mean_dist = 5.0;
    /**
     * Scale applied to p_src1/p_src2 for control ops. Branch
     * conditions are typically cheap recurrences (loop counters,
     * flags), so they resolve faster than data ops; 0.5 by default.
     */
    double ctrl_dep_scale = 0.5;
};

/** Full description of one application. */
struct AppProfile
{
    std::string name;
    AppClass app_class = AppClass::SpecInt;

    std::vector<Phase> phases;
    BranchBehavior branch;
    DepBehavior dep;

    /** Static code footprint in bytes (drives L1I behaviour). */
    std::uint64_t code_bytes = 32 * 1024;

    /** Paper Table 2 reference values on the base machine. */
    double table2_ipc = 0.0;
    double table2_power_w = 0.0;

    /** Validate all fields; fatal on an inconsistent profile. */
    void validate() const;
};

/**
 * The paper's nine-application suite, calibrated against Table 2.
 * Order matches Table 2: MPGdec, MP3dec, H263enc, bzip2, gzip, twolf,
 * art, equake, ammp.
 */
const std::vector<AppProfile> &standardApps();

/** Look up a standard application by name; fatal if unknown. */
const AppProfile &findApp(const std::string &name);

} // namespace workload
} // namespace ramp

