/**
 * @file
 * Synthetic micro-op stream generator.
 *
 * Implements sim::UopSource from an AppProfile. The generator produces
 * a statistically stationary (per phase) stream with:
 *  - per-phase instruction mix;
 *  - geometric register-dependence distances;
 *  - a fixed set of static branch sites with per-site bias, fixed
 *    branch targets within the code footprint (so the I-cache and the
 *    bimodal-agree predictor see realistic locality);
 *  - matched call/return pairs against an internal shadow stack (so
 *    the RAS behaves, and over-deep recursion mispredicts);
 *  - a data stream mixing a sequential strided walk with uniform
 *    random accesses inside the phase working set.
 *
 * Everything is a deterministic function of the profile and seed.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/uop.hh"
#include "util/random.hh"
#include "workload/profile.hh"

namespace ramp {
namespace workload {

/** Deterministic synthetic trace source for one application. */
class TraceGenerator : public sim::UopSource
{
  public:
    /**
     * @param profile Application description (validated here).
     * @param seed Stream seed; the same (profile, seed) pair always
     *        produces the identical stream.
     */
    TraceGenerator(const AppProfile &profile, std::uint64_t seed = 1);

    /** Produce the next micro-op in program order. */
    sim::Uop next() override;

    /** Micro-ops produced so far. */
    std::uint64_t produced() const { return produced_; }

    /** Index of the phase the generator is currently in. */
    std::size_t currentPhase() const { return phase_idx_; }

  private:
    struct BranchSite
    {
        std::uint64_t pc;      ///< Site address in the code region.
        std::uint64_t target;  ///< Taken target (fixed per site).
        double taken_prob;     ///< Per-site bias.
    };

    const Phase &phase() const { return profile_.phases[phase_idx_]; }
    void advancePhase();
    sim::UopClass pickClass();
    std::uint64_t pickDataAddr(bool &advance_stream);
    void fillDeps(sim::Uop &u);

    AppProfile profile_;
    util::Rng rng_;

    std::vector<BranchSite> branches_;
    std::vector<std::uint64_t> shadow_stack_;  ///< Call return addrs.

    std::size_t phase_idx_ = 0;
    std::uint64_t phase_left_ = 0;
    std::uint64_t produced_ = 0;

    std::uint64_t cur_pc_;          ///< Next fetch address.
    std::uint64_t code_base_;
    std::uint64_t data_base_;
    std::uint64_t stream_pos_ = 0;  ///< Sequential-walk offset.
};

} // namespace workload
} // namespace ramp

