#include "workload/trace_gen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ramp {
namespace workload {

using sim::Uop;
using sim::UopClass;

namespace {

/** Salt the seed with the profile name so every app gets its own
 *  decorrelated stream even under a common experiment seed. */
std::uint64_t
saltSeed(std::uint64_t seed, const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return seed ^ h;
}

} // namespace

TraceGenerator::TraceGenerator(const AppProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(saltSeed(seed, profile.name)),
      code_base_(0x0040'0000), data_base_(0x1000'0000)
{
    profile_.validate();
    cur_pc_ = code_base_;
    phase_left_ = profile_.phases[0].length_uops;
    shadow_stack_.reserve(profile_.branch.max_call_depth);

    // Build the static branch sites: fixed pc, fixed taken target,
    // per-site bias drawn once.
    const auto &br = profile_.branch;
    const std::uint64_t code_slots = profile_.code_bytes / 4;
    branches_.reserve(br.num_static);
    for (std::uint32_t i = 0; i < br.num_static; ++i) {
        BranchSite site;
        site.pc = code_base_ + rng_.below(code_slots) * 4;
        // Taken targets are mostly short backward jumps (loops), with
        // occasional long jumps -- keeps I-cache locality realistic.
        const std::uint64_t span =
            rng_.chance(0.8) ? std::min<std::uint64_t>(1024,
                                                       profile_.code_bytes)
                             : profile_.code_bytes;
        const std::uint64_t off = rng_.below(span / 4) * 4;
        site.target =
            site.pc >= code_base_ + off ? site.pc - off
                                        : code_base_ + off;
        if (rng_.chance(br.easy_frac)) {
            site.taken_prob =
                rng_.chance(0.7) ? br.easy_bias : 1.0 - br.easy_bias;
        } else {
            site.taken_prob = br.hard_bias;
        }
        branches_.push_back(site);
    }
    // Control flow is emitted in address order: the next branch
    // encountered is the first site at or after the current pc.
    std::sort(branches_.begin(), branches_.end(),
              [](const BranchSite &a, const BranchSite &b) {
                  return a.pc < b.pc;
              });
}

void
TraceGenerator::advancePhase()
{
    if (phase_left_ > 0)
        return;
    phase_idx_ = (phase_idx_ + 1) % profile_.phases.size();
    phase_left_ = phase().length_uops;
    stream_pos_ = 0;
}

UopClass
TraceGenerator::pickClass()
{
    const UopMix &mix = phase().mix;
    double r = rng_.uniform();
    auto take = [&](double f) {
        if (r < f)
            return true;
        r -= f;
        return false;
    };
    if (take(mix.load))
        return UopClass::Load;
    if (take(mix.store))
        return UopClass::Store;
    if (take(mix.branch))
        return UopClass::Branch;
    if (take(mix.call))
        return UopClass::Call; // resolved to Call/Return below
    if (take(mix.fp_op))
        return UopClass::FpOp;
    if (take(mix.fp_div))
        return UopClass::FpDiv;
    if (take(mix.int_mul))
        return UopClass::IntMul;
    if (take(mix.int_div))
        return UopClass::IntDiv;
    return UopClass::IntAlu;
}

std::uint64_t
TraceGenerator::pickDataAddr(bool &advance_stream)
{
    const MemBehavior &mem = phase().mem;
    advance_stream = false;
    const double r = rng_.uniform();
    if (r < mem.hot_frac) {
        // Hot region: stack and loop-carried state at the bottom of
        // the working set.
        return data_base_ + rng_.below(mem.hot_bytes);
    }
    if (r < mem.hot_frac + mem.random_frac) {
        return data_base_ + rng_.below(mem.working_set_bytes);
    }
    advance_stream = true;
    // The streaming walk covers the working set above the hot region.
    return data_base_ + mem.hot_bytes + stream_pos_;
}

void
TraceGenerator::fillDeps(Uop &u)
{
    const DepBehavior &dep = profile_.dep;
    const double p = std::min(1.0, 1.0 / dep.mean_dist);
    const double scale =
        sim::isCtrlClass(u.cls) ? dep.ctrl_dep_scale : 1.0;
    if (rng_.chance(dep.p_src1 * scale)) {
        u.src_dist[0] = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(rng_.geometric(p), 500));
    }
    if (rng_.chance(dep.p_src2 * scale)) {
        u.src_dist[1] = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(rng_.geometric(p), 500));
    }
}

Uop
TraceGenerator::next()
{
    advancePhase();
    --phase_left_;
    ++produced_;

    Uop u;
    u.cls = pickClass();
    u.pc = cur_pc_;

    // Default: fall through to the next word, wrapping in the region.
    std::uint64_t next_pc = cur_pc_ + 4;
    if (next_pc >= code_base_ + profile_.code_bytes)
        next_pc = code_base_;

    switch (u.cls) {
      case UopClass::Branch: {
        // The branch reached by sequential execution from cur_pc: the
        // first site at or after it (wrapping). This keeps the
        // dynamic code footprint concentrated in hot neighbourhoods
        // even when the static footprint is large, which is what
        // keeps real programs' I-cache miss rates low.
        auto it = std::lower_bound(
            branches_.begin(), branches_.end(), cur_pc_,
            [](const BranchSite &s, std::uint64_t pc) {
                return s.pc < pc;
            });
        if (it == branches_.end())
            it = branches_.begin();
        const BranchSite &site = *it;
        u.pc = site.pc;
        u.taken = rng_.chance(site.taken_prob);
        next_pc = u.taken ? site.target : site.pc + 4;
        break;
      }
      case UopClass::Call: {
        const bool can_call =
            shadow_stack_.size() < profile_.branch.max_call_depth;
        const bool do_return =
            !shadow_stack_.empty() &&
            (!can_call || rng_.chance(0.5));
        if (do_return) {
            u.cls = UopClass::Return;
            u.addr = shadow_stack_.back();
            shadow_stack_.pop_back();
            next_pc = u.addr;
        } else {
            u.addr = cur_pc_ + 4; // return address
            shadow_stack_.push_back(u.addr);
            // Jump to a function body somewhere in the code region.
            next_pc = code_base_ +
                      rng_.below(profile_.code_bytes / 4) * 4;
        }
        break;
      }
      case UopClass::Load:
      case UopClass::Store: {
        bool advance = false;
        u.addr = pickDataAddr(advance);
        if (advance) {
            const auto span = phase().mem.working_set_bytes -
                              phase().mem.hot_bytes;
            stream_pos_ += phase().mem.stride_bytes;
            if (stream_pos_ >= span)
                stream_pos_ = 0;
        }
        break;
      }
      default:
        break;
    }

    fillDeps(u);
    u.writes_int = sim::isIntClass(u.cls) || u.cls == UopClass::Load;
    u.writes_fp = sim::isFpClass(u.cls);

    cur_pc_ = next_pc;
    return u;
}

} // namespace workload
} // namespace ramp
