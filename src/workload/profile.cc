#include "workload/profile.hh"

#include "util/logging.hh"

namespace ramp {
namespace workload {

const char *
appClassName(AppClass c)
{
    switch (c) {
      case AppClass::Multimedia:
        return "Multimedia";
      case AppClass::SpecInt:
        return "SpecInt";
      case AppClass::SpecFp:
        return "SpecFP";
    }
    util::panic("appClassName: bad class");
}

double
UopMix::intAlu() const
{
    return 1.0 - (int_mul + int_div + fp_op + fp_div + load + store +
                  branch + call);
}

void
UopMix::validate() const
{
    for (double f : {int_mul, int_div, fp_op, fp_div, load, store,
                     branch, call}) {
        if (f < 0.0 || f > 1.0)
            util::fatal("UopMix fraction out of [0,1]");
    }
    if (intAlu() < 0.0)
        util::fatal("UopMix fractions exceed 1.0");
}

void
AppProfile::validate() const
{
    if (name.empty())
        util::fatal("AppProfile needs a name");
    if (phases.empty())
        util::fatal(util::cat(name, ": profile needs at least one phase"));
    for (const auto &ph : phases) {
        ph.mix.validate();
        if (ph.length_uops == 0)
            util::fatal(util::cat(name, ": phase length must be > 0"));
        if (ph.mem.working_set_bytes < 4096)
            util::fatal(util::cat(name, ": working set too small"));
        if (ph.mem.hot_bytes == 0 ||
            ph.mem.hot_bytes > ph.mem.working_set_bytes)
            util::fatal(util::cat(name, ": hot region must fit in the "
                                        "working set"));
        if (ph.mem.hot_frac < 0.0 || ph.mem.random_frac < 0.0 ||
            ph.mem.hot_frac + ph.mem.random_frac > 1.0)
            util::fatal(util::cat(name, ": memory fractions bad"));
        if (ph.mem.stride_bytes == 0)
            util::fatal(util::cat(name, ": stride must be > 0"));
    }
    if (branch.num_static == 0)
        util::fatal(util::cat(name, ": needs static branches"));
    if (dep.mean_dist < 1.0)
        util::fatal(util::cat(name, ": mean dependence distance < 1"));
    if (dep.p_src1 < 0.0 || dep.p_src1 > 1.0 || dep.p_src2 < 0.0 ||
        dep.p_src2 > 1.0)
        util::fatal(util::cat(name, ": dependence probability bad"));
    if (code_bytes < 1024)
        util::fatal(util::cat(name, ": code footprint too small"));
}

namespace {

constexpr std::uint64_t kb = 1024;
constexpr std::uint64_t mb = 1024 * 1024;

/** Single-phase helper for the SPEC profiles. */
AppProfile
specApp(std::string name, AppClass cls, UopMix mix, MemBehavior mem,
        BranchBehavior br, DepBehavior dep, std::uint64_t code,
        double ipc, double power_w)
{
    AppProfile p;
    p.name = std::move(name);
    p.app_class = cls;
    p.phases.push_back(Phase{mix, mem, 1'000'000});
    p.branch = br;
    p.dep = dep;
    p.code_bytes = code;
    p.table2_ipc = ipc;
    p.table2_power_w = power_w;
    return p;
}

std::vector<AppProfile>
buildApps()
{
    std::vector<AppProfile> apps;

    // ---------------- Multimedia ------------------------------------
    // Frame-structured codecs: a dominant compute phase (high ILP,
    // small hot loops, very predictable control) alternating with a
    // shorter memory phase (frame buffer traffic).
    {
        AppProfile p;
        p.name = "MPGdec";
        p.app_class = AppClass::Multimedia;
        UopMix compute;
        compute.int_mul = 0.015;
        compute.fp_op = 0.10;
        compute.load = 0.19;
        compute.store = 0.08;
        compute.branch = 0.06;
        compute.call = 0.004;
        UopMix memph = compute;
        memph.load = 0.30;
        memph.store = 0.12;
        memph.fp_op = 0.04;
        p.phases = {
            Phase{compute,
                  MemBehavior{48 * kb, 16 * kb, 0.50, 0.01, 16},
                  440'000},
            Phase{memph, MemBehavior{1 * mb, 16 * kb, 0.25, 0.03, 16},
                  40'000},
        };
        p.branch = BranchBehavior{192, 0.98, 0.99, 0.70, 16};
        p.dep = DepBehavior{0.72, 0.29, 3.1};
        p.code_bytes = 12 * kb;
        p.table2_ipc = 3.2;
        p.table2_power_w = 36.5;
        apps.push_back(p);
    }
    {
        AppProfile p;
        p.name = "MP3dec";
        p.app_class = AppClass::Multimedia;
        UopMix compute;
        compute.int_mul = 0.01;
        compute.fp_op = 0.16;
        compute.load = 0.20;
        compute.store = 0.07;
        compute.branch = 0.07;
        compute.call = 0.004;
        UopMix memph = compute;
        memph.load = 0.28;
        memph.store = 0.10;
        p.phases = {
            Phase{compute,
                  MemBehavior{56 * kb, 12 * kb, 0.55, 0.01, 8},
                  320'000},
            Phase{memph,
                  MemBehavior{512 * kb, 12 * kb, 0.35, 0.04, 16},
                  40'000},
        };
        p.branch = BranchBehavior{160, 0.97, 0.985, 0.65, 16};
        p.dep = DepBehavior{0.70, 0.28, 4.0};
        p.code_bytes = 10 * kb;
        p.table2_ipc = 2.8;
        p.table2_power_w = 34.7;
        apps.push_back(p);
    }
    {
        AppProfile p;
        p.name = "H263enc";
        p.app_class = AppClass::Multimedia;
        // Motion estimation: data-dependent branches, SAD loops.
        UopMix compute;
        compute.int_mul = 0.03;
        compute.fp_op = 0.05;
        compute.load = 0.27;
        compute.store = 0.12;
        compute.branch = 0.10;
        compute.call = 0.004;
        UopMix memph = compute;
        memph.load = 0.30;
        memph.store = 0.14;
        p.phases = {
            Phase{compute,
                  MemBehavior{56 * kb, 12 * kb, 0.55, 0.02, 16},
                  260'000},
            Phase{memph, MemBehavior{1 * mb, 12 * kb, 0.35, 0.05, 32},
                  50'000},
        };
        p.branch = BranchBehavior{224, 0.92, 0.97, 0.58, 16};
        p.dep = DepBehavior{0.78, 0.31, 3.4};
        p.code_bytes = 16 * kb;
        p.table2_ipc = 1.9;
        p.table2_power_w = 30.8;
        apps.push_back(p);
    }

    // ---------------- SpecInt ----------------------------------------
    {
        UopMix mix;
        mix.int_mul = 0.005;
        mix.load = 0.26;
        mix.store = 0.09;
        mix.branch = 0.13;
        mix.call = 0.006;
        apps.push_back(specApp(
            "bzip2", AppClass::SpecInt, mix,
            MemBehavior{512 * kb, 16 * kb, 0.88, 0.02, 8},
            BranchBehavior{384, 0.95, 0.975, 0.60, 24},
            DepBehavior{0.60, 0.20, 9.0}, 48 * kb, 1.7, 23.9));
    }
    {
        UopMix mix;
        mix.int_mul = 0.004;
        mix.load = 0.25;
        mix.store = 0.08;
        mix.branch = 0.14;
        mix.call = 0.008;
        apps.push_back(specApp(
            "gzip", AppClass::SpecInt, mix,
            MemBehavior{320 * kb, 16 * kb, 0.84, 0.04, 8},
            BranchBehavior{320, 0.90, 0.96, 0.55, 24},
            DepBehavior{0.83, 0.35, 2.7}, 40 * kb, 1.5, 23.4));
    }
    {
        UopMix mix;
        mix.int_mul = 0.003;
        mix.load = 0.28;
        mix.store = 0.07;
        mix.branch = 0.14;
        mix.call = 0.010;
        apps.push_back(specApp(
            "twolf", AppClass::SpecInt, mix,
            MemBehavior{1 * mb, 16 * kb, 0.78, 0.06, 8},
            BranchBehavior{512, 0.86, 0.95, 0.55, 24},
            DepBehavior{0.82, 0.34, 4.2}, 96 * kb, 0.8, 15.6));
    }

    // ---------------- SpecFP -----------------------------------------
    {
        UopMix mix;
        mix.fp_op = 0.30;
        mix.fp_div = 0.004;
        mix.load = 0.32;
        mix.store = 0.05;
        mix.branch = 0.05;
        mix.call = 0.003;
        apps.push_back(specApp(
            "art", AppClass::SpecFp, mix,
            MemBehavior{8 * mb, 16 * kb, 0.35, 0.05, 8},
            BranchBehavior{128, 0.96, 0.985, 0.62, 16},
            DepBehavior{0.67, 0.25, 6.5}, 16 * kb, 0.7, 17.0));
    }
    {
        UopMix mix;
        mix.fp_op = 0.26;
        mix.fp_div = 0.003;
        mix.load = 0.28;
        mix.store = 0.06;
        mix.branch = 0.07;
        mix.call = 0.005;
        apps.push_back(specApp(
            "equake", AppClass::SpecFp, mix,
            MemBehavior{896 * kb, 16 * kb, 0.62, 0.04, 8},
            BranchBehavior{192, 0.95, 0.98, 0.62, 16},
            DepBehavior{0.71, 0.27, 4.9}, 24 * kb, 1.4, 20.9));
    }
    {
        UopMix mix;
        mix.fp_op = 0.28;
        mix.fp_div = 0.010;
        mix.load = 0.27;
        mix.store = 0.06;
        mix.branch = 0.08;
        mix.call = 0.006;
        apps.push_back(specApp(
            "ammp", AppClass::SpecFp, mix,
            MemBehavior{1280 * kb, 16 * kb, 0.72, 0.06, 8},
            BranchBehavior{256, 0.93, 0.97, 0.60, 24},
            DepBehavior{0.72, 0.27, 5.8}, 32 * kb, 1.1, 19.7));
    }

    for (const auto &p : apps)
        p.validate();
    return apps;
}

} // namespace

const std::vector<AppProfile> &
standardApps()
{
    static const std::vector<AppProfile> apps = buildApps();
    return apps;
}

const AppProfile &
findApp(const std::string &name)
{
    for (const auto &p : standardApps())
        if (p.name == name)
            return p;
    util::fatal(util::cat("unknown application '", name, "'"));
}

} // namespace workload
} // namespace ramp
