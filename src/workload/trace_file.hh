/**
 * @file
 * Micro-op trace recording and replay.
 *
 * The core consumes any UopSource; this module lets users capture a
 * stream (synthetic or externally produced) into a compact binary
 * file and replay it later, so real program traces can drive the
 * simulator without the synthetic generator. Records are fixed-size
 * little-endian structs behind a small header with a magic number and
 * version; replay can loop the file to make finite captures
 * effectively infinite (the trace-driven core never wants the stream
 * to end).
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/uop.hh"

namespace ramp {
namespace workload {

/** Writes micro-ops to a trace file. */
class TraceWriter
{
  public:
    /** Open (truncate) the file and write the header; fatal on I/O
     *  failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one micro-op. */
    void write(const sim::Uop &uop);

    /** Flush and close; called by the destructor if needed. */
    void close();

    /** Micro-ops written so far. */
    std::uint64_t written() const { return written_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t written_ = 0;
};

/**
 * Replays a trace file as a UopSource. The whole trace is loaded into
 * memory (a record is 24 bytes; hundred-million-uop traces fit fine)
 * and looped when the end is reached.
 */
class FileTraceSource : public sim::UopSource
{
  public:
    /** Load a trace; fatal on missing/corrupt files. */
    explicit FileTraceSource(const std::string &path);

    /** Next micro-op, looping at the end of the capture. */
    sim::Uop next() override;

    /** Number of micro-ops in the capture. */
    std::uint64_t size() const { return uops_.size(); }

    /** Times the replay has wrapped. */
    std::uint64_t wraps() const { return wraps_; }

  private:
    std::vector<sim::Uop> uops_;
    std::size_t pos_ = 0;
    std::uint64_t wraps_ = 0;
};

/**
 * Convenience: capture `count` micro-ops from any source into a
 * file. Returns the number written.
 */
std::uint64_t captureTrace(sim::UopSource &source,
                           const std::string &path,
                           std::uint64_t count);

} // namespace workload
} // namespace ramp

