#include "workload/trace_file.hh"

#include <array>
#include <cstring>

#include "util/logging.hh"

namespace ramp {
namespace workload {

namespace {

constexpr std::uint32_t trace_magic = 0x52414D50; // "RAMP"
constexpr std::uint32_t trace_version = 1;

/** Fixed 24-byte on-disk record. */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t src_dist0;
    std::uint16_t src_dist1;
    std::uint8_t cls;
    std::uint8_t flags; // bit0 taken, bit1 writes_int, bit2 writes_fp
    std::uint8_t pad[2];
};
static_assert(sizeof(TraceRecord) == 24, "trace record must be 24B");

TraceRecord
pack(const sim::Uop &u)
{
    TraceRecord r{};
    r.pc = u.pc;
    r.addr = u.addr;
    r.src_dist0 = u.src_dist[0];
    r.src_dist1 = u.src_dist[1];
    r.cls = static_cast<std::uint8_t>(u.cls);
    r.flags = static_cast<std::uint8_t>(
        (u.taken ? 1 : 0) | (u.writes_int ? 2 : 0) |
        (u.writes_fp ? 4 : 0));
    return r;
}

sim::Uop
unpack(const TraceRecord &r)
{
    sim::Uop u;
    u.pc = r.pc;
    u.addr = r.addr;
    u.src_dist[0] = r.src_dist0;
    u.src_dist[1] = r.src_dist1;
    u.cls = static_cast<sim::UopClass>(r.cls);
    u.taken = (r.flags & 1) != 0;
    u.writes_int = (r.flags & 2) != 0;
    u.writes_fp = (r.flags & 4) != 0;
    return u;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        util::fatal(util::cat("cannot open trace file '", path,
                              "' for writing"));
    const std::uint32_t header[2] = {trace_magic, trace_version};
    if (std::fwrite(header, sizeof(header), 1, file_) != 1)
        util::fatal("cannot write trace header");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const sim::Uop &uop)
{
    if (!file_)
        util::fatal("TraceWriter::write after close");
    const TraceRecord r = pack(uop);
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        util::fatal("trace write failed (disk full?)");
    ++written_;
}

void
TraceWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

FileTraceSource::FileTraceSource(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        util::fatal(util::cat("cannot open trace file '", path, "'"));
    std::uint32_t header[2] = {0, 0};
    if (std::fread(header, sizeof(header), 1, f) != 1 ||
        header[0] != trace_magic) {
        std::fclose(f);
        util::fatal(util::cat("'", path, "' is not a RAMP trace"));
    }
    if (header[1] != trace_version) {
        std::fclose(f);
        util::fatal(util::cat("trace version ", header[1],
                              " unsupported (expected ",
                              trace_version, ")"));
    }

    TraceRecord r{};
    while (std::fread(&r, sizeof(r), 1, f) == 1) {
        if (r.cls >= static_cast<std::uint8_t>(
                         sim::UopClass::NumClasses)) {
            std::fclose(f);
            util::fatal(util::cat("corrupt trace record in '", path,
                                  "'"));
        }
        uops_.push_back(unpack(r));
    }
    std::fclose(f);
    if (uops_.empty())
        util::fatal(util::cat("trace '", path, "' holds no records"));
}

sim::Uop
FileTraceSource::next()
{
    const sim::Uop u = uops_[pos_];
    if (++pos_ == uops_.size()) {
        pos_ = 0;
        ++wraps_;
    }
    return u;
}

std::uint64_t
captureTrace(sim::UopSource &source, const std::string &path,
             std::uint64_t count)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
    return writer.written();
}

} // namespace workload
} // namespace ramp
