/**
 * @file
 * The evaluation engine behind the serving layer, shared by
 * ramp_served, bench_serve's direct-path oracle, and the serve
 * tests.
 *
 * EvaluationService owns the stack a bench's Suite owns -- the
 * persistent EvaluationCache, the ThreadPool, the OracleExplorer,
 * the application suite, and the paper's qualification setup
 * (alpha_qual from the base operating points) -- but exposes it
 * request-at-a-time: evaluate one (app, space, config) point, or run
 * one DRM/DTM oracle selection over a space. Results are returned
 * both as library types (for single-flight sharing) and as encoded
 * protocol JSON, and the encoding is the *only* serializer either
 * the server or the direct path uses, so a served reply is
 * byte-identical to the equivalent in-process call by construction.
 *
 * The service also keeps the fleet's aging registry: per-chip
 * aging::AgingState accumulated from report_usage deltas, consulted
 * by remaining_lifetime to run a slack-banking selection (see
 * aging/slack_bank.hh) at the effective qualification temperature
 * the chip's banked slack affords.
 *
 * Thread safety: ensureReady(), select(), and remainingLifetime()
 * fan work out across the owned pool and must only be called from
 * one driver thread at a time (the server's batcher).
 * evaluatePoint()/encodeEvaluation() never touch the pool and are
 * safe to call concurrently from *inside* a pool batch -- that is
 * exactly how the server parallelizes a batch of evaluate requests.
 * reportUsage() takes only the registry lock and is safe from any
 * thread (the server answers it inline).
 */

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "aging/state.hh"
#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "drm/adaptation.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "drm/surrogate/tiered.hh"
#include "serve/protocol.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp {
namespace serve {

/** Construction knobs for the service. */
struct ServiceOptions
{
    /** Evaluation-cache path ("" = in-memory only). */
    std::string cache_path;
    /** Pool concurrency; 0 = util::defaultThreadCount(). */
    unsigned threads = 0;
    /** Truncate the suite to its first N applications; 0 = all. */
    std::size_t max_apps = 0;
    /** Simulation controls (keyed into the cache). */
    core::EvalParams eval_params{};
    /** Run the eval cache in replicated (epoch-header) mode: the
     *  log is process-private and peers re-warm it via cache_append,
     *  so the flock sidecar is skipped (drm/eval_cache.hh). */
    bool replicated_cache = false;
};

/** The long-lived evaluation state behind the server. */
class EvaluationService
{
  public:
    explicit EvaluationService(ServiceOptions opts);

    /**
     * Evaluate every application's base operating point (through the
     * cache) and derive alpha_qual. Idempotent; uses the pool. The
     * server runs this before its first batch; direct callers run it
     * before evaluatePoint()/select().
     */
    void ensureReady();

    /** The (possibly truncated) application suite. */
    const std::vector<workload::AppProfile> &apps() const
    {
        return apps_;
    }

    util::ThreadPool &pool() { return pool_; }
    drm::EvaluationCache &cache() { return cache_; }

    /**
     * Evaluate one explored point: configSpace(space)[config] run on
     * @p app. Unknown apps and out-of-range config indices are
     * InvalidInput; evaluation failures carry their RampError
     * through. Safe inside a pool batch (never touches the pool).
     */
    [[nodiscard]] util::Result<core::OperatingPoint>
    evaluatePoint(const std::string &app, drm::AdaptationSpace space,
                  std::size_t config);

    /**
     * Encode an evaluate reply's result object for @p req from an
     * already-evaluated point: relative performance against the
     * app's base point, application FIT under the request's
     * qualification temperature, temperatures, power, convergence.
     */
    [[nodiscard]] util::Result<util::JsonValue>
    encodeEvaluation(const Request &req,
                     const core::OperatingPoint &op);

    /**
     * Run one DRM or DTM oracle selection (req.type selects which).
     * The explored space is memoized per (app, space), so repeated
     * selections at different temperatures re-run only the cheap
     * constraint evaluation. With req.surrogate != Off the selection
     * runs through the tiered explorer instead (same winner, far
     * fewer exact simulations; see drm/surrogate/tiered.hh).
     * Driver-thread only (fans out on the pool).
     */
    [[nodiscard]] util::Result<util::JsonValue> select(const Request &req);

    /**
     * v3 select_chip: one chip-level DRM selection
     * (cmp::selectChipDrm) for one application per core under a
     * single chip-wide FIT budget -- the default per-core target
     * times the core count -- priced by one shared qualification at
     * the request's T_qual. The request's floorplan (already
     * validated by the protocol layer) or the built-in grid fixes
     * the chip shape; its core count must match the app list.
     * Explored spaces are memoized per (app, space) exactly like
     * select(). Driver-thread only (fans out on the pool).
     */
    [[nodiscard]] util::Result<util::JsonValue> selectChip(const Request &req);

    /** Cache usage counters as a JSON object (stats replies). */
    util::JsonValue cacheStatsJson() const;

    /**
     * v2 report_usage: validate the request's AgingState delta and
     * merge it into the named chip's accumulated state. Thread-safe
     * (the registry has its own lock; no pool, no evaluation), so
     * the server answers it inline from reader threads. Returns the
     * chip's post-merge summary (age, consumed fraction).
     *
     * A non-zero req.seq makes the merge idempotent: the registry
     * remembers each chip's highest applied sequence number and
     * acknowledges a replayed (or out-of-date) seq with the current
     * summary *without* re-adding the delta -- the additive merge
     * would otherwise double-count damage when a client retries
     * after a lost reply. seq 0 is the legacy unsequenced form.
     */
    [[nodiscard]] util::Result<util::JsonValue> reportUsage(const Request &req);

    /**
     * v2 cache_append: ingest one replicated eval-cache record from
     * a peer backend. Idempotent by record key; malformed records
     * are InvalidInput. Thread-safe (cache locks only; no pool), so
     * the server answers it inline from reader threads. Returns
     * {"applied":bool,"records":N,"epoch":E}.
     */
    [[nodiscard]] util::Result<util::JsonValue> cacheAppend(const Request &req);

    /**
     * v2 remaining_lifetime: look up the chip's accumulated state
     * (unknown chips are InvalidInput -- report usage first), run
     * the slack-banking policy to get the effective qualification
     * temperature its banked slack affords, select the DRM point at
     * that temperature (oracle or surrogate, per the request), and
     * answer consumed fraction, slack, the selection, and the ETA
     * until the budget is spent at the selected point's FIT.
     * Driver-thread only (runs a selection on the pool).
     */
    [[nodiscard]] util::Result<util::JsonValue> remainingLifetime(const Request &req);

    /** A chip's accumulated state, if it has reported (tests). */
    std::optional<aging::AgingState>
    chipState(const std::string &chip) const;

    /**
     * Load a persisted chip registry ({"v":1,"chips":{name:state}})
     * with recoverAgingState semantics per the whole file: missing
     * file = empty registry, corrupt file = quarantine + empty,
     * future version = structured InvalidInput.
     */
    [[nodiscard]] util::Result<void> loadAgingRegistry(const std::string &path);

    /** Persist the chip registry (atomic temp-file + rename). */
    [[nodiscard]] util::Result<void> saveAgingRegistry(const std::string &path) const;

  private:
    /** Unknown-app guard; InvalidInput with the suite's names. */
    [[nodiscard]] util::Result<std::size_t> appIndex(const std::string &app) const;

    /** Memoized qualification for one T_qual (thread-safe). */
    std::shared_ptr<const core::Qualification>
    qualification(double t_qual_k);

    /** Memoized explored space (driver-thread only). */
    [[nodiscard]] util::Result<std::shared_ptr<const drm::ExploredApp>>
    explored(std::size_t app_index, drm::AdaptationSpace space);

    ServiceOptions opts_;
    drm::EvaluationCache cache_;
    util::ThreadPool pool_;
    drm::OracleExplorer explorer_;
    std::vector<workload::AppProfile> apps_;

    std::once_flag ready_once_;
    std::vector<core::OperatingPoint> base_ops_;
    sim::PerStructure<double> alpha_qual_{};

    using QualCache =
        std::map<double,
                 std::shared_ptr<const core::Qualification>>;
    std::mutex qual_mu_;
    // ramp-lint: guarded_by(qual_mu_)
    QualCache quals_;

    /** Driver-thread only (no lock): explored-space memo. */
    std::map<std::pair<std::size_t, drm::AdaptationSpace>,
             std::shared_ptr<const drm::ExploredApp>>
        explored_;

    /** Driver-thread only: tiered fast path (lazily built on the
     *  first request that asks for it). */
    std::unique_ptr<drm::surrogate::TieredExplorer> tiered_;

    mutable std::mutex aging_mu_;
    // ramp-lint: guarded_by(aging_mu_)
    std::map<std::string, aging::AgingState> chips_;
    /** Highest applied report_usage seq per chip (0 = none). */
    // ramp-lint: guarded_by(aging_mu_)
    std::map<std::string, std::uint64_t> chip_seq_;
};

} // namespace serve
} // namespace ramp
