#include "serve/replicator.hh"

#include <algorithm>
#include <chrono>

#include "serve/client.hh"
#include "serve/protocol.hh"
#include "util/logging.hh"

namespace ramp {
namespace serve {

using util::JsonValue;

namespace {

std::uint64_t
load(const std::atomic<std::uint64_t> &v)
{
    return v.load(std::memory_order_relaxed);
}

} // namespace

Replicator::Replicator(drm::EvaluationCache &cache,
                       ReplicatorOptions opts)
    : cache_(cache), opts_(std::move(opts))
{
    for (std::uint16_t port : opts_.peers) {
        auto peer = std::make_unique<Peer>();
        peer->port = port;
        peers_.push_back(std::move(peer));
    }
}

Replicator::~Replicator()
{
    stop();
}

void
Replicator::start()
{
    if (started_.exchange(true))
        return;
    cache_.setAppendObserver(
        [this](const std::string &key, const std::string &line) {
            onAppend(key, line);
        });
    for (auto &peer : peers_)
        peer->thread =
            std::thread([this, p = peer.get()] { peerLoop(*p); });
}

void
Replicator::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    // Detach the observer before waking the threads so no new work
    // arrives while they unwind.
    cache_.setAppendObserver(nullptr);
    stopping_.store(true, std::memory_order_release);
    for (auto &peer : peers_) {
        {
            std::lock_guard<std::mutex> lk(peer->mu);
        }
        peer->cv.notify_all();
    }
    for (auto &peer : peers_)
        if (peer->thread.joinable())
            peer->thread.join();
    started_.store(false, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
}

void
Replicator::onAppend(const std::string &key, const std::string &line)
{
    for (auto &peer : peers_) {
        std::lock_guard<std::mutex> lk(peer->mu);
        if (peer->resync)
            continue; // The pending snapshot replay covers this put.
        if (peer->queue.size() >= opts_.queue_cap) {
            // The tail fell too far behind; drop it and let the
            // snapshot replay supersede it.
            peer->queue.clear();
            peer->resync = true;
            resyncs_.add();
            n_resyncs_.fetch_add(1, std::memory_order_relaxed);
        } else {
            peer->queue.emplace_back(key, line);
        }
        peer->cv.notify_one();
    }
}

bool
Replicator::sendRecord(Client &client, const std::string &key,
                       const std::string &line)
{
    Request req;
    req.version = 2;
    req.type = RequestType::CacheAppend;
    req.key = key;
    req.record = line;
    req.epoch = cache_.epoch();
    auto reply = client.call(std::move(req));
    if (!reply)
        return false; // Transport failure: reconnect + resync.
    sent_.add();
    n_sent_.fetch_add(1, std::memory_order_relaxed);
    if (!reply.value().ok) {
        // The peer rejected the record (malformed / stale): that is
        // a local problem, not a connection problem -- count it and
        // keep the stream alive.
        rejected_.add();
        n_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
}

void
Replicator::peerLoop(Peer &peer)
{
    int backoff_ms = opts_.reconnect_min_ms;
    while (!stopping_.load(std::memory_order_acquire)) {
        ClientOptions copts;
        copts.port = peer.port;
        copts.connect_timeout_ms = opts_.connect_timeout_ms;
        copts.io_timeout_ms = opts_.io_timeout_ms;
        auto client = Client::connect(copts);
        if (!client) {
            reconnects_.add();
            n_reconnects_.fetch_add(1, std::memory_order_relaxed);
            std::unique_lock<std::mutex> lk(peer.mu);
            peer.cv.wait_for(
                lk, std::chrono::milliseconds(backoff_ms), [this] {
                    return stopping_.load(std::memory_order_acquire);
                });
            backoff_ms = std::min(backoff_ms * 2,
                                  opts_.reconnect_max_ms);
            continue;
        }
        backoff_ms = opts_.reconnect_min_ms;

        // Fresh connection: replay the whole snapshot first if this
        // peer is flagged for a resync. Idempotent receive makes the
        // replay safe even when most records are already there.
        bool need_snapshot;
        {
            std::lock_guard<std::mutex> lk(peer.mu);
            need_snapshot = peer.resync;
        }
        if (need_snapshot) {
            bool ok = true;
            for (const auto &[key, line] : cache_.exportRecords()) {
                if (stopping_.load(std::memory_order_acquire))
                    return;
                if (!sendRecord(client.value(), key, line)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                continue; // Reconnect; resync stays set.
            std::lock_guard<std::mutex> lk(peer.mu);
            peer.resync = false;
        }

        // Live tail: drain the queue one record at a time so a
        // failure mid-stream loses nothing (the failed record is
        // re-covered by the resync snapshot).
        bool connected = true;
        while (connected &&
               !stopping_.load(std::memory_order_acquire)) {
            std::pair<std::string, std::string> item;
            {
                std::unique_lock<std::mutex> lk(peer.mu);
                peer.cv.wait(lk, [this, &peer] {
                    return stopping_.load(
                               std::memory_order_acquire) ||
                           !peer.queue.empty() || peer.resync;
                });
                if (stopping_.load(std::memory_order_acquire))
                    return;
                if (peer.resync)
                    break; // Overflow flagged a snapshot replay.
                item = std::move(peer.queue.front());
                peer.queue.pop_front();
            }
            if (!sendRecord(client.value(), item.first,
                            item.second)) {
                std::lock_guard<std::mutex> lk(peer.mu);
                peer.queue.clear();
                peer.resync = true;
                resyncs_.add();
                n_resyncs_.fetch_add(1, std::memory_order_relaxed);
                reconnects_.add();
                n_reconnects_.fetch_add(1,
                                        std::memory_order_relaxed);
                connected = false;
            }
        }
    }
}

JsonValue
Replicator::statsJson() const
{
    JsonValue out = JsonValue::makeObject();
    out.set("peers", JsonValue::makeNumber(
                         static_cast<double>(peers_.size())));
    out.set("sent", JsonValue::makeNumber(
                        static_cast<double>(load(n_sent_))));
    out.set("resyncs", JsonValue::makeNumber(
                           static_cast<double>(load(n_resyncs_))));
    out.set("reconnects",
            JsonValue::makeNumber(
                static_cast<double>(load(n_reconnects_))));
    out.set("rejected",
            JsonValue::makeNumber(
                static_cast<double>(load(n_rejected_))));
    return out;
}

} // namespace serve
} // namespace ramp
