/**
 * @file
 * Eval-cache replication between ramp_served peers.
 *
 * Each backend in a routed cluster owns a process-private evaluation
 * cache (ServiceOptions::replicated_cache). The Replicator keeps the
 * peers' caches converged: every local cache append is tailed through
 * EvaluationCache::setAppendObserver() into a bounded per-peer queue
 * and pushed to that peer as a v2 cache_append request. Records are
 * idempotent by key on the receiving side (putSerialized), so the
 * stream needs no exactly-once machinery -- re-sending is always
 * safe, and the recovery story leans on that:
 *
 *  - On every (re)connect to a peer the full cache snapshot
 *    (exportRecords) is replayed before the live tail. A peer that
 *    restarted empty re-warms from the first peer that reconnects.
 *  - A send failure, or a tail queue overflowing its bound, simply
 *    flags the peer for another full resync; the queue is discarded
 *    because the snapshot supersedes it.
 *
 * Reconnects back off exponentially between reconnect_min_ms and
 * reconnect_max_ms so a dead peer costs a bounded trickle of connect
 * attempts, not a spin. stop() detaches the observer first, then
 * joins the per-peer threads; it is safe to call repeatedly.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "drm/eval_cache.hh"
#include "util/json.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace serve {

/** Replication knobs. */
struct ReplicatorOptions
{
    /** Peer ramp_served ports (loopback). */
    std::vector<std::uint16_t> peers;
    int connect_timeout_ms = 1'000;
    /** Deadline for one cache_append round trip. */
    int io_timeout_ms = 5'000;
    /** Reconnect backoff bounds (doubling between them). */
    int reconnect_min_ms = 50;
    int reconnect_max_ms = 2'000;
    /** Per-peer live-tail bound; overflow forces a full resync. */
    std::size_t queue_cap = 4'096;
};

/** Streams one cache's appends to every peer backend. */
class Replicator
{
  public:
    /** @param cache The local cache; must outlive the replicator. */
    Replicator(drm::EvaluationCache &cache, ReplicatorOptions opts);

    /** stop()s if still running. */
    ~Replicator();

    Replicator(const Replicator &) = delete;
    Replicator &operator=(const Replicator &) = delete;

    /** Install the append observer and spawn one thread per peer. */
    void start();

    /** Detach the observer and join the peer threads (idempotent). */
    void stop();

    /** Replication counters (tests): sent, resyncs, reconnects,
     *  rejected. */
    util::JsonValue statsJson() const;

  private:
    /** One peer's connection state and pending tail. */
    struct Peer
    {
        std::uint16_t port = 0;
        std::thread thread;
        std::mutex mu;
        std::condition_variable cv;
        /** Pending (key, record-line) appends. */
        // ramp-lint: guarded_by(mu)
        std::deque<std::pair<std::string, std::string>> queue;
        /** Replay the full snapshot before tailing (set on start,
         *  after a send failure, and on queue overflow). */
        // ramp-lint: guarded_by(mu)
        bool resync = true;
    };

    void peerLoop(Peer &peer);
    void onAppend(const std::string &key, const std::string &line);

    /** One cache_append round trip; false = transport failure (the
     *  caller reconnects and resyncs). */
    bool sendRecord(class Client &client, const std::string &key,
                    const std::string &line);

    drm::EvaluationCache &cache_;
    ReplicatorOptions opts_;
    std::vector<std::unique_ptr<Peer>> peers_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};

    telemetry::Counter sent_ = telemetry::counter("server.repl_sent");
    telemetry::Counter resyncs_ =
        telemetry::counter("server.repl_resyncs");
    telemetry::Counter reconnects_ =
        telemetry::counter("server.repl_reconnects");
    telemetry::Counter rejected_ =
        telemetry::counter("server.repl_rejected");

    /** Plain tallies mirrored into statsJson(). */
    std::atomic<std::uint64_t> n_sent_{0};
    std::atomic<std::uint64_t> n_resyncs_{0};
    std::atomic<std::uint64_t> n_reconnects_{0};
    std::atomic<std::uint64_t> n_rejected_{0};
};

} // namespace serve
} // namespace ramp
