#include "serve/client.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace ramp {
namespace serve {

using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

Result<Client>
Client::connect(ClientOptions opts)
{
    auto sock = util::connectTcp(opts.port, opts.connect_timeout_ms);
    if (!sock)
        return sock.error();
    return Client(std::move(sock.value()), opts);
}

Result<std::uint64_t>
Client::sendRequest(Request req)
{
    req.id = next_id_++;
    auto written =
        util::writeFrame(sock_, encodeRequest(req),
                         opts_.max_frame_bytes, opts_.io_timeout_ms);
    if (!written)
        return written.error();
    return req.id;
}

Result<Reply>
Client::receiveReply()
{
    auto frame = util::readFrame(sock_, opts_.max_frame_bytes,
                                 opts_.io_timeout_ms);
    if (!frame)
        return frame.error();
    if (!frame.value().has_value())
        return RampError{ErrorCode::IoFailure,
                         "server closed the connection before "
                         "replying"};
    return parseReply(*frame.value());
}

Result<Reply>
Client::call(Request req)
{
    auto id = sendRequest(std::move(req));
    if (!id)
        return id.error();
    auto reply = receiveReply();
    if (!reply)
        return reply.error();
    if (reply.value().id != id.value())
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("reply id ", reply.value().id,
                      " does not match request id ", id.value(),
                      " (pipelined replies need receiveReply())")};
    return reply;
}

Result<JsonValue>
Client::unwrap(Reply reply)
{
    if (reply.ok)
        return std::move(reply.result);
    const ErrorCode code = replyErrorCode(reply.error_code);
    // Keep the wire code in the message only when the mapping is
    // lossy (e.g. "bad-request" -> InvalidInput), so str() does not
    // print the same code twice.
    std::string message = reply.error_message;
    if (reply.error_code != util::errorCodeName(code))
        message = util::cat(reply.error_code, ": ", message);
    return RampError{code, std::move(message)};
}

Result<JsonValue>
Client::evaluate(const std::string &app, drm::AdaptationSpace space,
                 std::size_t config, double t_qual_k)
{
    Request req;
    req.type = RequestType::Evaluate;
    req.app = app;
    req.space = space;
    req.config = config;
    req.t_qual_k = t_qual_k;
    auto reply = call(std::move(req));
    if (!reply)
        return reply.error();
    return unwrap(std::move(reply.value()));
}

Result<JsonValue>
Client::selectDrm(const std::string &app, drm::AdaptationSpace space,
                  double t_qual_k)
{
    Request req;
    req.type = RequestType::SelectDrm;
    req.app = app;
    req.space = space;
    req.t_qual_k = t_qual_k;
    auto reply = call(std::move(req));
    if (!reply)
        return reply.error();
    return unwrap(std::move(reply.value()));
}

Result<JsonValue>
Client::selectDtm(const std::string &app, drm::AdaptationSpace space,
                  double t_design_k, double t_qual_k)
{
    Request req;
    req.type = RequestType::SelectDtm;
    req.app = app;
    req.space = space;
    req.t_design_k = t_design_k;
    req.t_qual_k = t_qual_k;
    auto reply = call(std::move(req));
    if (!reply)
        return reply.error();
    return unwrap(std::move(reply.value()));
}

Result<JsonValue>
Client::stats()
{
    Request req;
    req.type = RequestType::Stats;
    auto reply = call(std::move(req));
    if (!reply)
        return reply.error();
    return unwrap(std::move(reply.value()));
}

Result<void>
Client::requestShutdown()
{
    Request req;
    req.type = RequestType::Shutdown;
    auto reply = call(std::move(req));
    if (!reply)
        return reply.error();
    auto result = unwrap(std::move(reply.value()));
    if (!result)
        return result.error();
    return {};
}

Result<Session>
Session::open(ClientOptions opts, int max_v)
{
    auto client = Client::connect(opts);
    if (!client)
        return client.error();

    Request hello;
    hello.type = RequestType::Hello;
    hello.version = 1;
    hello.max_v = std::min(max_v, protocol_version_max);
    auto reply = client.value().call(std::move(hello));
    if (!reply)
        return reply.error();
    if (!reply.value().ok) {
        // A server that does not know "hello" is a pre-versioning
        // daemon: degrade to the legacy wire shape rather than
        // failing the connection.
        if (reply.value().error_code == err_bad_request)
            return Session(std::move(client.value()), 0);
        auto err = Client::unwrap(std::move(reply.value()));
        return err.error();
    }
    const JsonValue *negotiated =
        reply.value().result.find("negotiated_v");
    if (!negotiated || !negotiated->isNumber())
        return RampError{ErrorCode::InvalidInput,
                         "hello reply is missing 'negotiated_v'"};
    return Session(std::move(client.value()),
                   static_cast<int>(negotiated->number));
}

Result<void>
Session::needVersion(int v, const char *verb) const
{
    if (version_ >= v)
        return {};
    return RampError{
        ErrorCode::InvalidInput,
        util::cat(verb, " needs protocol v", v,
                  " but the session negotiated v", version_)};
}

Result<JsonValue>
Session::callUnwrap(Request req)
{
    req.version = version_;
    auto reply = client_.call(std::move(req));
    if (!reply)
        return reply.error();
    return Client::unwrap(std::move(reply.value()));
}

Result<JsonValue>
Session::evaluate(const std::string &app,
                  drm::AdaptationSpace space, std::size_t config,
                  double t_qual_k)
{
    Request req;
    req.type = RequestType::Evaluate;
    req.app = app;
    req.space = space;
    req.config = config;
    req.t_qual_k = t_qual_k;
    return callUnwrap(std::move(req));
}

Result<JsonValue>
Session::selectDrm(const std::string &app,
                   drm::AdaptationSpace space, double t_qual_k)
{
    Request req;
    req.type = RequestType::SelectDrm;
    req.app = app;
    req.space = space;
    req.t_qual_k = t_qual_k;
    return callUnwrap(std::move(req));
}

Result<JsonValue>
Session::selectDtm(const std::string &app,
                   drm::AdaptationSpace space, double t_design_k,
                   double t_qual_k)
{
    Request req;
    req.type = RequestType::SelectDtm;
    req.app = app;
    req.space = space;
    req.t_design_k = t_design_k;
    req.t_qual_k = t_qual_k;
    return callUnwrap(std::move(req));
}

Result<JsonValue>
Session::stats()
{
    Request req;
    req.type = RequestType::Stats;
    return callUnwrap(std::move(req));
}

Result<void>
Session::requestShutdown()
{
    Request req;
    req.type = RequestType::Shutdown;
    auto result = callUnwrap(std::move(req));
    if (!result)
        return result.error();
    return {};
}

Result<JsonValue>
Session::reportUsage(const std::string &chip, JsonValue state,
                     std::uint64_t seq)
{
    if (auto ok = needVersion(2, "report_usage"); !ok)
        return ok.error();
    Request req;
    req.type = RequestType::ReportUsage;
    req.chip = chip;
    req.state = std::move(state);
    req.seq = seq;
    return callUnwrap(std::move(req));
}

Result<JsonValue>
Session::remainingLifetime(const std::string &chip,
                           const std::string &app,
                           drm::AdaptationSpace space,
                           double t_qual_k,
                           drm::surrogate::SurrogateMode surrogate)
{
    if (auto ok = needVersion(2, "remaining_lifetime"); !ok)
        return ok.error();
    Request req;
    req.type = RequestType::RemainingLifetime;
    req.chip = chip;
    req.app = app;
    req.space = space;
    req.t_qual_k = t_qual_k;
    req.surrogate = surrogate;
    return callUnwrap(std::move(req));
}

Result<JsonValue>
Session::selectChip(const std::vector<std::string> &apps,
                    drm::AdaptationSpace space,
                    cmp::BudgetPolicy policy, double t_qual_k,
                    JsonValue floorplan)
{
    if (auto ok = needVersion(3, "select_chip"); !ok)
        return ok.error();
    Request req;
    req.type = RequestType::SelectChip;
    req.core_apps = apps;
    req.space = space;
    req.budget_policy = policy;
    req.t_qual_k = t_qual_k;
    req.floorplan = std::move(floorplan);
    return callUnwrap(std::move(req));
}

} // namespace serve
} // namespace ramp
