/**
 * @file
 * The RAMP evaluation daemon: a batched, backpressured TCP front-end
 * over EvaluationService.
 *
 * Threading model. One acceptor thread accepts loopback connections;
 * each connection gets a reader thread that parses frames and either
 * answers inline (stats, shutdown, malformed input, admission
 * rejections) or enqueues work; one batcher thread owns the
 * evaluation pool. The batcher pops up to batch_max queued requests,
 * coalesces evaluate requests that name the same (app, space, config)
 * point into a single evaluation (single-flight), fans the unique
 * points across the service's ThreadPool, and runs select requests
 * sequentially (they fan out on the pool themselves). Replies are
 * written under a per-connection write mutex, since the reader thread
 * (errors) and the batcher (results) both write.
 *
 * Admission control. The request queue is bounded at queue_depth;
 * when it is full, new work is answered immediately with an
 * "overloaded" error reply -- callers always get an explicit answer,
 * never a silent hang. During drain, new work gets "shutting-down".
 *
 * Drain semantics. requestDrain() (or a shutdown request, or SIGTERM
 * in ramp_served) stops the acceptor, flips the queue to rejecting,
 * lets the batcher finish everything already admitted, then
 * half-closes every connection so readers wake and exit. Admitted
 * work is never dropped.
 *
 * Fault injection. With a fault plan installed, conn-drop severs the
 * connection instead of replying and conn-slow delays the reply --
 * both decided by a pure hash of the request payload plus its
 * per-connection sequence number, so a faulted run is reproducible.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "serve/service.hh"
#include "util/net.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace serve {

/** Serving knobs (the engine's knobs live in ServiceOptions). */
struct ServerOptions
{
    /** Listen port; 0 = kernel-assigned (see Server::port()). */
    std::uint16_t port = 0;
    /** Bounded admission queue; beyond this, "overloaded". */
    std::size_t queue_depth = 64;
    /** Max requests the batcher coalesces into one batch. */
    std::size_t batch_max = 16;
    /** Per-frame payload cap, both directions. */
    std::size_t max_frame_bytes = default_max_frame;
    /** Reader wait for the next frame; idle peers are disconnected. */
    int idle_timeout_ms = 30'000;
    /** Deadline for writing one reply frame. */
    int io_timeout_ms = 5'000;
};

/** The evaluation daemon. start() .. stop() brackets a lifetime. */
class Server
{
  public:
    /** @param service Shared engine; must outlive the server. */
    Server(EvaluationService &service, ServerOptions opts);

    /** Stops (draining) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the acceptor + batcher. */
    [[nodiscard]] util::Result<void> start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** True once a drain has begun (shutdown request or SIGTERM). */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /** Begin graceful drain (idempotent, non-blocking). */
    void requestDrain();

    /** Block until the drain completes and all threads are joined. */
    void wait();

    /** requestDrain() + wait(). Safe to call repeatedly. */
    void stop();

    /** Server-side counters for stats replies and tests. */
    util::JsonValue statsJson() const;

  private:
    /** One accepted connection's shared state. */
    struct Connection
    {
        util::Socket sock;
        std::thread thread;
        std::mutex write_mu; ///< Reader + batcher both reply.
        std::atomic<bool> done{false}; ///< Reader exited (reapable).
    };

    /** One admitted request waiting for the batcher. */
    struct Job
    {
        std::shared_ptr<Connection> conn;
        Request req;
        /** Payload + per-connection sequence: the deterministic
         *  fault-decision key. */
        std::string fault_key;
        std::chrono::steady_clock::time_point admitted;
    };

    void acceptLoop();
    void connectionLoop(const std::shared_ptr<Connection> &conn);
    void batchLoop();
    void runBatch(std::vector<Job> &batch);

    /** Answer one frame that never reaches the queue. */
    void replyInline(const std::shared_ptr<Connection> &conn,
                     const std::string &payload,
                     std::uint64_t seq);

    /** Apply reply-time faults and write one frame (write_mu). */
    void sendReply(const std::shared_ptr<Connection> &conn,
                   std::string_view fault_key,
                   const std::string &payload);

    EvaluationService &service_;
    ServerOptions opts_;

    util::Listener listener_;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    std::thread batcher_;
    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};

    mutable std::mutex conns_mu_;
    // ramp-lint: guarded_by(conns_mu_)
    std::vector<std::shared_ptr<Connection>> conns_;

    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    // ramp-lint: guarded_by(queue_mu_)
    std::deque<Job> queue_;

    std::mutex done_mu_;
    std::condition_variable done_cv_;
    bool joined_ = false;

    telemetry::Counter requests_ =
        telemetry::counter("server.requests");
    telemetry::Counter batches_ = telemetry::counter("server.batches");
    telemetry::Counter rejected_ =
        telemetry::counter("server.rejected");
    telemetry::Counter bad_requests_ =
        telemetry::counter("server.bad_requests");
    telemetry::Counter coalesced_ =
        telemetry::counter("server.coalesced");
    telemetry::Counter connections_ =
        telemetry::counter("server.connections");
    telemetry::Counter hellos_ = telemetry::counter("server.hellos");
    telemetry::Counter usage_reports_ =
        telemetry::counter("server.usage_reports");
    telemetry::Counter cache_appends_ =
        telemetry::counter("server.cache_appends");
    telemetry::Gauge queue_depth_ =
        telemetry::gauge("server.queue_depth");
    telemetry::Histogram request_s_ =
        telemetry::histogram("server.request_s", 0.0, 10.0, 40);
    telemetry::Histogram batch_s_ =
        telemetry::histogram("server.batch_s", 0.0, 10.0, 40);
    telemetry::Histogram batch_size_ =
        telemetry::histogram("server.batch_size", 0.0, 64.0, 32);

    /** Plain tallies mirrored into statsJson() (the telemetry
     *  counters are per-thread and cheap, but a stats reply needs a
     *  consistent point-in-time view without a registry snapshot). */
    std::atomic<std::uint64_t> n_requests_{0};
    std::atomic<std::uint64_t> n_batches_{0};
    std::atomic<std::uint64_t> n_rejected_{0};
    std::atomic<std::uint64_t> n_bad_requests_{0};
    std::atomic<std::uint64_t> n_coalesced_{0};
    std::atomic<std::uint64_t> n_connections_{0};
    std::atomic<std::uint64_t> n_hellos_{0};
    std::atomic<std::uint64_t> n_usage_reports_{0};
    std::atomic<std::uint64_t> n_cache_appends_{0};
};

} // namespace serve
} // namespace ramp
