/**
 * @file
 * The wire protocol of the RAMP evaluation service.
 *
 * Requests and replies are single JSON objects carried in the
 * length-prefixed frames of util/net.hh. Every request carries a
 * client-chosen `id` that the matching reply echoes, so a client may
 * pipeline requests and correlate replies by id (replies come back
 * in completion order, not necessarily submission order).
 *
 * The protocol is versioned. A frame without a `"v"` field is v0:
 * the original five request types, answered with v0-shaped replies
 * -- byte-identical to the pre-versioning protocol, so old clients
 * keep working against a new server. Frames with `"v":1` carry the
 * same five types plus `hello` (capability negotiation: the client
 * states the highest version it speaks, the server answers with its
 * own range and the negotiated version). `"v":2` adds the fleet
 * verbs: `report_usage` ships an aging::AgingState delta for a named
 * chip, and `remaining_lifetime` answers that chip's consumed
 * lifetime, its current safe operating point (a slack-banking
 * selection), and the ETA until the FIT budget is spent. Versioned
 * requests get replies carrying the same `"v"`.
 *
 * Request shapes (fields beyond `id`/`type`/`v` per type):
 *
 *   {"id":1,"type":"evaluate","app":"bzip2","space":"DVS",
 *    "config":6,"t_qual_k":345}
 *   {"id":2,"type":"select_drm","app":"gzip","space":"ArchDVS",
 *    "t_qual_k":345}
 *   {"id":3,"type":"select_dtm","app":"gzip","space":"ArchDVS",
 *    "t_design_k":370,"t_qual_k":345}
 *   {"id":4,"type":"stats"}
 *   {"id":5,"type":"shutdown"}
 *   {"id":6,"v":1,"type":"hello","max_v":2}
 *   {"id":7,"v":2,"type":"report_usage","chip":"fleet-0042",
 *    "state":{...AgingState document...},"seq":3}
 *   {"id":8,"v":2,"type":"remaining_lifetime","chip":"fleet-0042",
 *    "app":"gzip","space":"DVS","t_qual_k":345}
 *   {"id":9,"v":2,"type":"cache_append","key":"gzip|w128...",
 *    "record":"3 gzip|w128... 1234 ...","epoch":2}
 *   {"id":10,"v":3,"type":"select_chip","apps":["gzip","MPGdec"],
 *    "space":"DVS","policy":"global",
 *    "floorplan":{"cores":[...]},"t_qual_k":345}
 *
 * `"v":3` adds the CMP verb: `select_chip` runs one chip-level DRM
 * selection (cmp/chip_drm.hh) for one application per core under a
 * single chip-wide FIT budget (the per-core default share times the
 * core count). `apps` names one application per core; `policy`
 * ("per-core" or "global", default "global") picks the budget
 * allocation; the optional `floorplan` object is a
 * cmp::ChipFloorplan document fixing the chip's shape (absent means
 * the built-in grid for the core count). Floorplan documents are
 * validated structurally at parse time, so a malformed placement is
 * a `bad-request` with the offending core named
 * (`request:cores[2]: ...`), never an evaluation-layer failure.
 *
 * report_usage's optional `seq` makes retries idempotent: the server
 * keeps each chip's last-applied sequence number and acknowledges a
 * replayed `seq` without re-merging the (additive) delta, so a retry
 * after a lost reply cannot double-count damage. `seq` 0 (or absent)
 * is the legacy unsequenced form, merged unconditionally.
 *
 * cache_append is the backend-to-backend replication verb: one
 * serialized eval-cache record, stamped with the sender's compaction
 * epoch, applied idempotently by record key (drm/eval_cache.hh). A
 * restarted backend re-warms its cache from the snapshots its peers
 * push on (re)connect. The router never forwards it from clients.
 *
 * select_* requests additionally accept an optional
 * `"surrogate":"off"|"rank"|"auto"` field choosing the tiered
 * evaluation mode (drm/surrogate); absent means "off" (exhaustive).
 * The chosen winner is identical in every mode -- the field only
 * trades exact simulations for surrogate ranking on the server.
 *
 * Replies are {"id":N,"ok":true,"result":{...}} on success, or
 * {"id":N,"ok":false,"error":{"code":"...","message":"..."}} on
 * failure (v >= 1 frames insert `"v":N` after `"id"`). Error codes
 * are util::errorCodeName strings for evaluation failures (so a
 * non-converged thermal point or a singular solve is reported
 * structurally, never dropped), plus the serving-layer codes below.
 *
 * Parsing is strict and table-driven: each request type declares its
 * fields (and the protocol version each field/type arrived in) once,
 * and the parser rejects unknown types, foreign fields, and fields
 * or types newer than the frame's version from that single table.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cmp/chip_drm.hh"
#include "drm/adaptation.hh"
#include "drm/surrogate/mode.hh"
#include "util/error.hh"
#include "util/json.hh"

namespace ramp {
namespace serve {

/** Frame payload cap both sides enforce by default. */
inline constexpr std::size_t default_max_frame = std::size_t{1}
                                                 << 20;

/** Highest protocol version this build speaks ("v" field). */
inline constexpr int protocol_version_max = 3;

/** Lowest version (the unversioned legacy wire shape). */
inline constexpr int protocol_version_min = 0;

/** Serving-layer reply error codes (beyond util::errorCodeName). */
inline constexpr const char *err_overloaded = "overloaded";
inline constexpr const char *err_bad_request = "bad-request";
inline constexpr const char *err_shutting_down = "shutting-down";
/** Router reply when no healthy backend can take the request. */
inline constexpr const char *err_no_backend = "no-backend";

/** The request verbs. */
enum class RequestType : std::uint8_t {
    Evaluate,          ///< One (app, config) operating point.
    SelectDrm,         ///< DRM oracle selection over a space.
    SelectDtm,         ///< DTM oracle selection over a space.
    Stats,             ///< Server counters + cache stats (never queued).
    Shutdown,          ///< Begin graceful drain.
    Hello,             ///< v1: capability negotiation.
    ReportUsage,       ///< v2: merge an AgingState delta for a chip.
    RemainingLifetime, ///< v2: consumed life + safe point + ETA.
    CacheAppend,       ///< v2: peer replication of one cache record.
    SelectChip,        ///< v3: chip-level DRM over one app per core.
};

/** Wire name ("evaluate", "select_drm", ...). */
const char *requestTypeName(RequestType t);

/** Inverse of requestTypeName; nullopt for unknown names. */
std::optional<RequestType> requestTypeFromName(std::string_view name);

/** Protocol version a request type needs (0 for the legacy five). */
int requestTypeMinVersion(RequestType t);

/** One parsed (or to-be-encoded) request. */
struct Request
{
    std::uint64_t id = 0;
    RequestType type = RequestType::Stats;

    /** Protocol version of the frame (0 = legacy, no "v" field). */
    int version = 0;

    /** Application name (evaluate / select_* / remaining_lifetime). */
    std::string app;
    /** Adaptation space the config indexes into. */
    drm::AdaptationSpace space = drm::AdaptationSpace::ArchDvs;
    /** Index into drm::configSpace(space) (evaluate only). */
    std::size_t config = 0;
    /** Qualification temperature for FIT evaluation (K). */
    double t_qual_k = 345.0;
    /** Thermal design point (select_dtm only, K). */
    double t_design_k = 370.0;
    /** Tiered evaluation mode (select_* only); Off = exhaustive. */
    drm::surrogate::SurrogateMode surrogate =
        drm::surrogate::SurrogateMode::Off;

    /** hello: highest version the client speaks. */
    int max_v = protocol_version_max;
    /** Chip identity (report_usage / remaining_lifetime). */
    std::string chip;
    /** AgingState delta document (report_usage). */
    util::JsonValue state;
    /** report_usage idempotency sequence; 0 = unsequenced legacy. */
    std::uint64_t seq = 0;

    /** cache_append: the replicated record's cache key. */
    std::string key;
    /** cache_append: the full serialized record line. */
    std::string record;
    /** cache_append: the sender's compaction epoch. */
    std::uint64_t epoch = 0;

    /** select_chip: one application name per core. */
    std::vector<std::string> core_apps;
    /** select_chip: how the chip FIT budget is split. */
    cmp::BudgetPolicy budget_policy = cmp::BudgetPolicy::Global;
    /** select_chip: optional cmp::ChipFloorplan document (Null =
     *  the built-in grid for core_apps.size() cores). */
    util::JsonValue floorplan;
};

/** Serialize a request to its wire payload (v0 byte-identical to
 *  the pre-versioning encoder when req.version == 0). */
std::string encodeRequest(const Request &req);

/**
 * Parse and validate one request payload. Strict: unknown `type`,
 * missing/mistyped fields, fields that don't apply to the type,
 * fields or types newer than the frame's `v`, a `v` this build does
 * not speak, and non-finite temperatures are all InvalidInput.
 */
[[nodiscard]] util::Result<Request> parseRequest(std::string_view payload);

/** Success reply carrying @p result (consumed). @p version is the
 *  request's negotiated frame version; 0 keeps the legacy shape. */
std::string encodeResultReply(std::uint64_t id,
                              util::JsonValue result,
                              int version = 0);

/** Error reply with a structured code. */
std::string encodeErrorReply(std::uint64_t id, std::string_view code,
                             std::string_view message,
                             int version = 0);

/** A decoded reply. */
struct Reply
{
    std::uint64_t id = 0;
    /** Frame version echoed by the server (0 = legacy shape). */
    int version = 0;
    bool ok = false;
    util::JsonValue result;    ///< Valid when ok.
    std::string error_code;    ///< Valid when !ok.
    std::string error_message; ///< Valid when !ok.
};

/** Parse a reply payload (InvalidInput on malformed shape). */
[[nodiscard]] util::Result<Reply> parseReply(std::string_view payload);

/** Nearest util::ErrorCode for a reply error code string (client
 *  Result plumbing): "overloaded" -> Overloaded, "shutting-down" ->
 *  Unavailable, errorCodeName strings -> themselves, anything else
 *  -> InvalidInput. */
util::ErrorCode replyErrorCode(std::string_view code);

} // namespace serve
} // namespace ramp
